lib/hypervisor/hv.ml: Bytes Format Hashtbl List Sevsnp
