lib/hypervisor/hv.mli: Sevsnp
