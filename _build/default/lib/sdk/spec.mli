(** System-call call/type specifications (§7).

    The paper derives per-syscall marshaling grammar from Syzkaller's
    call and type specifications; this module is that table for the
    96-call SDK surface.  Each spec describes the argument shapes (so
    the sanitizer can deep-copy exactly the right bytes across the
    enclave boundary), whether the call returns a buffer, and whether
    the single-threaded SDK supports it at all (unsupported calls kill
    the enclave, as in the prototype). *)

(** Shape of one positional argument in the kernel ABI. *)
type shape =
  | S_int  (** scalar, passed by value *)
  | S_str  (** NUL-terminated string copied into untrusted memory *)
  | S_buf_in  (** caller buffer copied out of the enclave *)
  | S_len_out  (** scalar that bounds the buffer the call returns *)
  | S_rest  (** trailing arguments passed through opaquely (ioctl) *)

type t = {
  sys : Guest_kernel.Sysno.t;
  shapes : shape list;
  returns_buf : bool;  (** result carries a buffer to copy back in *)
  sdk_supported : bool;  (** false: multi-process/signals/poll — enclave is killed *)
}

val spec_of : Guest_kernel.Sysno.t -> t
val all : t list

val supported_count : int
(** How many of the 96 calls the SDK supports (the paper reports
    85/96 passing robustness tests). *)

val unsupported : Guest_kernel.Sysno.t list

val validate_args : t -> Guest_kernel.Ktypes.arg list -> (unit, string) result
(** Deep argument validation against the shape list: arity and per
    -position type agreement (the "call specification" check). *)

val copy_in_bytes : t -> Guest_kernel.Ktypes.arg list -> int
(** Bytes that must cross from enclave to untrusted memory. *)

val copy_out_bytes : Guest_kernel.Ktypes.ret -> int
(** Bytes crossing back on return. *)
