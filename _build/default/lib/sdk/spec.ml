module K = Guest_kernel.Ktypes
module S = Guest_kernel.Sysno

type shape = S_int | S_str | S_buf_in | S_len_out | S_rest

type t = { sys : S.t; shapes : shape list; returns_buf : bool; sdk_supported : bool }

let mk ?(ret_buf = false) ?(supported = true) sys shapes =
  { sys; shapes; returns_buf = ret_buf; sdk_supported = supported }

(* The "call specification": positional shapes matching the kernel ABI
   in Guest_kernel.Kernel.dispatch. *)
let table =
  [
    mk S.Read [ S_int; S_len_out ] ~ret_buf:true;
    mk S.Write [ S_int; S_buf_in ];
    mk S.Open [ S_str; S_int; S_int ];
    mk S.Close [ S_int ];
    mk S.Stat [ S_str ];
    mk S.Fstat [ S_int ];
    mk S.Lstat [ S_str ];
    mk S.Poll [ S_rest ] ~supported:false;
    mk S.Lseek [ S_int; S_int; S_int ];
    mk S.Mmap [ S_int; S_int; S_int; S_int; S_int; S_int ];
    mk S.Mprotect [ S_int; S_int; S_int ];
    mk S.Munmap [ S_int; S_int ];
    mk S.Brk [ S_int ];
    mk S.Rt_sigaction [ S_rest ] ~supported:false;
    mk S.Rt_sigprocmask [ S_rest ] ~supported:false;
    mk S.Ioctl [ S_int; S_int; S_rest ];
    mk S.Pread64 [ S_int; S_len_out; S_int ] ~ret_buf:true;
    mk S.Pwrite64 [ S_int; S_buf_in; S_int ];
    mk S.Readv [ S_int; S_len_out ] ~ret_buf:true;
    mk S.Writev [ S_int; S_buf_in ];
    mk S.Access [ S_str ];
    mk S.Pipe [];
    mk S.Select [ S_rest ] ~supported:false;
    mk S.Sched_yield [];
    mk S.Dup [ S_int ];
    mk S.Dup2 [ S_int; S_int ];
    mk S.Nanosleep [ S_int ];
    mk S.Getpid [];
    mk S.Sendfile [ S_int; S_int; S_int ];
    mk S.Socket [ S_int; S_int; S_int ];
    mk S.Connect [ S_int; S_int ];
    mk S.Accept [ S_int ];
    mk S.Sendto [ S_int; S_buf_in ];
    mk S.Recvfrom [ S_int; S_len_out ] ~ret_buf:true;
    mk S.Sendmsg [ S_int; S_buf_in ];
    mk S.Recvmsg [ S_int; S_len_out ] ~ret_buf:true;
    mk S.Shutdown [ S_int ];
    mk S.Bind [ S_int; S_int ];
    mk S.Listen [ S_int; S_int ];
    mk S.Getsockname [ S_int ];
    mk S.Getpeername [ S_int ];
    mk S.Socketpair [];
    mk S.Setsockopt [ S_int; S_int; S_int ];
    mk S.Getsockopt [ S_int; S_int; S_int ];
    mk S.Clone [] ~supported:false;
    mk S.Fork [] ~supported:false;
    mk S.Vfork [] ~supported:false;
    mk S.Execve [ S_str ] ~supported:false;
    mk S.Exit [ S_int ];
    mk S.Wait4 [ S_int ] ~supported:false;
    mk S.Kill [ S_int; S_int ] ~supported:false;
    mk S.Uname [] ~ret_buf:true;
    mk S.Fcntl [ S_int; S_int ];
    mk S.Fsync [ S_int ];
    mk S.Truncate [ S_str; S_int ];
    mk S.Ftruncate [ S_int; S_int ];
    mk S.Getdents [ S_int ] ~ret_buf:true;
    mk S.Getcwd [] ~ret_buf:true;
    mk S.Chdir [ S_str ];
    mk S.Rename [ S_str; S_str ];
    mk S.Mkdir [ S_str; S_int ];
    mk S.Rmdir [ S_str ];
    mk S.Creat [ S_str; S_int ];
    mk S.Link [ S_str; S_str ];
    mk S.Unlink [ S_str ];
    mk S.Symlink [ S_str; S_str ];
    mk S.Readlink [ S_str ] ~ret_buf:true;
    mk S.Chmod [ S_str; S_int ];
    mk S.Fchmod [ S_int; S_int ];
    mk S.Chown [ S_str; S_int; S_int ];
    mk S.Umask [ S_int ];
    mk S.Gettimeofday [];
    mk S.Getuid [];
    mk S.Getgid [];
    mk S.Setuid [ S_int ];
    mk S.Setgid [ S_int ];
    mk S.Geteuid [];
    mk S.Getegid [];
    mk S.Getppid [];
    mk S.Setreuid [ S_int; S_int ];
    mk S.Setresuid [ S_int; S_int; S_int ];
    mk S.Mknod [ S_str; S_int; S_int ];
    mk S.Statfs [ S_str ];
    mk S.Futex [ S_rest ] ~supported:false;
    mk S.Clock_gettime [];
    mk S.Exit_group [ S_int ];
    mk S.Openat [ S_int; S_str; S_int; S_int ];
    mk S.Mkdirat [ S_int; S_str; S_int ];
    mk S.Mknodat [ S_int; S_str; S_int; S_int ];
    mk S.Unlinkat [ S_int; S_str ];
    mk S.Renameat [ S_str; S_str ];
    mk S.Splice [ S_int; S_int; S_int ];
    mk S.Accept4 [ S_int ];
    mk S.Dup3 [ S_int; S_int ];
    mk S.Pipe2 [];
    mk S.Getrandom [ S_len_out ] ~ret_buf:true;
  ]

let spec_of sys =
  match List.find_opt (fun s -> S.equal s.sys sys) table with
  | Some s -> s
  | None -> invalid_arg ("Spec.spec_of: no specification for " ^ S.to_string sys)

let all = table

let unsupported = List.filter_map (fun s -> if s.sdk_supported then None else Some s.sys) table

let supported_count = List.length table - List.length unsupported

let shape_matches shape (arg : K.arg) =
  match (shape, arg) with
  | S_int, K.Int _ -> true
  | S_str, K.Str _ -> true
  | S_buf_in, K.Buf _ -> true
  | S_len_out, K.Int n -> n >= 0
  | S_rest, _ -> true
  | _ -> false

let validate_args t args =
  let rec go shapes args pos =
    match (shapes, args) with
    | [], [] -> Ok ()
    | [ S_rest ], _ -> Ok () (* trailing opaque arguments *)
    | [], _ :: _ -> Error "too many arguments"
    | _ :: _, [] -> Error "missing arguments"
    | shape :: ss, arg :: aa ->
        if shape_matches shape arg then go ss aa (pos + 1)
        else Error (Printf.sprintf "argument %d has the wrong type" pos)
  in
  go t.shapes args 0

let arg_bytes (arg : K.arg) shape =
  match (shape, arg) with
  | S_str, K.Str s -> String.length s + 1
  | S_buf_in, K.Buf b -> Bytes.length b
  | _ -> 8

let copy_in_bytes t args =
  let rec go shapes args acc =
    match (shapes, args) with
    | shape :: ss, arg :: aa -> go ss aa (acc + arg_bytes arg shape)
    | _ -> acc
  in
  go t.shapes args 0

let copy_out_bytes (ret : K.ret) =
  match ret with
  | K.RBuf b -> Bytes.length b
  | K.RStat _ -> 64
  | K.RInt _ | K.RErr _ -> 8
