(** Boundary sanitisation for redirected system calls (§6.2, §7).

    Checks performed by the SDK on top of the {!Spec} grammar: deep
    argument validation before a call leaves the enclave, and IAGO
    checks on values the untrusted OS returns (pointers handed back by
    mmap/brk must never land inside enclave memory). *)

val check_call : Spec.t -> Guest_kernel.Ktypes.arg list -> (unit, string) result

val iago_check :
  Spec.t ->
  Guest_kernel.Ktypes.ret ->
  enclave_lo:Sevsnp.Types.va ->
  enclave_hi:Sevsnp.Types.va ->
  (unit, string) result
(** Reject returns that reference enclave memory (classic IAGO
    vector): for address-returning calls the result must be
    page-aligned and fully outside [enclave_lo, enclave_hi). *)

val refinements : (Guest_kernel.Sysno.t * string) list
(** Hand-refined discrepancies versus the mechanical Syzkaller-derived
    grammar, found by unit tests (the paper reports several). *)
