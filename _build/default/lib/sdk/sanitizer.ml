module K = Guest_kernel.Ktypes
module S = Guest_kernel.Sysno

let check_call = Spec.validate_args

let returns_address (sys : S.t) = match sys with S.Mmap | S.Brk -> true | _ -> false

let iago_check (spec : Spec.t) (ret : K.ret) ~enclave_lo ~enclave_hi =
  match ret with
  | K.RErr _ -> Ok ()
  | K.RInt v when returns_address spec.Spec.sys ->
      if v land (Sevsnp.Types.page_size - 1) <> 0 && S.equal spec.Spec.sys S.Mmap then
        Error "IAGO: unaligned address returned by mmap"
      else if v + Sevsnp.Types.page_size > enclave_lo && v < enclave_hi then
        Error "IAGO: OS returned a pointer into enclave memory"
      else Ok ()
  | K.RInt _ | K.RBuf _ | K.RStat _ -> Ok ()

(* Differences against the mechanically derived grammar that unit
   tests uncovered; each entry documents the refinement applied. *)
let refinements =
  [
    (S.Write, "third argument bounds the second (buffer) — length taken from the buffer itself");
    (S.Read, "return value, not the requested length, bounds the copy-in");
    (S.Getcwd, "output buffer length is implicit; treated as returns_buf");
    (S.Ioctl, "request-dependent trailing arguments passed as opaque rest");
    (S.Mmap, "fd = -1 (anonymous) must skip the file-backed copy grammar");
    (S.Recvfrom, "address/addrlen out-parameters dropped for connected sockets");
  ]
