module S = Guest_kernel.Sysno
module K = Guest_kernel.Ktypes

type result = { lsys : S.t; total : int; passed : int; killed : bool }

type summary = {
  calls_total : int;
  calls_all_passed : int;
  cases_total : int;
  cases_passed : int;
}

type case = Runtime.t -> bool

let is_err = function K.RErr _ -> true | _ -> false
let is_int = function K.RInt _ -> true | _ -> false
let is_buf = function K.RBuf _ -> true | _ -> false
let int_of = function K.RInt n -> n | _ -> -1

let o rt sys args = Runtime.ocall rt sys args

(* ports must be unique across the whole battery: listeners persist in
   the guest's network stack between cases *)
let next_port = ref 6100

let fresh_port () =
  incr next_port;
  !next_port

(* Open a scratch file and return its fd. *)
let scratch rt name = int_of (o rt S.Open [ K.Str ("/tmp/ltp-" ^ name); K.Int 0x42; K.Int 0o644 ])

let sock_pair rt =
  (* listener + connected client through the loopback stack *)
  let port = fresh_port () in
  let srv = int_of (o rt S.Socket [ K.Int 2; K.Int 1; K.Int 0 ]) in
  ignore (o rt S.Bind [ K.Int srv; K.Int port ]);
  ignore (o rt S.Listen [ K.Int srv; K.Int 4 ]);
  let cli = int_of (o rt S.Socket [ K.Int 2; K.Int 1; K.Int 0 ]) in
  ignore (o rt S.Connect [ K.Int cli; K.Int port ]);
  let conn = int_of (o rt S.Accept [ K.Int srv ]) in
  (cli, conn)

(* Positive (semantic) cases per call.  Each returns true on
   spec-conformant behaviour. *)
let positive (sys : S.t) : case list =
  match sys with
  | S.Open ->
      [
        (fun rt -> int_of (o rt S.Open [ K.Str "/tmp/ltp-o"; K.Int 0x42; K.Int 0o644 ]) >= 3);
        (fun rt -> o rt S.Open [ K.Str "/tmp/ltp-absent"; K.Int 0; K.Int 0 ] = K.RErr K.ENOENT);
        (fun rt ->
          ignore (scratch rt "excl");
          o rt S.Open [ K.Str "/tmp/ltp-excl"; K.Int (0x40 lor 0x80); K.Int 0o644 ] = K.RErr K.EEXIST);
      ]
  | S.Openat -> [ (fun rt -> int_of (o rt S.Openat [ K.Int (-100); K.Str "/tmp/ltp-oat"; K.Int 0x42; K.Int 0o644 ]) >= 3) ]
  | S.Creat -> [ (fun rt -> int_of (o rt S.Creat [ K.Str "/tmp/ltp-c"; K.Int 0o644 ]) >= 3) ]
  | S.Close ->
      [
        (fun rt -> o rt S.Close [ K.Int (scratch rt "cl") ] = K.RInt 0);
        (fun rt -> o rt S.Close [ K.Int 9999 ] = K.RErr K.EBADF);
      ]
  | S.Read ->
      [
        (fun rt ->
          let fd = scratch rt "r" in
          ignore (o rt S.Write [ K.Int fd; K.Buf (Bytes.of_string "data") ]);
          ignore (o rt S.Lseek [ K.Int fd; K.Int 0; K.Int 0 ]);
          o rt S.Read [ K.Int fd; K.Int 4 ] = K.RBuf (Bytes.of_string "data"));
        (fun rt ->
          let fd = scratch rt "r0" in
          (* EOF returns an empty buffer *)
          o rt S.Read [ K.Int fd; K.Int 16 ] = K.RBuf Bytes.empty);
      ]
  | S.Write ->
      [
        (fun rt -> o rt S.Write [ K.Int (scratch rt "w"); K.Buf (Bytes.of_string "abc") ] = K.RInt 3);
        (fun rt -> is_err (o rt S.Write [ K.Int 9999; K.Buf Bytes.empty ]));
      ]
  | S.Pread64 ->
      [
        (fun rt ->
          let fd = scratch rt "pr" in
          ignore (o rt S.Write [ K.Int fd; K.Buf (Bytes.of_string "0123456789") ]);
          o rt S.Pread64 [ K.Int fd; K.Int 3; K.Int 4 ] = K.RBuf (Bytes.of_string "456"));
      ]
  | S.Pwrite64 ->
      [
        (fun rt ->
          let fd = scratch rt "pw" in
          o rt S.Pwrite64 [ K.Int fd; K.Buf (Bytes.of_string "xy"); K.Int 5 ] = K.RInt 2);
      ]
  | S.Readv ->
      [
        (fun rt ->
          let fd = scratch rt "rv" in
          ignore (o rt S.Write [ K.Int fd; K.Buf (Bytes.of_string "iov") ]);
          ignore (o rt S.Lseek [ K.Int fd; K.Int 0; K.Int 0 ]);
          is_buf (o rt S.Readv [ K.Int fd; K.Int 3 ]));
      ]
  | S.Writev -> [ (fun rt -> o rt S.Writev [ K.Int (scratch rt "wv"); K.Buf (Bytes.of_string "v") ] = K.RInt 1) ]
  | S.Lseek ->
      [
        (fun rt ->
          let fd = scratch rt "ls" in
          ignore (o rt S.Write [ K.Int fd; K.Buf (Bytes.of_string "abcdef") ]);
          o rt S.Lseek [ K.Int fd; K.Int 0; K.Int 2 ] = K.RInt 6);
        (fun rt -> is_err (o rt S.Lseek [ K.Int (scratch rt "ls2"); K.Int (-5); K.Int 0 ]));
      ]
  | S.Stat | S.Lstat ->
      [
        (fun rt ->
          ignore (scratch rt "st");
          match o rt sys [ K.Str "/tmp/ltp-st" ] with K.RStat _ -> true | _ -> false);
        (fun rt -> o rt sys [ K.Str "/absent" ] = K.RErr K.ENOENT);
      ]
  | S.Fstat -> [ (fun rt -> match o rt S.Fstat [ K.Int (scratch rt "fs") ] with K.RStat _ -> true | _ -> false) ]
  | S.Access ->
      [
        (fun rt ->
          ignore (scratch rt "ac");
          o rt S.Access [ K.Str "/tmp/ltp-ac" ] = K.RInt 0);
        (fun rt -> o rt S.Access [ K.Str "/absent" ] = K.RErr K.ENOENT);
      ]
  | S.Mmap ->
      [
        (fun rt -> int_of (o rt S.Mmap [ K.Int 0; K.Int 8192; K.Int 3; K.Int 0x22; K.Int (-1); K.Int 0 ]) > 0);
        (fun rt -> is_err (o rt S.Mmap [ K.Int 0; K.Int 0; K.Int 3; K.Int 0x22; K.Int (-1); K.Int 0 ]));
      ]
  | S.Munmap ->
      [
        (fun rt ->
          let va = int_of (o rt S.Mmap [ K.Int 0; K.Int 4096; K.Int 3; K.Int 0x22; K.Int (-1); K.Int 0 ]) in
          o rt S.Munmap [ K.Int va; K.Int 4096 ] = K.RInt 0);
        (fun rt -> is_err (o rt S.Munmap [ K.Int 0x123000; K.Int 4096 ]));
      ]
  | S.Mprotect ->
      [
        (fun rt ->
          let va = int_of (o rt S.Mmap [ K.Int 0; K.Int 4096; K.Int 3; K.Int 0x22; K.Int (-1); K.Int 0 ]) in
          o rt S.Mprotect [ K.Int va; K.Int 4096; K.Int 1 ] = K.RInt 0);
      ]
  | S.Brk ->
      [
        (fun rt ->
          let cur = int_of (o rt S.Brk [ K.Int 0 ]) in
          int_of (o rt S.Brk [ K.Int (cur + 4096) ]) = cur + 4096);
      ]
  | S.Socket -> [ (fun rt -> int_of (o rt S.Socket [ K.Int 2; K.Int 1; K.Int 0 ]) >= 3) ]
  | S.Bind ->
      [
        (fun rt ->
          let fd = int_of (o rt S.Socket [ K.Int 2; K.Int 1; K.Int 0 ]) in
          o rt S.Bind [ K.Int fd; K.Int (fresh_port ()) ] = K.RInt 0);
        (fun rt ->
          let port = fresh_port () in
          let a = int_of (o rt S.Socket [ K.Int 2; K.Int 1; K.Int 0 ]) in
          let b = int_of (o rt S.Socket [ K.Int 2; K.Int 1; K.Int 0 ]) in
          ignore (o rt S.Bind [ K.Int a; K.Int port ]);
          ignore (o rt S.Listen [ K.Int a; K.Int 1 ]);
          o rt S.Bind [ K.Int b; K.Int port ] = K.RErr K.EADDRINUSE);
      ]
  | S.Listen ->
      [
        (fun rt ->
          let fd = int_of (o rt S.Socket [ K.Int 2; K.Int 1; K.Int 0 ]) in
          ignore (o rt S.Bind [ K.Int fd; K.Int (fresh_port ()) ]);
          o rt S.Listen [ K.Int fd; K.Int 8 ] = K.RInt 0);
      ]
  | S.Connect ->
      [
        (fun rt ->
          let c, _ = sock_pair rt in
          c >= 0);
        (fun rt ->
          let fd = int_of (o rt S.Socket [ K.Int 2; K.Int 1; K.Int 0 ]) in
          o rt S.Connect [ K.Int fd; K.Int 9999 ] = K.RErr K.ECONNREFUSED);
      ]
  | S.Accept | S.Accept4 ->
      [
        (fun rt ->
          let fd = int_of (o rt S.Socket [ K.Int 2; K.Int 1; K.Int 0 ]) in
          ignore (o rt S.Bind [ K.Int fd; K.Int (fresh_port ()) ]);
          ignore (o rt S.Listen [ K.Int fd; K.Int 2 ]);
          o rt sys [ K.Int fd ] = K.RErr K.EAGAIN);
      ]
  | S.Sendto | S.Sendmsg ->
      [
        (fun rt ->
          let cli, _conn = sock_pair rt in
          o rt sys [ K.Int cli; K.Buf (Bytes.of_string "p") ] = K.RInt 1);
      ]
  | S.Recvfrom | S.Recvmsg ->
      [
        (fun rt ->
          let cli, conn = sock_pair rt in
          ignore (o rt S.Sendto [ K.Int cli; K.Buf (Bytes.of_string "q") ]);
          o rt sys [ K.Int conn; K.Int 8 ] = K.RBuf (Bytes.of_string "q"));
      ]
  | S.Shutdown ->
      [
        (fun rt ->
          let cli, _ = sock_pair rt in
          o rt S.Shutdown [ K.Int cli ] = K.RInt 0);
      ]
  | S.Getsockname | S.Getpeername ->
      [
        (fun rt ->
          let cli, _ = sock_pair rt in
          is_int (o rt sys [ K.Int cli ]));
      ]
  | S.Setsockopt | S.Getsockopt ->
      [
        (fun rt ->
          let cli, _ = sock_pair rt in
          is_int (o rt sys [ K.Int cli; K.Int 1; K.Int 1 ]));
      ]
  | S.Socketpair ->
      [
        (fun rt ->
          let pair = int_of (o rt S.Socketpair []) in
          let a = pair land 0xffff and b = pair lsr 16 in
          ignore (o rt S.Sendto [ K.Int a; K.Buf (Bytes.of_string "z") ]);
          o rt S.Recvfrom [ K.Int b; K.Int 4 ] = K.RBuf (Bytes.of_string "z"));
      ]
  | S.Pipe | S.Pipe2 ->
      [
        (fun rt ->
          let pair = int_of (o rt sys []) in
          let r = pair land 0xffff and w = pair lsr 16 in
          ignore (o rt S.Write [ K.Int w; K.Buf (Bytes.of_string "pp") ]);
          o rt S.Read [ K.Int r; K.Int 2 ] = K.RBuf (Bytes.of_string "pp"));
      ]
  | S.Dup | S.Dup2 | S.Dup3 ->
      [
        (fun rt ->
          let fd = scratch rt "dup" in
          let args = if sys = S.Dup then [ K.Int fd ] else [ K.Int fd; K.Int 20 ] in
          int_of (o rt sys args) >= 0);
      ]
  | S.Sendfile | S.Splice ->
      [
        (fun rt ->
          let src = scratch rt "sf-src" in
          ignore (o rt S.Write [ K.Int src; K.Buf (Bytes.of_string "bulk") ]);
          ignore (o rt S.Lseek [ K.Int src; K.Int 0; K.Int 0 ]);
          let dst = scratch rt "sf-dst" in
          o rt sys [ K.Int dst; K.Int src; K.Int 16 ] = K.RInt 4 || o rt sys [ K.Int src; K.Int dst; K.Int 16 ] = K.RInt 0);
      ]
  | S.Mkdir | S.Mkdirat ->
      [
        (fun rt ->
          let args = if sys = S.Mkdir then [ K.Str "/tmp/ltp-dir"; K.Int 0o755 ] else [ K.Int 0; K.Str "/tmp/ltp-dirat"; K.Int 0o755 ] in
          o rt sys args = K.RInt 0);
      ]
  | S.Rmdir ->
      [
        (fun rt ->
          ignore (o rt S.Mkdir [ K.Str "/tmp/ltp-rm"; K.Int 0o755 ]);
          o rt S.Rmdir [ K.Str "/tmp/ltp-rm" ] = K.RInt 0);
        (fun rt -> is_err (o rt S.Rmdir [ K.Str "/absent" ]));
      ]
  | S.Unlink | S.Unlinkat ->
      [
        (fun rt ->
          ignore (scratch rt "ul");
          let args = if sys = S.Unlink then [ K.Str "/tmp/ltp-ul" ] else [ K.Int 0; K.Str "/tmp/ltp-ul" ] in
          o rt sys args = K.RInt 0);
      ]
  | S.Rename | S.Renameat ->
      [
        (fun rt ->
          ignore (scratch rt "rn");
          o rt sys [ K.Str "/tmp/ltp-rn"; K.Str "/tmp/ltp-rn2" ] = K.RInt 0);
      ]
  | S.Link ->
      [
        (fun rt ->
          ignore (scratch rt "ln");
          o rt S.Link [ K.Str "/tmp/ltp-ln"; K.Str "/tmp/ltp-ln2" ] = K.RInt 0);
      ]
  | S.Symlink ->
      [ (fun rt -> o rt S.Symlink [ K.Str "/tmp/target"; K.Str "/tmp/ltp-sym" ] = K.RInt 0) ]
  | S.Readlink ->
      [
        (fun rt ->
          ignore (o rt S.Symlink [ K.Str "/tmp/t2"; K.Str "/tmp/ltp-rl" ]);
          o rt S.Readlink [ K.Str "/tmp/ltp-rl" ] = K.RBuf (Bytes.of_string "/tmp/t2"));
      ]
  | S.Truncate | S.Ftruncate ->
      [
        (fun rt ->
          let fd = scratch rt "tr" in
          ignore (o rt S.Write [ K.Int fd; K.Buf (Bytes.of_string "longcontent") ]);
          let r =
            if sys = S.Truncate then o rt S.Truncate [ K.Str "/tmp/ltp-tr"; K.Int 4 ]
            else o rt S.Ftruncate [ K.Int fd; K.Int 4 ]
          in
          r = K.RInt 0
          && match o rt S.Stat [ K.Str "/tmp/ltp-tr" ] with K.RStat st -> st.K.st_size = 4 | _ -> false);
      ]
  | S.Chmod | S.Fchmod ->
      [
        (fun rt ->
          let fd = scratch rt "cm" in
          let r =
            if sys = S.Chmod then o rt S.Chmod [ K.Str "/tmp/ltp-cm"; K.Int 0o600 ]
            else o rt S.Fchmod [ K.Int fd; K.Int 0o600 ]
          in
          r = K.RInt 0);
      ]
  | S.Chown -> [ (fun rt -> ignore (scratch rt "co"); o rt S.Chown [ K.Str "/tmp/ltp-co"; K.Int 1; K.Int 1 ] = K.RInt 0) ]
  | S.Chdir ->
      [
        (fun rt -> o rt S.Chdir [ K.Str "/tmp" ] = K.RInt 0);
        (fun rt -> is_err (o rt S.Chdir [ K.Str "/absent" ]));
      ]
  | S.Getcwd -> [ (fun rt -> is_buf (o rt S.Getcwd [])) ]
  | S.Getdents ->
      [
        (fun rt ->
          let fd = int_of (o rt S.Open [ K.Str "/tmp"; K.Int 0; K.Int 0 ]) in
          is_buf (o rt S.Getdents [ K.Int fd ]));
      ]
  | S.Fsync -> [ (fun rt -> o rt S.Fsync [ K.Int (scratch rt "sync") ] = K.RInt 0) ]
  | S.Fcntl -> [ (fun rt -> is_int (o rt S.Fcntl [ K.Int (scratch rt "fc"); K.Int 0 ])) ]
  | S.Mknod | S.Mknodat ->
      [
        (fun rt ->
          let args =
            if sys = S.Mknod then [ K.Str "/tmp/ltp-node"; K.Int 0o644; K.Int 0 ]
            else [ K.Int 0; K.Str "/tmp/ltp-nodeat"; K.Int 0o644; K.Int 0 ]
          in
          o rt sys args = K.RInt 0);
      ]
  | S.Statfs -> [ (fun rt -> is_int (o rt S.Statfs [ K.Str "/" ])) ]
  | S.Getpid -> [ (fun rt -> int_of (o rt S.Getpid []) > 0) ]
  | S.Getppid -> [ (fun rt -> int_of (o rt S.Getppid []) >= 0) ]
  | S.Getuid | S.Geteuid | S.Getgid | S.Getegid -> [ (fun rt -> is_int (o rt sys [])) ]
  | S.Setuid | S.Setgid -> [ (fun rt -> o rt sys [ K.Int 1000 ] = K.RInt 0) ]
  | S.Setreuid -> [ (fun rt -> o rt S.Setreuid [ K.Int 1000; K.Int 1000 ] = K.RInt 0) ]
  | S.Setresuid -> [ (fun rt -> o rt S.Setresuid [ K.Int 1000; K.Int 1000; K.Int 1000 ] = K.RInt 0) ]
  | S.Umask -> [ (fun rt -> is_int (o rt S.Umask [ K.Int 0o027 ])) ]
  | S.Uname -> [ (fun rt -> is_buf (o rt S.Uname [])) ]
  | S.Gettimeofday | S.Clock_gettime -> [ (fun rt -> is_int (o rt sys [])) ]
  | S.Nanosleep -> [ (fun rt -> o rt S.Nanosleep [ K.Int 1000 ] = K.RInt 0) ]
  | S.Sched_yield -> [ (fun rt -> o rt S.Sched_yield [] = K.RInt 0) ]
  | S.Getrandom ->
      [
        (fun rt -> match o rt S.Getrandom [ K.Int 16 ] with K.RBuf b -> Bytes.length b = 16 | _ -> false);
      ]
  | S.Exit | S.Exit_group -> [ (fun rt -> o rt sys [ K.Int 0 ] = K.RInt 0) ]
  | S.Ioctl -> [ (fun rt -> is_err (o rt S.Ioctl [ K.Int 0; K.Int 99 ])) ]
  | S.Rt_sigaction | S.Rt_sigprocmask | S.Poll | S.Select | S.Futex | S.Clone | S.Fork | S.Vfork
  | S.Execve | S.Wait4 | S.Kill ->
      (* SDK-unsupported: a single case that the enclave survives the
         call — it cannot, so all fail *)
      [ (fun rt -> is_int (o rt sys [])) ]

(* Calls whose first argument is a file descriptor: probing them with
   a wild descriptor must produce a clean error. *)
let fd_based =
  [ S.Read; S.Write; S.Close; S.Fstat; S.Lseek; S.Pread64; S.Pwrite64; S.Readv; S.Writev;
    S.Bind; S.Listen; S.Accept; S.Accept4; S.Connect; S.Sendto; S.Recvfrom; S.Sendmsg; S.Recvmsg;
    S.Shutdown; S.Getsockname; S.Getpeername; S.Setsockopt; S.Getsockopt; S.Dup; S.Dup2; S.Dup3;
    S.Fcntl; S.Fsync; S.Ftruncate; S.Getdents; S.Fchmod ]

(* Calls whose first argument is a path: a nonexistent deep path must
   produce a clean error (never a crash). *)
let path_based =
  [ S.Open; S.Stat; S.Lstat; S.Access; S.Rmdir; S.Unlink; S.Readlink; S.Chmod; S.Chown; S.Chdir;
    S.Truncate ]

let good_args_for (sys : S.t) (spec : Spec.t) first =
  (* plausible remaining arguments after a poisoned first one *)
  first
  :: (List.tl spec.Spec.shapes
     |> List.filter_map (fun sh ->
            match sh with
            | Spec.S_int | Spec.S_len_out -> Some (K.Int 1)
            | Spec.S_str -> Some (K.Str "/tmp/x")
            | Spec.S_buf_in -> Some (K.Buf (Bytes.of_string "z"))
            | Spec.S_rest -> None))
  |> fun args -> if sys = S.Lseek then [ first; K.Int 0; K.Int 0 ] else args

(* Generic negative cases derived from the call specification. *)
let negative (sys : S.t) : case list =
  let spec = Spec.spec_of sys in
  let has_rest = List.exists (fun sh -> sh = Spec.S_rest) spec.Spec.shapes in
  let arity =
    if has_rest then []
    else [ (fun rt -> o rt sys (List.init 9 (fun _ -> K.Int 0) @ [ K.Buf Bytes.empty ]) = K.RErr K.EINVAL) ]
  in
  let wrong_type =
    match spec.Spec.shapes with
    | Spec.S_str :: _ -> [ (fun rt -> o rt sys [ K.Int 42 ] = K.RErr K.EINVAL) ]
    | Spec.S_int :: _ -> [ (fun rt -> o rt sys [ K.Str "not-an-fd" ] = K.RErr K.EINVAL) ]
    | _ -> []
  in
  let bad_fd =
    if List.mem sys fd_based then
      [ (fun rt -> is_err (o rt sys (good_args_for sys spec (K.Int 9999))));
        (fun rt -> is_err (o rt sys (good_args_for sys spec (K.Int (-1))))) ]
    else []
  in
  let bad_path =
    if List.mem sys path_based then
      [ (fun rt -> is_err (o rt sys (good_args_for sys spec (K.Str "/no/such/deep/path")))) ]
    else []
  in
  arity @ wrong_type @ bad_fd @ bad_path

let battery sys = positive sys @ negative sys

let cases_for sys = List.length (battery sys)

let run_one sys_boot (sysno : S.t) =
  let proc = Guest_kernel.Kernel.spawn sys_boot.Veil_core.Boot.kernel in
  match Runtime.create sys_boot ~heap_pages:8 ~stack_pages:2 ~binary:(Bytes.make 4096 'L') proc with
  | Error e -> failwith ("ltp: " ^ e)
  | Ok rt ->
      let cases = battery sysno in
      let passed = ref 0 and killed = ref false in
      (try
         Runtime.run rt (fun rt -> List.iter (fun case -> if case rt then incr passed) cases)
       with Runtime.Enclave_killed _ -> killed := true);
      if not !killed then ignore (Runtime.destroy rt);
      { lsys = sysno; total = List.length cases; passed = !passed; killed = !killed }

let run_all sys_boot = List.map (run_one sys_boot) S.all

let summarize results =
  {
    calls_total = List.length results;
    calls_all_passed = List.length (List.filter (fun r -> r.passed = r.total) results);
    cases_total = List.fold_left (fun a r -> a + r.total) 0 results;
    cases_passed = List.fold_left (fun a r -> a + r.passed) 0 results;
  }
