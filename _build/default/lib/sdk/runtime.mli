(** Enclave runtime — the musl-libc replacement of §7.

    Owns an enclave's lifecycle from the application side: creation
    through the /dev/veil ioctl, entry/exit through the user-mapped
    GHCB, system-call redirection (spec-driven deep copy through the
    shared arena, IAGO checks on returns) and the in-enclave heap.
    Unsupported system calls kill the enclave, as in the prototype. *)

exception Enclave_killed of string

type stats = {
  mutable ocalls : int;
  mutable enclave_entries : int;
  mutable enclave_exits : int;
  mutable redirect_bytes : int;  (** bytes deep-copied across the boundary *)
  mutable redirect_cycles : int;  (** Fig. 5's "Syscall-Redirect" component *)
  mutable exit_cycles : int;  (** Fig. 5's "Enclave-Exit" component *)
  mutable interrupts_while_inside : int;
}

type t

val create :
  Veil_core.Boot.veil_system ->
  ?heap_pages:int ->
  ?stack_pages:int ->
  binary:bytes ->
  Guest_kernel.Process.t ->
  (t, string) result
(** Install [binary] as an enclave in the process (ioctl to the §7
    kernel module) and finalize it through VeilS-ENC.  Defaults:
    16 heap pages, 4 stack pages. *)

val destroy : t -> (unit, string) result

val system : t -> Veil_core.Boot.veil_system
val proc : t -> Guest_kernel.Process.t
val enclave : t -> Veil_core.Encsvc.enclave
val measurement : t -> bytes
val stats : t -> stats
val inside : t -> bool

val run : t -> (t -> 'a) -> 'a
(** Enter the enclave, execute the body, exit.  The body runs at
    Dom_ENC: its memory accesses and ocalls carry enclave costs. *)

val run_on : t -> Sevsnp.Vcpu.t -> (t -> 'a) -> 'a
(** §10 multi-threading: ask VeilS-ENC (through VeilMon) to
    synchronize [vcpu]'s Dom_ENC instance with this enclave, then run
    the body as a thread pinned to that VCPU. *)

val ocall : t -> Guest_kernel.Sysno.t -> Guest_kernel.Ktypes.arg list -> Guest_kernel.Ktypes.ret
(** Redirect a system call to the untrusted application (§6.2): deep
    copy arguments into the shared arena, exit, execute, re-enter,
    copy results back, IAGO-check.  Raises {!Enclave_killed} on an
    SDK-unsupported call. *)

val ocall_batch :
  t -> (Guest_kernel.Sysno.t * Guest_kernel.Ktypes.arg list) list -> Guest_kernel.Ktypes.ret list
(** §10's system-call batching: marshal several redirected calls into
    the arena, pay the two domain switches once, execute the batch in
    the untrusted application, and copy all results back together.
    Calls are executed in order; each is validated and IAGO-checked
    exactly as in {!ocall}.  An unsupported call kills the enclave. *)

val compute : t -> int -> unit
(** Charge enclave computation cycles; periodically takes the timer
    interrupt (relayed to Dom_UNT per §6.2). *)

val malloc : t -> int -> int option
val free : t -> int -> unit

val read_data : t -> va:Sevsnp.Types.va -> len:int -> bytes
(** Read enclave memory through the protected tables (faults on
    evicted pages surface as {!Sevsnp.Platform.Guest_page_fault}). *)

val write_data : t -> va:Sevsnp.Types.va -> bytes -> unit

val heap_base : t -> Sevsnp.Types.va
val enclave_range : t -> Sevsnp.Types.va * Sevsnp.Types.va
