(** Mini library OS for enclaves (§10's LibOS integration).

    Two of the benefits the paper expects from a Graphene-style LibOS,
    implemented directly over the SDK:

    - a **containerized in-enclave filesystem**: paths under a memfs
      mount are served entirely from enclave memory — zero redirected
      system calls, zero exits, invisible to the OS;
    - **buffered stdio**: file streams batch small reads/writes into
      enclave-side buffers, amortizing the redirection cost exactly
      like musl's FILE layer would.

    Everything else passes through to the host kernel via the normal
    redirection path. *)

type t

val create : ?stdio_buffer:int -> Runtime.t -> t
(** Default stdio buffer: 8 KB. *)

val mount_memfs : t -> prefix:string -> unit
(** Serve every path under [prefix] from enclave memory. *)

val is_memfs_path : t -> string -> bool

(* File streams (FILE*-style) *)

type file

val fopen : t -> string -> mode:[ `Read | `Write | `Append ] -> (file, string) result
val fwrite : t -> file -> bytes -> (int, string) result
val fread : t -> file -> int -> (bytes, string) result
val fflush : t -> file -> (unit, string) result
val fclose : t -> file -> (unit, string) result

val unlink : t -> string -> (unit, string) result
val exists : t -> string -> bool
val file_size : t -> string -> int option

(* Accounting *)

val ocalls_saved : t -> int
(** Redirected calls avoided by buffering + memfs (vs issuing one call
    per stream operation). *)
