module C = Sevsnp.Cycles
module K = Guest_kernel.Ktypes
module S = Guest_kernel.Sysno

type slot = {
  mutable req : (S.t * K.arg list) option;
  mutable res : K.ret option;
}

type t = {
  rt : Runtime.t;
  slots : slot array;
  mutable next : int;
  mutable total : int;
}

type ticket = int

(* The ring logically lives in the shared arena; its slot metadata is
   modeled as OCaml state while every submit/complete charges the
   arena-crossing copy costs. *)
let create rt ~slots =
  if slots <= 0 then Error "exitless: need at least one slot"
  else begin
    let _, _ = Runtime.enclave_range rt in
    Ok { rt; slots = Array.init slots (fun _ -> { req = None; res = None }); next = 0; total = 0 }
  end

let charge_enclave t n = Sevsnp.Vcpu.charge (Runtime.system t.rt).Veil_core.Boot.vcpu C.Copy n

let submit t sys args =
  let spec = Spec.spec_of sys in
  if not spec.Spec.sdk_supported then Error ("exitless: unsupported call " ^ S.to_string sys)
  else begin
    match Sanitizer.check_call spec args with
    | Error e -> Error ("exitless: " ^ e)
    | Ok () ->
        let slot_idx = t.next mod Array.length t.slots in
        let slot = t.slots.(slot_idx) in
        if slot.req <> None then Error "exitless: ring full (drain the worker)"
        else begin
          (* marshal the request into the shared ring: deep copy, but
             no domain switch *)
          charge_enclave t (C.deep_copy_cost (Spec.copy_in_bytes spec args) + 400);
          slot.req <- Some (sys, args);
          slot.res <- None;
          let ticket = t.next in
          t.next <- t.next + 1;
          t.total <- t.total + 1;
          Ok ticket
        end
  end

let poll t ticket =
  let slot = t.slots.(ticket mod Array.length t.slots) in
  match slot.res with
  | Some r ->
      charge_enclave t (C.deep_copy_cost (Spec.copy_out_bytes r) + 200);
      slot.res <- None;
      Some r
  | None -> None

let drain_on t worker =
  let sys_boot = Runtime.system t.rt in
  let kernel = sys_boot.Veil_core.Boot.kernel in
  let completed = ref 0 in
  Array.iter
    (fun slot ->
      match slot.req with
      | None -> ()
      | Some (sys, args) ->
          (* the worker VCPU pays the kernel work (it runs at Dom_UNT
             already: no switch on the enclave's VCPU) *)
          Sevsnp.Vcpu.charge worker C.Kernel C.syscall_base;
          let ret = Guest_kernel.Kernel.invoke kernel (Runtime.proc t.rt) sys args in
          slot.req <- None;
          slot.res <- Some ret;
          incr completed)
    t.slots;
  !completed

let await t ~worker ticket =
  match poll t ticket with
  | Some r -> r
  | None ->
      ignore (drain_on t worker);
      (match poll t ticket with
      | Some r -> r
      | None -> failwith "exitless: completion lost")

let pending t = Array.fold_left (fun acc s -> if s.req <> None then acc + 1 else acc) 0 t.slots

let submitted_total t = t.total
