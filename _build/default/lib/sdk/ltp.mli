(** LTP-style system-call robustness suite (§7).

    Mirrors the paper's evaluation of the SDK against the Linux Test
    Project: for every one of the 96 calls, a battery of positive and
    negative cases runs *inside an enclave* through the redirection
    path.  A case passes when the call behaves per specification
    (correct result or the right errno); calls the single-threaded SDK
    does not support kill the enclave, failing all of their cases —
    exactly the prototype's behaviour. *)

type result = {
  lsys : Guest_kernel.Sysno.t;
  total : int;
  passed : int;
  killed : bool;  (** the enclave died on this call *)
}

type summary = {
  calls_total : int;
  calls_all_passed : int;  (** the paper reports 85/96 *)
  cases_total : int;
  cases_passed : int;
}

val cases_for : Guest_kernel.Sysno.t -> int
(** Number of battery cases defined for a call (>= 2 for every call). *)

val run_one : Veil_core.Boot.veil_system -> Guest_kernel.Sysno.t -> result
(** Fresh enclave, run the call's battery. *)

val run_all : Veil_core.Boot.veil_system -> result list

val summarize : result list -> summary
