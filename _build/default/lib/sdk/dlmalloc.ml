type t = {
  base : int;
  size : int;
  mutable free_list : (int * int) list;  (** (addr, size), address-ordered *)
  live : (int, int) Hashtbl.t;  (** addr -> size *)
  mutable allocated : int;
}

let align = 16

let round_up n = (n + align - 1) / align * align

let create ~base ~size =
  if base <= 0 || size < align then invalid_arg "Dlmalloc.create";
  { base; size; free_list = [ (base, size) ]; live = Hashtbl.create 64; allocated = 0 }

let malloc t n =
  if n <= 0 then None
  else begin
    let need = round_up n in
    (* first fit *)
    let rec take acc = function
      | [] -> None
      | (addr, size) :: rest when size >= need ->
          let remainder = if size > need then [ (addr + need, size - need) ] else [] in
          t.free_list <- List.rev_append acc (remainder @ rest);
          Hashtbl.replace t.live addr need;
          t.allocated <- t.allocated + need;
          Some addr
      | blk :: rest -> take (blk :: acc) rest
    in
    take [] t.free_list
  end

let calloc t n = malloc t n

let insert_coalesced free_list (addr, size) =
  (* Address-sort, then one linear coalescing pass. *)
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) ((addr, size) :: free_list) in
  let rec coalesce = function
    | (a1, s1) :: (a2, s2) :: rest when a1 + s1 = a2 -> coalesce ((a1, s1 + s2) :: rest)
    | blk :: rest -> blk :: coalesce rest
    | [] -> []
  in
  coalesce sorted

let free t addr =
  match Hashtbl.find_opt t.live addr with
  | None -> invalid_arg (Printf.sprintf "Dlmalloc.free: 0x%x is not a live allocation" addr)
  | Some size ->
      Hashtbl.remove t.live addr;
      t.allocated <- t.allocated - size;
      t.free_list <- insert_coalesced t.free_list (addr, size)

let block_size t addr = Hashtbl.find_opt t.live addr

let realloc t addr n =
  match Hashtbl.find_opt t.live addr with
  | None -> malloc t n
  | Some old_size ->
      if round_up n <= old_size then Some addr
      else begin
        match malloc t n with
        | None -> None
        | Some fresh ->
            free t addr;
            Some fresh
      end

let allocated_bytes t = t.allocated

let free_bytes t = List.fold_left (fun acc (_, s) -> acc + s) 0 t.free_list

let check_invariants t =
  let rec sorted_disjoint = function
    | (a1, s1) :: ((a2, _) :: _ as rest) -> a1 + s1 < a2 && sorted_disjoint rest
    | _ -> true
  in
  let in_bounds = List.for_all (fun (a, s) -> a >= t.base && a + s <= t.base + t.size) t.free_list in
  let live_total = Hashtbl.fold (fun _ s acc -> acc + s) t.live 0 in
  sorted_disjoint t.free_list && in_bounds
  && live_total = t.allocated
  && live_total + free_bytes t <= t.size
