module K = Guest_kernel.Ktypes
module S = Guest_kernel.Sysno

type t = Runtime.t

let o_rdonly = 0
let o_wronly = 1
let o_rdwr = 2
let o_creat = 0x40
let o_trunc = 0x200
let o_append = 0x400

let int_ret = function
  | K.RInt n -> Ok n
  | K.RErr e -> Error e
  | _ -> Error K.EINVAL

let unit_ret r = Result.map (fun (_ : int) -> ()) (int_ret r)

let buf_ret = function
  | K.RBuf b -> Ok b
  | K.RErr e -> Error e
  | _ -> Error K.EINVAL

let open_ t path ~flags ~mode = int_ret (Runtime.ocall t S.Open [ K.Str path; K.Int flags; K.Int mode ])

let close t fd = unit_ret (Runtime.ocall t S.Close [ K.Int fd ])

let read t fd len = buf_ret (Runtime.ocall t S.Read [ K.Int fd; K.Int len ])

let write t fd data = int_ret (Runtime.ocall t S.Write [ K.Int fd; K.Buf data ])

let pread t fd ~len ~pos = buf_ret (Runtime.ocall t S.Pread64 [ K.Int fd; K.Int len; K.Int pos ])

let pwrite t fd data ~pos = int_ret (Runtime.ocall t S.Pwrite64 [ K.Int fd; K.Buf data; K.Int pos ])

let lseek t fd off whence =
  let w = match whence with K.SEEK_SET -> 0 | K.SEEK_CUR -> 1 | K.SEEK_END -> 2 in
  int_ret (Runtime.ocall t S.Lseek [ K.Int fd; K.Int off; K.Int w ])

let unlink t path = unit_ret (Runtime.ocall t S.Unlink [ K.Str path ])

let mmap t ~len ~prot =
  int_ret (Runtime.ocall t S.Mmap [ K.Int 0; K.Int len; K.Int prot; K.Int 0x22; K.Int (-1); K.Int 0 ])

let munmap t ~va ~len = unit_ret (Runtime.ocall t S.Munmap [ K.Int va; K.Int len ])

let socket t = int_ret (Runtime.ocall t S.Socket [ K.Int 2; K.Int 1; K.Int 0 ])

let connect t fd ~port = unit_ret (Runtime.ocall t S.Connect [ K.Int fd; K.Int port ])

let send t fd data = int_ret (Runtime.ocall t S.Sendto [ K.Int fd; K.Buf data ])

let recv t fd len = buf_ret (Runtime.ocall t S.Recvfrom [ K.Int fd; K.Int len ])

let console_fd = Hashtbl.create 4

let printf t fmt =
  Printf.ksprintf
    (fun s ->
      let fd =
        match Hashtbl.find_opt console_fd (Runtime.proc t).Guest_kernel.Process.pid with
        | Some fd -> fd
        | None -> (
            match open_ t "/dev/console" ~flags:o_wronly ~mode:0o644 with
            | Ok fd ->
                Hashtbl.replace console_fd (Runtime.proc t).Guest_kernel.Process.pid fd;
                fd
            | Error _ -> -1)
      in
      if fd >= 0 then ignore (write t fd (Bytes.of_string s)))
    fmt

let getrandom t len = buf_ret (Runtime.ocall t S.Getrandom [ K.Int len ])

let getpid t = match Runtime.ocall t S.Getpid [] with K.RInt n -> n | _ -> -1

let malloc = Runtime.malloc
let free = Runtime.free
