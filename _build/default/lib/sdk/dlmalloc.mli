(** In-enclave heap allocator (dlmalloc-style, §7).

    First-fit over an address-ordered free list with splitting and
    coalescing on free — operating on the enclave's heap virtual
    range.  Metadata lives outside enclave memory in this simulation;
    the allocation *addresses* are real enclave VAs. *)

type t

val create : base:int -> size:int -> t
(** Manage [size] bytes starting at virtual address [base]. *)

val malloc : t -> int -> int option
(** 16-byte-aligned allocation; [None] when out of memory. *)

val calloc : t -> int -> int option
val free : t -> int -> unit
(** Raises [Invalid_argument] on a pointer not returned by [malloc]
    (double free or wild free). *)

val realloc : t -> int -> int -> int option

val allocated_bytes : t -> int
val free_bytes : t -> int
val block_size : t -> int -> int option
(** Size of the live block at an address, if any. *)

val check_invariants : t -> bool
(** Free list sorted, non-overlapping, coalesced; live and free blocks
    tile the arena.  Used by property tests. *)
