(** Minimal enclave libc.

    Thin, typed wrappers over {!Runtime.ocall} mirroring the subset of
    musl the paper's SDK exposes — file I/O, sockets, memory mapping
    and console output — plus the in-enclave allocator. *)

type t = Runtime.t

val open_ : t -> string -> flags:int -> mode:int -> (int, Guest_kernel.Ktypes.errno) result
val close : t -> int -> (unit, Guest_kernel.Ktypes.errno) result
val read : t -> int -> int -> (bytes, Guest_kernel.Ktypes.errno) result
val write : t -> int -> bytes -> (int, Guest_kernel.Ktypes.errno) result
val pread : t -> int -> len:int -> pos:int -> (bytes, Guest_kernel.Ktypes.errno) result
val pwrite : t -> int -> bytes -> pos:int -> (int, Guest_kernel.Ktypes.errno) result
val lseek : t -> int -> int -> Guest_kernel.Ktypes.whence -> (int, Guest_kernel.Ktypes.errno) result
val unlink : t -> string -> (unit, Guest_kernel.Ktypes.errno) result

val mmap : t -> len:int -> prot:int -> (int, Guest_kernel.Ktypes.errno) result
(** Anonymous mapping in *untrusted* process memory (the IAGO check
    rejects results inside the enclave). *)

val munmap : t -> va:int -> len:int -> (unit, Guest_kernel.Ktypes.errno) result

val socket : t -> (int, Guest_kernel.Ktypes.errno) result
val connect : t -> int -> port:int -> (unit, Guest_kernel.Ktypes.errno) result
val send : t -> int -> bytes -> (int, Guest_kernel.Ktypes.errno) result
val recv : t -> int -> int -> (bytes, Guest_kernel.Ktypes.errno) result

val printf : t -> ('a, unit, string, unit) format4 -> 'a
(** Formatted write to the console device. *)

val getrandom : t -> int -> (bytes, Guest_kernel.Ktypes.errno) result
val getpid : t -> int

val malloc : t -> int -> int option
val free : t -> int -> unit

(* Standard open flags (Linux-compatible bit values). *)
val o_rdonly : int
val o_wronly : int
val o_rdwr : int
val o_creat : int
val o_trunc : int
val o_append : int
