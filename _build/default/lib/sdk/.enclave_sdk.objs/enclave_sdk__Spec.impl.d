lib/sdk/spec.ml: Bytes Guest_kernel List Printf String
