lib/sdk/ltp.mli: Guest_kernel Veil_core
