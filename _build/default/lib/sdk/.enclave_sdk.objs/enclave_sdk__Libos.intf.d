lib/sdk/libos.mli: Runtime
