lib/sdk/sanitizer.mli: Guest_kernel Sevsnp Spec
