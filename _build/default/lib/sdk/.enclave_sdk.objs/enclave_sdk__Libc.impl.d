lib/sdk/libc.ml: Bytes Guest_kernel Hashtbl Printf Result Runtime
