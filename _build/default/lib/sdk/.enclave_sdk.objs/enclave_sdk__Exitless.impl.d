lib/sdk/exitless.ml: Array Guest_kernel Runtime Sanitizer Sevsnp Spec Veil_core
