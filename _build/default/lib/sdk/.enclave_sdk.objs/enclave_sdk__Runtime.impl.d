lib/sdk/runtime.ml: Bytes Dlmalloc Fun Guest_kernel Hypervisor List Printf Sanitizer Sevsnp Spec Veil_core
