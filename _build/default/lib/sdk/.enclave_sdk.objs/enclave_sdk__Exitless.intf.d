lib/sdk/exitless.mli: Guest_kernel Runtime Sevsnp
