lib/sdk/dlmalloc.ml: Hashtbl List Printf
