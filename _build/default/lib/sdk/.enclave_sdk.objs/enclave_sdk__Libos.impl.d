lib/sdk/libos.ml: Buffer Bytes Guest_kernel Hashtbl Libc List Option Result Runtime Sevsnp String
