lib/sdk/sanitizer.ml: Guest_kernel Sevsnp Spec
