lib/sdk/runtime.mli: Guest_kernel Sevsnp Veil_core
