lib/sdk/dlmalloc.mli:
