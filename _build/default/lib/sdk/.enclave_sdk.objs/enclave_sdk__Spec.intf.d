lib/sdk/spec.mli: Guest_kernel
