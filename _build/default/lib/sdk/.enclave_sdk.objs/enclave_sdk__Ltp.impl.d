lib/sdk/ltp.ml: Bytes Guest_kernel List Runtime Spec Veil_core
