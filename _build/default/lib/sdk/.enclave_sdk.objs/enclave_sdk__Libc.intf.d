lib/sdk/libc.mli: Guest_kernel Runtime
