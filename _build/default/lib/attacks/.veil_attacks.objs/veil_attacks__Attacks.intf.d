lib/attacks/attacks.mli: Sevsnp
