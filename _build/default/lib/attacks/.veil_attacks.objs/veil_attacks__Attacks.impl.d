lib/attacks/attacks.ml: Bytes Enclave_sdk Format Guest_kernel Hypervisor List Option Sevsnp String Veil_core Veil_crypto
