type request =
  | Req_none
  | Req_io of { write : bool; port : int; len : int }
  | Req_domain_switch of { target_vmpl : Types.vmpl }
  | Req_create_vcpu of { vmsa_gpfn : Types.gpfn; target_vmpl : Types.vmpl }
  | Req_page_state_change of { gpfn : Types.gpfn; to_shared : bool }
  | Req_set_switch_policy of { ghcb_gpfn : Types.gpfn; allowed : (Types.vmpl * Types.vmpl) list }
  | Req_relay_interrupts_to of Types.vmpl
  | Req_halt of string

type t = {
  mutable request : request;
  mutable exit_info : int;
  mutable payload : bytes;
  mutable response : int;
}

let create () = { request = Req_none; exit_info = 0; payload = Bytes.empty; response = 0 }

let clear t =
  t.request <- Req_none;
  t.exit_info <- 0;
  t.payload <- Bytes.empty;
  t.response <- 0
