type report = {
  launch_measurement : bytes;
  requester_vmpl : Types.vmpl;
  report_data : bytes;
  signature : Veil_crypto.Schnorr.signature;
}

type t = {
  rng : Veil_crypto.Rng.t;
  key : Veil_crypto.Schnorr.keypair;
  mutable launch : bytes option;
}

let create rng = { rng; key = Veil_crypto.Schnorr.keygen rng; launch = None }

let platform_public_key t = t.key.Veil_crypto.Schnorr.public

let record_launch t ~measurement = t.launch <- Some measurement

let launch_measurement t = t.launch

let message ~launch ~vmpl ~data =
  let m = Veil_crypto.Measurement.create ~domain:"sev-snp-attestation-report" in
  Veil_crypto.Measurement.add_bytes m ~label:"launch" launch;
  Veil_crypto.Measurement.add_int m ~label:"vmpl" (Types.vmpl_index vmpl);
  Veil_crypto.Measurement.add_bytes m ~label:"report-data" data;
  Veil_crypto.Measurement.digest m

let report_message r =
  message ~launch:r.launch_measurement ~vmpl:r.requester_vmpl ~data:r.report_data

let report t ~requester_vmpl ~report_data =
  match t.launch with
  | None -> failwith "attestation: no launch measurement recorded"
  | Some launch ->
      let msg = message ~launch ~vmpl:requester_vmpl ~data:report_data in
      let signature = Veil_crypto.Schnorr.sign t.rng ~secret:t.key.Veil_crypto.Schnorr.secret msg in
      { launch_measurement = launch; requester_vmpl; report_data; signature }

let verify ~public_key r =
  Veil_crypto.Schnorr.verify ~public:public_key ~msg:(report_message r) r.signature
