(** Reverse Map (RMP) table.

    One entry per guest-physical frame, tracking the SEV-SNP page
    state, the VMSA attribute and the per-VMPL access permissions that
    [RMPADJUST] manipulates.  The RMP is hardware state: guest software
    only reaches it through {!Platform.rmpadjust} /
    {!Platform.pvalidate}, the hypervisor through the [hv_*]
    operations (standing in for RMPUPDATE). *)

type page_state =
  | Invalid  (** not validated; any guest access faults *)
  | Private  (** validated, encrypted guest memory *)
  | Shared  (** unencrypted, host-visible (GHCBs, bounce buffers) *)

type entry = {
  mutable state : page_state;
  mutable vmsa : bool;
  mutable touched : bool;  (** frame contents already pulled into cache by a prior RMPADJUST *)
  perms : Perm.t array;  (** indexed by VMPL; [perms.(0)] is pinned to [Perm.all] *)
}

type t

val create : npages:int -> t

val npages : t -> int

val entry : t -> Types.gpfn -> entry
(** The (lazily materialized) entry; out-of-range frames raise
    [Invalid_argument]. *)

val state : t -> Types.gpfn -> page_state
val perms_of : t -> Types.gpfn -> Types.vmpl -> Perm.t
val is_vmsa : t -> Types.gpfn -> bool

val validate : t -> Types.gpfn -> unit
(** PVALIDATE effect: [Invalid] or [Shared] frame becomes [Private]
    with full VMPL-0 permissions and no lower-VMPL permissions. *)

val unvalidate : t -> Types.gpfn -> unit
(** Transition to [Shared] (guest gave the page back to the host). *)

val adjust :
  t -> caller:Types.vmpl -> gpfn:Types.gpfn -> target:Types.vmpl -> perms:Perm.t -> vmsa:bool -> (unit, string) result
(** RMPADJUST semantics: the caller must be strictly more privileged
    than [target]; the frame must be [Private].  On success sets
    [target]'s permissions and the VMSA attribute. *)

val check_guest_access :
  t -> gpfn:Types.gpfn -> vmpl:Types.vmpl -> cpl:Types.cpl -> access:Types.access -> (unit, Types.npf_info) result
(** The hardware page-access check (table walk already done).  VMSA
    frames are never writable from guest software except by VMPL-0
    (initialization). *)

val host_can_access : t -> Types.gpfn -> bool
(** The host may only touch [Shared] frames. *)

val iter_entries : t -> (Types.gpfn -> entry -> unit) -> unit
(** Iterate over materialized entries only. *)
