(** SEV-SNP remote attestation (simulated).

    The platform measures the boot image at launch and, on request
    from guest software, produces a signed report carrying the launch
    measurement, the *VMPL of the requester* and caller-chosen report
    data (e.g. a Diffie-Hellman public value).  Signing uses a
    platform Schnorr key standing in for AMD's VCEK chain; a remote
    user verifies against {!platform_public_key}. *)

type report = {
  launch_measurement : bytes;
  requester_vmpl : Types.vmpl;
  report_data : bytes;
  signature : Veil_crypto.Schnorr.signature;
}

type t

val create : Veil_crypto.Rng.t -> t

val platform_public_key : t -> Veil_crypto.Bignum.t

val record_launch : t -> measurement:bytes -> unit
(** Called once by the platform when the boot image is loaded. *)

val launch_measurement : t -> bytes option

val report : t -> requester_vmpl:Types.vmpl -> report_data:bytes -> report
(** Raises [Failure] before [record_launch]. *)

val verify : public_key:Veil_crypto.Bignum.t -> report -> bool
(** Remote-user-side signature check. *)

val report_message : report -> bytes
(** The exact byte string the platform signs (exposed for tests). *)
