(** Guest-Hypervisor Communication Block.

    A GHCB is a [Shared] page through which a guest context passes the
    register subset and request data a hypercall needs (§3, Fig. 1).
    Because the page is shared, the hypervisor — and, for user-mapped
    GHCBs (§6.2), unprivileged guest code — can read and write it
    freely; nothing here is trusted. *)

(** The non-automatic exit reasons the simulated platform supports. *)
type request =
  | Req_none
  | Req_io of { write : bool; port : int; len : int }  (** virtio-style I/O *)
  | Req_domain_switch of { target_vmpl : Types.vmpl }
  | Req_create_vcpu of { vmsa_gpfn : Types.gpfn; target_vmpl : Types.vmpl }
      (** register + launch a new VCPU instance from a prepared VMSA *)
  | Req_page_state_change of { gpfn : Types.gpfn; to_shared : bool }
  | Req_set_switch_policy of { ghcb_gpfn : Types.gpfn; allowed : (Types.vmpl * Types.vmpl) list }
      (** VMPL-0 instructs the host: this GHCB may only request switches
          between the listed VMPL pairs (§6.2's errant-hypercall guard) *)
  | Req_relay_interrupts_to of Types.vmpl
      (** VMPL-0 instructs the host where to deliver external interrupts *)
  | Req_halt of string

type t = {
  mutable request : request;
  mutable exit_info : int;
  mutable payload : bytes;  (** request-specific data (e.g. I/O buffer) *)
  mutable response : int;  (** host's scalar reply *)
}

val create : unit -> t

val clear : t -> unit
