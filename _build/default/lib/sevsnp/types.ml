type vmpl = Vmpl0 | Vmpl1 | Vmpl2 | Vmpl3
type cpl = Cpl0 | Cpl3

type gpa = int
type gpfn = int
type va = int

type access = Read | Write | Execute

type npf_info = {
  fault_gpa : gpa;
  fault_vmpl : vmpl;
  fault_access : access;
  fault_reason : string;
}

exception Npf of npf_info
exception Cvm_halted of string

let page_shift = 12
let page_size = 1 lsl page_shift

let gpfn_of_gpa gpa = gpa lsr page_shift
let gpa_of_gpfn gpfn = gpfn lsl page_shift
let page_offset gpa = gpa land (page_size - 1)

let vmpl_index = function Vmpl0 -> 0 | Vmpl1 -> 1 | Vmpl2 -> 2 | Vmpl3 -> 3

let vmpl_of_index = function
  | 0 -> Vmpl0
  | 1 -> Vmpl1
  | 2 -> Vmpl2
  | 3 -> Vmpl3
  | n -> invalid_arg (Printf.sprintf "vmpl_of_index: %d" n)

let vmpl_strictly_higher a b = vmpl_index a < vmpl_index b

let pp_vmpl fmt v = Format.fprintf fmt "VMPL-%d" (vmpl_index v)
let pp_cpl fmt c = Format.fprintf fmt "CPL-%d" (match c with Cpl0 -> 0 | Cpl3 -> 3)

let pp_access fmt = function
  | Read -> Format.pp_print_string fmt "read"
  | Write -> Format.pp_print_string fmt "write"
  | Execute -> Format.pp_print_string fmt "execute"

let pp_npf fmt i =
  Format.fprintf fmt "#NPF{gpa=0x%x vmpl=%a access=%a: %s}" i.fault_gpa pp_vmpl i.fault_vmpl
    pp_access i.fault_access i.fault_reason

let equal_vmpl (a : vmpl) b = a = b
let equal_cpl (a : cpl) b = a = b
