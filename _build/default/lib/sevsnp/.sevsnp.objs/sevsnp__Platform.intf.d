lib/sevsnp/platform.mli: Attestation Cycles Ghcb Hashtbl Pagetable Perm Phys_mem Rmp Types Vcpu Veil_crypto Vmsa
