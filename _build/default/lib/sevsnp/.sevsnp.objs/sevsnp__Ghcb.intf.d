lib/sevsnp/ghcb.mli: Types
