lib/sevsnp/platform.ml: Attestation Bytes Cycles Format Ghcb Hashtbl List Pagetable Phys_mem Printf Rmp Types Vcpu Veil_crypto Vmsa
