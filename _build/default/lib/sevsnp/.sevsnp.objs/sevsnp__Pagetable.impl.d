lib/sevsnp/pagetable.ml: List Printf Types
