lib/sevsnp/phys_mem.mli: Types
