lib/sevsnp/phys_mem.ml: Bytes Char Hashtbl Printf Types
