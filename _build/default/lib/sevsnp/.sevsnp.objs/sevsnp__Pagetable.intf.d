lib/sevsnp/pagetable.mli: Types
