lib/sevsnp/vcpu.ml: Cycles Printf Vmsa
