lib/sevsnp/rmp.ml: Array Format Hashtbl Perm Printf Types
