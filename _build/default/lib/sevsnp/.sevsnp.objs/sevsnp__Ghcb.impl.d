lib/sevsnp/ghcb.ml: Bytes Types
