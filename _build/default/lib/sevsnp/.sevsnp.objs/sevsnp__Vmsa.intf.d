lib/sevsnp/vmsa.mli: Format Types
