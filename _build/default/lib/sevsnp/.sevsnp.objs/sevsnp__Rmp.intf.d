lib/sevsnp/rmp.mli: Perm Types
