lib/sevsnp/attestation.mli: Types Veil_crypto
