lib/sevsnp/cycles.ml: Array
