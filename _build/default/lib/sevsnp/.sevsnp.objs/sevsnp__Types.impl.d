lib/sevsnp/types.ml: Format Printf
