lib/sevsnp/vmsa.ml: Array Format Types
