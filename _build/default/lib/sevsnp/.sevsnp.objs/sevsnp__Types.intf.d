lib/sevsnp/types.mli: Format
