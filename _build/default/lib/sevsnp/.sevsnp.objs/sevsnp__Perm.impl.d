lib/sevsnp/perm.ml: Format Types
