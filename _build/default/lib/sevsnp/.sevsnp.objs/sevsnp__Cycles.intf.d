lib/sevsnp/cycles.mli:
