lib/sevsnp/attestation.ml: Types Veil_crypto
