lib/sevsnp/perm.mli: Format Types
