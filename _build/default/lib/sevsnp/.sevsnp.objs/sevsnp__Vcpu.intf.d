lib/sevsnp/vcpu.mli: Cycles Types Vmsa
