(** Virtual Machine Save Area.

    One per (VCPU instance, domain): holds the full architectural
    register state that the hardware saves on VMGEXIT and restores on
    VMENTER.  A VMSA's VMPL is assigned at creation and is immutable
    for the VCPU instance's lifetime — the property Veil's VCPU
    replication design (§5.2) is built around. *)

type t = {
  vcpu_id : int;
  vmpl : Types.vmpl;  (** fixed at creation *)
  backing_gpfn : Types.gpfn;  (** the guest frame holding this VMSA *)
  mutable cpl : Types.cpl;
  mutable rip : int;
  mutable rsp : int;
  mutable cr3 : Types.gpfn;  (** page-table root frame *)
  gprs : int array;  (** 16 general-purpose registers *)
  mutable ghcb_gpa : Types.gpa;  (** the GHCB MSR value for this context *)
}

val create : vcpu_id:int -> vmpl:Types.vmpl -> backing_gpfn:Types.gpfn -> t

val copy_state : src:t -> dst:t -> unit
(** Copy the mutable register state (not identity fields). *)

val pp : Format.formatter -> t -> unit
