type t = { npages : int; frames : (int, bytes) Hashtbl.t }

let create ~npages =
  if npages <= 0 then invalid_arg "Phys_mem.create";
  { npages; frames = Hashtbl.create 1024 }

let npages t = t.npages
let bytes_size t = t.npages * Types.page_size

let valid_gpa t gpa = gpa >= 0 && gpa < bytes_size t

let frame t gpfn =
  match Hashtbl.find_opt t.frames gpfn with
  | Some f -> f
  | None ->
      let f = Bytes.make Types.page_size '\000' in
      Hashtbl.replace t.frames gpfn f;
      f

let check_range t gpa len =
  if len < 0 || gpa < 0 || gpa + len > bytes_size t then
    invalid_arg (Printf.sprintf "Phys_mem: access 0x%x+%d out of range" gpa len)

let read t gpa len =
  check_range t gpa len;
  let out = Bytes.create len in
  let pos = ref 0 in
  while !pos < len do
    let a = gpa + !pos in
    let off = Types.page_offset a in
    let n = min (len - !pos) (Types.page_size - off) in
    (match Hashtbl.find_opt t.frames (Types.gpfn_of_gpa a) with
    | Some f -> Bytes.blit f off out !pos n
    | None -> Bytes.fill out !pos n '\000');
    pos := !pos + n
  done;
  out

let write t gpa data =
  let len = Bytes.length data in
  check_range t gpa len;
  let pos = ref 0 in
  while !pos < len do
    let a = gpa + !pos in
    let off = Types.page_offset a in
    let n = min (len - !pos) (Types.page_size - off) in
    Bytes.blit data !pos (frame t (Types.gpfn_of_gpa a)) off n;
    pos := !pos + n
  done

let read_byte t gpa =
  check_range t gpa 1;
  match Hashtbl.find_opt t.frames (Types.gpfn_of_gpa gpa) with
  | Some f -> Char.code (Bytes.get f (Types.page_offset gpa))
  | None -> 0

let write_byte t gpa v =
  check_range t gpa 1;
  Bytes.set (frame t (Types.gpfn_of_gpa gpa)) (Types.page_offset gpa) (Char.chr (v land 0xff))

let read_u64 t gpa =
  let b = read t gpa 8 in
  let v = ref 0 in
  for i = 7 downto 0 do
    v := (!v lsl 8) lor Char.code (Bytes.get b i)
  done;
  !v land max_int

let write_u64 t gpa v =
  let b = Bytes.create 8 in
  for i = 0 to 7 do
    Bytes.set b i (Char.chr ((v lsr (8 * i)) land 0xff))
  done;
  write t gpa b

let zero_page t gpfn =
  if gpfn < 0 || gpfn >= t.npages then invalid_arg "Phys_mem.zero_page";
  match Hashtbl.find_opt t.frames gpfn with
  | Some f -> Bytes.fill f 0 Types.page_size '\000'
  | None -> ()

let page_is_materialized t gpfn = Hashtbl.mem t.frames gpfn
