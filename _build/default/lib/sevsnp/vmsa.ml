type t = {
  vcpu_id : int;
  vmpl : Types.vmpl;
  backing_gpfn : Types.gpfn;
  mutable cpl : Types.cpl;
  mutable rip : int;
  mutable rsp : int;
  mutable cr3 : Types.gpfn;
  gprs : int array;
  mutable ghcb_gpa : Types.gpa;
}

let create ~vcpu_id ~vmpl ~backing_gpfn =
  {
    vcpu_id;
    vmpl;
    backing_gpfn;
    cpl = Types.Cpl0;
    rip = 0;
    rsp = 0;
    cr3 = 0;
    gprs = Array.make 16 0;
    ghcb_gpa = 0;
  }

let copy_state ~src ~dst =
  dst.cpl <- src.cpl;
  dst.rip <- src.rip;
  dst.rsp <- src.rsp;
  dst.cr3 <- src.cr3;
  Array.blit src.gprs 0 dst.gprs 0 16;
  dst.ghcb_gpa <- src.ghcb_gpa

let pp fmt t =
  Format.fprintf fmt "VMSA{vcpu=%d %a %a rip=0x%x cr3=%d gpfn=%d}" t.vcpu_id Types.pp_vmpl t.vmpl
    Types.pp_cpl t.cpl t.rip t.cr3 t.backing_gpfn
