type t = { read : bool; write : bool; user_exec : bool; super_exec : bool }

let none = { read = false; write = false; user_exec = false; super_exec = false }
let all = { read = true; write = true; user_exec = true; super_exec = true }
let ro = { none with read = true }
let rw = { none with read = true; write = true }
let rx = { none with read = true; user_exec = true; super_exec = true }
let r_user_exec = { none with read = true; user_exec = true }

let allows t access cpl =
  match (access : Types.access) with
  | Types.Read -> t.read
  | Types.Write -> t.write
  | Types.Execute -> ( match (cpl : Types.cpl) with Types.Cpl0 -> t.super_exec | Types.Cpl3 -> t.user_exec)

let subset a b =
  (not a.read || b.read)
  && (not a.write || b.write)
  && (not a.user_exec || b.user_exec)
  && (not a.super_exec || b.super_exec)

let union a b =
  {
    read = a.read || b.read;
    write = a.write || b.write;
    user_exec = a.user_exec || b.user_exec;
    super_exec = a.super_exec || b.super_exec;
  }

let inter a b =
  {
    read = a.read && b.read;
    write = a.write && b.write;
    user_exec = a.user_exec && b.user_exec;
    super_exec = a.super_exec && b.super_exec;
  }

let equal (a : t) b = a = b

let pp fmt t =
  let c b ch = if b then ch else '-' in
  Format.fprintf fmt "%c%c%c%c" (c t.read 'r') (c t.write 'w') (c t.user_exec 'u') (c t.super_exec 's')
