(** Core architectural types of the simulated AMD SEV-SNP platform. *)

(** Virtual machine privilege levels.  Lower numbers are more
    privileged; only VMPL-0 may execute [PVALIDATE] and create VMSAs. *)
type vmpl = Vmpl0 | Vmpl1 | Vmpl2 | Vmpl3

(** x86 protection rings, reduced to the two the paper uses. *)
type cpl = Cpl0 | Cpl3

type gpa = int
(** Guest-physical address. *)

type gpfn = int
(** Guest-physical frame number ([gpa / page_size]). *)

type va = int
(** Guest-virtual address. *)

type access = Read | Write | Execute
(** Access kind for fault reporting; [Execute] is qualified by the CPL
    of the fetching context. *)

type npf_info = {
  fault_gpa : gpa;
  fault_vmpl : vmpl;
  fault_access : access;
  fault_reason : string;
}
(** Payload of a nested page fault (#NPF). *)

exception Npf of npf_info
(** Raised by the platform on an RMP / VMPL permission violation.
    Unhandled violations halt the CVM (see {!Platform.halt}). *)

exception Cvm_halted of string
(** Raised when software touches a platform that has already halted. *)

val page_size : int
val page_shift : int

val gpfn_of_gpa : gpa -> gpfn
val gpa_of_gpfn : gpfn -> gpa
val page_offset : gpa -> int

val vmpl_index : vmpl -> int
val vmpl_of_index : int -> vmpl

val vmpl_strictly_higher : vmpl -> vmpl -> bool
(** [vmpl_strictly_higher a b] is true when [a] is strictly more
    privileged than [b] (numerically smaller). *)

val pp_vmpl : Format.formatter -> vmpl -> unit
val pp_cpl : Format.formatter -> cpl -> unit
val pp_npf : Format.formatter -> npf_info -> unit

val equal_vmpl : vmpl -> vmpl -> bool
val equal_cpl : cpl -> cpl -> bool
