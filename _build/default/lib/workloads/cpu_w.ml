let sevenzip ?(input_kb = 192) () =
  Workload.make ~name:"7zip"
    ~setup:(fun ctx ->
      let size = input_kb * 1024 * ctx.Workload.scale in
      let data = Textgen.text ctx.Workload.rng size in
      let fd =
        Env.open_ ctx.Workload.client "/srv/7zip-input.dat"
          ~flags:(Env.o_creat lor Env.o_wronly lor Env.o_trunc)
          ~mode:0o644
      in
      ignore (Env.write ctx.Workload.client fd data);
      Env.close ctx.Workload.client fd)
    (fun ctx ->
      let out =
        Gzip_w.compress_file ~chunk:4096 ctx ~src:"/srv/7zip-input.dat" ~dst:"/tmp/out.7z" ~window_bits:15
      in
      assert (out > 0))

let spec ?(iterations = 3) () =
  Workload.make ~name:"spec-cpu" (fun ctx ->
      let env = ctx.Workload.env in
      let rng = ctx.Workload.rng in
      for _ = 1 to iterations * ctx.Workload.scale do
        (* matmul 64x64 *)
        let n = 64 in
        let a = Array.init n (fun _ -> Array.init n (fun _ -> Veil_crypto.Rng.int rng 100)) in
        let b = Array.init n (fun _ -> Array.init n (fun _ -> Veil_crypto.Rng.int rng 100)) in
        let c = Array.make_matrix n n 0 in
        for i = 0 to n - 1 do
          for j = 0 to n - 1 do
            let s = ref 0 in
            for k = 0 to n - 1 do
              s := !s + (a.(i).(k) * b.(k).(j))
            done;
            c.(i).(j) <- !s
          done
        done;
        env.Env.compute (3 * n * n * n);
        (* sieve of Eratosthenes to 50k *)
        let limit = 50_000 in
        let sieve = Bytes.make (limit + 1) '\001' in
        let count = ref 0 in
        for p = 2 to limit do
          if Bytes.get sieve p = '\001' then begin
            incr count;
            let q = ref (p * p) in
            while !q <= limit do
              Bytes.set sieve !q '\000';
              q := !q + p
            done
          end
        done;
        env.Env.compute (limit * 9);
        assert (!count = 5133);
        (* quicksort 20k ints *)
        let arr = Array.init 20_000 (fun _ -> Veil_crypto.Rng.int rng 1_000_000) in
        Array.sort compare arr;
        env.Env.compute (20_000 * 40);
        assert (c.(0).(0) >= 0)
      done)
