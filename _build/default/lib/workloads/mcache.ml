(* Slab classes grow by a factor of 2 from 64 bytes; each class keeps
   its own LRU list (memcached uses 1.25 growth and per-class LRUs —
   same structure, coarser classes). *)

let n_classes = 10
let base_chunk = 64

type entry = {
  key : string;
  mutable value : bytes;
  mutable expires : int;  (** 0 = immortal *)
  mutable lru_tick : int;
  klass : int;
}

type slab_class = {
  chunk : int;
  mutable used : int;  (** entries live in this class *)
  mutable budget : int;  (** max entries the class may hold *)
}

type t = {
  table : (string, entry) Hashtbl.t;
  classes : slab_class array;
  mutable clock : int;
  ext_now : (unit -> int) option;
  mutable n_evictions : int;
  mutable n_expired : int;
  mutable n_hits : int;
  mutable n_misses : int;
  mutable tick_counter : int;
}

let slab_class_for size =
  let rec go i = if i >= n_classes - 1 || size <= base_chunk lsl i then i else go (i + 1) in
  go 0

let create ?(memory_limit = 1 lsl 20) ?now () =
  let per_class = memory_limit / n_classes in
  {
    table = Hashtbl.create 256;
    classes =
      Array.init n_classes (fun i ->
          let chunk = base_chunk lsl i in
          { chunk; used = 0; budget = max 1 (per_class / chunk) });
    clock = 0;
    ext_now = now;
    n_evictions = 0;
    n_expired = 0;
    n_hits = 0;
    n_misses = 0;
    tick_counter = 0;
  }

let now t = match t.ext_now with Some f -> f () | None -> t.clock

let tick t = t.clock <- t.clock + 1

let touch t e =
  t.tick_counter <- t.tick_counter + 1;
  e.lru_tick <- t.tick_counter

let is_expired t e = e.expires <> 0 && now t >= e.expires

let remove t e =
  Hashtbl.remove t.table e.key;
  t.classes.(e.klass).used <- t.classes.(e.klass).used - 1

(* Evict the least-recently-used live entry of a class. *)
let evict_lru t klass =
  let victim = ref None in
  Hashtbl.iter
    (fun _ e ->
      if e.klass = klass then
        match !victim with
        | Some v when v.lru_tick <= e.lru_tick -> ()
        | _ -> victim := Some e)
    t.table;
  match !victim with
  | Some e ->
      remove t e;
      t.n_evictions <- t.n_evictions + 1;
      true
  | None -> false

let set t ~key ~value ?(ttl = 0) () =
  (match Hashtbl.find_opt t.table key with Some old -> remove t old | None -> ());
  let klass = slab_class_for (Bytes.length value) in
  let c = t.classes.(klass) in
  if c.used >= c.budget then ignore (evict_lru t klass);
  if c.used < c.budget then begin
    let e =
      { key; value; expires = (if ttl = 0 then 0 else now t + ttl); lru_tick = 0; klass }
    in
    touch t e;
    Hashtbl.replace t.table key e;
    c.used <- c.used + 1
  end

let get t key =
  match Hashtbl.find_opt t.table key with
  | None ->
      t.n_misses <- t.n_misses + 1;
      None
  | Some e ->
      if is_expired t e then begin
        remove t e;
        t.n_expired <- t.n_expired + 1;
        t.n_misses <- t.n_misses + 1;
        None
      end
      else begin
        touch t e;
        t.n_hits <- t.n_hits + 1;
        Some e.value
      end

let delete t key =
  match Hashtbl.find_opt t.table key with
  | Some e ->
      remove t e;
      true
  | None -> false

let entries t = Hashtbl.length t.table

let bytes_used t =
  Hashtbl.fold (fun _ e acc -> acc + t.classes.(e.klass).chunk) t.table 0

let evictions t = t.n_evictions
let expired t = t.n_expired
let slab_class_of _t size = slab_class_for size
let hits t = t.n_hits
let misses t = t.n_misses
