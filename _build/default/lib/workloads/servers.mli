(** Server workload miniatures (Tables 4-5).

    The measured server runs in [ctx.env]; the ApacheBench / memaslap
    load generators run natively in [ctx.client], exactly like the
    paper's local benchmarking setup. *)

val lighttpd : ?requests:int -> ?file_kb:int -> unit -> Workload.t
(** One worker, a fresh connection per request, 10 KB files. *)

val nginx : ?requests:int -> ?file_kb:int -> unit -> Workload.t
(** Two workers, keep-alive connections. *)

val memcached : ?ops:int -> ?value_bytes:int -> unit -> Workload.t
(** memaslap-style 90:10 GET:SET mix, four workers. *)

val lighttpd_concurrent : ?requests:int -> ?clients:int -> ?file_kb:int -> unit -> Workload.t
(** The lighttpd engine under the cooperative scheduler: the server
    and [clients] load-generator processes run as interleaved
    coroutines with blocking accept/recv — no hand-written serve
    callbacks. *)
