lib/workloads/gzip_w.ml: Bytes Deflate Env Huffman Lzss Textgen Workload
