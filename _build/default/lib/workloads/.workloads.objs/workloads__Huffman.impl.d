lib/workloads/huffman.ml: Array Buffer Bytes Char Hashtbl Int32 List
