lib/workloads/gzip_w.mli: Workload
