lib/workloads/crypto_w.ml: Bytes Env Printf Sevsnp Veil_crypto Workload
