lib/workloads/workload.mli: Env Veil_crypto
