lib/workloads/textgen.mli: Veil_crypto
