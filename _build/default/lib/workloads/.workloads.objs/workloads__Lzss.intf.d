lib/workloads/lzss.mli:
