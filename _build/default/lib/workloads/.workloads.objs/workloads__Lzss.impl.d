lib/workloads/lzss.ml: Array Buffer Bytes Char List
