lib/workloads/workload.ml: Env Veil_crypto
