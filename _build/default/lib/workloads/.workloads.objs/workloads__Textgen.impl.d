lib/workloads/textgen.ml: Array Buffer Bytes Veil_crypto
