lib/workloads/mcache.mli:
