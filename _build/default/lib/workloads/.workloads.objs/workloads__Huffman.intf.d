lib/workloads/huffman.mli:
