lib/workloads/sqldb.mli: Env
