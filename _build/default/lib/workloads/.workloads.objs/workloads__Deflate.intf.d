lib/workloads/deflate.mli:
