lib/workloads/env.mli: Guest_kernel Veil_crypto
