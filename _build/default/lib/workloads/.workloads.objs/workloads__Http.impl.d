lib/workloads/http.ml: Bytes Env Hashtbl Printf String
