lib/workloads/deflate.ml: Array Buffer Bytes Char Hashtbl Int32 List Lzss Option
