lib/workloads/btree.ml: Array Bytes Char Env Hashtbl Int32
