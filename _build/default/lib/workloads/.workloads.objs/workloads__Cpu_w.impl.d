lib/workloads/cpu_w.ml: Array Bytes Env Gzip_w Textgen Veil_crypto Workload
