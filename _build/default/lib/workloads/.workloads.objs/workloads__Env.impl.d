lib/workloads/env.ml: Bytes Guest_kernel Veil_crypto
