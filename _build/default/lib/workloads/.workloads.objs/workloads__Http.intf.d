lib/workloads/http.mli: Env
