lib/workloads/registry.ml: Cpu_w Crypto_w Dbs Gzip_w List Servers Workload
