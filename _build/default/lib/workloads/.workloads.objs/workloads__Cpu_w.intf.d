lib/workloads/cpu_w.mli: Workload
