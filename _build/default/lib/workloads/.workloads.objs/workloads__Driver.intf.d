lib/workloads/driver.mli: Enclave_sdk Workload
