lib/workloads/sqldb.ml: Btree Bytes Env Hashtbl List Printf Result String
