lib/workloads/btree.mli: Env
