lib/workloads/dbs.ml: Array Btree Buffer Bytes Char Env Hashtbl Int64 Printf Sqldb Veil_crypto Workload
