lib/workloads/mcache.ml: Array Bytes Hashtbl
