lib/workloads/crypto_w.mli: Workload
