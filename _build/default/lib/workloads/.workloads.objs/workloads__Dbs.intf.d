lib/workloads/dbs.mli: Workload
