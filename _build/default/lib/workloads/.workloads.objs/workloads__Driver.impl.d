lib/workloads/driver.ml: Array Enclave_sdk Env Guest_kernel Hypervisor Option Sevsnp Veil_core Veil_crypto Workload
