lib/workloads/servers.mli: Workload
