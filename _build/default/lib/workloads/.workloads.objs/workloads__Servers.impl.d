lib/workloads/servers.ml: Bytes Env Guest_kernel Http List Mcache Option Printf String Textgen Veil_crypto Workload
