(** Memcached's storage core: slab allocation, per-class LRU eviction,
    and TTL expiry.

    Backs the memcached workload miniature with the engine behaviour
    that matters for its profile — constant-time get/set, memory
    capped by a slab budget, LRU churn under pressure. *)

type t

val create : ?memory_limit:int -> ?now:(unit -> int) -> unit -> t
(** [memory_limit] bytes of value storage (default 1 MB); [now] is
    the clock used for TTLs (defaults to an internal tick counter). *)

val set : t -> key:string -> value:bytes -> ?ttl:int -> unit -> unit
(** [ttl] in clock units; 0/absent = immortal.  May evict LRU entries
    of the same slab class to make room. *)

val get : t -> string -> bytes option
(** [None] when absent, expired, or evicted; refreshes LRU order. *)

val delete : t -> string -> bool

val tick : t -> unit
(** Advance the internal clock (when no [now] was supplied). *)

(* introspection *)

val entries : t -> int
val bytes_used : t -> int
val evictions : t -> int
val expired : t -> int
val slab_class_of : t -> int -> int
(** The slab class index chosen for a value of the given size. *)

val hits : t -> int
val misses : t -> int
