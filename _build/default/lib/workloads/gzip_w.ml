let compress_file ?(chunk = 65536) (ctx : Workload.ctx) ~src ~dst ~window_bits =
  let env = ctx.Workload.env in
  let in_fd = Env.open_ env src ~flags:Env.o_rdonly ~mode:0 in
  let out_fd = Env.open_ env dst ~flags:(Env.o_creat lor Env.o_wronly lor Env.o_trunc) ~mode:0o644 in
  let total_out = ref 0 in
  let continue = ref true in
  while !continue do
    let data = Env.read env in_fd chunk in
    if Bytes.length data = 0 then continue := false
    else begin
      let packed = Deflate.compress ~window_bits data in
      env.Env.compute (Lzss.compute_cost ~input_bytes:(Bytes.length data) ~window_bits);
      env.Env.compute (Huffman.compute_cost (Bytes.length data));
      total_out := !total_out + Env.write env out_fd packed
    end
  done;
  Env.close env in_fd;
  Env.close env out_fd;
  !total_out

let workload ?(input_kb = 256) () =
  Workload.make ~name:"gzip"
    ~setup:(fun ctx ->
      let size = input_kb * 1024 * ctx.Workload.scale in
      let data = Textgen.binary ctx.Workload.rng size in
      let fd =
        Env.open_ ctx.Workload.client "/srv/gzip-input.dat"
          ~flags:(Env.o_creat lor Env.o_wronly lor Env.o_trunc)
          ~mode:0o644
      in
      ignore (Env.write ctx.Workload.client fd data);
      Env.close ctx.Workload.client fd)
    (fun ctx ->
      let out = compress_file ctx ~src:"/srv/gzip-input.dat" ~dst:"/tmp/gzip-out.gz" ~window_bits:12 in
      assert (out > 0))
