(* Build a Huffman tree over byte frequencies, derive canonical code
   lengths, then encode with the canonical codes.  The header carries
   the original length and the 256 code lengths. *)

type node = Leaf of int * int | Inner of int * node * node (* weight *)

let weight = function Leaf (w, _) -> w | Inner (w, _, _) -> w

module Pq = struct
  (* tiny leftist-ish heap via sorted list insertion; 256 entries max *)
  type t = node list ref

  let create () : t = ref []

  let push t n =
    let rec ins = function
      | [] -> [ n ]
      | x :: rest -> if weight n <= weight x then n :: x :: rest else x :: ins rest
    in
    t := ins !t

  let pop t = match !t with [] -> None | x :: rest -> t := rest; Some x
  let size t = List.length !t
end

let code_lengths (freq : int array) =
  let pq = Pq.create () in
  Array.iteri (fun sym f -> if f > 0 then Pq.push pq (Leaf (f, sym))) freq;
  let lengths = Array.make 256 0 in
  if Pq.size pq = 0 then lengths
  else if Pq.size pq = 1 then begin
    (match Pq.pop pq with Some (Leaf (_, s)) -> lengths.(s) <- 1 | _ -> ());
    lengths
  end
  else begin
    let rec build () =
      match (Pq.pop pq, Pq.pop pq) with
      | Some a, Some b ->
          Pq.push pq (Inner (weight a + weight b, a, b));
          if Pq.size pq > 1 then build ()
      | Some a, None -> Pq.push pq a
      | _ -> ()
    in
    build ();
    let rec assign depth = function
      | Leaf (_, sym) -> lengths.(sym) <- max 1 depth
      | Inner (_, l, r) ->
          assign (depth + 1) l;
          assign (depth + 1) r
    in
    (match Pq.pop pq with Some root -> assign 0 root | None -> ());
    lengths
  end

(* Canonical codes from lengths: symbols sorted by (length, symbol). *)
let canonical_codes lengths =
  let syms =
    Array.to_list (Array.mapi (fun s l -> (s, l)) lengths)
    |> List.filter (fun (_, l) -> l > 0)
    |> List.sort (fun (s1, l1) (s2, l2) -> if l1 <> l2 then compare l1 l2 else compare s1 s2)
  in
  let codes = Array.make 256 (0, 0) in
  let code = ref 0 and prev_len = ref 0 in
  List.iter
    (fun (sym, len) ->
      if !prev_len <> 0 then code := (!code + 1) lsl (len - !prev_len)
      else code := 0;
      prev_len := len;
      codes.(sym) <- (!code, len))
    syms;
  codes

module Bitbuf = struct
  type t = { buf : Buffer.t; mutable acc : int; mutable nbits : int }

  let create () = { buf = Buffer.create 1024; acc = 0; nbits = 0 }

  let put t code len =
    t.acc <- (t.acc lsl len) lor (code land ((1 lsl len) - 1));
    t.nbits <- t.nbits + len;
    while t.nbits >= 8 do
      t.nbits <- t.nbits - 8;
      Buffer.add_char t.buf (Char.chr ((t.acc lsr t.nbits) land 0xff))
    done

  let finish t =
    if t.nbits > 0 then begin
      let pad = 8 - t.nbits in
      t.acc <- t.acc lsl pad;
      t.nbits <- 8;
      Buffer.add_char t.buf (Char.chr (t.acc land 0xff));
      t.nbits <- 0
    end;
    Buffer.to_bytes t.buf
end

let encode input =
  let n = Bytes.length input in
  let freq = Array.make 256 0 in
  Bytes.iter (fun c -> freq.(Char.code c) <- freq.(Char.code c) + 1) input;
  let lengths = code_lengths freq in
  let codes = canonical_codes lengths in
  let header = Bytes.create (4 + 256) in
  Bytes.set_int32_le header 0 (Int32.of_int n);
  Array.iteri (fun i l -> Bytes.set header (4 + i) (Char.chr l)) lengths;
  let bits = Bitbuf.create () in
  Bytes.iter
    (fun c ->
      let code, len = codes.(Char.code c) in
      Bitbuf.put bits code len)
    input;
  Bytes.cat header (Bitbuf.finish bits)

let decode packed =
  let n = Int32.to_int (Bytes.get_int32_le packed 0) in
  let lengths = Array.init 256 (fun i -> Char.code (Bytes.get packed (4 + i))) in
  let codes = canonical_codes lengths in
  (* decode bit by bit against a (code,len) -> sym table *)
  let table = Hashtbl.create 256 in
  Array.iteri (fun sym (code, len) -> if lengths.(sym) > 0 then Hashtbl.replace table (code, len) sym) codes;
  let out = Buffer.create n in
  let bitpos = ref ((4 + 256) * 8) in
  let total_bits = Bytes.length packed * 8 in
  let code = ref 0 and len = ref 0 in
  while Buffer.length out < n && !bitpos < total_bits do
    let byte = Char.code (Bytes.get packed (!bitpos / 8)) in
    let bit = (byte lsr (7 - (!bitpos mod 8))) land 1 in
    incr bitpos;
    code := (!code lsl 1) lor bit;
    incr len;
    match Hashtbl.find_opt table (!code, !len) with
    | Some sym ->
        Buffer.add_char out (Char.chr sym);
        code := 0;
        len := 0
    | None -> ()
  done;
  if Buffer.length out <> n then invalid_arg "Huffman.decode: truncated stream";
  Buffer.to_bytes out

let compute_cost n = 25 * n
