module C = Sevsnp.Cycles

let mbedtls ?(tests = 320) () =
  Workload.make ~name:"mbedtls" (fun ctx ->
      let env = ctx.Workload.env in
      let rng = ctx.Workload.rng in
      let n = tests * ctx.Workload.scale in
      let failures = ref 0 in
      let out_fd =
        Env.open_ env "/tmp/mbedtls-selftest.log"
          ~flags:(Env.o_creat lor Env.o_wronly lor Env.o_append)
          ~mode:0o644
      in
      for i = 0 to n - 1 do
        (match i mod 4 with
        | 0 ->
            (* SHA-256: digest then re-digest must agree *)
            let data = Veil_crypto.Rng.bytes rng 1024 in
            env.Env.compute (C.hash_cost 1024);
            let d1 = Veil_crypto.Sha256.digest_bytes data in
            env.Env.compute (C.hash_cost 1024);
            if not (Bytes.equal d1 (Veil_crypto.Sha256.digest_bytes data)) then incr failures
        | 1 ->
            (* HMAC key/tag verification *)
            let key = Veil_crypto.Rng.bytes rng 32 and msg = Veil_crypto.Rng.bytes rng 512 in
            env.Env.compute (C.hash_cost 640);
            let tag = Veil_crypto.Hmac.mac ~key msg in
            if not (Veil_crypto.Hmac.verify ~key ~msg ~tag) then incr failures
        | 2 ->
            (* ChaCha20 round trip *)
            let key = Veil_crypto.Rng.bytes rng 32 and nonce = Veil_crypto.Rng.bytes rng 12 in
            let pt = Veil_crypto.Rng.bytes rng 2048 in
            env.Env.compute (2 * C.cipher_cost 2048);
            let ct = Veil_crypto.Chacha20.encrypt ~key ~nonce pt in
            if not (Bytes.equal pt (Veil_crypto.Chacha20.encrypt ~key ~nonce ct)) then incr failures
        | _ ->
            (* RSA-flavoured: modular exponentiation consistency *)
            let base = Veil_crypto.Bignum.random_bits rng 48 in
            let m = Veil_crypto.Bignum.add (Veil_crypto.Bignum.random_bits rng 48) Veil_crypto.Bignum.one in
            env.Env.compute 45_000;
            let a =
              Veil_crypto.Bignum.powmod ~base ~exp:(Veil_crypto.Bignum.of_int 65537) ~modulus:m
            in
            let b =
              Veil_crypto.Bignum.rem
                (Veil_crypto.Bignum.mul
                   (Veil_crypto.Bignum.powmod ~base ~exp:(Veil_crypto.Bignum.of_int 65536) ~modulus:m)
                   base)
                m
            in
            if not (Veil_crypto.Bignum.equal a b) then incr failures);
        env.Env.compute 200_000 (* the heavier suite members: RSA/DHM rounds *);
        (* the self-test prints a PASSED line per test *)
        ignore (Env.write env out_fd (Bytes.of_string (Printf.sprintf "  MBEDTLS test %d: PASSED\n" i)))
      done;
      Env.close env out_fd;
      if !failures > 0 then failwith "mbedtls self-test failed")

let openssl ?(buffers = 48) () =
  Workload.make ~name:"openssl" (fun ctx ->
      let env = ctx.Workload.env in
      let n = buffers * ctx.Workload.scale in
      let fd =
        Env.open_ env "/tmp/openssl-results.txt"
          ~flags:(Env.o_creat lor Env.o_wronly lor Env.o_append)
          ~mode:0o644
      in
      for i = 0 to n - 1 do
        let data = Veil_crypto.Rng.bytes ctx.Workload.rng 16384 in
        env.Env.compute 1_400_000 (* RSA-signing-class work per result (pts/openssl) *);
        env.Env.compute (C.hash_cost 16384);
        let d = Veil_crypto.Sha256.digest_bytes data in
        ignore
          (Env.write env fd (Bytes.of_string (Printf.sprintf "%d %s\n" i (Veil_crypto.Sha256.hex_of_digest d))))
      done;
      Env.close env fd)
