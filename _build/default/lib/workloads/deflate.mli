(** DEFLATE-style compression (RFC 1951 structure).

    The real gzip pipeline: LZ77 match finding ({!Lzss}), then the
    literal/length and distance alphabets of DEFLATE — length codes
    257..285 and distance codes 0..29 with their extra bits — coded
    with per-block canonical Huffman tables and an end-of-block
    marker.  The container header is simplified (raw code-length
    tables instead of the RLE'd code-length code), so streams are not
    byte-compatible with zlib, but every structural stage of the
    format is exercised. *)

val compress : ?window_bits:int -> bytes -> bytes
val decompress : bytes -> bytes

val compression_ratio : bytes -> float
(** compressed/original size for the default window. *)

(* Exposed for tests *)

val length_code : int -> int * int * int
(** [length_code len] = (symbol 257..285, extra-bit count, extra-bit
    value) for a match length 3..258. *)

val distance_code : int -> int * int * int
(** [distance_code dist] = (symbol 0..29, extra bits, value) for a
    distance 1..32768. *)
