(** Canonical Huffman coding over bytes.

    Second stage of the GZip miniature: frequency count, length
    -limited-ish code construction (plain Huffman tree depth), bit
    -packed encoding with an embedded code-length table, and exact
    decoding. *)

val encode : bytes -> bytes
(** Self-contained: the output embeds the canonical code lengths. *)

val decode : bytes -> bytes

val compute_cost : int -> int
(** Cycle cost of coding [n] bytes. *)
