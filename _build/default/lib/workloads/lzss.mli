(** LZSS sliding-window compression.

    The match-finding core of the GZip/7-Zip workload miniatures: hash
    -chained longest-match search over a configurable window, emitting
    literal/match tokens.  Real computation — decompression round
    -trips exactly. *)

type token = Literal of char | Match of { distance : int; length : int }

val compress : ?window_bits:int -> bytes -> token list
(** Default window 2^12; 7-Zip profile uses 2^15. *)

val decompress : token list -> bytes

val encode_tokens : token list -> bytes
(** Byte serialization of a token stream (what lands in the output
    file when Huffman coding is disabled). *)

val decode_tokens : bytes -> token list

val compressed_size : token list -> int

val compute_cost : input_bytes:int -> window_bits:int -> int
(** Cycle-model cost of compressing [input_bytes] (match search
    dominates; wider windows cost more per byte). *)
