(** Compressible synthetic data (stands in for the paper's input
    files, which we cannot ship). *)

val text : Veil_crypto.Rng.t -> int -> bytes
(** Word-like, skewed-frequency text of the given length —
    compresses at a realistic ratio. *)

val binary : Veil_crypto.Rng.t -> int -> bytes
(** Mixed random/zero-run data (the /dev/urandom-derived file of
    Table 4 compresses poorly; this preserves that). *)
