let page_size = 4096
let key_size = 16
let value_size = 64

(* Leaf layout:     [0]=1  [1..2]=nkeys  then nkeys * (key ++ value)
   Internal layout: [0]=2  [1..2]=nkeys  then nkeys * (key ++ child:u32)
                    followed by one extra child:u32 (rightmost).
   Page 0 is the header: [0..3]=root page, [4..7]=page count. *)

let leaf_capacity = (page_size - 3) / (key_size + value_size) (* 51 *)
let internal_capacity = (page_size - 3 - 4) / (key_size + 4) (* ~204 *)

type cached = { mutable data : bytes; mutable dirty : bool; mutable last_use : int }

type t = {
  env : Env.t;
  fd : int;
  path : string;
  cache : (int, cached) Hashtbl.t;
  cache_limit : int;
  mutable tick : int;
  mutable root : int;
  mutable npages : int;
  mutable hits : int;
  mutable misses : int;
  mutable entries : int;
}

let pad size b =
  if Bytes.length b > size then invalid_arg "Btree: key/value too large"
  else if Bytes.length b = size then b
  else begin
    let p = Bytes.make size '\000' in
    Bytes.blit b 0 p 0 (Bytes.length b);
    p
  end

(* --- paging --- *)

let write_page_raw t page data = ignore (Env.pwrite t.env t.fd data ~pos:(page * page_size))

let read_page_raw t page =
  let b = Env.pread t.env t.fd ~len:page_size ~pos:(page * page_size) in
  if Bytes.length b < page_size then begin
    let full = Bytes.make page_size '\000' in
    Bytes.blit b 0 full 0 (Bytes.length b);
    full
  end
  else b

(* Evict the LRU page, but never one touched within the last few
   operations — an insert holds up to a handful of node buffers across
   nested calls, and those must stay write-through coherent. *)
let evict_one t =
  if Hashtbl.length t.cache >= t.cache_limit then begin
    let victim = ref (-1) and oldest = ref max_int in
    Hashtbl.iter
      (fun page c ->
        if c.last_use < !oldest && c.last_use <= t.tick - 8 then begin
          oldest := c.last_use;
          victim := page
        end)
      t.cache;
    if !victim >= 0 then begin
      let c = Hashtbl.find t.cache !victim in
      if c.dirty then write_page_raw t !victim c.data;
      Hashtbl.remove t.cache !victim
    end
  end

let get_page t page =
  t.tick <- t.tick + 1;
  match Hashtbl.find_opt t.cache page with
  | Some c ->
      t.hits <- t.hits + 1;
      t.env.Env.compute 120 (* cache lookup + pin *);
      c.last_use <- t.tick;
      c.data
  | None ->
      t.misses <- t.misses + 1;
      evict_one t;
      let data = read_page_raw t page in
      Hashtbl.replace t.cache page { data; dirty = false; last_use = t.tick };
      data

let mark_dirty t page =
  match Hashtbl.find_opt t.cache page with
  | Some c -> c.dirty <- true
  | None -> ()

let alloc_page t =
  let p = t.npages in
  t.npages <- p + 1;
  t.tick <- t.tick + 1;
  evict_one t;
  Hashtbl.replace t.cache p { data = Bytes.make page_size '\000'; dirty = true; last_use = t.tick };
  p

let flush_header t =
  let h = Bytes.make page_size '\000' in
  Bytes.set_int32_le h 0 (Int32.of_int t.root);
  Bytes.set_int32_le h 4 (Int32.of_int t.npages);
  Bytes.set_int32_le h 8 (Int32.of_int t.entries);
  write_page_raw t 0 h

(* --- node accessors --- *)

let node_kind data = Char.code (Bytes.get data 0)
let node_nkeys data = Bytes.get_uint16_le data 1
let set_node_header data kind nkeys =
  Bytes.set data 0 (Char.chr kind);
  Bytes.set_uint16_le data 1 nkeys

let leaf_key data i = Bytes.sub data (3 + (i * (key_size + value_size))) key_size
let leaf_value data i = Bytes.sub data (3 + (i * (key_size + value_size)) + key_size) value_size

let leaf_set data i key value =
  Bytes.blit key 0 data (3 + (i * (key_size + value_size))) key_size;
  Bytes.blit value 0 data (3 + (i * (key_size + value_size)) + key_size) value_size

let int_key data i = Bytes.sub data (3 + (i * (key_size + 4))) key_size
let int_child data i =
  if i = node_nkeys data then Int32.to_int (Bytes.get_int32_le data (3 + (node_nkeys data * (key_size + 4))))
  else Int32.to_int (Bytes.get_int32_le data (3 + (i * (key_size + 4)) + key_size))

let int_set_key data i key = Bytes.blit key 0 data (3 + (i * (key_size + 4))) key_size

let int_set_child data i child =
  let nkeys = node_nkeys data in
  if i = nkeys then Bytes.set_int32_le data (3 + (nkeys * (key_size + 4))) (Int32.of_int child)
  else Bytes.set_int32_le data (3 + (i * (key_size + 4)) + key_size) (Int32.of_int child)

(* --- open/create --- *)

let create env ~path =
  let fd = Env.open_ env path ~flags:(Env.o_creat lor Env.o_rdwr) ~mode:0o644 in
  let size = try Env.stat_size env path with Env.Sys_error _ -> 0 in
  let t =
    {
      env;
      fd;
      path;
      cache = Hashtbl.create 64;
      cache_limit = 48;
      tick = 0;
      root = 1;
      npages = 2;
      hits = 0;
      misses = 0;
      entries = 0;
    }
  in
  if size >= page_size then begin
    let h = read_page_raw t 0 in
    t.root <- Int32.to_int (Bytes.get_int32_le h 0);
    t.npages <- Int32.to_int (Bytes.get_int32_le h 4);
    t.entries <- Int32.to_int (Bytes.get_int32_le h 8)
  end
  else begin
    (* fresh: page 1 is an empty leaf *)
    let leaf = Bytes.make page_size '\000' in
    set_node_header leaf 1 0;
    write_page_raw t 1 leaf;
    flush_header t
  end;
  t

(* --- search --- *)

let rec find_in t page key =
  let data = get_page t page in
  let nkeys = node_nkeys data in
  t.env.Env.compute (80 + (12 * nkeys)) (* binary search modelled linear for small n *);
  if node_kind data = 1 then begin
    let rec scan i =
      if i >= nkeys then None
      else begin
        let c = Bytes.compare (leaf_key data i) key in
        if c = 0 then Some (leaf_value data i) else if c > 0 then None else scan (i + 1)
      end
    in
    scan 0
  end
  else begin
    let rec pick i = if i < nkeys && Bytes.compare (int_key data i) key <= 0 then pick (i + 1) else i in
    find_in t (int_child data (pick 0)) key
  end

let find t ~key = find_in t t.root (pad key_size key)

(* --- insert --- *)

(* Insert into the subtree at [page]; returns [Some (sep, right_page)]
   when the node split. *)
let rec insert_in t page key value =
  let data = get_page t page in
  let nkeys = node_nkeys data in
  t.env.Env.compute (100 + (14 * nkeys));
  if node_kind data = 1 then begin
    (* find position / overwrite *)
    let rec pos i =
      if i >= nkeys then i
      else begin
        let c = Bytes.compare (leaf_key data i) key in
        if c >= 0 then i else pos (i + 1)
      end
    in
    let i = pos 0 in
    if i < nkeys && Bytes.equal (leaf_key data i) key then begin
      leaf_set data i key value;
      mark_dirty t page;
      None
    end
    else if nkeys < leaf_capacity then begin
      (* shift right *)
      for j = nkeys - 1 downto i do
        leaf_set data (j + 1) (leaf_key data j) (leaf_value data j)
      done;
      leaf_set data i key value;
      set_node_header data 1 (nkeys + 1);
      mark_dirty t page;
      t.entries <- t.entries + 1;
      None
    end
    else begin
      (* split leaf *)
      let mid = nkeys / 2 in
      let right_page = alloc_page t in
      let right = get_page t right_page in
      set_node_header right 1 (nkeys - mid);
      for j = mid to nkeys - 1 do
        leaf_set right (j - mid) (leaf_key data j) (leaf_value data j)
      done;
      set_node_header data 1 mid;
      mark_dirty t page;
      mark_dirty t right_page;
      let sep = leaf_key right 0 in
      (* insert into the proper half *)
      let target = if Bytes.compare key sep < 0 then page else right_page in
      ignore (insert_in t target key value);
      Some (sep, right_page)
    end
  end
  else begin
    let rec pick i = if i < nkeys && Bytes.compare (int_key data i) key <= 0 then pick (i + 1) else i in
    let slot = pick 0 in
    match insert_in t (int_child data slot) key value with
    | None -> None
    | Some (sep, right_child) ->
        let data = get_page t page in
        let nkeys = node_nkeys data in
        if nkeys < internal_capacity then begin
          (* rebuild with (sep, right_child) spliced in at [slot] —
             the last-child slot changes location when nkeys grows, so
             a full rewrite is the only safe update *)
          let keys = Array.init nkeys (fun j -> int_key data j) in
          let children = Array.init (nkeys + 1) (fun j -> int_child data j) in
          set_node_header data 2 (nkeys + 1);
          for j = 0 to nkeys do
            if j < slot then int_set_key data j keys.(j)
            else if j = slot then int_set_key data j sep
            else int_set_key data j keys.(j - 1)
          done;
          for j = 0 to nkeys + 1 do
            if j <= slot then int_set_child data j children.(j)
            else if j = slot + 1 then int_set_child data j right_child
            else int_set_child data j children.(j - 1)
          done;
          mark_dirty t page;
          None
        end
        else begin
          (* split internal node *)
          let keys = Array.init nkeys (fun j -> int_key data j) in
          let children = Array.init (nkeys + 1) (fun j -> int_child data j) in
          (* conceptually insert (sep, right_child) at slot *)
          let all_keys = Array.make (nkeys + 1) sep in
          let all_children = Array.make (nkeys + 2) right_child in
          Array.blit keys 0 all_keys 0 slot;
          all_keys.(slot) <- sep;
          Array.blit keys slot all_keys (slot + 1) (nkeys - slot);
          Array.blit children 0 all_children 0 (slot + 1);
          all_children.(slot + 1) <- right_child;
          Array.blit children (slot + 1) all_children (slot + 2) (nkeys - slot);
          let total = nkeys + 1 in
          let mid = total / 2 in
          let up_key = all_keys.(mid) in
          let right_page = alloc_page t in
          let right = get_page t right_page in
          set_node_header right 2 (total - mid - 1);
          for j = mid + 1 to total - 1 do
            int_set_key right (j - mid - 1) all_keys.(j)
          done;
          for j = mid + 1 to total do
            int_set_child right (j - mid - 1) all_children.(j)
          done;
          set_node_header data 2 mid;
          for j = 0 to mid - 1 do
            int_set_key data j all_keys.(j)
          done;
          for j = 0 to mid do
            int_set_child data j all_children.(j)
          done;
          mark_dirty t page;
          mark_dirty t right_page;
          Some (up_key, right_page)
        end
  end

let insert t ~key ~value =
  let key = pad key_size key and value = pad value_size value in
  match insert_in t t.root key value with
  | None -> ()
  | Some (sep, right) ->
      let new_root = alloc_page t in
      let data = get_page t new_root in
      set_node_header data 2 1;
      int_set_key data 0 sep;
      int_set_child data 0 t.root;
      int_set_child data 1 right;
      mark_dirty t new_root;
      t.root <- new_root

let iter t f =
  let rec go page =
    let data = get_page t page in
    if node_kind data = 1 then
      for i = 0 to node_nkeys data - 1 do
        f (leaf_key data i) (leaf_value data i)
      done
    else
      for i = 0 to node_nkeys data do
        go (int_child data i)
      done
  in
  go t.root

let iter_count t =
  let n = ref 0 in
  iter t (fun _ _ -> incr n);
  !n

let flush t =
  Hashtbl.iter
    (fun page c ->
      if c.dirty then begin
        write_page_raw t page c.data;
        c.dirty <- false
      end)
    t.cache;
  flush_header t;
  Env.fsync t.env t.fd

let close t =
  flush t;
  Env.close t.env t.fd

let height t =
  let rec go page acc =
    let data = get_page t page in
    if node_kind data = 1 then acc else go (int_child data 0) (acc + 1)
  in
  go t.root 1

let pages_allocated t = t.npages
let cache_hits t = t.hits
let cache_misses t = t.misses
