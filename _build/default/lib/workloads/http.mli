(** Minimal HTTP/1.0-style engine shared by the lighttpd and NGINX
    miniatures: request parsing, file serving, and an ApacheBench-like
    client. *)

type server

val server_start : Env.t -> port:int -> docroot:string -> server

val set_per_request_compute : server -> int -> unit
(** Server-side processing budget per request (lighttpd vs the lighter
    NGINX worker differ; see EXPERIMENTS.md calibration). *)

val serve_pending : Env.t -> server -> int
(** Accept and fully serve every queued connection; returns the number
    of requests handled. *)

val serve_on_connection : Env.t -> server -> conn_fd:int -> bool
(** Handle one request on an already-accepted (keep-alive) connection;
    false when the peer is done. *)

val requests_served : server -> int
val listen_fd : server -> int

val client_get : ?serve:(unit -> unit) -> Env.t -> port:int -> path:string -> bytes option
(** Connect, GET, run the server side via [serve], read the full
    response body, close. *)

val client_connect : Env.t -> port:int -> int
val client_get_keepalive : Env.t -> conn_fd:int -> server:server -> serve:(unit -> unit) -> path:string -> bytes option
(** Issue a GET on a persistent connection; the [serve] callback runs
    the server side between send and receive (single-threaded guest). *)
