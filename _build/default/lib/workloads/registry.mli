(** Named registry of all evaluation workloads. *)

val enclave_programs : unit -> Workload.t list
(** Table 4: GZip, SQLite, UnQLite, MbedTLS, Lighttpd. *)

val audit_programs : unit -> Workload.t list
(** Table 5: OpenSSL, 7-Zip, Memcached, SQLite, NGINX. *)

val background_programs : unit -> Workload.t list
(** §9.1 background impact: SPEC-like, memcached, NGINX. *)

val find : string -> Workload.t option
val all : unit -> Workload.t list
