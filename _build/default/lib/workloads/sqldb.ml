type value = string

type table = { schema : string list; tree : Btree.t; mutable next_rowid : int }

type t = { env : Env.t; dir : string; tables : (string, table) Hashtbl.t }

type outcome = Done | Rows of value list list

let tombstone = "\x00DEAD"
let field_sep = '\x1f'

(* --- row codec (rows live in 64-byte B-tree values) --- *)

let encode_row values =
  let s = String.concat (String.make 1 field_sep) values in
  if String.length s > Btree.value_size - 1 then Error "row too large (64-byte row limit)"
  else Ok (Bytes.of_string s)

let decode_row value =
  (* strip zero padding, split on the field separator *)
  let s = Bytes.to_string value in
  let len = try String.index s '\000' with Not_found -> String.length s in
  String.split_on_char field_sep (String.sub s 0 len)

let is_tombstone value =
  Bytes.length value >= String.length tombstone
  && Bytes.to_string (Bytes.sub value 0 (String.length tombstone)) = tombstone

(* --- catalog --- *)

let catalog_path dir = dir ^ "/catalog"

let save_catalog t =
  let lines =
    Hashtbl.fold
      (fun name tbl acc -> Printf.sprintf "%s:%s" name (String.concat "," tbl.schema) :: acc)
      t.tables []
  in
  let data = Bytes.of_string (String.concat "\n" (List.sort compare lines)) in
  let fd = Env.open_ t.env (catalog_path t.dir) ~flags:(Env.o_creat lor Env.o_wronly lor Env.o_trunc) ~mode:0o644 in
  ignore (Env.write t.env fd data);
  Env.close t.env fd

let table_file t name = Printf.sprintf "%s/%s.tbl" t.dir name

let load_table t name schema =
  let tree = Btree.create t.env ~path:(table_file t name) in
  let tbl = { schema; tree; next_rowid = Btree.iter_count tree } in
  Hashtbl.replace t.tables name tbl;
  tbl

let open_db env ~dir =
  if not (Env.file_exists env dir) then Env.mkdir env dir;
  let t = { env; dir; tables = Hashtbl.create 8 } in
  if Env.file_exists env (catalog_path dir) then begin
    let size = Env.stat_size env (catalog_path dir) in
    let fd = Env.open_ env (catalog_path dir) ~flags:Env.o_rdonly ~mode:0 in
    let data = if size > 0 then Env.pread env fd ~len:size ~pos:0 else Bytes.empty in
    Env.close env fd;
    String.split_on_char '\n' (Bytes.to_string data)
    |> List.iter (fun line ->
           match String.index_opt line ':' with
           | Some i ->
               let name = String.sub line 0 i in
               let cols = String.split_on_char ',' (String.sub line (i + 1) (String.length line - i - 1)) in
               ignore (load_table t name cols)
           | None -> ())
  end;
  t

let checkpoint t = Hashtbl.iter (fun _ tbl -> Btree.flush tbl.tree) t.tables

let close t =
  save_catalog t;
  Hashtbl.iter (fun _ tbl -> Btree.close tbl.tree) t.tables

let table_names t = Hashtbl.fold (fun k _ acc -> k :: acc) t.tables [] |> List.sort compare

(* --- tokenizer --- *)

type token = Word of string | Str of string | Lparen | Rparen | Comma | Star | Eq

let tokenize stmt =
  let n = String.length stmt in
  let rec go i acc =
    if i >= n then Ok (List.rev acc)
    else begin
      match stmt.[i] with
      | ' ' | '\t' | '\n' | ';' -> go (i + 1) acc
      | '(' -> go (i + 1) (Lparen :: acc)
      | ')' -> go (i + 1) (Rparen :: acc)
      | ',' -> go (i + 1) (Comma :: acc)
      | '*' -> go (i + 1) (Star :: acc)
      | '=' -> go (i + 1) (Eq :: acc)
      | '\'' -> (
          match String.index_from_opt stmt (i + 1) '\'' with
          | None -> Error "unterminated string literal"
          | Some j -> go (j + 1) (Str (String.sub stmt (i + 1) (j - i - 1)) :: acc))
      | c when (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_' ->
          let j = ref i in
          while
            !j < n
            &&
            let c = stmt.[!j] in
            (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'
          do
            incr j
          done;
          go !j (Word (String.lowercase_ascii (String.sub stmt i (!j - i))) :: acc)
      | c -> Error (Printf.sprintf "unexpected character %C" c)
    end
  in
  go 0 []

(* --- statements --- *)

let find_table t name =
  match Hashtbl.find_opt t.tables name with
  | Some tbl -> Ok tbl
  | None -> Error (Printf.sprintf "no such table: %s" name)

let rowid_key id = Bytes.of_string (Printf.sprintf "%016d" id)

(* Rows are keyed by their first column when it fits the key size
   (upsert semantics, point-lookup plans); otherwise by rowid. *)
let row_key tbl values =
  match values with
  | first :: _ when String.length first > 0 && String.length first <= Btree.key_size ->
      Bytes.of_string first
  | _ ->
      let k = rowid_key tbl.next_rowid in
      tbl.next_rowid <- tbl.next_rowid + 1;
      k

let rec parse_commalist ~closer acc = function
  | t :: rest when t = closer -> Ok (List.rev acc, rest)
  | Word w :: Comma :: rest -> parse_commalist ~closer (w :: acc) rest
  | Word w :: (t :: _ as rest) when t = closer -> parse_commalist ~closer (w :: acc) rest
  | Str s :: Comma :: rest -> parse_commalist ~closer (s :: acc) rest
  | Str s :: (t :: _ as rest) when t = closer -> parse_commalist ~closer (s :: acc) rest
  | _ -> Error "malformed list"

let exec_create t name cols =
  if Hashtbl.mem t.tables name then Error (Printf.sprintf "table %s already exists" name)
  else if cols = [] then Error "a table needs at least one column"
  else begin
    ignore (load_table t name cols);
    save_catalog t;
    Ok Done
  end

let exec_insert t name values =
  Result.bind (find_table t name) (fun tbl ->
      if List.length values <> List.length tbl.schema then
        Error
          (Printf.sprintf "expected %d values for %s, got %d" (List.length tbl.schema) name
             (List.length values))
      else
        Result.bind (encode_row values) (fun row ->
            t.env.Env.compute 2_000 (* plan + row encode *);
            Btree.insert tbl.tree ~key:(row_key tbl values) ~value:row;
            Ok Done))

let col_index tbl col =
  let rec go i = function
    | [] -> Error (Printf.sprintf "no such column: %s" col)
    | c :: _ when c = col -> Ok i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 tbl.schema

let scan t tbl ~where f =
  t.env.Env.compute 800;
  Btree.iter tbl.tree (fun _key value ->
      if not (is_tombstone value) then begin
        let row = decode_row value in
        let keep =
          match where with
          | None -> true
          | Some (idx, v) -> ( match List.nth_opt row idx with Some x -> x = v | None -> false)
        in
        if keep then f row
      end)

let exec_select t name ~projection ~where =
  Result.bind (find_table t name) (fun tbl ->
      let where_resolved =
        match where with
        | None -> Ok None
        | Some (col, v) -> Result.map (fun i -> Some (i, v)) (col_index tbl col)
      in
      (* validate the projection against the schema up front *)
      let projection_ok =
        match projection with `All -> Ok () | `Col c -> Result.map (fun _ -> ()) (col_index tbl c)
      in
      Result.bind projection_ok (fun () ->
      Result.bind where_resolved (fun where ->
          (* planner: an equality predicate on the first column becomes
             a B-tree point lookup instead of a scan *)
          let point_lookup =
            match where with
            | Some (0, v) when String.length v > 0 && String.length v <= Btree.key_size -> Some v
            | _ -> None
          in
          let project =
            match projection with
            | `All -> fun row -> Ok row
            | `Col c ->
                fun row ->
                  Result.bind (col_index tbl c) (fun i ->
                      match List.nth_opt row i with
                      | Some v -> Ok [ v ]
                      | None -> Error "row/schema mismatch")
          in
          let rows = ref [] and err = ref None in
          let visit row =
            match project row with
            | Ok r -> rows := r :: !rows
            | Error e -> err := Some e
          in
          (match point_lookup with
          | Some v -> (
              t.env.Env.compute 1_200;
              match Btree.find tbl.tree ~key:(Bytes.of_string v) with
              | Some value when not (is_tombstone value) -> visit (decode_row value)
              | _ -> ())
          | None -> scan t tbl ~where visit);
          match !err with Some e -> Error e | None -> Ok (Rows (List.rev !rows)))))

let exec_delete t name ~where =
  Result.bind (find_table t name) (fun tbl ->
      Result.bind (col_index tbl (fst where)) (fun idx ->
          let victims = ref [] in
          let i = ref 0 in
          Btree.iter tbl.tree (fun key value ->
              incr i;
              if not (is_tombstone value) then begin
                let row = decode_row value in
                match List.nth_opt row idx with
                | Some x when x = snd where -> victims := Bytes.copy key :: !victims
                | _ -> ()
              end);
          List.iter
            (fun key -> Btree.insert tbl.tree ~key ~value:(Bytes.of_string tombstone))
            !victims;
          Ok Done))

let exec t stmt =
  match tokenize stmt with
  | Error e -> Error e
  | Ok tokens -> (
      match tokens with
      | Word "create" :: Word "table" :: Word name :: Lparen :: rest -> (
          match parse_commalist ~closer:Rparen [] rest with
          | Ok (cols, []) -> exec_create t name cols
          | Ok _ -> Error "trailing tokens after CREATE TABLE"
          | Error e -> Error e)
      | Word "insert" :: Word "into" :: Word name :: Word "values" :: Lparen :: rest -> (
          match parse_commalist ~closer:Rparen [] rest with
          | Ok (values, []) -> exec_insert t name values
          | Ok _ -> Error "trailing tokens after INSERT"
          | Error e -> Error e)
      | Word "select" :: proj :: Word "from" :: Word name :: rest -> (
          let projection =
            match proj with Star -> Ok `All | Word c -> Ok (`Col c) | _ -> Error "bad projection"
          in
          match (projection, rest) with
          | Ok p, [] -> exec_select t name ~projection:p ~where:None
          | Ok p, [ Word "where"; Word col; Eq; Str v ] ->
              exec_select t name ~projection:p ~where:(Some (col, v))
          | Ok _, _ -> Error "malformed SELECT"
          | (Error _ as e), _ -> (match e with Error m -> Error m | _ -> assert false))
      | [ Word "delete"; Word "from"; Word name; Word "where"; Word col; Eq; Str v ] ->
          exec_delete t name ~where:(col, v)
      | _ -> Error "unrecognized statement")

let row_count t name =
  Result.bind (find_table t name) (fun tbl ->
      let n = ref 0 in
      Btree.iter tbl.tree (fun _ v -> if not (is_tombstone v) then incr n);
      Ok !n)
