(** CPU-bound workload miniatures.

    [sevenzip]: Phoronix pts/compress-7zip — the GZip engine with a
    32 KB window and heavier per-byte search (Table 5).
    [spec]: a SPEC-CPU-flavoured kernel mix (matrix multiply, sieve,
    sort) with essentially no system calls — the §9.1 background-impact
    probe. *)

val sevenzip : ?input_kb:int -> unit -> Workload.t
val spec : ?iterations:int -> unit -> Workload.t
