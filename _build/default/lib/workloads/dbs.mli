(** Database workload miniatures.

    [sqlite]: B-tree inserts through a write-ahead log, modeled on
    Table 4's "insert 10k random entries" and Table 5's speedtest.
    [unqlite]: append-only hash store, Table 4's huge-db insert run —
    one small write per insert, the paper's highest exit-rate
    program. *)

val sqlite : ?inserts:int -> unit -> Workload.t
(** Default 1500 inserts per scale unit. *)

val unqlite : ?inserts:int -> unit -> Workload.t
(** Default 4000 inserts per scale unit. *)
