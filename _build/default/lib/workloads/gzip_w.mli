(** GZip workload miniature (Table 4): compress a /dev/urandom-derived
    input file, reading and writing in chunks.  Compute-dominated with
    a low enclave exit rate — the paper's best case. *)

val workload : ?input_kb:int -> unit -> Workload.t
(** Default input: 256 KB per scale unit (Table 4 used 10 MB). *)

val compress_file :
  ?chunk:int -> Workload.ctx -> src:string -> dst:string -> window_bits:int -> int
(** Shared engine (also used by the 7-Zip miniature); returns
    compressed size. *)
