(** A miniature SQL engine over the paged {!Btree}.

    Gives the SQLite workload its authentic shape: statements are
    parsed, planned and executed against B-tree-backed tables whose
    pages move through the (redirectable) file system interface.

    Supported grammar:
    {v
      CREATE TABLE name (col1, col2, ...)
      INSERT INTO name VALUES ('v1', 'v2', ...)
      SELECT * | col FROM name [WHERE col = 'v']
      DELETE FROM name WHERE col = 'v'   (tombstone semantics)
    v} *)

type t

type value = string

type outcome =
  | Done  (** DDL / DML succeeded *)
  | Rows of value list list  (** SELECT results, one list per row *)

val open_db : Env.t -> dir:string -> t
(** Tables live as B-tree files under [dir]; the catalog persists in
    [dir]/catalog. *)

val close : t -> unit

val checkpoint : t -> unit
(** WAL-checkpoint semantics: write every table's dirty pages back and
    fsync. *)

val exec : t -> string -> (outcome, string) result
(** Parse + execute one statement. *)

val table_names : t -> string list
val row_count : t -> string -> (int, string) result
