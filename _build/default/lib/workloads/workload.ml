type ctx = { env : Env.t; client : Env.t; rng : Veil_crypto.Rng.t; scale : int }

type t = {
  name : string;
  vcpus : int;
  setup : ctx -> unit;
  body : ctx -> unit;
}

let make ~name ?(vcpus = 1) ?(setup = fun _ -> ()) body = { name; vcpus; setup; body }
