(* DEFLATE's two-alphabet coding over LZ77 tokens.  Bit order is
   MSB-first (real DEFLATE is LSB-first); the symbol structure — the
   part that matters for fidelity — follows RFC 1951 exactly. *)

let len_base =
  [| 3; 4; 5; 6; 7; 8; 9; 10; 11; 13; 15; 17; 19; 23; 27; 31; 35; 43; 51; 59; 67; 83; 99; 115; 131;
     163; 195; 227; 258 |]

let len_extra =
  [| 0; 0; 0; 0; 0; 0; 0; 0; 1; 1; 1; 1; 2; 2; 2; 2; 3; 3; 3; 3; 4; 4; 4; 4; 5; 5; 5; 5; 0 |]

let dist_base =
  [| 1; 2; 3; 4; 5; 7; 9; 13; 17; 25; 33; 49; 65; 97; 129; 193; 257; 385; 513; 769; 1025; 1537; 2049;
     3073; 4097; 6145; 8193; 12289; 16385; 24577 |]

let dist_extra =
  [| 0; 0; 0; 0; 1; 1; 2; 2; 3; 3; 4; 4; 5; 5; 6; 6; 7; 7; 8; 8; 9; 9; 10; 10; 11; 11; 12; 12; 13; 13 |]

let eob = 256
let litlen_alphabet = 286
let dist_alphabet = 30

let find_code base extra v =
  let rec go i =
    if i + 1 >= Array.length base then i
    else if v < base.(i + 1) then i
    else go (i + 1)
  in
  let i = go 0 in
  (i, extra.(i), v - base.(i))

let length_code len =
  if len < 3 || len > 258 then invalid_arg "Deflate.length_code";
  let i, bits, v = find_code len_base len_extra len in
  (257 + i, bits, v)

let distance_code dist =
  if dist < 1 || dist > 32768 then invalid_arg "Deflate.distance_code";
  find_code dist_base dist_extra dist

(* --- generic canonical Huffman over an [n]-symbol alphabet --- *)

type hnode = Leaf of int * int | Inner of int * hnode * hnode

let hweight = function Leaf (w, _) -> w | Inner (w, _, _) -> w

let code_lengths freq =
  let n = Array.length freq in
  let heap = ref [] in
  let push x =
    let rec ins = function
      | [] -> [ x ]
      | y :: rest -> if hweight x <= hweight y then x :: y :: rest else y :: ins rest
    in
    heap := ins !heap
  in
  Array.iteri (fun s f -> if f > 0 then push (Leaf (f, s))) freq;
  let lengths = Array.make n 0 in
  (match !heap with
  | [] -> ()
  | [ Leaf (_, s) ] -> lengths.(s) <- 1
  | _ ->
      let rec build () =
        match !heap with
        | a :: b :: rest ->
            heap := rest;
            push (Inner (hweight a + hweight b, a, b));
            if List.length !heap > 1 then build ()
        | _ -> ()
      in
      build ();
      let rec assign depth = function
        | Leaf (_, s) -> lengths.(s) <- max 1 depth
        | Inner (_, l, r) ->
            assign (depth + 1) l;
            assign (depth + 1) r
      in
      (match !heap with [ root ] -> assign 0 root | _ -> ()));
  lengths

let canonical_codes lengths =
  let syms =
    Array.to_list (Array.mapi (fun s l -> (s, l)) lengths)
    |> List.filter (fun (_, l) -> l > 0)
    |> List.sort (fun (s1, l1) (s2, l2) -> if l1 <> l2 then compare l1 l2 else compare s1 s2)
  in
  let codes = Array.make (Array.length lengths) (0, 0) in
  let code = ref 0 and prev = ref 0 in
  List.iter
    (fun (sym, len) ->
      if !prev <> 0 then code := (!code + 1) lsl (len - !prev) else code := 0;
      prev := len;
      codes.(sym) <- (!code, len))
    syms;
  codes

(* --- bit IO (MSB-first) --- *)

module Bw = struct
  type t = { buf : Buffer.t; mutable acc : int; mutable n : int }

  let create () = { buf = Buffer.create 4096; acc = 0; n = 0 }

  let put t v len =
    if len > 0 then begin
      t.acc <- (t.acc lsl len) lor (v land ((1 lsl len) - 1));
      t.n <- t.n + len;
      while t.n >= 8 do
        t.n <- t.n - 8;
        Buffer.add_char t.buf (Char.chr ((t.acc lsr t.n) land 0xff))
      done
    end

  let finish t =
    if t.n > 0 then begin
      t.acc <- t.acc lsl (8 - t.n);
      Buffer.add_char t.buf (Char.chr (t.acc land 0xff));
      t.n <- 0
    end;
    Buffer.to_bytes t.buf
end

module Br = struct
  type t = { data : bytes; mutable pos : int (* bit position *) }

  let create data pos_bytes = { data; pos = pos_bytes * 8 }

  let bit t =
    let byte = Char.code (Bytes.get t.data (t.pos / 8)) in
    let b = (byte lsr (7 - (t.pos mod 8))) land 1 in
    t.pos <- t.pos + 1;
    b

  let bits t n =
    let v = ref 0 in
    for _ = 1 to n do
      v := (!v lsl 1) lor bit t
    done;
    !v
end

(* --- compress --- *)

let compress ?(window_bits = 12) input =
  let tokens = Lzss.compress ~window_bits input in
  (* frequency pass *)
  let lfreq = Array.make litlen_alphabet 0 and dfreq = Array.make dist_alphabet 0 in
  let bump a i = a.(i) <- a.(i) + 1 in
  List.iter
    (fun tok ->
      match tok with
      | Lzss.Literal c -> bump lfreq (Char.code c)
      | Lzss.Match { distance; length } ->
          let ls, _, _ = length_code length in
          let ds, _, _ = distance_code distance in
          bump lfreq ls;
          bump dfreq ds)
    tokens;
  bump lfreq eob;
  let llen = code_lengths lfreq and dlen = code_lengths dfreq in
  let lcodes = canonical_codes llen and dcodes = canonical_codes dlen in
  (* header: orig len + raw code-length tables *)
  let header = Bytes.create (4 + litlen_alphabet + dist_alphabet) in
  Bytes.set_int32_le header 0 (Int32.of_int (Bytes.length input));
  Array.iteri (fun i l -> Bytes.set header (4 + i) (Char.chr l)) llen;
  Array.iteri (fun i l -> Bytes.set header (4 + litlen_alphabet + i) (Char.chr l)) dlen;
  (* body *)
  let bw = Bw.create () in
  let emit codes s =
    let c, l = codes.(s) in
    Bw.put bw c l
  in
  List.iter
    (fun tok ->
      match tok with
      | Lzss.Literal c -> emit lcodes (Char.code c)
      | Lzss.Match { distance; length } ->
          let ls, lbits, lval = length_code length in
          emit lcodes ls;
          Bw.put bw lval lbits;
          let ds, dbits, dval = distance_code distance in
          emit dcodes ds;
          Bw.put bw dval dbits)
    tokens;
  emit lcodes eob;
  Bytes.cat header (Bw.finish bw)

(* --- decompress --- *)

let decode_table lengths =
  let table = Hashtbl.create 512 in
  let codes = canonical_codes lengths in
  Array.iteri (fun sym (c, l) -> if lengths.(sym) > 0 then Hashtbl.replace table (c, l) sym) codes;
  table

let read_symbol br table =
  let code = ref 0 and len = ref 0 in
  let result = ref None in
  while !result = None do
    code := (!code lsl 1) lor Br.bit br;
    incr len;
    if !len > 30 then failwith "Deflate.decompress: bad stream";
    match Hashtbl.find_opt table (!code, !len) with
    | Some s -> result := Some s
    | None -> ()
  done;
  Option.get !result

let decompress packed =
  let orig_len = Int32.to_int (Bytes.get_int32_le packed 0) in
  let llen = Array.init litlen_alphabet (fun i -> Char.code (Bytes.get packed (4 + i))) in
  let dlen = Array.init dist_alphabet (fun i -> Char.code (Bytes.get packed (4 + litlen_alphabet + i))) in
  let ltab = decode_table llen and dtab = decode_table dlen in
  let br = Br.create packed (4 + litlen_alphabet + dist_alphabet) in
  let out = Buffer.create orig_len in
  let rec go () =
    let s = read_symbol br ltab in
    if s = eob then ()
    else if s < 256 then begin
      Buffer.add_char out (Char.chr s);
      go ()
    end
    else begin
      let li = s - 257 in
      let length = len_base.(li) + Br.bits br len_extra.(li) in
      let ds = read_symbol br dtab in
      let distance = dist_base.(ds) + Br.bits br dist_extra.(ds) in
      let start = Buffer.length out - distance in
      if start < 0 then failwith "Deflate.decompress: bad distance";
      for k = 0 to length - 1 do
        Buffer.add_char out (Buffer.nth out (start + k))
      done;
      go ()
    end
  in
  go ();
  if Buffer.length out <> orig_len then failwith "Deflate.decompress: length mismatch";
  Buffer.to_bytes out

let compression_ratio input =
  if Bytes.length input = 0 then 1.0
  else float_of_int (Bytes.length (compress input)) /. float_of_int (Bytes.length input)
