type token = Literal of char | Match of { distance : int; length : int }

let min_match = 4
let max_match = 258

let hash3 b i =
  (Char.code (Bytes.get b i) lsl 10)
  lxor (Char.code (Bytes.get b (i + 1)) lsl 5)
  lxor Char.code (Bytes.get b (i + 2))

let compress ?(window_bits = 12) input =
  let n = Bytes.length input in
  let window = 1 lsl window_bits in
  let hash_size = 1 lsl 14 in
  let head = Array.make hash_size (-1) in
  let prev = Array.make (max n 1) (-1) in
  let tokens = ref [] in
  let emit tok = tokens := tok :: !tokens in
  let pos = ref 0 in
  while !pos < n do
    let i = !pos in
    if i + min_match > n then begin
      emit (Literal (Bytes.get input i));
      incr pos
    end
    else begin
      let h = hash3 input i land (hash_size - 1) in
      (* walk the chain for the longest match inside the window *)
      let best_len = ref 0 and best_dist = ref 0 in
      let candidate = ref head.(h) and tries = ref 32 in
      while !candidate >= 0 && !tries > 0 && i - !candidate <= window do
        let c = !candidate in
        let len = ref 0 in
        while !len < max_match && i + !len < n && Bytes.get input (c + !len) = Bytes.get input (i + !len) do
          incr len
        done;
        if !len > !best_len then begin
          best_len := !len;
          best_dist := i - c
        end;
        candidate := prev.(c);
        decr tries
      done;
      if !best_len >= min_match then begin
        emit (Match { distance = !best_dist; length = !best_len });
        (* index every position we skip *)
        let stop = min (i + !best_len) (n - min_match) in
        let j = ref i in
        while !j < stop do
          let hj = hash3 input !j land (hash_size - 1) in
          prev.(!j) <- head.(hj);
          head.(hj) <- !j;
          incr j
        done;
        pos := i + !best_len
      end
      else begin
        prev.(i) <- head.(h);
        head.(h) <- i;
        emit (Literal (Bytes.get input i));
        incr pos
      end
    end
  done;
  List.rev !tokens

let decompress tokens =
  let buf = Buffer.create 4096 in
  List.iter
    (fun tok ->
      match tok with
      | Literal c -> Buffer.add_char buf c
      | Match { distance; length } ->
          let start = Buffer.length buf - distance in
          if start < 0 then invalid_arg "Lzss.decompress: bad distance";
          for k = 0 to length - 1 do
            Buffer.add_char buf (Buffer.nth buf (start + k))
          done)
    tokens;
  Buffer.to_bytes buf

let encode_tokens tokens =
  let buf = Buffer.create 4096 in
  List.iter
    (fun tok ->
      match tok with
      | Literal c ->
          Buffer.add_char buf '\000';
          Buffer.add_char buf c
      | Match { distance; length } ->
          Buffer.add_char buf '\001';
          Buffer.add_uint16_le buf distance;
          Buffer.add_uint16_le buf length)
    tokens;
  Buffer.to_bytes buf

let decode_tokens b =
  let n = Bytes.length b in
  let rec go i acc =
    if i >= n then List.rev acc
    else begin
      match Bytes.get b i with
      | '\000' -> go (i + 2) (Literal (Bytes.get b (i + 1)) :: acc)
      | '\001' ->
          let distance = Bytes.get_uint16_le b (i + 1) in
          let length = Bytes.get_uint16_le b (i + 3) in
          go (i + 5) (Match { distance; length } :: acc)
      | _ -> invalid_arg "Lzss.decode_tokens"
    end
  in
  go 0 []

let compressed_size tokens =
  List.fold_left (fun acc tok -> acc + match tok with Literal _ -> 2 | Match _ -> 5) 0 tokens

let compute_cost ~input_bytes ~window_bits =
  (* match search ~ chain walks * compare cost; wider windows mean
     longer chains.  Calibrated against Table 4's GZip run, which
     compresses a urandom-derived (match-poor, search-heavy) file. *)
  input_bytes * (520 + (2 * window_bits))
