let key_of rng =
  let b = Bytes.create Btree.key_size in
  for i = 0 to Btree.key_size - 1 do
    Bytes.set b i (Char.chr (Veil_crypto.Rng.int rng 26 + 97))
  done;
  b

let sqlite ?(inserts = 1500) () =
  Workload.make ~name:"sqlite" (fun ctx ->
      let env = ctx.Workload.env in
      let n = inserts * ctx.Workload.scale in
      let wal_fd =
        Env.open_ env "/tmp/sqlite.wal" ~flags:(Env.o_creat lor Env.o_wronly lor Env.o_append) ~mode:0o644
      in
      let db = Sqldb.open_db env ~dir:"/tmp/sqlitedb" in
      (match Sqldb.exec db "CREATE TABLE kv (k, v)" with
      | Ok _ -> ()
      | Error e -> failwith ("sqlite: " ^ e));
      let keys = Array.init n (fun _ -> Bytes.to_string (key_of ctx.Workload.rng)) in
      let wal_buf = Buffer.create 512 in
      Array.iteri
        (fun i key ->
          let value = Veil_crypto.Sha256.hex_of_digest (Veil_crypto.Rng.bytes ctx.Workload.rng 16) in
          env.Env.compute 12_000 (* SQL parse + plan (the engine charges encode) *);
          (* group-committed write-ahead journal, then the tree update *)
          Buffer.add_string wal_buf key;
          Buffer.add_string wal_buf value;
          env.Env.compute 900 (* record framing + checksum *);
          if i mod 48 = 47 then begin
            ignore (Env.write env wal_fd (Buffer.to_bytes wal_buf));
            Buffer.clear wal_buf
          end;
          (match Sqldb.exec db (Printf.sprintf "INSERT INTO kv VALUES ('%s', '%s')" key value) with
          | Ok Sqldb.Done -> ()
          | Ok _ -> failwith "sqlite: unexpected result"
          | Error e -> failwith ("sqlite: " ^ e));
          if i mod 192 = 191 then Sqldb.checkpoint db)
        keys;
      if Buffer.length wal_buf > 0 then ignore (Env.write env wal_fd (Buffer.to_bytes wal_buf));
      (* speedtest-style read-back of a sample (point-lookup plans) *)
      for i = 0 to (n / 10) - 1 do
        let key = keys.(Veil_crypto.Rng.int ctx.Workload.rng n) in
        ignore i;
        match Sqldb.exec db (Printf.sprintf "SELECT v FROM kv WHERE k = '%s'" key) with
        | Ok (Sqldb.Rows (_ :: _)) -> ()
        | Ok _ -> failwith "sqlite: lost key"
        | Error e -> failwith ("sqlite: " ^ e)
      done;
      Sqldb.close db;
      Env.close env wal_fd)

let unqlite ?(inserts = 4000) () =
  Workload.make ~name:"unqlite" (fun ctx ->
      let env = ctx.Workload.env in
      let n = inserts * ctx.Workload.scale in
      let fd =
        Env.open_ env "/tmp/unqlite.db" ~flags:(Env.o_creat lor Env.o_wronly lor Env.o_append) ~mode:0o644
      in
      (* on-disk hash index: bucket directory persisted alongside the
         append-only record log, as UnQLite keeps its KV store *)
      let idx_fd =
        Env.open_ env "/tmp/unqlite.idx" ~flags:(Env.o_creat lor Env.o_rdwr) ~mode:0o644
      in
      let nbuckets = 512 and slot_size = 16 in
      let bucket_of key = Hashtbl.hash key mod nbuckets in
      let index = Hashtbl.create 1024 in
      let pos = ref 0 in
      for i = 0 to n - 1 do
        let key = Printf.sprintf "key-%08d" (Veil_crypto.Rng.int ctx.Workload.rng (4 * n)) in
        let value = Veil_crypto.Rng.bytes ctx.Workload.rng 40 in
        let record = Bytes.of_string (Printf.sprintf "%s:%s;" key (Veil_crypto.Sha256.hex_of_digest value)) in
        ignore (Env.write env fd record);
        env.Env.compute 62_000 (* key hash, bucket chain walk, commit bookkeeping *);
        Hashtbl.replace index key (!pos, Bytes.length record);
        (* update the bucket slot on disk (head pointer) *)
        let slot = Bytes.create slot_size in
        Bytes.set_int64_le slot 0 (Int64.of_int !pos);
        Bytes.set_int64_le slot 8 (Int64.of_int (Bytes.length record));
        if i mod 8 = 7 then ignore (Env.pwrite env idx_fd slot ~pos:(bucket_of key * slot_size));
        pos := !pos + Bytes.length record;
        if i mod 1024 = 1023 then Env.fsync env fd
      done;
      Env.close env fd;
      (* read back a sample: bucket slot, then the record *)
      let rfd = Env.open_ env "/tmp/unqlite.db" ~flags:Env.o_rdonly ~mode:0 in
      Hashtbl.iter
        (fun key (off, len) ->
          if Veil_crypto.Rng.int ctx.Workload.rng 64 = 0 then begin
            ignore (Env.pread env idx_fd ~len:slot_size ~pos:(bucket_of key * slot_size));
            ignore (Env.pread env rfd ~len ~pos:off)
          end)
        index;
      Env.close env idx_fd;
      Env.close env rfd)
