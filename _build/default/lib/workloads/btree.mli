(** Paged B-tree keyed storage over a file.

    The storage engine of the SQLite workload miniature: fixed-size
    keys and values in 4 KB nodes, read and written through the
    environment's [pread]/[pwrite] with a small write-back page cache
    — so every cache miss is a real (redirected, under enclaves)
    system call, as in the paper's SQLite runs. *)

type t

val key_size : int
val value_size : int

val create : Env.t -> path:string -> t
(** Create or open the tree backed by [path]. *)

val insert : t -> key:bytes -> value:bytes -> unit
(** Keys shorter than [key_size] are zero-padded; longer raise. *)

val find : t -> key:bytes -> bytes option

val iter_count : t -> int
(** Number of live entries (full scan). *)

val iter : t -> (bytes -> bytes -> unit) -> unit
(** Visit every (key, value) in key order. *)

val flush : t -> unit
(** Write back dirty pages and fsync. *)

val close : t -> unit

val height : t -> int
val pages_allocated : t -> int
val cache_hits : t -> int
val cache_misses : t -> int
