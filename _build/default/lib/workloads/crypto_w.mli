(** Cryptographic workload miniatures.

    [mbedtls]: the library self-test of Table 4 — SHA/HMAC/ChaCha/
    modular-exponentiation vectors with a console line per test group,
    run inside the enclave.
    [openssl]: the Phoronix pts/openssl digest-throughput benchmark of
    Table 5 — bulk SHA-256 with periodic result writes (the audited
    configuration's low-rate logger). *)

val mbedtls : ?tests:int -> unit -> Workload.t
(** Default 320 tests per scale unit (the paper's suite runs 2.8k). *)

val openssl : ?buffers:int -> unit -> Workload.t
(** Default 48 x 16 KB digests per scale unit. *)
