let words =
  [|
    "the"; "of"; "monitor"; "kernel"; "enclave"; "secure"; "domain"; "virtual"; "machine"; "privilege";
    "level"; "memory"; "page"; "table"; "confidential"; "cloud"; "integrity"; "protects"; "services";
    "hypervisor"; "attestation"; "measurement"; "system"; "and"; "with"; "guest";
  |]

let text rng n =
  let buf = Buffer.create n in
  while Buffer.length buf < n do
    (* Zipf-ish skew: favour low indices *)
    let r = Veil_crypto.Rng.int rng (Array.length words * (Array.length words + 1) / 2) in
    let rec pick i acc = if r < acc + (Array.length words - i) then i else pick (i + 1) (acc + (Array.length words - i)) in
    Buffer.add_string buf words.(pick 0 0 mod Array.length words);
    Buffer.add_char buf (if Veil_crypto.Rng.int rng 12 = 0 then '\n' else ' ')
  done;
  Bytes.sub (Buffer.to_bytes buf) 0 n

let binary rng n =
  let b = Bytes.create n in
  let pos = ref 0 in
  while !pos < n do
    let run = min (n - !pos) (16 + Veil_crypto.Rng.int rng 240) in
    if Veil_crypto.Rng.int rng 3 = 0 then Bytes.fill b !pos run '\000'
    else Bytes.blit (Veil_crypto.Rng.bytes rng run) 0 b !pos run;
    pos := !pos + run
  done;
  b
