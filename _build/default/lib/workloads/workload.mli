(** Workload definition shared by the benchmark driver.

    The measured program runs against [ctx.env] (native, enclave or
    audited depending on the driver mode); load generators — the ab /
    memaslap clients of Tables 4-5 — run against [ctx.client], which
    is always a plain native environment in the same guest. *)

type ctx = {
  env : Env.t;  (** the measured program's environment *)
  client : Env.t;  (** native-side load generator / input preparation *)
  rng : Veil_crypto.Rng.t;
  scale : int;  (** problem-size multiplier (benches run larger than tests) *)
}

type t = {
  name : string;
  vcpus : int;
      (** VCPUs of the paper's configuration (overheads are normalized
          against total machine capacity) *)
  setup : ctx -> unit;  (** input preparation, always native *)
  body : ctx -> unit;  (** the measured program *)
}

val make : name:string -> ?vcpus:int -> ?setup:(ctx -> unit) -> (ctx -> unit) -> t
