let enclave_programs () =
  [ Gzip_w.workload (); Dbs.unqlite (); Crypto_w.mbedtls (); Servers.lighttpd (); Dbs.sqlite () ]

let audit_programs () =
  [ Crypto_w.openssl (); Cpu_w.sevenzip (); Servers.memcached (); Dbs.sqlite (); Servers.nginx () ]

let background_programs () = [ Cpu_w.spec (); Servers.memcached (); Servers.nginx () ]

let all () =
  [
    Gzip_w.workload ();
    Dbs.sqlite ();
    Dbs.unqlite ();
    Crypto_w.mbedtls ();
    Servers.lighttpd ();
    Servers.nginx ();
    Servers.memcached ();
    Crypto_w.openssl ();
    Cpu_w.sevenzip ();
    Cpu_w.spec ();
    Servers.lighttpd_concurrent ();
  ]

let find name = List.find_opt (fun w -> w.Workload.name = name) (all ())
