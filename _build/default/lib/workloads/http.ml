type server = {
  listen_fd : int;
  docroot : string;
  mutable served : int;
  fd_cache : (string, int * int) Hashtbl.t; (* path -> open fd, size *)
  mutable per_request_compute : int;
}

let server_start env ~port ~docroot =
  let fd = Env.socket env in
  Env.bind env fd ~port;
  Env.listen env fd ~backlog:64;
  { listen_fd = fd; docroot; served = 0; fd_cache = Hashtbl.create 16; per_request_compute = 700_000 }

let requests_served s = s.served
let set_per_request_compute s n = s.per_request_compute <- n
let listen_fd s = s.listen_fd

let parse_request line =
  match String.split_on_char ' ' (String.trim line) with
  | [ "GET"; path; _version ] -> Some path
  | [ "GET"; path ] -> Some path
  | _ -> None

let respond env conn body_opt =
  match body_opt with
  | Some body ->
      let header =
        Printf.sprintf "HTTP/1.0 200 OK\r\nContent-Length: %d\r\nServer: veil-httpd\r\n\r\n"
          (Bytes.length body)
      in
      (* writev: header + body in one submission *)
      ignore (Env.send env conn (Bytes.cat (Bytes.of_string header) body))
  | None -> ignore (Env.send env conn (Bytes.of_string "HTTP/1.0 404 Not Found\r\n\r\n"))

(* lighttpd keeps hot files open: open+stat once, pread per request *)
let read_file env s path =
  let handle =
    match Hashtbl.find_opt s.fd_cache path with
    | Some h -> Some h
    | None -> (
        match Env.open_ env path ~flags:Env.o_rdonly ~mode:0 with
        | fd ->
            let size = try Env.stat_size env path with Env.Sys_error _ -> 0 in
            Hashtbl.replace s.fd_cache path (fd, size);
            Some (fd, size)
        | exception Env.Sys_error _ -> None)
  in
  match handle with
  | None -> None
  | Some (fd, size) -> Some (if size > 0 then Env.pread env fd ~len:size ~pos:0 else Bytes.empty)

let handle_one env s conn =
  match Env.recv env conn 1024 with
  | None -> false
  | Some req when Bytes.length req = 0 -> false
  | Some req -> (
      env.Env.compute s.per_request_compute (* parse, routing, logging, TCP stack *);
      match parse_request (Bytes.to_string req) with
      | None ->
          respond env conn None;
          false
      | Some path ->
          let body = read_file env s (s.docroot ^ path) in
          respond env conn body;
          s.served <- s.served + 1;
          true)

let serve_pending env s =
  let handled = ref 0 in
  let rec accept_loop () =
    match Env.accept env s.listen_fd with
    | None -> ()
    | Some conn ->
        ignore (handle_one env s conn);
        Env.close env conn;
        incr handled;
        accept_loop ()
  in
  accept_loop ();
  !handled

let serve_on_connection env s ~conn_fd = handle_one env s conn_fd

let client_connect env ~port =
  let fd = Env.socket env in
  Env.connect env fd ~port;
  fd

(* our loopback stack delivers the queued response atomically, so one
   large recv suffices (and keeps the client's audited-call count
   realistic: one recvfrom per response) *)
let recv_all env fd =
  match Env.recv env fd 65536 with Some b -> b | None -> Bytes.empty

let strip_header resp =
  let s = Bytes.to_string resp in
  if not (String.length s >= 12 && String.sub s 9 3 = "200") then None
  else
  match String.index_opt s '\r' with
  | None -> None
  | Some _ -> (
      (* find \r\n\r\n *)
      let rec find i =
        if i + 3 >= String.length s then None
        else if s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r' && s.[i + 3] = '\n' then Some (i + 4)
        else find (i + 1)
      in
      match find 0 with
      | None -> None
      | Some body_start -> Some (Bytes.sub resp body_start (Bytes.length resp - body_start)))

let client_get ?(serve = fun () -> ()) env ~port ~path =
  let fd = client_connect env ~port in
  ignore (Env.send env fd (Bytes.of_string (Printf.sprintf "GET %s HTTP/1.0\r\n\r\n" path)));
  (* single-threaded guest: run the server side now *)
  serve ();
  let resp = recv_all env fd in
  Env.close env fd;
  strip_header resp

let client_get_keepalive env ~conn_fd ~server:_ ~serve ~path =
  ignore (Env.send env conn_fd (Bytes.of_string (Printf.sprintf "GET %s HTTP/1.0\r\n\r\n" path)));
  serve ();
  let resp = recv_all env conn_fd in
  strip_header resp
