(** HMAC-SHA256 (RFC 2104).

    Used to authenticate the VeilS-LOG retrieval channel and to key the
    per-enclave page-swap integrity hashes. *)

val mac : key:bytes -> bytes -> bytes
(** 32-byte authentication tag. *)

val mac_string : key:bytes -> string -> bytes

val verify : key:bytes -> msg:bytes -> tag:bytes -> bool
(** Constant-shape comparison of a recomputed tag against [tag]. *)
