(** Diffie-Hellman key agreement over a [Group.t].

    The SEV attestation digest carries the guest's DH public value so a
    remote user can establish the secure channel with VeilMon that the
    paper's §5.1 describes. *)

type keypair = { secret : Bignum.t; public : Bignum.t }

val keygen : ?group:Group.t -> Rng.t -> keypair

val shared_secret : ?group:Group.t -> secret:Bignum.t -> peer_public:Bignum.t -> unit -> bytes
(** 32-byte symmetric key derived by hashing g^(ab) mod p. *)
