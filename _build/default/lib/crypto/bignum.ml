(* Little-endian limbs, base 2^26, normalized: highest limb non-zero.
   [zero] is the empty array. *)

type t = int array

exception Underflow
exception Division_by_zero

let limb_bits = 26
let limb_base = 1 lsl limb_bits
let limb_mask = limb_base - 1

let zero : t = [||]

let normalize (a : int array) : t =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do decr n done;
  if !n = Array.length a then a else Array.sub a 0 !n

let of_int n =
  if n < 0 then invalid_arg "Bignum.of_int: negative";
  let rec limbs n acc = if n = 0 then List.rev acc else limbs (n lsr limb_bits) ((n land limb_mask) :: acc) in
  Array.of_list (limbs n [])

let one = of_int 1
let two = of_int 2

let is_zero (a : t) = Array.length a = 0

let to_int_opt (a : t) =
  (* Fits when below 2^62 to stay clear of the sign bit. *)
  if Array.length a > 3 then None
  else begin
    let v = ref 0 and ok = ref true in
    for i = Array.length a - 1 downto 0 do
      if !v >= 1 lsl (62 - limb_bits) then ok := false
      else v := (!v lsl limb_bits) lor a.(i)
    done;
    if !ok then Some !v else None
  end

let compare (a : t) (b : t) =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else begin
    let rec go i = if i < 0 then 0 else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i) else go (i - 1) in
    go (la - 1)
  end

let equal a b = compare a b = 0

let is_odd (a : t) = Array.length a > 0 && a.(0) land 1 = 1

let bit_length (a : t) =
  let n = Array.length a in
  if n = 0 then 0
  else begin
    let top = a.(n - 1) in
    let b = ref 0 and v = ref top in
    while !v > 0 do incr b; v := !v lsr 1 done;
    (n - 1) * limb_bits + !b
  end

let testbit (a : t) i =
  let l = i / limb_bits in
  l < Array.length a && (a.(l) lsr (i mod limb_bits)) land 1 = 1

let add (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  let n = max la lb + 1 in
  let r = Array.make n 0 in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    r.(i) <- s land limb_mask;
    carry := s lsr limb_bits
  done;
  normalize r

let sub (a : t) (b : t) : t =
  if compare a b < 0 then raise Underflow;
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let s = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if s < 0 then begin r.(i) <- s + limb_base; borrow := 1 end
    else begin r.(i) <- s; borrow := 0 end
  done;
  normalize r

let mul (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      for j = 0 to lb - 1 do
        let s = r.(i + j) + (ai * b.(j)) + !carry in
        r.(i + j) <- s land limb_mask;
        carry := s lsr limb_bits
      done;
      let k = ref (i + lb) in
      while !carry > 0 do
        let s = r.(!k) + !carry in
        r.(!k) <- s land limb_mask;
        carry := s lsr limb_bits;
        incr k
      done
    done;
    normalize r
  end

let shift_left (a : t) bits : t =
  if is_zero a || bits = 0 then a
  else begin
    let limbs = bits / limb_bits and off = bits mod limb_bits in
    let la = Array.length a in
    let r = Array.make (la + limbs + 1) 0 in
    for i = 0 to la - 1 do
      let v = a.(i) lsl off in
      r.(i + limbs) <- r.(i + limbs) lor (v land limb_mask);
      r.(i + limbs + 1) <- r.(i + limbs + 1) lor (v lsr limb_bits)
    done;
    normalize r
  end

let shift_right (a : t) bits : t =
  if is_zero a || bits = 0 then a
  else begin
    let limbs = bits / limb_bits and off = bits mod limb_bits in
    let la = Array.length a in
    if limbs >= la then zero
    else begin
      let n = la - limbs in
      let r = Array.make n 0 in
      for i = 0 to n - 1 do
        let lo = a.(i + limbs) lsr off in
        let hi = if i + limbs + 1 < la then (a.(i + limbs + 1) lsl (limb_bits - off)) land limb_mask else 0 in
        r.(i) <- if off = 0 then a.(i + limbs) else lo lor hi
      done;
      normalize r
    end
  end

(* Binary long division: walk from the top bit down, keeping a running
   remainder; adequate for the simulator's <=1024-bit operands. *)
let divmod (a : t) (b : t) : t * t =
  if is_zero b then raise Division_by_zero;
  if compare a b < 0 then (zero, a)
  else begin
    let shift = bit_length a - bit_length b in
    let q = Array.make (shift / limb_bits + 1) 0 in
    let r = ref a and d = ref (shift_left b shift) in
    for i = shift downto 0 do
      if compare !r !d >= 0 then begin
        r := sub !r !d;
        q.(i / limb_bits) <- q.(i / limb_bits) lor (1 lsl (i mod limb_bits))
      end;
      d := shift_right !d 1
    done;
    (normalize q, !r)
  end

let rem a b = snd (divmod a b)

let powmod ~base ~exp ~modulus =
  if is_zero modulus then raise Division_by_zero;
  if equal modulus one then zero
  else begin
    let result = ref one and b = ref (rem base modulus) in
    let nbits = bit_length exp in
    for i = 0 to nbits - 1 do
      if testbit exp i then result := rem (mul !result !b) modulus;
      if i < nbits - 1 then b := rem (mul !b !b) modulus
    done;
    !result
  end

let gcd a b =
  let rec go a b = if is_zero b then a else go b (rem a b) in
  if compare a b >= 0 then go a b else go b a

(* Extended Euclid with explicit signs on the Bezout coefficients. *)
let invmod a m =
  if is_zero m then raise Division_by_zero;
  let a = rem a m in
  if is_zero a then None
  else begin
    (* (old_r, r) magnitudes; (old_s, s) signed: (sign, mag), sign true = non-negative *)
    let old_r = ref m and r = ref a in
    let old_s = ref (true, zero) and s = ref (true, one) in
    let signed_sub (sx, x) (sy, y) =
      (* x - y with signs *)
      if sx = sy then (if compare x y >= 0 then (sx, sub x y) else (not sx, sub y x))
      else (sx, add x y)
    in
    let signed_mul_mag q (sx, x) = (sx, mul q x) in
    while not (is_zero !r) do
      let q, rm = divmod !old_r !r in
      old_r := !r; r := rm;
      let next_s = signed_sub !old_s (signed_mul_mag q !s) in
      old_s := !s; s := next_s
    done;
    if not (equal !old_r one) then None
    else begin
      let sign, mag = !old_s in
      let v = rem mag m in
      if sign || is_zero v then Some v else Some (sub m v)
    end
  end

let random_bits rng n =
  if n < 1 then invalid_arg "Bignum.random_bits";
  let nlimbs = (n + limb_bits - 1) / limb_bits in
  let r = Array.init nlimbs (fun _ -> Int64.to_int (Int64.logand (Rng.next64 rng) (Int64.of_int limb_mask))) in
  let top_bits = n - (nlimbs - 1) * limb_bits in
  r.(nlimbs - 1) <- (r.(nlimbs - 1) land ((1 lsl top_bits) - 1)) lor (1 lsl (top_bits - 1));
  normalize r

let random_below rng bound =
  if is_zero bound then invalid_arg "Bignum.random_below: zero bound";
  let bits = bit_length bound in
  let rec try_ () =
    let nlimbs = (bits + limb_bits - 1) / limb_bits in
    let r = normalize (Array.init nlimbs (fun _ -> Int64.to_int (Int64.logand (Rng.next64 rng) (Int64.of_int limb_mask)))) in
    let r = if bit_length r > bits then shift_right r (bit_length r - bits) else r in
    if compare r bound < 0 then r else try_ ()
  in
  try_ ()

let is_probably_prime ?(rounds = 20) rng n =
  if compare n two < 0 then false
  else if equal n two || equal n (of_int 3) then true
  else if not (is_odd n) then false
  else begin
    let n_minus_1 = sub n one in
    (* n-1 = 2^s * d *)
    let s = ref 0 and d = ref n_minus_1 in
    while not (is_odd !d) do d := shift_right !d 1; incr s done;
    let witness a =
      let x = ref (powmod ~base:a ~exp:!d ~modulus:n) in
      if equal !x one || equal !x n_minus_1 then false
      else begin
        let composite = ref true in
        (try
           for _ = 1 to !s - 1 do
             x := rem (mul !x !x) n;
             if equal !x n_minus_1 then begin composite := false; raise Exit end
           done
         with Exit -> ());
        !composite
      end
    in
    let rec go i =
      if i = 0 then true
      else begin
        let a = add two (random_below rng (sub n (of_int 3))) in
        if witness a then false else go (i - 1)
      end
    in
    go rounds
  end

let of_bytes_be b =
  let r = ref zero in
  Bytes.iter (fun c -> r := add (shift_left !r 8) (of_int (Char.code c))) b;
  !r

let to_bytes_be a =
  if is_zero a then Bytes.make 1 '\000'
  else begin
    let nbytes = (bit_length a + 7) / 8 in
    let b = Bytes.create nbytes in
    let v = ref a in
    for i = nbytes - 1 downto 0 do
      let lo = match to_int_opt (rem !v (of_int 256)) with Some x -> x | None -> assert false in
      Bytes.set b i (Char.chr lo);
      v := shift_right !v 8
    done;
    b
  end

let of_hex s =
  let r = ref zero in
  String.iter
    (fun c ->
      let d =
        match c with
        | '0' .. '9' -> Char.code c - Char.code '0'
        | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
        | '_' | ' ' -> -1
        | _ -> invalid_arg "Bignum.of_hex"
      in
      if d >= 0 then r := add (shift_left !r 4) (of_int d))
    s;
  !r

let to_hex a =
  if is_zero a then "0"
  else begin
    let buf = Buffer.create 32 in
    let nnib = (bit_length a + 3) / 4 in
    for i = nnib - 1 downto 0 do
      let nib =
        (if i * 4 / limb_bits < Array.length a then a.(i * 4 / limb_bits) lsr (i * 4 mod limb_bits) else 0)
        land 0xf
        lor
        (if (i * 4 mod limb_bits) > limb_bits - 4 && (i * 4 / limb_bits + 1) < Array.length a then
           (a.(i * 4 / limb_bits + 1) lsl (limb_bits - (i * 4 mod limb_bits))) land 0xf
         else 0)
      in
      Buffer.add_char buf "0123456789abcdef".[nib]
    done;
    (* strip leading zeros *)
    let s = Buffer.contents buf in
    let i = ref 0 in
    while !i < String.length s - 1 && s.[!i] = '0' do incr i done;
    String.sub s !i (String.length s - !i)
  end

let pp fmt a = Format.pp_print_string fmt (to_hex a)
