type t = { ctx : Sha256.ctx }

let add_framed ctx tag payload =
  let header = Printf.sprintf "%s:%d:" tag (Bytes.length payload) in
  Sha256.update_string ctx header;
  Sha256.update ctx payload

let create ~domain =
  let ctx = Sha256.init () in
  add_framed ctx "domain" (Bytes.of_string domain);
  { ctx }

let add_bytes t ~label b = add_framed t.ctx label b
let add_string t ~label s = add_bytes t ~label (Bytes.of_string s)
let add_int t ~label n = add_string t ~label (string_of_int n)

let digest t = Sha256.finalize t.ctx

let equal_digest a b = Bytes.equal a b
