type t = { p : Bignum.t; q : Bignum.t; g : Bignum.t }

let generate ?(bits = 96) rng =
  (* Search odd q until both q and p = 2q+1 pass Miller-Rabin. *)
  let rec find_q () =
    let q = Bignum.random_bits rng (bits - 1) in
    let q = if Bignum.is_odd q then q else Bignum.add q Bignum.one in
    if Bignum.is_probably_prime ~rounds:12 rng q then begin
      let p = Bignum.add (Bignum.shift_left q 1) Bignum.one in
      if Bignum.is_probably_prime ~rounds:12 rng p then (p, q) else find_q ()
    end
    else find_q ()
  in
  let p, q = find_q () in
  (* g = h^2 mod p generates the order-q subgroup for any h with h^2 <> 1. *)
  let rec find_g () =
    let h = Bignum.add Bignum.two (Bignum.random_below rng (Bignum.sub p (Bignum.of_int 4))) in
    let g = Bignum.powmod ~base:h ~exp:Bignum.two ~modulus:p in
    if Bignum.equal g Bignum.one then find_g () else g
  in
  { p; q; g = find_g () }

let default_group = lazy (generate (Rng.create 0x5EC0DE))

let default () = Lazy.force default_group

let element_of_bytes t b =
  let h = Bignum.of_bytes_be (Sha256.digest_bytes b) in
  Bignum.add Bignum.one (Bignum.rem h (Bignum.sub t.q Bignum.one))
