(** ChaCha20 stream cipher (RFC 8439).

    VeilS-ENC encrypts enclave pages with a per-enclave key before
    handing them to the untrusted OS during demand paging. *)

val block : key:bytes -> nonce:bytes -> counter:int -> bytes
(** One 64-byte keystream block.  [key] is 32 bytes, [nonce] 12 bytes. *)

val encrypt : key:bytes -> nonce:bytes -> ?counter:int -> bytes -> bytes
(** XOR the input with the keystream starting at [counter] (default 1,
    per RFC 8439's cipher usage).  Encryption and decryption are the
    same operation. *)
