(** Ordered measurement accumulator.

    Builds the SHA-256 measurements the paper relies on: the CVM boot
    image launch digest (§5.1) and the per-enclave measurement over
    page contents *and* metadata such as permissions (§6.2).  Items
    are length-prefixed and domain-tagged so distinct structures can
    never collide byte-wise. *)

type t

val create : domain:string -> t
(** [domain] separates measurement kinds (e.g. "cvm-launch",
    "veil-enclave"). *)

val add_bytes : t -> label:string -> bytes -> unit
val add_string : t -> label:string -> string -> unit
val add_int : t -> label:string -> int -> unit

val digest : t -> bytes
(** 32-byte final measurement.  The accumulator must not be reused. *)

val equal_digest : bytes -> bytes -> bool
