(** Arbitrary-precision unsigned integers.

    Little-endian limb array in base 2^26 so limb products fit in the
    native 63-bit [int].  Provides exactly what the simulated
    attestation / key-exchange / signature stack needs: comparison,
    ring arithmetic, division with remainder, modular exponentiation
    and Miller-Rabin primality.  All values are non-negative;
    subtraction of a larger value raises [Underflow]. *)

type t

exception Underflow
exception Division_by_zero

val zero : t
val one : t
val two : t

val of_int : int -> t
(** [of_int n] for [n >= 0]. *)

val to_int_opt : t -> int option
(** [Some n] when the value fits in a native [int]. *)

val of_bytes_be : bytes -> t
(** Big-endian byte-string decoding. *)

val to_bytes_be : t -> bytes
(** Minimal-length big-endian encoding ([zero] encodes to one 0 byte). *)

val of_hex : string -> t
val to_hex : t -> string

val compare : t -> t -> int
val equal : t -> t -> bool
val is_zero : t -> bool
val is_odd : t -> bool

val bit_length : t -> int
(** Number of significant bits; [bit_length zero = 0]. *)

val testbit : t -> int -> bool

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val shift_left : t -> int -> t
val shift_right : t -> int -> t

val divmod : t -> t -> t * t
(** [divmod a b = (q, r)] with [a = q*b + r] and [r < b]. *)

val rem : t -> t -> t

val powmod : base:t -> exp:t -> modulus:t -> t
(** Modular exponentiation by square-and-multiply. *)

val invmod : t -> t -> t option
(** [invmod a m] is the inverse of [a] modulo [m] when gcd(a,m)=1. *)

val gcd : t -> t -> t

val is_probably_prime : ?rounds:int -> Rng.t -> t -> bool
(** Miller-Rabin with [rounds] random witnesses (default 20). *)

val random_bits : Rng.t -> int -> t
(** Uniform value with exactly [n] bits (top bit set), [n >= 1]. *)

val random_below : Rng.t -> t -> t
(** Uniform in [0, bound); [bound] must be positive. *)

val pp : Format.formatter -> t -> unit
