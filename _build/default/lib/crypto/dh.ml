type keypair = { secret : Bignum.t; public : Bignum.t }

let keygen ?group rng =
  let g = match group with Some g -> g | None -> Group.default () in
  let secret = Bignum.add Bignum.one (Bignum.random_below rng (Bignum.sub g.Group.q Bignum.one)) in
  let public = Bignum.powmod ~base:g.Group.g ~exp:secret ~modulus:g.Group.p in
  { secret; public }

let shared_secret ?group ~secret ~peer_public () =
  let g = match group with Some g -> g | None -> Group.default () in
  let s = Bignum.powmod ~base:peer_public ~exp:secret ~modulus:g.Group.p in
  Sha256.digest_bytes (Bignum.to_bytes_be s)
