(** A Schnorr group: prime modulus [p = 2q + 1] with prime order-[q]
    subgroup generator [g].

    Shared by the Diffie-Hellman key exchange ([Dh]) and the signature
    scheme ([Schnorr]).  The default group is generated once,
    deterministically, from a fixed seed — the simulation needs
    algebraic correctness, not cryptographic key sizes. *)

type t = private { p : Bignum.t; q : Bignum.t; g : Bignum.t }

val generate : ?bits:int -> Rng.t -> t
(** Find a safe prime of [bits] bits (default 96) and a generator of the
    order-q subgroup. *)

val default : unit -> t
(** The lazily generated, process-wide simulation group. *)

val element_of_bytes : t -> bytes -> Bignum.t
(** Hash a byte string into the exponent range [1, q). *)
