type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next64 t =
  t.state <- Int64.add t.state golden;
  mix t.state

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let v = Int64.to_int (Int64.shift_right_logical (next64 t) 2) in
  v mod bound

let byte t = int t 256

let bytes t n =
  let b = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.unsafe_set b i (Char.unsafe_chr (byte t))
  done;
  b

let bool t = Int64.logand (next64 t) 1L = 1L

let split t = { state = mix (next64 t) }
