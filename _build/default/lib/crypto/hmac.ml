let block_size = 64

let normalize_key key =
  let key = if Bytes.length key > block_size then Sha256.digest_bytes key else key in
  let k = Bytes.make block_size '\000' in
  Bytes.blit key 0 k 0 (Bytes.length key);
  k

let xor_pad key byte =
  let out = Bytes.create block_size in
  for i = 0 to block_size - 1 do
    Bytes.set out i (Char.chr (Char.code (Bytes.get key i) lxor byte))
  done;
  out

let mac ~key msg =
  let k = normalize_key key in
  let inner = Sha256.init () in
  Sha256.update inner (xor_pad k 0x36);
  Sha256.update inner msg;
  let inner_digest = Sha256.finalize inner in
  let outer = Sha256.init () in
  Sha256.update outer (xor_pad k 0x5c);
  Sha256.update outer inner_digest;
  Sha256.finalize outer

let mac_string ~key s = mac ~key (Bytes.of_string s)

let verify ~key ~msg ~tag =
  let expected = mac ~key msg in
  if Bytes.length expected <> Bytes.length tag then false
  else begin
    let diff = ref 0 in
    for i = 0 to Bytes.length expected - 1 do
      diff := !diff lor (Char.code (Bytes.get expected i) lxor Char.code (Bytes.get tag i))
    done;
    !diff = 0
  end
