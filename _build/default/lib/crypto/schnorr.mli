(** Schnorr signatures over a [Group.t].

    Signs the simulated SEV attestation reports (standing in for AMD's
    VCEK chain) and kernel-module images for VeilS-KCI. *)

type keypair = { secret : Bignum.t; public : Bignum.t }
type signature = { s : Bignum.t; e : Bignum.t }

val keygen : ?group:Group.t -> Rng.t -> keypair

val sign : ?group:Group.t -> Rng.t -> secret:Bignum.t -> bytes -> signature

val verify : ?group:Group.t -> public:Bignum.t -> msg:bytes -> signature -> bool

val signature_to_bytes : signature -> bytes
val signature_of_bytes : bytes -> signature option
