type keypair = { secret : Bignum.t; public : Bignum.t }
type signature = { s : Bignum.t; e : Bignum.t }

let keygen ?group rng =
  let g = match group with Some g -> g | None -> Group.default () in
  let secret = Bignum.add Bignum.one (Bignum.random_below rng (Bignum.sub g.Group.q Bignum.one)) in
  (* public = g^(-secret) so that verification is r = g^s * y^e. *)
  let neg = Bignum.sub g.Group.q secret in
  let public = Bignum.powmod ~base:g.Group.g ~exp:neg ~modulus:g.Group.p in
  { secret; public }

let challenge g r msg =
  let buf = Buffer.create 64 in
  Buffer.add_bytes buf (Bignum.to_bytes_be r);
  Buffer.add_bytes buf msg;
  Group.element_of_bytes g (Bytes.of_string (Buffer.contents buf))

let sign ?group rng ~secret msg =
  let g = match group with Some g -> g | None -> Group.default () in
  let k = Bignum.add Bignum.one (Bignum.random_below rng (Bignum.sub g.Group.q Bignum.one)) in
  let r = Bignum.powmod ~base:g.Group.g ~exp:k ~modulus:g.Group.p in
  let e = challenge g r msg in
  let s = Bignum.rem (Bignum.add k (Bignum.mul secret e)) g.Group.q in
  { s; e }

let verify ?group ~public ~msg { s; e } =
  let g = match group with Some g -> g | None -> Group.default () in
  let gv = Bignum.powmod ~base:g.Group.g ~exp:s ~modulus:g.Group.p in
  let yv = Bignum.powmod ~base:public ~exp:e ~modulus:g.Group.p in
  let rv = Bignum.rem (Bignum.mul gv yv) g.Group.p in
  Bignum.equal (challenge g rv msg) e

let signature_to_bytes { s; e } =
  let bs = Bignum.to_bytes_be s and be = Bignum.to_bytes_be e in
  let buf = Buffer.create (4 + Bytes.length bs + Bytes.length be) in
  Buffer.add_uint16_be buf (Bytes.length bs);
  Buffer.add_bytes buf bs;
  Buffer.add_uint16_be buf (Bytes.length be);
  Buffer.add_bytes buf be;
  Bytes.of_string (Buffer.contents buf)

let signature_of_bytes b =
  try
    let ls = Bytes.get_uint16_be b 0 in
    let s = Bignum.of_bytes_be (Bytes.sub b 2 ls) in
    let le = Bytes.get_uint16_be b (2 + ls) in
    let e = Bignum.of_bytes_be (Bytes.sub b (4 + ls) le) in
    if 4 + ls + le = Bytes.length b then Some { s; e } else None
  with Invalid_argument _ -> None
