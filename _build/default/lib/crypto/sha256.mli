(** SHA-256 (FIPS 180-4).

    Used for CVM launch measurements, enclave measurements, page
    integrity hashes and as the compression function behind [Hmac]
    and the signature stack. *)

type ctx

val init : unit -> ctx
val update : ctx -> bytes -> unit
val update_string : ctx -> string -> unit
val finalize : ctx -> bytes
(** 32-byte digest.  The context must not be reused afterwards. *)

val digest_bytes : bytes -> bytes
val digest_string : string -> bytes

val hex_of_digest : bytes -> string
(** Lowercase hex rendering of a digest (or any byte string). *)
