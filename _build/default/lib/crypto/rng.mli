(** Deterministic, seedable pseudo-random generator (splitmix64-based).

    Used everywhere the simulator needs randomness so that whole-system
    runs are reproducible from a single seed.  Not cryptographically
    secure; the simulated platform only needs determinism. *)

type t

val create : int -> t
(** [create seed] returns a fresh generator. *)

val next64 : t -> int64
(** Next 64 pseudo-random bits. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). [bound] must be positive. *)

val byte : t -> int
(** Uniform in [0, 256). *)

val bytes : t -> int -> bytes
(** [bytes t n] is [n] pseudo-random bytes. *)

val bool : t -> bool

val split : t -> t
(** Derive an independent generator (for sub-components). *)
