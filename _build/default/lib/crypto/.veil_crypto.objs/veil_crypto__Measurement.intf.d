lib/crypto/measurement.mli:
