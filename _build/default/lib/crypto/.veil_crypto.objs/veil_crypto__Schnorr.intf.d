lib/crypto/schnorr.mli: Bignum Group Rng
