lib/crypto/bignum.ml: Array Buffer Bytes Char Format Int64 List Rng Stdlib String
