lib/crypto/dh.mli: Bignum Group Rng
