lib/crypto/schnorr.ml: Bignum Buffer Bytes Group
