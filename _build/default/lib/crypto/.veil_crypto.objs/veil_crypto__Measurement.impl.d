lib/crypto/measurement.ml: Bytes Printf Sha256
