lib/crypto/group.ml: Bignum Lazy Rng Sha256
