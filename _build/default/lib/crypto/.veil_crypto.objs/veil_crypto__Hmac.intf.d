lib/crypto/hmac.mli:
