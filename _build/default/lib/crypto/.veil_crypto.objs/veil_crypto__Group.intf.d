lib/crypto/group.mli: Bignum Rng
