lib/crypto/dh.ml: Bignum Group Sha256
