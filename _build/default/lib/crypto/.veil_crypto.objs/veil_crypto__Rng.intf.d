lib/crypto/rng.mli:
