type t = Mon | Sec | Enc | Unt

let all = [ Mon; Sec; Enc; Unt ]

let vmpl = function
  | Mon -> Sevsnp.Types.Vmpl0
  | Sec -> Sevsnp.Types.Vmpl1
  | Enc -> Sevsnp.Types.Vmpl2
  | Unt -> Sevsnp.Types.Vmpl3

let cpl = function
  | Mon | Sec | Unt -> Sevsnp.Types.Cpl0
  | Enc -> Sevsnp.Types.Cpl3

let of_vmpl = function
  | Sevsnp.Types.Vmpl0 -> Mon
  | Sevsnp.Types.Vmpl1 -> Sec
  | Sevsnp.Types.Vmpl2 -> Enc
  | Sevsnp.Types.Vmpl3 -> Unt

let more_privileged a b =
  Sevsnp.Types.vmpl_strictly_higher (vmpl a) (vmpl b)

let to_string = function Mon -> "Dom_MON" | Sec -> "Dom_SEC" | Enc -> "Dom_ENC" | Unt -> "Dom_UNT"

let pp fmt t = Format.pp_print_string fmt (to_string t)

let equal (a : t) b = a = b
