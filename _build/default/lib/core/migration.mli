(** Enclave migration between Veil CVMs.

    AMD's SVSM — the VMPL-0 module the paper plans to integrate with
    (§11) — exists chiefly to support CVM migration; this module brings
    the equivalent capability to Veil enclaves.  The source VeilMon
    seals the enclave's protected state (page contents + layout +
    measurement) under a transport key negotiated with the
    *attested* destination monitor; the destination verifies integrity
    and the measurement before rebuilding the enclave, so a malicious
    host can neither read the state in transit nor splice enclaves
    together. *)

type sealed_state
(** Opaque, encrypted + authenticated enclave image.  Safe to hand to
    the untrusted host for transport. *)

val export :
  Boot.veil_system -> Encsvc.enclave -> dest_public:Veil_crypto.Bignum.t -> (sealed_state, string) result
(** Seal a (not currently executing) enclave for the destination
    monitor identified by its DH public key.  The source enclave is
    destroyed after export (an enclave never runs twice). *)

val import :
  Boot.veil_system ->
  owner:Guest_kernel.Process.t ->
  source_public:Veil_crypto.Bignum.t ->
  sealed_state ->
  (Encsvc.enclave, string) result
(** Rebuild the enclave on the destination: the OS allocates frames,
    VeilS-ENC decrypts and verifies each page against the sealed
    manifest, and finalization re-checks the usual layout invariants.
    The measurement is preserved — a remote user's attestation of the
    migrated enclave matches the original. *)

val sealed_to_bytes : sealed_state -> bytes
(** Wire form (what actually crosses the untrusted network). *)

val sealed_of_bytes : bytes -> sealed_state option

val tamper_for_test : sealed_state -> sealed_state
(** Flip a ciphertext byte — import must reject the result. *)
