(** VeilS-TPM — a virtual TPM as a fourth protected service.

    The paper argues any critical service can be protected by the
    framework (§6), and names AMD's SVSM — whose flagship payload is a
    virtual TPM for CVMs — as the natural integration target (§11).
    This service demonstrates both: PCR banks live in Dom_SEC memory
    the OS can extend (through the IDCB path) but never rewrite, and
    quotes are signed with a service key whose public half a remote
    user learns over VeilMon's attested channel. *)

type t

val n_pcrs : int
(** Eight 32-byte PCR banks. *)

val install : Monitor.t -> t
(** Register with VeilMon; PCR storage comes from the Dom_SEC heap. *)

val pcr_value : t -> int -> bytes
(** Trusted-side read of a PCR (32 bytes). *)

val extends_count : t -> int

val quote_public_key : t -> Veil_crypto.Bignum.t
(** Verification key for quotes (distributed over the secure channel). *)

type quote = {
  q_pcrs : bytes array;
  q_nonce : bytes;
  q_signature : Veil_crypto.Schnorr.signature;
}

val quote_of_bytes : bytes -> quote option
val verify_quote : public:Veil_crypto.Bignum.t -> quote -> bool
(** Check the signature over (PCR values, nonce). *)

val expected_pcr : events:bytes list -> bytes
(** Remote-side replay of an event log: fold SHA-256 extends over a
    zero PCR. *)
