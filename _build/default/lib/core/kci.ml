module T = Sevsnp.Types
module C = Sevsnp.Cycles
module P = Sevsnp.Platform

type stats = { mutable modules_loaded : int; mutable modules_unloaded : int; mutable rejected : int }

type t = {
  mon : Monitor.t;
  vendor_public : Veil_crypto.Bignum.t;
  symbols : (string * int) list;  (** protected copy, taken at install time *)
  stats : stats;
  mutable activated : bool;
  mutable module_text : T.gpfn list;
}

let stats t = t.stats
let active t = t.activated
let protected_module_frames t = t.module_text

(* Kernel text: readable + supervisor-executable, never writable.
   Kernel data: read/write, never supervisor-executable. *)
let text_perms =
  { Sevsnp.Perm.read = true; write = false; user_exec = false; super_exec = true }

let data_perms =
  { Sevsnp.Perm.read = true; write = true; user_exec = true; super_exec = false }

let activate t vcpu =
  let l = Monitor.layout t.mon in
  let sweep (r : Layout.region) perms =
    for gpfn = r.Layout.lo to r.Layout.hi - 1 do
      match Monitor.mon_rmpadjust t.mon vcpu ~gpfn ~target:Privdom.Unt ~perms with
      | Ok () -> ()
      | Error e -> failwith ("VeilS-KCI sweep: " ^ e)
    done
  in
  sweep l.Layout.kernel_text text_perms;
  sweep l.Layout.kernel_data data_perms;
  t.activated <- true

let charge vcpu b n = Sevsnp.Vcpu.charge vcpu b n

let install_module t vcpu (image : Guest_kernel.Kmodule.image) text_gpfns data_gpfns =
  let platform = Monitor.platform t.mon in
  charge vcpu C.Crypto (C.hash_cost (Guest_kernel.Kmodule.binary_size image));
  if not (Guest_kernel.Kmodule.verify ~vendor_public:t.vendor_public image) then begin
    t.stats.rejected <- t.stats.rejected + 1;
    Idcb.Resp_error "VeilS-KCI: module signature verification failed"
  end
  else begin
    (* Relocate against the *protected* symbol table — the untrusted
       kernel's table may have been corrupted (TOCTOU, §6.1). *)
    let text = Bytes.copy image.Guest_kernel.Kmodule.text in
    let ok =
      List.for_all
        (fun (off, sym) ->
          charge vcpu C.Monitor 200;
          match List.assoc_opt sym t.symbols with
          | None -> false
          | Some addr ->
              Bytes.set_int64_le text off (Int64.of_int addr);
              true)
        image.Guest_kernel.Kmodule.relocs
    in
    if not ok then begin
      t.stats.rejected <- t.stats.rejected + 1;
      Idcb.Resp_error "VeilS-KCI: relocation against unknown symbol"
    end
    else begin
      (* Copy text and data into the OS-provided frames. *)
      let write_span frames data =
        List.iteri
          (fun i frame ->
            let off = i * T.page_size in
            let n = min T.page_size (Bytes.length data - off) in
            if n > 0 then begin
              charge vcpu C.Copy (C.copy_cost n);
              P.write platform vcpu (T.gpa_of_gpfn frame) (Bytes.sub data off n)
            end)
          frames
      in
      write_span text_gpfns text;
      write_span data_gpfns image.Guest_kernel.Kmodule.data;
      (* RMP permission update requires a TLB shootdown + RMP-coherence
         flush across VCPUs before the text may execute *)
      charge vcpu C.Monitor (15_000 + (2_000 * List.length text_gpfns));
      (* Write-protect the prepared text (read + supervisor exec). *)
      List.iter
        (fun gpfn ->
          match Monitor.mon_rmpadjust t.mon vcpu ~gpfn ~target:Privdom.Unt ~perms:text_perms with
          | Ok () -> ()
          | Error e -> failwith ("VeilS-KCI text protect: " ^ e))
        text_gpfns;
      t.module_text <- text_gpfns @ t.module_text;
      Monitor.add_protected_frames t.mon ~owner:Privdom.Sec text_gpfns;
      t.stats.modules_loaded <- t.stats.modules_loaded + 1;
      Idcb.Resp_loaded
        {
          Guest_kernel.Kmodule.module_image = image;
          text_gpfns;
          data_gpfns;
          load_address = T.gpa_of_gpfn (List.hd text_gpfns);
          installed = true;
        }
    end
  end

let uninstall_module t vcpu (loaded : Guest_kernel.Kmodule.loaded) =
  charge vcpu C.Monitor (15_000 + (2_000 * List.length loaded.Guest_kernel.Kmodule.text_gpfns));
  (* Return the text frames to the OS: writable again, no exec needed. *)
  List.iter
    (fun gpfn ->
      match Monitor.mon_rmpadjust t.mon vcpu ~gpfn ~target:Privdom.Unt ~perms:Sevsnp.Perm.all with
      | Ok () -> ()
      | Error e -> failwith ("VeilS-KCI unprotect: " ^ e))
    loaded.Guest_kernel.Kmodule.text_gpfns;
  Monitor.remove_protected_frames t.mon loaded.Guest_kernel.Kmodule.text_gpfns;
  t.module_text <-
    List.filter (fun f -> not (List.mem f loaded.Guest_kernel.Kmodule.text_gpfns)) t.module_text;
  t.stats.modules_unloaded <- t.stats.modules_unloaded + 1;
  Idcb.Resp_ok

let handler t _mon vcpu (req : Idcb.request) =
  match req with
  | Idcb.R_module_load { image; text_gpfns; data_gpfns } ->
      Some (install_module t vcpu image text_gpfns data_gpfns)
  | Idcb.R_module_unload loaded -> Some (uninstall_module t vcpu loaded)
  | _ -> None

let install mon ~vendor_public ~symbols =
  let t =
    {
      mon;
      vendor_public;
      symbols;
      stats = { modules_loaded = 0; modules_unloaded = 0; rejected = 0 };
      activated = false;
      module_text = [];
    }
  in
  Monitor.register_service mon ~name:"veils-kci" ~target:Privdom.Sec (fun m vcpu req ->
      handler t m vcpu req);
  t
