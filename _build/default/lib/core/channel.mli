(** Remote-user secure channel (§5.1).

    Models the user side of Veil's attestation-rooted channel: verify
    a signed SEV-SNP report (launch measurement + requester VMPL +
    bound DH public value), derive a session key, and exchange
    sealed messages with VeilMon — e.g. to retrieve VeilS-LOG's
    hash-chained logs or an enclave measurement. *)

type t

val create :
  Veil_crypto.Rng.t ->
  platform_public:Veil_crypto.Bignum.t ->
  expected_launch:bytes option ->
  t
(** [expected_launch] is the known-good boot-image measurement; [None]
    accepts any (trust-on-first-use, used by tests). *)

val connect : t -> Monitor.t -> Sevsnp.Vcpu.t -> (unit, string) result
(** Run the attestation handshake: nonce, signed report from VMPL-0,
    launch-measurement check, DH key agreement. *)

val connected : t -> bool

val session_key : t -> bytes option

(* Sealed messages (shared by both endpoints) *)

val seal : key:bytes -> seq:int -> dir:int -> bytes -> bytes
(** ChaCha20 + HMAC-SHA256 envelope; [dir] separates the two
    directions' nonce spaces. *)

val open_ : key:bytes -> seq:int -> dir:int -> bytes -> (bytes, string) result

(* High-level user operations *)

val fetch_logs : t -> Slog.t -> Sevsnp.Vcpu.t -> (string list, string) result
(** Retrieve all protected log lines over the channel and verify the
    hash chain; does not clear the store. *)

val verify_enclave : t -> Encsvc.t -> enclave_id:int -> expected:bytes -> (bool, string) result
(** Compare an enclave's measurement (obtained over the channel)
    against a locally computed expectation. *)
