module T = Sevsnp.Types
module C = Sevsnp.Cycles
module P = Sevsnp.Platform

let n_pcrs = 8
let pcr_size = 32

type t = {
  mon : Monitor.t;
  storage_gpfn : T.gpfn;  (** one Dom_SEC frame holds all banks *)
  key : Veil_crypto.Schnorr.keypair;
  rng : Veil_crypto.Rng.t;
  mutable extends : int;
}

type quote = {
  q_pcrs : bytes array;
  q_nonce : bytes;
  q_signature : Veil_crypto.Schnorr.signature;
}

let pcr_gpa t i = T.gpa_of_gpfn t.storage_gpfn + (i * pcr_size)

(* Trusted-side accessors run at whatever domain the caller holds; the
   boot VCPU hops to Dom_SEC when called from below (like Slog). *)
let with_sec t f =
  let vcpu = Monitor.boot_vcpu t.mon in
  let here = Privdom.of_vmpl (Sevsnp.Vcpu.vmpl vcpu) in
  let need = not (Privdom.more_privileged here Privdom.Enc || Privdom.equal here Privdom.Sec) in
  if need then Monitor.domain_switch t.mon vcpu ~target:Privdom.Sec;
  let r = f vcpu in
  if need then Monitor.domain_switch t.mon vcpu ~target:here;
  r

let pcr_value t i =
  if i < 0 || i >= n_pcrs then invalid_arg "Vtpm.pcr_value";
  with_sec t (fun vcpu -> P.read (Monitor.platform t.mon) vcpu (pcr_gpa t i) pcr_size)

let extends_count t = t.extends

let quote_public_key t = t.key.Veil_crypto.Schnorr.public

let extend t vcpu ~pcr ~data =
  if pcr < 0 || pcr >= n_pcrs then Idcb.Resp_error "VeilS-TPM: no such PCR"
  else begin
    let platform = Monitor.platform t.mon in
    let current = P.read platform vcpu (pcr_gpa t pcr) pcr_size in
    Sevsnp.Vcpu.charge vcpu C.Crypto (C.hash_cost (pcr_size + Bytes.length data));
    let ctx = Veil_crypto.Sha256.init () in
    Veil_crypto.Sha256.update ctx current;
    Veil_crypto.Sha256.update ctx data;
    P.write platform vcpu (pcr_gpa t pcr) (Veil_crypto.Sha256.finalize ctx);
    t.extends <- t.extends + 1;
    Idcb.Resp_ok
  end

let quote_message pcrs nonce =
  let m = Veil_crypto.Measurement.create ~domain:"veils-tpm-quote" in
  Array.iteri (fun i p -> Veil_crypto.Measurement.add_bytes m ~label:(string_of_int i) p) pcrs;
  Veil_crypto.Measurement.add_bytes m ~label:"nonce" nonce;
  Veil_crypto.Measurement.digest m

let quote_to_bytes q =
  let buf = Buffer.create 512 in
  Array.iter (Buffer.add_bytes buf) q.q_pcrs;
  Buffer.add_uint16_be buf (Bytes.length q.q_nonce);
  Buffer.add_bytes buf q.q_nonce;
  Buffer.add_bytes buf (Veil_crypto.Schnorr.signature_to_bytes q.q_signature);
  Buffer.to_bytes buf

let quote_of_bytes b =
  try
    let pcrs = Array.init n_pcrs (fun i -> Bytes.sub b (i * pcr_size) pcr_size) in
    let off = n_pcrs * pcr_size in
    let nlen = Bytes.get_uint16_be b off in
    let nonce = Bytes.sub b (off + 2) nlen in
    let sig_bytes = Bytes.sub b (off + 2 + nlen) (Bytes.length b - off - 2 - nlen) in
    Option.map
      (fun s -> { q_pcrs = pcrs; q_nonce = nonce; q_signature = s })
      (Veil_crypto.Schnorr.signature_of_bytes sig_bytes)
  with Invalid_argument _ -> None

let verify_quote ~public q =
  Veil_crypto.Schnorr.verify ~public ~msg:(quote_message q.q_pcrs q.q_nonce) q.q_signature

let make_quote t vcpu ~nonce =
  let platform = Monitor.platform t.mon in
  let pcrs = Array.init n_pcrs (fun i -> P.read platform vcpu (pcr_gpa t i) pcr_size) in
  Sevsnp.Vcpu.charge vcpu C.Crypto (C.hash_cost (n_pcrs * pcr_size) + 60_000 (* sign *));
  let signature = Veil_crypto.Schnorr.sign t.rng ~secret:t.key.Veil_crypto.Schnorr.secret
      (quote_message pcrs nonce)
  in
  Idcb.Resp_quote (quote_to_bytes { q_pcrs = pcrs; q_nonce = nonce; q_signature = signature })

let expected_pcr ~events =
  List.fold_left
    (fun acc ev ->
      let ctx = Veil_crypto.Sha256.init () in
      Veil_crypto.Sha256.update ctx acc;
      Veil_crypto.Sha256.update ctx ev;
      Veil_crypto.Sha256.finalize ctx)
    (Bytes.make pcr_size '\000') events

let handler t _mon vcpu (req : Idcb.request) =
  match req with
  | Idcb.R_tpm_extend { pcr; data } -> Some (extend t vcpu ~pcr ~data)
  | Idcb.R_tpm_quote { nonce } -> Some (make_quote t vcpu ~nonce)
  | _ -> None

let install mon =
  let rng = Veil_crypto.Rng.split (Monitor.platform mon).P.rng in
  let t =
    {
      mon;
      storage_gpfn = Monitor.alloc_svc_frame mon;
      key = Veil_crypto.Schnorr.keygen rng;
      rng;
      extends = 0;
    }
  in
  Monitor.register_service mon ~name:"veils-tpm" ~target:Privdom.Sec (fun m vcpu req ->
      handler t m vcpu req);
  t
