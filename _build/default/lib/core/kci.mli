(** VeilS-KCI — kernel code integrity (§6.1).

    Enforces write-xor-supervisor-execute over kernel memory with
    RMPADJUST (so even a kernel that disables its own NX/SMEP cannot
    run injected code), and owns the TOCTOU-free module load path:
    signature verification, copy, relocation against a *protected*
    symbol table, and RMPADJUST write-protection of the installed
    text. *)

type t

type stats = { mutable modules_loaded : int; mutable modules_unloaded : int; mutable rejected : int }

val install :
  Monitor.t -> vendor_public:Veil_crypto.Bignum.t -> symbols:(string * int) list -> t
(** Register the service with VeilMon (dispatched at Dom_SEC).
    [symbols] becomes the protected relocation table. *)

val activate : t -> Sevsnp.Vcpu.t -> unit
(** Apply the W^X sweep to the kernel image: text becomes
    read+supervisor-execute (never writable), data loses supervisor
    execution — permanently, from Dom_UNT's point of view. *)

val active : t -> bool
val stats : t -> stats

val protected_module_frames : t -> Sevsnp.Types.gpfn list
(** Frames currently holding write-protected module text. *)
