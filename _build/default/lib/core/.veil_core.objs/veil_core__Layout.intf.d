lib/core/layout.mli: Format Sevsnp
