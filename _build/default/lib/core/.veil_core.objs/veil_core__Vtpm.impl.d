lib/core/vtpm.ml: Array Buffer Bytes Idcb List Monitor Option Privdom Sevsnp Veil_crypto
