lib/core/idcb.ml: Bytes Guest_kernel List Sevsnp String
