lib/core/veil.ml: Boot Channel Encsvc Idcb Kci Layout Migration Monitor Privdom Sevsnp Slog Veil_crypto Vtpm
