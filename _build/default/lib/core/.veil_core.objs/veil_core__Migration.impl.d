lib/core/migration.ml: Boot Buffer Bytes Char Encsvc Guest_kernel Idcb Int64 List Monitor Option Privdom Sevsnp Veil_crypto
