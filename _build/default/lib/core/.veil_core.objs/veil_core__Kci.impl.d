lib/core/kci.ml: Bytes Guest_kernel Idcb Int64 Layout List Monitor Privdom Sevsnp Veil_crypto
