lib/core/vtpm.mli: Monitor Veil_crypto
