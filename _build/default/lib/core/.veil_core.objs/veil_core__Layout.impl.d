lib/core/layout.ml: Format Sevsnp
