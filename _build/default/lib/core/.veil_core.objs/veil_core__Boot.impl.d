lib/core/boot.ml: Bytes Encsvc Guest_kernel Hashtbl Hypervisor Idcb Kci Layout List Monitor Privdom Sevsnp Slog Veil_crypto Vtpm
