lib/core/privdom.mli: Format Sevsnp
