lib/core/monitor.mli: Hypervisor Idcb Layout Privdom Sevsnp Veil_crypto
