lib/core/channel.mli: Encsvc Monitor Sevsnp Slog Veil_crypto
