lib/core/boot.mli: Encsvc Guest_kernel Hypervisor Kci Layout Monitor Sevsnp Slog Vtpm
