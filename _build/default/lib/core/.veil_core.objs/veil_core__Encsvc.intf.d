lib/core/encsvc.mli: Guest_kernel Monitor Sevsnp
