lib/core/encsvc.ml: Buffer Bytes Guest_kernel Hashtbl Idcb Int32 List Monitor Printf Privdom Sevsnp Veil_crypto
