lib/core/monitor.ml: Buffer Guest_kernel Hashtbl Hypervisor Idcb Layout List Printf Privdom Sevsnp Veil_crypto
