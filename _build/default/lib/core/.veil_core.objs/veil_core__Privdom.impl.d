lib/core/privdom.ml: Format Sevsnp
