lib/core/channel.ml: Buffer Bytes Char Encsvc Int64 Monitor Sevsnp Slog String Veil_crypto
