lib/core/slog.ml: Bytes Guest_kernel Idcb Int32 Layout List Monitor Privdom Sevsnp String Veil_crypto
