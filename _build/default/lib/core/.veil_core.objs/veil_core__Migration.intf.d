lib/core/migration.mli: Boot Encsvc Guest_kernel Veil_crypto
