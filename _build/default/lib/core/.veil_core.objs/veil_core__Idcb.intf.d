lib/core/idcb.mli: Guest_kernel Sevsnp
