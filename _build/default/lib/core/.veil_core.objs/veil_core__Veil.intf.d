lib/core/veil.mli: Boot Channel Encsvc Idcb Kci Layout Migration Monitor Privdom Sevsnp Slog Vtpm
