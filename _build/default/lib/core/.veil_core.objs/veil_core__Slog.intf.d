lib/core/slog.mli: Monitor
