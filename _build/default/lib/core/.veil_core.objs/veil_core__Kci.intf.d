lib/core/kci.mli: Monitor Sevsnp Veil_crypto
