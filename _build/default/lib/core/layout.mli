(** Guest-physical memory layout of a Veil CVM.

    Fixed at boot-image build time; VeilMon's protection sweep and the
    kernel's allocator both derive from it. *)

type region = { lo : Sevsnp.Types.gpfn; hi : Sevsnp.Types.gpfn }
(** Frames [lo, hi). *)

type t = {
  total_frames : int;
  mon_image : region;  (** VeilMon + services code/data (measured at launch) *)
  kernel_text : region;
  kernel_data : region;
  mon_heap : region;  (** Dom_MON private heap: VMSAs, cloned page tables *)
  svc_region : region;  (** Dom_SEC service heap *)
  log_region : region;  (** VeilS-LOG reserved append-only storage *)
  idcb_region : region;  (** per-VCPU inter-domain communication blocks *)
  kernel_free : region;  (** the OS frame allocator's pool *)
  vmsa_region : region;  (** top-of-memory frames for VMSAs *)
}

val standard : ?log_frames:int -> npages:int -> unit -> t
(** The default carve-up.  Needs [npages >= 1024]. *)

val region_size : region -> int
val in_region : region -> Sevsnp.Types.gpfn -> bool
val pp : Format.formatter -> t -> unit
