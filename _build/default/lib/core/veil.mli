(** Veil public facade.

    One import surface for downstream users:

    {[
      let sys = Veil_core.Veil.boot () in
      let report = Veil_core.Veil.attest sys ~nonce in
      ...
    ]}

    The submodule aliases re-export the full API; the helpers below
    cover the common paths (boot, attest, inspect). *)

module Privdom = Privdom
module Layout = Layout
module Idcb = Idcb
module Monitor = Monitor
module Kci = Kci
module Slog = Slog
module Encsvc = Encsvc
module Channel = Channel
module Vtpm = Vtpm
module Migration = Migration
module Boot = Boot

type system = Boot.veil_system

val boot : ?npages:int -> ?log_frames:int -> ?seed:int -> unit -> system
(** Boot a Veil CVM (monitor + services + kernel at Dom_UNT). *)

val boot_native : ?npages:int -> ?seed:int -> unit -> Boot.native_system
(** Baseline: the same kernel at VMPL-0 with no monitor. *)

val attest : system -> nonce:bytes -> Sevsnp.Attestation.report
(** Request a VMPL-0 attestation report binding VeilMon's DH key. *)

val connect_user : ?seed:int -> system -> (Channel.t, string) result
(** Create a remote user, verify the launch measurement, and complete
    the secure-channel handshake. *)

val protected_logs : system -> string list
(** Trusted-side view of VeilS-LOG's store. *)

val version : string
