(** Veil's dual-factor privilege domains (§5.1).

    A domain is a mode of execution formed by combining a VMPL with a
    traditional protection ring: Dom_MON (VMPL-0 + CPL-0) for VeilMon,
    Dom_SEC (VMPL-1 + CPL-0) for protected services, Dom_ENC (VMPL-2 +
    CPL-3) for enclaves, and Dom_UNT (VMPL-3) for the operating system
    and its processes. *)

type t = Mon | Sec | Enc | Unt

val all : t list

val vmpl : t -> Sevsnp.Types.vmpl
val cpl : t -> Sevsnp.Types.cpl
val of_vmpl : Sevsnp.Types.vmpl -> t

val more_privileged : t -> t -> bool
(** Strictly more privileged (lower VMPL). *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
