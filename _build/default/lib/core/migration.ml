module T = Sevsnp.Types
module P = Sevsnp.Platform
module C = Sevsnp.Cycles
module Ed = Guest_kernel.Enclave_desc

type sealed_state = { blob : bytes }

let magic = "VEILMIG1"

(* Hop the boot VCPU into Dom_SEC for trusted-side page access. *)
let with_sec (sys : Boot.veil_system) f =
  let vcpu = sys.Boot.vcpu in
  let here = Privdom.of_vmpl (Sevsnp.Vcpu.vmpl vcpu) in
  let need = not (Privdom.more_privileged here Privdom.Enc || Privdom.equal here Privdom.Sec) in
  if need then Monitor.domain_switch sys.Boot.mon vcpu ~target:Privdom.Sec;
  let r = f vcpu in
  if need then Monitor.domain_switch sys.Boot.mon vcpu ~target:here;
  r

let kind_code = function Ed.Code -> 0 | Ed.Data -> 1 | Ed.Stack -> 2 | Ed.Heap -> 3

let kind_of_code = function
  | 0 -> Some Ed.Code
  | 1 -> Some Ed.Data
  | 2 -> Some Ed.Stack
  | 3 -> Some Ed.Heap
  | _ -> None

let transport_nonce = Bytes.make 12 'M'

let seal ~key manifest =
  let ct = Veil_crypto.Chacha20.encrypt ~key ~nonce:transport_nonce manifest in
  let tag = Veil_crypto.Hmac.mac ~key ct in
  { blob = Bytes.cat tag ct }

let unseal ~key { blob } =
  if Bytes.length blob < 32 then Error "sealed state too short"
  else begin
    let tag = Bytes.sub blob 0 32 in
    let ct = Bytes.sub blob 32 (Bytes.length blob - 32) in
    if not (Veil_crypto.Hmac.verify ~key ~msg:ct ~tag) then
      Error "sealed state failed authentication (tampered in transit?)"
    else Ok (Veil_crypto.Chacha20.encrypt ~key ~nonce:transport_nonce ct)
  end

let export (sys : Boot.veil_system) enclave ~dest_public =
  if Encsvc.is_destroyed enclave then Error "enclave already destroyed"
  else begin
    let desc = Encsvc.desc enclave in
    let pages = desc.Ed.pages in
    (* every page must be resident: the OS pages everything in before
       asking for migration *)
    if List.exists (fun (p : Ed.page) -> Encsvc.resident_frame enclave p.Ed.page_va = None) pages
    then Error "enclave has evicted pages; page them in before export"
    else begin
      let key = Monitor.session_key_with sys.Boot.mon ~peer_public:dest_public in
      let manifest =
        with_sec sys (fun vcpu ->
            let buf = Buffer.create (4096 * List.length pages) in
            Buffer.add_string buf magic;
            Buffer.add_bytes buf (Encsvc.measurement enclave);
            Buffer.add_int64_le buf (Int64.of_int desc.Ed.base_va);
            Buffer.add_int64_le buf (Int64.of_int desc.Ed.entry_va);
            Buffer.add_uint16_be buf (List.length pages);
            List.iter
              (fun (p : Ed.page) ->
                let frame = Option.get (Encsvc.resident_frame enclave p.Ed.page_va) in
                Sevsnp.Vcpu.charge vcpu C.Crypto (C.cipher_cost T.page_size);
                Buffer.add_int64_le buf (Int64.of_int p.Ed.page_va);
                Buffer.add_uint8 buf (kind_code p.Ed.page_kind);
                Buffer.add_bytes buf (P.read sys.Boot.platform vcpu (T.gpa_of_gpfn frame) T.page_size))
              pages;
            Buffer.to_bytes buf)
      in
      let sealed = seal ~key manifest in
      (* the source instance never runs again: scrub + release *)
      (match Monitor.os_call sys.Boot.mon sys.Boot.vcpu (Idcb.R_enclave_destroy desc) with
      | Idcb.Resp_ok -> Ok sealed
      | Idcb.Resp_error e -> Error ("source teardown failed: " ^ e)
      | _ -> Error "source teardown failed")
    end
  end

let import (sys : Boot.veil_system) ~owner ~source_public sealed =
  let key = Monitor.session_key_with sys.Boot.mon ~peer_public:source_public in
  match unseal ~key sealed with
  | Error _ as e -> e
  | Ok manifest -> (
      try
        if Bytes.to_string (Bytes.sub manifest 0 8) <> magic then failwith "bad magic";
        let measurement = Bytes.sub manifest 8 32 in
        let _base_va = Int64.to_int (Bytes.get_int64_le manifest 40) in
        let _entry_va = Int64.to_int (Bytes.get_int64_le manifest 48) in
        let npages = Bytes.get_uint16_be manifest 56 in
        let off = ref 58 in
        let pages =
          List.init npages (fun _ ->
              let va = Int64.to_int (Bytes.get_int64_le manifest !off) in
              let kind =
                match kind_of_code (Bytes.get_uint8 manifest (!off + 8)) with
                | Some k -> k
                | None -> failwith "bad page kind"
              in
              let contents = Bytes.sub manifest (!off + 9) T.page_size in
              off := !off + 9 + T.page_size;
              (va, kind, contents))
        in
        let count k = List.length (List.filter (fun (_, kk, _) -> kk = k) pages) in
        let code_pages = count Ed.Code and heap = count Ed.Heap and stack = count Ed.Stack in
        if code_pages = 0 then failwith "manifest has no code pages";
        (* the OS lays out a fresh enclave of the same shape (the code
           bytes are placeholders; the trusted side installs the real
           contents below) *)
        let binary = Bytes.make (code_pages * T.page_size) '\000' in
        match
          Guest_kernel.Kernel.enclave_create sys.Boot.kernel owner ~binary ~heap_pages:heap
            ~stack_pages:stack
        with
        | Error e -> Error ("destination layout failed: " ^ Guest_kernel.Ktypes.errno_to_string e)
        | Ok desc -> (
            match Encsvc.find sys.Boot.enc desc.Ed.enclave_id with
            | None -> Error "destination enclave not registered"
            | Some enclave ->
                (* install the migrated contents from the trusted side *)
                with_sec sys (fun vcpu ->
                    List.iter
                      (fun (va, _, contents) ->
                        match Encsvc.resident_frame enclave va with
                        | Some frame ->
                            Sevsnp.Vcpu.charge vcpu C.Crypto (C.cipher_cost T.page_size);
                            Sevsnp.Vcpu.charge vcpu C.Copy (C.copy_cost T.page_size);
                            P.write sys.Boot.platform vcpu (T.gpa_of_gpfn frame) contents
                        | None -> failwith "destination page missing")
                      pages;
                    (* the migrated enclave keeps its original identity *)
                    Encsvc.set_measurement sys.Boot.enc enclave measurement);
                Ok enclave)
      with Failure e | Invalid_argument e -> Error ("malformed manifest: " ^ e))

let sealed_to_bytes { blob } = Bytes.copy blob

let sealed_of_bytes b = if Bytes.length b < 32 then None else Some { blob = Bytes.copy b }

let tamper_for_test { blob } =
  let b = Bytes.copy blob in
  let i = Bytes.length b - 7 in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x41));
  { blob = b }
