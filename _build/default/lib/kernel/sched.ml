type _ Effect.t += Yield : unit Effect.t | Block : (unit -> bool) -> unit Effect.t

type status =
  | Runnable of (unit, unit) Effect.Deep.continuation
  | Blocked of (unit -> bool) * (unit, unit) Effect.Deep.continuation
  | Fresh of (unit -> unit)

type task = { name : string; mutable status : status option (* None = finished *) }

type t = {
  mutable tasks : task list;
  on_context_switch : unit -> unit;
  mutable switches : int;
}

exception Deadlock of string list

let create ?(on_context_switch = fun () -> ()) () =
  { tasks = []; on_context_switch; switches = 0 }

let spawn t ~name body = t.tasks <- t.tasks @ [ { name; status = Some (Fresh body) } ]

let yield () = Effect.perform Yield

let block_until pred = if not (pred ()) then Effect.perform (Block pred)

let live t = List.length (List.filter (fun task -> task.status <> None) t.tasks)

let context_switches t = t.switches

(* Run one step of a task; its effects suspend it back into [status]. *)
let step t task =
  let handler =
    {
      Effect.Deep.retc = (fun () -> task.status <- None);
      exnc = (fun e -> raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Yield ->
              Some
                (fun (k : (a, unit) Effect.Deep.continuation) -> task.status <- Some (Runnable k))
          | Block pred ->
              Some
                (fun (k : (a, unit) Effect.Deep.continuation) ->
                  task.status <- Some (Blocked (pred, k)))
          | _ -> None);
    }
  in
  match task.status with
  | None -> ()
  | Some (Fresh body) ->
      t.switches <- t.switches + 1;
      t.on_context_switch ();
      Effect.Deep.match_with body () handler
  | Some (Runnable k) ->
      (* the fiber keeps its original deep handler: resume bare — a
         fresh wrapper's retc would clobber the status the original
         handler records at the next suspension *)
      t.switches <- t.switches + 1;
      t.on_context_switch ();
      task.status <- None (* replaced by the handler if it suspends *);
      Effect.Deep.continue k ()
  | Some (Blocked (pred, k)) ->
      if pred () then begin
        t.switches <- t.switches + 1;
        t.on_context_switch ();
        task.status <- None;
        Effect.Deep.continue k ()
      end

let runnable task =
  match task.status with
  | Some (Fresh _) | Some (Runnable _) -> true
  | Some (Blocked (pred, _)) -> pred ()
  | None -> false

let run t =
  let progress = ref true in
  while live t > 0 do
    if not !progress then
      raise
        (Deadlock
           (List.filter_map (fun task -> if task.status <> None then Some task.name else None) t.tasks));
    progress := false;
    List.iter
      (fun task ->
        if runnable task then begin
          progress := true;
          step t task
        end)
      t.tasks
  done
