(** Cooperative in-guest scheduler.

    Guest "threads of execution" (process bodies) run as OCaml-5
    effect-based coroutines: they [yield] at syscall boundaries or
    [block_until] a condition (data on a socket, a pending
    connection), and the scheduler round-robins runnable work — so a
    server and its load generator execute as genuinely interleaved
    processes instead of hand-written callback turns.

    The scheduler is kernel policy, not hardware: it consumes no
    simulated cycles itself beyond the context-switch charge the
    caller supplies. *)

type t

val create : ?on_context_switch:(unit -> unit) -> unit -> t
(** [on_context_switch] is invoked at every switch between coroutines
    (charge scheduling costs there). *)

val spawn : t -> name:string -> (unit -> unit) -> unit
(** Register a coroutine; it starts on the next {!run}. *)

exception Deadlock of string list
(** Raised by {!run} when every live coroutine is blocked (the list
    names them). *)

val run : t -> unit
(** Round-robin until every coroutine has finished. *)

(* Called from inside coroutines: *)

val yield : unit -> unit
(** Give up the processor voluntarily. *)

val block_until : (unit -> bool) -> unit
(** Suspend until the predicate holds (re-checked each round). *)

val live : t -> int
val context_switches : t -> int
