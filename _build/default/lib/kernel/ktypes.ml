type errno =
  | ENOENT
  | EBADF
  | EACCES
  | EEXIST
  | ENOTDIR
  | EISDIR
  | EINVAL
  | ENFILE
  | ENOSPC
  | ESPIPE
  | EPIPE
  | EAGAIN
  | ENOTCONN
  | EADDRINUSE
  | ECONNREFUSED
  | ENOMEM
  | ENOSYS
  | EPERM
  | EFAULT

let errno_to_string = function
  | ENOENT -> "ENOENT"
  | EBADF -> "EBADF"
  | EACCES -> "EACCES"
  | EEXIST -> "EEXIST"
  | ENOTDIR -> "ENOTDIR"
  | EISDIR -> "EISDIR"
  | EINVAL -> "EINVAL"
  | ENFILE -> "ENFILE"
  | ENOSPC -> "ENOSPC"
  | ESPIPE -> "ESPIPE"
  | EPIPE -> "EPIPE"
  | EAGAIN -> "EAGAIN"
  | ENOTCONN -> "ENOTCONN"
  | EADDRINUSE -> "EADDRINUSE"
  | ECONNREFUSED -> "ECONNREFUSED"
  | ENOMEM -> "ENOMEM"
  | ENOSYS -> "ENOSYS"
  | EPERM -> "EPERM"
  | EFAULT -> "EFAULT"

let errno_code = function
  | EPERM -> 1
  | ENOENT -> 2
  | EBADF -> 9
  | EAGAIN -> 11
  | ENOMEM -> 12
  | EACCES -> 13
  | EFAULT -> 14
  | EEXIST -> 17
  | ENOTDIR -> 20
  | EISDIR -> 21
  | EINVAL -> 22
  | ENFILE -> 23
  | ESPIPE -> 29
  | EPIPE -> 32
  | EADDRINUSE -> 98
  | ECONNREFUSED -> 111
  | ENOTCONN -> 107
  | ENOSPC -> 28
  | ENOSYS -> 38

type open_flag = O_RDONLY | O_WRONLY | O_RDWR | O_CREAT | O_TRUNC | O_APPEND | O_EXCL

type prot = { pr : bool; pw : bool; px : bool }

let prot_none = { pr = false; pw = false; px = false }
let prot_rw = { pr = true; pw = true; px = false }
let prot_r = { pr = true; pw = false; px = false }
let prot_rx = { pr = true; pw = false; px = true }

type whence = SEEK_SET | SEEK_CUR | SEEK_END

type stat = { st_size : int; st_is_dir : bool; st_mode : int; st_ino : int }

type arg = Int of int | Str of string | Buf of bytes | Ptr of int

type ret = RInt of int | RBuf of bytes | RStat of stat | RErr of errno

let ret_errno = function RErr e -> Some e | _ -> None

let ret_int = function
  | RInt n -> Ok n
  | RErr e -> Error e
  | RBuf _ | RStat _ -> Error EINVAL

let pp_arg fmt = function
  | Int n -> Format.fprintf fmt "%d" n
  | Str s -> Format.fprintf fmt "%S" s
  | Buf b -> Format.fprintf fmt "<buf:%d>" (Bytes.length b)
  | Ptr p -> Format.fprintf fmt "0x%x" p

let pp_ret fmt = function
  | RInt n -> Format.fprintf fmt "%d" n
  | RBuf b -> Format.fprintf fmt "<buf:%d>" (Bytes.length b)
  | RStat s -> Format.fprintf fmt "<stat:%d>" s.st_size
  | RErr e -> Format.fprintf fmt "-%s" (errno_to_string e)
