type t = {
  h_pvalidate : gpfn:Sevsnp.Types.gpfn -> to_private:bool -> (unit, string) result;
  h_vcpu_boot : vcpu_id:int -> (unit, string) result;
  h_module_load : Kmodule.image -> (Kmodule.loaded, string) result;
  h_module_unload : Kmodule.loaded -> (unit, string) result;
  h_audit : Audit.record -> unit;
  h_enclave_finalize : Enclave_desc.t -> (bytes, string) result;
  h_enclave_destroy : Enclave_desc.t -> (unit, string) result;
  h_pt_sync : pid:int -> va:Sevsnp.Types.va -> npages:int -> prot:Ktypes.prot -> unit;
}

let none =
  {
    h_pvalidate = (fun ~gpfn:_ ~to_private:_ -> Error "no monitor installed");
    h_vcpu_boot = (fun ~vcpu_id:_ -> Error "no monitor installed");
    h_module_load = (fun _ -> Error "no monitor installed");
    h_module_unload = (fun _ -> Error "no monitor installed");
    h_audit = (fun _ -> ());
    h_enclave_finalize = (fun _ -> Error "no monitor installed");
    h_enclave_destroy = (fun _ -> Error "no monitor installed");
    h_pt_sync = (fun ~pid:_ ~va:_ ~npages:_ ~prot:_ -> ());
  }
