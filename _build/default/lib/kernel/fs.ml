type node_kind = Regular | Directory | Device of string

type node = {
  ino : int;
  mutable kind : kind_impl;
  mutable mode : int;
}

and kind_impl =
  | KFile of file
  | KDir of (string, node) Hashtbl.t
  | KDev of string
  | KSymlink of string

and file = { mutable data : bytes; mutable size : int }

type t = {
  root : node;
  rng : Veil_crypto.Rng.t;
  console : Buffer.t;
  mutable next_ino : int;
}

let fresh_ino t =
  let i = t.next_ino in
  t.next_ino <- i + 1;
  i

let new_dir t = { ino = fresh_ino t; kind = KDir (Hashtbl.create 8); mode = 0o755 }
let new_file t ~mode = { ino = fresh_ino t; kind = KFile { data = Bytes.create 64; size = 0 }; mode }

let split_path path =
  String.split_on_char '/' path |> List.filter (fun s -> s <> "" && s <> ".")

(* Resolve to a node, following symlinks a bounded number of times. *)
let rec resolve ?(depth = 0) t node components =
  if depth > 8 then Error Ktypes.ENOENT
  else begin
    match components with
    | [] -> Ok node
    | name :: rest -> (
        match node.kind with
        | KDir entries -> (
            match Hashtbl.find_opt entries name with
            | None -> Error Ktypes.ENOENT
            | Some child -> (
                match child.kind with
                | KSymlink target -> resolve ~depth:(depth + 1) t t.root (split_path target @ rest)
                | _ -> resolve ~depth t child rest))
        | KFile _ | KDev _ | KSymlink _ -> Error Ktypes.ENOTDIR)
  end

let lookup t path = resolve t t.root (split_path path)

let lookup_parent t path =
  match List.rev (split_path path) with
  | [] -> Error Ktypes.EINVAL
  | name :: rev_parents -> (
      match resolve t t.root (List.rev rev_parents) with
      | Error e -> Error e
      | Ok parent -> (
          match parent.kind with
          | KDir entries -> Ok (parent, entries, name)
          | _ -> Error Ktypes.ENOTDIR))

let create rng =
  let t =
    {
      root = { ino = 1; kind = KDir (Hashtbl.create 16); mode = 0o755 };
      rng;
      console = Buffer.create 256;
      next_ino = 2;
    }
  in
  let add_dir path =
    match lookup_parent t path with
    | Ok (_, entries, name) -> Hashtbl.replace entries name (new_dir t)
    | Error _ -> assert false
  in
  add_dir "/tmp";
  add_dir "/dev";
  add_dir "/etc";
  add_dir "/var";
  add_dir "/var/log";
  add_dir "/srv";
  let add_dev path which =
    match lookup_parent t path with
    | Ok (_, entries, name) -> Hashtbl.replace entries name { ino = fresh_ino t; kind = KDev which; mode = 0o666 }
    | Error _ -> assert false
  in
  add_dev "/dev/null" "null";
  add_dev "/dev/urandom" "urandom";
  add_dev "/dev/console" "console";
  t

let console_output t = Buffer.contents t.console

let mkdir t path =
  match lookup_parent t path with
  | Error e -> Error e
  | Ok (_, entries, name) ->
      if Hashtbl.mem entries name then Error Ktypes.EEXIST
      else begin
        Hashtbl.replace entries name (new_dir t);
        Ok ()
      end

let rmdir t path =
  match lookup_parent t path with
  | Error e -> Error e
  | Ok (_, entries, name) -> (
      match Hashtbl.find_opt entries name with
      | None -> Error Ktypes.ENOENT
      | Some { kind = KDir sub; _ } ->
          if Hashtbl.length sub > 0 then Error Ktypes.EINVAL
          else begin
            Hashtbl.remove entries name;
            Ok ()
          end
      | Some _ -> Error Ktypes.ENOTDIR)

let create_file t path ~mode =
  match lookup_parent t path with
  | Error e -> Error e
  | Ok (_, entries, name) ->
      if Hashtbl.mem entries name then Error Ktypes.EEXIST
      else begin
        Hashtbl.replace entries name (new_file t ~mode);
        Ok ()
      end

let unlink t path =
  match lookup_parent t path with
  | Error e -> Error e
  | Ok (_, entries, name) -> (
      match Hashtbl.find_opt entries name with
      | None -> Error Ktypes.ENOENT
      | Some { kind = KDir _; _ } -> Error Ktypes.EISDIR
      | Some _ ->
          Hashtbl.remove entries name;
          Ok ())

let rename t src dst =
  match (lookup_parent t src, lookup_parent t dst) with
  | Error e, _ | _, Error e -> Error e
  | Ok (_, src_entries, src_name), Ok (_, dst_entries, dst_name) -> (
      match Hashtbl.find_opt src_entries src_name with
      | None -> Error Ktypes.ENOENT
      | Some node ->
          Hashtbl.remove src_entries src_name;
          Hashtbl.replace dst_entries dst_name node;
          Ok ())

let link t existing newpath =
  match (lookup t existing, lookup_parent t newpath) with
  | Error e, _ | _, Error e -> Error e
  | Ok node, Ok (_, entries, name) -> (
      match node.kind with
      | KDir _ -> Error Ktypes.EISDIR
      | _ ->
          if Hashtbl.mem entries name then Error Ktypes.EEXIST
          else begin
            Hashtbl.replace entries name node;
            Ok ()
          end)

let symlink t ~target ~linkpath =
  match lookup_parent t linkpath with
  | Error e -> Error e
  | Ok (_, entries, name) ->
      if Hashtbl.mem entries name then Error Ktypes.EEXIST
      else begin
        Hashtbl.replace entries name { ino = fresh_ino t; kind = KSymlink target; mode = 0o777 };
        Ok ()
      end

let readlink t path =
  (* Look up the link node itself (no final deref). *)
  match lookup_parent t path with
  | Error e -> Error e
  | Ok (_, entries, name) -> (
      match Hashtbl.find_opt entries name with
      | Some { kind = KSymlink target; _ } -> Ok target
      | Some _ -> Error Ktypes.EINVAL
      | None -> Error Ktypes.ENOENT)

let exists t path = match lookup t path with Ok _ -> true | Error _ -> false

let kind_of t path =
  match lookup t path with
  | Error _ -> None
  | Ok n -> (
      match n.kind with
      | KFile _ -> Some Regular
      | KDir _ -> Some Directory
      | KDev d -> Some (Device d)
      | KSymlink _ -> Some Regular)

let stat t path =
  match lookup t path with
  | Error e -> Error e
  | Ok n ->
      let size, is_dir =
        match n.kind with
        | KFile f -> (f.size, false)
        | KDir entries -> (Hashtbl.length entries, true)
        | KDev _ | KSymlink _ -> (0, false)
      in
      Ok { Ktypes.st_size = size; st_is_dir = is_dir; st_mode = n.mode; st_ino = n.ino }

let chmod t path mode =
  match lookup t path with
  | Error e -> Error e
  | Ok n ->
      n.mode <- mode land 0o7777;
      Ok ()

let with_file t path f =
  match lookup t path with
  | Error e -> Error e
  | Ok n -> (
      match n.kind with
      | KFile file -> f file
      | KDir _ -> Error Ktypes.EISDIR
      | KDev _ | KSymlink _ -> Error Ktypes.EINVAL)

let truncate t path len =
  if len < 0 then Error Ktypes.EINVAL
  else
    with_file t path (fun f ->
        if len > f.size then begin
          if len > Bytes.length f.data then begin
            let nd = Bytes.make (max len (2 * Bytes.length f.data)) '\000' in
            Bytes.blit f.data 0 nd 0 f.size;
            f.data <- nd
          end
          else Bytes.fill f.data f.size (len - f.size) '\000'
        end;
        f.size <- len;
        Ok ())

let readdir t path =
  match lookup t path with
  | Error e -> Error e
  | Ok n -> (
      match n.kind with
      | KDir entries -> Ok (Hashtbl.fold (fun k _ acc -> k :: acc) entries [] |> List.sort String.compare)
      | _ -> Error Ktypes.ENOTDIR)

let read_at t path ~pos ~len =
  if pos < 0 || len < 0 then Error Ktypes.EINVAL
  else begin
    match lookup t path with
    | Error e -> Error e
    | Ok n -> (
        match n.kind with
        | KDev "null" -> Ok Bytes.empty
        | KDev "urandom" -> Ok (Veil_crypto.Rng.bytes t.rng len)
        | KDev "console" -> Ok Bytes.empty
        | KDev _ -> Error Ktypes.EINVAL
        | KDir _ -> Error Ktypes.EISDIR
        | KSymlink _ -> Error Ktypes.EINVAL
        | KFile f ->
            if pos >= f.size then Ok Bytes.empty
            else Ok (Bytes.sub f.data pos (min len (f.size - pos))))
  end

let write_at t path ~pos data =
  let len = Bytes.length data in
  if pos < 0 then Error Ktypes.EINVAL
  else begin
    match lookup t path with
    | Error e -> Error e
    | Ok n -> (
        match n.kind with
        | KDev "null" -> Ok len
        | KDev "console" ->
            Buffer.add_bytes t.console data;
            Ok len
        | KDev "urandom" -> Ok len
        | KDev _ -> Error Ktypes.EINVAL
        | KDir _ -> Error Ktypes.EISDIR
        | KSymlink _ -> Error Ktypes.EINVAL
        | KFile f ->
            let needed = pos + len in
            if needed > Bytes.length f.data then begin
              let nd = Bytes.make (max needed (2 * Bytes.length f.data)) '\000' in
              Bytes.blit f.data 0 nd 0 f.size;
              f.data <- nd
            end;
            if pos > f.size then Bytes.fill f.data f.size (pos - f.size) '\000';
            Bytes.blit data 0 f.data pos len;
            f.size <- max f.size needed;
            Ok len)
  end

let size_of t path =
  match stat t path with Ok s -> Ok s.Ktypes.st_size | Error e -> Error e
