(** System call numbers and names.

    The 96 calls the paper's SDK prototype supports (§7), with their
    Linux x86-64 numbers — the common vocabulary between the kernel's
    dispatcher, the kaudit rule engine, and the enclave SDK's
    call/type specifications. *)

type t =
  | Read | Write | Open | Close | Stat | Fstat | Lstat | Poll | Lseek
  | Mmap | Mprotect | Munmap | Brk | Rt_sigaction | Rt_sigprocmask | Ioctl
  | Pread64 | Pwrite64 | Readv | Writev | Access | Pipe | Select
  | Sched_yield | Dup | Dup2 | Nanosleep | Getpid | Sendfile
  | Socket | Connect | Accept | Sendto | Recvfrom | Sendmsg | Recvmsg
  | Shutdown | Bind | Listen | Getsockname | Getpeername | Socketpair
  | Setsockopt | Getsockopt | Clone | Fork | Vfork | Execve | Exit
  | Wait4 | Kill | Uname | Fcntl | Fsync | Truncate | Ftruncate
  | Getdents | Getcwd | Chdir | Rename | Mkdir | Rmdir | Creat | Link
  | Unlink | Symlink | Readlink | Chmod | Fchmod | Chown | Umask
  | Gettimeofday | Getuid | Getgid | Setuid | Setgid
  | Geteuid | Getegid | Getppid | Setreuid | Setresuid | Mknod | Statfs
  | Futex | Clock_gettime | Exit_group | Openat | Mkdirat
  | Mknodat | Unlinkat | Renameat | Splice | Accept4 | Dup3 | Pipe2
  | Getrandom

val all : t list
(** All 96 supported calls. *)

val count : int

val number : t -> int
(** Linux x86-64 syscall number. *)

val to_string : t -> string
val of_string : string -> t option

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val audit_default_ruleset : t list
(** The prior-work forensic ruleset the paper's §9.2 CS3 footnote
    lists (file creation, network access, process execution calls). *)
