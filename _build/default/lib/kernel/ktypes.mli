(** Common guest-kernel types: errors, flags, argument ABI. *)

type errno =
  | ENOENT
  | EBADF
  | EACCES
  | EEXIST
  | ENOTDIR
  | EISDIR
  | EINVAL
  | ENFILE
  | ENOSPC
  | ESPIPE
  | EPIPE
  | EAGAIN
  | ENOTCONN
  | EADDRINUSE
  | ECONNREFUSED
  | ENOMEM
  | ENOSYS
  | EPERM
  | EFAULT

val errno_to_string : errno -> string
val errno_code : errno -> int

type open_flag = O_RDONLY | O_WRONLY | O_RDWR | O_CREAT | O_TRUNC | O_APPEND | O_EXCL

type prot = { pr : bool; pw : bool; px : bool }

val prot_none : prot
val prot_rw : prot
val prot_r : prot
val prot_rx : prot

type whence = SEEK_SET | SEEK_CUR | SEEK_END

type stat = { st_size : int; st_is_dir : bool; st_mode : int; st_ino : int }

(** Uniform syscall argument value, the shape the audit layer records
    and the enclave SDK's sanitizer deep-copies. *)
type arg =
  | Int of int
  | Str of string
  | Buf of bytes
  | Ptr of int  (** raw user pointer (checked by IAGO sanitisation) *)

type ret = RInt of int | RBuf of bytes | RStat of stat | RErr of errno

val ret_errno : ret -> errno option
val ret_int : ret -> (int, errno) result
(** [Error EINVAL] when the return is not an int shape. *)

val pp_arg : Format.formatter -> arg -> unit
val pp_ret : Format.formatter -> ret -> unit
