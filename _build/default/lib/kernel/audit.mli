(** Kaudit-style system auditing.

    Mirrors the paper's modified Linux kaudit (§9.2 CS3): records are
    kept *in memory* (the inefficient auditd user-space writer is
    bypassed), rules select which syscalls are logged, and a hook at
    [audit_log_end] — {!set_protect_hook} — lets VeilS-LOG capture
    each entry *before* the event executes (execute-ahead, §6.3). *)

type record = {
  seq : int;
  cycles : int;  (** guest TSC at emission *)
  sys : Sysno.t;
  pid : int;
  detail : string;  (** auditd-style key=value summary *)
}

val to_line : record -> string

type t

val create : unit -> t

val set_rules : t -> Sysno.t list -> unit
val clear_rules : t -> unit
val matches : t -> Sysno.t -> bool

val set_protect_hook : t -> (record -> unit) option -> unit
(** VeilS-LOG's execute-ahead capture; runs synchronously in
    {!emit} before the record lands in the in-kernel buffer. *)

val emit : t -> cycles:int -> sys:Sysno.t -> pid:int -> detail:string -> record option
(** Builds + stores a record when a rule matches; [None] otherwise.
    The caller charges the formatting cost. *)

val records : t -> record list
(** Oldest first. *)

val count : t -> int

val tamper : t -> seq:int -> detail:string -> bool
(** Overwrite a stored record in the (unprotected!) in-kernel buffer —
    the attack VeilS-LOG exists to defeat.  True when a record with
    [seq] existed. *)
