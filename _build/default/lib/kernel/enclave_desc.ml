type page_kind = Code | Data | Stack | Heap

type page = { page_va : Sevsnp.Types.va; page_gpfn : Sevsnp.Types.gpfn; page_kind : page_kind }

type t = {
  enclave_id : int;
  owner_pid : int;
  base_va : Sevsnp.Types.va;
  entry_va : Sevsnp.Types.va;
  pages : page list;
  ghcb_gpfn : Sevsnp.Types.gpfn;
  ghcb_va : Sevsnp.Types.va;
  shared : (Sevsnp.Types.va * Sevsnp.Types.gpfn) list;
  mutable finalized : bool;
  mutable measurement : bytes option;
}

let prot_of_kind = function
  | Code -> Ktypes.prot_rx
  | Data | Stack | Heap -> Ktypes.prot_rw

let kind_to_string = function Code -> "code" | Data -> "data" | Stack -> "stack" | Heap -> "heap"

let npages t = List.length t.pages

let page_at t va =
  List.find_opt (fun p -> p.page_va = va land lnot (Sevsnp.Types.page_size - 1)) t.pages

let frames t = List.map (fun p -> p.page_gpfn) t.pages
