(** Open file descriptions.

    An [Fd.t] is the kernel's open-file-description object; a process
    fd table maps small integers to these, and [dup] aliases share the
    same description (and hence file position), as on Linux. *)

type pipe = { pbuf : Buffer.t; mutable readers : int; mutable writers : int }

type kind =
  | File of file_state
  | Sock of Net.endpoint
  | Pipe_r of pipe
  | Pipe_w of pipe
  | Veil_dev  (** the /dev/veil enclave control node (§7's kernel module) *)

and file_state = {
  path : string;
  mutable pos : int;
  readable : bool;
  writable : bool;
  append : bool;
}

type t = { kind : kind }

val mk_file : path:string -> readable:bool -> writable:bool -> append:bool -> t
val mk_sock : Net.endpoint -> t
val mk_pipe : unit -> t * t
(** (read end, write end) sharing one buffer. *)

val mk_veil_dev : unit -> t
