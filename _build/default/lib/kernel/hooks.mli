(** Kernel → Veil delegation and service hooks.

    The paper's ~560-line kernel patch boils down to these call-outs:
    architecturally-restricted work delegated to VeilMon (§5.3), the
    kaudit hook into VeilS-LOG, module load/unload through VeilS-KCI,
    and enclave lifecycle calls into VeilS-ENC.  A native (non-Veil)
    kernel runs with no hooks installed and performs the VMPL-0
    operations itself. *)

type t = {
  h_pvalidate : gpfn:Sevsnp.Types.gpfn -> to_private:bool -> (unit, string) result;
      (** page-state change delegation: VeilMon checks the frame is not
          a trusted region, then executes PVALIDATE *)
  h_vcpu_boot : vcpu_id:int -> (unit, string) result;
      (** VCPU boot/hotplug delegation: VeilMon creates the VMSA(s) *)
  h_module_load : Kmodule.image -> (Kmodule.loaded, string) result;
      (** VeilS-KCI: verify signature, copy, relocate, write-protect *)
  h_module_unload : Kmodule.loaded -> (unit, string) result;
  h_audit : Audit.record -> unit;
      (** VeilS-LOG execute-ahead capture (called from kaudit's emit) *)
  h_enclave_finalize : Enclave_desc.t -> (bytes, string) result;
      (** VeilS-ENC: protect + measure; returns the measurement *)
  h_enclave_destroy : Enclave_desc.t -> (unit, string) result;
  h_pt_sync : pid:int -> va:Sevsnp.Types.va -> npages:int -> prot:Ktypes.prot -> unit;
      (** §6.2: non-enclave permission changes must be synchronized
          into the enclave's protected page tables *)
}

val none : t
(** All hooks are identity/no-op failures — used by the native kernel,
    which must never actually call the delegating ones. *)
