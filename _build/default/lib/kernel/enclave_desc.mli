(** Kernel-side enclave layout descriptor.

    The OS lays out an enclave region inside a process's address space
    (§6.2: copy the self-contained binary, relocate, set up stack and
    heap, allocate a user-mapped GHCB) and then hands this descriptor
    to VeilS-ENC for finalization.  Everything here is *untrusted*
    input to the service, which re-derives and verifies what it needs. *)

type page_kind = Code | Data | Stack | Heap

type page = { page_va : Sevsnp.Types.va; page_gpfn : Sevsnp.Types.gpfn; page_kind : page_kind }

type t = {
  enclave_id : int;
  owner_pid : int;
  base_va : Sevsnp.Types.va;
  entry_va : Sevsnp.Types.va;
  pages : page list;  (** sorted by [page_va] *)
  ghcb_gpfn : Sevsnp.Types.gpfn;  (** per-thread user-mapped GHCB *)
  ghcb_va : Sevsnp.Types.va;
  shared : (Sevsnp.Types.va * Sevsnp.Types.gpfn) list;
      (** the untrusted in-process ocall arena: accessible to both the
          enclave (Dom_ENC) and the application/OS (Dom_UNT) *)
  mutable finalized : bool;
  mutable measurement : bytes option;  (** set by VeilS-ENC *)
}

val prot_of_kind : page_kind -> Ktypes.prot
val kind_to_string : page_kind -> string

val npages : t -> int
val page_at : t -> Sevsnp.Types.va -> page option
val frames : t -> Sevsnp.Types.gpfn list
