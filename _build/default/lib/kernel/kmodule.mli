(** Loadable kernel modules.

    A module image carries text, data, a relocation list (offsets into
    text that must be patched with kernel symbol addresses) and a
    vendor signature over all of it.  Loading is performed either by
    the native kernel or — under VeilS-KCI — by the protected service,
    which re-verifies the signature, relocates against its *protected*
    symbol table and write-protects the installed text with RMPADJUST
    (§6.1's TOCTOU-free path). *)

type image = {
  name : string;
  text : bytes;
  data : bytes;
  relocs : (int * string) list;  (** text offset -> symbol name *)
  mutable signature : bytes option;
}

val build :
  Veil_crypto.Rng.t -> name:string -> text_size:int -> data_size:int -> symbols:string list -> image
(** Synthesize a module image with one relocation per listed symbol at
    deterministic offsets. *)

val image_digest : image -> bytes
(** SHA-256 over name, text, data and relocations — the signed message. *)

val sign : Veil_crypto.Rng.t -> vendor_secret:Veil_crypto.Bignum.t -> image -> unit
val verify : vendor_public:Veil_crypto.Bignum.t -> image -> bool

type loaded = {
  module_image : image;
  text_gpfns : Sevsnp.Types.gpfn list;
  data_gpfns : Sevsnp.Types.gpfn list;
  load_address : int;
  mutable installed : bool;
}

val binary_size : image -> int
(** On-disk size of the image (text + data + relocation table). *)

val installed_size : loaded -> int
(** In-memory footprint in bytes (whole pages). *)
