type t =
  | Read | Write | Open | Close | Stat | Fstat | Lstat | Poll | Lseek
  | Mmap | Mprotect | Munmap | Brk | Rt_sigaction | Rt_sigprocmask | Ioctl
  | Pread64 | Pwrite64 | Readv | Writev | Access | Pipe | Select
  | Sched_yield | Dup | Dup2 | Nanosleep | Getpid | Sendfile
  | Socket | Connect | Accept | Sendto | Recvfrom | Sendmsg | Recvmsg
  | Shutdown | Bind | Listen | Getsockname | Getpeername | Socketpair
  | Setsockopt | Getsockopt | Clone | Fork | Vfork | Execve | Exit
  | Wait4 | Kill | Uname | Fcntl | Fsync | Truncate | Ftruncate
  | Getdents | Getcwd | Chdir | Rename | Mkdir | Rmdir | Creat | Link
  | Unlink | Symlink | Readlink | Chmod | Fchmod | Chown | Umask
  | Gettimeofday | Getuid | Getgid | Setuid | Setgid
  | Geteuid | Getegid | Getppid | Setreuid | Setresuid | Mknod | Statfs
  | Futex | Clock_gettime | Exit_group | Openat | Mkdirat
  | Mknodat | Unlinkat | Renameat | Splice | Accept4 | Dup3 | Pipe2
  | Getrandom

let table =
  [
    (Read, 0, "read"); (Write, 1, "write"); (Open, 2, "open"); (Close, 3, "close");
    (Stat, 4, "stat"); (Fstat, 5, "fstat"); (Lstat, 6, "lstat"); (Poll, 7, "poll");
    (Lseek, 8, "lseek"); (Mmap, 9, "mmap"); (Mprotect, 10, "mprotect"); (Munmap, 11, "munmap");
    (Brk, 12, "brk"); (Rt_sigaction, 13, "rt_sigaction"); (Rt_sigprocmask, 14, "rt_sigprocmask");
    (Ioctl, 16, "ioctl"); (Pread64, 17, "pread64"); (Pwrite64, 18, "pwrite64");
    (Readv, 19, "readv"); (Writev, 20, "writev"); (Access, 21, "access"); (Pipe, 22, "pipe");
    (Select, 23, "select"); (Sched_yield, 24, "sched_yield");
    (Dup, 32, "dup"); (Dup2, 33, "dup2"); (Nanosleep, 35, "nanosleep"); (Getpid, 39, "getpid");
    (Sendfile, 40, "sendfile"); (Socket, 41, "socket"); (Connect, 42, "connect");
    (Accept, 43, "accept"); (Sendto, 44, "sendto"); (Recvfrom, 45, "recvfrom");
    (Sendmsg, 46, "sendmsg"); (Recvmsg, 47, "recvmsg"); (Shutdown, 48, "shutdown");
    (Bind, 49, "bind"); (Listen, 50, "listen"); (Getsockname, 51, "getsockname");
    (Getpeername, 52, "getpeername"); (Socketpair, 53, "socketpair");
    (Setsockopt, 54, "setsockopt"); (Getsockopt, 55, "getsockopt"); (Clone, 56, "clone");
    (Fork, 57, "fork"); (Vfork, 58, "vfork"); (Execve, 59, "execve"); (Exit, 60, "exit");
    (Wait4, 61, "wait4"); (Kill, 62, "kill"); (Uname, 63, "uname"); (Fcntl, 72, "fcntl");
    (Fsync, 74, "fsync"); (Truncate, 76, "truncate");
    (Ftruncate, 77, "ftruncate"); (Getdents, 78, "getdents"); (Getcwd, 79, "getcwd");
    (Chdir, 80, "chdir"); (Rename, 82, "rename"); (Mkdir, 83, "mkdir"); (Rmdir, 84, "rmdir");
    (Creat, 85, "creat"); (Link, 86, "link"); (Unlink, 87, "unlink"); (Symlink, 88, "symlink");
    (Readlink, 89, "readlink"); (Chmod, 90, "chmod"); (Fchmod, 91, "fchmod");
    (Chown, 92, "chown"); (Umask, 95, "umask"); (Gettimeofday, 96, "gettimeofday");
    (Getuid, 102, "getuid"); (Getgid, 104, "getgid");
    (Setuid, 105, "setuid"); (Setgid, 106, "setgid"); (Geteuid, 107, "geteuid");
    (Getegid, 108, "getegid"); (Getppid, 110, "getppid"); (Setreuid, 113, "setreuid");
    (Setresuid, 117, "setresuid"); (Mknod, 133, "mknod"); (Statfs, 137, "statfs");
    (Futex, 202, "futex"); (Clock_gettime, 228, "clock_gettime");
    (Exit_group, 231, "exit_group"); (Openat, 257, "openat"); (Mkdirat, 258, "mkdirat");
    (Mknodat, 259, "mknodat"); (Unlinkat, 263, "unlinkat"); (Renameat, 264, "renameat");
    (Splice, 275, "splice"); (Accept4, 288, "accept4"); (Dup3, 292, "dup3");
    (Pipe2, 293, "pipe2"); (Getrandom, 318, "getrandom");
  ]

let all = List.map (fun (t, _, _) -> t) table

let count = List.length all

let number t =
  let _, n, _ = List.find (fun (x, _, _) -> x = t) table in
  n

let to_string t =
  let _, _, s = List.find (fun (x, _, _) -> x = t) table in
  s

let of_string s =
  List.find_opt (fun (_, _, n) -> n = s) table |> Option.map (fun (t, _, _) -> t)

let compare a b = Stdlib.compare (number a) (number b)
let equal (a : t) b = a = b
let hash t = number t

let audit_default_ruleset =
  [
    Read; Readv; Write; Writev; Sendto; Recvfrom; Sendmsg; Recvmsg; Mmap; Mprotect; Link; Symlink;
    Clone; Fork; Vfork; Execve; Open; Close; Creat; Openat; Mknodat; Mknod; Dup; Dup2; Dup3; Bind;
    Accept; Accept4; Connect; Rename; Setuid; Setreuid; Setresuid; Chmod; Fchmod; Pipe; Pipe2;
    Truncate; Ftruncate; Sendfile; Unlink; Unlinkat; Socketpair; Splice;
  ]
