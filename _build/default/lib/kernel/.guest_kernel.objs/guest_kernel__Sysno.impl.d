lib/kernel/sysno.ml: List Option Stdlib
