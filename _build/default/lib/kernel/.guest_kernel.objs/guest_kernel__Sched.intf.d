lib/kernel/sched.mli:
