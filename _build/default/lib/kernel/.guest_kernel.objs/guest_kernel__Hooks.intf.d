lib/kernel/hooks.mli: Audit Enclave_desc Kmodule Ktypes Sevsnp
