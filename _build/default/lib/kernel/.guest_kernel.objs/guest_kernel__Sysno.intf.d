lib/kernel/sysno.mli:
