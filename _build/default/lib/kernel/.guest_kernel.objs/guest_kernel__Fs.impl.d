lib/kernel/fs.ml: Buffer Bytes Hashtbl Ktypes List String Veil_crypto
