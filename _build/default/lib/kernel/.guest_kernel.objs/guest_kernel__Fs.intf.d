lib/kernel/fs.mli: Ktypes Veil_crypto
