lib/kernel/audit.ml: List Printf Set Sysno
