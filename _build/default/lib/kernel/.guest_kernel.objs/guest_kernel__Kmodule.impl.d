lib/kernel/kmodule.ml: Bytes List Sevsnp Veil_crypto
