lib/kernel/process.mli: Enclave_desc Fd Hashtbl Ktypes Sevsnp
