lib/kernel/net.ml: Buffer Bytes Hashtbl Ktypes Queue String
