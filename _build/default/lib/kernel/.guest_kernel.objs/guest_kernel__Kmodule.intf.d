lib/kernel/kmodule.mli: Sevsnp Veil_crypto
