lib/kernel/kernel.mli: Audit Enclave_desc Fs Hooks Kmodule Ktypes Process Sevsnp Sysno Veil_crypto
