lib/kernel/ktypes.mli: Format
