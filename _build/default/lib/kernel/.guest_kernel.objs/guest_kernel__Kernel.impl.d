lib/kernel/kernel.ml: Audit Buffer Bytes Enclave_desc Fd Format Fs Hashtbl Hooks Int64 Kmodule Ktypes List Net Option Printf Process Result Sched Sevsnp String Sysno Veil_crypto
