lib/kernel/enclave_desc.ml: Ktypes List Sevsnp
