lib/kernel/fd.mli: Buffer Net
