lib/kernel/ktypes.ml: Bytes Format
