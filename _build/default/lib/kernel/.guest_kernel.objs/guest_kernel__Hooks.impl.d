lib/kernel/hooks.ml: Audit Enclave_desc Kmodule Ktypes Sevsnp
