lib/kernel/net.mli: Ktypes
