lib/kernel/enclave_desc.mli: Ktypes Sevsnp
