lib/kernel/fd.ml: Buffer Net
