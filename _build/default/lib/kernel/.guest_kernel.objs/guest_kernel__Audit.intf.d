lib/kernel/audit.mli: Sysno
