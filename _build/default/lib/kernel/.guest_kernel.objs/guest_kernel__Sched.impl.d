lib/kernel/sched.ml: Effect List
