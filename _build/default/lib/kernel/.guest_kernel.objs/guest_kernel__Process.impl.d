lib/kernel/process.ml: Enclave_desc Fd Hashtbl Ktypes List Sevsnp
