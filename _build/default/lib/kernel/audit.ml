type record = { seq : int; cycles : int; sys : Sysno.t; pid : int; detail : string }

let to_line r =
  Printf.sprintf "type=SYSCALL seq=%d tsc=%d syscall=%s(%d) pid=%d %s" r.seq r.cycles
    (Sysno.to_string r.sys) (Sysno.number r.sys) r.pid r.detail

module Sysset = Set.Make (struct
  type t = Sysno.t

  let compare = Sysno.compare
end)

type t = {
  mutable rules : Sysset.t;
  mutable buffer : record list;  (** newest first *)
  mutable nrecords : int;
  mutable next_seq : int;
  mutable protect_hook : (record -> unit) option;
}

let create () = { rules = Sysset.empty; buffer = []; nrecords = 0; next_seq = 1; protect_hook = None }

let set_rules t rules = t.rules <- Sysset.of_list rules
let clear_rules t = t.rules <- Sysset.empty
let matches t sys = Sysset.mem sys t.rules

let set_protect_hook t h = t.protect_hook <- h

let emit t ~cycles ~sys ~pid ~detail =
  if not (matches t sys) then None
  else begin
    let r = { seq = t.next_seq; cycles; sys; pid; detail } in
    t.next_seq <- t.next_seq + 1;
    (* Execute-ahead: the protected copy is taken before the kernel
       proceeds with the event. *)
    (match t.protect_hook with Some h -> h r | None -> ());
    t.buffer <- r :: t.buffer;
    t.nrecords <- t.nrecords + 1;
    Some r
  end

let records t = List.rev t.buffer
let count t = t.nrecords

let tamper t ~seq ~detail =
  let found = ref false in
  t.buffer <-
    List.map
      (fun r ->
        if r.seq = seq then begin
          found := true;
          { r with detail }
        end
        else r)
      t.buffer;
  !found
