type vma = {
  vma_start : Sevsnp.Types.va;
  mutable vma_npages : int;
  mutable vma_prot : Ktypes.prot;
  vma_file : string option;
}

type t = {
  pid : int;
  ppid : int;
  mutable cwd : string;
  fds : (int, Fd.t) Hashtbl.t;
  mutable next_fd : int;
  mutable uid : int;
  mutable euid : int;
  mutable umask : int;
  pt_root : Sevsnp.Types.gpfn;
  mutable mmap_cursor : Sevsnp.Types.va;
  mutable brk_start : Sevsnp.Types.va;
  mutable brk : Sevsnp.Types.va;
  mutable vmas : vma list;
  mutable enclave : Enclave_desc.t option;
  mutable exit_code : int option;
}

(* 39-bit VA space (3-level tables): keep regions well apart. *)
let user_va_base = 0x0000_40_0000
let brk_base = 0x0010_00_0000
let mmap_base = 0x0100_00_0000
let enclave_base = 0x0800_00_0000
let stack_base = 0x1000_00_0000

let create ~pid ~ppid ~pt_root =
  {
    pid;
    ppid;
    cwd = "/";
    fds = Hashtbl.create 16;
    next_fd = 3;
    uid = 0;
    euid = 0;
    umask = 0o022;
    pt_root;
    mmap_cursor = mmap_base;
    brk_start = brk_base;
    brk = brk_base;
    vmas = [];
    enclave = None;
    exit_code = None;
  }

let alloc_fd t fd =
  let n = t.next_fd in
  t.next_fd <- n + 1;
  Hashtbl.replace t.fds n fd;
  n

let install_fd t n fd = Hashtbl.replace t.fds n fd

let find_fd t n =
  match Hashtbl.find_opt t.fds n with Some fd -> Ok fd | None -> Error Ktypes.EBADF

let remove_fd t n =
  let existed = Hashtbl.mem t.fds n in
  Hashtbl.remove t.fds n;
  existed

let find_vma t va =
  List.find_opt
    (fun v -> va >= v.vma_start && va < v.vma_start + (v.vma_npages * Sevsnp.Types.page_size))
    t.vmas

let add_vma t v = t.vmas <- v :: t.vmas

let remove_vma t va_start =
  let before = List.length t.vmas in
  t.vmas <- List.filter (fun v -> v.vma_start <> va_start) t.vmas;
  List.length t.vmas < before
