(** In-memory hierarchical filesystem backing the guest's virtio disk.

    Supports the path and file operations the workload programs and
    LTP-style robustness tests need: nested directories, growable
    regular files, devices ([/dev/null], [/dev/urandom], [/dev/console]),
    rename/link/unlink, permission bits and stat. *)

type t

type node_kind = Regular | Directory | Device of string

val create : Veil_crypto.Rng.t -> t
(** Fresh filesystem with [/], [/tmp], [/dev] (+ devices), [/etc],
    [/var/log]. *)

val console_output : t -> string
(** Everything written to [/dev/console] so far. *)

(* Path operations; paths are absolute, '/'-separated. *)

val mkdir : t -> string -> (unit, Ktypes.errno) result
val rmdir : t -> string -> (unit, Ktypes.errno) result
val create_file : t -> string -> mode:int -> (unit, Ktypes.errno) result
val unlink : t -> string -> (unit, Ktypes.errno) result
val rename : t -> string -> string -> (unit, Ktypes.errno) result
val link : t -> string -> string -> (unit, Ktypes.errno) result
val symlink : t -> target:string -> linkpath:string -> (unit, Ktypes.errno) result
val readlink : t -> string -> (string, Ktypes.errno) result
val exists : t -> string -> bool
val kind_of : t -> string -> node_kind option
val stat : t -> string -> (Ktypes.stat, Ktypes.errno) result
val chmod : t -> string -> int -> (unit, Ktypes.errno) result
val truncate : t -> string -> int -> (unit, Ktypes.errno) result
val readdir : t -> string -> (string list, Ktypes.errno) result

(* Content operations on regular files and devices. *)

val read_at : t -> string -> pos:int -> len:int -> (bytes, Ktypes.errno) result
val write_at : t -> string -> pos:int -> bytes -> (int, Ktypes.errno) result
(** Returns bytes written; extends the file as needed.  On append
    devices the position is ignored. *)

val size_of : t -> string -> (int, Ktypes.errno) result
