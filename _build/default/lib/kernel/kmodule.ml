type image = {
  name : string;
  text : bytes;
  data : bytes;
  relocs : (int * string) list;
  mutable signature : bytes option;
}

let build rng ~name ~text_size ~data_size ~symbols =
  if text_size < 8 * (List.length symbols + 1) then invalid_arg "Kmodule.build: text too small for relocations";
  let text = Veil_crypto.Rng.bytes rng text_size in
  let data = Veil_crypto.Rng.bytes rng data_size in
  let relocs = List.mapi (fun i sym -> (8 * i, sym)) symbols in
  { name; text; data; relocs; signature = None }

let image_digest img =
  let m = Veil_crypto.Measurement.create ~domain:"kernel-module" in
  Veil_crypto.Measurement.add_string m ~label:"name" img.name;
  Veil_crypto.Measurement.add_bytes m ~label:"text" img.text;
  Veil_crypto.Measurement.add_bytes m ~label:"data" img.data;
  List.iter
    (fun (off, sym) ->
      Veil_crypto.Measurement.add_int m ~label:"reloc-off" off;
      Veil_crypto.Measurement.add_string m ~label:"reloc-sym" sym)
    img.relocs;
  Veil_crypto.Measurement.digest m

let sign rng ~vendor_secret img =
  let s = Veil_crypto.Schnorr.sign rng ~secret:vendor_secret (image_digest img) in
  img.signature <- Some (Veil_crypto.Schnorr.signature_to_bytes s)

let verify ~vendor_public img =
  match img.signature with
  | None -> false
  | Some sb -> (
      match Veil_crypto.Schnorr.signature_of_bytes sb with
      | None -> false
      | Some s -> Veil_crypto.Schnorr.verify ~public:vendor_public ~msg:(image_digest img) s)

type loaded = {
  module_image : image;
  text_gpfns : Sevsnp.Types.gpfn list;
  data_gpfns : Sevsnp.Types.gpfn list;
  load_address : int;
  mutable installed : bool;
}

let binary_size img = Bytes.length img.text + Bytes.length img.data + (16 * List.length img.relocs)

let installed_size l = Sevsnp.Types.page_size * (List.length l.text_gpfns + List.length l.data_gpfns)
