type pipe = { pbuf : Buffer.t; mutable readers : int; mutable writers : int }

type kind =
  | File of file_state
  | Sock of Net.endpoint
  | Pipe_r of pipe
  | Pipe_w of pipe
  | Veil_dev

and file_state = {
  path : string;
  mutable pos : int;
  readable : bool;
  writable : bool;
  append : bool;
}

type t = { kind : kind }

let mk_file ~path ~readable ~writable ~append =
  { kind = File { path; pos = 0; readable; writable; append } }

let mk_sock ep = { kind = Sock ep }

let mk_pipe () =
  let p = { pbuf = Buffer.create 256; readers = 1; writers = 1 } in
  ({ kind = Pipe_r p }, { kind = Pipe_w p })

let mk_veil_dev () = { kind = Veil_dev }
