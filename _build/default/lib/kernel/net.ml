type stream = { inbox : Buffer.t; mutable peer : endpoint option; mutable open_ : bool }

and ep_state =
  | Fresh
  | Bound of int
  | Listening of { port : int; backlog : int; queue : endpoint Queue.t }
  | Connected of stream
  | Closed

and endpoint = { id : int; mutable state : ep_state }

type t = { mutable next_id : int; listeners : (int, endpoint) Hashtbl.t }

let create () = { next_id = 1; listeners = Hashtbl.create 8 }

let socket t =
  let ep = { id = t.next_id; state = Fresh } in
  t.next_id <- t.next_id + 1;
  ep

let bind t ep ~port =
  match ep.state with
  | Fresh ->
      if Hashtbl.mem t.listeners port then Error Ktypes.EADDRINUSE
      else begin
        ep.state <- Bound port;
        Ok ()
      end
  | _ -> Error Ktypes.EINVAL

let listen t ep ~backlog =
  match ep.state with
  | Bound port ->
      ep.state <- Listening { port; backlog; queue = Queue.create () };
      Hashtbl.replace t.listeners port ep;
      Ok ()
  | _ -> Error Ktypes.EINVAL

let mk_stream () = { inbox = Buffer.create 256; peer = None; open_ = true }

let connect t ep ~port =
  match ep.state with
  | Fresh -> (
      match Hashtbl.find_opt t.listeners port with
      | None -> Error Ktypes.ECONNREFUSED
      | Some listener -> (
          match listener.state with
          | Listening l ->
              if Queue.length l.queue >= l.backlog then Error Ktypes.ECONNREFUSED
              else begin
                let client_stream = mk_stream () and server_stream = mk_stream () in
                let server_ep = { id = -ep.id; state = Connected server_stream } in
                ep.state <- Connected client_stream;
                client_stream.peer <- Some server_ep;
                server_stream.peer <- Some ep;
                Queue.push server_ep l.queue;
                Ok ()
              end
          | _ -> Error Ktypes.ECONNREFUSED))
  | _ -> Error Ktypes.EINVAL

let pair t =
  let sa = mk_stream () and sb = mk_stream () in
  let a = { id = t.next_id; state = Connected sa } in
  let b = { id = t.next_id + 1; state = Connected sb } in
  t.next_id <- t.next_id + 2;
  sa.peer <- Some b;
  sb.peer <- Some a;
  (a, b)

let accept _t ep =
  match ep.state with
  | Listening l -> if Queue.is_empty l.queue then Error Ktypes.EAGAIN else Ok (Queue.pop l.queue)
  | _ -> Error Ktypes.EINVAL

let send _t ep data =
  match ep.state with
  | Connected s -> (
      if not s.open_ then Error Ktypes.EPIPE
      else begin
        match s.peer with
        | Some { state = Connected peer_stream; _ } when peer_stream.open_ ->
            Buffer.add_bytes peer_stream.inbox data;
            Ok (Bytes.length data)
        | _ -> Error Ktypes.EPIPE
      end)
  | _ -> Error Ktypes.ENOTCONN

let peer_open s =
  match s.peer with Some { state = Connected ps; _ } -> ps.open_ | _ -> false

let recv _t ep len =
  match ep.state with
  | Connected s ->
      (* EOF (empty read) once the peer has shut down and the queue is
         drained; EAGAIN while the peer may still send *)
      if Buffer.length s.inbox = 0 then
        if s.open_ && peer_open s then Error Ktypes.EAGAIN else Ok Bytes.empty
      else begin
        let n = min len (Buffer.length s.inbox) in
        let out = Bytes.of_string (String.sub (Buffer.contents s.inbox) 0 n) in
        let rest = String.sub (Buffer.contents s.inbox) n (Buffer.length s.inbox - n) in
        Buffer.clear s.inbox;
        Buffer.add_string s.inbox rest;
        Ok out
      end
  | _ -> Error Ktypes.ENOTCONN

let pending _t ep = match ep.state with Connected s -> Buffer.length s.inbox | _ -> 0

let shutdown _t ep = match ep.state with Connected s -> s.open_ <- false | _ -> ()

let close t ep =
  (match ep.state with
  | Connected s -> s.open_ <- false
  | Listening { port; _ } -> Hashtbl.remove t.listeners port
  | _ -> ());
  ep.state <- Closed
