(** Loopback network stack.

    Just enough of AF_INET/SOCK_STREAM for the evaluation's server
    workloads (lighttpd/NGINX/memcached miniatures): listeners with
    accept queues and connected stream pairs with unbounded byte
    queues.  Single-threaded semantics: operations never block;
    [recv] on an empty stream returns [EAGAIN]. *)

type t
type endpoint

val create : unit -> t

val socket : t -> endpoint
val bind : t -> endpoint -> port:int -> (unit, Ktypes.errno) result
val listen : t -> endpoint -> backlog:int -> (unit, Ktypes.errno) result

val connect : t -> endpoint -> port:int -> (unit, Ktypes.errno) result
(** Loopback connect: queues the connection on the listener. *)

val accept : t -> endpoint -> (endpoint, Ktypes.errno) result

val pair : t -> endpoint * endpoint
(** A connected endpoint pair (socketpair). *)

val send : t -> endpoint -> bytes -> (int, Ktypes.errno) result
val recv : t -> endpoint -> int -> (bytes, Ktypes.errno) result
val pending : t -> endpoint -> int
(** Bytes currently queued for [recv]. *)

val shutdown : t -> endpoint -> unit
val close : t -> endpoint -> unit
