(** Guest processes. *)

type vma = {
  vma_start : Sevsnp.Types.va;
  mutable vma_npages : int;
  mutable vma_prot : Ktypes.prot;
  vma_file : string option;  (** backing path for file mappings *)
}

type t = {
  pid : int;
  ppid : int;
  mutable cwd : string;
  fds : (int, Fd.t) Hashtbl.t;
  mutable next_fd : int;
  mutable uid : int;
  mutable euid : int;
  mutable umask : int;
  pt_root : Sevsnp.Types.gpfn;  (** this process's page-table root *)
  mutable mmap_cursor : Sevsnp.Types.va;
  mutable brk_start : Sevsnp.Types.va;
  mutable brk : Sevsnp.Types.va;
  mutable vmas : vma list;
  mutable enclave : Enclave_desc.t option;
  mutable exit_code : int option;
}

val create : pid:int -> ppid:int -> pt_root:Sevsnp.Types.gpfn -> t

val alloc_fd : t -> Fd.t -> int
val install_fd : t -> int -> Fd.t -> unit
val find_fd : t -> int -> (Fd.t, Ktypes.errno) result
val remove_fd : t -> int -> bool

val find_vma : t -> Sevsnp.Types.va -> vma option
val add_vma : t -> vma -> unit
val remove_vma : t -> Sevsnp.Types.va -> bool

val user_va_base : Sevsnp.Types.va
val mmap_base : Sevsnp.Types.va
val enclave_base : Sevsnp.Types.va
(** Start of the enclave region inside the address space. *)

val stack_base : Sevsnp.Types.va
