(* The Veil_core.Veil public facade: the five-line user experience. *)

module V = Veil_core.Veil

let test_boot_and_attest () =
  let sys = V.boot ~npages:2048 ~seed:67 () in
  let report = V.attest sys ~nonce:(Bytes.of_string "n0") in
  Alcotest.(check bool) "report from VMPL-0" true
    (Sevsnp.Types.equal_vmpl report.Sevsnp.Attestation.requester_vmpl Sevsnp.Types.Vmpl0);
  let pk = Sevsnp.Attestation.platform_public_key sys.V.Boot.platform.Sevsnp.Platform.attestation in
  Alcotest.(check bool) "verifies" true (Sevsnp.Attestation.verify ~public_key:pk report)

let test_connect_and_logs () =
  let sys = V.boot ~npages:2048 ~seed:68 () in
  Guest_kernel.Audit.set_rules
    (Guest_kernel.Kernel.audit sys.V.Boot.kernel)
    [ Guest_kernel.Sysno.Mkdir ];
  let proc = Guest_kernel.Kernel.spawn sys.V.Boot.kernel in
  ignore
    (Guest_kernel.Kernel.invoke sys.V.Boot.kernel proc Guest_kernel.Sysno.Mkdir
       [ Guest_kernel.Ktypes.Str "/tmp/fac"; Guest_kernel.Ktypes.Int 0o755 ]);
  (match V.connect_user sys with
  | Ok user -> Alcotest.(check bool) "session" true (V.Channel.connected user)
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "protected log view" 1 (List.length (V.protected_logs sys))

let test_native_baseline () =
  let n = V.boot_native ~npages:2048 ~seed:69 () in
  Alcotest.(check bool) "native kernel at VMPL-0" true
    (Sevsnp.Types.equal_vmpl
       (Guest_kernel.Kernel.kernel_vmpl n.V.Boot.n_kernel)
       Sevsnp.Types.Vmpl0);
  let v = V.boot ~npages:2048 ~seed:69 () in
  Alcotest.(check bool) "veil kernel at VMPL-3" true
    (Sevsnp.Types.equal_vmpl (Guest_kernel.Kernel.kernel_vmpl v.V.Boot.kernel) Sevsnp.Types.Vmpl3)

let test_version () =
  Alcotest.(check bool) "semver-ish" true (String.length V.version >= 5 && V.version.[1] = '.')

let suite =
  [
    ("boot + attest", `Quick, test_boot_and_attest);
    ("connect_user + protected_logs", `Quick, test_connect_and_logs);
    ("native vs veil kernel privilege", `Quick, test_native_baseline);
    ("version string", `Quick, test_version);
  ]
