(* Crypto substrate tests: standard vectors + algebraic properties. *)

open Veil_crypto

let hex = Sha256.hex_of_digest

let check_hex msg expected got = Alcotest.(check string) msg expected (hex got)

(* --- SHA-256 (FIPS 180-4 / NIST vectors) --- *)

let test_sha256_vectors () =
  check_hex "empty" "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    (Sha256.digest_string "");
  check_hex "abc" "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    (Sha256.digest_string "abc");
  check_hex "448-bit" "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
    (Sha256.digest_string "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
  check_hex "million a" "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (Sha256.digest_string (String.make 1_000_000 'a'))

let test_sha256_incremental () =
  let whole = Sha256.digest_string "the quick brown fox jumps over the lazy dog" in
  let ctx = Sha256.init () in
  List.iter (Sha256.update_string ctx) [ "the quick brown "; "fox jumps"; ""; " over the lazy dog" ];
  Alcotest.(check string) "incremental = one-shot" (hex whole) (hex (Sha256.finalize ctx))

let test_sha256_block_boundaries () =
  (* lengths straddling the 55/56/64-byte padding boundaries *)
  List.iter
    (fun n ->
      let s = String.make n 'x' in
      let ctx = Sha256.init () in
      String.iter (fun c -> Sha256.update ctx (Bytes.make 1 c)) s;
      Alcotest.(check string)
        (Printf.sprintf "len %d byte-at-a-time" n)
        (hex (Sha256.digest_string s))
        (hex (Sha256.finalize ctx)))
    [ 0; 1; 54; 55; 56; 57; 63; 64; 65; 127; 128; 129 ]

(* --- HMAC-SHA256 (RFC 4231) --- *)

let test_hmac_rfc4231 () =
  let case1 = Hmac.mac ~key:(Bytes.make 20 '\x0b') (Bytes.of_string "Hi There") in
  check_hex "rfc4231 case 1" "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7" case1;
  let case2 = Hmac.mac ~key:(Bytes.of_string "Jefe") (Bytes.of_string "what do ya want for nothing?") in
  check_hex "rfc4231 case 2" "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843" case2;
  (* case 6: key longer than the block size *)
  let case6 =
    Hmac.mac ~key:(Bytes.make 131 '\xaa')
      (Bytes.of_string "Test Using Larger Than Block-Size Key - Hash Key First")
  in
  check_hex "rfc4231 case 6" "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54" case6

let test_hmac_verify () =
  let key = Bytes.of_string "secret" and msg = Bytes.of_string "message" in
  let tag = Hmac.mac ~key msg in
  Alcotest.(check bool) "verify ok" true (Hmac.verify ~key ~msg ~tag);
  Bytes.set tag 3 'z';
  Alcotest.(check bool) "tampered tag fails" false (Hmac.verify ~key ~msg ~tag);
  Alcotest.(check bool)
    "wrong key fails" false
    (Hmac.verify ~key:(Bytes.of_string "other") ~msg ~tag:(Hmac.mac ~key msg))

(* --- ChaCha20 (RFC 8439) --- *)

let test_chacha20_block () =
  let key = Bytes.init 32 Char.chr in
  let nonce = Bytes.of_string "\x00\x00\x00\x09\x00\x00\x00\x4a\x00\x00\x00\x00" in
  let block = Chacha20.block ~key ~nonce ~counter:1 in
  Alcotest.(check string)
    "rfc8439 2.3.2 first 16 keystream bytes" "10f1e7e4d13b5915500fdd1fa32071c4"
    (hex (Bytes.sub block 0 16))

let test_chacha20_rfc_encrypt () =
  let key = Bytes.init 32 Char.chr in
  let nonce = Bytes.of_string "\x00\x00\x00\x00\x00\x00\x00\x4a\x00\x00\x00\x00" in
  let pt =
    "Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, \
     sunscreen would be it."
  in
  let ct = Chacha20.encrypt ~key ~nonce ~counter:1 (Bytes.of_string pt) in
  Alcotest.(check string)
    "rfc8439 2.4.2 first 16 ct bytes" "6e2e359a2568f98041ba0728dd0d6981"
    (hex (Bytes.sub ct 0 16))

let chacha_roundtrip =
  QCheck.Test.make ~name:"chacha20 roundtrip" ~count:100
    QCheck.(pair (bytes_of_size Gen.(0 -- 300)) small_nat)
    (fun (data, seed) ->
      let rng = Rng.create seed in
      let key = Rng.bytes rng 32 and nonce = Rng.bytes rng 12 in
      Bytes.equal data (Chacha20.encrypt ~key ~nonce (Chacha20.encrypt ~key ~nonce data)))

(* --- Bignum --- *)

let bn = Bignum.of_int

let small = QCheck.Gen.(0 -- 1_000_000)

let bignum_pair = QCheck.make QCheck.Gen.(pair small small)

let test_bignum_basic () =
  Alcotest.(check bool) "zero" true (Bignum.is_zero Bignum.zero);
  Alcotest.(check (option int)) "roundtrip" (Some 123456789) (Bignum.to_int_opt (bn 123456789));
  Alcotest.(check int) "compare" (-1) (Bignum.compare (bn 5) (bn 7));
  Alcotest.(check string) "hex" "ff" (Bignum.to_hex (bn 255));
  Alcotest.(check bool) "of_hex" true (Bignum.equal (Bignum.of_hex "deadbeef") (bn 0xdeadbeef));
  Alcotest.(check bool)
    "bytes roundtrip" true
    (Bignum.equal (bn 987654321) (Bignum.of_bytes_be (Bignum.to_bytes_be (bn 987654321))))

let test_bignum_underflow () =
  Alcotest.check_raises "sub underflow" Bignum.Underflow (fun () -> ignore (Bignum.sub (bn 3) (bn 5)));
  Alcotest.check_raises "div by zero" Bignum.Division_by_zero (fun () ->
      ignore (Bignum.divmod (bn 3) Bignum.zero))

let bignum_add_comm =
  QCheck.Test.make ~name:"bignum add commutative" ~count:200 bignum_pair (fun (a, b) ->
      Bignum.equal (Bignum.add (bn a) (bn b)) (Bignum.add (bn b) (bn a)))

let bignum_mul_matches_int =
  QCheck.Test.make ~name:"bignum mul matches int" ~count:200 bignum_pair (fun (a, b) ->
      Bignum.to_int_opt (Bignum.mul (bn a) (bn b)) = Some (a * b))

let bignum_divmod_identity =
  QCheck.Test.make ~name:"bignum a = q*b + r, r < b" ~count:200
    (QCheck.make QCheck.Gen.(pair small (1 -- 100_000)))
    (fun (a, b) ->
      let q, r = Bignum.divmod (bn a) (bn b) in
      Bignum.equal (bn a) (Bignum.add (Bignum.mul q (bn b)) r) && Bignum.compare r (bn b) < 0)

let bignum_shift_roundtrip =
  QCheck.Test.make ~name:"bignum shift left then right" ~count:200
    (QCheck.make QCheck.Gen.(pair small (0 -- 120)))
    (fun (a, s) -> Bignum.equal (bn a) (Bignum.shift_right (Bignum.shift_left (bn a) s) s))

let test_bignum_powmod_fermat () =
  (* Fermat's little theorem on a known prime. *)
  let p = bn 1_000_003 in
  let rng = Rng.create 5 in
  for _ = 1 to 25 do
    let a = Bignum.add Bignum.one (Bignum.random_below rng (Bignum.sub p Bignum.two)) in
    let r = Bignum.powmod ~base:a ~exp:(Bignum.sub p Bignum.one) ~modulus:p in
    Alcotest.(check bool) "a^(p-1) = 1 mod p" true (Bignum.equal r Bignum.one)
  done

let test_bignum_invmod () =
  let m = bn 1_000_003 in
  let rng = Rng.create 9 in
  for _ = 1 to 25 do
    let a = Bignum.add Bignum.one (Bignum.random_below rng (Bignum.sub m Bignum.two)) in
    match Bignum.invmod a m with
    | None -> Alcotest.fail "inverse must exist modulo a prime"
    | Some inv ->
        Alcotest.(check bool) "a * a^-1 = 1" true (Bignum.equal (Bignum.rem (Bignum.mul a inv) m) Bignum.one)
  done;
  Alcotest.(check (option reject)) "gcd > 1 has no inverse"
    None
    (Option.map (fun _ -> ()) (Bignum.invmod (bn 6) (bn 9)))

let test_bignum_primality () =
  let rng = Rng.create 11 in
  List.iter
    (fun (n, expect) ->
      Alcotest.(check bool) (string_of_int n) expect (Bignum.is_probably_prime rng (bn n)))
    [ (2, true); (3, true); (4, false); (17, true); (561, false) (* Carmichael *); (7919, true);
      (1_000_003, true); (1_000_001, false) ]

let test_bignum_large_mul () =
  (* (2^200 - 1) * (2^200 + 1) = 2^400 - 1 *)
  let p200 = Bignum.shift_left Bignum.one 200 in
  let a = Bignum.sub p200 Bignum.one and b = Bignum.add p200 Bignum.one in
  let expected = Bignum.sub (Bignum.shift_left Bignum.one 400) Bignum.one in
  Alcotest.(check bool) "difference of squares" true (Bignum.equal (Bignum.mul a b) expected)

(* --- Group / DH / Schnorr --- *)

let test_group_structure () =
  let g = Group.default () in
  (* p = 2q + 1 *)
  Alcotest.(check bool) "p = 2q+1" true
    (Bignum.equal g.Group.p (Bignum.add (Bignum.shift_left g.Group.q 1) Bignum.one));
  (* g generates the order-q subgroup: g^q = 1 *)
  let gq = Bignum.powmod ~base:g.Group.g ~exp:g.Group.q ~modulus:g.Group.p in
  Alcotest.(check bool) "g^q = 1" true (Bignum.equal gq Bignum.one);
  Alcotest.(check bool) "g <> 1" false (Bignum.equal g.Group.g Bignum.one)

let test_dh_agreement () =
  let rng = Rng.create 21 in
  let a = Dh.keygen rng and b = Dh.keygen rng in
  let s1 = Dh.shared_secret ~secret:a.Dh.secret ~peer_public:b.Dh.public () in
  let s2 = Dh.shared_secret ~secret:b.Dh.secret ~peer_public:a.Dh.public () in
  Alcotest.(check string) "shared secrets agree" (hex s1) (hex s2);
  let c = Dh.keygen rng in
  let s3 = Dh.shared_secret ~secret:c.Dh.secret ~peer_public:a.Dh.public () in
  Alcotest.(check bool) "third party differs" false (Bytes.equal s1 s3)

let test_schnorr_sign_verify () =
  let rng = Rng.create 33 in
  let kp = Schnorr.keygen rng in
  let msg = Bytes.of_string "veil attestation report" in
  let s = Schnorr.sign rng ~secret:kp.Schnorr.secret msg in
  Alcotest.(check bool) "valid signature verifies" true (Schnorr.verify ~public:kp.Schnorr.public ~msg s);
  Alcotest.(check bool)
    "wrong message fails" false
    (Schnorr.verify ~public:kp.Schnorr.public ~msg:(Bytes.of_string "other") s);
  let other = Schnorr.keygen rng in
  Alcotest.(check bool) "wrong key fails" false (Schnorr.verify ~public:other.Schnorr.public ~msg s)

let test_schnorr_serialization () =
  let rng = Rng.create 44 in
  let kp = Schnorr.keygen rng in
  let s = Schnorr.sign rng ~secret:kp.Schnorr.secret (Bytes.of_string "x") in
  (match Schnorr.signature_of_bytes (Schnorr.signature_to_bytes s) with
  | Some s' ->
      Alcotest.(check bool) "roundtrip verifies" true
        (Schnorr.verify ~public:kp.Schnorr.public ~msg:(Bytes.of_string "x") s')
  | None -> Alcotest.fail "signature did not roundtrip");
  Alcotest.(check bool) "garbage rejected" true
    (Schnorr.signature_of_bytes (Bytes.of_string "zz") = None)

(* --- Measurement --- *)

let test_measurement_framing () =
  let m1 = Measurement.create ~domain:"d" in
  Measurement.add_string m1 ~label:"a" "bc";
  let m2 = Measurement.create ~domain:"d" in
  Measurement.add_string m2 ~label:"ab" "c";
  (* length framing must keep (a,"bc") and (ab,"c") distinct *)
  Alcotest.(check bool) "no framing collision" false
    (Bytes.equal (Measurement.digest m1) (Measurement.digest m2));
  let m3 = Measurement.create ~domain:"other" in
  Measurement.add_string m3 ~label:"a" "bc";
  let m4 = Measurement.create ~domain:"d" in
  Measurement.add_string m4 ~label:"a" "bc";
  Alcotest.(check bool) "domain separation" false
    (Bytes.equal (Measurement.digest m3) (Measurement.digest m4))

(* --- Rng determinism --- *)

let test_rng_deterministic () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next64 a) (Rng.next64 b)
  done;
  let c = Rng.create 8 in
  Alcotest.(check bool) "different seed differs" false (Rng.next64 (Rng.create 7) = Rng.next64 c)

let rng_int_bounds =
  QCheck.Test.make ~name:"rng int within bounds" ~count:300
    (QCheck.make QCheck.Gen.(pair small_nat (1 -- 10000)))
    (fun (seed, bound) ->
      let r = Rng.create seed in
      let v = Rng.int r bound in
      v >= 0 && v < bound)

let q = QCheck_alcotest.to_alcotest

let suite =
  [
    ("sha256 NIST vectors", `Quick, test_sha256_vectors);
    ("sha256 incremental", `Quick, test_sha256_incremental);
    ("sha256 block boundaries", `Quick, test_sha256_block_boundaries);
    ("hmac RFC 4231 vectors", `Quick, test_hmac_rfc4231);
    ("hmac verify", `Quick, test_hmac_verify);
    ("chacha20 RFC 8439 block", `Quick, test_chacha20_block);
    ("chacha20 RFC 8439 encrypt", `Quick, test_chacha20_rfc_encrypt);
    q chacha_roundtrip;
    ("bignum basics", `Quick, test_bignum_basic);
    ("bignum underflow/divzero", `Quick, test_bignum_underflow);
    q bignum_add_comm;
    q bignum_mul_matches_int;
    q bignum_divmod_identity;
    q bignum_shift_roundtrip;
    ("bignum Fermat", `Quick, test_bignum_powmod_fermat);
    ("bignum invmod", `Quick, test_bignum_invmod);
    ("bignum Miller-Rabin", `Quick, test_bignum_primality);
    ("bignum large multiply", `Quick, test_bignum_large_mul);
    ("schnorr group structure", `Slow, test_group_structure);
    ("dh agreement", `Quick, test_dh_agreement);
    ("schnorr sign/verify", `Quick, test_schnorr_sign_verify);
    ("schnorr serialization", `Quick, test_schnorr_serialization);
    ("measurement framing", `Quick, test_measurement_framing);
    ("rng determinism", `Quick, test_rng_deterministic);
    q rng_int_bounds;
  ]
