(* Memcached storage-core tests: slab classes, LRU eviction, TTLs. *)

module M = Workloads.Mcache

let q = QCheck_alcotest.to_alcotest

let test_basic () =
  let m = M.create () in
  M.set m ~key:"a" ~value:(Bytes.of_string "1") ();
  M.set m ~key:"b" ~value:(Bytes.of_string "2") ();
  Alcotest.(check (option bytes)) "get a" (Some (Bytes.of_string "1")) (M.get m "a");
  Alcotest.(check (option bytes)) "miss" None (M.get m "zz");
  Alcotest.(check int) "entries" 2 (M.entries m);
  Alcotest.(check bool) "delete" true (M.delete m "a");
  Alcotest.(check bool) "double delete" false (M.delete m "a");
  Alcotest.(check (option bytes)) "gone" None (M.get m "a");
  Alcotest.(check int) "hits" 1 (M.hits m);
  Alcotest.(check int) "misses" 2 (M.misses m)

let test_overwrite () =
  let m = M.create () in
  M.set m ~key:"k" ~value:(Bytes.make 10 'x') ();
  M.set m ~key:"k" ~value:(Bytes.make 500 'y') () (* different slab class *);
  Alcotest.(check int) "still one entry" 1 (M.entries m);
  Alcotest.(check (option bytes)) "latest value" (Some (Bytes.make 500 'y')) (M.get m "k")

let test_slab_classes () =
  let m = M.create () in
  Alcotest.(check int) "64B -> class 0" 0 (M.slab_class_of m 64);
  Alcotest.(check int) "65B -> class 1" 1 (M.slab_class_of m 65);
  Alcotest.(check int) "1KB -> class 4" 4 (M.slab_class_of m 1024);
  Alcotest.(check bool) "huge values land in the top class" true (M.slab_class_of m (1 lsl 20) = 9)

let test_ttl_expiry () =
  let m = M.create () in
  M.set m ~key:"ephemeral" ~value:(Bytes.of_string "x") ~ttl:3 ();
  M.set m ~key:"immortal" ~value:(Bytes.of_string "y") ();
  Alcotest.(check bool) "live before expiry" true (M.get m "ephemeral" <> None);
  M.tick m;
  M.tick m;
  M.tick m;
  Alcotest.(check (option bytes)) "expired" None (M.get m "ephemeral");
  Alcotest.(check int) "expiry counted" 1 (M.expired m);
  Alcotest.(check bool) "immortal lives" true (M.get m "immortal" <> None)

let test_lru_eviction () =
  (* tiny budget: class 0 (64 B chunks) holds floor(1024/10/64) = 1 entry *)
  let m = M.create ~memory_limit:1024 () in
  M.set m ~key:"old" ~value:(Bytes.make 8 'a') ();
  M.set m ~key:"new" ~value:(Bytes.make 8 'b') ();
  Alcotest.(check bool) "evicted something" true (M.evictions m >= 1);
  Alcotest.(check (option bytes)) "old evicted" None (M.get m "old");
  Alcotest.(check bool) "new retained" true (M.get m "new" <> None)

let test_lru_order_respects_gets () =
  let m = M.create ~memory_limit:1300 () in
  (* class 0 budget = 2 entries *)
  M.set m ~key:"a" ~value:(Bytes.make 8 'a') ();
  M.set m ~key:"b" ~value:(Bytes.make 8 'b') ();
  ignore (M.get m "a") (* refresh a: b becomes LRU *);
  M.set m ~key:"c" ~value:(Bytes.make 8 'c') ();
  Alcotest.(check bool) "a survives (recently used)" true (M.get m "a" <> None);
  Alcotest.(check (option bytes)) "b evicted" None (M.get m "b")

let test_memory_bounded () =
  let m = M.create ~memory_limit:4096 () in
  for i = 0 to 499 do
    M.set m ~key:(Printf.sprintf "k%d" i) ~value:(Bytes.make 48 'v') ()
  done;
  Alcotest.(check bool)
    (Printf.sprintf "bytes used %d within budget" (M.bytes_used m))
    true
    (M.bytes_used m <= 4096);
  Alcotest.(check bool) "evictions happened" true (M.evictions m > 400)

let mcache_model =
  QCheck.Test.make ~name:"mcache get/set agrees with a model (no eviction)" ~count:40
    (QCheck.make
       QCheck.Gen.(list_size (1 -- 100) (pair (string_size ~gen:(char_range 'a' 'd') (1 -- 4)) (bytes_size (1 -- 40)))))
    (fun ops ->
      (* large limit: no evictions, so a plain map is the spec *)
      let m = M.create ~memory_limit:(1 lsl 22) () in
      let model = Hashtbl.create 16 in
      List.iter
        (fun (k, v) ->
          Hashtbl.replace model k v;
          M.set m ~key:k ~value:v ())
        ops;
      M.evictions m = 0
      && Hashtbl.fold (fun k v acc -> acc && M.get m k = Some v) model true
      && M.entries m = Hashtbl.length model)

let suite =
  [
    ("basic get/set/delete", `Quick, test_basic);
    ("overwrite across slab classes", `Quick, test_overwrite);
    ("slab class sizing", `Quick, test_slab_classes);
    ("ttl expiry", `Quick, test_ttl_expiry);
    ("lru eviction under pressure", `Quick, test_lru_eviction);
    ("gets refresh lru order", `Quick, test_lru_order_respects_gets);
    ("memory stays bounded", `Quick, test_memory_bounded);
    q mcache_model;
  ]
