(* Guest kernel tests: filesystem, network, pipes, the syscall surface,
   memory management, modules, auditing. *)

module K = Guest_kernel.Ktypes
module S = Guest_kernel.Sysno
module Kern = Guest_kernel.Kernel
module Fs = Guest_kernel.Fs

let q = QCheck_alcotest.to_alcotest

let boot_native () =
  let n = Veil_core.Boot.boot_native ~npages:2048 ~seed:17 () in
  let kernel = n.Veil_core.Boot.n_kernel in
  (kernel, Kern.spawn kernel)

let sys kernel proc s args = Kern.invoke kernel proc s args

let expect_int msg = function
  | K.RInt n -> n
  | r -> Alcotest.failf "%s: unexpected %a" msg K.pp_ret r

let expect_buf msg = function
  | K.RBuf b -> b
  | r -> Alcotest.failf "%s: unexpected %a" msg K.pp_ret r

let expect_err msg expected = function
  | K.RErr e when e = expected -> ()
  | r -> Alcotest.failf "%s: expected %s, got %a" msg (K.errno_to_string expected) K.pp_ret r

(* --- sysno table --- *)

let test_sysno_table () =
  Alcotest.(check int) "96 supported syscalls (§7)" 96 S.count;
  Alcotest.(check int) "read is 0" 0 (S.number S.Read);
  Alcotest.(check int) "openat is 257" 257 (S.number S.Openat);
  Alcotest.(check (option reject)) "unknown name" None (Option.map ignore (S.of_string "bogus"));
  Alcotest.(check bool) "of_string roundtrip" true
    (List.for_all (fun s -> S.of_string (S.to_string s) = Some s) S.all);
  let uniq = List.sort_uniq compare (List.map S.number S.all) in
  Alcotest.(check int) "numbers unique" 96 (List.length uniq);
  Alcotest.(check int) "audit ruleset size (§9.2 footnote)" 44 (List.length S.audit_default_ruleset)

(* --- fs --- *)

let test_fs_basic () =
  let fs = Fs.create (Veil_crypto.Rng.create 3) in
  Alcotest.(check bool) "/tmp exists" true (Fs.exists fs "/tmp");
  (match Fs.create_file fs "/tmp/a.txt" ~mode:0o644 with Ok () -> () | Error _ -> Alcotest.fail "create");
  (match Fs.write_at fs "/tmp/a.txt" ~pos:0 (Bytes.of_string "hello") with
  | Ok 5 -> ()
  | _ -> Alcotest.fail "write");
  (match Fs.read_at fs "/tmp/a.txt" ~pos:1 ~len:3 with
  | Ok b -> Alcotest.(check bytes) "offset read" (Bytes.of_string "ell") b
  | Error _ -> Alcotest.fail "read");
  (* sparse extension *)
  (match Fs.write_at fs "/tmp/a.txt" ~pos:100 (Bytes.of_string "x") with Ok 1 -> () | _ -> Alcotest.fail "sparse");
  (match Fs.stat fs "/tmp/a.txt" with
  | Ok st -> Alcotest.(check int) "size" 101 st.K.st_size
  | Error _ -> Alcotest.fail "stat");
  (match Fs.read_at fs "/tmp/a.txt" ~pos:50 ~len:1 with
  | Ok b -> Alcotest.(check char) "hole is zero" '\000' (Bytes.get b 0)
  | Error _ -> Alcotest.fail "hole read")

let test_fs_tree_ops () =
  let fs = Fs.create (Veil_crypto.Rng.create 3) in
  (match Fs.mkdir fs "/tmp/sub" with Ok () -> () | Error _ -> Alcotest.fail "mkdir");
  (match Fs.mkdir fs "/tmp/sub" with Error K.EEXIST -> () | _ -> Alcotest.fail "mkdir eexist");
  (match Fs.create_file fs "/tmp/sub/f" ~mode:0o600 with Ok () -> () | Error _ -> Alcotest.fail "create");
  (match Fs.rmdir fs "/tmp/sub" with Error K.EINVAL -> () | _ -> Alcotest.fail "rmdir non-empty");
  (match Fs.rename fs "/tmp/sub/f" "/tmp/g" with Ok () -> () | Error _ -> Alcotest.fail "rename");
  Alcotest.(check bool) "renamed away" false (Fs.exists fs "/tmp/sub/f");
  Alcotest.(check bool) "renamed here" true (Fs.exists fs "/tmp/g");
  (match Fs.rmdir fs "/tmp/sub" with Ok () -> () | Error _ -> Alcotest.fail "rmdir empty");
  (match Fs.link fs "/tmp/g" "/tmp/h" with Ok () -> () | Error _ -> Alcotest.fail "link");
  ignore (Fs.write_at fs "/tmp/g" ~pos:0 (Bytes.of_string "shared"));
  (match Fs.read_at fs "/tmp/h" ~pos:0 ~len:6 with
  | Ok b -> Alcotest.(check bytes) "hard link shares data" (Bytes.of_string "shared") b
  | Error _ -> Alcotest.fail "link read");
  (match Fs.symlink fs ~target:"/tmp/g" ~linkpath:"/tmp/s" with Ok () -> () | Error _ -> Alcotest.fail "symlink");
  (match Fs.read_at fs "/tmp/s" ~pos:0 ~len:6 with
  | Ok b -> Alcotest.(check bytes) "symlink follows" (Bytes.of_string "shared") b
  | Error _ -> Alcotest.fail "symlink read");
  (match Fs.readdir fs "/tmp" with
  | Ok names -> Alcotest.(check (list string)) "listing" [ "g"; "h"; "s" ] names
  | Error _ -> Alcotest.fail "readdir")

let test_fs_devices () =
  let fs = Fs.create (Veil_crypto.Rng.create 3) in
  (match Fs.read_at fs "/dev/urandom" ~pos:0 ~len:32 with
  | Ok b -> Alcotest.(check int) "urandom length" 32 (Bytes.length b)
  | Error _ -> Alcotest.fail "urandom");
  (match Fs.write_at fs "/dev/null" ~pos:0 (Bytes.of_string "gone") with
  | Ok 4 -> ()
  | _ -> Alcotest.fail "null");
  ignore (Fs.write_at fs "/dev/console" ~pos:0 (Bytes.of_string "boot ok\n"));
  Alcotest.(check string) "console captured" "boot ok\n" (Fs.console_output fs)

(* --- syscalls: files --- *)

let test_sys_file_io () =
  let kernel, proc = boot_native () in
  let fd = expect_int "open" (sys kernel proc S.Open [ K.Str "/tmp/f"; K.Int 0x42; K.Int 0o644 ]) in
  Alcotest.(check int) "write" 11 (expect_int "w" (sys kernel proc S.Write [ K.Int fd; K.Buf (Bytes.of_string "hello world") ]));
  ignore (expect_int "lseek" (sys kernel proc S.Lseek [ K.Int fd; K.Int 0; K.Int 0 ]));
  let b = expect_buf "read" (sys kernel proc S.Read [ K.Int fd; K.Int 5 ]) in
  Alcotest.(check bytes) "read data" (Bytes.of_string "hello") b;
  let b2 = expect_buf "pread" (sys kernel proc S.Pread64 [ K.Int fd; K.Int 5; K.Int 6 ]) in
  Alcotest.(check bytes) "pread" (Bytes.of_string "world") b2;
  expect_err "read on closed" K.EBADF
    (let _ = sys kernel proc S.Close [ K.Int fd ] in
     sys kernel proc S.Read [ K.Int fd; K.Int 1 ])

let test_sys_open_flags () =
  let kernel, proc = boot_native () in
  expect_err "missing file" K.ENOENT (sys kernel proc S.Open [ K.Str "/tmp/nope"; K.Int 0; K.Int 0 ]);
  let fd = expect_int "creat" (sys kernel proc S.Creat [ K.Str "/tmp/c"; K.Int 0o600 ]) in
  ignore (sys kernel proc S.Close [ K.Int fd ]);
  expect_err "excl on existing" K.EEXIST
    (sys kernel proc S.Open [ K.Str "/tmp/c"; K.Int (0x40 lor 0x80); K.Int 0o600 ]);
  ignore (expect_int "write" (sys kernel proc S.Write
    [ K.Int (expect_int "o" (sys kernel proc S.Open [ K.Str "/tmp/c"; K.Int 1; K.Int 0 ])); K.Buf (Bytes.of_string "xyz") ]));
  let fd2 = expect_int "trunc" (sys kernel proc S.Open [ K.Str "/tmp/c"; K.Int (2 lor 0x200); K.Int 0 ]) in
  (match sys kernel proc S.Fstat [ K.Int fd2 ] with
  | K.RStat st -> Alcotest.(check int) "truncated" 0 st.K.st_size
  | r -> Alcotest.failf "fstat: %a" K.pp_ret r)

let test_sys_append_mode () =
  let kernel, proc = boot_native () in
  let fd = expect_int "o" (sys kernel proc S.Open [ K.Str "/tmp/log"; K.Int (0x40 lor 1 lor 0x400); K.Int 0o644 ]) in
  ignore (sys kernel proc S.Write [ K.Int fd; K.Buf (Bytes.of_string "aa") ]);
  ignore (sys kernel proc S.Write [ K.Int fd; K.Buf (Bytes.of_string "bb") ]);
  (match sys kernel proc S.Stat [ K.Str "/tmp/log" ] with
  | K.RStat st -> Alcotest.(check int) "appended" 4 st.K.st_size
  | r -> Alcotest.failf "stat: %a" K.pp_ret r)

let test_sys_dir_ops () =
  let kernel, proc = boot_native () in
  ignore (expect_int "mkdir" (sys kernel proc S.Mkdir [ K.Str "/tmp/d"; K.Int 0o755 ]));
  ignore (expect_int "chdir" (sys kernel proc S.Chdir [ K.Str "/tmp/d" ]));
  let cwd = expect_buf "getcwd" (sys kernel proc S.Getcwd []) in
  Alcotest.(check bytes) "cwd" (Bytes.of_string "/tmp/d") cwd;
  (* relative path resolution *)
  ignore (expect_int "rel create" (sys kernel proc S.Creat [ K.Str "rel.txt"; K.Int 0o644 ]));
  Alcotest.(check bool) "exists at abs path" true
    (Fs.exists (Kern.fs kernel) "/tmp/d/rel.txt")

let test_sys_dup () =
  let kernel, proc = boot_native () in
  let fd = expect_int "o" (sys kernel proc S.Open [ K.Str "/tmp/x"; K.Int 0x42; K.Int 0o644 ]) in
  let fd2 = expect_int "dup" (sys kernel proc S.Dup [ K.Int fd ]) in
  ignore (sys kernel proc S.Write [ K.Int fd; K.Buf (Bytes.of_string "abc") ]);
  (* dup shares the offset *)
  let b = expect_buf "read on dup" (sys kernel proc S.Pread64 [ K.Int fd2; K.Int 3; K.Int 0 ]) in
  Alcotest.(check bytes) "shared description" (Bytes.of_string "abc") b

(* --- syscalls: memory --- *)

let test_sys_mmap () =
  let kernel, proc = boot_native () in
  let va = expect_int "mmap" (sys kernel proc S.Mmap [ K.Int 0; K.Int 8192; K.Int 3; K.Int 0x22; K.Int (-1); K.Int 0 ]) in
  Alcotest.(check bool) "page aligned" true (va land 4095 = 0);
  (* memory is usable through the process tables *)
  Kern.write_user kernel proc ~va (Bytes.of_string "in user memory");
  Alcotest.(check bytes) "user rw" (Bytes.of_string "in user memory") (Kern.read_user kernel proc ~va ~len:14);
  ignore (expect_int "mprotect" (sys kernel proc S.Mprotect [ K.Int va; K.Int 8192; K.Int 1 ]));
  ignore (expect_int "munmap" (sys kernel proc S.Munmap [ K.Int va; K.Int 8192 ]));
  expect_err "double munmap" K.EINVAL (sys kernel proc S.Munmap [ K.Int va; K.Int 8192 ])

let test_sys_brk () =
  let kernel, proc = boot_native () in
  let base = expect_int "brk 0" (sys kernel proc S.Brk [ K.Int 0 ]) in
  let nb = expect_int "grow" (sys kernel proc S.Brk [ K.Int (base + 16384) ]) in
  Alcotest.(check int) "brk grew" (base + 16384) nb;
  Kern.write_user kernel proc ~va:base (Bytes.of_string "heap!");
  Alcotest.(check bytes) "heap usable" (Bytes.of_string "heap!") (Kern.read_user kernel proc ~va:base ~len:5);
  ignore (expect_int "shrink" (sys kernel proc S.Brk [ K.Int base ]))

(* --- syscalls: sockets & pipes --- *)

let test_sys_sockets () =
  let kernel, proc = boot_native () in
  let srv = expect_int "socket" (sys kernel proc S.Socket [ K.Int 2; K.Int 1; K.Int 0 ]) in
  ignore (expect_int "bind" (sys kernel proc S.Bind [ K.Int srv; K.Int 7000 ]));
  ignore (expect_int "listen" (sys kernel proc S.Listen [ K.Int srv; K.Int 8 ]));
  expect_err "accept empty" K.EAGAIN (sys kernel proc S.Accept [ K.Int srv ]);
  let cli = expect_int "socket2" (sys kernel proc S.Socket [ K.Int 2; K.Int 1; K.Int 0 ]) in
  ignore (expect_int "connect" (sys kernel proc S.Connect [ K.Int cli; K.Int 7000 ]));
  let conn = expect_int "accept" (sys kernel proc S.Accept [ K.Int srv ]) in
  ignore (expect_int "send" (sys kernel proc S.Sendto [ K.Int cli; K.Buf (Bytes.of_string "ping") ]));
  let b = expect_buf "recv" (sys kernel proc S.Recvfrom [ K.Int conn; K.Int 16 ]) in
  Alcotest.(check bytes) "payload" (Bytes.of_string "ping") b;
  ignore (expect_int "reply" (sys kernel proc S.Sendto [ K.Int conn; K.Buf (Bytes.of_string "pong") ]));
  let b2 = expect_buf "recv reply" (sys kernel proc S.Recvfrom [ K.Int cli; K.Int 16 ]) in
  Alcotest.(check bytes) "reply" (Bytes.of_string "pong") b2;
  expect_err "connect refused" K.ECONNREFUSED
    (sys kernel proc S.Connect
       [ K.Int (expect_int "s3" (sys kernel proc S.Socket [ K.Int 2; K.Int 1; K.Int 0 ])); K.Int 9999 ])

let test_sys_pipe () =
  let kernel, proc = boot_native () in
  let pair = expect_int "pipe" (sys kernel proc S.Pipe []) in
  let r = pair land 0xffff and w = pair lsr 16 in
  ignore (expect_int "write" (sys kernel proc S.Write [ K.Int w; K.Buf (Bytes.of_string "through the pipe") ]));
  let b = expect_buf "read" (sys kernel proc S.Read [ K.Int r; K.Int 7 ]) in
  Alcotest.(check bytes) "fifo order" (Bytes.of_string "through") b;
  expect_err "write to read end" K.EBADF (sys kernel proc S.Write [ K.Int r; K.Buf Bytes.empty ])

let test_sys_socketpair () =
  let kernel, proc = boot_native () in
  let pair = expect_int "socketpair" (sys kernel proc S.Socketpair []) in
  let a = pair land 0xffff and b = pair lsr 16 in
  ignore (expect_int "send" (sys kernel proc S.Sendto [ K.Int a; K.Buf (Bytes.of_string "hi") ]));
  let got = expect_buf "recv" (sys kernel proc S.Recvfrom [ K.Int b; K.Int 8 ]) in
  Alcotest.(check bytes) "paired" (Bytes.of_string "hi") got

(* --- misc syscalls --- *)

let test_sys_ids_and_misc () =
  let kernel, proc = boot_native () in
  Alcotest.(check int) "getpid" proc.Guest_kernel.Process.pid
    (expect_int "gp" (sys kernel proc S.Getpid []));
  ignore (expect_int "setuid" (sys kernel proc S.Setuid [ K.Int 1000 ]));
  Alcotest.(check int) "getuid" 1000 (expect_int "gu" (sys kernel proc S.Getuid []));
  let u = expect_buf "uname" (sys kernel proc S.Uname []) in
  Alcotest.(check bool) "uname mentions the kernel" true
    (String.length (Bytes.to_string u) > 0);
  let r = expect_buf "getrandom" (sys kernel proc S.Getrandom [ K.Int 16 ]) in
  Alcotest.(check int) "entropy" 16 (Bytes.length r);
  expect_err "poll unimplemented" K.ENOSYS (sys kernel proc S.Poll [ K.Int 0 ]);
  let child = expect_int "fork" (sys kernel proc S.Fork []) in
  Alcotest.(check bool) "child exists" true (Kern.proc kernel child <> None)

let test_sendfile () =
  let kernel, proc = boot_native () in
  let src = expect_int "src" (sys kernel proc S.Open [ K.Str "/tmp/src"; K.Int 0x42; K.Int 0o644 ]) in
  ignore (sys kernel proc S.Write [ K.Int src; K.Buf (Bytes.of_string "payload") ]);
  ignore (sys kernel proc S.Lseek [ K.Int src; K.Int 0; K.Int 0 ]);
  let dst = expect_int "dst" (sys kernel proc S.Open [ K.Str "/tmp/dst"; K.Int 0x42; K.Int 0o644 ]) in
  Alcotest.(check int) "sendfile bytes" 7
    (expect_int "sf" (sys kernel proc S.Sendfile [ K.Int dst; K.Int src; K.Int 64 ]));
  (match Fs.read_at (Kern.fs kernel) "/tmp/dst" ~pos:0 ~len:7 with
  | Ok b -> Alcotest.(check bytes) "copied" (Bytes.of_string "payload") b
  | Error _ -> Alcotest.fail "dst read")

(* --- audit --- *)

let test_audit_rules_and_emit () =
  let kernel, proc = boot_native () in
  let audit = Kern.audit kernel in
  Guest_kernel.Audit.set_rules audit [ S.Open; S.Unlink ];
  ignore (sys kernel proc S.Open [ K.Str "/tmp/audited"; K.Int 0x42; K.Int 0o644 ]);
  ignore (sys kernel proc S.Getpid []) (* not in ruleset *);
  ignore (sys kernel proc S.Unlink [ K.Str "/tmp/audited" ]);
  Alcotest.(check int) "two records" 2 (Guest_kernel.Audit.count audit);
  let lines = List.map Guest_kernel.Audit.to_line (Guest_kernel.Audit.records audit) in
  Alcotest.(check bool) "record names the syscall" true
    (String.length (List.hd lines) > 0
    && String.length (List.nth lines 1) > 0
    &&
    let has_sub s sub =
      let n = String.length sub in
      let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
      go 0
    in
    has_sub (List.hd lines) "syscall=open" && has_sub (List.nth lines 1) "syscall=unlink")

let test_audit_tamper_unprotected () =
  let kernel, proc = boot_native () in
  Guest_kernel.Audit.set_rules (Kern.audit kernel) [ S.Open ];
  ignore (sys kernel proc S.Open [ K.Str "/tmp/t"; K.Int 0x42; K.Int 0o644 ]);
  (* in a native CVM the in-kernel buffer is tamperable — the gap
     VeilS-LOG closes *)
  Alcotest.(check bool) "tampered" true
    (Guest_kernel.Audit.tamper (Kern.audit kernel) ~seq:1 ~detail:"forged")

(* --- modules (native path) --- *)

let test_module_load_native () =
  let kernel, _ = boot_native () in
  let img = Guest_kernel.Kmodule.build (Kern.rng kernel) ~name:"m" ~text_size:4728 ~data_size:512
      ~symbols:[ "ksym_0"; "ksym_5" ] in
  (match Kern.load_module kernel img with
  | Error e -> Alcotest.(check string) "unsigned rejected" "module signature invalid" e
  | Ok _ -> Alcotest.fail "unsigned module accepted");
  Kern.vendor_sign_module kernel img;
  (match Kern.load_module kernel img with
  | Ok loaded ->
      Alcotest.(check bool) "installed" true loaded.Guest_kernel.Kmodule.installed;
      Alcotest.(check int) "in-memory size (pages)" (8192 + 4096)
        (Guest_kernel.Kmodule.installed_size loaded);
      Alcotest.(check bool) "registered" true (Kern.find_module kernel "m" <> None)
  | Error e -> Alcotest.fail e);
  (match Kern.unload_module kernel "m" with Ok () -> () | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "unregistered" true (Kern.find_module kernel "m" = None);
  (match Kern.unload_module kernel "m" with Error _ -> () | Ok () -> Alcotest.fail "double unload")

let test_module_bad_signature () =
  let kernel, _ = boot_native () in
  let img = Guest_kernel.Kmodule.build (Kern.rng kernel) ~name:"evil" ~text_size:4096 ~data_size:0
      ~symbols:[] in
  Kern.vendor_sign_module kernel img;
  (* tamper after signing: TOCTOU attempt *)
  Bytes.set img.Guest_kernel.Kmodule.text 100 '\xcc';
  match Kern.load_module kernel img with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "tampered module accepted"

(* --- frame allocator --- *)

let test_frame_allocator () =
  let kernel, _ = boot_native () in
  let a = Kern.alloc_frame kernel in
  let b = Kern.alloc_frame kernel in
  Alcotest.(check bool) "distinct" true (a <> b);
  let free0 = Kern.frames_free kernel in
  Kern.free_frame kernel a;
  Alcotest.(check int) "freed returns" (free0 + 1) (Kern.frames_free kernel);
  Alcotest.(check int) "reuse freed frame" a (Kern.alloc_frame kernel)

let fs_random_ops =
  QCheck.Test.make ~name:"fs random create/write/read consistency" ~count:30
    (QCheck.make QCheck.Gen.(list_size (1 -- 30) (pair (1 -- 8) (bytes_size (0 -- 100)))))
    (fun ops ->
      let fs = Fs.create (Veil_crypto.Rng.create 9) in
      let model : (string, bytes) Hashtbl.t = Hashtbl.create 8 in
      List.iter
        (fun (slot, data) ->
          let path = Printf.sprintf "/tmp/file%d" slot in
          if not (Fs.exists fs path) then ignore (Fs.create_file fs path ~mode:0o644);
          ignore (Fs.write_at fs path ~pos:0 data);
          ignore (Fs.truncate fs path (Bytes.length data));
          Hashtbl.replace model path data)
        ops;
      Hashtbl.fold
        (fun path data acc ->
          acc
          &&
          match Fs.read_at fs path ~pos:0 ~len:(max 1 (Bytes.length data)) with
          | Ok b -> Bytes.equal b data
          | Error _ -> Bytes.length data = 0)
        model true)

let suite =
  [
    ("sysno table", `Quick, test_sysno_table);
    ("fs basic io", `Quick, test_fs_basic);
    ("fs tree operations", `Quick, test_fs_tree_ops);
    ("fs devices", `Quick, test_fs_devices);
    q fs_random_ops;
    ("sys file io", `Quick, test_sys_file_io);
    ("sys open flags", `Quick, test_sys_open_flags);
    ("sys append mode", `Quick, test_sys_append_mode);
    ("sys dir ops + cwd", `Quick, test_sys_dir_ops);
    ("sys dup shares offset", `Quick, test_sys_dup);
    ("sys mmap/mprotect/munmap", `Quick, test_sys_mmap);
    ("sys brk", `Quick, test_sys_brk);
    ("sys sockets", `Quick, test_sys_sockets);
    ("sys pipe", `Quick, test_sys_pipe);
    ("sys socketpair", `Quick, test_sys_socketpair);
    ("sys ids/misc/fork", `Quick, test_sys_ids_and_misc);
    ("sys sendfile", `Quick, test_sendfile);
    ("audit rules + records", `Quick, test_audit_rules_and_emit);
    ("audit tamperable without Veil", `Quick, test_audit_tamper_unprotected);
    ("module load/unload native", `Quick, test_module_load_native);
    ("module TOCTOU signature", `Quick, test_module_bad_signature);
    ("frame allocator", `Quick, test_frame_allocator);
  ]
