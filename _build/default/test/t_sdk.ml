(* Enclave SDK tests: syscall specs, sanitizer, allocator, runtime. *)

module S = Guest_kernel.Sysno
module K = Guest_kernel.Ktypes
module Spec = Enclave_sdk.Spec
module Dl = Enclave_sdk.Dlmalloc
module Rt = Enclave_sdk.Runtime

let q = QCheck_alcotest.to_alcotest

(* --- Spec --- *)

let test_spec_coverage () =
  Alcotest.(check int) "one spec per syscall" S.count (List.length Spec.all);
  Alcotest.(check int) "85 supported (§7)" 85 Spec.supported_count;
  Alcotest.(check int) "11 unsupported" 11 (List.length Spec.unsupported);
  (* the unsupported ones are the process/signal/wait family *)
  List.iter
    (fun sys ->
      Alcotest.(check bool) (S.to_string sys) true (List.mem sys Spec.unsupported))
    [ S.Fork; S.Clone; S.Vfork; S.Execve; S.Wait4; S.Kill; S.Poll; S.Select; S.Futex ]

let test_spec_validate () =
  let spec = Spec.spec_of S.Open in
  Alcotest.(check bool) "valid open args" true
    (Spec.validate_args spec [ K.Str "/x"; K.Int 0; K.Int 0 ] = Ok ());
  Alcotest.(check bool) "wrong type rejected" true
    (Result.is_error (Spec.validate_args spec [ K.Int 1; K.Int 0; K.Int 0 ]));
  Alcotest.(check bool) "missing args rejected" true
    (Result.is_error (Spec.validate_args spec [ K.Str "/x" ]));
  Alcotest.(check bool) "extra args rejected" true
    (Result.is_error (Spec.validate_args spec [ K.Str "/x"; K.Int 0; K.Int 0; K.Int 9 ]));
  (* negative read length fails the len_out shape *)
  Alcotest.(check bool) "negative length rejected" true
    (Result.is_error (Spec.validate_args (Spec.spec_of S.Read) [ K.Int 3; K.Int (-1) ]));
  (* ioctl's trailing args are opaque *)
  Alcotest.(check bool) "ioctl rest" true
    (Spec.validate_args (Spec.spec_of S.Ioctl) [ K.Int 3; K.Int 1; K.Buf Bytes.empty; K.Int 1; K.Int 2 ]
    = Ok ())

let test_spec_copy_sizes () =
  let w = Spec.spec_of S.Write in
  Alcotest.(check int) "write copies fd + buffer" (8 + 100)
    (Spec.copy_in_bytes w [ K.Int 3; K.Buf (Bytes.create 100) ]);
  let o = Spec.spec_of S.Open in
  Alcotest.(check int) "open copies path NUL-terminated" (5 + 8 + 8)
    (Spec.copy_in_bytes o [ K.Str "/tmp"; K.Int 0; K.Int 0 ]);
  Alcotest.(check int) "rbuf out" 64 (Spec.copy_out_bytes (K.RBuf (Bytes.create 64)));
  Alcotest.(check int) "scalar out" 8 (Spec.copy_out_bytes (K.RInt 1))

let test_sanitizer_iago () =
  let mmap = Spec.spec_of S.Mmap in
  let lo = Guest_kernel.Process.enclave_base in
  let hi = lo + (32 * Sevsnp.Types.page_size) in
  Alcotest.(check bool) "pointer outside enclave ok" true
    (Enclave_sdk.Sanitizer.iago_check mmap (K.RInt Guest_kernel.Process.mmap_base) ~enclave_lo:lo
       ~enclave_hi:hi
    = Ok ());
  Alcotest.(check bool) "pointer into enclave rejected" true
    (Result.is_error
       (Enclave_sdk.Sanitizer.iago_check mmap (K.RInt (lo + 4096)) ~enclave_lo:lo ~enclave_hi:hi));
  Alcotest.(check bool) "unaligned mmap result rejected" true
    (Result.is_error (Enclave_sdk.Sanitizer.iago_check mmap (K.RInt 0x1234567) ~enclave_lo:lo ~enclave_hi:hi));
  (* non-address returns unaffected *)
  let read = Spec.spec_of S.Read in
  Alcotest.(check bool) "read buffers pass" true
    (Enclave_sdk.Sanitizer.iago_check read (K.RBuf (Bytes.create 8)) ~enclave_lo:lo ~enclave_hi:hi = Ok ());
  Alcotest.(check bool) "documented refinements exist" true
    (List.length Enclave_sdk.Sanitizer.refinements >= 5)

(* --- Dlmalloc --- *)

let test_dlmalloc_basic () =
  let h = Dl.create ~base:0x1000 ~size:4096 in
  let a = Option.get (Dl.malloc h 100) in
  let b = Option.get (Dl.malloc h 200) in
  Alcotest.(check bool) "aligned" true (a mod 16 = 0 && b mod 16 = 0);
  Alcotest.(check bool) "disjoint" true (b >= a + 100 || a >= b + 200);
  Dl.free h a;
  let c = Option.get (Dl.malloc h 50) in
  Alcotest.(check int) "freed space reused" a c;
  Alcotest.check_raises "double free"
    (Invalid_argument (Printf.sprintf "Dlmalloc.free: 0x%x is not a live allocation" a))
    (fun () ->
      Dl.free h a;
      Dl.free h a)

let test_dlmalloc_exhaustion () =
  let h = Dl.create ~base:0x1000 ~size:256 in
  Alcotest.(check bool) "fits" true (Dl.malloc h 200 <> None);
  Alcotest.(check (option int)) "exhausted" None (Dl.malloc h 200);
  Alcotest.(check (option int)) "zero-size returns None" None (Dl.malloc h 0)

let test_dlmalloc_coalescing () =
  let h = Dl.create ~base:0x1000 ~size:1024 in
  let blocks = List.init 4 (fun _ -> Option.get (Dl.malloc h 256 |> fun x -> if x = None then Dl.malloc h 240 else x)) in
  List.iter (Dl.free h) blocks;
  Alcotest.(check bool) "fully coalesced: big alloc fits again" true (Dl.malloc h 1000 <> None)

let dlmalloc_model =
  QCheck.Test.make ~name:"dlmalloc random ops keep invariants" ~count:60
    (QCheck.make QCheck.Gen.(list_size (1 -- 80) (pair bool (1 -- 300))))
    (fun ops ->
      let h = Dl.create ~base:0x4000 ~size:8192 in
      let live = ref [] in
      List.iter
        (fun (do_free, size) ->
          if do_free && !live <> [] then begin
            let a = List.hd !live in
            live := List.tl !live;
            Dl.free h a
          end
          else begin
            match Dl.malloc h size with Some a -> live := !live @ [ a ] | None -> ()
          end)
        ops;
      Dl.check_invariants h)

let dlmalloc_no_overlap =
  QCheck.Test.make ~name:"dlmalloc live blocks never overlap" ~count:60
    (QCheck.make QCheck.Gen.(list_size (1 -- 40) (1 -- 200)))
    (fun sizes ->
      let h = Dl.create ~base:0x4000 ~size:16384 in
      let blocks = List.filter_map (fun s -> Option.map (fun a -> (a, s)) (Dl.malloc h s)) sizes in
      List.for_all
        (fun (a, sa) ->
          List.for_all (fun (b, sb) -> a = b || a + sa <= b || b + sb <= a) blocks)
        blocks)

(* --- Runtime --- *)

let boot () = Veil_core.Boot.boot_veil ~npages:2048 ~seed:29 ()

let mk_rt sys =
  let proc = Guest_kernel.Kernel.spawn sys.Veil_core.Boot.kernel in
  match Rt.create sys ~binary:(Bytes.make 6000 'R') proc with
  | Ok rt -> rt
  | Error e -> Alcotest.fail e

let test_runtime_ocall_file () =
  let sys = boot () in
  let rt = mk_rt sys in
  Rt.run rt (fun rt ->
      match Enclave_sdk.Libc.open_ rt "/tmp/rt.txt" ~flags:(Enclave_sdk.Libc.o_creat lor Enclave_sdk.Libc.o_rdwr) ~mode:0o600 with
      | Error e -> Alcotest.failf "open: %s" (K.errno_to_string e)
      | Ok fd ->
          (match Enclave_sdk.Libc.write rt fd (Bytes.of_string "written from the enclave") with
          | Ok 24 -> ()
          | _ -> Alcotest.fail "write");
          ignore (Enclave_sdk.Libc.lseek rt fd 0 K.SEEK_SET);
          (match Enclave_sdk.Libc.read rt fd 7 with
          | Ok b -> Alcotest.(check bytes) "read back" (Bytes.of_string "written") b
          | Error _ -> Alcotest.fail "read");
          ignore (Enclave_sdk.Libc.close rt fd));
  let st = Rt.stats rt in
  Alcotest.(check bool) "ocalls counted" true (st.Rt.ocalls >= 4);
  Alcotest.(check bool) "each ocall exits once" true (st.Rt.enclave_exits >= st.Rt.ocalls);
  Alcotest.(check bool) "redirect work accounted" true (st.Rt.redirect_cycles > 0 && st.Rt.redirect_bytes > 0);
  Alcotest.(check int) "exit cycles = 14270/ocall-pair" (st.Rt.enclave_exits + st.Rt.enclave_entries)
    (st.Rt.exit_cycles / 7135)

let test_runtime_unsupported_kills () =
  let sys = boot () in
  let rt = mk_rt sys in
  (try
     Rt.run rt (fun rt -> ignore (Rt.ocall rt S.Fork []));
     Alcotest.fail "fork must kill the enclave"
   with Rt.Enclave_killed _ -> ());
  Alcotest.(check bool) "left the enclave" false (Rt.inside rt);
  (* a killed enclave cannot be re-entered *)
  try
    Rt.run rt (fun _ -> ());
    Alcotest.fail "killed enclave re-entered"
  with Rt.Enclave_killed _ -> ()

let test_runtime_bad_args_einval () =
  let sys = boot () in
  let rt = mk_rt sys in
  Rt.run rt (fun rt ->
      match Rt.ocall rt S.Open [ K.Int 1 ] with
      | K.RErr K.EINVAL -> ()
      | r -> Alcotest.failf "expected EINVAL, got %a" K.pp_ret r)

let test_runtime_iago_on_mmap () =
  let sys = boot () in
  let rt = mk_rt sys in
  Rt.run rt (fun rt ->
      (* normal mmap returns an address outside the enclave *)
      match Enclave_sdk.Libc.mmap rt ~len:8192 ~prot:3 with
      | Ok va ->
          let lo, hi = Rt.enclave_range rt in
          Alcotest.(check bool) "outside enclave" true (va + 8192 <= lo || va >= hi)
      | Error e -> Alcotest.failf "mmap: %s" (K.errno_to_string e))

let test_runtime_malloc () =
  let sys = boot () in
  let rt = mk_rt sys in
  Rt.run rt (fun rt ->
      let a = Option.get (Rt.malloc rt 256) in
      let lo, hi = Rt.enclave_range rt in
      Alcotest.(check bool) "heap inside enclave" true (a >= lo && a < hi);
      Rt.write_data rt ~va:a (Bytes.of_string "malloc'd");
      Alcotest.(check bytes) "usable" (Bytes.of_string "malloc'd") (Rt.read_data rt ~va:a ~len:8);
      Rt.free rt a)

let test_runtime_sockets_via_libc () =
  let sys = boot () in
  (* server runs natively, client inside the enclave *)
  let kernel = sys.Veil_core.Boot.kernel in
  let sproc = Guest_kernel.Kernel.spawn kernel in
  let sysn s a = Guest_kernel.Kernel.invoke kernel sproc s a in
  let srv = match sysn S.Socket [ K.Int 2; K.Int 1; K.Int 0 ] with K.RInt n -> n | _ -> Alcotest.fail "s" in
  ignore (sysn S.Bind [ K.Int srv; K.Int 4242 ]);
  ignore (sysn S.Listen [ K.Int srv; K.Int 4 ]);
  let rt = mk_rt sys in
  Rt.run rt (fun rt ->
      let fd = match Enclave_sdk.Libc.socket rt with Ok n -> n | Error _ -> Alcotest.fail "socket" in
      (match Enclave_sdk.Libc.connect rt fd ~port:4242 with Ok () -> () | Error _ -> Alcotest.fail "connect");
      (match Enclave_sdk.Libc.send rt fd (Bytes.of_string "from enclave") with
      | Ok 12 -> ()
      | _ -> Alcotest.fail "send"));
  let conn = match sysn S.Accept [ K.Int srv ] with K.RInt n -> n | _ -> Alcotest.fail "accept" in
  match sysn S.Recvfrom [ K.Int conn; K.Int 64 ] with
  | K.RBuf b -> Alcotest.(check bytes) "received" (Bytes.of_string "from enclave") b
  | r -> Alcotest.failf "recv: %a" K.pp_ret r

let test_runtime_printf_console () =
  let sys = boot () in
  let rt = mk_rt sys in
  Rt.run rt (fun rt -> Enclave_sdk.Libc.printf rt "value=%d\n" 42);
  let console = Guest_kernel.Fs.console_output (Guest_kernel.Kernel.fs sys.Veil_core.Boot.kernel) in
  Alcotest.(check string) "console output" "value=42\n" console

let suite =
  [
    ("spec covers all 96 calls / 85 supported", `Quick, test_spec_coverage);
    ("spec argument validation", `Quick, test_spec_validate);
    ("spec copy sizes", `Quick, test_spec_copy_sizes);
    ("sanitizer IAGO checks", `Quick, test_sanitizer_iago);
    ("dlmalloc basics", `Quick, test_dlmalloc_basic);
    ("dlmalloc exhaustion", `Quick, test_dlmalloc_exhaustion);
    ("dlmalloc coalescing", `Quick, test_dlmalloc_coalescing);
    q dlmalloc_model;
    q dlmalloc_no_overlap;
    ("runtime ocall file io + accounting", `Quick, test_runtime_ocall_file);
    ("runtime unsupported call kills enclave", `Quick, test_runtime_unsupported_kills);
    ("runtime bad args -> EINVAL", `Quick, test_runtime_bad_args_einval);
    ("runtime IAGO-checked mmap", `Quick, test_runtime_iago_on_mmap);
    ("runtime in-enclave malloc", `Quick, test_runtime_malloc);
    ("runtime sockets via libc", `Quick, test_runtime_sockets_via_libc);
    ("runtime printf to console", `Quick, test_runtime_printf_console);
  ]
