(* LTP-style syscall robustness results (§7 / experiment E11). *)

module S = Guest_kernel.Sysno
module L = Enclave_sdk.Ltp

let boot () = Veil_core.Boot.boot_veil ~npages:4096 ~seed:37 ()

let results = lazy (L.run_all (boot ()))

let test_shape () =
  let summary = L.summarize (Lazy.force results) in
  Alcotest.(check int) "96 calls exercised" 96 summary.L.calls_total;
  (* the paper's prototype passes all robustness cases for 85/96 *)
  Alcotest.(check int) "85 calls pass their whole battery" 85 summary.L.calls_all_passed;
  Alcotest.(check bool) "hundreds of cases" true (summary.L.cases_total > 200)

let test_unsupported_fail_everything () =
  List.iter
    (fun r ->
      if List.mem r.L.lsys Enclave_sdk.Spec.unsupported then begin
        Alcotest.(check bool) (S.to_string r.L.lsys ^ " killed the enclave") true r.L.killed;
        Alcotest.(check int) (S.to_string r.L.lsys ^ " passes nothing") 0 r.L.passed
      end)
    (Lazy.force results)

let test_supported_all_pass () =
  List.iter
    (fun r ->
      if not (List.mem r.L.lsys Enclave_sdk.Spec.unsupported) then
        Alcotest.(check int)
          (Printf.sprintf "%s passes %d/%d" (S.to_string r.L.lsys) r.L.passed r.L.total)
          r.L.total r.L.passed)
    (Lazy.force results)

let suite =
  [
    ("85/96 calls pass (paper §7)", `Slow, test_shape);
    ("unsupported calls kill the enclave", `Slow, test_unsupported_fail_everything);
    ("supported calls pass their batteries", `Slow, test_supported_all_pass);
  ]
