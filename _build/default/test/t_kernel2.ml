(* Deeper kernel semantics: path resolution corner cases, pipe/socket
   end-of-stream behaviour, memory-mapping contents, permission bits,
   and cross-run determinism of the whole simulator. *)

module K = Guest_kernel.Ktypes
module S = Guest_kernel.Sysno
module Kern = Guest_kernel.Kernel
module Fs = Guest_kernel.Fs

let boot () =
  let n = Veil_core.Boot.boot_native ~npages:2048 ~seed:91 () in
  let kernel = n.Veil_core.Boot.n_kernel in
  (kernel, Kern.spawn kernel)

let sys kernel proc s a = Kern.invoke kernel proc s a

let fd_of msg = function K.RInt n -> n | r -> Alcotest.failf "%s: %a" msg K.pp_ret r

let test_symlink_chain_and_loop () =
  let kernel, proc = boot () in
  ignore (sys kernel proc S.Creat [ K.Str "/tmp/real"; K.Int 0o644 ]);
  ignore (sys kernel proc S.Symlink [ K.Str "/tmp/real"; K.Str "/tmp/l1" ]);
  ignore (sys kernel proc S.Symlink [ K.Str "/tmp/l1"; K.Str "/tmp/l2" ]);
  ignore (sys kernel proc S.Symlink [ K.Str "/tmp/l2"; K.Str "/tmp/l3" ]);
  (match sys kernel proc S.Open [ K.Str "/tmp/l3"; K.Int 1; K.Int 0 ] with
  | K.RInt fd -> ignore (sys kernel proc S.Write [ K.Int fd; K.Buf (Bytes.of_string "via chain") ])
  | r -> Alcotest.failf "open through chain: %a" K.pp_ret r);
  (match Fs.read_at (Kern.fs kernel) "/tmp/real" ~pos:0 ~len:9 with
  | Ok b -> Alcotest.(check bytes) "chain resolves to the target" (Bytes.of_string "via chain") b
  | Error _ -> Alcotest.fail "target unreadable");
  (* a loop must terminate with an error, not hang *)
  ignore (sys kernel proc S.Symlink [ K.Str "/tmp/loopB"; K.Str "/tmp/loopA" ]);
  ignore (sys kernel proc S.Symlink [ K.Str "/tmp/loopA"; K.Str "/tmp/loopB" ]);
  match sys kernel proc S.Open [ K.Str "/tmp/loopA"; K.Int 0; K.Int 0 ] with
  | K.RErr _ -> ()
  | r -> Alcotest.failf "loop: %a" K.pp_ret r

let test_pipe_eof_and_epipe () =
  let kernel, proc = boot () in
  let pair = fd_of "pipe" (sys kernel proc S.Pipe []) in
  let r = pair land 0xffff and w = pair lsr 16 in
  ignore (sys kernel proc S.Write [ K.Int w; K.Buf (Bytes.of_string "last") ]);
  ignore (sys kernel proc S.Close [ K.Int w ]);
  (* buffered data still readable after the writer closes... *)
  (match sys kernel proc S.Read [ K.Int r; K.Int 4 ] with
  | K.RBuf b -> Alcotest.(check bytes) "drains buffer" (Bytes.of_string "last") b
  | x -> Alcotest.failf "read: %a" K.pp_ret x);
  ignore (sys kernel proc S.Close [ K.Int r ])

let test_socket_shutdown_semantics () =
  let kernel, proc = boot () in
  let srv = fd_of "s" (sys kernel proc S.Socket [ K.Int 2; K.Int 1; K.Int 0 ]) in
  ignore (sys kernel proc S.Bind [ K.Int srv; K.Int 9100 ]);
  ignore (sys kernel proc S.Listen [ K.Int srv; K.Int 2 ]);
  let cli = fd_of "c" (sys kernel proc S.Socket [ K.Int 2; K.Int 1; K.Int 0 ]) in
  ignore (sys kernel proc S.Connect [ K.Int cli; K.Int 9100 ]);
  let conn = fd_of "a" (sys kernel proc S.Accept [ K.Int srv ]) in
  ignore (sys kernel proc S.Sendto [ K.Int cli; K.Buf (Bytes.of_string "bye") ]);
  ignore (sys kernel proc S.Shutdown [ K.Int cli ]);
  (* queued data still delivered, then EOF (empty, not EAGAIN) *)
  (match sys kernel proc S.Recvfrom [ K.Int conn; K.Int 16 ] with
  | K.RBuf b -> Alcotest.(check bytes) "delivers queued" (Bytes.of_string "bye") b
  | r -> Alcotest.failf "recv: %a" K.pp_ret r);
  (match sys kernel proc S.Recvfrom [ K.Int conn; K.Int 16 ] with
  | K.RBuf b when Bytes.length b = 0 -> ()
  | r -> Alcotest.failf "expected EOF, got %a" K.pp_ret r);
  (* sending into a shut-down peer fails *)
  match sys kernel proc S.Sendto [ K.Int conn; K.Buf (Bytes.of_string "x") ] with
  | K.RErr K.EPIPE -> ()
  | r -> Alcotest.failf "expected EPIPE, got %a" K.pp_ret r

let test_mmap_file_backed_contents () =
  let kernel, proc = boot () in
  let fd = fd_of "o" (sys kernel proc S.Open [ K.Str "/tmp/src"; K.Int 0x42; K.Int 0o644 ]) in
  ignore (sys kernel proc S.Write [ K.Int fd; K.Buf (Bytes.of_string "mapped file contents") ]);
  let va =
    fd_of "mmap" (sys kernel proc S.Mmap [ K.Int 0; K.Int 4096; K.Int 3; K.Int 2; K.Int fd; K.Int 0 ])
  in
  (* the mapping observes the file data through the process tables *)
  Alcotest.(check bytes) "file data visible" (Bytes.of_string "mapped file")
    (Kern.read_user kernel proc ~va ~len:11)

let test_umask_applies () =
  let kernel, proc = boot () in
  ignore (sys kernel proc S.Umask [ K.Int 0o077 ]);
  ignore (sys kernel proc S.Creat [ K.Str "/tmp/masked"; K.Int 0o666 ]);
  match sys kernel proc S.Stat [ K.Str "/tmp/masked" ] with
  | K.RStat st -> Alcotest.(check int) "mode masked" 0o600 (st.K.st_mode land 0o777)
  | r -> Alcotest.failf "stat: %a" K.pp_ret r

let test_hard_link_survives_unlink () =
  let kernel, proc = boot () in
  let fd = fd_of "o" (sys kernel proc S.Open [ K.Str "/tmp/orig"; K.Int 0x42; K.Int 0o644 ]) in
  ignore (sys kernel proc S.Write [ K.Int fd; K.Buf (Bytes.of_string "durable") ]);
  ignore (sys kernel proc S.Link [ K.Str "/tmp/orig"; K.Str "/tmp/alias" ]);
  ignore (sys kernel proc S.Unlink [ K.Str "/tmp/orig" ]);
  match Fs.read_at (Kern.fs kernel) "/tmp/alias" ~pos:0 ~len:7 with
  | Ok b -> Alcotest.(check bytes) "alias keeps the data" (Bytes.of_string "durable") b
  | Error _ -> Alcotest.fail "alias lost"

let test_getdents_reflects_changes () =
  let kernel, proc = boot () in
  ignore (sys kernel proc S.Mkdir [ K.Str "/tmp/dir"; K.Int 0o755 ]);
  ignore (sys kernel proc S.Creat [ K.Str "/tmp/dir/one"; K.Int 0o644 ]);
  ignore (sys kernel proc S.Creat [ K.Str "/tmp/dir/two"; K.Int 0o644 ]);
  let dirfd = fd_of "od" (sys kernel proc S.Open [ K.Str "/tmp/dir"; K.Int 0; K.Int 0 ]) in
  (match sys kernel proc S.Getdents [ K.Int dirfd ] with
  | K.RBuf b -> Alcotest.(check string) "listing" "one\ntwo" (Bytes.to_string b)
  | r -> Alcotest.failf "getdents: %a" K.pp_ret r);
  ignore (sys kernel proc S.Unlink [ K.Str "/tmp/dir/one" ]);
  match sys kernel proc S.Getdents [ K.Int dirfd ] with
  | K.RBuf b -> Alcotest.(check string) "after unlink" "two" (Bytes.to_string b)
  | r -> Alcotest.failf "getdents2: %a" K.pp_ret r

let test_fd_isolation_between_processes () =
  let kernel, p1 = boot () in
  let p2 = Kern.spawn kernel in
  let fd = fd_of "o" (sys kernel p1 S.Open [ K.Str "/tmp/p1-only"; K.Int 0x42; K.Int 0o644 ]) in
  (* the same fd number means nothing in another process *)
  match sys kernel p2 S.Read [ K.Int fd; K.Int 4 ] with
  | K.RErr K.EBADF -> ()
  | r -> Alcotest.failf "expected EBADF across processes, got %a" K.pp_ret r

let test_brk_contents_zeroed_on_regrow () =
  let kernel, proc = boot () in
  let base = fd_of "brk" (sys kernel proc S.Brk [ K.Int 0 ]) in
  ignore (sys kernel proc S.Brk [ K.Int (base + 4096) ]);
  Kern.write_user kernel proc ~va:base (Bytes.of_string "dirty");
  ignore (sys kernel proc S.Brk [ K.Int base ]) (* shrink: frame freed *);
  ignore (sys kernel proc S.Brk [ K.Int (base + 4096) ]) (* regrow *);
  Alcotest.(check bytes) "fresh pages are zero" (Bytes.make 5 '\000')
    (Kern.read_user kernel proc ~va:base ~len:5)

(* --- cross-run determinism of the whole stack --- *)

let test_simulation_deterministic () =
  let run () =
    let s = Workloads.Driver.run ~npages:2048 ~seed:101 Workloads.Driver.Enclave (Workloads.Crypto_w.mbedtls ~tests:24 ()) in
    (s.Workloads.Driver.cycles, s.Workloads.Driver.syscalls, s.Workloads.Driver.vm_exits)
  in
  let a = run () and b = run () in
  Alcotest.(check (triple int int int)) "bit-identical replay" a b

let suite =
  [
    ("symlink chains and loops", `Quick, test_symlink_chain_and_loop);
    ("pipe close semantics", `Quick, test_pipe_eof_and_epipe);
    ("socket shutdown semantics", `Quick, test_socket_shutdown_semantics);
    ("mmap file-backed contents", `Quick, test_mmap_file_backed_contents);
    ("umask applies to creat", `Quick, test_umask_applies);
    ("hard link survives unlink", `Quick, test_hard_link_survives_unlink);
    ("getdents reflects changes", `Quick, test_getdents_reflects_changes);
    ("fd tables are per-process", `Quick, test_fd_isolation_between_processes);
    ("brk regrow zeroes pages", `Quick, test_brk_contents_zeroed_on_regrow);
    ("whole-simulation determinism", `Slow, test_simulation_deterministic);
  ]
