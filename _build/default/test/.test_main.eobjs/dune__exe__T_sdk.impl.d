test/t_sdk.ml: Alcotest Bytes Enclave_sdk Guest_kernel List Option Printf QCheck QCheck_alcotest Result Sevsnp Veil_core
