test/t_engines.ml: Alcotest Bytes Guest_kernel Hashtbl List Printf QCheck QCheck_alcotest Veil_core Veil_crypto Workloads
