test/t_kernel2.ml: Alcotest Bytes Guest_kernel Veil_core Workloads
