test/t_crypto.ml: Alcotest Bignum Bytes Chacha20 Char Dh Gen Group Hmac List Measurement Option Printf QCheck QCheck_alcotest Rng Schnorr Sha256 String Veil_crypto
