test/t_sevsnp.ml: Alcotest Bytes Hypervisor List Option QCheck QCheck_alcotest Sevsnp
