test/t_kernel.ml: Alcotest Bytes Guest_kernel Hashtbl List Option Printf QCheck QCheck_alcotest String Veil_core Veil_crypto
