test/t_props.ml: Array Bytes Enclave_sdk Guest_kernel Hashtbl List Printf QCheck QCheck_alcotest Sevsnp Veil_core
