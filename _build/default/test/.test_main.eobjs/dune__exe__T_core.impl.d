test/t_core.ml: Alcotest Bytes Char Enclave_sdk Guest_kernel List Option Printf Sevsnp String Veil_core Veil_crypto
