test/t_future.ml: Alcotest Bytes Enclave_sdk Guest_kernel List Option Printf Result Sevsnp String Veil_core
