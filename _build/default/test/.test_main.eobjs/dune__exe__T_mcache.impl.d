test/t_mcache.ml: Alcotest Bytes Hashtbl List Printf QCheck QCheck_alcotest Workloads
