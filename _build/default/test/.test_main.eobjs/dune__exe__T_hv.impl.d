test/t_hv.ml: Alcotest Bytes Enclave_sdk Guest_kernel Hypervisor List Option Sevsnp Veil_core
