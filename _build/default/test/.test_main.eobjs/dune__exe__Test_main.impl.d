test/test_main.ml: Alcotest T_attacks T_core T_crypto T_engines T_extensions T_facade T_future T_hv T_kernel T_kernel2 T_ltp T_mcache T_props T_sched T_sdk T_sevsnp T_workloads
