test/t_ltp.ml: Alcotest Enclave_sdk Guest_kernel Lazy List Printf Veil_core
