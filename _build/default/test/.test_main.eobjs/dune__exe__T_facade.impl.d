test/t_facade.ml: Alcotest Bytes Guest_kernel List Sevsnp String Veil_core
