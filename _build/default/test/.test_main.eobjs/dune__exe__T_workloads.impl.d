test/t_workloads.ml: Alcotest Bytes Enclave_sdk Float Guest_kernel List Printf QCheck QCheck_alcotest String Veil_core Veil_crypto Workloads
