test/t_extensions.ml: Alcotest Bytes Enclave_sdk Format Guest_kernel List Option Printf Sevsnp String Veil_core
