test/t_sched.ml: Alcotest Buffer Bytes Format Guest_kernel Printf Veil_core
