test/t_attacks.ml: Alcotest List Veil_attacks
