bench/main.mli:
