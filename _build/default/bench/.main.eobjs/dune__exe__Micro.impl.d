bench/micro.ml: Analyze Bechamel Benchmark Bytes Hashtbl Instance Lazy Measure Printf Sevsnp Staged String Test Time Toolkit Veil_core Veil_crypto Workloads
