bench/experiments.ml: Bytes Enclave_sdk Guest_kernel List Option Printf Result Sevsnp String Veil_attacks Veil_core Workloads
