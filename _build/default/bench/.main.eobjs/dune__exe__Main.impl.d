bench/main.ml: Array Experiments Micro Sys
