(* Bechamel wall-clock micro-benchmarks of the simulator's hot
   primitives — one Test.make per table/figure-critical operation, all
   registered in one executable per the project layout. *)

open Bechamel
open Toolkit

let sha_buf = Bytes.make 4096 'x'

let test_sha256 =
  Test.make ~name:"crypto/sha256-4k"
    (Staged.stage (fun () -> ignore (Veil_crypto.Sha256.digest_bytes sha_buf)))

let chacha_key = Bytes.make 32 'k'
let chacha_nonce = Bytes.make 12 'n'

let test_chacha =
  Test.make ~name:"crypto/chacha20-4k"
    (Staged.stage (fun () ->
         ignore (Veil_crypto.Chacha20.encrypt ~key:chacha_key ~nonce:chacha_nonce sha_buf)))

let bignum_group = lazy (Veil_crypto.Group.default ())

let test_powmod =
  Test.make ~name:"crypto/powmod-96bit"
    (Staged.stage (fun () ->
         let g = Lazy.force bignum_group in
         ignore
           (Veil_crypto.Bignum.powmod ~base:g.Veil_crypto.Group.g ~exp:g.Veil_crypto.Group.q
              ~modulus:g.Veil_crypto.Group.p)))

(* E2's subject: a full OS->VeilMon->OS round trip on a live system *)
let switch_sys = lazy (Veil_core.Boot.boot_veil ~npages:2048 ~seed:19 ())

let test_domain_switch =
  Test.make ~name:"veil/domain-switch-roundtrip"
    (Staged.stage (fun () ->
         let sys = Lazy.force switch_sys in
         Veil_core.Monitor.domain_switch sys.Veil_core.Boot.mon sys.Veil_core.Boot.vcpu
           ~target:Veil_core.Privdom.Mon;
         Veil_core.Monitor.domain_switch sys.Veil_core.Boot.mon sys.Veil_core.Boot.vcpu
           ~target:Veil_core.Privdom.Unt))

let test_os_call =
  Test.make ~name:"veil/os-call-pvalidate"
    (Staged.stage (fun () ->
         let sys = Lazy.force switch_sys in
         ignore
           (Veil_core.Monitor.os_call sys.Veil_core.Boot.mon sys.Veil_core.Boot.vcpu
              (Veil_core.Idcb.R_pvalidate { gpfn = 1200; to_private = true }))))

let test_rmpadjust =
  Test.make ~name:"sevsnp/rmpadjust"
    (Staged.stage (fun () ->
         let sys = Lazy.force switch_sys in
         Veil_core.Monitor.domain_switch sys.Veil_core.Boot.mon sys.Veil_core.Boot.vcpu
           ~target:Veil_core.Privdom.Mon;
         ignore
           (Sevsnp.Platform.rmpadjust sys.Veil_core.Boot.platform sys.Veil_core.Boot.vcpu ~gpfn:1300
              ~target:Sevsnp.Types.Vmpl3 ~perms:Sevsnp.Perm.all ~vmsa:false ());
         Veil_core.Monitor.domain_switch sys.Veil_core.Boot.mon sys.Veil_core.Boot.vcpu
           ~target:Veil_core.Privdom.Unt))

let lzss_input = lazy (Workloads.Textgen.text (Veil_crypto.Rng.create 5) 4096)

let test_deflate =
  Test.make ~name:"workloads/deflate-4k"
    (Staged.stage (fun () -> ignore (Workloads.Deflate.compress (Lazy.force lzss_input))))

let mcache_inst = lazy (
  let m = Workloads.Mcache.create () in
  for i = 0 to 63 do
    Workloads.Mcache.set m ~key:(string_of_int i) ~value:(Bytes.make 100 'v') ()
  done;
  m)

let test_mcache =
  Test.make ~name:"workloads/mcache-get-set"
    (Staged.stage (fun () ->
         let m = Lazy.force mcache_inst in
         Workloads.Mcache.set m ~key:"7" ~value:(Bytes.make 100 'w') ();
         ignore (Workloads.Mcache.get m "7")))

let test_lzss =
  Test.make ~name:"workloads/lzss-4k"
    (Staged.stage (fun () -> ignore (Workloads.Lzss.compress (Lazy.force lzss_input))))

let test_huffman =
  Test.make ~name:"workloads/huffman-4k"
    (Staged.stage (fun () -> ignore (Workloads.Huffman.encode (Lazy.force lzss_input))))

let all_tests =
  Test.make_grouped ~name:"veil-micro"
    [ test_sha256; test_chacha; test_powmod; test_domain_switch; test_os_call; test_rmpadjust;
      test_lzss; test_huffman; test_deflate; test_mcache ]

let run () =
  print_endline (String.make 78 '-');
  print_endline "Bechamel micro-benchmarks (host wall-clock of simulator primitives)";
  print_endline (String.make 78 '-');
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:(Some 1000) () in
  let raw = Benchmark.all cfg instances all_tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> Printf.printf "  %-34s %12.0f ns/run\n" name est
      | _ -> Printf.printf "  %-34s (no estimate)\n" name)
    results
