(* Shielded key-value service: the paper's motivating scenario — a
   program handling personally-identifiable information runs inside a
   VeilS-ENC enclave while ordinary programs keep native CVM speed.

   A client talks to the enclave-protected store over the guest's
   loopback network; values are sealed inside enclave memory, and
   demand paging (encrypt-on-evict, verify-on-restore) lets the OS
   manage memory without ever seeing plaintext.

   Run with: dune exec examples/shielded_kv.exe *)

module Boot = Veil_core.Boot
module Rt = Enclave_sdk.Runtime
module Libc = Enclave_sdk.Libc
module K = Guest_kernel.Ktypes
module S = Guest_kernel.Sysno

let step fmt = Printf.printf ("\n== " ^^ fmt ^^ "\n%!")

let () =
  step "boot + enclave setup";
  let sys = Boot.boot_veil () in
  let kernel = sys.Boot.kernel in
  let proc = Guest_kernel.Kernel.spawn kernel in
  let rt =
    match Rt.create sys ~heap_pages:20 ~binary:(Bytes.make 6000 'S') proc with
    | Ok rt -> rt
    | Error e -> failwith e
  in

  (* The store lives in enclave heap memory: a tiny slot table of
     (key hash, value va) pairs managed with the in-enclave allocator. *)
  let slots : (string, int * int) Hashtbl.t = Hashtbl.create 16 in
  let put rt key value =
    let va = Option.get (Rt.malloc rt (Bytes.length value)) in
    Rt.write_data rt ~va value;
    Hashtbl.replace slots key (va, Bytes.length value)
  in
  let get rt key =
    Option.map (fun (va, len) -> Rt.read_data rt ~va ~len) (Hashtbl.find_opt slots key)
  in

  step "the enclave serves PUT/GET requests from a local client socket";
  let client_fd = ref (-1) in
  let cproc = Guest_kernel.Kernel.spawn kernel in
  let csys s a = Guest_kernel.Kernel.invoke kernel cproc s a in
  Rt.run rt (fun rt ->
      (* server socket inside the enclave (via redirected syscalls) *)
      let srv = Result.get_ok (Libc.socket rt) in
      ignore (Rt.ocall rt S.Bind [ K.Int srv; K.Int 5555 ]);
      ignore (Rt.ocall rt S.Listen [ K.Int srv; K.Int 4 ]);
      (* client connects from the untrusted side *)
      (match csys S.Socket [ K.Int 2; K.Int 1; K.Int 0 ] with
      | K.RInt fd ->
          client_fd := fd;
          ignore (csys S.Connect [ K.Int fd; K.Int 5555 ])
      | _ -> failwith "client socket");
      let conn = match Rt.ocall rt S.Accept [ K.Int srv ] with K.RInt c -> c | _ -> failwith "accept" in
      let requests =
        [ "PUT alice ssn=078-05-1120"; "PUT bob ssn=219-09-9999"; "GET alice"; "GET carol" ]
      in
      List.iter
        (fun req ->
          ignore (csys S.Sendto [ K.Int !client_fd; K.Buf (Bytes.of_string req) ]);
          (match Rt.ocall rt S.Recvfrom [ K.Int conn; K.Int 256 ] with
          | K.RBuf b -> (
              match String.split_on_char ' ' (Bytes.to_string b) with
              | [ "PUT"; key; value ] ->
                  put rt key (Bytes.of_string value);
                  ignore (Rt.ocall rt S.Sendto [ K.Int conn; K.Buf (Bytes.of_string "STORED") ])
              | [ "GET"; key ] ->
                  let reply =
                    match get rt key with
                    | Some v -> Bytes.cat (Bytes.of_string "VALUE ") v
                    | None -> Bytes.of_string "MISS"
                  in
                  ignore (Rt.ocall rt S.Sendto [ K.Int conn; K.Buf reply ])
              | _ -> ())
          | _ -> ());
          match csys S.Recvfrom [ K.Int !client_fd; K.Int 256 ] with
          | K.RBuf reply -> Printf.printf "   %-28s -> %s\n" req (Bytes.to_string reply)
          | _ -> ())
        requests);

  step "the OS evicts an enclave heap page under memory pressure";
  let enclave = Rt.enclave rt in
  let heap_va = Rt.heap_base rt in
  let id = Veil_core.Encsvc.enclave_id enclave in
  let frame = Option.get (Veil_core.Encsvc.resident_frame enclave heap_va) in
  (match
     Veil_core.Monitor.os_call sys.Boot.mon sys.Boot.vcpu
       (Veil_core.Idcb.R_enclave_evict { enclave_id = id; va = heap_va })
   with
  | Veil_core.Idcb.Resp_ok -> print_endline "   page encrypted + integrity-hashed, handed to the OS"
  | r -> ignore r);
  let ciphertext =
    Sevsnp.Platform.read sys.Boot.platform sys.Boot.vcpu (Sevsnp.Types.gpa_of_gpfn frame) 24
  in
  Printf.printf "   what the OS sees on the evicted page: %s...\n"
    (Veil_crypto.Sha256.hex_of_digest (Bytes.sub ciphertext 0 12));

  step "the OS pages it back in; VeilS-ENC verifies integrity + freshness";
  (match
     Veil_core.Monitor.os_call sys.Boot.mon sys.Boot.vcpu
       (Veil_core.Idcb.R_enclave_restore { enclave_id = id; va = heap_va; gpfn = frame })
   with
  | Veil_core.Idcb.Resp_ok -> print_endline "   page restored and remapped in the protected tables"
  | Veil_core.Idcb.Resp_error e -> failwith e
  | _ -> ());
  Rt.run rt (fun rt ->
      match get rt "alice" with
      | Some v -> Printf.printf "   GET alice after paging: %s\n" (Bytes.to_string v)
      | None -> failwith "lost alice");
  print_endline "\nshielded_kv complete: plaintext PII never left Dom_ENC."
