examples/kernel_hardening.mli:
