examples/quickstart.ml: Bytes Char Enclave_sdk Format Guest_kernel Option Printf Sevsnp String Veil_core Veil_crypto
