examples/kernel_hardening.ml: Bytes Format Guest_kernel List Printf Sevsnp Veil_core
