examples/audit_forensics.ml: Bytes Guest_kernel List Printf Sevsnp String Veil_core Veil_crypto
