examples/tiered_security.mli:
