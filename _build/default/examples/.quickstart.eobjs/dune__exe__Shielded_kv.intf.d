examples/shielded_kv.mli:
