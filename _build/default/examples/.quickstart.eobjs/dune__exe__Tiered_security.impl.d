examples/tiered_security.ml: Array Bytes Enclave_sdk Guest_kernel List Option Printf Sevsnp String Veil_core Veil_crypto
