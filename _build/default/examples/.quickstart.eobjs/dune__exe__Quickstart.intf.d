examples/quickstart.mli:
