examples/shielded_kv.ml: Bytes Enclave_sdk Guest_kernel Hashtbl List Option Printf Result Sevsnp String Veil_core Veil_crypto
