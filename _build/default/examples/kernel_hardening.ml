(* Kernel code integrity with VeilS-KCI: the W^X sweep, the
   TOCTOU-free signed module load path, and what happens when an
   attacker with a kernel write gadget tries anyway (§6.1, §8.3).

   Run with: dune exec examples/kernel_hardening.exe *)

module Boot = Veil_core.Boot
module Kern = Guest_kernel.Kernel

let step fmt = Printf.printf ("\n== " ^^ fmt ^^ "\n%!")

let () =
  step "boot with VeilS-KCI active: kernel text is W^X under the RMP";
  let sys = Boot.boot_veil () in
  let kernel = sys.Boot.kernel in
  let text_frame = sys.Boot.layout.Veil_core.Layout.kernel_text.Veil_core.Layout.lo in
  let p = Sevsnp.Rmp.perms_of sys.Boot.platform.Sevsnp.Platform.rmp text_frame Sevsnp.Types.Vmpl3 in
  Printf.printf "   kernel text perms at Dom_UNT: %s (r, supervisor-exec, never w)\n"
    (Format.asprintf "%a" Sevsnp.Perm.pp p);

  step "a vendor-signed driver is loaded through the protected service";
  let img =
    Guest_kernel.Kmodule.build (Kern.rng kernel) ~name:"nic-driver" ~text_size:4728 ~data_size:14000
      ~symbols:[ "ksym_0"; "ksym_7" ]
  in
  Kern.vendor_sign_module kernel img;
  let loaded =
    match Kern.load_module kernel img with Ok l -> l | Error e -> failwith e
  in
  Printf.printf "   installed at 0x%x (%d KB in memory), text write-protected by RMPADJUST\n"
    loaded.Guest_kernel.Kmodule.load_address
    (Guest_kernel.Kmodule.installed_size loaded / 1024);

  step "TOCTOU attempt: tamper with a signed module after signing";
  let evil =
    Guest_kernel.Kmodule.build (Kern.rng kernel) ~name:"evil" ~text_size:4096 ~data_size:0 ~symbols:[]
  in
  Kern.vendor_sign_module kernel evil;
  Bytes.set evil.Guest_kernel.Kmodule.text 64 '\xcc' (* patched after the signature *);
  (match Kern.load_module kernel evil with
  | Error e -> Printf.printf "   rejected by VeilS-KCI: %s\n" e
  | Ok _ -> print_endline "   !!! tampered module accepted (must never print)");

  step "unsigned module";
  let unsigned =
    Guest_kernel.Kmodule.build (Kern.rng kernel) ~name:"unsigned" ~text_size:4096 ~data_size:0
      ~symbols:[]
  in
  (match Kern.load_module kernel unsigned with
  | Error e -> Printf.printf "   rejected: %s\n" e
  | Ok _ -> print_endline "   !!! unsigned module accepted (must never print)");

  step "§8.3 validation: write gadget vs the installed driver's text";
  let victim = List.hd loaded.Guest_kernel.Kmodule.text_gpfns in
  (try
     Sevsnp.Platform.write sys.Boot.platform sys.Boot.vcpu
       (Sevsnp.Types.gpa_of_gpfn victim)
       (Bytes.of_string "\xeb\xfe") (* jmp $ — classic code patch *);
     print_endline "   !!! module text overwritten (must never print)"
   with Sevsnp.Types.Npf info ->
     Printf.printf "   %s\n" (Format.asprintf "blocked: %a" Sevsnp.Types.pp_npf info));
  Printf.printf "\nkernel_hardening complete: only approved code ever runs in CPL-0.\n";
  Printf.printf "(KCI stats: %d loaded, %d rejected)\n"
    (Veil_core.Kci.stats sys.Boot.kci).Veil_core.Kci.modules_loaded
    (Veil_core.Kci.stats sys.Boot.kci).Veil_core.Kci.rejected
