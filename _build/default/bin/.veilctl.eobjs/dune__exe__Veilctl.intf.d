bin/veilctl.mli:
