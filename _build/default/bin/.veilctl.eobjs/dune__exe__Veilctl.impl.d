bin/veilctl.ml: Arg Bytes Cmd Cmdliner Enclave_sdk Format Guest_kernel Hypervisor List Option Printf Sevsnp String Term Veil_attacks Veil_core Veil_crypto Workloads
