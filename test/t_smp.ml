(* Veil-SMP tests: AP bring-up through the monitor, the deterministic
   interleaver, per-VCPU runqueues with work stealing, and the
   distributed TLB-shootdown IPI cost model. *)

module K = Guest_kernel.Ktypes
module S = Guest_kernel.Sysno
module Kern = Guest_kernel.Kernel
module Sched = Guest_kernel.Sched
module Smp = Veil_core.Smp
module B = Veil_core.Boot
module P = Sevsnp.Platform
module V = Sevsnp.Vcpu
module C = Sevsnp.Cycles
module T = Sevsnp.Types
module Hv = Hypervisor.Hv

let boot () = B.boot_veil ~npages:2048 ~seed:7 ()

(* --- AP bring-up is a monitored §5 delegation --- *)

let test_bring_up () =
  let sys = boot () in
  let smp = Smp.bring_up sys ~nvcpus:4 () in
  Alcotest.(check int) "nvcpus" 4 (Smp.nvcpus smp);
  Alcotest.(check int) "hardware vcpus hot-plugged" 4 (P.vcpu_count sys.B.platform);
  let m = Veil_core.Monitor.stats sys.B.mon in
  Alcotest.(check int) "3 delegated boots" 3 m.Veil_core.Monitor.delegated_vcpu_boots;
  for i = 0 to 3 do
    Alcotest.(check int) (Printf.sprintf "vcpu %d id" i) i (Smp.vcpu smp i).V.id
  done;
  (* every AP boots at VMPL-3 (Dom_UNT), like the paper's §5.3 *)
  for i = 1 to 3 do
    Alcotest.(check bool)
      (Printf.sprintf "ap %d at vmpl3" i)
      true
      (V.vmpl (Smp.vcpu smp i) = T.Vmpl3)
  done;
  (* pinned workers really execute on their APs: each one makes
     syscalls and the cycles land on that AP's own counter *)
  let kernel = sys.B.kernel in
  let before = Array.init 4 (fun i -> C.total (Smp.vcpu smp i).V.counter) in
  for w = 0 to 3 do
    Smp.spawn ~vcpu:w smp
      ~name:(Printf.sprintf "worker-%d" w)
      (fun () ->
        let proc = Kern.spawn kernel in
        for _ = 1 to 5 do
          (match Kern.invoke kernel proc S.Getpid [] with
          | K.RInt _ -> ()
          | r -> Alcotest.failf "getpid: %a" K.pp_ret r);
          Sched.yield ()
        done)
  done;
  Smp.run smp;
  for i = 0 to 3 do
    Alcotest.(check bool)
      (Printf.sprintf "vcpu %d accrued cycles" i)
      true
      (C.total (Smp.vcpu smp i).V.counter > before.(i))
  done;
  (* Smp.run always hands the kernel back to the boot VCPU *)
  Alcotest.(check int) "kernel back on boot vcpu" 0 (Kern.vcpu kernel).V.id

let test_bring_up_refusals () =
  let sys = boot () in
  let hooks = Kern.hooks sys.B.kernel in
  let expect_err label id =
    match hooks.Guest_kernel.Hooks.h_vcpu_boot ~vcpu_id:id with
    | Error _ -> ()
    | Ok () -> Alcotest.failf "%s: vcpu_id %d accepted" label id
  in
  (* the id is OS-provided data: the monitor sanitizes it *)
  expect_err "id 0 is the boot vcpu" 0;
  expect_err "negative id" (-1);
  expect_err "id past the idcb slots" 8;
  expect_err "id skips ahead" 2;
  (* a legitimate boot, then a duplicate of the same id *)
  (match hooks.Guest_kernel.Hooks.h_vcpu_boot ~vcpu_id:1 with
  | Ok () -> ()
  | Error e -> Alcotest.failf "ap 1: %s" e);
  expect_err "duplicate id" 1;
  Alcotest.(check int) "only one ap plugged" 2 (P.vcpu_count sys.B.platform);
  (* bring_up surfaces a monitor refusal as Failure, not a hang *)
  match Smp.bring_up (boot ()) ~nvcpus:9 () with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "nvcpus=9 must exceed the idcb region's slots"

(* --- per-VCPU runqueues steal work deterministically --- *)

let test_work_stealing () =
  let sys = boot () in
  let smp = Smp.bring_up sys ~nvcpus:2 () in
  let done_ = ref 0 and flag = ref false in
  (* VCPU 1's own queue holds only a blocked waiter, so every step the
     interleaver grants it must be served by stealing runnable work
     from VCPU 0's overloaded queue. *)
  Smp.spawn ~vcpu:1 smp ~name:"waiter" (fun () ->
      Sched.block_until (fun () -> !flag);
      incr done_);
  for i = 0 to 6 do
    Smp.spawn ~vcpu:0 smp
      ~name:(Printf.sprintf "pinned-%d" i)
      (fun () ->
        for _ = 1 to 4 do
          Sched.yield ()
        done;
        if i = 6 then flag := true;
        incr done_)
  done;
  Smp.run smp;
  Alcotest.(check int) "all tasks finished" 8 !done_;
  Alcotest.(check bool) "idle vcpu stole work" true (Smp.steals smp > 0);
  Alcotest.(check bool) "journal one digit per step" true
    (String.length (Smp.journal smp) = Smp.schedule_steps smp)

(* --- the interleaver schedule is a pure function of the seed --- *)

let run_seeded seed =
  let sys = boot () in
  let smp = Smp.bring_up ~policy:(Hv.Interleave.Seeded seed) sys ~nvcpus:4 () in
  let acc = ref 0 in
  for w = 0 to 3 do
    Smp.spawn ~vcpu:w smp
      ~name:(Printf.sprintf "t-%d" w)
      (fun () ->
        for _ = 1 to 8 do
          acc := (!acc * 31) + w;
          Sched.yield ()
        done)
  done;
  Smp.run smp;
  (Smp.journal smp, !acc)

let test_determinism () =
  let j1, a1 = run_seeded 1234 in
  let j2, a2 = run_seeded 1234 in
  Alcotest.(check string) "same seed, same schedule" j1 j2;
  Alcotest.(check int) "same seed, same interleaving result" a1 a2;
  let j3, _ = run_seeded 99 in
  Alcotest.(check bool) "different seed, different schedule" true (j1 <> j3)

(* --- distributed TLB shootdown: costs and staleness --- *)

let test_tlb_shootdown () =
  let sys = boot () in
  let smp = Smp.bring_up sys ~nvcpus:3 () in
  let platform = sys.B.platform in
  let initiator = Smp.vcpu smp 0 in
  (* warm an AP's TLB with a fabricated translation *)
  let tlb1 = (Smp.vcpu smp 1).V.tlb in
  let e = Sevsnp.Tlb.probe tlb1 ~vapage:5 ~root:3 in
  Sevsnp.Tlb.fill tlb1 e ~vapage:5 ~root:3 ~gpfn:42 ~flags:1 ~rmp:0;
  Alcotest.(check bool) "entry cached" true (Sevsnp.Tlb.is_hit tlb1 e ~vapage:5 ~root:3);
  let before = Array.init 3 (fun i -> C.read_bucket (Smp.vcpu smp i).V.counter C.Kernel) in
  P.tlb_shootdown_distributed platform ~initiator;
  let delta i = C.read_bucket (Smp.vcpu smp i).V.counter C.Kernel - before.(i) in
  (* initiator: local flush + send/ack per remote; remotes: one handler *)
  Alcotest.(check int) "initiator cost"
    (C.tlb_local_flush + (2 * (C.ipi_send + C.ipi_ack)))
    (delta 0);
  Alcotest.(check int) "remote 1 handler cost" C.ipi_handler (delta 1);
  Alcotest.(check int) "remote 2 handler cost" C.ipi_handler (delta 2);
  Alcotest.(check bool) "remote entry invalidated" false
    (Sevsnp.Tlb.is_hit tlb1 e ~vapage:5 ~root:3)

let test_single_vcpu_shootdown_unchanged () =
  (* with one VCPU the distributed model degenerates to the pre-SMP
     flat local-flush charge: the single-VCPU E2/E3 numbers depend on
     this *)
  let sys = boot () in
  let vcpu = sys.B.vcpu in
  let before = C.read_bucket vcpu.V.counter C.Kernel in
  P.tlb_shootdown_distributed sys.B.platform ~initiator:vcpu;
  Alcotest.(check int) "exactly the flat 500-cycle flush" C.tlb_local_flush
    (C.read_bucket vcpu.V.counter C.Kernel - before)

let test_ipi_charges () =
  let sys = boot () in
  let smp = Smp.bring_up sys ~nvcpus:2 () in
  let a = Smp.vcpu smp 0 and b = Smp.vcpu smp 1 in
  let ka = C.read_bucket a.V.counter C.Kernel and kb = C.read_bucket b.V.counter C.Kernel in
  Sevsnp.Ipi.send ~initiator:a ~target:b Sevsnp.Ipi.Reschedule;
  Alcotest.(check int) "initiator pays send+ack" (C.ipi_send + C.ipi_ack)
    (C.read_bucket a.V.counter C.Kernel - ka);
  Alcotest.(check int) "target pays the handler" C.ipi_handler
    (C.read_bucket b.V.counter C.Kernel - kb)

(* --- the malicious-hypervisor AP-start oracle stays blocked --- *)

let test_ap_attack_blocked () =
  let atk =
    match
      List.find_opt
        (fun a -> Veil_attacks.Attacks.name a = "ap-start-tampered-vmsa")
        (Veil_attacks.Attacks.all ())
    with
    | Some a -> a
    | None -> Alcotest.fail "ap-start-tampered-vmsa missing from the suite"
  in
  let o = Veil_attacks.Attacks.run atk in
  Alcotest.(check bool)
    (Printf.sprintf "blocked (%s)" (Veil_attacks.Attacks.outcome_to_string o))
    true
    (Veil_attacks.Attacks.is_blocked o)

let suite =
  [
    ("ap bring-up via monitor", `Quick, test_bring_up);
    ("ap bring-up refusals", `Quick, test_bring_up_refusals);
    ("work stealing", `Quick, test_work_stealing);
    ("seeded interleave determinism", `Quick, test_determinism);
    ("distributed tlb shootdown", `Quick, test_tlb_shootdown);
    ("single-vcpu shootdown unchanged", `Quick, test_single_vcpu_shootdown_unchanged);
    ("ipi cost split", `Quick, test_ipi_charges);
    ("ap-start attack blocked", `Quick, test_ap_attack_blocked);
  ]
