(* Veil-SMP tests: AP bring-up through the monitor, the deterministic
   interleaver, per-VCPU runqueues with work stealing, and the
   distributed TLB-shootdown IPI cost model. *)

module K = Guest_kernel.Ktypes
module S = Guest_kernel.Sysno
module Kern = Guest_kernel.Kernel
module Sched = Guest_kernel.Sched
module Smp = Veil_core.Smp
module B = Veil_core.Boot
module P = Sevsnp.Platform
module V = Sevsnp.Vcpu
module C = Sevsnp.Cycles
module T = Sevsnp.Types
module Hv = Hypervisor.Hv

let boot () = B.boot_veil ~npages:2048 ~seed:7 ()

(* --- AP bring-up is a monitored §5 delegation --- *)

let test_bring_up () =
  let sys = boot () in
  let smp = Smp.bring_up sys ~nvcpus:4 () in
  Alcotest.(check int) "nvcpus" 4 (Smp.nvcpus smp);
  Alcotest.(check int) "hardware vcpus hot-plugged" 4 (P.vcpu_count sys.B.platform);
  let m = Veil_core.Monitor.stats sys.B.mon in
  Alcotest.(check int) "3 delegated boots" 3 m.Veil_core.Monitor.delegated_vcpu_boots;
  for i = 0 to 3 do
    Alcotest.(check int) (Printf.sprintf "vcpu %d id" i) i (Smp.vcpu smp i).V.id
  done;
  (* every AP boots at VMPL-3 (Dom_UNT), like the paper's §5.3 *)
  for i = 1 to 3 do
    Alcotest.(check bool)
      (Printf.sprintf "ap %d at vmpl3" i)
      true
      (V.vmpl (Smp.vcpu smp i) = T.Vmpl3)
  done;
  (* pinned workers really execute on their APs: each one makes
     syscalls and the cycles land on that AP's own counter *)
  let kernel = sys.B.kernel in
  let before = Array.init 4 (fun i -> C.total (Smp.vcpu smp i).V.counter) in
  for w = 0 to 3 do
    Smp.spawn ~vcpu:w smp
      ~name:(Printf.sprintf "worker-%d" w)
      (fun () ->
        let proc = Kern.spawn kernel in
        for _ = 1 to 5 do
          (match Kern.invoke kernel proc S.Getpid [] with
          | K.RInt _ -> ()
          | r -> Alcotest.failf "getpid: %a" K.pp_ret r);
          Sched.yield ()
        done)
  done;
  Smp.run smp;
  for i = 0 to 3 do
    Alcotest.(check bool)
      (Printf.sprintf "vcpu %d accrued cycles" i)
      true
      (C.total (Smp.vcpu smp i).V.counter > before.(i))
  done;
  (* Smp.run always hands the kernel back to the boot VCPU *)
  Alcotest.(check int) "kernel back on boot vcpu" 0 (Kern.vcpu kernel).V.id

let test_bring_up_refusals () =
  let sys = boot () in
  let hooks = Kern.hooks sys.B.kernel in
  let expect_err label id =
    match hooks.Guest_kernel.Hooks.h_vcpu_boot ~vcpu_id:id with
    | Error _ -> ()
    | Ok () -> Alcotest.failf "%s: vcpu_id %d accepted" label id
  in
  (* the id is OS-provided data: the monitor sanitizes it *)
  expect_err "id 0 is the boot vcpu" 0;
  expect_err "negative id" (-1);
  expect_err "id past the idcb slots" 8;
  expect_err "id skips ahead" 2;
  (* a legitimate boot, then a duplicate of the same id *)
  (match hooks.Guest_kernel.Hooks.h_vcpu_boot ~vcpu_id:1 with
  | Ok () -> ()
  | Error e -> Alcotest.failf "ap 1: %s" e);
  expect_err "duplicate id" 1;
  Alcotest.(check int) "only one ap plugged" 2 (P.vcpu_count sys.B.platform);
  (* bring_up surfaces a monitor refusal as Failure, not a hang *)
  match Smp.bring_up (boot ()) ~nvcpus:9 () with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "nvcpus=9 must exceed the idcb region's slots"

(* --- per-VCPU runqueues steal work deterministically --- *)

let test_work_stealing () =
  let sys = boot () in
  let smp = Smp.bring_up sys ~nvcpus:2 () in
  let done_ = ref 0 and flag = ref false in
  (* VCPU 1's own queue holds only a blocked waiter, so every step the
     interleaver grants it must be served by stealing runnable work
     from VCPU 0's overloaded queue. *)
  Smp.spawn ~vcpu:1 smp ~name:"waiter" (fun () ->
      Sched.block_until (fun () -> !flag);
      incr done_);
  for i = 0 to 6 do
    Smp.spawn ~vcpu:0 smp
      ~name:(Printf.sprintf "pinned-%d" i)
      (fun () ->
        for _ = 1 to 4 do
          Sched.yield ()
        done;
        if i = 6 then flag := true;
        incr done_)
  done;
  Smp.run smp;
  Alcotest.(check int) "all tasks finished" 8 !done_;
  Alcotest.(check bool) "idle vcpu stole work" true (Smp.steals smp > 0);
  Alcotest.(check bool) "journal one digit per step" true
    (String.length (Smp.journal smp) = Smp.schedule_steps smp)

(* --- the interleaver schedule is a pure function of the seed --- *)

let run_seeded seed =
  let sys = boot () in
  let smp = Smp.bring_up ~policy:(Hv.Interleave.Seeded seed) sys ~nvcpus:4 () in
  let acc = ref 0 in
  for w = 0 to 3 do
    Smp.spawn ~vcpu:w smp
      ~name:(Printf.sprintf "t-%d" w)
      (fun () ->
        for _ = 1 to 8 do
          acc := (!acc * 31) + w;
          Sched.yield ()
        done)
  done;
  Smp.run smp;
  (Smp.journal smp, !acc)

let test_determinism () =
  let j1, a1 = run_seeded 1234 in
  let j2, a2 = run_seeded 1234 in
  Alcotest.(check string) "same seed, same schedule" j1 j2;
  Alcotest.(check int) "same seed, same interleaving result" a1 a2;
  let j3, _ = run_seeded 99 in
  Alcotest.(check bool) "different seed, different schedule" true (j1 <> j3)

(* --- the schedule watchdog: Smp.run ?max_steps (ISSUE 9) --- *)

let test_run_step_budget_watchdog () =
  let sys = boot () in
  let smp = Smp.bring_up sys ~nvcpus:2 () in
  let spins = ref 0 in
  Smp.spawn ~vcpu:0 smp ~name:"spinner" (fun () ->
      while true do
        incr spins;
        Sched.yield ()
      done);
  (try
     Smp.run ~max_steps:64 smp;
     Alcotest.fail "runaway schedule not stopped"
   with T.Cvm_halted msg ->
     (* the "chaos watchdog" prefix is what maps this halt to the
        Watchdog class in the shared chaos/explore classifier *)
     Alcotest.(check bool) "classifiable as a watchdog trip" true
       (String.length msg >= 14 && String.sub msg 0 14 = "chaos watchdog"));
  Alcotest.(check bool) "stopped at the budget" true (!spins <= 64);
  Alcotest.(check bool) "budget actually consumed" true (!spins > 32)

(* --- distributed TLB shootdown: costs and staleness --- *)

let test_tlb_shootdown () =
  let sys = boot () in
  let smp = Smp.bring_up sys ~nvcpus:3 () in
  let platform = sys.B.platform in
  let initiator = Smp.vcpu smp 0 in
  (* warm an AP's TLB with a fabricated translation *)
  let tlb1 = (Smp.vcpu smp 1).V.tlb in
  let e = Sevsnp.Tlb.probe tlb1 ~vapage:5 ~root:3 in
  Sevsnp.Tlb.fill tlb1 e ~vapage:5 ~root:3 ~gpfn:42 ~flags:1 ~rmp:0;
  Alcotest.(check bool) "entry cached" true (Sevsnp.Tlb.is_hit tlb1 e ~vapage:5 ~root:3);
  let before = Array.init 3 (fun i -> C.read_bucket (Smp.vcpu smp i).V.counter C.Kernel) in
  P.tlb_shootdown_distributed platform ~initiator;
  let delta i = C.read_bucket (Smp.vcpu smp i).V.counter C.Kernel - before.(i) in
  (* initiator: local flush + send/ack per remote; remotes: one handler *)
  Alcotest.(check int) "initiator cost"
    (C.tlb_local_flush + (2 * (C.ipi_send + C.ipi_ack)))
    (delta 0);
  Alcotest.(check int) "remote 1 handler cost" C.ipi_handler (delta 1);
  Alcotest.(check int) "remote 2 handler cost" C.ipi_handler (delta 2);
  Alcotest.(check bool) "remote entry invalidated" false
    (Sevsnp.Tlb.is_hit tlb1 e ~vapage:5 ~root:3)

let test_single_vcpu_shootdown_unchanged () =
  (* with one VCPU the distributed model degenerates to the pre-SMP
     flat local-flush charge: the single-VCPU E2/E3 numbers depend on
     this *)
  let sys = boot () in
  let vcpu = sys.B.vcpu in
  let before = C.read_bucket vcpu.V.counter C.Kernel in
  P.tlb_shootdown_distributed sys.B.platform ~initiator:vcpu;
  Alcotest.(check int) "exactly the flat 500-cycle flush" C.tlb_local_flush
    (C.read_bucket vcpu.V.counter C.Kernel - before)

let test_ipi_charges () =
  let sys = boot () in
  let smp = Smp.bring_up sys ~nvcpus:2 () in
  let a = Smp.vcpu smp 0 and b = Smp.vcpu smp 1 in
  let ka = C.read_bucket a.V.counter C.Kernel and kb = C.read_bucket b.V.counter C.Kernel in
  Sevsnp.Ipi.send ~initiator:a ~target:b Sevsnp.Ipi.Reschedule;
  Alcotest.(check int) "initiator pays send+ack" (C.ipi_send + C.ipi_ack)
    (C.read_bucket a.V.counter C.Kernel - ka);
  Alcotest.(check int) "target pays the handler" C.ipi_handler
    (C.read_bucket b.V.counter C.Kernel - kb)

(* --- Veil-Scope: wait spans and steal counts under the interleaver --- *)

module Tr = Obs.Trace
module Mon = Veil_core.Monitor

(* The work-stealing shape (a blocked waiter on VCPU 1 plus an
   overloaded VCPU 0) with the platform tracer armed: the run must
   leave Runqueue and Blocked_poll wait spans in the ring, and — since
   the schedule is a pure function of policy + seed — the journal, the
   steal count, and the wait-span population must replay identically. *)
let run_traced policy =
  let sys = boot () in
  let smp = Smp.bring_up ~policy sys ~nvcpus:2 () in
  let tr = sys.B.platform.P.tracer in
  Tr.clear tr;
  Tr.set_enabled tr true;
  let done_ = ref 0 and flag = ref false in
  Smp.spawn ~vcpu:1 smp ~name:"waiter" (fun () ->
      Sched.block_until (fun () -> !flag);
      incr done_);
  for i = 0 to 6 do
    Smp.spawn ~vcpu:0 smp
      ~name:(Printf.sprintf "pinned-%d" i)
      (fun () ->
        for _ = 1 to 4 do
          Sched.yield ()
        done;
        if i = 6 then flag := true;
        incr done_)
  done;
  Smp.run smp;
  Tr.set_enabled tr false;
  let count reason =
    List.length
      (List.filter (fun e -> e.Tr.ev_kind = Tr.Wait reason) (Tr.events tr))
  in
  Alcotest.(check int) "all tasks finished" 8 !done_;
  (Smp.journal smp, Smp.steals smp, count Tr.Runqueue, count Tr.Blocked_poll)

let test_wait_spans_under_interleaver () =
  let _, steals, runq, blocked = run_traced Hv.Interleave.Round_robin in
  Alcotest.(check bool) "idle vcpu stole work" true (steals > 0);
  Alcotest.(check bool)
    (Printf.sprintf "runqueue waits recorded (%d)" runq)
    true (runq > 0);
  Alcotest.(check bool)
    (Printf.sprintf "blocked_poll waits recorded (%d)" blocked)
    true (blocked > 0);
  let j1, s1, r1, b1 = run_traced (Hv.Interleave.Seeded 1911) in
  let j2, s2, r2, b2 = run_traced (Hv.Interleave.Seeded 1911) in
  Alcotest.(check string) "replay: identical journal" j1 j2;
  Alcotest.(check int) "replay: identical steals" s1 s2;
  Alcotest.(check int) "replay: identical runqueue spans" r1 r2;
  Alcotest.(check int) "replay: identical blocked spans" b1 b2;
  Alcotest.(check bool) "seeded run also steals" true (s1 > 0)

(* --- Veil-Scope: the serialized-monitor entry ledger --- *)

(* One VCPU: the single-server queue can never see overlapping
   arrivals, so queueing is identically zero while service (busy)
   cycles accrue per request tag. *)
let test_monitor_ledger_single_vcpu () =
  let sys = boot () in
  let smp = Smp.bring_up sys ~nvcpus:1 () in
  let vcpu = Smp.vcpu smp 0 in
  for i = 1 to 5 do
    ignore
      (Mon.os_call sys.B.mon vcpu
         (Veil_core.Idcb.R_tpm_extend { pcr = 0; data = Bytes.make 8 (Char.chr (64 + i)) }))
  done;
  let ws = Mon.wait_stats sys.B.mon in
  Alcotest.(check int) "five ledger entries" 5 ws.Mon.ws_entries;
  Alcotest.(check bool) "service cycles accrue" true (ws.Mon.ws_busy_cycles > 0);
  Alcotest.(check int) "no queueing at 1 vcpu" 0 ws.Mon.ws_queued_cycles;
  match List.find_opt (fun (n, _, _, _) -> n = "tpm_extend") ws.Mon.ws_by_type with
  | Some (_, entries, busy, queued) ->
      Alcotest.(check int) "per-tag entries" 5 entries;
      Alcotest.(check bool) "per-tag busy" true (busy > 0);
      Alcotest.(check int) "per-tag queued" 0 queued
  | None -> Alcotest.fail "tpm_extend missing from ws_by_type"

(* Two VCPUs: advance VCPU 0's clock far ahead so it holds the machine
   clock stationary, then issue back-to-back calls from the AP — the
   second arrives (on the machine clock) inside the first's service
   window and must be charged queueing delay. *)
let test_monitor_ledger_queueing () =
  let sys = boot () in
  let smp = Smp.bring_up sys ~nvcpus:2 () in
  V.charge (Smp.vcpu smp 0) C.Compute 5_000_000;
  let ap = Smp.vcpu smp 1 in
  ignore (Mon.os_call sys.B.mon ap (Veil_core.Idcb.R_tpm_extend { pcr = 1; data = Bytes.make 4 'a' }));
  ignore (Mon.os_call sys.B.mon ap (Veil_core.Idcb.R_tpm_extend { pcr = 1; data = Bytes.make 4 'b' }));
  let ws = Mon.wait_stats sys.B.mon in
  Alcotest.(check int) "two ledger entries" 2 ws.Mon.ws_entries;
  Alcotest.(check bool)
    (Printf.sprintf "second call queued behind the first (%d cycles)" ws.Mon.ws_queued_cycles)
    true
    (ws.Mon.ws_queued_cycles > 0);
  (* the queueing delay is (at most) the first call's service time *)
  Alcotest.(check bool) "queued <= busy" true (ws.Mon.ws_queued_cycles <= ws.Mon.ws_busy_cycles);
  match List.find_opt (fun (n, _, _, _) -> n = "tpm_extend") ws.Mon.ws_by_type with
  | Some (_, entries, _, queued) ->
      Alcotest.(check int) "per-tag entries" 2 entries;
      Alcotest.(check bool) "per-tag queueing attributed" true (queued > 0)
  | None -> Alcotest.fail "tpm_extend missing from ws_by_type"

(* --- the malicious-hypervisor AP-start oracle stays blocked --- *)

let test_ap_attack_blocked () =
  let atk =
    match
      List.find_opt
        (fun a -> Veil_attacks.Attacks.name a = "ap-start-tampered-vmsa")
        (Veil_attacks.Attacks.all ())
    with
    | Some a -> a
    | None -> Alcotest.fail "ap-start-tampered-vmsa missing from the suite"
  in
  let o = Veil_attacks.Attacks.run atk in
  Alcotest.(check bool)
    (Printf.sprintf "blocked (%s)" (Veil_attacks.Attacks.outcome_to_string o))
    true
    (Veil_attacks.Attacks.is_blocked o)

let suite =
  [
    ("ap bring-up via monitor", `Quick, test_bring_up);
    ("ap bring-up refusals", `Quick, test_bring_up_refusals);
    ("work stealing", `Quick, test_work_stealing);
    ("seeded interleave determinism", `Quick, test_determinism);
    ("run ~max_steps trips the schedule watchdog", `Quick, test_run_step_budget_watchdog);
    ("distributed tlb shootdown", `Quick, test_tlb_shootdown);
    ("single-vcpu shootdown unchanged", `Quick, test_single_vcpu_shootdown_unchanged);
    ("ipi cost split", `Quick, test_ipi_charges);
    ("wait spans under the interleaver", `Quick, test_wait_spans_under_interleaver);
    ("monitor ledger: 1 vcpu never queues", `Quick, test_monitor_ledger_single_vcpu);
    ("monitor ledger: overlap queues", `Quick, test_monitor_ledger_queueing);
    ("ap-start attack blocked", `Quick, test_ap_attack_blocked);
  ]
