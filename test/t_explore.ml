(* Veil-Explore tests (ISSUE 9): schedule-tree enumeration over the
   monitor protocols, budget bounding, and the detect -> minimize ->
   replay counterexample pipeline on the test-only weakened guard. *)

module E = Explore
module O = Chaos_outcome

let quick = { E.default_config with E.cf_budget = 48 }

let scenario name =
  match E.find_scenario name with
  | Some sc -> sc
  | None -> Alcotest.failf "scenario %s missing" name

let test_clean_scenario_exhausts () =
  let r = E.explore ~config:{ E.default_config with E.cf_budget = 64 } (scenario "ap-race") in
  Alcotest.(check bool) "no violation" true (r.E.rr_violation = None);
  Alcotest.(check bool) "schedule tree exhausted" true (E.exhausted r);
  Alcotest.(check bool) "nontrivial tree" true (r.E.rr_runs > 10);
  Alcotest.(check (float 0.001)) "full frontier coverage" 1.0 (E.frontier_coverage r)

let test_budget_bound_reported () =
  (* the 3-VCPU scenario does not fit in 40 branches: the open frontier
     must be reported, never silently dropped *)
  let r = E.explore ~config:{ E.default_config with E.cf_budget = 40 } (scenario "rmp-shootdown") in
  Alcotest.(check bool) "no violation" true (r.E.rr_violation = None);
  Alcotest.(check bool) "budget-bounded, not exhausted" false (E.exhausted r);
  Alcotest.(check bool) "deferred alternatives counted" true (r.E.rr_deferred > 0);
  Alcotest.(check bool) "coverage below 1" true (E.frontier_coverage r < 1.0);
  Alcotest.(check bool) "runs within budget" true (r.E.rr_runs <= 40)

let test_probe_deterministic () =
  let sc = scenario "oscall-replay" in
  let o1, j1, d1 = E.probe sc ~prefix:"01" in
  let o2, j2, d2 = E.probe sc ~prefix:"01" in
  Alcotest.(check string) "same prefix, same schedule" j1 j2;
  Alcotest.(check string) "same prefix, same outcome" (O.to_string o1) (O.to_string o2);
  Alcotest.(check bool) "prefix fits" false (d1 || d2);
  Alcotest.(check bool) "clean branch passes" true (O.ok o1);
  let _, _, d = E.probe sc ~prefix:"9" in
  Alcotest.(check bool) "impossible prefix diverges" true d

let test_weakened_detect_minimize_replay () =
  let sc = scenario "weakened-replay" in
  let r = E.explore ~config:quick sc in
  match r.E.rr_violation with
  | None -> Alcotest.fail "weakened replay guard not detected"
  | Some cx ->
      Alcotest.(check string) "silent corruption class" "corrupt" cx.E.cx_class;
      Alcotest.(check bool) "journal not grown by minimization" true
        (String.length cx.E.cx_journal <= cx.E.cx_orig_len);
      Alcotest.(check bool) "minimal reproducer is tiny" true
        (String.length cx.E.cx_journal <= 3);
      (* the default schedule passes: the bug is genuinely
         schedule-dependent, not a plain functional failure *)
      let o0, _, _ = E.probe sc ~prefix:"" in
      Alcotest.(check bool) "default schedule passes" true (O.ok o0);
      (* and the one-line artifact round-trips through parse + replay *)
      let line = E.artifact_of_counterexample cx in
      (match E.parse_artifact line with
      | Error e -> Alcotest.fail e
      | Ok af -> (
          Alcotest.(check string) "artifact names the scenario" "weakened-replay"
            af.E.af_scenario;
          match E.replay af with
          | Ok _ -> ()
          | Error e -> Alcotest.failf "minimized journal did not replay: %s" e))

let test_checked_in_journals_replay () =
  let dir = "journals" in
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".journal")
    |> List.sort compare
  in
  Alcotest.(check bool) "at least one checked-in journal" true (files <> []);
  List.iter
    (fun f ->
      let ic = open_in (Filename.concat dir f) in
      (try
         while true do
           let line = input_line ic in
           if String.trim line <> "" then
             match E.parse_artifact line with
             | Error e -> Alcotest.failf "%s: bad artifact: %s" f e
             | Ok af -> (
                 match E.replay af with
                 | Ok _ -> ()
                 | Error e -> Alcotest.failf "%s did not replay: %s" f e)
         done
       with End_of_file -> ());
      close_in ic)
    files

let test_artifact_parse_rejects_garbage () =
  (match E.parse_artifact "hello world" with
  | Ok _ -> Alcotest.fail "garbage accepted"
  | Error _ -> ());
  (match E.parse_artifact "veil-explore v1 class=corrupt" with
  | Ok _ -> Alcotest.fail "artifact without a scenario accepted"
  | Error _ -> ());
  match E.parse_artifact "veil-explore v1 scenario=no-such class=corrupt journal=0" with
  | Error e -> Alcotest.failf "well-formed line rejected: %s" e
  | Ok af -> (
      match E.replay af with
      | Ok _ -> Alcotest.fail "unknown scenario replayed"
      | Error _ -> ())

let suite =
  [
    ("clean scenario exhausts with no violation", `Quick, test_clean_scenario_exhausts);
    ("budget bound is reported as open frontier", `Quick, test_budget_bound_reported);
    ("prefix probe is deterministic", `Quick, test_probe_deterministic);
    ("weakened guard: detect, minimize, replay", `Quick, test_weakened_detect_minimize_replay);
    ("checked-in journals replay byte-for-byte", `Quick, test_checked_in_journals_replay);
    ("artifact parser rejects garbage", `Quick, test_artifact_parse_rejects_garbage);
  ]
