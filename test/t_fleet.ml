(* Veil-Fleet: multi-guest host, open-loop traffic, histogram merging
   and the cross-tenant isolation oracle (ISSUE 10). *)

module M = Obs.Metrics
module A = Fleet.Arrival
module FP = Chaos.Fault_plan

(* --- Metrics.merge (the bugfix satellite) --- *)

(* The regression that motivated [merge]: fleet aggregation built on
   [diff] applies Prometheus counter-reset semantics — any guest whose
   count is *lower* than the previous operand's is treated as a
   restarted process and its value taken verbatim instead of summed.
   Merging registries of co-tenants is not snapshot differencing. *)
let test_merge_no_counter_reset () =
  let a = M.create () and b = M.create () in
  M.add (M.counter a "fleet.requests") 100;
  M.add (M.counter b "fleet.requests") 30;
  let merged = M.merge [ a; b ] in
  match M.find merged "fleet.requests" with
  | Some (M.Counter c) ->
      (* reset semantics would report 30 ("b restarted"); a sum is 130 *)
      Alcotest.(check int) "counters sum, never reset" 130 (M.value c)
  | _ -> Alcotest.fail "merged registry lost the counter"

(* Two guests with bimodal latency: one all-fast, one with a slow
   tail.  The fleet p99 must surface the slow guest's tail — averaging
   per-guest p99s (or dropping one side, as the reset bug did) hides
   it. *)
let test_merge_bimodal_p99 () =
  let fast = M.create () and slow = M.create () in
  let hf = M.histogram fast "lat" and hs = M.histogram slow "lat" in
  for _ = 1 to 980 do
    M.observe hf 1_000
  done;
  for _ = 1 to 20 do
    M.observe hs 5_000_000
  done;
  let merged = M.merge [ fast; slow ] in
  match M.find merged "lat" with
  | Some (M.Histogram h) ->
      Alcotest.(check int) "merged count" 1000 (M.hist_count h);
      Alcotest.(check bool)
        "fleet p99 lands in the slow mode"
        true
        (M.percentile h 99.0 >= 5_000_000);
      Alcotest.(check bool) "fleet p50 stays in the fast mode" true (M.percentile h 50.0 < 5_000);
      Alcotest.(check int) "min spans both operands" (M.hist_min hf) (M.hist_min h);
      Alcotest.(check int) "max spans both operands" (M.hist_max hs) (M.hist_max h)
  | _ -> Alcotest.fail "merged registry lost the histogram"

let test_merge_gauges_and_empties () =
  let a = M.create () and b = M.create () and c = M.create () in
  M.set (M.gauge a "g") 7;
  M.set (M.gauge b "g") 5;
  ignore (M.histogram a "h");
  (* empty: must not clobber min/max *)
  M.observe (M.histogram b "h") 42;
  let merged = M.merge [ a; b; c ] in
  (match M.find merged "g" with
  | Some (M.Gauge g) -> Alcotest.(check int) "gauges sum" 12 (M.gauge_value g)
  | _ -> Alcotest.fail "merged registry lost the gauge");
  match M.find merged "h" with
  | Some (M.Histogram h) ->
      Alcotest.(check int) "empty operand contributes nothing" 1 (M.hist_count h);
      Alcotest.(check int) "min survives the empty operand" 42 (M.hist_min h);
      Alcotest.(check int) "max survives the empty operand" 42 (M.hist_max h)
  | _ -> Alcotest.fail "merged registry lost the histogram"

(* --- arrival PRNG: domain separation from the chaos family --- *)

(* Reference reimplementation of lib/chaos/fault_plan.ml's raw stream:
   same state derivation, same 13/7/17 xorshift, raw state as output. *)
let chaos_stream seed n =
  let mixed = (seed * 0x9E3779B1) lxor (seed lsr 16) lxor 0x6A09E667 in
  let st = ref ((mixed land max_int) lor 1) in
  List.init n (fun _ ->
      let x = !st in
      let x = x lxor ((x lsl 13) land max_int) in
      let x = x lxor (x lsr 7) in
      let x = x lxor ((x lsl 17) land max_int) in
      st := x;
      x)

(* The same adversarial seeds as the chaos regression (t_chaos.ml):
   0, the int extremes, and the two seeds that zero the chaos mix.
   For each, the arrival stream must be alive (well-mixed, replayable)
   AND nowhere equal to the chaos stream under the *same* seed — fleet
   runs reuse one operator seed for both families. *)
let test_arrival_adversarial_domain_separation () =
  let seeds = [ 0; max_int; min_int; 0x396b1b8a8b9b10bc; -3824519917198271814 ] in
  List.iter
    (fun seed ->
      let tag = Printf.sprintf "seed %#x" seed in
      let arrivals stream =
        let t = A.make ~seed ~stream (A.Poisson { rate = 1000.0 }) in
        List.init 64 (fun _ -> A.draw t)
      in
      let arr = arrivals 0 in
      let distinct = Hashtbl.create 64 in
      List.iter (fun x -> Hashtbl.replace distinct x ()) arr;
      Alcotest.(check bool) (tag ^ ": draws are non-degenerate") true (Hashtbl.length distinct > 32);
      Alcotest.(check (list int)) (tag ^ ": replay-identical") arr (arrivals 0);
      Alcotest.(check bool) (tag ^ ": streams are split") true (arr <> arrivals 1);
      let chaos = chaos_stream seed 64 in
      Alcotest.(check bool) (tag ^ ": not the chaos stream") true (arr <> chaos);
      let collisions = List.fold_left2 (fun n a c -> if a = c then n + 1 else n) 0 arr chaos in
      Alcotest.(check int) (tag ^ ": no positionwise collisions") 0 collisions)
    seeds

let test_arrival_poisson_mean_gap () =
  let rate = 10_000.0 in
  let t = A.make ~seed:7 ~stream:0 (A.Poisson { rate }) in
  let n = 4000 in
  let total = ref 0 in
  for _ = 1 to n do
    let g = A.next_gap t in
    Alcotest.(check bool) "gaps are non-negative" true (g >= 0);
    total := !total + g
  done;
  let mean = float_of_int !total /. float_of_int n in
  let expect = float_of_int Sevsnp.Cycles.freq_hz /. rate in
  Alcotest.(check bool)
    (Printf.sprintf "mean gap %.0f within 10%% of %.0f" mean expect)
    true
    (abs_float (mean -. expect) < 0.10 *. expect)

(* An MMPP with a hot high state must be burstier than Poisson at the
   same mean rate: squared coefficient of variation of gaps > 1 (for
   exponential gaps it is ~1). *)
let test_arrival_mmpp_burstiness () =
  let proc = A.Mmpp { low = 2_000.0; high = 50_000.0; dwell_low = 0.004; dwell_high = 0.001 } in
  let mean_rate = A.mean_rate proc in
  Alcotest.(check bool)
    "dwell-weighted mean rate"
    true
    (abs_float (mean_rate -. ((2_000.0 *. 0.004) +. (50_000.0 *. 0.001)) /. 0.005) < 1e-6);
  let t = A.make ~seed:11 ~stream:0 proc in
  let n = 6000 in
  let gaps = Array.init n (fun _ -> float_of_int (A.next_gap t)) in
  let mean = Array.fold_left ( +. ) 0.0 gaps /. float_of_int n in
  let var =
    Array.fold_left (fun acc g -> acc +. ((g -. mean) ** 2.0)) 0.0 gaps /. float_of_int n
  in
  let scv = var /. (mean *. mean) in
  Alcotest.(check bool)
    (Printf.sprintf "MMPP gaps are overdispersed (scv %.2f > 1.3)" scv)
    true (scv > 1.3)

let test_arrival_pareto_bounds () =
  let t = A.make ~seed:23 ~stream:0 (A.Poisson { rate = 1.0 }) in
  let saw_above_min = ref false in
  let total = ref 0 in
  for _ = 1 to 2000 do
    let s = A.pareto_size t ~xm:64 ~alpha:1.3 ~cap:4096 in
    Alcotest.(check bool) "within [xm, cap]" true (s >= 64 && s <= 4096);
    if s > 64 then saw_above_min := true;
    total := !total + s
  done;
  Alcotest.(check bool) "tail actually spreads" true !saw_above_min;
  Alcotest.(check bool) "heavy tail lifts the mean" true (!total / 2000 > 80)

(* --- the fleet itself --- *)

let quick_cfg = { Fleet.default with guests = 2; vcpus = 2; requests = 60; seed = 41 }

let check_report cfg (r : Fleet.report) =
  Alcotest.(check int) "every guest reported" cfg.Fleet.guests (Array.length r.Fleet.r_guests);
  let served =
    Array.fold_left (fun acc g -> acc + g.Fleet.gr_requests) 0 r.Fleet.r_guests
  in
  Alcotest.(check int) "all arrivals served" cfg.Fleet.requests served;
  Alcotest.(check int)
    "LB journal has one entry per arrival"
    cfg.Fleet.requests
    (String.length r.Fleet.r_lb_journal);
  Alcotest.(check bool) "wall clock advanced" true (r.Fleet.r_wall_cycles > 0);
  Alcotest.(check bool) "throughput positive" true (r.Fleet.r_throughput > 0.0);
  Alcotest.(check bool)
    "percentiles ordered"
    true
    (r.Fleet.r_p50 <= r.Fleet.r_p99 && r.Fleet.r_p99 <= r.Fleet.r_p999);
  Array.iter
    (fun g ->
      Alcotest.(check int)
        "per-guest journal matches served count"
        g.Fleet.gr_requests
        (String.length g.Fleet.gr_journal);
      Alcotest.(check bool)
        "monitor saw traffic"
        true
        (g.Fleet.gr_wait.Veil_core.Monitor.ws_entries > 0);
      Alcotest.(check bool) "protected log chain verifies" true g.Fleet.gr_slog_ok;
      Alcotest.(check bool)
        "log fetched over the attested channel after reconnect"
        true
        (g.Fleet.gr_log_lines > 0))
    r.Fleet.r_guests

let test_fleet_http_smoke () =
  let r = Fleet.run quick_cfg in
  check_report quick_cfg r;
  (* round-robin: served counts differ by at most one *)
  let a = r.Fleet.r_guests.(0).Fleet.gr_requests
  and b = r.Fleet.r_guests.(1).Fleet.gr_requests in
  Alcotest.(check bool) "RR balances" true (abs (a - b) <= 1)

let test_fleet_memcached_smoke () =
  let cfg = { quick_cfg with workload = Fleet.Memcached; requests = 40 } in
  check_report cfg (Fleet.run cfg)

let test_fleet_sqldb_smoke () =
  let cfg = { quick_cfg with workload = Fleet.Sqldb; requests = 40 } in
  check_report cfg (Fleet.run cfg)

let test_fleet_replay_deterministic () =
  let j () = Fleet.report_json (Fleet.run quick_cfg) in
  Alcotest.(check string) "identical config, identical report" (j ()) (j ())

let test_fleet_rings_pulse_chaos () =
  let cfg = { quick_cfg with rings = true; pulse = Some 300_000; chaos = true; requests = 40 } in
  let r = Fleet.run cfg in
  check_report cfg r;
  let hits = Array.fold_left (fun acc g -> acc + g.Fleet.gr_chaos_hits) 0 r.Fleet.r_guests in
  Alcotest.(check bool) "derived fault plans actually fired" true (hits > 0);
  let j () = Fleet.report_json (Fleet.run cfg) in
  Alcotest.(check string) "still replay-identical under rings+pulse+chaos" (j ()) (j ())

(* Guest identity is a function of guest id alone, and dispatch is
   index-driven — so guest g of a 2-guest closed-loop run must be
   indistinguishable from a 1-guest run booted as guest g with its
   share of the requests.  In particular the serialized-monitor wait
   ledger (the queueing report) must match entry for entry: co-tenancy
   on the host must introduce zero cross-guest queueing. *)
let test_fleet_wait_ledger_isolation () =
  let cfg =
    { quick_cfg with mode = Fleet.Closed_loop; requests = 80; workload = Fleet.Http }
  in
  let both = Fleet.run cfg in
  let solo id =
    let r =
      Fleet.run { cfg with guests = 1; requests = cfg.Fleet.requests / 2; first_guest = id }
    in
    r.Fleet.r_guests.(0)
  in
  Array.iter
    (fun (g : Fleet.guest_report) ->
      let alone = solo g.Fleet.gr_id in
      let tag = Printf.sprintf "guest %d" g.Fleet.gr_id in
      Alcotest.(check int) (tag ^ ": same requests") alone.Fleet.gr_requests g.Fleet.gr_requests;
      Alcotest.(check string) (tag ^ ": same schedule") alone.Fleet.gr_journal g.Fleet.gr_journal;
      Alcotest.(check string)
        (tag ^ ": same data digest")
        alone.Fleet.gr_data_digest g.Fleet.gr_data_digest;
      Alcotest.(check string)
        (tag ^ ": same histogram digest")
        alone.Fleet.gr_hist_digest g.Fleet.gr_hist_digest;
      Alcotest.(check bool)
        (tag ^ ": identical wait ledger")
        true
        (alone.Fleet.gr_wait = g.Fleet.gr_wait))
    both.Fleet.r_guests

(* Open vs closed loop on the same overloaded box: the closed-loop
   client only offers the next request when the previous one returns,
   so its "latency" omits exactly the queueing a real arrival stream
   would suffer (coordinated omission).  The open loop at 3x capacity
   must report a far larger p99 sojourn. *)
let test_fleet_coordinated_omission () =
  let base = { quick_cfg with guests = 1; vcpus = 1; requests = 50 } in
  let closed = Fleet.run { base with mode = Fleet.Closed_loop } in
  let rate = Fleet.rate_for base ~utilization:3.0 ~mean_service_cycles:closed.Fleet.r_mean in
  let open_ =
    Fleet.run { base with mode = Fleet.Open_loop; process = Fleet.Arrival.Poisson { rate } }
  in
  Alcotest.(check bool)
    (Printf.sprintf "open-loop p99 %d >> closed-loop p99 %d" open_.Fleet.r_p99 closed.Fleet.r_p99)
    true
    (open_.Fleet.r_p99 > 2 * closed.Fleet.r_p99);
  Alcotest.(check bool)
    "overload shows up as achieved < offered"
    true
    (open_.Fleet.r_throughput < open_.Fleet.r_offered)

let test_fleet_cross_tenant_oracle () =
  match
    List.find_opt
      (fun a -> Veil_attacks.Attacks.name a = "fleet-compromised-guest-cross-tenant")
      (Veil_attacks.Attacks.fleet_attacks ())
  with
  | None -> Alcotest.fail "fleet attack missing from the harness"
  | Some atk ->
      let o = Veil_attacks.Attacks.run atk in
      Alcotest.(check bool)
        (Veil_attacks.Attacks.outcome_to_string o)
        true
        (Veil_attacks.Attacks.is_blocked o)

let suite =
  [
    ("merge: counters sum without reset semantics", `Quick, test_merge_no_counter_reset);
    ("merge: bimodal fleet p99 surfaces the slow guest", `Quick, test_merge_bimodal_p99);
    ("merge: gauges sum, empty histograms are inert", `Quick, test_merge_gauges_and_empties);
    ( "arrival: adversarial seeds, domain-separated from chaos",
      `Quick,
      test_arrival_adversarial_domain_separation );
    ("arrival: poisson mean inter-arrival gap", `Quick, test_arrival_poisson_mean_gap);
    ("arrival: mmpp is burstier than poisson", `Quick, test_arrival_mmpp_burstiness);
    ("arrival: pareto sizes are bounded and heavy-tailed", `Quick, test_arrival_pareto_bounds);
    ("fleet: http smoke (2 guests x 2 vcpus)", `Quick, test_fleet_http_smoke);
    ("fleet: memcached smoke", `Quick, test_fleet_memcached_smoke);
    ("fleet: sqldb smoke", `Quick, test_fleet_sqldb_smoke);
    ("fleet: replay-deterministic", `Quick, test_fleet_replay_deterministic);
    ("fleet: rings + pulse + derived chaos plans", `Quick, test_fleet_rings_pulse_chaos);
    ("fleet: wait ledger shows zero cross-guest queueing", `Quick, test_fleet_wait_ledger_isolation);
    ("fleet: closed loop coordinately omits queueing", `Quick, test_fleet_coordinated_omission);
    ("fleet: compromised guest cannot move a co-tenant", `Quick, test_fleet_cross_tenant_oracle);
  ]
