(* Workload engine depth: the DEFLATE coder and the mini-SQL engine. *)

module W = Workloads

let q = QCheck_alcotest.to_alcotest

(* --- DEFLATE --- *)

let test_deflate_code_tables () =
  (* RFC 1951 spot checks *)
  Alcotest.(check (triple int int int)) "len 3" (257, 0, 0) (W.Deflate.length_code 3);
  Alcotest.(check (triple int int int)) "len 10" (264, 0, 0) (W.Deflate.length_code 10);
  Alcotest.(check (triple int int int)) "len 11" (265, 1, 0) (W.Deflate.length_code 11);
  Alcotest.(check (triple int int int)) "len 12" (265, 1, 1) (W.Deflate.length_code 12);
  Alcotest.(check (triple int int int)) "len 130" (280, 4, 15) (W.Deflate.length_code 130);
  Alcotest.(check (triple int int int)) "len 258" (285, 0, 0) (W.Deflate.length_code 258);
  Alcotest.(check (triple int int int)) "dist 1" (0, 0, 0) (W.Deflate.distance_code 1);
  Alcotest.(check (triple int int int)) "dist 5" (4, 1, 0) (W.Deflate.distance_code 5);
  Alcotest.(check (triple int int int)) "dist 6" (4, 1, 1) (W.Deflate.distance_code 6);
  Alcotest.(check (triple int int int)) "dist 1024" (19, 8, 255) (W.Deflate.distance_code 1024);
  Alcotest.(check (triple int int int)) "dist 32768" (29, 13, 8191) (W.Deflate.distance_code 32768);
  Alcotest.check_raises "len 2 invalid" (Invalid_argument "Deflate.length_code") (fun () ->
      ignore (W.Deflate.length_code 2));
  Alcotest.check_raises "dist 0 invalid" (Invalid_argument "Deflate.distance_code") (fun () ->
      ignore (W.Deflate.distance_code 0))

let deflate_roundtrip =
  QCheck.Test.make ~name:"deflate roundtrip" ~count:50
    (QCheck.bytes_of_size QCheck.Gen.(0 -- 4000))
    (fun data -> Bytes.equal data (W.Deflate.decompress (W.Deflate.compress data)))

let deflate_roundtrip_text =
  QCheck.Test.make ~name:"deflate roundtrip on compressible text" ~count:20
    (QCheck.make QCheck.Gen.(pair small_nat (100 -- 8000)))
    (fun (seed, n) ->
      let data = W.Textgen.text (Veil_crypto.Rng.create seed) n in
      Bytes.equal data (W.Deflate.decompress (W.Deflate.compress data)))

let test_deflate_compresses () =
  let text = W.Textgen.text (Veil_crypto.Rng.create 4) 30000 in
  let ratio = W.Deflate.compression_ratio text in
  Alcotest.(check bool) (Printf.sprintf "text ratio %.2f < 0.55" ratio) true (ratio < 0.55);
  (* beats the naive token coder on the same input *)
  let naive = Bytes.length (W.Huffman.encode (W.Lzss.encode_tokens (W.Lzss.compress text))) in
  let deflate = Bytes.length (W.Deflate.compress text) in
  Alcotest.(check bool) "deflate <= token+huffman" true (deflate <= naive)

let test_deflate_incompressible () =
  let data = Veil_crypto.Rng.bytes (Veil_crypto.Rng.create 5) 8192 in
  Alcotest.(check bytes) "random data roundtrip" data (W.Deflate.decompress (W.Deflate.compress data));
  Alcotest.(check bool) "does not explode" true (W.Deflate.compression_ratio data < 1.25)

let test_deflate_long_match () =
  (* a run longer than max_match must be split into 258-byte matches *)
  let data = Bytes.make 5000 'r' in
  Alcotest.(check bytes) "run roundtrip" data (W.Deflate.decompress (W.Deflate.compress data));
  Alcotest.(check bool) "run compresses hard" true (W.Deflate.compression_ratio data < 0.10)

(* --- SQL engine --- *)

let with_db f =
  let n = Veil_core.Boot.boot_native ~npages:4096 ~seed:83 () in
  let kernel = n.Veil_core.Boot.n_kernel in
  let proc = Guest_kernel.Kernel.spawn kernel in
  let env =
    {
      W.Env.sys = (fun s a -> Guest_kernel.Kernel.invoke kernel proc s a);
      compute = (fun _ -> ());
      env_rng = Veil_crypto.Rng.create 5;
      env_rings = false;
    }
  in
  f env (W.Sqldb.open_db env ~dir:"/tmp/db")

let ok db stmt =
  match W.Sqldb.exec db stmt with
  | Ok r -> r
  | Error e -> Alcotest.failf "%s: %s" stmt e

let expect_rows db stmt rows =
  match ok db stmt with
  | W.Sqldb.Rows r -> Alcotest.(check (list (list string))) stmt rows r
  | W.Sqldb.Done -> Alcotest.failf "%s: expected rows" stmt

let test_sql_crud () =
  with_db (fun _env db ->
      ignore (ok db "CREATE TABLE users (name, role)");
      ignore (ok db "INSERT INTO users VALUES ('alice', 'admin')");
      ignore (ok db "INSERT INTO users VALUES ('bob', 'dev')");
      ignore (ok db "INSERT INTO users VALUES ('carol', 'dev')");
      expect_rows db "SELECT * FROM users"
        [ [ "alice"; "admin" ]; [ "bob"; "dev" ]; [ "carol"; "dev" ] ];
      expect_rows db "SELECT name FROM users WHERE role = 'dev'" [ [ "bob" ]; [ "carol" ] ];
      expect_rows db "SELECT role FROM users WHERE name = 'alice'" [ [ "admin" ] ];
      ignore (ok db "DELETE FROM users WHERE name = 'bob'");
      expect_rows db "SELECT name FROM users WHERE role = 'dev'" [ [ "carol" ] ];
      Alcotest.(check (result int string)) "row count" (Ok 2) (W.Sqldb.row_count db "users"))

let test_sql_upsert_semantics () =
  with_db (fun _env db ->
      ignore (ok db "CREATE TABLE kv (k, v)");
      ignore (ok db "INSERT INTO kv VALUES ('x', '1')");
      ignore (ok db "INSERT INTO kv VALUES ('x', '2')");
      (* first-column keying: the second insert overwrites *)
      expect_rows db "SELECT v FROM kv WHERE k = 'x'" [ [ "2" ] ];
      Alcotest.(check (result int string)) "one row" (Ok 1) (W.Sqldb.row_count db "kv"))

let test_sql_errors () =
  with_db (fun _env db ->
      let err stmt =
        match W.Sqldb.exec db stmt with
        | Error _ -> ()
        | Ok _ -> Alcotest.failf "%s: expected an error" stmt
      in
      err "SELECT * FROM missing";
      ignore (ok db "CREATE TABLE t (a, b)");
      err "CREATE TABLE t (a)";
      err "INSERT INTO t VALUES ('only-one')";
      err "SELECT nope FROM t";
      err "DELETE FROM t WHERE nope = 'x'";
      err "DROP TABLE t" (* unsupported statement *);
      err "INSERT INTO t VALUES ('unterminated";
      ignore (ok db "INSERT INTO t VALUES ('a', 'b')"))

let test_sql_persistence () =
  with_db (fun env db ->
      ignore (ok db "CREATE TABLE persisted (k, v)");
      for i = 0 to 199 do
        ignore (ok db (Printf.sprintf "INSERT INTO persisted VALUES ('key%04d', 'val%d')" i i))
      done;
      W.Sqldb.close db;
      (* reopen from the catalog + table files *)
      let db2 = W.Sqldb.open_db env ~dir:"/tmp/db" in
      Alcotest.(check (list string)) "catalog reloaded" [ "persisted" ] (W.Sqldb.table_names db2);
      Alcotest.(check (result int string)) "rows reloaded" (Ok 200) (W.Sqldb.row_count db2 "persisted");
      expect_rows db2 "SELECT v FROM persisted WHERE k = 'key0123'" [ [ "val123" ] ])

let sql_model =
  QCheck.Test.make ~name:"sql inserts/selects agree with a model" ~count:10
    (QCheck.make
       QCheck.Gen.(list_size (1 -- 120) (pair (string_size ~gen:(char_range 'a' 'f') (1 -- 8)) (0 -- 99))))
    (fun ops ->
      let outcome = ref true in
      with_db (fun _env db ->
          ignore (ok db "CREATE TABLE m (k, v)");
          let model = Hashtbl.create 16 in
          List.iter
            (fun (k, v) ->
              Hashtbl.replace model k (string_of_int v);
              ignore (ok db (Printf.sprintf "INSERT INTO m VALUES ('%s', '%d')" k v)))
            ops;
          Hashtbl.iter
            (fun k v ->
              match W.Sqldb.exec db (Printf.sprintf "SELECT v FROM m WHERE k = '%s'" k) with
              | Ok (W.Sqldb.Rows [ [ x ] ]) when x = v -> ()
              | _ -> outcome := false)
            model;
          if W.Sqldb.row_count db "m" <> Ok (Hashtbl.length model) then outcome := false);
      !outcome)

let suite =
  [
    ("deflate RFC 1951 code tables", `Quick, test_deflate_code_tables);
    q deflate_roundtrip;
    q deflate_roundtrip_text;
    ("deflate compresses text", `Quick, test_deflate_compresses);
    ("deflate incompressible data", `Quick, test_deflate_incompressible);
    ("deflate long runs", `Quick, test_deflate_long_match);
    ("sql create/insert/select/delete", `Quick, test_sql_crud);
    ("sql upsert keying", `Quick, test_sql_upsert_semantics);
    ("sql error handling", `Quick, test_sql_errors);
    ("sql persistence across reopen", `Quick, test_sql_persistence);
    q sql_model;
  ]
