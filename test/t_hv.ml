(* Hypervisor tests: launch, VMSA registry, domain-switch relay +
   policy, interrupt relay, host-side isolation. *)

module T = Sevsnp.Types
module P = Sevsnp.Platform
module Hv = Hypervisor.Hv

let boot () = Veil_core.Boot.boot_veil ~npages:2048 ~seed:5 ()

let test_launch_measured () =
  let sys = boot () in
  Alcotest.(check bool) "launch measurement recorded" true
    (Sevsnp.Attestation.launch_measurement sys.Veil_core.Boot.platform.P.attestation <> None);
  Alcotest.(check bool) "boot vcpu running" true (sys.Veil_core.Boot.vcpu.Sevsnp.Vcpu.current <> None)

let test_launch_deterministic_measurement () =
  let a = Veil_core.Boot.boot_veil ~npages:2048 ~seed:5 () in
  let b = Veil_core.Boot.boot_veil ~npages:2048 ~seed:5 () in
  let m sys = Option.get (Sevsnp.Attestation.launch_measurement sys.Veil_core.Boot.platform.P.attestation) in
  Alcotest.(check bool) "same seed, same measurement" true (Bytes.equal (m a) (m b));
  let c = Veil_core.Boot.boot_veil ~npages:2048 ~seed:6 () in
  Alcotest.(check bool) "different image, different measurement" false (Bytes.equal (m a) (m c))

let test_vmsa_registry () =
  let sys = boot () in
  List.iter
    (fun vmpl ->
      match Hv.vmsa_for sys.Veil_core.Boot.hv ~vcpu_id:0 ~vmpl with
      | Some vmsa -> Alcotest.(check bool) "vmpl matches" true (T.equal_vmpl vmsa.Sevsnp.Vmsa.vmpl vmpl)
      | None -> Alcotest.fail "missing replica for a domain")
    [ T.Vmpl0; T.Vmpl1; T.Vmpl2; T.Vmpl3 ]

let test_domain_switch_cost () =
  let sys = boot () in
  let vcpu = sys.Veil_core.Boot.vcpu in
  let mon = sys.Veil_core.Boot.mon in
  let before = Sevsnp.Cycles.read_bucket vcpu.Sevsnp.Vcpu.counter Sevsnp.Cycles.Switch in
  Veil_core.Monitor.domain_switch mon vcpu ~target:Veil_core.Privdom.Mon;
  let after = Sevsnp.Cycles.read_bucket vcpu.Sevsnp.Vcpu.counter Sevsnp.Cycles.Switch in
  Alcotest.(check int) "one relayed switch costs exactly 7135 cycles" 7135 (after - before);
  Veil_core.Monitor.domain_switch mon vcpu ~target:Veil_core.Privdom.Unt

let test_switch_changes_instance () =
  let sys = boot () in
  let vcpu = sys.Veil_core.Boot.vcpu in
  Alcotest.(check bool) "starts at Dom_UNT" true (T.equal_vmpl (Sevsnp.Vcpu.vmpl vcpu) T.Vmpl3);
  Veil_core.Monitor.domain_switch sys.Veil_core.Boot.mon vcpu ~target:Veil_core.Privdom.Mon;
  Alcotest.(check bool) "now at Dom_MON" true (T.equal_vmpl (Sevsnp.Vcpu.vmpl vcpu) T.Vmpl0);
  Veil_core.Monitor.domain_switch sys.Veil_core.Boot.mon vcpu ~target:Veil_core.Privdom.Unt;
  Alcotest.(check bool) "back at Dom_UNT" true (T.equal_vmpl (Sevsnp.Vcpu.vmpl vcpu) T.Vmpl3)

let test_switch_counts () =
  let sys = boot () in
  let before = (Hv.stats sys.Veil_core.Boot.hv).Hv.domain_switches in
  Veil_core.Monitor.domain_switch sys.Veil_core.Boot.mon sys.Veil_core.Boot.vcpu
    ~target:Veil_core.Privdom.Mon;
  Veil_core.Monitor.domain_switch sys.Veil_core.Boot.mon sys.Veil_core.Boot.vcpu
    ~target:Veil_core.Privdom.Unt;
  Alcotest.(check int) "two switches recorded" (before + 2)
    (Hv.stats sys.Veil_core.Boot.hv).Hv.domain_switches

let test_interrupt_relay_to_kernel () =
  let sys = boot () in
  let j0 = Guest_kernel.Kernel.jiffies sys.Veil_core.Boot.kernel in
  Hv.inject_interrupt sys.Veil_core.Boot.hv sys.Veil_core.Boot.vcpu;
  Alcotest.(check int) "ISR ran" (j0 + 1) (Guest_kernel.Kernel.jiffies sys.Veil_core.Boot.kernel)

let test_interrupt_relay_from_enclave () =
  let sys = boot () in
  let proc = Guest_kernel.Kernel.spawn sys.Veil_core.Boot.kernel in
  match Enclave_sdk.Runtime.create sys ~binary:(Bytes.make 4096 'x') proc with
  | Error e -> Alcotest.fail e
  | Ok rt ->
      let j0 = Guest_kernel.Kernel.jiffies sys.Veil_core.Boot.kernel in
      Enclave_sdk.Runtime.run rt (fun _ ->
          (* interrupt arrives while at Dom_ENC: relayed to Dom_UNT and back *)
          Hv.inject_interrupt sys.Veil_core.Boot.hv sys.Veil_core.Boot.vcpu;
          Alcotest.(check bool) "back at Dom_ENC after relay" true
            (T.equal_vmpl (Sevsnp.Vcpu.vmpl sys.Veil_core.Boot.vcpu) T.Vmpl2));
      Alcotest.(check int) "kernel ISR ran during relay" (j0 + 1)
        (Guest_kernel.Kernel.jiffies sys.Veil_core.Boot.kernel)

let test_interrupt_coalesced_before_ack () =
  let sys = boot () in
  let hv = sys.Veil_core.Boot.hv in
  let kernel = sys.Veil_core.Boot.kernel in
  let vcpu = sys.Veil_core.Boot.vcpu in
  let m = sys.Veil_core.Boot.platform.P.metrics in
  (* The duplicate arrives while the first delivery is still unacked
     (the ISR has not returned): real APICs coalesce the vector. *)
  Hv.set_interrupt_handler hv (fun v ->
      Hv.inject_interrupt hv v;
      Guest_kernel.Kernel.handle_interrupt kernel v);
  let j0 = Guest_kernel.Kernel.jiffies kernel in
  Hv.inject_interrupt hv vcpu;
  Alcotest.(check int) "ISR ran exactly once" (j0 + 1) (Guest_kernel.Kernel.jiffies kernel);
  Alcotest.(check int) "duplicate coalesced" 1
    (Obs.Metrics.value (Obs.Metrics.counter m "hv.relay.coalesced"));
  (* After the ack, injection delivers again. *)
  Hv.set_interrupt_handler hv (Guest_kernel.Kernel.handle_interrupt kernel);
  Hv.inject_interrupt hv vcpu;
  Alcotest.(check int) "next interrupt delivers" (j0 + 2) (Guest_kernel.Kernel.jiffies kernel)

let test_relay_refused_mid_switch () =
  let sys = boot () in
  let hv = sys.Veil_core.Boot.hv in
  let kernel = sys.Veil_core.Boot.kernel in
  let vcpu = sys.Veil_core.Boot.vcpu in
  let m = sys.Veil_core.Boot.platform.P.metrics in
  (* Park the VCPU mid domain switch (running at Dom_MON, relay target
     Dom_UNT), then have the hypervisor refuse the relay. *)
  Veil_core.Monitor.domain_switch sys.Veil_core.Boot.mon vcpu ~target:Veil_core.Privdom.Mon;
  Hv.set_refuse_interrupt_relay hv true;
  let j0 = Guest_kernel.Kernel.jiffies kernel in
  Hv.inject_interrupt hv vcpu;
  (* VMPL-0 may execute kernel text, so the refusal is survivable here
     — but the ISR never ran and the refusal was counted. *)
  Alcotest.(check int) "ISR did not run" j0 (Guest_kernel.Kernel.jiffies kernel);
  Alcotest.(check int) "refusal counted" 1
    (Obs.Metrics.value (Obs.Metrics.counter m "hv.relay.refused"));
  Alcotest.(check bool) "CVM not halted" true (P.is_halted sys.Veil_core.Boot.platform = None);
  Hv.set_refuse_interrupt_relay hv false;
  Veil_core.Monitor.domain_switch sys.Veil_core.Boot.mon vcpu ~target:Veil_core.Privdom.Unt;
  Hv.inject_interrupt hv vcpu;
  Alcotest.(check int) "relay works again" (j0 + 1) (Guest_kernel.Kernel.jiffies kernel)

let test_policy_blocks_errant_switch () =
  let sys = boot () in
  let proc = Guest_kernel.Kernel.spawn sys.Veil_core.Boot.kernel in
  match Enclave_sdk.Runtime.create sys ~binary:(Bytes.make 4096 'x') proc with
  | Error e -> Alcotest.fail e
  | Ok rt ->
      let enclave = Enclave_sdk.Runtime.enclave rt in
      let desc = Veil_core.Encsvc.desc enclave in
      (* From Dom_UNT, request a switch to Dom_MON through the
         *enclave's* policy-restricted GHCB: must crash the CVM. *)
      let platform = sys.Veil_core.Boot.platform in
      let vcpu = sys.Veil_core.Boot.vcpu in
      (match P.set_ghcb platform vcpu (T.gpa_of_gpfn desc.Guest_kernel.Enclave_desc.ghcb_gpfn) with
      | Ok () -> ()
      | Error e -> Alcotest.fail e);
      let ghcb = Option.get (P.ghcb_of_vcpu platform vcpu) in
      ghcb.Sevsnp.Ghcb.request <- Sevsnp.Ghcb.Req_domain_switch { target_vmpl = T.Vmpl0 };
      (try
         P.vmgexit platform vcpu;
         Alcotest.fail "errant switch was allowed"
       with T.Cvm_halted _ -> ());
      Alcotest.(check bool) "CVM halted" true (P.is_halted platform <> None)

let test_policy_config_requires_vmpl0 () =
  let sys = boot () in
  (* The OS tries to retune the switch policy from Dom_UNT. *)
  let ghcb = Guest_kernel.Kernel.ghcb sys.Veil_core.Boot.kernel in
  ghcb.Sevsnp.Ghcb.request <-
    Sevsnp.Ghcb.Req_set_switch_policy { ghcb_gpfn = 0; allowed = [ (T.Vmpl3, T.Vmpl0) ] };
  P.vmgexit sys.Veil_core.Boot.platform sys.Veil_core.Boot.vcpu;
  Alcotest.(check int) "hypervisor refused" 1 ghcb.Sevsnp.Ghcb.response

let test_host_cannot_read_private () =
  let sys = boot () in
  match Hv.try_read_guest sys.Veil_core.Boot.hv (T.gpa_of_gpfn 20) 16 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "host read private guest memory"

let test_io_request () =
  let sys = boot () in
  let before = (Hv.stats sys.Veil_core.Boot.hv).Hv.io_requests in
  let ghcb = Guest_kernel.Kernel.ghcb sys.Veil_core.Boot.kernel in
  ghcb.Sevsnp.Ghcb.request <- Sevsnp.Ghcb.Req_io { write = true; port = 1; len = 512 };
  P.vmgexit sys.Veil_core.Boot.platform sys.Veil_core.Boot.vcpu;
  Alcotest.(check int) "io handled" (before + 1) (Hv.stats sys.Veil_core.Boot.hv).Hv.io_requests;
  Alcotest.(check int) "acked" 0 ghcb.Sevsnp.Ghcb.response

let test_vcpu_hotplug () =
  let sys = boot () in
  let kernel = sys.Veil_core.Boot.kernel in
  (* kernel initiates hotplug of VCPU 1 through the delegation hook *)
  match (Guest_kernel.Kernel.hooks kernel).Guest_kernel.Hooks.h_vcpu_boot ~vcpu_id:1 with
  | Error e -> Alcotest.fail e
  | Ok () ->
      let fresh = List.nth (P.vcpus sys.Veil_core.Boot.platform) 1 in
      Alcotest.(check bool) "new vcpu entered" true (fresh.Sevsnp.Vcpu.current <> None);
      Alcotest.(check bool) "boots at Dom_UNT (§5.3)" true
        (T.equal_vmpl (Sevsnp.Vcpu.vmpl fresh) T.Vmpl3);
      (* replicas exist for all four domains *)
      List.iter
        (fun vmpl ->
          Alcotest.(check bool) "replica exists" true (Hv.vmsa_for sys.Veil_core.Boot.hv ~vcpu_id:1 ~vmpl <> None))
        [ T.Vmpl0; T.Vmpl1; T.Vmpl2; T.Vmpl3 ]

(* --- Interleave: scripted replay + guided branch points (ISSUE 9) --- *)

module I = Hv.Interleave

let test_interleave_scripted_roundtrip () =
  let runnable _ = true in
  let a = I.create ~policy:(I.Seeded 7) ~nvcpus:3 () in
  for _ = 1 to 12 do
    ignore (I.next a ~runnable)
  done;
  let j = I.journal a in
  let b = I.create ~policy:(I.Scripted j) ~nvcpus:3 () in
  for _ = 1 to 12 do
    ignore (I.next b ~runnable)
  done;
  Alcotest.(check string) "byte-for-byte replay" j (I.journal b)

let test_interleave_short_journal_fails_loudly () =
  let runnable _ = true in
  let t = I.create ~policy:(I.Scripted "0120") ~nvcpus:3 () in
  for _ = 1 to 4 do
    ignore (I.next t ~runnable)
  done;
  (try
     ignore (I.next t ~runnable);
     Alcotest.fail "journal shorter than the schedule silently extended"
   with I.Journal_exhausted { journal; steps } ->
     Alcotest.(check string) "journal reported" "0120" journal;
     Alcotest.(check int) "1-based failing step reported" 5 steps);
  (* no runnable VCPU is an idle schedule, not an exhausted journal *)
  let idle = I.create ~policy:(I.Scripted "") ~nvcpus:2 () in
  Alcotest.(check bool) "idle -> None, no decision consumed" true
    (I.next idle ~runnable:(fun _ -> false) = None)

let test_interleave_journal_mismatch () =
  let t = I.create ~policy:(I.Scripted "02") ~nvcpus:3 () in
  ignore (I.next t ~runnable:(fun _ -> true));
  (try
     ignore (I.next t ~runnable:(fun v -> v <> 2));
     Alcotest.fail "non-runnable scripted choice accepted"
   with I.Journal_mismatch { step; chosen; _ } ->
     Alcotest.(check int) "0-based step" 1 step;
     Alcotest.(check int) "prescribed vcpu" 2 chosen);
  let bad = I.create ~policy:(I.Scripted "7") ~nvcpus:2 () in
  try
    ignore (I.next bad ~runnable:(fun _ -> true));
    Alcotest.fail "out-of-range scripted choice accepted"
  with I.Journal_mismatch { chosen = 7; _ } -> ()

let test_interleave_guided_branch_points () =
  let seen = ref [] in
  let last en = List.nth en (List.length en - 1) in
  let t =
    I.create
      ~policy:
        (I.Guided
           (fun en ->
             seen := en :: !seen;
             last en))
      ~nvcpus:3 ()
  in
  ignore (I.next t ~runnable:(fun _ -> true));
  ignore (I.next t ~runnable:(fun v -> v = 0));
  Alcotest.(check string) "guided choices journaled" "20" (I.journal t);
  Alcotest.(check (list (list int))) "full runnable sets exposed, newest first"
    [ [ 0 ]; [ 0; 1; 2 ] ]
    !seen;
  let rogue = I.create ~policy:(I.Guided (fun _ -> 9)) ~nvcpus:2 () in
  try
    ignore (I.next rogue ~runnable:(fun _ -> true));
    Alcotest.fail "guide chose outside the runnable set"
  with Invalid_argument _ -> ()

let suite =
  [
    ("measured launch", `Quick, test_launch_measured);
    ("deterministic launch measurement", `Quick, test_launch_deterministic_measurement);
    ("per-domain VMSA registry", `Quick, test_vmsa_registry);
    ("domain switch costs 7135 cycles", `Quick, test_domain_switch_cost);
    ("switch changes running instance", `Quick, test_switch_changes_instance);
    ("switches counted", `Quick, test_switch_counts);
    ("interrupt relayed to kernel", `Quick, test_interrupt_relay_to_kernel);
    ("interrupt relayed out of enclave", `Quick, test_interrupt_relay_from_enclave);
    ("duplicate interrupt before ack coalesces", `Quick, test_interrupt_coalesced_before_ack);
    ("relay refusal mid domain switch", `Quick, test_relay_refused_mid_switch);
    ("GHCB policy blocks errant switch", `Quick, test_policy_blocks_errant_switch);
    ("policy config requires VMPL-0", `Quick, test_policy_config_requires_vmpl0);
    ("host cannot read private memory", `Quick, test_host_cannot_read_private);
    ("io request round trip", `Quick, test_io_request);
    ("vcpu hotplug via delegation", `Quick, test_vcpu_hotplug);
    ("interleave: scripted replay round-trips", `Quick, test_interleave_scripted_roundtrip);
    ("interleave: short journal fails loudly", `Quick, test_interleave_short_journal_fails_loudly);
    ("interleave: journal mismatch fails loudly", `Quick, test_interleave_journal_mismatch);
    ("interleave: guided branch points", `Quick, test_interleave_guided_branch_points);
  ]
