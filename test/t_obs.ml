(* Veil-Trace observability tests: ring-buffer semantics, span
   nesting, histogram percentile exactness, and Chrome trace_event
   export (parsed with a tiny local JSON reader — no extra deps). *)

module Tr = Obs.Trace
module M = Obs.Metrics

(* --- ring buffer --- *)

let test_ring_wraparound () =
  let t = Tr.create ~capacity:16 () in
  Tr.set_enabled t true;
  for i = 0 to 39 do
    Tr.emit t ~arg:i ~vcpu:0 ~vmpl:0 ~ts:i Tr.Npf
  done;
  Alcotest.(check int) "emitted counts everything" 40 (Tr.emitted t);
  Alcotest.(check int) "stored clamps to capacity" 16 (Tr.stored t);
  let args = List.map (fun e -> e.Tr.ev_arg) (Tr.events t) in
  Alcotest.(check (list int)) "keeps the newest, oldest first" (List.init 16 (fun i -> 24 + i)) args

let test_disabled_is_noop () =
  let t = Tr.create ~capacity:16 () in
  Tr.emit t ~vcpu:0 ~vmpl:0 ~ts:1 Tr.Vmgexit;
  Tr.span_begin t ~vcpu:0 ~vmpl:0 ~ts:2 "dead";
  Alcotest.(check bool) "disabled by default" false (Tr.enabled t);
  Alcotest.(check int) "nothing emitted while disabled" 0 (Tr.emitted t)

let test_clear () =
  let t = Tr.create ~capacity:16 () in
  Tr.set_enabled t true;
  Tr.emit t ~vcpu:0 ~vmpl:0 ~ts:1 Tr.Vmenter;
  Tr.clear t;
  Alcotest.(check int) "clear drops events" 0 (Tr.stored t);
  Alcotest.(check bool) "clear keeps the flag" true (Tr.enabled t)

(* --- span nesting --- *)

let test_span_nesting () =
  let t = Tr.create ~capacity:64 () in
  Tr.set_enabled t true;
  Tr.span_begin t ~vcpu:0 ~vmpl:0 ~ts:10 "outer";
  Tr.span_begin t ~vcpu:0 ~vmpl:0 ~ts:20 "inner";
  Tr.span_end t ~vcpu:0 ~vmpl:0 ~ts:30 "inner";
  Tr.span_end t ~vcpu:0 ~vmpl:0 ~ts:40 "outer";
  (* interleaved on another VCPU: stacks are per-VCPU *)
  Tr.span_begin t ~vcpu:1 ~vmpl:0 ~ts:15 "other";
  Tr.span_end t ~vcpu:1 ~vmpl:0 ~ts:25 "other";
  Alcotest.(check bool) "proper LIFO nesting" true (Tr.well_nested t);
  Alcotest.(check int) "a begin/end pair counts once" 1 (Tr.count_kind t (Tr.Span "outer"))

let test_span_misnesting () =
  let t = Tr.create ~capacity:64 () in
  Tr.set_enabled t true;
  Tr.span_begin t ~vcpu:0 ~vmpl:0 ~ts:10 "a";
  Tr.span_begin t ~vcpu:0 ~vmpl:0 ~ts:20 "b";
  Tr.span_end t ~vcpu:0 ~vmpl:0 ~ts:30 "a";
  Alcotest.(check bool) "crossed spans are flagged" false (Tr.well_nested t)

let test_span_open_and_orphan_tolerated () =
  let t = Tr.create ~capacity:64 () in
  Tr.set_enabled t true;
  (* An End whose Begin wrapped out of the ring, then a still-open span *)
  Tr.span_end t ~vcpu:0 ~vmpl:0 ~ts:5 "evicted";
  Tr.span_begin t ~vcpu:0 ~vmpl:0 ~ts:10 "open";
  Alcotest.(check bool) "orphan end / open begin tolerated" true (Tr.well_nested t)

(* --- metrics --- *)

let test_histogram_percentiles () =
  let m = M.create () in
  let h = M.histogram m "cycles" in
  for _ = 1 to 50 do M.observe h 16 done;
  for _ = 1 to 45 do M.observe h 64 done;
  for _ = 1 to 5 do M.observe h 1024 done;
  Alcotest.(check int) "count" 100 (M.hist_count h);
  Alcotest.(check int) "sum" ((50 * 16) + (45 * 64) + (5 * 1024)) (M.hist_sum h);
  Alcotest.(check int) "min" 16 (M.hist_min h);
  Alcotest.(check int) "max" 1024 (M.hist_max h);
  Alcotest.(check int) "p50 exact on powers of two" 16 (M.percentile h 50.0);
  Alcotest.(check int) "p95 exact on powers of two" 64 (M.percentile h 95.0);
  Alcotest.(check int) "p99 exact on powers of two" 1024 (M.percentile h 99.0)

let test_counter_intern () =
  let m = M.create () in
  let a = M.counter m "x" and b = M.counter m "x" in
  M.incr a;
  M.add b 4;
  Alcotest.(check int) "same name, same storage" 5 (M.value a);
  Alcotest.check_raises "kind clash rejected"
    (Invalid_argument "Metrics: \"x\" is already registered as a counter") (fun () ->
      ignore (M.gauge m "x"))

let test_reset () =
  let m = M.create () in
  let c = M.counter m "c" and g = M.gauge m "g" and h = M.histogram m "h" in
  M.incr c;
  M.set g 7;
  M.observe h 32;
  M.reset m;
  Alcotest.(check int) "counter zeroed" 0 (M.value c);
  Alcotest.(check int) "gauge zeroed" 0 (M.gauge_value g);
  Alcotest.(check int) "histogram zeroed" 0 (M.hist_count h);
  Alcotest.(check (list string)) "registrations survive" [ "c"; "g"; "h" ] (M.names m)

(* --- minimal JSON reader (enough to validate exporter output) --- *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of json list
  | Obj of (string * json) list

exception Bad_json of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then s.[!pos] else '\255' in
  let advance () = incr pos in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at offset %d" msg !pos)) in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c = if peek () = c then advance () else fail (Printf.sprintf "expected %c" c) in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (match peek () with
          | 'n' -> Buffer.add_char b '\n'
          | 't' -> Buffer.add_char b '\t'
          | 'r' -> Buffer.add_char b '\r'
          | 'u' ->
              (* good enough for our ASCII escapes *)
              advance (); advance (); advance ();
              Buffer.add_char b '?'
          | c -> Buffer.add_char b c);
          advance ();
          go ()
      | '\255' -> fail "unterminated string"
      | c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '{' ->
        advance ();
        skip_ws ();
        if peek () = '}' then begin advance (); Obj [] end
        else begin
          let fields = ref [] in
          let rec members () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            if peek () = ',' then begin advance (); members () end else expect '}'
          in
          members ();
          Obj (List.rev !fields)
        end
    | '[' ->
        advance ();
        skip_ws ();
        if peek () = ']' then begin advance (); List [] end
        else begin
          let items = ref [] in
          let rec elements () =
            items := parse_value () :: !items;
            skip_ws ();
            if peek () = ',' then begin advance (); elements () end else expect ']'
          in
          elements ();
          List (List.rev !items)
        end
    | '"' -> Str (parse_string ())
    | 't' -> pos := !pos + 4; Bool true
    | 'f' -> pos := !pos + 5; Bool false
    | 'n' -> pos := !pos + 4; Null
    | _ ->
        let start = !pos in
        while
          !pos < n
          && (match s.[!pos] with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false)
        do
          advance ()
        done;
        if !pos = start then fail "unexpected character";
        Num (float_of_string (String.sub s start (!pos - start)))
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let field name = function
  | Obj fields -> (try Some (List.assoc name fields) with Not_found -> None)
  | _ -> None

let num_exn name j =
  match field name j with Some (Num f) -> int_of_float f | _ -> failwith ("missing number " ^ name)

let str_exn name j =
  match field name j with Some (Str s) -> s | _ -> failwith ("missing string " ^ name)

(* --- Chrome exporter --- *)

let test_chrome_export () =
  let t = Tr.create ~capacity:256 () in
  Tr.set_enabled t true;
  (* Two VCPUs, events deliberately emitted with a Complete span whose
     start predates already-emitted instants — the exporter must sort. *)
  Tr.emit t ~vcpu:0 ~vmpl:0 ~ts:100 ~arg:0 Tr.Vmgexit;
  Tr.emit t ~vcpu:1 ~vmpl:0 ~ts:150 ~arg:1 Tr.Vmgexit;
  Tr.emit t ~vcpu:0 ~vmpl:2 ~ts:900 Tr.Vmenter;
  Tr.complete t ~bucket:"switch" ~arg:2 ~vcpu:0 ~vmpl:2 ~ts:200 ~dur:700 Tr.Domain_switch;
  Tr.complete t ~bucket:"kernel" ~arg:39 ~vcpu:1 ~vmpl:3 ~ts:300 ~dur:50 Tr.Syscall;
  Tr.span_begin t ~bucket:"monitor" ~vcpu:0 ~vmpl:0 ~ts:1000 "os_call";
  Tr.span_end t ~vcpu:0 ~vmpl:0 ~ts:1100 "os_call";
  let json = parse_json (Obs.Chrome_trace.to_json t) in
  let evs = match field "traceEvents" json with Some (List l) -> l | _ -> failwith "no traceEvents" in
  let is_meta e = str_exn "ph" e = "M" in
  let data = List.filter (fun e -> not (is_meta e)) evs in
  Alcotest.(check int) "all seven events exported" 7 (List.length data);
  (* per-VCPU timestamps must be monotone non-decreasing *)
  let last = Hashtbl.create 4 in
  List.iter
    (fun e ->
      let pid = num_exn "pid" e and ts = num_exn "ts" e in
      let prev = try Hashtbl.find last pid with Not_found -> min_int in
      Alcotest.(check bool)
        (Printf.sprintf "vcpu %d ts monotonic (%d >= %d)" pid ts prev)
        true (ts >= prev);
      Hashtbl.replace last pid ts)
    data;
  (* Complete spans carry their duration *)
  let durs =
    List.filter_map (fun e -> if str_exn "ph" e = "X" then Some (num_exn "dur" e) else None) data
  in
  Alcotest.(check (list int)) "complete spans keep durations" [ 700; 50 ] durs;
  (* metadata names each vcpu process *)
  let pnames =
    List.filter_map
      (fun e ->
        if is_meta e && str_exn "name" e = "process_name" then
          match field "args" e with Some a -> Some (str_exn "name" a) | None -> None
        else None)
      evs
  in
  Alcotest.(check (list string)) "vcpu processes named" [ "vcpu0"; "vcpu1" ] (List.sort compare pnames)

let test_metrics_json_parses () =
  let m = M.create () in
  M.incr (M.counter m "a.b");
  M.set (M.gauge m "g\"q") 3;
  M.observe (M.histogram m "h") 128;
  match parse_json (M.to_json m) with
  | Obj _ as j ->
      (match field "counters" j with
      | Some c -> Alcotest.(check int) "counter round-trips" 1 (num_exn "a.b" c)
      | None -> Alcotest.fail "no counters object")
  | _ -> Alcotest.fail "metrics JSON is not an object"

let suite =
  [
    Alcotest.test_case "ring wraparound keeps newest" `Quick test_ring_wraparound;
    Alcotest.test_case "disabled tracer is a no-op" `Quick test_disabled_is_noop;
    Alcotest.test_case "clear" `Quick test_clear;
    Alcotest.test_case "span nesting well-formed" `Quick test_span_nesting;
    Alcotest.test_case "span misnesting detected" `Quick test_span_misnesting;
    Alcotest.test_case "orphan/open spans tolerated" `Quick test_span_open_and_orphan_tolerated;
    Alcotest.test_case "histogram percentiles exact" `Quick test_histogram_percentiles;
    Alcotest.test_case "counter interning" `Quick test_counter_intern;
    Alcotest.test_case "reset" `Quick test_reset;
    Alcotest.test_case "chrome export valid + monotonic" `Quick test_chrome_export;
    Alcotest.test_case "metrics JSON parses" `Quick test_metrics_json_parses;
  ]
