(* Veil-Trace/Veil-Prof observability tests: ring-buffer semantics,
   span nesting, histogram percentile exactness, Chrome trace_event
   export (parsed with a tiny local JSON reader — no extra deps), and
   the cycle-attribution profiler's self/total accounting. *)

module Tr = Obs.Trace
module M = Obs.Metrics
module P = Obs.Profiler
module F = Obs.Folded

(* --- ring buffer --- *)

let test_ring_wraparound () =
  let t = Tr.create ~capacity:16 () in
  Tr.set_enabled t true;
  for i = 0 to 39 do
    Tr.emit t ~arg:i ~vcpu:0 ~vmpl:0 ~ts:i Tr.Npf
  done;
  Alcotest.(check int) "emitted counts everything" 40 (Tr.emitted t);
  Alcotest.(check int) "stored clamps to capacity" 16 (Tr.stored t);
  let args = List.map (fun e -> e.Tr.ev_arg) (Tr.events t) in
  Alcotest.(check (list int)) "keeps the newest, oldest first" (List.init 16 (fun i -> 24 + i)) args

let test_disabled_is_noop () =
  let t = Tr.create ~capacity:16 () in
  Tr.emit t ~vcpu:0 ~vmpl:0 ~ts:1 Tr.Vmgexit;
  Tr.span_begin t ~vcpu:0 ~vmpl:0 ~ts:2 "dead";
  Alcotest.(check bool) "disabled by default" false (Tr.enabled t);
  Alcotest.(check int) "nothing emitted while disabled" 0 (Tr.emitted t)

let test_clear () =
  let t = Tr.create ~capacity:16 () in
  Tr.set_enabled t true;
  Tr.emit t ~vcpu:0 ~vmpl:0 ~ts:1 Tr.Vmenter;
  Tr.clear t;
  Alcotest.(check int) "clear drops events" 0 (Tr.stored t);
  Alcotest.(check bool) "clear keeps the flag" true (Tr.enabled t)

(* Spans must survive the ring evicting their Begin records: emit
   enough nested spans to wrap a small ring, then close them all. *)
let test_ring_wraparound_spans () =
  let t = Tr.create ~capacity:16 () in
  Tr.set_enabled t true;
  for i = 0 to 19 do
    Tr.span_begin t ~vcpu:0 ~vmpl:0 ~ts:i (Printf.sprintf "s%d" i)
  done;
  for i = 19 downto 0 do
    Tr.span_end t ~vcpu:0 ~vmpl:0 ~ts:(40 - i) (Printf.sprintf "s%d" i)
  done;
  Alcotest.(check int) "all begins and ends counted" 40 (Tr.emitted t);
  Alcotest.(check int) "ring holds the newest 16" 16 (Tr.stored t);
  (* every surviving record is an End whose Begin wrapped out *)
  let kinds =
    List.map
      (fun e ->
        match (e.Tr.ev_kind, e.Tr.ev_phase) with Tr.Span n, Tr.End -> n | _ -> "?")
      (Tr.events t)
  in
  Alcotest.(check (list string)) "oldest-first ends, begins evicted"
    (List.init 16 (fun i -> Printf.sprintf "s%d" (15 - i)))
    kinds;
  Alcotest.(check bool) "orphan ends keep the trace well-nested" true (Tr.well_nested t)

(* --- span nesting --- *)

let test_span_nesting () =
  let t = Tr.create ~capacity:64 () in
  Tr.set_enabled t true;
  Tr.span_begin t ~vcpu:0 ~vmpl:0 ~ts:10 "outer";
  Tr.span_begin t ~vcpu:0 ~vmpl:0 ~ts:20 "inner";
  Tr.span_end t ~vcpu:0 ~vmpl:0 ~ts:30 "inner";
  Tr.span_end t ~vcpu:0 ~vmpl:0 ~ts:40 "outer";
  (* interleaved on another VCPU: stacks are per-VCPU *)
  Tr.span_begin t ~vcpu:1 ~vmpl:0 ~ts:15 "other";
  Tr.span_end t ~vcpu:1 ~vmpl:0 ~ts:25 "other";
  Alcotest.(check bool) "proper LIFO nesting" true (Tr.well_nested t);
  Alcotest.(check int) "a begin/end pair counts once" 1 (Tr.count_kind t (Tr.Span "outer"))

let test_span_misnesting () =
  let t = Tr.create ~capacity:64 () in
  Tr.set_enabled t true;
  Tr.span_begin t ~vcpu:0 ~vmpl:0 ~ts:10 "a";
  Tr.span_begin t ~vcpu:0 ~vmpl:0 ~ts:20 "b";
  Tr.span_end t ~vcpu:0 ~vmpl:0 ~ts:30 "a";
  Alcotest.(check bool) "crossed spans are flagged" false (Tr.well_nested t)

let test_span_open_and_orphan_tolerated () =
  let t = Tr.create ~capacity:64 () in
  Tr.set_enabled t true;
  (* An End whose Begin wrapped out of the ring, then a still-open span *)
  Tr.span_end t ~vcpu:0 ~vmpl:0 ~ts:5 "evicted";
  Tr.span_begin t ~vcpu:0 ~vmpl:0 ~ts:10 "open";
  Alcotest.(check bool) "orphan end / open begin tolerated" true (Tr.well_nested t)

(* --- metrics --- *)

let test_histogram_percentiles () =
  let m = M.create () in
  let h = M.histogram m "cycles" in
  for _ = 1 to 50 do M.observe h 16 done;
  for _ = 1 to 45 do M.observe h 64 done;
  for _ = 1 to 5 do M.observe h 1024 done;
  Alcotest.(check int) "count" 100 (M.hist_count h);
  Alcotest.(check int) "sum" ((50 * 16) + (45 * 64) + (5 * 1024)) (M.hist_sum h);
  Alcotest.(check int) "min" 16 (M.hist_min h);
  Alcotest.(check int) "max" 1024 (M.hist_max h);
  (* Upper bucket bounds (conservative estimate), clamped to the max:
     16 lands in [16,31], 64 in [64,127], 1024 in [1024,2047]. *)
  Alcotest.(check int) "p50 is the bucket upper bound" 31 (M.percentile h 50.0);
  Alcotest.(check int) "p95 is the bucket upper bound" 127 (M.percentile h 95.0);
  Alcotest.(check int) "p99 clamps to the observed max" 1024 (M.percentile h 99.0);
  Alcotest.(check (float 1e-9)) "mean is exact (sum/count)"
    (float_of_int ((50 * 16) + (45 * 64) + (5 * 1024)) /. 100.0)
    (M.mean h);
  (* Regression: a histogram of identical samples must never report a
     percentile *below* every sample (the old lower-bound answer said
     p50 = 512 for 1000-cycle observations — under-reporting by ~2x). *)
  let h2 = M.histogram m "identical" in
  for _ = 1 to 10 do M.observe h2 1000 done;
  Alcotest.(check int) "p50 of identical samples is the sample" 1000 (M.percentile h2 50.0);
  Alcotest.(check int) "p90 of identical samples is the sample" 1000 (M.percentile h2 90.0)

let test_counter_intern () =
  let m = M.create () in
  let a = M.counter m "x" and b = M.counter m "x" in
  M.incr a;
  M.add b 4;
  Alcotest.(check int) "same name, same storage" 5 (M.value a);
  Alcotest.check_raises "kind clash rejected"
    (Invalid_argument "Metrics: \"x\" is already registered as a counter") (fun () ->
      ignore (M.gauge m "x"))

let test_reset () =
  let m = M.create () in
  let c = M.counter m "c" and g = M.gauge m "g" and h = M.histogram m "h" in
  M.incr c;
  M.set g 7;
  M.observe h 32;
  M.reset m;
  Alcotest.(check int) "counter zeroed" 0 (M.value c);
  Alcotest.(check int) "gauge zeroed" 0 (M.gauge_value g);
  Alcotest.(check int) "histogram zeroed" 0 (M.hist_count h);
  Alcotest.(check (list string)) "registrations survive" [ "c"; "g"; "h" ] (M.names m)

(* --- minimal JSON reader (enough to validate exporter output) --- *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of json list
  | Obj of (string * json) list

exception Bad_json of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then s.[!pos] else '\255' in
  let advance () = incr pos in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at offset %d" msg !pos)) in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c = if peek () = c then advance () else fail (Printf.sprintf "expected %c" c) in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (match peek () with
          | 'n' -> Buffer.add_char b '\n'
          | 't' -> Buffer.add_char b '\t'
          | 'r' -> Buffer.add_char b '\r'
          | 'u' ->
              (* good enough for our ASCII escapes *)
              advance (); advance (); advance ();
              Buffer.add_char b '?'
          | c -> Buffer.add_char b c);
          advance ();
          go ()
      | '\255' -> fail "unterminated string"
      | c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '{' ->
        advance ();
        skip_ws ();
        if peek () = '}' then begin advance (); Obj [] end
        else begin
          let fields = ref [] in
          let rec members () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            if peek () = ',' then begin advance (); members () end else expect '}'
          in
          members ();
          Obj (List.rev !fields)
        end
    | '[' ->
        advance ();
        skip_ws ();
        if peek () = ']' then begin advance (); List [] end
        else begin
          let items = ref [] in
          let rec elements () =
            items := parse_value () :: !items;
            skip_ws ();
            if peek () = ',' then begin advance (); elements () end else expect ']'
          in
          elements ();
          List (List.rev !items)
        end
    | '"' -> Str (parse_string ())
    | 't' -> pos := !pos + 4; Bool true
    | 'f' -> pos := !pos + 5; Bool false
    | 'n' -> pos := !pos + 4; Null
    | _ ->
        let start = !pos in
        while
          !pos < n
          && (match s.[!pos] with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false)
        do
          advance ()
        done;
        if !pos = start then fail "unexpected character";
        Num (float_of_string (String.sub s start (!pos - start)))
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let field name = function
  | Obj fields -> (try Some (List.assoc name fields) with Not_found -> None)
  | _ -> None

let num_exn name j =
  match field name j with Some (Num f) -> int_of_float f | _ -> failwith ("missing number " ^ name)

let str_exn name j =
  match field name j with Some (Str s) -> s | _ -> failwith ("missing string " ^ name)

let test_histogram_p100_true_max () =
  let m = M.create () in
  let h = M.histogram m "h" in
  M.observe h 3;
  M.observe h 1000;
  (* 1000 lands in the [512, 1024) bucket — p100 must report the true
     observed max, not the bucket bound. *)
  Alcotest.(check int) "p100 is the observed max" 1000 (M.percentile h 100.0);
  Alcotest.(check (float 1e-9)) "mean of {3, 1000}" 501.5 (M.mean h);
  (match field "histograms" (parse_json (M.to_json m)) with
  | Some hs -> (
      match field "h" hs with
      | Some hj ->
          Alcotest.(check int) "json mean" 501 (num_exn "mean" hj);
          Alcotest.(check int) "json max" 1000 (num_exn "max" hj)
      | None -> Alcotest.fail "histogram h missing from JSON")
  | None -> Alcotest.fail "no histograms object");
  let dumped = M.dump m in
  let rec contains i =
    i + 5 <= String.length dumped && (String.sub dumped i 5 = "mean=" || contains (i + 1))
  in
  Alcotest.(check bool) "dump shows the mean" true (contains 0)

(* --- Chrome exporter --- *)

let test_chrome_export () =
  let t = Tr.create ~capacity:256 () in
  Tr.set_enabled t true;
  (* Two VCPUs, events deliberately emitted with a Complete span whose
     start predates already-emitted instants — the exporter must sort. *)
  Tr.emit t ~vcpu:0 ~vmpl:0 ~ts:100 ~arg:0 ~id:7 Tr.Vmgexit;
  Tr.emit t ~vcpu:1 ~vmpl:0 ~ts:150 ~arg:1 Tr.Vmgexit;
  Tr.emit t ~vcpu:0 ~vmpl:2 ~ts:900 Tr.Vmenter;
  Tr.complete t ~bucket:"switch" ~arg:2 ~vcpu:0 ~vmpl:2 ~ts:200 ~dur:700 Tr.Domain_switch;
  Tr.complete t ~bucket:"kernel" ~arg:39 ~vcpu:1 ~vmpl:3 ~ts:300 ~dur:50 Tr.Syscall;
  Tr.span_begin t ~bucket:"monitor" ~vcpu:0 ~vmpl:0 ~ts:1000 "os_call";
  Tr.span_end t ~vcpu:0 ~vmpl:0 ~ts:1100 "os_call";
  let json = parse_json (Obs.Chrome_trace.to_json t) in
  let evs = match field "traceEvents" json with Some (List l) -> l | _ -> failwith "no traceEvents" in
  let is_meta e = str_exn "ph" e = "M" in
  let data = List.filter (fun e -> not (is_meta e)) evs in
  Alcotest.(check int) "all seven events exported" 7 (List.length data);
  (* per-track (pid = VMPL) timestamps must be monotone non-decreasing *)
  let last = Hashtbl.create 4 in
  List.iter
    (fun e ->
      let pid = num_exn "pid" e and ts = num_exn "ts" e in
      let prev = try Hashtbl.find last pid with Not_found -> min_int in
      Alcotest.(check bool)
        (Printf.sprintf "vmpl %d ts monotonic (%d >= %d)" pid ts prev)
        true (ts >= prev);
      Hashtbl.replace last pid ts)
    data;
  (* causal trace ids ride into the args object; id=0 is omitted *)
  let ids =
    List.filter_map
      (fun e ->
        match field "args" e with
        | Some a -> (match field "id" a with Some (Num f) -> Some (int_of_float f) | _ -> None)
        | None -> None)
      data
  in
  Alcotest.(check (list int)) "only the tagged event carries its id" [ 7 ] ids;
  (* Complete spans carry their duration *)
  let durs =
    List.filter_map (fun e -> if str_exn "ph" e = "X" then Some (num_exn "dur" e) else None) data
  in
  Alcotest.(check (list int)) "complete spans keep durations" [ 700; 50 ] durs;
  (* metadata: one named process per VMPL, one named thread per VCPU *)
  let meta_names which =
    List.filter_map
      (fun e ->
        if is_meta e && str_exn "name" e = which then
          match field "args" e with Some a -> Some (str_exn "name" a) | None -> None
        else None)
      evs
  in
  Alcotest.(check (list string)) "one process per vmpl" [ "vmpl0"; "vmpl2"; "vmpl3" ]
    (List.sort compare (meta_names "process_name"));
  Alcotest.(check (list string)) "threads named per (vmpl, vcpu) pair"
    [ "vcpu0"; "vcpu0"; "vcpu1"; "vcpu1" ]
    (List.sort compare (meta_names "thread_name"))

let test_metrics_json_parses () =
  let m = M.create () in
  M.incr (M.counter m "a.b");
  M.set (M.gauge m "g\"q") 3;
  M.observe (M.histogram m "h") 128;
  match parse_json (M.to_json m) with
  | Obj _ as j ->
      (match field "counters" j with
      | Some c -> Alcotest.(check int) "counter round-trips" 1 (num_exn "a.b" c)
      | None -> Alcotest.fail "no counters object")
  | _ -> Alcotest.fail "metrics JSON is not an object"

(* --- Veil-Prof: cycle attribution --- *)

let test_profiler_empty () =
  let p = P.create () in
  P.set_enabled p true;
  Alcotest.(check int) "no attribution" 0 (P.total_self p);
  Alcotest.(check bool) "empty ledger" true (P.ledger p = []);
  Alcotest.(check bool) "empty paths" true (P.paths p = []);
  Alcotest.(check int) "no open frames" 0 (P.open_frames p ~vcpu:0)

let test_profiler_self_total () =
  let p = P.create () in
  P.set_enabled p true;
  (* a spans [1000, 2000], b nests at [1200, 1700]: both get 500 self *)
  P.push p ~vcpu:0 ~vmpl:0 ~ts:1000 "a";
  P.push p ~vcpu:0 ~vmpl:0 ~ts:1200 "b";
  P.pop p ~vcpu:0 ~ts:1700;
  P.pop p ~vcpu:0 ~ts:2000;
  Alcotest.(check bool) "self = total - child time"
    true
    (P.ledger p = [ ((0, "a"), (500, 1)); ((0, "b"), (500, 1)) ]);
  Alcotest.(check bool) "paths carry the ancestry"
    true
    (P.paths p = [ ("vmpl0;a", 500); ("vmpl0;a;b", 500) ]);
  Alcotest.(check int) "total self covers the outer span" 1000 (P.total_self p)

let test_profiler_leaf_and_cross_vmpl () =
  let p = P.create () in
  P.set_enabled p true;
  P.push p ~vcpu:0 ~vmpl:0 ~ts:0 "syscall";
  (* fixed-cost leg attributed to another vmpl under the same stack *)
  P.leaf p ~vcpu:0 ~vmpl:1 ~dur:300 "vmgexit";
  P.pop p ~vcpu:0 ~ts:1000;
  Alcotest.(check int) "leaf credited" 300 (P.bucket_self p "vmgexit");
  Alcotest.(check int) "enclosing frame loses the leaf time" 700 (P.bucket_self p "syscall");
  Alcotest.(check bool) "leaf rooted at its own vmpl" true
    (List.mem_assoc "vmpl1;syscall;vmgexit" (P.paths p))

let test_profiler_unclosed_frame () =
  let p = P.create () in
  P.set_enabled p true;
  P.push p ~vcpu:0 ~vmpl:0 ~ts:10 "open_frame";
  Alcotest.(check int) "work-in-progress visible" 1 (P.open_frames p ~vcpu:0);
  Alcotest.(check bool) "not yet in the ledger" true (P.ledger p = []);
  P.pop p ~vcpu:0 ~ts:60;
  Alcotest.(check bool) "credited once closed" true
    (P.ledger p = [ ((0, "open_frame"), (50, 1)) ]);
  (* a stray pop with nothing open must be tolerated *)
  P.pop p ~vcpu:0 ~ts:70;
  Alcotest.(check int) "stray pop tolerated" 50 (P.total_self p)

let test_profiler_disabled_noop () =
  let p = P.create () in
  P.push p ~vcpu:0 ~vmpl:0 ~ts:0 "dead";
  P.leaf p ~vcpu:0 ~vmpl:0 ~dur:100 "dead_leaf";
  P.pop p ~vcpu:0 ~ts:10;
  P.set_id p ~vcpu:0 5;
  Alcotest.(check bool) "disabled by default" false (P.enabled p);
  Alcotest.(check int) "nothing recorded" 0 (P.total_self p);
  Alcotest.(check int) "no causal id" 0 (P.id p ~vcpu:0);
  (* the disabled mutators must also allocate nothing (the bench
     alloc-check enforces the same on the full syscall path) *)
  let n = 10_000 in
  let before = Gc.minor_words () in
  for i = 1 to n do
    P.push p ~vcpu:0 ~vmpl:0 ~ts:i "dead";
    P.leaf p ~vcpu:0 ~vmpl:0 ~dur:1 "dead_leaf";
    ignore (P.id p ~vcpu:0);
    P.pop p ~vcpu:0 ~ts:(i + 1)
  done;
  let words = (Gc.minor_words () -. before) /. float_of_int n in
  Alcotest.(check (float 0.0)) "disabled profiler allocates 0.0 words/op" 0.0 words

let test_profiler_causal_ids () =
  let p = P.create () in
  P.set_enabled p true;
  let a = P.mint p and b = P.mint p in
  Alcotest.(check bool) "ids are fresh and nonzero" true (a = 1 && b = 2);
  P.set_id p ~vcpu:2 a;
  Alcotest.(check int) "id rides its vcpu" a (P.id p ~vcpu:2);
  Alcotest.(check int) "other vcpus unaffected" 0 (P.id p ~vcpu:0);
  P.set_id p ~vcpu:2 0;
  Alcotest.(check int) "cleared" 0 (P.id p ~vcpu:2);
  P.reset p;
  Alcotest.(check int) "reset restarts the generator" 1 (P.mint p)

let test_profiler_depth_overflow () =
  let p = P.create ~max_depth:4 () in
  P.set_enabled p true;
  for i = 0 to 9 do
    P.push p ~vcpu:0 ~vmpl:0 ~ts:(i * 10) (Printf.sprintf "f%d" i)
  done;
  for i = 9 downto 0 do
    P.pop p ~vcpu:0 ~ts:(200 - i)
  done;
  Alcotest.(check int) "all pops matched" 0 (P.open_frames p ~vcpu:0);
  (* only the frames that fit the stack were credited *)
  Alcotest.(check int) "dropped frames are not credited" 4
    (List.length (P.ledger p))

let test_folded_roundtrip () =
  let p = P.create () in
  P.set_enabled p true;
  P.push p ~vcpu:0 ~vmpl:0 ~ts:0 "syscall";
  P.push p ~vcpu:0 ~vmpl:1 ~ts:100 "os_call";
  P.leaf p ~vcpu:0 ~vmpl:1 ~dur:550 "vmgexit";
  P.pop p ~vcpu:0 ~ts:800;
  P.pop p ~vcpu:0 ~ts:1000;
  (* a second vcpu contributes to the same buckets *)
  P.push p ~vcpu:1 ~vmpl:1 ~ts:0 "os_call";
  P.pop p ~vcpu:1 ~ts:40;
  let folded = F.render (P.paths p) in
  Alcotest.(check bool) "folded text is rooted" true
    (String.length folded > 5 && String.sub folded 0 5 = "veil;");
  let totals = F.leaf_totals (F.parse folded) in
  let ledger_totals = List.map (fun (k, (self, _)) -> (k, self)) (P.ledger p) in
  Alcotest.(check bool) "folded leaf totals equal the ledger" true (totals = ledger_totals)

(* --- Veil-Scope: wait kinds, drop accounting, flow export --- *)

let test_wait_kind_names () =
  List.iter
    (fun (r, kind, reason) ->
      Alcotest.(check string) kind kind (Tr.kind_name (Tr.Wait r));
      Alcotest.(check string) reason reason (Tr.wait_reason_name r))
    [
      (Tr.Runqueue, "wait.runqueue", "runqueue");
      (Tr.Monitor_serial, "wait.monitor_serial", "monitor_serial");
      (Tr.Shootdown_ack, "wait.shootdown_ack", "shootdown_ack");
      (Tr.Blocked_poll, "wait.blocked_poll", "blocked_poll");
      (Tr.Relay, "wait.relay", "relay");
    ]

let test_dropped_counter () =
  let t = Tr.create ~capacity:16 () in
  Tr.set_enabled t true;
  for i = 0 to 39 do
    Tr.emit t ~vcpu:0 ~vmpl:0 ~ts:i Tr.Npf
  done;
  Alcotest.(check int) "dropped = emitted - capacity" 24 (Tr.dropped t);
  Tr.clear t;
  Alcotest.(check int) "clear resets the drop count" 0 (Tr.dropped t)

let test_chrome_truncation_warning () =
  let t = Tr.create ~capacity:16 () in
  Tr.set_enabled t true;
  for i = 0 to 39 do
    Tr.emit t ~vcpu:0 ~vmpl:0 ~ts:i Tr.Npf
  done;
  let json = parse_json (Obs.Chrome_trace.to_json t) in
  let evs = match field "traceEvents" json with Some (List l) -> l | _ -> failwith "no traceEvents" in
  match List.find_opt (fun e -> str_exn "name" e = "trace_truncated") evs with
  | Some e ->
      Alcotest.(check string) "global instant" "i" (str_exn "ph" e);
      Alcotest.(check string) "veil category" "veil" (str_exn "cat" e);
      (* pinned at the surviving window's start (oldest kept event) *)
      Alcotest.(check int) "pinned at window start" 24 (num_exn "ts" e);
      (match field "args" e with
      | Some a -> Alcotest.(check int) "drop count in args" 24 (num_exn "dropped" a)
      | None -> Alcotest.fail "truncation warning has no args")
  | None -> Alcotest.fail "no trace_truncated event in a wrapped export"

(* A causal id that hops (vmpl, vcpu) lanes becomes an s -> t* -> f
   flow chain; an id confined to one lane draws no arrows. *)
let test_chrome_flow_events () =
  let t = Tr.create ~capacity:64 () in
  Tr.set_enabled t true;
  Tr.emit t ~vcpu:0 ~vmpl:3 ~ts:100 ~id:5 Tr.Syscall;
  Tr.emit t ~vcpu:1 ~vmpl:0 ~ts:150 ~id:5 Tr.Vmgexit;
  Tr.emit t ~vcpu:0 ~vmpl:3 ~ts:200 ~id:5 Tr.Vmenter;
  (* single-lane id: two events, both on (vmpl 2, vcpu 0) *)
  Tr.emit t ~vcpu:0 ~vmpl:2 ~ts:300 ~id:9 Tr.Vmgexit;
  Tr.emit t ~vcpu:0 ~vmpl:2 ~ts:310 ~id:9 Tr.Vmenter;
  let json = parse_json (Obs.Chrome_trace.to_json t) in
  let evs = match field "traceEvents" json with Some (List l) -> l | _ -> failwith "no traceEvents" in
  let cat e = match field "cat" e with Some (Str s) -> s | _ -> "" in
  let flows = List.filter (fun e -> cat e = "veil.flow") evs in
  Alcotest.(check (list string)) "s at the start, t on the hop, f at the end"
    [ "s"; "t"; "f" ]
    (List.map (fun e -> str_exn "ph" e) flows);
  List.iter
    (fun e ->
      Alcotest.(check string) "flow name" "req" (str_exn "name" e);
      Alcotest.(check int) "only the lane-hopping id flows" 5 (num_exn "id" e))
    flows;
  (match flows with
  | [ s; tpt; f ] ->
      Alcotest.(check (pair int int)) "s on the syscall lane" (3, 0)
        (num_exn "pid" s, num_exn "tid" s);
      Alcotest.(check (pair int int)) "t on the monitor lane" (0, 1)
        (num_exn "pid" tpt, num_exn "tid" tpt);
      Alcotest.(check int) "f back at the origin" 3 (num_exn "pid" f);
      Alcotest.(check bool) "f carries the enclosing-slice binding"
        true
        (match field "bp" f with Some (Str "e") -> true | _ -> false)
  | _ -> Alcotest.fail "expected exactly three flow points")

let test_metrics_json_tail_percentiles () =
  let m = M.create () in
  let h = M.histogram m "lat" in
  for _ = 1 to 10 do M.observe h 1000 done;
  match field "histograms" (parse_json (M.to_json m)) with
  | Some hs -> (
      match field "lat" hs with
      | Some hj ->
          Alcotest.(check int) "p99 in JSON" 1000 (num_exn "p99" hj);
          Alcotest.(check int) "p999 in JSON" 1000 (num_exn "p999" hj)
      | None -> Alcotest.fail "histogram lat missing from JSON")
  | None -> Alcotest.fail "no histograms object"

(* --- Veil-Scope: critical-path reconstruction --- *)

module Cp = Obs.Critpath

(* One synthetic request: an os_call Begin/End envelope [100, 200] on
   vmpl 3, a Monitor_serial wait [110, 130] inside it, and a domain
   switch [130, 170] at vmpl 0 — innermost-wins flattening must slice
   the envelope around both. *)
let test_critpath_flattening () =
  let t = Tr.create ~capacity:64 () in
  Tr.set_enabled t true;
  Tr.span_begin t ~bucket:"monitor" ~id:5 ~vcpu:0 ~vmpl:3 ~ts:100 "os_call";
  Tr.complete t ~bucket:"monitor" ~id:5 ~vcpu:0 ~vmpl:3 ~ts:110 ~dur:20 (Tr.Wait Tr.Monitor_serial);
  Tr.complete t ~bucket:"switch" ~id:5 ~vcpu:0 ~vmpl:0 ~ts:130 ~dur:40 Tr.Domain_switch;
  Tr.span_end t ~vcpu:0 ~vmpl:3 ~ts:200 "os_call";
  (* an id-less event must not start a request of its own *)
  Tr.emit t ~vcpu:0 ~vmpl:0 ~ts:50 Tr.Npf;
  match Cp.requests (Tr.events t) with
  | [ rq ] ->
      Alcotest.(check int) "id" 5 rq.Cp.rq_id;
      Alcotest.(check int) "start" 100 rq.Cp.rq_start;
      Alcotest.(check int) "finish" 200 rq.Cp.rq_finish;
      Alcotest.(check int) "extent" 100 (Cp.extent rq);
      (* [100,110) envelope + [170,200) envelope at vmpl 3; [130,170)
         switch at vmpl 0; the wait slice [110,130) is not work *)
      Alcotest.(check (list (pair int int))) "work by vmpl" [ (0, 40); (3, 40) ] rq.Cp.rq_work;
      Alcotest.(check int) "total work" 80 (Cp.total_work rq);
      Alcotest.(check int) "total wait" 20 (Cp.total_wait rq);
      (match rq.Cp.rq_wait with
      | [ ((vmpl, reason), c) ] ->
          Alcotest.(check int) "wait at the caller's vmpl" 3 vmpl;
          Alcotest.(check string) "wait reason" "monitor_serial" (Tr.wait_reason_name reason);
          Alcotest.(check int) "wait cycles" 20 c
      | _ -> Alcotest.fail "expected exactly one wait entry");
      Alcotest.(check int) "work + wait = extent" (Cp.extent rq)
        (Cp.total_work rq + Cp.total_wait rq)
  | rqs -> Alcotest.failf "expected one request, got %d" (List.length rqs)

(* Uncovered extent between a request's spans is labelled as a gap
   (vmpl -1) rather than silently attributed to either side. *)
let test_critpath_gap_labelled () =
  let t = Tr.create ~capacity:64 () in
  Tr.set_enabled t true;
  Tr.complete t ~id:6 ~vcpu:0 ~vmpl:3 ~ts:300 ~dur:10 Tr.Syscall;
  Tr.complete t ~id:6 ~vcpu:1 ~vmpl:0 ~ts:350 ~dur:10 Tr.Vmgexit;
  (* an id whose only evidence is zero-length yields no request *)
  Tr.complete t ~id:7 ~vcpu:0 ~vmpl:0 ~ts:400 ~dur:0 Tr.Vmgexit;
  match Cp.requests (Tr.events t) with
  | [ rq ] ->
      Alcotest.(check int) "extent covers the gap" 60 (Cp.extent rq);
      Alcotest.(check (list (pair int int))) "gap attributed to vmpl -1"
        [ (-1, 40); (0, 10); (3, 10) ]
        rq.Cp.rq_work;
      let gap = List.find (fun s -> s.Cp.sg_vmpl = -1) rq.Cp.rq_segs in
      Alcotest.(check string) "gap segment named" "gap" gap.Cp.sg_name;
      Alcotest.(check int) "gap extent" 40 gap.Cp.sg_dur
  | rqs -> Alcotest.failf "expected one request, got %d" (List.length rqs)

(* summarize folds per-request decompositions; wait_by_reason projects
   the (vmpl, reason) keys down to reasons. *)
let test_critpath_summary () =
  let t = Tr.create ~capacity:64 () in
  Tr.set_enabled t true;
  Tr.complete t ~id:1 ~vcpu:0 ~vmpl:3 ~ts:100 ~dur:50 Tr.Syscall;
  Tr.complete t ~id:1 ~vcpu:0 ~vmpl:3 ~ts:110 ~dur:10 (Tr.Wait Tr.Runqueue);
  Tr.complete t ~id:2 ~vcpu:1 ~vmpl:3 ~ts:200 ~dur:30 Tr.Syscall;
  Tr.complete t ~id:2 ~vcpu:1 ~vmpl:3 ~ts:205 ~dur:5 (Tr.Wait Tr.Runqueue);
  let rqs = Cp.requests (Tr.events t) in
  Alcotest.(check int) "two requests" 2 (List.length rqs);
  let sm = Cp.summarize rqs in
  Alcotest.(check int) "requests" 2 sm.Cp.sm_requests;
  Alcotest.(check int) "cycles = summed extents" 80 sm.Cp.sm_cycles;
  Alcotest.(check (list (pair int int))) "work folded" [ (3, 65) ] sm.Cp.sm_work;
  (match Cp.wait_by_reason sm with
  | [ (reason, c) ] ->
      Alcotest.(check string) "reason folded" "runqueue" (Tr.wait_reason_name reason);
      Alcotest.(check int) "wait cycles folded" 15 c
  | _ -> Alcotest.fail "expected one folded wait reason");
  (* renderers stay total on synthetic input *)
  Alcotest.(check bool) "render is non-empty" true
    (String.length (Cp.render (List.hd rqs)) > 0);
  Alcotest.(check bool) "render_summary is non-empty" true
    (String.length (Cp.render_summary sm) > 0)

let suite =
  [
    Alcotest.test_case "ring wraparound keeps newest" `Quick test_ring_wraparound;
    Alcotest.test_case "ring wraparound across open spans" `Quick test_ring_wraparound_spans;
    Alcotest.test_case "disabled tracer is a no-op" `Quick test_disabled_is_noop;
    Alcotest.test_case "clear" `Quick test_clear;
    Alcotest.test_case "span nesting well-formed" `Quick test_span_nesting;
    Alcotest.test_case "span misnesting detected" `Quick test_span_misnesting;
    Alcotest.test_case "orphan/open spans tolerated" `Quick test_span_open_and_orphan_tolerated;
    Alcotest.test_case "histogram percentiles exact" `Quick test_histogram_percentiles;
    Alcotest.test_case "histogram p100 and mean" `Quick test_histogram_p100_true_max;
    Alcotest.test_case "counter interning" `Quick test_counter_intern;
    Alcotest.test_case "reset" `Quick test_reset;
    Alcotest.test_case "chrome export valid + monotonic" `Quick test_chrome_export;
    Alcotest.test_case "metrics JSON parses" `Quick test_metrics_json_parses;
    Alcotest.test_case "profiler empty" `Quick test_profiler_empty;
    Alcotest.test_case "profiler self/total accounting" `Quick test_profiler_self_total;
    Alcotest.test_case "profiler leaves + cross-vmpl" `Quick test_profiler_leaf_and_cross_vmpl;
    Alcotest.test_case "profiler unclosed frames" `Quick test_profiler_unclosed_frame;
    Alcotest.test_case "profiler disabled is free" `Quick test_profiler_disabled_noop;
    Alcotest.test_case "profiler causal ids" `Quick test_profiler_causal_ids;
    Alcotest.test_case "profiler depth overflow" `Quick test_profiler_depth_overflow;
    Alcotest.test_case "folded stacks round-trip" `Quick test_folded_roundtrip;
    Alcotest.test_case "wait kind names" `Quick test_wait_kind_names;
    Alcotest.test_case "dropped counter" `Quick test_dropped_counter;
    Alcotest.test_case "chrome truncation warning" `Quick test_chrome_truncation_warning;
    Alcotest.test_case "chrome flow events" `Quick test_chrome_flow_events;
    Alcotest.test_case "metrics JSON tail percentiles" `Quick test_metrics_json_tail_percentiles;
    Alcotest.test_case "critical-path flattening" `Quick test_critpath_flattening;
    Alcotest.test_case "critical-path gap labelling" `Quick test_critpath_gap_labelled;
    Alcotest.test_case "critical-path summary" `Quick test_critpath_summary;
  ]
