(* Whole-system property tests: random operation sequences must
   preserve Veil's global security invariants, and the kernel must
   survive arbitrary syscall garbage. *)

module T = Sevsnp.Types
module P = Sevsnp.Platform
module K = Guest_kernel.Ktypes
module S = Guest_kernel.Sysno
module V = Veil_core
module Kern = Guest_kernel.Kernel
module Rt = Enclave_sdk.Runtime

let q = QCheck_alcotest.to_alcotest

(* --- invariant: confidentiality partition of physical memory ---

   At every point: a frame is writable by Dom_UNT iff it is not a
   monitor/service/VMSA/enclave frame; enclave frames are never
   readable by Dom_UNT; monitor frames are never accessible below
   VMPL-0. *)

let partition_holds (sys : V.Boot.veil_system) =
  let rmp = sys.V.Boot.platform.P.rmp in
  let l = sys.V.Boot.layout in
  let ok = ref true in
  let check_region (r : V.Layout.region) f =
    for gpfn = r.V.Layout.lo to r.V.Layout.hi - 1 do
      if not (f gpfn) then ok := false
    done
  in
  let p3 g = Sevsnp.Rmp.perms_of rmp g T.Vmpl3 in
  let none_below g =
    Sevsnp.Perm.equal (Sevsnp.Rmp.perms_of rmp g T.Vmpl1) Sevsnp.Perm.none
    && Sevsnp.Perm.equal (Sevsnp.Rmp.perms_of rmp g T.Vmpl2) Sevsnp.Perm.none
    && Sevsnp.Perm.equal (p3 g) Sevsnp.Perm.none
  in
  check_region l.V.Layout.mon_image none_below;
  check_region l.V.Layout.mon_heap (fun g ->
      (* the monitor GHCB is a shared mailbox; everything private stays dark *)
      Sevsnp.Rmp.state rmp g = Sevsnp.Rmp.Shared || none_below g);
  check_region l.V.Layout.svc_region (fun g -> Sevsnp.Perm.equal (p3 g) Sevsnp.Perm.none);
  check_region l.V.Layout.log_region (fun g -> Sevsnp.Perm.equal (p3 g) Sevsnp.Perm.none);
  (* every frame any live enclave currently owns is dark to Dom_UNT *)
  Hashtbl.length sys.V.Boot.platform.P.vmsa_table > 0
  &&
  (Sevsnp.Rmp.iter_entries rmp (fun gpfn e ->
       if e.Sevsnp.Rmp.vmsa && not (Sevsnp.Perm.equal e.Sevsnp.Rmp.perms.(3) Sevsnp.Perm.none) then
         ok := false;
       ignore gpfn);
   !ok)

(* One step of "system activity" chosen by the generator. *)
type step =
  | Enclave_create of int
  | Enclave_destroy
  | Enclave_evict
  | Enclave_restore
  | Module_load of int
  | Module_unload
  | Audit_burst of int
  | Run_enclave_io

let step_gen =
  QCheck.Gen.(
    frequency
      [
        (3, map (fun n -> Enclave_create (1 + (n mod 3))) small_nat);
        (2, return Enclave_destroy);
        (2, return Enclave_evict);
        (2, return Enclave_restore);
        (2, map (fun n -> Module_load (1 + (n mod 2))) small_nat);
        (1, return Module_unload);
        (2, map (fun n -> Audit_burst (1 + (n mod 5))) small_nat);
        (2, return Run_enclave_io);
      ])

let apply_step sys live_rts live_modules evicted step =
  let kernel = sys.V.Boot.kernel in
  match step with
  | Enclave_create pages -> (
      let proc = Kern.spawn kernel in
      match Rt.create sys ~heap_pages:(2 * pages) ~stack_pages:1 ~binary:(Bytes.make 4096 'p') proc with
      | Ok rt -> live_rts := rt :: !live_rts
      | Error _ -> ())
  | Enclave_destroy -> (
      match !live_rts with
      | rt :: rest when not (V.Encsvc.is_destroyed (Rt.enclave rt)) ->
          (match Rt.destroy rt with Ok () -> live_rts := rest | Error _ -> ())
      | _ -> ())
  | Enclave_evict -> (
      match !live_rts with
      | rt :: _ when not (V.Encsvc.is_destroyed (Rt.enclave rt)) -> (
          let enclave = Rt.enclave rt in
          let va = Rt.heap_base rt in
          match V.Encsvc.resident_frame enclave va with
          | Some frame -> (
              match
                V.Monitor.os_call sys.V.Boot.mon sys.V.Boot.vcpu
                  (V.Idcb.R_enclave_evict { enclave_id = V.Encsvc.enclave_id enclave; va })
              with
              | V.Idcb.Resp_ok -> evicted := (rt, va, frame) :: !evicted
              | _ -> ())
          | None -> ())
      | _ -> ())
  | Enclave_restore -> (
      match !evicted with
      | (rt, va, frame) :: rest when not (V.Encsvc.is_destroyed (Rt.enclave rt)) ->
          (match
             V.Monitor.os_call sys.V.Boot.mon sys.V.Boot.vcpu
               (V.Idcb.R_enclave_restore
                  { enclave_id = V.Encsvc.enclave_id (Rt.enclave rt); va; gpfn = frame })
           with
          | V.Idcb.Resp_ok -> evicted := rest
          | _ -> evicted := rest)
      | _ :: rest -> evicted := rest
      | [] -> ())
  | Module_load i -> (
      let img =
        Guest_kernel.Kmodule.build (Kern.rng kernel)
          ~name:(Printf.sprintf "prop-%d-%d" i (List.length !live_modules))
          ~text_size:4096 ~data_size:256 ~symbols:[ "ksym_0" ]
      in
      Kern.vendor_sign_module kernel img;
      match Kern.load_module kernel img with
      | Ok _ -> live_modules := img.Guest_kernel.Kmodule.name :: !live_modules
      | Error _ -> ())
  | Module_unload -> (
      match !live_modules with
      | name :: rest -> (
          match Kern.unload_module kernel name with Ok () -> live_modules := rest | Error _ -> ())
      | [] -> ())
  | Audit_burst n ->
      Guest_kernel.Audit.set_rules (Kern.audit kernel) [ S.Open ];
      let proc = Kern.init_process kernel in
      for i = 0 to n - 1 do
        ignore (Kern.invoke kernel proc S.Open [ K.Str (Printf.sprintf "/tmp/p%d" i); K.Int 0x42; K.Int 0o644 ])
      done
  | Run_enclave_io -> (
      match !live_rts with
      | rt :: _ when not (V.Encsvc.is_destroyed (Rt.enclave rt)) -> (
          try
            Rt.run rt (fun rt ->
                match Rt.ocall rt S.Getpid [] with K.RInt _ -> () | _ -> failwith "getpid")
          with P.Guest_page_fault _ -> () (* heap page may be evicted *))
      | _ -> ())

let system_invariant =
  QCheck.Test.make ~name:"random activity preserves the memory partition" ~count:12
    (QCheck.make QCheck.Gen.(list_size (5 -- 25) step_gen))
    (fun steps ->
      let sys = V.Boot.boot_veil ~npages:2048 ~seed:71 () in
      let live_rts = ref [] and live_modules = ref [] and evicted = ref [] in
      List.iter (fun s -> apply_step sys live_rts live_modules evicted s) steps;
      partition_holds sys
      (* and the protected log always matches what kaudit captured *)
      && V.Slog.count sys.V.Boot.slog
         = (V.Slog.stats sys.V.Boot.slog).V.Slog.appended)

(* --- kernel fuzzing: random syscalls never break the kernel --- *)

let arg_gen =
  QCheck.Gen.(
    frequency
      [
        (4, map (fun n -> K.Int (n - 500)) (0 -- 10_000));
        (2, map (fun s -> K.Str s) (string_size ~gen:(char_range 'a' 'z') (0 -- 12)));
        (1, map (fun s -> K.Str ("/" ^ s)) (string_size ~gen:(char_range 'a' 'z') (0 -- 12)));
        (2, map (fun b -> K.Buf b) (bytes_size (0 -- 64)));
        (1, map (fun n -> K.Ptr n) (0 -- 1_000_000));
      ])

let sysno_gen = QCheck.Gen.oneofl S.all

let kernel_fuzz =
  QCheck.Test.make ~name:"kernel survives arbitrary syscall garbage" ~count:40
    (QCheck.make QCheck.Gen.(list_size (5 -- 60) (pair sysno_gen (list_size (0 -- 6) arg_gen))))
    (fun calls ->
      let n = V.Boot.boot_native ~npages:2048 ~seed:73 () in
      let kernel = n.V.Boot.n_kernel in
      let proc = Kern.spawn kernel in
      List.for_all
        (fun (sys, args) ->
          match Kern.invoke kernel proc sys args with
          | K.RInt _ | K.RBuf _ | K.RStat _ | K.RErr _ -> true
          | exception P.Guest_page_fault _ -> true (* wild user pointers *)
          | exception e ->
              Printf.eprintf "kernel_fuzz: %s %s raised %s\n" (S.to_string sys)
                (String.concat " " (List.map (Format.asprintf "%a" K.pp_arg) args))
                (Printexc.to_string e);
              false)
        calls
      (* the kernel is still functional afterwards *)
      &&
      match Kern.invoke kernel proc S.Getpid [] with
      | K.RInt pid -> pid = proc.Guest_kernel.Process.pid
      | _ -> false)

let sdk_fuzz =
  QCheck.Test.make ~name:"SDK survives arbitrary redirected garbage" ~count:10
    (QCheck.make QCheck.Gen.(list_size (3 -- 25) (pair sysno_gen (list_size (0 -- 6) arg_gen))))
    (fun calls ->
      let sys = V.Boot.boot_veil ~npages:2048 ~seed:79 () in
      let proc = Kern.spawn sys.V.Boot.kernel in
      match Rt.create sys ~binary:(Bytes.make 4096 'f') proc with
      | Error _ -> false
      | Ok rt -> (
          try
            Rt.run rt (fun rt ->
                List.iter
                  (fun (s, args) ->
                    match Rt.ocall rt s args with
                    | K.RInt _ | K.RBuf _ | K.RStat _ | K.RErr _ -> ())
                  calls);
            true
          with
          | Rt.Enclave_killed _ -> true (* unsupported call: by design *)
          | P.Guest_page_fault _ -> true
          | _ -> false))

let suite = [ q system_invariant; q kernel_fuzz; q sdk_fuzz ]
