(* Veil-Chaos tests (ISSUE 4): fault-plan determinism, hardened guest
   protocols under injection, watchdog, and the trial driver's two
   robustness invariants. *)

module FP = Chaos.Fault_plan
module T = Sevsnp.Types
module P = Sevsnp.Platform
module Hv = Hypervisor.Hv
module B = Veil_core.Boot
module CD = Chaos_driver

let mval sys name =
  Obs.Metrics.value (Obs.Metrics.counter sys.B.platform.P.metrics name)

(* --- the plan itself --- *)

let test_plan_deterministic () =
  let mk () =
    let p = FP.create ~seed:42 () in
    List.iter (fun s -> FP.set_site p s ~prob:0.3 ()) FP.all_sites;
    for i = 0 to 499 do
      ignore (FP.step p);
      ignore (FP.fire p (List.nth FP.all_sites (i mod FP.nsites)));
      ignore (FP.draw p 100)
    done;
    p
  in
  let a = mk () and b = mk () in
  Alcotest.(check bool) "same seed, same journal" true (FP.journal_equal a b);
  Alcotest.(check bool) "some injections fired" true (FP.total_hits a > 0);
  let c = FP.create ~seed:43 () in
  List.iter (fun s -> FP.set_site c s ~prob:0.3 ()) FP.all_sites;
  for i = 0 to 499 do
    ignore (FP.step c);
    ignore (FP.fire c (List.nth FP.all_sites (i mod FP.nsites)));
    ignore (FP.draw c 100)
  done;
  Alcotest.(check bool) "different seed, different journal" false (FP.journal_equal a c)

let test_plan_zero_prob_is_inert () =
  let p = FP.create ~seed:7 () in
  for _ = 1 to 1000 do
    List.iter (fun s -> Alcotest.(check bool) "never fires" false (FP.fire p s)) FP.all_sites
  done;
  Alcotest.(check int) "no hits" 0 (FP.total_hits p);
  List.iter
    (fun s -> Alcotest.(check int) "no PRNG draws consumed" 0 (FP.draws p s))
    FP.all_sites

let test_plan_schedules () =
  let p = FP.create ~seed:9 () in
  FP.set_site p FP.Rmpadjust_fail ~max_hits:3 ~prob:1.0 ();
  FP.set_site p FP.Pvalidate_fail ~skip:2 ~prob:1.0 ();
  let fired = List.init 10 (fun _ -> FP.fire p FP.Rmpadjust_fail) in
  Alcotest.(check int) "max_hits caps injections" 3
    (List.length (List.filter Fun.id fired));
  let fired = List.init 5 (fun _ -> FP.fire p FP.Pvalidate_fail) in
  Alcotest.(check (list bool)) "skip ignores the first eligible draws"
    [ false; false; true; true; true ] fired

(* Adversarial seeds for the state derivation
   [(mixed land max_int) lor 1]: seed 0, int extremes, and the two
   seeds that solve [mixed land max_int = 0] (found by fixing the 16
   free low bits and back-substituting through the multiply).  Without
   the [lor 1] the xorshift state sticks at 0 — every [draw] returns 0
   and the schedule degenerates.  Each seed must yield a well-mixed,
   reproducible stream. *)
let test_plan_adversarial_seeds () =
  let seeds = [ 0; max_int; min_int; 0x396b1b8a8b9b10bc; -3824519917198271814 ] in
  List.iter
    (fun seed ->
      let tag = Printf.sprintf "seed %#x" seed in
      let p = FP.create ~seed () in
      let distinct = Hashtbl.create 64 in
      for _ = 1 to 64 do
        Hashtbl.replace distinct (FP.draw p 65536) ()
      done;
      Alcotest.(check bool)
        (tag ^ ": draws are non-degenerate")
        true
        (Hashtbl.length distinct > 32);
      let arm seed =
        let p = FP.create ~seed () in
        List.iter (fun s -> FP.set_site p s ~prob:0.3 ()) FP.all_sites;
        for i = 0 to 199 do
          ignore (FP.step p);
          ignore (FP.fire p (List.nth FP.all_sites (i mod FP.nsites)))
        done;
        p
      in
      let a = arm seed and b = arm seed in
      Alcotest.(check bool) (tag ^ ": replay-identical") true (FP.journal_equal a b);
      Alcotest.(check bool) (tag ^ ": prob 0.3 fires sometimes") true (FP.total_hits a > 0);
      Alcotest.(check bool)
        (tag ^ ": prob 0.3 also misses")
        true
        (FP.total_hits a < 200))
    seeds

let test_site_names_roundtrip () =
  List.iter
    (fun s ->
      match FP.site_of_name (FP.site_name s) with
      | Some s' -> Alcotest.(check bool) "round trip" true (s = s')
      | None -> Alcotest.fail ("no round trip for " ^ FP.site_name s))
    FP.all_sites;
  Alcotest.(check bool) "unknown name rejected" true (FP.site_of_name "nonsense" = None);
  Alcotest.(check int) "fourteen sites" 14 FP.nsites

let test_summary_json_mentions_seed () =
  let p = FP.create ~seed:12345 () in
  let j = FP.summary_json p in
  let has_sub needle hay =
    let n = String.length needle in
    let rec go i = i + n <= String.length hay && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "seed printed" true (has_sub "\"seed\":12345" j)

(* --- armed-but-zero plan is behaviourally invisible --- *)

let test_armed_zero_plan_identical_boot () =
  let clean = B.boot_veil ~npages:2048 ~seed:5 () in
  let plan = FP.create ~seed:1 () in
  let armed = B.boot_veil ~npages:2048 ~seed:5 ~chaos:plan () in
  Alcotest.(check int) "identical boot cycle count" clean.B.boot_cycles armed.B.boot_cycles;
  Alcotest.(check int) "no steps consumed beyond exits" (FP.total_hits plan) 0

(* --- hardened guest protocols under targeted injection --- *)

let test_transient_rmpadjust_retried () =
  let plan = FP.create ~seed:3 () in
  FP.set_site plan FP.Rmpadjust_fail ~max_hits:3 ~prob:1.0 ();
  let sys = B.boot_veil ~npages:2048 ~seed:5 ~chaos:plan () in
  Alcotest.(check int) "three transient failures injected" 3 (FP.hits plan FP.Rmpadjust_fail);
  Alcotest.(check bool) "bounded retry absorbed them" true (mval sys "monitor.insn_retries" >= 3);
  Alcotest.(check bool) "boot completed at Dom_UNT" true
    (T.equal_vmpl (Sevsnp.Vcpu.vmpl sys.B.vcpu) T.Vmpl3)

let test_transient_pvalidate_retried () =
  let plan = FP.create ~seed:3 () in
  FP.set_site plan FP.Pvalidate_fail ~max_hits:4 ~prob:1.0 ();
  let sys = B.boot_veil ~npages:2048 ~seed:5 ~chaos:plan () in
  Alcotest.(check int) "four transient failures injected" 4 (FP.hits plan FP.Pvalidate_fail);
  Alcotest.(check bool) "bounded retry absorbed them" true (mval sys "monitor.insn_retries" >= 4)

let test_ghcb_corruption_sanitized () =
  let plan = FP.create ~seed:3 () in
  FP.set_site plan FP.Ghcb_corrupt ~max_hits:2 ~prob:1.0 ();
  let sys = B.boot_veil ~npages:2048 ~seed:5 ~chaos:plan () in
  Alcotest.(check int) "two corruptions injected" 2 (FP.hits plan FP.Ghcb_corrupt);
  Alcotest.(check bool) "out-of-protocol responses rejected and retried" true
    (mval sys "monitor.ghcb_sanitized" >= 1)

let test_refused_switch_retried () =
  let plan = FP.create ~seed:3 () in
  let sys = B.boot_veil ~npages:2048 ~seed:5 ~chaos:plan () in
  (* Arm refusal only after boot so we exercise the steady-state
     domain-switch path, then drive one os_call round trip. *)
  FP.set_site plan FP.Vmgexit_refuse ~max_hits:2 ~prob:1.0 ();
  Veil_core.Monitor.domain_switch sys.B.mon sys.B.vcpu ~target:Veil_core.Privdom.Mon;
  Veil_core.Monitor.domain_switch sys.B.mon sys.B.vcpu ~target:Veil_core.Privdom.Unt;
  Alcotest.(check bool) "refusals injected" true (FP.hits plan FP.Vmgexit_refuse >= 1);
  Alcotest.(check bool) "verified switch re-requested" true
    (mval sys "monitor.switch_retries" >= 1);
  Alcotest.(check bool) "landed at Dom_UNT regardless" true
    (T.equal_vmpl (Sevsnp.Vcpu.vmpl sys.B.vcpu) T.Vmpl3)

let test_os_call_replay_suppressed () =
  let sys = B.boot_veil ~npages:2048 ~seed:5 () in
  let vcpu = sys.B.vcpu in
  let idcb = Veil_core.Monitor.idcb_of sys.B.mon ~vcpu_id:vcpu.Sevsnp.Vcpu.id in
  let req = Veil_core.Idcb.R_tpm_extend { pcr = 1; data = Bytes.of_string "once" } in
  let r1 = Veil_core.Monitor.os_call sys.B.mon vcpu req in
  Alcotest.(check bool) "call served" true (r1 = Veil_core.Idcb.Resp_ok);
  (* A duplicated relay re-runs the serving path with the same
     sequence number: the monitor must not re-execute the request. *)
  idcb.Veil_core.Idcb.request <- req;
  Veil_core.Monitor.domain_switch sys.B.mon vcpu ~target:Veil_core.Privdom.Sec;
  let r2 = Veil_core.Monitor.serve_pending sys.B.mon vcpu in
  Veil_core.Monitor.domain_switch sys.B.mon vcpu ~target:Veil_core.Privdom.Unt;
  Alcotest.(check bool) "replay answered from cache" true (r2 = r1);
  Alcotest.(check bool) "replay counted" true (mval sys "monitor.replays_suppressed" >= 1)

let test_relay_drop_counted_and_traced () =
  let plan = FP.create ~seed:3 () in
  let sys = B.boot_veil ~npages:2048 ~seed:5 ~chaos:plan () in
  let tr = sys.B.platform.P.tracer in
  Obs.Trace.set_enabled tr true;
  FP.set_site plan FP.Relay_drop ~max_hits:1 ~prob:1.0 ();
  let j0 = Guest_kernel.Kernel.jiffies sys.B.kernel in
  Hv.inject_interrupt sys.B.hv sys.B.vcpu;
  Alcotest.(check int) "interrupt silently dropped" j0
    (Guest_kernel.Kernel.jiffies sys.B.kernel);
  Alcotest.(check int) "drop counted" 1 (mval sys "hv.relay.dropped");
  let dropped_spans =
    List.filter
      (fun e -> e.Obs.Trace.ev_kind = Obs.Trace.Span "hv.relay_dropped")
      (Obs.Trace.events tr)
  in
  Alcotest.(check int) "drop traced" 1 (List.length dropped_spans);
  Hv.inject_interrupt sys.B.hv sys.B.vcpu;
  Alcotest.(check int) "next interrupt delivered" (j0 + 1)
    (Guest_kernel.Kernel.jiffies sys.B.kernel)

let test_relay_dup_redelivers () =
  let plan = FP.create ~seed:3 () in
  let sys = B.boot_veil ~npages:2048 ~seed:5 ~chaos:plan () in
  FP.set_site plan FP.Relay_dup ~max_hits:1 ~prob:1.0 ();
  let j0 = Guest_kernel.Kernel.jiffies sys.B.kernel in
  Hv.inject_interrupt sys.B.hv sys.B.vcpu;
  (* the duplicate is delivered after the first was acked: the ISR
     runs twice — observable, but harmless to guest state *)
  Alcotest.(check int) "delivered twice" (j0 + 2) (Guest_kernel.Kernel.jiffies sys.B.kernel)

let test_watchdog_halts_on_budget () =
  let plan = FP.create ~max_steps:3 ~seed:3 () in
  match B.boot_veil ~npages:2048 ~seed:5 ~chaos:plan () with
  | _ -> Alcotest.fail "boot exceeded the step budget without halting"
  | exception T.Cvm_halted r ->
      Alcotest.(check bool) "watchdog reason" true
        (String.length r >= 14 && String.sub r 0 14 = "chaos watchdog")

(* --- the trial driver: invariants over full workloads --- *)

let test_driver_trials_hold_invariants () =
  List.iter
    (fun seed ->
      List.iter
        (fun w ->
          let t = CD.run_workload ~seed w in
          if not (CD.outcome_ok t.CD.tr_outcome) then
            Alcotest.fail
              (Printf.sprintf "workload %s seed %d violated an invariant: %s"
                 (CD.workload_name w) seed
                 (CD.outcome_to_string t.CD.tr_outcome)))
        CD.all_workloads)
    [ 2; 71 ]

let test_driver_replay_identical () =
  let a = CD.run_workload ~seed:1009 CD.Wl_syscall in
  let b = CD.run_workload ~seed:1009 CD.Wl_syscall in
  Alcotest.(check bool) "same seed, identical injection journal" true
    (FP.journal_equal a.CD.tr_plan b.CD.tr_plan);
  Alcotest.(check bool) "plan actually fired" true (FP.total_hits a.CD.tr_plan > 0)

let test_attacks_stay_blocked_under_chaos () =
  let breached, n = CD.attacks_under_chaos ~seed:13 () in
  Alcotest.(check bool) "all attacks ran" true (n >= 20);
  List.iter
    (fun (name, o) -> Alcotest.fail (Printf.sprintf "BREACHED under chaos: %s (%s)" name o))
    breached

let suite =
  [
    ("fault plan is seed-deterministic", `Quick, test_plan_deterministic);
    ("zero-probability plan is inert", `Quick, test_plan_zero_prob_is_inert);
    ("max_hits and skip schedules", `Quick, test_plan_schedules);
    ("adversarial seeds keep the PRNG live", `Quick, test_plan_adversarial_seeds);
    ("site names round trip", `Quick, test_site_names_roundtrip);
    ("summary json carries the seed", `Quick, test_summary_json_mentions_seed);
    ("armed all-zero plan boots identically", `Quick, test_armed_zero_plan_identical_boot);
    ("transient RMPADJUST failures retried", `Quick, test_transient_rmpadjust_retried);
    ("transient PVALIDATE failures retried", `Quick, test_transient_pvalidate_retried);
    ("GHCB corruption sanitized", `Quick, test_ghcb_corruption_sanitized);
    ("refused domain switch re-requested", `Quick, test_refused_switch_retried);
    ("replayed os_call served from cache", `Quick, test_os_call_replay_suppressed);
    ("dropped relay counted and traced", `Quick, test_relay_drop_counted_and_traced);
    ("duplicated relay redelivered after ack", `Quick, test_relay_dup_redelivers);
    ("watchdog halts on step budget", `Quick, test_watchdog_halts_on_budget);
    ("driver trials hold both invariants", `Slow, test_driver_trials_hold_invariants);
    ("driver replay is journal-identical", `Quick, test_driver_replay_identical);
    ("attacks stay blocked under chaos", `Slow, test_attacks_stay_blocked_under_chaos);
  ]
