(* Veil-Pulse tests (ISSUE 8): interval-ring wraparound, delta
   encoding across registry resets, windowed-vs-cumulative percentile
   divergence, exactly-on-target SLO burn, the lazy-gauge refresh
   hook, pulse-off schedule/cost identity, and a 20-seed export-tamper
   detection sweep. *)

module M = Obs.Metrics
module Pu = Obs.Pulse
module Tr = Obs.Trace
module FP = Chaos.Fault_plan
module B = Veil_core.Boot
module K = Guest_kernel.Kernel
module Kt = Guest_kernel.Ktypes
module S = Guest_kernel.Sysno
module Es = Workloads.Escale

(* --- interval ring --- *)

let test_ring_wraparound () =
  let m = M.create () in
  let c = M.counter m "ops" in
  let pu = Pu.create ~ring_cap:4 ~metrics:m () in
  Pu.arm pu ~interval:100 ~now:0;
  for k = 1 to 8 do
    M.add c (10 * k);
    Alcotest.(check bool) "capture fires" true (Pu.tick pu ~now:(k * 100))
  done;
  Alcotest.(check int) "captured" 8 (Pu.captured pu);
  Alcotest.(check int) "retained clamps to ring" 4 (Pu.retained pu);
  Alcotest.(check int) "overwritten" 4 (Pu.overwritten pu);
  Alcotest.(check int) "first retained" 4 (Pu.first_retained pu);
  Alcotest.(check (option (pair int int))) "evicted interval unreadable" None (Pu.bounds pu 3);
  Alcotest.(check (option (pair int int))) "oldest retained bounds" (Some (400, 500))
    (Pu.bounds pu 4);
  (* interval k (0-based) saw one add of 10*(k+1) *)
  Alcotest.(check (option int)) "newest delta" (Some 80) (Pu.counter_delta pu ~metric:"ops" 7);
  Alcotest.(check (option int)) "oldest retained delta" (Some 50)
    (Pu.counter_delta pu ~metric:"ops" 4)

let test_armed_no_elapse_no_capture () =
  let m = M.create () in
  let pu = Pu.create ~metrics:m () in
  Pu.arm pu ~interval:1_000 ~now:0;
  Alcotest.(check bool) "below epoch: no capture" false (Pu.tick pu ~now:999);
  Alcotest.(check int) "nothing captured" 0 (Pu.captured pu);
  Alcotest.(check bool) "disarmed tick is inert" false
    (Pu.disarm pu;
     Pu.tick pu ~now:1_000_000)

let test_flush_closes_partial_epoch () =
  let m = M.create () in
  let c = M.counter m "ops" in
  let pu = Pu.create ~metrics:m () in
  Pu.arm pu ~interval:1_000 ~now:0;
  M.add c 7;
  ignore (Pu.tick pu ~now:400);
  Alcotest.(check int) "no capture yet" 0 (Pu.captured pu);
  Pu.flush pu ~now:400;
  Alcotest.(check int) "flush captured the tail" 1 (Pu.captured pu);
  Alcotest.(check (option int)) "tail delta" (Some 7) (Pu.counter_delta pu ~metric:"ops" 0)

(* --- delta encoding across a registry reset --- *)

let test_delta_across_reset () =
  let m = M.create () in
  let c = M.counter m "ops" in
  let pu = Pu.create ~metrics:m () in
  Pu.arm pu ~interval:100 ~now:0;
  M.add c 100;
  ignore (Pu.tick pu ~now:100);
  Alcotest.(check (option int)) "first delta" (Some 100) (Pu.counter_delta pu ~metric:"ops" 0);
  (* a reset drops the cumulative value below the previous snapshot:
     Prometheus counter-reset semantics say the post-reset value IS
     the delta, never a negative number *)
  M.reset m;
  M.add c 5;
  ignore (Pu.tick pu ~now:200);
  Alcotest.(check (option int)) "delta after reset is the new value" (Some 5)
    (Pu.counter_delta pu ~metric:"ops" 1)

(* --- windowed vs cumulative percentiles on bimodal load --- *)

let test_windowed_vs_cumulative () =
  let m = M.create () in
  let h = M.histogram m "lat" in
  let pu = Pu.create ~metrics:m () in
  Pu.arm pu ~interval:100 ~now:0;
  (* interval 0: fast mode *)
  for _ = 1 to 90 do
    M.observe h 100
  done;
  ignore (Pu.tick pu ~now:100);
  (* interval 1: slow mode *)
  for _ = 1 to 10 do
    M.observe h 100_000
  done;
  ignore (Pu.tick pu ~now:200);
  let cumulative_p50 = M.percentile h 50.0 in
  let windowed_p50 =
    match Pu.hist_window pu ~metric:"lat" ~window:1 ~upto:1 with
    | Some (b, _, _) -> Pu.wpercentile ~buckets:b 50.0
    | None -> Alcotest.fail "no window"
  in
  (* 90 of 100 cumulative observations are fast, so the cumulative p50
     sits in the fast mode's bucket; interval 1 alone is all slow *)
  Alcotest.(check int) "cumulative p50 in the fast bucket" 127 cumulative_p50;
  Alcotest.(check int) "windowed p50 in the slow bucket" 131071 windowed_p50;
  (* merging both intervals reproduces the cumulative view *)
  match Pu.hist_window pu ~metric:"lat" ~window:2 ~upto:1 with
  | Some (b, n, _) ->
      Alcotest.(check int) "window covers everything" 100 n;
      Alcotest.(check int) "2-interval windowed p50 = cumulative" cumulative_p50
        (Pu.wpercentile ~buckets:b 50.0)
  | None -> Alcotest.fail "no 2-interval window"

(* --- SLO burn at exactly-on-target --- *)

let test_slo_exactly_on_target () =
  let m = M.create () in
  let h = M.histogram m "lat" in
  let tr = Tr.create ~capacity:64 () in
  Tr.set_enabled tr true;
  let pu = Pu.create ~metrics:m () in
  Pu.set_tracer pu (Some tr);
  (* 90% of observations must land in buckets wholly <= 1023 cycles *)
  Pu.objective pu ~name:"latency" ~metric:"lat" ~good_below:1023 ~slo:0.9 ~window:8;
  Pu.arm pu ~interval:100 ~now:0;
  for _ = 1 to 9 do
    M.observe h 512 (* bucket hi 1023: good *)
  done;
  M.observe h 2000 (* bucket hi 2047: bad *);
  ignore (Pu.tick pu ~now:100);
  (match Pu.burn_reports pu with
  | [ br ] ->
      Alcotest.(check int) "window total" 10 br.Pu.br_total;
      Alcotest.(check int) "window bad" 1 br.Pu.br_bad;
      Alcotest.(check (float 1e-9)) "burn exactly 1.0" 1.0 br.Pu.br_burn;
      Alcotest.(check bool) "on-budget does NOT cross" false br.Pu.br_crossed;
      Alcotest.(check int) "no crossings" 0 br.Pu.br_crossings
  | _ -> Alcotest.fail "expected one burn report");
  Alcotest.(check int) "no trace instant yet" 0 (Tr.emitted tr);
  (* one more bad observation tips the window strictly over budget *)
  M.observe h 2000;
  ignore (Pu.tick pu ~now:200);
  (match Pu.burn_reports pu with
  | [ br ] ->
      Alcotest.(check bool) "over budget crosses" true br.Pu.br_crossed;
      Alcotest.(check int) "one edge-triggered crossing" 1 br.Pu.br_crossings
  | _ -> Alcotest.fail "expected one burn report");
  match List.filter (fun e -> e.Tr.ev_phase = Tr.Instant) (Tr.events tr) with
  | [ ev ] ->
      Alcotest.(check string) "crossing event name" "slo.latency" (Tr.kind_name ev.Tr.ev_kind);
      Alcotest.(check string) "crossing event bucket" "pulse" ev.Tr.ev_bucket
  | evs -> Alcotest.failf "expected exactly one crossing instant, got %d" (List.length evs)

(* --- lazy-gauge refresh hook --- *)

let test_refresh_hook () =
  let m = M.create () in
  let g = M.gauge m "depth" in
  let src = ref 0 in
  M.set_refresh m (fun () -> M.set g !src);
  src := 42;
  (* to_json refreshes before rendering — the gauge can never be stale
     in an export *)
  let json = M.to_json m in
  Alcotest.(check bool) "to_json sees the fresh value"
    true
    (let needle = "\"depth\":42" in
     let rec find i =
       i + String.length needle <= String.length json
       && (String.sub json i (String.length needle) = needle || find (i + 1))
     in
     find 0);
  Alcotest.(check int) "gauge refreshed" 42 (M.gauge_value g);
  (* the sampler refreshes too: a capture must snapshot the current
     source value, not whatever the gauge held at arm time *)
  let pu = Pu.create ~metrics:m () in
  Pu.arm pu ~interval:100 ~now:0;
  src := 77;
  ignore (Pu.tick pu ~now:100);
  Alcotest.(check (option int)) "sampled interval sees the fresh gauge" (Some 77)
    (Pu.gauge_at pu ~metric:"depth" 0)

let test_platform_trace_dropped_fresh () =
  let sys = B.boot_veil ~npages:1024 ~seed:5 () in
  let platform = sys.B.platform in
  let tr = platform.Sevsnp.Platform.tracer in
  Tr.set_enabled tr true;
  for i = 0 to Tr.capacity tr + 9 do
    Tr.emit tr ~vcpu:0 ~vmpl:0 ~ts:i Tr.Vmgexit
  done;
  Tr.set_enabled tr false;
  M.refresh platform.Sevsnp.Platform.metrics;
  match M.find platform.Sevsnp.Platform.metrics "trace.dropped" with
  | Some (M.Gauge g) ->
      Alcotest.(check int) "trace.dropped gauge tracks the ring" (Tr.dropped tr)
        (M.gauge_value g)
  | _ -> Alcotest.fail "no trace.dropped gauge"

(* --- pulse-off identity: schedules and switch legs unperturbed --- *)

let test_pulse_off_schedule_identity () =
  let spawn_work = Es.syscall_work ~ops_total:128 in
  let r_off, _ = Es.measure ~nvcpus:2 ~seed:7 ~spawn_work () in
  let r_off2, _ = Es.measure ~nvcpus:2 ~seed:7 ~spawn_work () in
  Alcotest.(check string) "pulse-off journal deterministic" r_off.Es.es_journal
    r_off2.Es.es_journal;
  let r_on, sys = Es.measure ~pulse:200_000 ~nvcpus:2 ~seed:7 ~spawn_work () in
  (* sampling charges cycles but must not perturb a single scheduling
     decision: the interleaver journal stays byte-identical *)
  Alcotest.(check string) "pulse-on journal byte-identical" r_off.Es.es_journal
    r_on.Es.es_journal;
  Alcotest.(check int) "same ops" r_off.Es.es_ops r_on.Es.es_ops;
  let pu = sys.B.platform.Sevsnp.Platform.pulse in
  Alcotest.(check bool) "run produced intervals" true (Pu.captured pu > 0);
  (* armed cost model: wall grows by exactly pulse_sample per capture
     charged on the capturing VCPU, so the drift is bounded by it *)
  let drift = r_on.Es.es_busy - r_off.Es.es_busy in
  Alcotest.(check bool) "busy drift = captures x sample cost" true
    (drift >= 0 && drift <= Pu.captured pu * Sevsnp.Cycles.pulse_sample)

let test_pulse_switch_leg_identity () =
  let sys = B.boot_veil ~npages:1024 ~seed:5 () in
  let platform = sys.B.platform in
  let vcpu = sys.B.vcpu in
  let pu = platform.Sevsnp.Platform.pulse in
  let roundtrip () =
    let t0 = Sevsnp.Vcpu.rdtsc vcpu in
    Veil_core.Monitor.domain_switch sys.B.mon vcpu ~target:Veil_core.Privdom.Mon;
    Veil_core.Monitor.domain_switch sys.B.mon vcpu ~target:Veil_core.Privdom.Unt;
    Sevsnp.Vcpu.rdtsc vcpu - t0
  in
  let base = roundtrip () in
  (* armed with an epoch that never elapses: the E2 switch legs are
     byte-identical to disarmed *)
  Pu.arm pu ~interval:max_int ~now:(Sevsnp.Vcpu.rdtsc vcpu);
  Alcotest.(check int) "armed no-capture roundtrip identical" base (roundtrip ());
  Pu.disarm pu;
  Alcotest.(check int) "disarmed again identical" base (roundtrip ());
  (* an epoch of 1 cycle captures at every world exit: the cost is
     exactly the modeled sample charge per capture, nothing hidden *)
  Pu.arm pu ~interval:1 ~now:(Sevsnp.Vcpu.rdtsc vcpu);
  let before = Pu.captured pu in
  let with_pulse = roundtrip () in
  let captures = Pu.captured pu - before in
  Pu.disarm pu;
  Alcotest.(check bool) "tiny epoch captures" true (captures > 0);
  Alcotest.(check int) "armed cost = captures x pulse_sample" base
    (with_pulse - (captures * Sevsnp.Cycles.pulse_sample))

(* --- attested export: 20-seed tamper detection sweep --- *)

let drive_pulse sys =
  let kernel = sys.B.kernel in
  let vcpu = sys.B.vcpu in
  let pu = sys.B.platform.Sevsnp.Platform.pulse in
  Guest_kernel.Audit.set_rules (K.audit kernel) [ S.Open ];
  Pu.arm pu ~interval:150_000 ~now:(Sevsnp.Vcpu.rdtsc vcpu);
  let proc = K.spawn kernel in
  for i = 0 to 49 do
    ignore
      (K.invoke kernel proc S.Open
         [ Kt.Str (Printf.sprintf "/tmp/t%d" i); Kt.Int 0x42; Kt.Int 0o644 ])
  done;
  Pu.flush pu ~now:(Sevsnp.Vcpu.rdtsc vcpu);
  Pu.disarm pu;
  pu

let test_export_verifies_clean () =
  let sys = B.boot_veil ~npages:1024 ~seed:5 () in
  let pu = drive_pulse sys in
  Alcotest.(check bool) "several intervals" true (Pu.captured pu >= 3);
  (match Pu.verify_export pu (Pu.export pu) with
  | Ok n -> Alcotest.(check int) "all retained intervals verify" (Pu.retained pu) n
  | Error (i, reason) -> Alcotest.failf "clean export rejected at %d: %s" i reason);
  (* the platform export path with chaos disarmed is the same clean
     series *)
  match Pu.verify_export pu (Sevsnp.Platform.export_pulse sys.B.platform) with
  | Ok _ -> ()
  | Error (i, reason) -> Alcotest.failf "platform export rejected at %d: %s" i reason

let test_tamper_sweep () =
  for seed = 1 to 20 do
    let sys = B.boot_veil ~npages:1024 ~seed:5 () in
    let pu = drive_pulse sys in
    let plan = FP.create ~seed () in
    FP.set_site plan FP.Pulse_export_tamper ~prob:1.0 ();
    Sevsnp.Platform.arm_chaos sys.B.platform plan;
    let tampered = Sevsnp.Platform.export_pulse sys.B.platform in
    Sevsnp.Platform.disarm_chaos sys.B.platform;
    Alcotest.(check int)
      (Printf.sprintf "seed %d: tamper site fired" seed)
      1
      (FP.hits plan FP.Pulse_export_tamper);
    match Pu.verify_export pu tampered with
    | Ok _ -> Alcotest.failf "seed %d: tampered export accepted" seed
    | Error (i, _) ->
        Alcotest.(check bool)
          (Printf.sprintf "seed %d: flagged interval in range" seed)
          true
          (i >= Pu.first_retained pu && i <= Pu.captured pu)
  done

let test_anchor_lines_in_slog () =
  let sys = B.boot_veil ~npages:1024 ~seed:5 () in
  let pu = drive_pulse sys in
  let n = B.anchor_pulse sys in
  Alcotest.(check int) "every interval anchored" (Pu.captured pu) n;
  Alcotest.(check int) "anchor lines in VeilS-LOG" (Pu.captured pu)
    (List.length (B.pulse_anchor_lines sys));
  Alcotest.(check int) "pending drained" 0 (Pu.pending_anchors pu);
  (* anchoring is idempotent once drained *)
  Alcotest.(check int) "re-anchor is a no-op" 0 (B.anchor_pulse sys)

let suite =
  [
    Alcotest.test_case "interval ring wraparound" `Quick test_ring_wraparound;
    Alcotest.test_case "armed no-elapse no-capture" `Quick test_armed_no_elapse_no_capture;
    Alcotest.test_case "flush closes partial epoch" `Quick test_flush_closes_partial_epoch;
    Alcotest.test_case "delta across registry reset" `Quick test_delta_across_reset;
    Alcotest.test_case "windowed vs cumulative percentiles" `Quick test_windowed_vs_cumulative;
    Alcotest.test_case "SLO burn exactly on target" `Quick test_slo_exactly_on_target;
    Alcotest.test_case "lazy-gauge refresh hook" `Quick test_refresh_hook;
    Alcotest.test_case "platform trace.dropped freshness" `Quick test_platform_trace_dropped_fresh;
    Alcotest.test_case "pulse-off schedule identity" `Quick test_pulse_off_schedule_identity;
    Alcotest.test_case "pulse switch-leg identity" `Quick test_pulse_switch_leg_identity;
    Alcotest.test_case "clean export verifies" `Quick test_export_verifies_clean;
    Alcotest.test_case "20-seed tamper detection sweep" `Quick test_tamper_sweep;
    Alcotest.test_case "anchors drain into VeilS-LOG" `Quick test_anchor_lines_in_slog;
  ]
