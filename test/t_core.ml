(* Veil core tests: privilege domains, boot, VeilMon, the three
   protected services, and the remote secure channel. *)

module T = Sevsnp.Types
module P = Sevsnp.Platform
module V = Veil_core
module Kern = Guest_kernel.Kernel
module S = Guest_kernel.Sysno
module K = Guest_kernel.Ktypes

let boot () = V.Boot.boot_veil ~npages:2048 ~seed:23 ()

(* --- privilege domains --- *)

let test_privdom () =
  Alcotest.(check int) "four domains" 4 (List.length V.Privdom.all);
  Alcotest.(check bool) "Mon is VMPL0+CPL0" true
    (V.Privdom.vmpl V.Privdom.Mon = T.Vmpl0 && V.Privdom.cpl V.Privdom.Mon = T.Cpl0);
  Alcotest.(check bool) "Enc is VMPL2+CPL3" true
    (V.Privdom.vmpl V.Privdom.Enc = T.Vmpl2 && V.Privdom.cpl V.Privdom.Enc = T.Cpl3);
  Alcotest.(check bool) "Mon > Sec > Enc > Unt" true
    (V.Privdom.more_privileged V.Privdom.Mon V.Privdom.Sec
    && V.Privdom.more_privileged V.Privdom.Sec V.Privdom.Enc
    && V.Privdom.more_privileged V.Privdom.Enc V.Privdom.Unt);
  List.iter
    (fun d -> Alcotest.(check bool) "roundtrip" true (V.Privdom.equal d (V.Privdom.of_vmpl (V.Privdom.vmpl d))))
    V.Privdom.all

let test_layout () =
  let l = V.Layout.standard ~npages:4096 () in
  Alcotest.(check int) "covers all frames" 4096 l.V.Layout.total_frames;
  (* regions tile without overlap *)
  let regions =
    [ l.V.Layout.mon_image; l.V.Layout.kernel_text; l.V.Layout.kernel_data; l.V.Layout.mon_heap;
      l.V.Layout.svc_region; l.V.Layout.log_region; l.V.Layout.idcb_region; l.V.Layout.kernel_free;
      l.V.Layout.vmsa_region ]
  in
  let sorted = List.sort (fun a b -> compare a.V.Layout.lo b.V.Layout.lo) regions in
  let rec contiguous = function
    | a :: (b :: _ as rest) -> a.V.Layout.hi = b.V.Layout.lo && contiguous rest
    | [ last ] -> last.V.Layout.hi = 4096
    | [] -> false
  in
  Alcotest.(check bool) "contiguous tiling" true ((List.hd sorted).V.Layout.lo = 0 && contiguous sorted);
  Alcotest.check_raises "too small" (Invalid_argument "Layout.standard: need at least 1024 frames")
    (fun () -> ignore (V.Layout.standard ~npages:512 ()))

(* --- boot & protection sweep --- *)

let test_boot_protections () =
  let sys = boot () in
  let platform = sys.V.Boot.platform in
  let l = sys.V.Boot.layout in
  let perms gpfn vmpl = Sevsnp.Rmp.perms_of platform.P.rmp gpfn vmpl in
  (* OS memory: vmpl3 full access, vmpl1 rw, vmpl2 none *)
  let f = l.V.Layout.kernel_free.V.Layout.lo + 5 in
  Alcotest.(check bool) "os frame vmpl3 all" true (Sevsnp.Perm.equal (perms f T.Vmpl3) Sevsnp.Perm.all);
  Alcotest.(check bool) "os frame vmpl1 rw" true (Sevsnp.Perm.equal (perms f T.Vmpl1) Sevsnp.Perm.rw);
  Alcotest.(check bool) "os frame vmpl2 none" true (Sevsnp.Perm.equal (perms f T.Vmpl2) Sevsnp.Perm.none);
  (* monitor heap dark to everyone below vmpl0 *)
  let m = l.V.Layout.mon_heap.V.Layout.lo in
  List.iter
    (fun vmpl ->
      Alcotest.(check bool) "mon frame dark" true (Sevsnp.Perm.equal (perms m vmpl) Sevsnp.Perm.none))
    [ T.Vmpl1; T.Vmpl2; T.Vmpl3 ];
  (* kernel text under KCI: no write, supervisor exec only *)
  let kt = perms l.V.Layout.kernel_text.V.Layout.lo T.Vmpl3 in
  Alcotest.(check bool) "kci text: r-x supervisor" true
    (kt.Sevsnp.Perm.read && (not kt.Sevsnp.Perm.write) && kt.Sevsnp.Perm.super_exec);
  let kd = perms l.V.Layout.kernel_data.V.Layout.lo T.Vmpl3 in
  Alcotest.(check bool) "kci data: rw, no supervisor exec" true
    (kd.Sevsnp.Perm.read && kd.Sevsnp.Perm.write && not kd.Sevsnp.Perm.super_exec)

let test_boot_cost_breakdown () =
  let sys = boot () in
  let native = V.Boot.boot_native ~npages:2048 ~seed:23 () in
  let delta = sys.V.Boot.boot_cycles - native.V.Boot.n_boot_cycles in
  Alcotest.(check bool) "veil boot costs more" true (delta > 0);
  (* the RMPADJUST sweep (~6400/page over OS+service memory) dominates *)
  let mon_cycles =
    Sevsnp.Cycles.read_bucket sys.V.Boot.vcpu.Sevsnp.Vcpu.counter Sevsnp.Cycles.Monitor
  in
  Alcotest.(check bool) "monitor work > 60% of delta" true (mon_cycles * 10 > delta * 6)

(* --- monitor: os_call, delegation, sanitizer --- *)

let test_os_call_roundtrip () =
  let sys = boot () in
  let target = Kern.alloc_frame sys.V.Boot.kernel in
  (match V.Monitor.os_call sys.V.Boot.mon sys.V.Boot.vcpu (V.Idcb.R_pvalidate { gpfn = target; to_private = false }) with
  | V.Idcb.Resp_ok -> ()
  | V.Idcb.Resp_error e -> Alcotest.fail e
  | _ -> Alcotest.fail "unexpected response");
  Alcotest.(check bool) "page now shared" true (Sevsnp.Rmp.state sys.V.Boot.platform.P.rmp target = Sevsnp.Rmp.Shared);
  Alcotest.(check bool) "back at Dom_UNT" true (T.equal_vmpl (Sevsnp.Vcpu.vmpl sys.V.Boot.vcpu) T.Vmpl3);
  Alcotest.(check int) "delegation counted" 1 (V.Monitor.stats sys.V.Boot.mon).V.Monitor.delegated_pvalidates

let test_os_call_cost () =
  let sys = boot () in
  let vcpu = sys.V.Boot.vcpu in
  let before = Sevsnp.Vcpu.rdtsc vcpu in
  ignore (V.Monitor.os_call sys.V.Boot.mon vcpu (V.Idcb.R_pvalidate { gpfn = 900; to_private = true }));
  let cost = Sevsnp.Vcpu.rdtsc vcpu - before in
  Alcotest.(check bool) "round trip ~ 2 switches (14270) + work" true (cost >= 14270 && cost < 14270 + 8000)

let test_sanitizer_rejects () =
  let sys = boot () in
  let mon_gpa = T.gpa_of_gpfn sys.V.Boot.layout.V.Layout.mon_heap.V.Layout.lo in
  (match V.Monitor.os_call sys.V.Boot.mon sys.V.Boot.vcpu (V.Idcb.R_log_fetch { dest_gpa = mon_gpa; max = 64 }) with
  | V.Idcb.Resp_error _ -> ()
  | _ -> Alcotest.fail "sanitizer must reject protected destinations");
  Alcotest.(check int) "rejection counted" 1 (V.Monitor.stats sys.V.Boot.mon).V.Monitor.sanitizer_rejections

let test_protected_registry () =
  let sys = boot () in
  let mon = sys.V.Boot.mon in
  Alcotest.(check bool) "mon heap protected" true
    (V.Monitor.frame_is_protected mon sys.V.Boot.layout.V.Layout.mon_heap.V.Layout.lo);
  Alcotest.(check bool) "os memory not protected" false
    (V.Monitor.frame_is_protected mon sys.V.Boot.layout.V.Layout.kernel_free.V.Layout.lo);
  V.Monitor.add_protected_frames mon ~owner:V.Privdom.Enc [ 1500 ];
  Alcotest.(check bool) "dynamic add" true (V.Monitor.frame_is_protected mon 1500);
  V.Monitor.remove_protected_frames mon [ 1500 ];
  Alcotest.(check bool) "dynamic remove" false (V.Monitor.frame_is_protected mon 1500)

(* --- VeilS-KCI --- *)

let test_kci_module_load () =
  let sys = boot () in
  let kernel = sys.V.Boot.kernel in
  let img = Guest_kernel.Kmodule.build (Kern.rng kernel) ~name:"kcimod" ~text_size:4728 ~data_size:512
      ~symbols:[ "ksym_2" ] in
  Kern.vendor_sign_module kernel img;
  (match Kern.load_module kernel img with
  | Ok loaded ->
      let text = List.hd loaded.Guest_kernel.Kmodule.text_gpfns in
      let p = Sevsnp.Rmp.perms_of sys.V.Boot.platform.P.rmp text T.Vmpl3 in
      Alcotest.(check bool) "module text write-protected by RMP" true
        (p.Sevsnp.Perm.read && (not p.Sevsnp.Perm.write) && p.Sevsnp.Perm.super_exec);
      Alcotest.(check int) "kci counted" 1 (V.Kci.stats sys.V.Boot.kci).V.Kci.modules_loaded;
      (* unload restores access *)
      (match Kern.unload_module kernel "kcimod" with Ok () -> () | Error e -> Alcotest.fail e);
      let p2 = Sevsnp.Rmp.perms_of sys.V.Boot.platform.P.rmp text T.Vmpl3 in
      Alcotest.(check bool) "restored on unload" true (Sevsnp.Perm.equal p2 Sevsnp.Perm.all)
  | Error e -> Alcotest.fail e)

let test_kci_rejects_bad_signature () =
  let sys = boot () in
  let kernel = sys.V.Boot.kernel in
  let img = Guest_kernel.Kmodule.build (Kern.rng kernel) ~name:"bad" ~text_size:4096 ~data_size:0 ~symbols:[] in
  Kern.vendor_sign_module kernel img;
  Bytes.set img.Guest_kernel.Kmodule.text 7 'X' (* tamper after signing *);
  (match Kern.load_module kernel img with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "KCI accepted a tampered module");
  Alcotest.(check int) "rejection counted" 1 (V.Kci.stats sys.V.Boot.kci).V.Kci.rejected

let test_kci_rejects_unknown_symbol () =
  let sys = boot () in
  let kernel = sys.V.Boot.kernel in
  let img = Guest_kernel.Kmodule.build (Kern.rng kernel) ~name:"u" ~text_size:4096 ~data_size:0
      ~symbols:[ "not_a_kernel_symbol" ] in
  Kern.vendor_sign_module kernel img;
  match Kern.load_module kernel img with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "KCI relocated against an unknown symbol"

(* --- VeilS-LOG --- *)

let run_audited_syscalls sys n =
  let kernel = sys.V.Boot.kernel in
  Guest_kernel.Audit.set_rules (Kern.audit kernel) [ S.Open ];
  let proc = Kern.spawn kernel in
  for i = 0 to n - 1 do
    ignore (Kern.invoke kernel proc S.Open [ K.Str (Printf.sprintf "/tmp/f%d" i); K.Int 0x42; K.Int 0o644 ])
  done

let test_slog_append_and_read () =
  let sys = boot () in
  run_audited_syscalls sys 5;
  let slog = sys.V.Boot.slog in
  Alcotest.(check int) "five protected entries" 5 (V.Slog.count slog);
  let lines = V.Slog.read_all slog in
  Alcotest.(check int) "read back" 5 (List.length lines);
  Alcotest.(check bool) "chain verifies" true
    (V.Slog.verify_chain ~lines ~digest:(V.Slog.chain_digest slog));
  Alcotest.(check bool) "tampered lines fail the chain" false
    (V.Slog.verify_chain ~lines:("forged" :: List.tl lines) ~digest:(V.Slog.chain_digest slog))

let test_slog_survives_kernel_tamper () =
  let sys = boot () in
  run_audited_syscalls sys 3;
  (* attacker rewrites the kernel's own buffer — the protected copy is
     unaffected (and the storage region is unwritable, see attacks) *)
  ignore (Guest_kernel.Audit.tamper (Kern.audit sys.V.Boot.kernel) ~seq:1 ~detail:"cover my tracks");
  let protected_lines = V.Slog.read_all sys.V.Boot.slog in
  Alcotest.(check bool) "protected log kept the original" true
    (List.for_all
       (fun l ->
         not
           (let n = String.length "cover my tracks" in
            let rec go i = i + n <= String.length l && (String.sub l i n = "cover my tracks" || go (i + 1)) in
            go 0))
       protected_lines)

let test_slog_capacity () =
  let sys = V.Boot.boot_veil ~npages:2048 ~log_frames:1 ~seed:23 () in
  run_audited_syscalls sys 60 (* each record ~100 bytes; the 4096-byte region fills *);
  let st = V.Slog.stats sys.V.Boot.slog in
  Alcotest.(check bool) "region filled and drops counted" true (st.V.Slog.dropped_full > 0);
  (* Graceful degradation: the dropped records were parked in the
     bounded retry buffer and the degraded state is flagged. *)
  Alcotest.(check bool) "degraded mode entered" true (V.Slog.degraded sys.V.Boot.slog);
  let parked = V.Slog.pending_count sys.V.Boot.slog in
  Alcotest.(check bool) "drops were buffered for retry" true (parked > 0);
  V.Slog.clear sys.V.Boot.slog;
  (* clear drains the retry buffer into the fresh region. *)
  Alcotest.(check int) "cleared region holds the recovered records" parked
    (V.Slog.count sys.V.Boot.slog);
  Alcotest.(check int) "retry buffer drained" 0 (V.Slog.pending_count sys.V.Boot.slog);
  Alcotest.(check bool) "degraded mode exited" false (V.Slog.degraded sys.V.Boot.slog);
  (* Recovered lines still verify against the (restarted) hash chain. *)
  Alcotest.(check bool) "recovered lines chain-verify" true
    (V.Slog.verify_chain
       ~lines:(V.Slog.read_all sys.V.Boot.slog)
       ~digest:(V.Slog.chain_digest sys.V.Boot.slog))

(* --- VeilS-ENC lifecycle --- *)

let mk_enclave sys binary =
  let proc = Kern.spawn sys.V.Boot.kernel in
  match Enclave_sdk.Runtime.create sys ~binary proc with
  | Ok rt -> rt
  | Error e -> Alcotest.fail e

let test_enclave_measurement_reproducible () =
  let sys = boot () in
  let binary = Bytes.of_string (String.init 9000 (fun i -> Char.chr (i mod 200))) in
  let rt = mk_enclave sys binary in
  let expected =
    V.Encsvc.measure_expected ~binary ~npages_heap:16 ~npages_stack:4
      ~base_va:Guest_kernel.Process.enclave_base
  in
  Alcotest.(check bool) "measurement matches remote computation" true
    (Bytes.equal (Enclave_sdk.Runtime.measurement rt) expected);
  Alcotest.(check int) "service counted" 1 (V.Encsvc.stats sys.V.Boot.enc).V.Encsvc.created

let test_enclave_isolation_and_destroy () =
  let sys = boot () in
  let rt = mk_enclave sys (Bytes.make 4096 'D') in
  let enclave = Enclave_sdk.Runtime.enclave rt in
  let frame = Option.get (V.Encsvc.resident_frame enclave Guest_kernel.Process.enclave_base) in
  let p3 = Sevsnp.Rmp.perms_of sys.V.Boot.platform.P.rmp frame T.Vmpl3 in
  Alcotest.(check bool) "OS locked out" true (Sevsnp.Perm.equal p3 Sevsnp.Perm.none);
  let p2 = Sevsnp.Rmp.perms_of sys.V.Boot.platform.P.rmp frame T.Vmpl2 in
  Alcotest.(check bool) "enclave code readable+user-exec" true
    (p2.Sevsnp.Perm.read && p2.Sevsnp.Perm.user_exec && not p2.Sevsnp.Perm.super_exec);
  (* destroy: OS regains the frames, contents scrubbed *)
  (match Enclave_sdk.Runtime.destroy rt with Ok () -> () | Error e -> Alcotest.fail e);
  let p3' = Sevsnp.Rmp.perms_of sys.V.Boot.platform.P.rmp frame T.Vmpl3 in
  Alcotest.(check bool) "OS access restored" true (Sevsnp.Perm.equal p3' Sevsnp.Perm.all);
  let content = P.read sys.V.Boot.platform sys.V.Boot.vcpu (T.gpa_of_gpfn frame) 64 in
  Alcotest.(check bytes) "scrubbed" (Bytes.make 64 '\000') content

let test_enclave_data_roundtrip () =
  let sys = boot () in
  let rt = mk_enclave sys (Bytes.make 4096 'D') in
  Enclave_sdk.Runtime.run rt (fun rt ->
      let heap = Enclave_sdk.Runtime.heap_base rt in
      Enclave_sdk.Runtime.write_data rt ~va:heap (Bytes.of_string "enclave secret");
      Alcotest.(check bytes) "roundtrip via protected tables" (Bytes.of_string "enclave secret")
        (Enclave_sdk.Runtime.read_data rt ~va:heap ~len:14))

let test_enclave_change_perms () =
  let sys = boot () in
  let rt = mk_enclave sys (Bytes.make 4096 'D') in
  let enclave = Enclave_sdk.Runtime.enclave rt in
  let heap = Enclave_sdk.Runtime.heap_base rt in
  Enclave_sdk.Runtime.run rt (fun _ ->
      (match
         V.Encsvc.change_perms sys.V.Boot.enc sys.V.Boot.vcpu enclave ~va:heap ~npages:1
           ~prot:Guest_kernel.Ktypes.prot_r
       with
      | Ok () -> ()
      | Error e -> Alcotest.fail e);
      Alcotest.(check bool) "still inside after service call" true
        (T.equal_vmpl (Sevsnp.Vcpu.vmpl sys.V.Boot.vcpu) T.Vmpl2));
  let frame = Option.get (V.Encsvc.resident_frame enclave heap) in
  let p2 = Sevsnp.Rmp.perms_of sys.V.Boot.platform.P.rmp frame T.Vmpl2 in
  Alcotest.(check bool) "write revoked in RMP too" true (p2.Sevsnp.Perm.read && not p2.Sevsnp.Perm.write)

let test_enclave_demand_paging () =
  let sys = boot () in
  let rt = mk_enclave sys (Bytes.make 4096 'D') in
  let enclave = Enclave_sdk.Runtime.enclave rt in
  let heap = Enclave_sdk.Runtime.heap_base rt in
  Enclave_sdk.Runtime.run rt (fun rt ->
      Enclave_sdk.Runtime.write_data rt ~va:heap (Bytes.of_string "page me out"));
  let id = V.Encsvc.enclave_id enclave in
  let old_frame = Option.get (V.Encsvc.resident_frame enclave heap) in
  (* OS evicts the page *)
  (match V.Monitor.os_call sys.V.Boot.mon sys.V.Boot.vcpu (V.Idcb.R_enclave_evict { enclave_id = id; va = heap }) with
  | V.Idcb.Resp_ok -> ()
  | V.Idcb.Resp_error e -> Alcotest.fail e
  | _ -> Alcotest.fail "unexpected");
  Alcotest.(check bool) "page gone" true (V.Encsvc.resident_frame enclave heap = None);
  (* the frame now belongs to the OS and holds ciphertext *)
  let cipher = P.read sys.V.Boot.platform sys.V.Boot.vcpu (T.gpa_of_gpfn old_frame) 11 in
  Alcotest.(check bool) "content encrypted" false (Bytes.equal cipher (Bytes.of_string "page me out"));
  (* enclave touching the page faults (#PF -> demand paging) *)
  (try
     Enclave_sdk.Runtime.run rt (fun rt -> ignore (Enclave_sdk.Runtime.read_data rt ~va:heap ~len:4));
     Alcotest.fail "expected page fault"
   with P.Guest_page_fault _ -> ());
  (* OS pages it back in (same frame in this test) *)
  (match
     V.Monitor.os_call sys.V.Boot.mon sys.V.Boot.vcpu
       (V.Idcb.R_enclave_restore { enclave_id = id; va = heap; gpfn = old_frame })
   with
  | V.Idcb.Resp_ok -> ()
  | V.Idcb.Resp_error e -> Alcotest.fail e
  | _ -> Alcotest.fail "unexpected");
  Enclave_sdk.Runtime.run rt (fun rt ->
      Alcotest.(check bytes) "plaintext restored with integrity" (Bytes.of_string "page me out")
        (Enclave_sdk.Runtime.read_data rt ~va:heap ~len:11))

let test_enclave_restore_wrong_page () =
  let sys = boot () in
  let rt = mk_enclave sys (Bytes.make 4096 'D') in
  let enclave = Enclave_sdk.Runtime.enclave rt in
  let heap = Enclave_sdk.Runtime.heap_base rt in
  let id = V.Encsvc.enclave_id enclave in
  ignore (V.Monitor.os_call sys.V.Boot.mon sys.V.Boot.vcpu (V.Idcb.R_enclave_evict { enclave_id = id; va = heap }));
  (* OS hands back garbage instead of the evicted ciphertext *)
  let bogus = Kern.alloc_frame sys.V.Boot.kernel in
  P.write sys.V.Boot.platform sys.V.Boot.vcpu (T.gpa_of_gpfn bogus) (Bytes.make 4096 'Z');
  match
    V.Monitor.os_call sys.V.Boot.mon sys.V.Boot.vcpu
      (V.Idcb.R_enclave_restore { enclave_id = id; va = heap; gpfn = bogus })
  with
  | V.Idcb.Resp_error _ -> ()
  | _ -> Alcotest.fail "integrity/freshness check must reject a wrong page"

(* --- secure channel --- *)

let test_channel_attest_and_logs () =
  let sys = boot () in
  run_audited_syscalls sys 4;
  let pk = Sevsnp.Attestation.platform_public_key sys.V.Boot.platform.P.attestation in
  let launch = Sevsnp.Attestation.launch_measurement sys.V.Boot.platform.P.attestation in
  let user = V.Channel.create (Veil_crypto.Rng.create 2) ~platform_public:pk ~expected_launch:launch in
  Alcotest.(check bool) "not yet connected" false (V.Channel.connected user);
  (match V.Channel.connect user sys.V.Boot.mon sys.V.Boot.vcpu with
  | Ok () -> ()
  | Error e -> Alcotest.fail (V.Channel.error_to_string e));
  Alcotest.(check bool) "session established" true (V.Channel.connected user);
  match V.Channel.fetch_logs user sys.V.Boot.slog sys.V.Boot.vcpu with
  | Ok lines -> Alcotest.(check int) "logs retrieved over channel" 4 (List.length lines)
  | Error e -> Alcotest.fail (V.Channel.error_to_string e)

let test_channel_rejects_wrong_key () =
  let sys = boot () in
  let other_platform = P.create ~npages:1024 ~seed:99 () in
  let wrong_pk = Sevsnp.Attestation.platform_public_key other_platform.P.attestation in
  let user = V.Channel.create (Veil_crypto.Rng.create 2) ~platform_public:wrong_pk ~expected_launch:None in
  match V.Channel.connect user sys.V.Boot.mon sys.V.Boot.vcpu with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "accepted a report signed by the wrong platform"

(* The typed-error satellite: a user whose guest restarted must be
   able to *classify* the failure — [Disconnected] is retryable
   (re-attest and go again), a digest mismatch is tampering and must
   not be retried.  The old bare-string errors made this decision
   impossible without string matching. *)
let test_channel_reconnect_after_restart () =
  let boot_seeded seed = V.Boot.boot_veil ~npages:1024 ~seed () in
  let sys = boot_seeded 7 in
  run_audited_syscalls sys 3;
  let user =
    V.Channel.create (Veil_crypto.Rng.create 2)
      ~platform_public:(Sevsnp.Attestation.platform_public_key sys.V.Boot.platform.P.attestation)
      ~expected_launch:(Sevsnp.Attestation.launch_measurement sys.V.Boot.platform.P.attestation)
  in
  (* no session yet: typed, retryable *)
  (match V.Channel.fetch_logs user sys.V.Boot.slog sys.V.Boot.vcpu with
  | Error e ->
      Alcotest.(check bool) "disconnected is retryable" true (V.Channel.retryable e);
      Alcotest.(check bool) "it is Disconnected" true (e = V.Channel.Disconnected)
  | Ok _ -> Alcotest.fail "fetch over a never-connected channel must fail");
  (match V.Channel.connect user sys.V.Boot.mon sys.V.Boot.vcpu with
  | Ok () -> ()
  | Error e -> Alcotest.fail (V.Channel.error_to_string e));
  (match V.Channel.fetch_logs user sys.V.Boot.slog sys.V.Boot.vcpu with
  | Ok lines -> Alcotest.(check int) "logs before restart" 3 (List.length lines)
  | Error e -> Alcotest.fail (V.Channel.error_to_string e));
  (* guest restarts: same image, same seed — a fresh platform the old
     session keys are useless against *)
  let sys2 = boot_seeded 7 in
  run_audited_syscalls sys2 5;
  V.Channel.disconnect user;
  (match V.Channel.fetch_logs user sys2.V.Boot.slog sys2.V.Boot.vcpu with
  | Error e -> Alcotest.(check bool) "stale session is retryable" true (V.Channel.retryable e)
  | Ok _ -> Alcotest.fail "fetch over a dropped session must fail");
  (* the retry loop a client writes against the typed error *)
  (match V.Channel.connect user sys2.V.Boot.mon sys2.V.Boot.vcpu with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("reconnect: " ^ V.Channel.error_to_string e));
  (match V.Channel.fetch_logs user sys2.V.Boot.slog sys2.V.Boot.vcpu with
  | Ok lines -> Alcotest.(check int) "logs after reconnect" 5 (List.length lines)
  | Error e -> Alcotest.fail (V.Channel.error_to_string e));
  (* an imposter platform (report signed by the wrong key) is not a
     retry candidate: attestation error, never retryable *)
  let imposter = boot_seeded 8 in
  let strict =
    V.Channel.create (Veil_crypto.Rng.create 3)
      ~platform_public:(Sevsnp.Attestation.platform_public_key sys.V.Boot.platform.P.attestation)
      ~expected_launch:None
  in
  match V.Channel.connect strict imposter.V.Boot.mon imposter.V.Boot.vcpu with
  | Error e ->
      Alcotest.(check bool) "attestation failure is not retryable" false (V.Channel.retryable e)
  | Ok () -> Alcotest.fail "connected to a platform signing with the wrong key"

let test_sealed_messages () =
  let key = Bytes.make 32 'k' in
  let msg = Bytes.of_string "confidential log payload" in
  let sealed = V.Channel.seal ~key ~seq:7 ~dir:1 msg in
  (match V.Channel.open_ ~key ~seq:7 ~dir:1 sealed with
  | Ok plain -> Alcotest.(check bytes) "roundtrip" msg plain
  | Error e -> Alcotest.fail e);
  (match V.Channel.open_ ~key ~seq:8 ~dir:1 sealed with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "replay accepted");
  (match V.Channel.open_ ~key ~seq:7 ~dir:0 sealed with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "direction confusion accepted");
  Bytes.set sealed (Bytes.length sealed - 1) '\x00';
  match V.Channel.open_ ~key ~seq:7 ~dir:1 sealed with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "tampered ciphertext accepted"

let suite =
  [
    ("privilege domains", `Quick, test_privdom);
    ("layout tiling", `Quick, test_layout);
    ("boot protection sweep", `Quick, test_boot_protections);
    ("boot cost breakdown", `Quick, test_boot_cost_breakdown);
    ("os_call round trip + delegation", `Quick, test_os_call_roundtrip);
    ("os_call cost", `Quick, test_os_call_cost);
    ("sanitizer rejects protected pointers", `Quick, test_sanitizer_rejects);
    ("protected-region registry", `Quick, test_protected_registry);
    ("kci module load path", `Quick, test_kci_module_load);
    ("kci rejects tampered module", `Quick, test_kci_rejects_bad_signature);
    ("kci rejects unknown symbol", `Quick, test_kci_rejects_unknown_symbol);
    ("slog append/read/chain", `Quick, test_slog_append_and_read);
    ("slog survives kernel tamper", `Quick, test_slog_survives_kernel_tamper);
    ("slog capacity + clear", `Quick, test_slog_capacity);
    ("enclave measurement reproducible", `Quick, test_enclave_measurement_reproducible);
    ("enclave isolation + destroy scrub", `Quick, test_enclave_isolation_and_destroy);
    ("enclave data roundtrip", `Quick, test_enclave_data_roundtrip);
    ("enclave permission change", `Quick, test_enclave_change_perms);
    ("enclave demand paging", `Quick, test_enclave_demand_paging);
    ("enclave restore integrity check", `Quick, test_enclave_restore_wrong_page);
    ("channel attestation + log fetch", `Quick, test_channel_attest_and_logs);
    ("channel rejects wrong platform key", `Quick, test_channel_rejects_wrong_key);
    ("channel reconnects after guest restart", `Quick, test_channel_reconnect_after_restart);
    ("sealed message envelope", `Quick, test_sealed_messages);
  ]
