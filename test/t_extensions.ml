(* §10 future-work extensions implemented beyond the prototype:
   syscall batching, multi-VCPU enclave threads, enclave memory
   sharing, and the SVSM-style VeilS-TPM service. *)

module T = Sevsnp.Types
module K = Guest_kernel.Ktypes
module S = Guest_kernel.Sysno
module V = Veil_core
module Kern = Guest_kernel.Kernel
module Rt = Enclave_sdk.Runtime

let boot () = V.Boot.boot_veil ~npages:2048 ~seed:47 ()

let mk_rt ?(heap_pages = 16) sys =
  let proc = Kern.spawn sys.V.Boot.kernel in
  match Rt.create sys ~heap_pages ~binary:(Bytes.make 5000 'X') proc with
  | Ok rt -> rt
  | Error e -> Alcotest.fail e

(* --- syscall batching (§10) --- *)

let test_batch_results_match_sequential () =
  let sys = boot () in
  let rt = mk_rt sys in
  Rt.run rt (fun rt ->
      let calls =
        [ (S.Open, [ K.Str "/tmp/batch.txt"; K.Int 0x42; K.Int 0o644 ]);
          (S.Getpid, []);
          (S.Access, [ K.Str "/tmp/batch.txt" ]);
          (S.Mkdir, [ K.Str "/tmp/batchdir"; K.Int 0o755 ]) ]
      in
      match Rt.ocall_batch rt calls with
      | [ K.RInt fd; K.RInt pid; K.RInt 0; K.RInt 0 ] ->
          Alcotest.(check bool) "fd plausible" true (fd >= 3);
          Alcotest.(check bool) "pid plausible" true (pid > 0)
      | rets ->
          Alcotest.failf "unexpected batch results: %s"
            (String.concat "; " (List.map (Format.asprintf "%a" K.pp_ret) rets)))

let test_batch_pays_one_exit () =
  let sys = boot () in
  let rt = mk_rt sys in
  Rt.run rt (fun rt ->
      let st = Rt.stats rt in
      let exits0 = st.Rt.enclave_exits in
      ignore (Rt.ocall_batch rt (List.init 8 (fun _ -> (S.Getpid, []))));
      Alcotest.(check int) "8 calls, 1 exit" (exits0 + 1) st.Rt.enclave_exits;
      Alcotest.(check bool) "ocalls counted individually" true (st.Rt.ocalls >= 8))

let test_batch_is_cheaper () =
  let sys = boot () in
  let rt = mk_rt sys in
  let cost f =
    let vcpu = sys.V.Boot.vcpu in
    let t0 = Sevsnp.Vcpu.rdtsc vcpu in
    Rt.run rt f;
    Sevsnp.Vcpu.rdtsc vcpu - t0
  in
  let sequential = cost (fun rt -> for _ = 1 to 16 do ignore (Rt.ocall rt S.Getpid []) done) in
  let batched = cost (fun rt -> ignore (Rt.ocall_batch rt (List.init 16 (fun _ -> (S.Getpid, []))))) in
  Alcotest.(check bool)
    (Printf.sprintf "batched %d < 40%% of sequential %d" batched sequential)
    true
    (batched * 10 < sequential * 4)

let test_batch_invalid_arg_isolated () =
  let sys = boot () in
  let rt = mk_rt sys in
  Rt.run rt (fun rt ->
      match Rt.ocall_batch rt [ (S.Getpid, []); (S.Open, [ K.Int 3 ]); (S.Getpid, []) ] with
      | [ K.RInt _; K.RErr K.EINVAL; K.RInt _ ] -> ()
      | _ -> Alcotest.fail "bad call must fail alone, not the batch")

let test_batch_unsupported_kills () =
  let sys = boot () in
  let rt = mk_rt sys in
  try
    Rt.run rt (fun rt -> ignore (Rt.ocall_batch rt [ (S.Getpid, []); (S.Fork, []) ]));
    Alcotest.fail "fork in a batch must kill the enclave"
  with Rt.Enclave_killed _ -> ()

(* --- multi-VCPU enclave threads (§10) --- *)

let test_run_on_hotplugged_vcpu () =
  let sys = boot () in
  let kernel = sys.V.Boot.kernel in
  (* hotplug VCPU 1 through the §5.3 delegation *)
  (match (Kern.hooks kernel).Guest_kernel.Hooks.h_vcpu_boot ~vcpu_id:1 with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let vcpu1 = List.nth (Sevsnp.Platform.vcpus sys.V.Boot.platform) 1 in
  let rt = mk_rt sys in
  let secret = Bytes.of_string "written by thread 0" in
  Rt.run rt (fun rt -> Rt.write_data rt ~va:(Rt.heap_base rt) secret);
  (* the second thread sees the same enclave memory from VCPU 1 *)
  Rt.run_on rt vcpu1 (fun rt ->
      Alcotest.(check bool) "running on vcpu1" true
        (T.equal_vmpl (Sevsnp.Vcpu.vmpl vcpu1) T.Vmpl2);
      Alcotest.(check bytes) "same enclave memory" secret
        (Rt.read_data rt ~va:(Rt.heap_base rt) ~len:(Bytes.length secret)));
  Alcotest.(check bool) "vcpu1 back at Dom_UNT" true (T.equal_vmpl (Sevsnp.Vcpu.vmpl vcpu1) T.Vmpl3)

let test_schedule_unknown_vcpu_fails () =
  let sys = boot () in
  let rt = mk_rt sys in
  match
    V.Monitor.os_call sys.V.Boot.mon sys.V.Boot.vcpu
      (V.Idcb.R_enclave_schedule
         { enclave_id = V.Encsvc.enclave_id (Rt.enclave rt); vcpu_id = 9 })
  with
  | V.Idcb.Resp_error _ -> ()
  | _ -> Alcotest.fail "scheduling on a nonexistent VCPU must fail"

(* --- enclave memory sharing (§10, the Chancel comparison) --- *)

let test_share_region () =
  let sys = boot () in
  let owner = mk_rt sys in
  let peer = mk_rt sys in
  let heap = Rt.heap_base owner in
  Rt.run owner (fun rt -> Rt.write_data rt ~va:heap (Bytes.of_string "shared state"));
  (* owner's thread asks VeilS-ENC to map the page into the peer *)
  Rt.run owner (fun _ ->
      match
        V.Encsvc.share_region sys.V.Boot.enc sys.V.Boot.vcpu ~owner:(Rt.enclave owner)
          ~peer:(Rt.enclave peer) ~va:heap ~npages:1
      with
      | Ok () -> ()
      | Error e -> Alcotest.fail e);
  Alcotest.(check (list (triple int int int))) "registered"
    [ (V.Encsvc.enclave_id (Rt.enclave owner), heap, 1) ]
    (V.Encsvc.shared_with sys.V.Boot.enc (Rt.enclave peer));
  (* the peer reads (and writes) the owner's page through its own
     protected tables *)
  Rt.run peer (fun rt ->
      Alcotest.(check bytes) "peer sees owner's data" (Bytes.of_string "shared state")
        (Rt.read_data rt ~va:heap ~len:12);
      Rt.write_data rt ~va:heap (Bytes.of_string "peer replied"));
  Rt.run owner (fun rt ->
      Alcotest.(check bytes) "owner sees the reply" (Bytes.of_string "peer replied")
        (Rt.read_data rt ~va:heap ~len:12));
  (* the OS still cannot touch the shared frame *)
  let frame = Option.get (V.Encsvc.resident_frame (Rt.enclave owner) heap) in
  try
    ignore (Sevsnp.Platform.read sys.V.Boot.platform sys.V.Boot.vcpu (T.gpa_of_gpfn frame) 8);
    Alcotest.fail "OS read a shared enclave frame"
  with T.Npf _ -> ()

let test_share_rejects_outside_range () =
  let sys = boot () in
  let owner = mk_rt sys in
  let peer = mk_rt sys in
  Rt.run owner (fun _ ->
      match
        V.Encsvc.share_region sys.V.Boot.enc sys.V.Boot.vcpu ~owner:(Rt.enclave owner)
          ~peer:(Rt.enclave peer) ~va:0x1000 ~npages:1
      with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "shared a page outside the owner enclave")

(* --- VeilS-TPM (SVSM-style fourth service) --- *)

let test_vtpm_extend_and_quote () =
  let sys = boot () in
  let events = [ Bytes.of_string "grub"; Bytes.of_string "kernel-5.16"; Bytes.of_string "initrd" ] in
  List.iter
    (fun ev ->
      match V.Monitor.os_call sys.V.Boot.mon sys.V.Boot.vcpu (V.Idcb.R_tpm_extend { pcr = 0; data = ev }) with
      | V.Idcb.Resp_ok -> ()
      | r -> Alcotest.failf "extend failed: %s" (match r with V.Idcb.Resp_error e -> e | _ -> "?"))
    events;
  Alcotest.(check int) "extends counted" 3 (V.Vtpm.extends_count sys.V.Boot.vtpm);
  (* remote user replays the event log *)
  Alcotest.(check bytes) "PCR0 matches the replayed log" (V.Vtpm.expected_pcr ~events)
    (V.Vtpm.pcr_value sys.V.Boot.vtpm 0);
  (* signed quote *)
  let nonce = Bytes.of_string "freshness-123" in
  match V.Monitor.os_call sys.V.Boot.mon sys.V.Boot.vcpu (V.Idcb.R_tpm_quote { nonce }) with
  | V.Idcb.Resp_quote qb -> (
      match V.Vtpm.quote_of_bytes qb with
      | None -> Alcotest.fail "quote did not parse"
      | Some q ->
          Alcotest.(check bytes) "nonce bound" nonce q.V.Vtpm.q_nonce;
          Alcotest.(check bool) "signature verifies" true
            (V.Vtpm.verify_quote ~public:(V.Vtpm.quote_public_key sys.V.Boot.vtpm) q);
          (* forgeries fail *)
          let forged = { q with V.Vtpm.q_nonce = Bytes.of_string "replayed-nonce" } in
          Alcotest.(check bool) "forged quote fails" false
            (V.Vtpm.verify_quote ~public:(V.Vtpm.quote_public_key sys.V.Boot.vtpm) forged))
  | _ -> Alcotest.fail "no quote"

let test_vtpm_pcrs_unwritable_from_os () =
  let sys = boot () in
  ignore
    (V.Monitor.os_call sys.V.Boot.mon sys.V.Boot.vcpu
       (V.Idcb.R_tpm_extend { pcr = 1; data = Bytes.of_string "honest event" }));
  (* the compromised OS tries to reset the PCR bank directly: the
     storage frame lives in Dom_SEC *)
  (match V.Monitor.os_call sys.V.Boot.mon sys.V.Boot.vcpu (V.Idcb.R_tpm_extend { pcr = 99; data = Bytes.empty }) with
  | V.Idcb.Resp_error _ -> ()
  | _ -> Alcotest.fail "extend of a bogus PCR index accepted");
  (* last: the direct overwrite attempt halts the CVM *)
  try
    Sevsnp.Platform.write sys.V.Boot.platform sys.V.Boot.vcpu
      (T.gpa_of_gpfn sys.V.Boot.layout.V.Layout.svc_region.V.Layout.lo)
      (Bytes.make 32 '\000');
    Alcotest.fail "OS rewrote the PCR bank"
  with T.Npf _ -> ()

let suite =
  [
    ("batch: results match sequential", `Quick, test_batch_results_match_sequential);
    ("batch: one exit for the whole batch", `Quick, test_batch_pays_one_exit);
    ("batch: cheaper than sequential", `Quick, test_batch_is_cheaper);
    ("batch: invalid call isolated", `Quick, test_batch_invalid_arg_isolated);
    ("batch: unsupported call kills", `Quick, test_batch_unsupported_kills);
    ("threads: run_on a hotplugged VCPU", `Quick, test_run_on_hotplugged_vcpu);
    ("threads: unknown VCPU rejected", `Quick, test_schedule_unknown_vcpu_fails);
    ("sharing: mutually-trusting enclaves", `Quick, test_share_region);
    ("sharing: out-of-range rejected", `Quick, test_share_rejects_outside_range);
    ("vtpm: extend, replay, signed quote", `Quick, test_vtpm_extend_and_quote);
    ("vtpm: PCRs unwritable from the OS", `Quick, test_vtpm_pcrs_unwritable_from_os);
  ]
