(* Workload engine tests: compression round trips, the B-tree storage
   engine, HTTP/memcache servers, and the measurement driver. *)

module W = Workloads

let q = QCheck_alcotest.to_alcotest

(* --- LZSS --- *)

let lzss_roundtrip =
  QCheck.Test.make ~name:"lzss compress/decompress roundtrip" ~count:60
    (QCheck.bytes_of_size QCheck.Gen.(0 -- 2000))
    (fun data -> Bytes.equal data (W.Lzss.decompress (W.Lzss.compress data)))

let lzss_token_codec =
  QCheck.Test.make ~name:"lzss token serialization roundtrip" ~count:60
    (QCheck.bytes_of_size QCheck.Gen.(0 -- 1000))
    (fun data ->
      let tokens = W.Lzss.compress data in
      W.Lzss.decode_tokens (W.Lzss.encode_tokens tokens) = tokens)

let test_lzss_compresses_text () =
  let rng = Veil_crypto.Rng.create 3 in
  let text = W.Textgen.text rng 20000 in
  let tokens = W.Lzss.compress text in
  Alcotest.(check bool) "repetitive text shrinks" true
    (W.Lzss.compressed_size tokens < Bytes.length text);
  Alcotest.(check bytes) "exact roundtrip" text (W.Lzss.decompress tokens)

let test_lzss_window () =
  (* a repetition beyond the window cannot be matched *)
  let data = Bytes.of_string (String.make 100 'a' ^ String.make 5000 'b' ^ String.make 100 'a') in
  let t_small = W.Lzss.compress ~window_bits:8 data in
  Alcotest.(check bytes) "small window still correct" data (W.Lzss.decompress t_small)

(* --- Huffman --- *)

let huffman_roundtrip =
  QCheck.Test.make ~name:"huffman encode/decode roundtrip" ~count:60
    (QCheck.bytes_of_size QCheck.Gen.(0 -- 3000))
    (fun data -> Bytes.equal data (W.Huffman.decode (W.Huffman.encode data)))

let test_huffman_skew () =
  (* heavily skewed input must compress below 8 bits/symbol *)
  let data = Bytes.init 4000 (fun i -> if i mod 17 = 0 then 'b' else 'a') in
  let packed = W.Huffman.encode data in
  Alcotest.(check bool) "skewed input compresses" true
    (Bytes.length packed - 260 < Bytes.length data / 4);
  Alcotest.(check bytes) "roundtrip" data (W.Huffman.decode packed)

let test_huffman_single_symbol () =
  let data = Bytes.make 100 'z' in
  Alcotest.(check bytes) "degenerate alphabet" data (W.Huffman.decode (W.Huffman.encode data))

(* --- Btree --- *)

let null_env kernel proc =
  {
    W.Env.sys = (fun s a -> Guest_kernel.Kernel.invoke kernel proc s a);
    compute = (fun _ -> ());
    env_rng = Veil_crypto.Rng.create 5;
    env_rings = false;
  }

let with_env f =
  let n = Veil_core.Boot.boot_native ~npages:4096 ~seed:41 () in
  let kernel = n.Veil_core.Boot.n_kernel in
  f (null_env kernel (Guest_kernel.Kernel.spawn kernel))

let test_btree_sequential () =
  with_env (fun env ->
      let t = W.Btree.create env ~path:"/tmp/bt-seq" in
      for i = 0 to 999 do
        W.Btree.insert t ~key:(Bytes.of_string (Printf.sprintf "%08d" i)) ~value:(Bytes.of_string (string_of_int i))
      done;
      Alcotest.(check int) "all entries" 1000 (W.Btree.iter_count t);
      Alcotest.(check bool) "grew past one node" true (W.Btree.height t >= 2);
      for i = 0 to 999 do
        match W.Btree.find t ~key:(Bytes.of_string (Printf.sprintf "%08d" i)) with
        | Some v ->
            let s = Bytes.to_string v in
            let s = String.sub s 0 (String.index s '\000') in
            Alcotest.(check string) "value" (string_of_int i) s
        | None -> Alcotest.failf "lost key %d" i
      done;
      Alcotest.(check bool) "absent key misses" true (W.Btree.find t ~key:(Bytes.of_string "nope") = None);
      W.Btree.close t)

let test_btree_overwrite () =
  with_env (fun env ->
      let t = W.Btree.create env ~path:"/tmp/bt-ow" in
      W.Btree.insert t ~key:(Bytes.of_string "k") ~value:(Bytes.of_string "v1");
      W.Btree.insert t ~key:(Bytes.of_string "k") ~value:(Bytes.of_string "v2");
      Alcotest.(check int) "overwrite keeps one entry" 1 (W.Btree.iter_count t);
      match W.Btree.find t ~key:(Bytes.of_string "k") with
      | Some v -> Alcotest.(check string) "latest value" "v2" (String.sub (Bytes.to_string v) 0 2)
      | None -> Alcotest.fail "lost key")

let test_btree_persistence () =
  with_env (fun env ->
      let t = W.Btree.create env ~path:"/tmp/bt-persist" in
      for i = 0 to 299 do
        W.Btree.insert t ~key:(Bytes.of_string (Printf.sprintf "p%06d" i)) ~value:(Bytes.of_string "x")
      done;
      W.Btree.close t;
      (* reopen from the file *)
      let t2 = W.Btree.create env ~path:"/tmp/bt-persist" in
      Alcotest.(check int) "reopened count" 300 (W.Btree.iter_count t2);
      Alcotest.(check bool) "reopened lookup" true
        (W.Btree.find t2 ~key:(Bytes.of_string "p000123") <> None))

let btree_random =
  QCheck.Test.make ~name:"btree random inserts all findable" ~count:8
    (QCheck.make QCheck.Gen.(pair small_nat (list_size (10 -- 400) (string_size ~gen:(char_range 'a' 'p') (4 -- 12)))))
    (fun (_, keys) ->
      let result = ref true in
      with_env (fun env ->
          let t = W.Btree.create env ~path:"/tmp/bt-rand" in
          List.iteri (fun i k -> W.Btree.insert t ~key:(Bytes.of_string k) ~value:(Bytes.of_string (string_of_int i))) keys;
          List.iter (fun k -> if W.Btree.find t ~key:(Bytes.of_string k) = None then result := false) keys;
          let uniq = List.sort_uniq compare keys in
          if W.Btree.iter_count t <> List.length uniq then result := false);
      !result)

(* --- HTTP engine --- *)

let test_http_serving () =
  with_env (fun env ->
      W.Env.mkdir env "/srv/www";
      let fd = W.Env.open_ env "/srv/www/index.html" ~flags:(W.Env.o_creat lor W.Env.o_wronly) ~mode:0o644 in
      ignore (W.Env.write env fd (Bytes.of_string "<html>veil</html>"));
      W.Env.close env fd;
      let server = W.Http.server_start env ~port:8088 ~docroot:"/srv/www" in
      let serve () = ignore (W.Http.serve_pending env server) in
      (match W.Http.client_get ~serve env ~port:8088 ~path:"/index.html" with
      | Some body -> Alcotest.(check bytes) "body served" (Bytes.of_string "<html>veil</html>") body
      | None -> Alcotest.fail "no response");
      (match W.Http.client_get ~serve env ~port:8088 ~path:"/missing.html" with
      | None -> ()
      | Some _ -> Alcotest.fail "404 must not return a body");
      Alcotest.(check int) "both requests handled (404 included)" 2 (W.Http.requests_served server))

(* --- textgen --- *)

let test_textgen () =
  let rng = Veil_crypto.Rng.create 7 in
  Alcotest.(check int) "text exact length" 5000 (Bytes.length (W.Textgen.text rng 5000));
  Alcotest.(check int) "binary exact length" 5000 (Bytes.length (W.Textgen.binary rng 5000));
  (* deterministic for a given seed *)
  let a = W.Textgen.text (Veil_crypto.Rng.create 1) 1000 in
  let b = W.Textgen.text (Veil_crypto.Rng.create 1) 1000 in
  Alcotest.(check bytes) "deterministic" a b

(* --- driver --- *)

let test_driver_modes () =
  let w = W.Cpu_w.spec ~iterations:1 () in
  let native = W.Driver.run ~npages:2048 W.Driver.Native w in
  let veil = W.Driver.run ~npages:2048 W.Driver.Veil_background w in
  Alcotest.(check bool) "cycles measured" true (native.W.Driver.cycles > 0);
  (* §9.1: no discernible background impact *)
  let ov = W.Driver.overhead_pct ~baseline:native veil in
  Alcotest.(check bool) "background impact < 2%" true (Float.abs ov < 2.0);
  Alcotest.(check string) "workload name carried" "spec-cpu" native.W.Driver.workload

let test_driver_enclave_mode () =
  let w = W.Crypto_w.mbedtls ~tests:24 () in
  let native = W.Driver.run ~npages:2048 W.Driver.Native w in
  let enc = W.Driver.run ~npages:2048 W.Driver.Enclave w in
  Alcotest.(check bool) "enclave slower" true (enc.W.Driver.cycles > native.W.Driver.cycles);
  match enc.W.Driver.enclave with
  | Some st ->
      Alcotest.(check bool) "ocalls recorded" true (st.Enclave_sdk.Runtime.ocalls > 0);
      Alcotest.(check bool) "exits recorded" true (st.Enclave_sdk.Runtime.enclave_exits > 0)
  | None -> Alcotest.fail "enclave stats missing"

let test_driver_audit_modes () =
  let w = W.Crypto_w.openssl ~buffers:10 () in
  let base = W.Driver.run ~npages:2048 W.Driver.Veil_background w in
  let ka = W.Driver.run ~npages:2048 W.Driver.Kaudit w in
  let vl = W.Driver.run ~npages:2048 W.Driver.Veils_log w in
  Alcotest.(check int) "no records unaudited" 0 base.W.Driver.audit_records;
  Alcotest.(check bool) "kaudit records" true (ka.W.Driver.audit_records > 0);
  Alcotest.(check int) "kaudit alone does not hit VeilS-LOG" 0 ka.W.Driver.log_appends;
  Alcotest.(check int) "veils-log captures every record" vl.W.Driver.audit_records vl.W.Driver.log_appends;
  Alcotest.(check bool) "veils-log costs more than kaudit" true (vl.W.Driver.cycles > ka.W.Driver.cycles)

let test_all_workloads_run_native () =
  (* every registered workload completes end to end *)
  List.iter
    (fun w ->
      let s = W.Driver.run ~npages:4096 W.Driver.Native w in
      Alcotest.(check bool) (w.W.Workload.name ^ " did work") true (s.W.Driver.cycles > 0))
    (W.Registry.all ())

let test_registry () =
  Alcotest.(check int) "Table 4 programs" 5 (List.length (W.Registry.enclave_programs ()));
  Alcotest.(check int) "Table 5 programs" 5 (List.length (W.Registry.audit_programs ()));
  Alcotest.(check bool) "find by name" true (W.Registry.find "gzip" <> None);
  Alcotest.(check bool) "unknown name" true (W.Registry.find "quake3" = None)

let suite =
  [
    q lzss_roundtrip;
    q lzss_token_codec;
    ("lzss compresses text", `Quick, test_lzss_compresses_text);
    ("lzss small window", `Quick, test_lzss_window);
    q huffman_roundtrip;
    ("huffman skewed input", `Quick, test_huffman_skew);
    ("huffman single symbol", `Quick, test_huffman_single_symbol);
    ("btree sequential 1000", `Quick, test_btree_sequential);
    ("btree overwrite", `Quick, test_btree_overwrite);
    ("btree persistence across reopen", `Quick, test_btree_persistence);
    q btree_random;
    ("http serving", `Quick, test_http_serving);
    ("textgen", `Quick, test_textgen);
    ("driver native vs veil background", `Slow, test_driver_modes);
    ("driver enclave mode", `Slow, test_driver_enclave_mode);
    ("driver audit modes", `Slow, test_driver_audit_modes);
    ("all workloads run natively", `Slow, test_all_workloads_run_native);
    ("registry", `Quick, test_registry);
  ]
