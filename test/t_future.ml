(* Further §10/§11 capabilities: enclave migration (the SVSM use case),
   exitless system calls, and the mini-LibOS layer. *)

module T = Sevsnp.Types
module K = Guest_kernel.Ktypes
module S = Guest_kernel.Sysno
module V = Veil_core
module Kern = Guest_kernel.Kernel
module Rt = Enclave_sdk.Runtime

let boot seed = V.Boot.boot_veil ~npages:2048 ~seed ()

let mk_rt sys binary =
  let proc = Kern.spawn sys.V.Boot.kernel in
  match Rt.create sys ~binary proc with Ok rt -> rt | Error e -> Alcotest.fail e

(* --- migration --- *)

let test_migration_roundtrip () =
  let src = boot 51 and dst = boot 52 in
  let rt = mk_rt src (Bytes.of_string (String.make 5000 'M')) in
  let heap = Rt.heap_base rt in
  Rt.run rt (fun rt -> Rt.write_data rt ~va:heap (Bytes.of_string "live state survives"));
  let original_meas = Rt.measurement rt in
  let src_frame = Option.get (V.Encsvc.resident_frame (Rt.enclave rt) heap) in
  (* export, sealed for the destination monitor *)
  let sealed =
    match
      V.Migration.export src (Rt.enclave rt) ~dest_public:(V.Monitor.dh_public dst.V.Boot.mon)
    with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  (* the source instance is gone and its frames scrubbed *)
  Alcotest.(check bool) "source destroyed" true (V.Encsvc.is_destroyed (Rt.enclave rt));
  let scrubbed =
    Sevsnp.Platform.read src.V.Boot.platform src.V.Boot.vcpu (T.gpa_of_gpfn src_frame) 19
  in
  Alcotest.(check bytes) "source frames scrubbed" (Bytes.make 19 '\000') scrubbed;
  (* the host can carry the wire bytes; they leak nothing recognizable *)
  let wire = V.Migration.sealed_to_bytes sealed in
  let contains hay needle =
    let n = Bytes.length needle in
    let rec go i =
      i + n <= Bytes.length hay && (Bytes.equal (Bytes.sub hay i n) needle || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "state encrypted in transit" false
    (contains wire (Bytes.of_string "live state survives"));
  (* import on the destination *)
  let owner = Kern.spawn dst.V.Boot.kernel in
  let enclave2 =
    match
      V.Migration.import dst ~owner ~source_public:(V.Monitor.dh_public src.V.Boot.mon)
        (Option.get (V.Migration.sealed_of_bytes wire))
    with
    | Ok e -> e
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check bytes) "measurement preserved" original_meas (V.Encsvc.measurement enclave2);
  (* the migrated heap contents are intact, and still OS-invisible *)
  let frame2 = Option.get (V.Encsvc.resident_frame enclave2 heap) in
  let contents =
    (* trusted-side read *)
    V.Monitor.domain_switch dst.V.Boot.mon dst.V.Boot.vcpu ~target:V.Privdom.Sec;
    let c = Sevsnp.Platform.read dst.V.Boot.platform dst.V.Boot.vcpu (T.gpa_of_gpfn frame2) 19 in
    V.Monitor.domain_switch dst.V.Boot.mon dst.V.Boot.vcpu ~target:V.Privdom.Unt;
    c
  in
  Alcotest.(check bytes) "state survived migration" (Bytes.of_string "live state survives") contents;
  try
    ignore (Sevsnp.Platform.read dst.V.Boot.platform dst.V.Boot.vcpu (T.gpa_of_gpfn frame2) 8);
    Alcotest.fail "destination OS read the migrated enclave"
  with T.Npf _ -> ()

let test_migration_tamper_rejected () =
  let src = boot 53 and dst = boot 54 in
  let rt = mk_rt src (Bytes.make 4096 'M') in
  let sealed =
    match V.Migration.export src (Rt.enclave rt) ~dest_public:(V.Monitor.dh_public dst.V.Boot.mon) with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  let owner = Kern.spawn dst.V.Boot.kernel in
  match
    V.Migration.import dst ~owner ~source_public:(V.Monitor.dh_public src.V.Boot.mon)
      (V.Migration.tamper_for_test sealed)
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "tampered sealed state accepted"

let test_migration_wrong_destination () =
  let src = boot 55 and dst = boot 56 and eavesdropper = boot 57 in
  let rt = mk_rt src (Bytes.make 4096 'M') in
  (* sealed for [dst], intercepted by a different Veil host *)
  let sealed =
    match V.Migration.export src (Rt.enclave rt) ~dest_public:(V.Monitor.dh_public dst.V.Boot.mon) with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  let owner = Kern.spawn eavesdropper.V.Boot.kernel in
  match
    V.Migration.import eavesdropper ~owner ~source_public:(V.Monitor.dh_public src.V.Boot.mon) sealed
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "a third party imported state sealed for someone else"

(* --- checkpoint/restore leaves audit + telemetry sane (ISSUE 9) --- *)

let test_migration_slog_metrics_sane () =
  let src = boot 64 and dst = boot 65 in
  let rt = mk_rt src (Bytes.make 4096 'M') in
  let sealed =
    match
      V.Migration.export src (Rt.enclave rt) ~dest_public:(V.Monitor.dh_public dst.V.Boot.mon)
    with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  let owner = Kern.spawn dst.V.Boot.kernel in
  let slog_before = V.Slog.count dst.V.Boot.slog in
  (match
     V.Migration.import dst ~owner ~source_public:(V.Monitor.dh_public src.V.Boot.mon) sealed
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  let verify sys label =
    Alcotest.(check bool) label true
      (V.Slog.verify_chain
         ~lines:(V.Slog.read_all sys.V.Boot.slog)
         ~digest:(V.Slog.chain_digest sys.V.Boot.slog))
  in
  verify dst "slog chain verifies after restore";
  verify src "source slog chain intact after export";
  Alcotest.(check bool) "restore never rewrites audit history" true
    (V.Slog.count dst.V.Boot.slog >= slog_before);
  (* the telemetry registry keeps working post-resume *)
  let m = dst.V.Boot.platform.Sevsnp.Platform.metrics in
  Alcotest.(check bool) "metrics registry populated" true
    (List.length (Obs.Metrics.names m) > 0);
  let osc = Obs.Metrics.counter m "monitor.os_calls" in
  let before = Obs.Metrics.value osc in
  (match
     V.Monitor.os_call dst.V.Boot.mon dst.V.Boot.vcpu
       (V.Idcb.R_tpm_extend { pcr = 7; data = Bytes.of_string "post-resume" })
   with
  | V.Idcb.Resp_ok -> ()
  | _ -> Alcotest.fail "post-resume os_call failed");
  Alcotest.(check int) "os_call counter still counts" (before + 1) (Obs.Metrics.value osc);
  verify dst "slog chain extends correctly after post-resume os_call"

(* --- exitless syscalls --- *)

let hotplug sys id =
  (match (Kern.hooks sys.V.Boot.kernel).Guest_kernel.Hooks.h_vcpu_boot ~vcpu_id:id with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  List.nth (Sevsnp.Platform.vcpus sys.V.Boot.platform) id

let test_exitless_basic () =
  let sys = boot 58 in
  let worker = hotplug sys 1 in
  let rt = mk_rt sys (Bytes.make 4096 'E') in
  Rt.run rt (fun rt ->
      let ring = Result.get_ok (Enclave_sdk.Exitless.create rt ~slots:8) in
      let exits0 = (Rt.stats rt).Rt.enclave_exits in
      let t1 =
        Result.get_ok
          (Enclave_sdk.Exitless.submit ring S.Open [ K.Str "/tmp/exitless.txt"; K.Int 0x42; K.Int 0o644 ])
      in
      Alcotest.(check int) "one pending" 1 (Enclave_sdk.Exitless.pending ring);
      Alcotest.(check bool) "not complete before drain" true
        (Enclave_sdk.Exitless.poll ring t1 = None);
      (* the worker drains on another VCPU *)
      Alcotest.(check int) "drained" 1 (Enclave_sdk.Exitless.drain_on ring worker);
      (match Enclave_sdk.Exitless.poll ring t1 with
      | Some (K.RInt fd) ->
          let t2 =
            Result.get_ok
              (Enclave_sdk.Exitless.submit ring S.Write [ K.Int fd; K.Buf (Bytes.of_string "async!") ])
          in
          (match Enclave_sdk.Exitless.await ring ~worker t2 with
          | K.RInt 6 -> ()
          | r -> Alcotest.failf "write: %a" K.pp_ret r)
      | _ -> Alcotest.fail "open did not complete");
      Alcotest.(check int) "zero enclave exits for two syscalls" exits0 (Rt.stats rt).Rt.enclave_exits)

let test_exitless_ring_full () =
  let sys = boot 59 in
  let rt = mk_rt sys (Bytes.make 4096 'E') in
  Rt.run rt (fun rt ->
      let ring = Result.get_ok (Enclave_sdk.Exitless.create rt ~slots:2) in
      ignore (Result.get_ok (Enclave_sdk.Exitless.submit ring S.Getpid []));
      ignore (Result.get_ok (Enclave_sdk.Exitless.submit ring S.Getpid []));
      match Enclave_sdk.Exitless.submit ring S.Getpid [] with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "ring overflow accepted")

let test_exitless_rejects_unsupported () =
  let sys = boot 60 in
  let rt = mk_rt sys (Bytes.make 4096 'E') in
  Rt.run rt (fun rt ->
      let ring = Result.get_ok (Enclave_sdk.Exitless.create rt ~slots:2) in
      match Enclave_sdk.Exitless.submit ring S.Fork [] with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "fork submitted exitlessly")

(* --- LibOS --- *)

let test_libos_memfs_zero_ocalls () =
  let sys = boot 61 in
  let rt = mk_rt sys (Bytes.make 4096 'L') in
  Rt.run rt (fun rt ->
      let libos = Enclave_sdk.Libos.create rt in
      Enclave_sdk.Libos.mount_memfs libos ~prefix:"/enclave";
      let ocalls0 = (Rt.stats rt).Rt.ocalls in
      let f = Result.get_ok (Enclave_sdk.Libos.fopen libos "/enclave/secret.db" ~mode:`Write) in
      ignore (Result.get_ok (Enclave_sdk.Libos.fwrite libos f (Bytes.of_string "contained")));
      Result.get_ok (Enclave_sdk.Libos.fclose libos f);
      let f2 = Result.get_ok (Enclave_sdk.Libos.fopen libos "/enclave/secret.db" ~mode:`Read) in
      (match Enclave_sdk.Libos.fread libos f2 9 with
      | Ok b -> Alcotest.(check bytes) "memfs roundtrip" (Bytes.of_string "contained") b
      | Error e -> Alcotest.fail e);
      Result.get_ok (Enclave_sdk.Libos.fclose libos f2);
      Alcotest.(check int) "zero redirected calls for memfs io" ocalls0 (Rt.stats rt).Rt.ocalls;
      Alcotest.(check bool) "savings recorded" true (Enclave_sdk.Libos.ocalls_saved libos > 0));
  (* nothing about /enclave ever reached the host kernel *)
  Alcotest.(check bool) "invisible to the OS fs" false
    (Guest_kernel.Fs.exists (Kern.fs sys.V.Boot.kernel) "/enclave/secret.db")

let test_libos_buffered_stdio () =
  let sys = boot 62 in
  let rt = mk_rt sys (Bytes.make 4096 'L') in
  Rt.run rt (fun rt ->
      let libos = Enclave_sdk.Libos.create ~stdio_buffer:4096 rt in
      let f = Result.get_ok (Enclave_sdk.Libos.fopen libos "/tmp/buffered.log" ~mode:`Write) in
      let ocalls0 = (Rt.stats rt).Rt.ocalls in
      (* 64 writes of 32 bytes = 2 KB: fits in one buffer flush *)
      for _ = 1 to 64 do
        ignore (Result.get_ok (Enclave_sdk.Libos.fwrite libos f (Bytes.make 32 'x')))
      done;
      Result.get_ok (Enclave_sdk.Libos.fclose libos f);
      let ocalls = (Rt.stats rt).Rt.ocalls - ocalls0 in
      Alcotest.(check bool) (Printf.sprintf "64 writes cost %d ocalls (<= 2)" ocalls) true (ocalls <= 2));
  (* the data really reached the host file *)
  match Guest_kernel.Fs.size_of (Kern.fs sys.V.Boot.kernel) "/tmp/buffered.log" with
  | Ok n -> Alcotest.(check int) "all bytes flushed" 2048 n
  | Error _ -> Alcotest.fail "file missing"

let test_libos_passthrough () =
  let sys = boot 63 in
  let rt = mk_rt sys (Bytes.make 4096 'L') in
  Rt.run rt (fun rt ->
      let libos = Enclave_sdk.Libos.create rt in
      Enclave_sdk.Libos.mount_memfs libos ~prefix:"/enclave";
      Alcotest.(check bool) "memfs path" true (Enclave_sdk.Libos.is_memfs_path libos "/enclave/x");
      Alcotest.(check bool) "host path" false (Enclave_sdk.Libos.is_memfs_path libos "/tmp/x");
      let f = Result.get_ok (Enclave_sdk.Libos.fopen libos "/tmp/host.txt" ~mode:`Write) in
      ignore (Result.get_ok (Enclave_sdk.Libos.fwrite libos f (Bytes.of_string "to the host")));
      Result.get_ok (Enclave_sdk.Libos.fclose libos f);
      Alcotest.(check (option int)) "size via stat passthrough" (Some 11)
        (Enclave_sdk.Libos.file_size libos "/tmp/host.txt"))

let suite =
  [
    ("migration roundtrip preserves state + measurement", `Quick, test_migration_roundtrip);
    ("migration rejects tampered state", `Quick, test_migration_tamper_rejected);
    ("migration sealed to one destination only", `Quick, test_migration_wrong_destination);
    ("migration leaves slog chain + metrics sane", `Quick, test_migration_slog_metrics_sane);
    ("exitless: two syscalls, zero exits", `Quick, test_exitless_basic);
    ("exitless: ring capacity enforced", `Quick, test_exitless_ring_full);
    ("exitless: unsupported calls rejected", `Quick, test_exitless_rejects_unsupported);
    ("libos: memfs needs zero ocalls", `Quick, test_libos_memfs_zero_ocalls);
    ("libos: buffered stdio amortizes", `Quick, test_libos_buffered_stdio);
    ("libos: passthrough to the host", `Quick, test_libos_passthrough);
  ]
