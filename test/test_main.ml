let () =
  Alcotest.run "veil"
    [
      ("crypto", T_crypto.suite);
      ("sevsnp", T_sevsnp.suite);
      ("hypervisor", T_hv.suite);
      ("kernel", T_kernel.suite);
      ("core", T_core.suite);
      ("sdk", T_sdk.suite);
      ("workloads", T_workloads.suite);
      ("ltp", T_ltp.suite);
      ("attacks", T_attacks.suite);
      ("extensions", T_extensions.suite);
      ("future", T_future.suite);
      ("properties", T_props.suite);
      ("engines", T_engines.suite);
      ("mcache", T_mcache.suite);
      ("kernel-semantics", T_kernel2.suite);
      ("scheduler", T_sched.suite);
      ("smp", T_smp.suite);
      ("facade", T_facade.suite);
      ("obs", T_obs.suite);
      ("chaos", T_chaos.suite);
      ("ring", T_ring.suite);
      ("pulse", T_pulse.suite);
      ("explore", T_explore.suite);
      ("fleet", T_fleet.suite);
    ]
