(* Cooperative scheduler tests: interleaving, blocking, deadlock
   detection, and a concurrent echo server over the guest network. *)

module K = Guest_kernel.Ktypes
module S = Guest_kernel.Sysno
module Kern = Guest_kernel.Kernel
module Sched = Guest_kernel.Sched

let test_round_robin () =
  let sched = Sched.create () in
  let trace = Buffer.create 16 in
  Sched.spawn sched ~name:"a" (fun () ->
      Buffer.add_char trace 'a';
      Sched.yield ();
      Buffer.add_char trace 'a');
  Sched.spawn sched ~name:"b" (fun () ->
      Buffer.add_char trace 'b';
      Sched.yield ();
      Buffer.add_char trace 'b');
  Sched.run sched;
  Alcotest.(check string) "interleaved" "abab" (Buffer.contents trace);
  Alcotest.(check int) "all done" 0 (Sched.live sched);
  Alcotest.(check bool) "switches counted" true (Sched.context_switches sched >= 4)

let test_block_until () =
  let sched = Sched.create () in
  let flag = ref false and order = Buffer.create 8 in
  Sched.spawn sched ~name:"waiter" (fun () ->
      Sched.block_until (fun () -> !flag);
      Buffer.add_string order "w");
  Sched.spawn sched ~name:"setter" (fun () ->
      Buffer.add_string order "s";
      Sched.yield ();
      flag := true);
  Sched.run sched;
  Alcotest.(check string) "waiter ran after the setter" "sw" (Buffer.contents order)

let test_block_already_true () =
  let sched = Sched.create () in
  let ran = ref false in
  Sched.spawn sched ~name:"t" (fun () ->
      Sched.block_until (fun () -> true);
      ran := true);
  Sched.run sched;
  Alcotest.(check bool) "no suspension when already satisfied" true !ran

let test_deadlock_detected () =
  let sched = Sched.create () in
  Sched.spawn sched ~name:"stuck" (fun () -> Sched.block_until (fun () -> false));
  Alcotest.check_raises "deadlock" (Sched.Deadlock [ "stuck" ]) (fun () -> Sched.run sched)

let test_context_switch_charging () =
  let charged = ref 0 in
  let sched = Sched.create ~on_context_switch:(fun () -> incr charged) () in
  Sched.spawn sched ~name:"x" (fun () -> Sched.yield ());
  Sched.run sched;
  Alcotest.(check int) "hook fired per switch" (Sched.context_switches sched) !charged

(* A blocked task's predicate is re-polled every time the scheduler
   looks for runnable work; each failed poll must cost cycles via
   [on_blocked_poll] — pre-fix, a blocked-heavy schedule spun for
   free, under-counting exactly the waiting the SMP runs care about. *)
let test_blocked_poll_charging () =
  let polls = ref 0 and switches = ref 0 in
  let sched =
    Sched.create
      ~on_context_switch:(fun () -> incr switches)
      ~on_blocked_poll:(fun () -> incr polls)
      ()
  in
  let flag = ref false in
  Sched.spawn sched ~name:"blocked" (fun () -> Sched.block_until (fun () -> !flag));
  Sched.spawn sched ~name:"spinner" (fun () ->
      for _ = 1 to 10 do
        Sched.yield ()
      done;
      flag := true);
  Sched.run sched;
  (* the blocked task's predicate was consulted (and found false) at
     least once per spinner step before the flag flipped *)
  Alcotest.(check bool)
    (Printf.sprintf "failed polls accrue cost (%d)" !polls)
    true (!polls >= 10);
  (* polls are distinct from context switches: both hooks fired, and a
     poll does not masquerade as a switch *)
  Alcotest.(check int) "switch hook unchanged" (Sched.context_switches sched) !switches

let test_exception_propagates () =
  let sched = Sched.create () in
  Sched.spawn sched ~name:"boom" (fun () -> failwith "task exploded");
  Alcotest.check_raises "propagates" (Failure "task exploded") (fun () -> Sched.run sched)

(* --- a concurrent echo server over the guest network --- *)

let test_concurrent_echo_server () =
  let n = Veil_core.Boot.boot_native ~npages:2048 ~seed:97 () in
  let kernel = n.Veil_core.Boot.n_kernel in
  let sched = Sched.create () in
  let nclients = 3 and requests_per_client = 4 in
  let served = ref 0 and answered = ref 0 in
  (* server process: accepts each client, echoes its requests *)
  Sched.spawn sched ~name:"echo-server" (fun () ->
      let proc = Kern.spawn kernel in
      let sys s a = Kern.invoke_blocking kernel proc s a in
      let srv = match sys S.Socket [ K.Int 2; K.Int 1; K.Int 0 ] with K.RInt f -> f | _ -> failwith "s" in
      ignore (sys S.Bind [ K.Int srv; K.Int 9200 ]);
      ignore (sys S.Listen [ K.Int srv; K.Int 8 ]);
      for _ = 1 to nclients do
        let conn = match sys S.Accept [ K.Int srv ] with K.RInt f -> f | _ -> failwith "accept" in
        for _ = 1 to requests_per_client do
          match sys S.Recvfrom [ K.Int conn; K.Int 64 ] with
          | K.RBuf b when Bytes.length b > 0 ->
              ignore (sys S.Sendto [ K.Int conn; K.Buf b ]);
              incr served
          | _ -> failwith "server recv"
        done
      done);
  (* client processes: connect, send, check the echo *)
  for c = 1 to nclients do
    Sched.spawn sched ~name:(Printf.sprintf "client-%d" c) (fun () ->
        let proc = Kern.spawn kernel in
        let sys s a = Kern.invoke_blocking kernel proc s a in
        let fd = match sys S.Socket [ K.Int 2; K.Int 1; K.Int 0 ] with K.RInt f -> f | _ -> failwith "c" in
        ignore (sys S.Connect [ K.Int fd; K.Int 9200 ]);
        for r = 1 to requests_per_client do
          let msg = Bytes.of_string (Printf.sprintf "c%d-r%d" c r) in
          ignore (sys S.Sendto [ K.Int fd; K.Buf msg ]);
          match sys S.Recvfrom [ K.Int fd; K.Int 64 ] with
          | K.RBuf b when Bytes.equal b msg -> incr answered
          | K.RBuf b -> Alcotest.failf "client %d got %S" c (Bytes.to_string b)
          | ret -> Alcotest.failf "client %d: %s" c (Format.asprintf "%a" K.pp_ret ret)
        done)
  done;
  Sched.run sched;
  Alcotest.(check int) "server echoed everything" (nclients * requests_per_client) !served;
  Alcotest.(check int) "clients verified everything" (nclients * requests_per_client) !answered

let suite =
  [
    ("round robin interleaving", `Quick, test_round_robin);
    ("block_until", `Quick, test_block_until);
    ("block on satisfied predicate", `Quick, test_block_already_true);
    ("deadlock detection", `Quick, test_deadlock_detected);
    ("context switch hook", `Quick, test_context_switch_charging);
    ("blocked polls accrue cycles", `Quick, test_blocked_poll_charging);
    ("task exceptions propagate", `Quick, test_exception_propagates);
    ("concurrent echo server", `Quick, test_concurrent_echo_server);
  ]
