(* Cooperative scheduler tests: interleaving, blocking, deadlock
   detection, and a concurrent echo server over the guest network. *)

module K = Guest_kernel.Ktypes
module S = Guest_kernel.Sysno
module Kern = Guest_kernel.Kernel
module Sched = Guest_kernel.Sched

let test_round_robin () =
  let sched = Sched.create () in
  let trace = Buffer.create 16 in
  Sched.spawn sched ~name:"a" (fun () ->
      Buffer.add_char trace 'a';
      Sched.yield ();
      Buffer.add_char trace 'a');
  Sched.spawn sched ~name:"b" (fun () ->
      Buffer.add_char trace 'b';
      Sched.yield ();
      Buffer.add_char trace 'b');
  Sched.run sched;
  Alcotest.(check string) "interleaved" "abab" (Buffer.contents trace);
  Alcotest.(check int) "all done" 0 (Sched.live sched);
  Alcotest.(check bool) "switches counted" true (Sched.context_switches sched >= 4)

let test_block_until () =
  let sched = Sched.create () in
  let flag = ref false and order = Buffer.create 8 in
  Sched.spawn sched ~name:"waiter" (fun () ->
      Sched.block_until (fun () -> !flag);
      Buffer.add_string order "w");
  Sched.spawn sched ~name:"setter" (fun () ->
      Buffer.add_string order "s";
      Sched.yield ();
      flag := true);
  Sched.run sched;
  Alcotest.(check string) "waiter ran after the setter" "sw" (Buffer.contents order)

let test_block_already_true () =
  let sched = Sched.create () in
  let ran = ref false in
  Sched.spawn sched ~name:"t" (fun () ->
      Sched.block_until (fun () -> true);
      ran := true);
  Sched.run sched;
  Alcotest.(check bool) "no suspension when already satisfied" true !ran

let test_deadlock_detected () =
  let sched = Sched.create () in
  Sched.spawn sched ~name:"stuck" (fun () -> Sched.block_until (fun () -> false));
  Alcotest.check_raises "deadlock" (Sched.Deadlock [ "stuck" ]) (fun () -> Sched.run sched)

let test_context_switch_charging () =
  let charged = ref 0 in
  let sched = Sched.create ~on_context_switch:(fun () -> incr charged) () in
  Sched.spawn sched ~name:"x" (fun () -> Sched.yield ());
  Sched.run sched;
  Alcotest.(check int) "hook fired per switch" (Sched.context_switches sched) !charged

(* A blocked task's predicate is re-polled every time the scheduler
   looks for runnable work; each failed poll must cost cycles via
   [on_blocked_poll] — pre-fix, a blocked-heavy schedule spun for
   free, under-counting exactly the waiting the SMP runs care about. *)
let test_blocked_poll_charging () =
  let polls = ref 0 and switches = ref 0 in
  let sched =
    Sched.create
      ~on_context_switch:(fun () -> incr switches)
      ~on_blocked_poll:(fun () -> incr polls)
      ()
  in
  let flag = ref false in
  Sched.spawn sched ~name:"blocked" (fun () -> Sched.block_until (fun () -> !flag));
  Sched.spawn sched ~name:"spinner" (fun () ->
      for _ = 1 to 10 do
        Sched.yield ()
      done;
      flag := true);
  Sched.run sched;
  (* the blocked task's predicate was consulted (and found false) at
     least once per spinner step before the flag flipped *)
  Alcotest.(check bool)
    (Printf.sprintf "failed polls accrue cost (%d)" !polls)
    true (!polls >= 10);
  (* polls are distinct from context switches: both hooks fired, and a
     poll does not masquerade as a switch *)
  Alcotest.(check int) "switch hook unchanged" (Sched.context_switches sched) !switches

let test_exception_propagates () =
  let sched = Sched.create () in
  Sched.spawn sched ~name:"boom" (fun () -> failwith "task exploded");
  Alcotest.check_raises "propagates" (Failure "task exploded") (fun () -> Sched.run sched)

(* --- a concurrent echo server over the guest network --- *)

let test_concurrent_echo_server () =
  let n = Veil_core.Boot.boot_native ~npages:2048 ~seed:97 () in
  let kernel = n.Veil_core.Boot.n_kernel in
  let sched = Sched.create () in
  let nclients = 3 and requests_per_client = 4 in
  let served = ref 0 and answered = ref 0 in
  (* server process: accepts each client, echoes its requests *)
  Sched.spawn sched ~name:"echo-server" (fun () ->
      let proc = Kern.spawn kernel in
      let sys s a = Kern.invoke_blocking kernel proc s a in
      let srv = match sys S.Socket [ K.Int 2; K.Int 1; K.Int 0 ] with K.RInt f -> f | _ -> failwith "s" in
      ignore (sys S.Bind [ K.Int srv; K.Int 9200 ]);
      ignore (sys S.Listen [ K.Int srv; K.Int 8 ]);
      for _ = 1 to nclients do
        let conn = match sys S.Accept [ K.Int srv ] with K.RInt f -> f | _ -> failwith "accept" in
        for _ = 1 to requests_per_client do
          match sys S.Recvfrom [ K.Int conn; K.Int 64 ] with
          | K.RBuf b when Bytes.length b > 0 ->
              ignore (sys S.Sendto [ K.Int conn; K.Buf b ]);
              incr served
          | _ -> failwith "server recv"
        done
      done);
  (* client processes: connect, send, check the echo *)
  for c = 1 to nclients do
    Sched.spawn sched ~name:(Printf.sprintf "client-%d" c) (fun () ->
        let proc = Kern.spawn kernel in
        let sys s a = Kern.invoke_blocking kernel proc s a in
        let fd = match sys S.Socket [ K.Int 2; K.Int 1; K.Int 0 ] with K.RInt f -> f | _ -> failwith "c" in
        ignore (sys S.Connect [ K.Int fd; K.Int 9200 ]);
        for r = 1 to requests_per_client do
          let msg = Bytes.of_string (Printf.sprintf "c%d-r%d" c r) in
          ignore (sys S.Sendto [ K.Int fd; K.Buf msg ]);
          match sys S.Recvfrom [ K.Int fd; K.Int 64 ] with
          | K.RBuf b when Bytes.equal b msg -> incr answered
          | K.RBuf b -> Alcotest.failf "client %d got %S" c (Bytes.to_string b)
          | ret -> Alcotest.failf "client %d: %s" c (Format.asprintf "%a" K.pp_ret ret)
        done)
  done;
  Sched.run sched;
  Alcotest.(check int) "server echoed everything" (nclients * requests_per_client) !served;
  Alcotest.(check int) "clients verified everything" (nclients * requests_per_client) !answered

(* --- Veil-Scope wait spans: suspensions become Trace.Wait records --- *)

module Tr = Obs.Trace

let fake_obs tr clock =
  { Sched.wo_tracer = tr; wo_now = (fun () -> !clock); wo_vcpu = (fun () -> 0); wo_vmpl = 3 }

(* Drive step_vcpu by hand with a fake clock so every wait span's
   timestamp and duration is pinned exactly: spawn stamps the
   time-to-first-step as Runqueue wait, yield re-parks as Runqueue,
   block_until parks as Blocked_poll. *)
let test_wait_spans () =
  let tr = Tr.create ~capacity:64 () in
  Tr.set_enabled tr true;
  let clock = ref 100 in
  let sched = Sched.create ~nvcpus:1 ~wait_obs:(fake_obs tr clock) () in
  let flag = ref false in
  Sched.spawn sched ~name:"blocker" (fun () -> Sched.block_until (fun () -> !flag));
  Sched.spawn sched ~name:"worker" (fun () ->
      Sched.yield ();
      flag := true);
  (* t=130: blocker steps first (spawned at 100 -> 30 cycles runqueue),
     then parks blocked at 130 *)
  clock := 130;
  Alcotest.(check bool) "step 1" true (Sched.step_vcpu sched 0);
  (* t=150: worker's first step (spawned at 100 -> 50 cycles runqueue),
     yields, parking runnable at 150 *)
  clock := 150;
  Alcotest.(check bool) "step 2" true (Sched.step_vcpu sched 0);
  (* t=170: blocker still blocked; worker resumes (20 cycles runqueue),
     flips the flag and finishes *)
  clock := 170;
  Alcotest.(check bool) "step 3" true (Sched.step_vcpu sched 0);
  (* t=200: blocker's predicate is satisfied (parked blocked 130..200) *)
  clock := 200;
  Alcotest.(check bool) "step 4" true (Sched.step_vcpu sched 0);
  Alcotest.(check int) "all done" 0 (Sched.live sched);
  let spans =
    List.map
      (fun e -> (Tr.kind_name e.Tr.ev_kind, e.Tr.ev_ts, e.Tr.ev_dur))
      (Tr.events tr)
  in
  Alcotest.(check (list (triple string int int)))
    "every suspension interval, stamped and measured"
    [
      ("wait.runqueue", 100, 30) (* blocker: spawn -> first step *);
      ("wait.runqueue", 100, 50) (* worker: spawn -> first step *);
      ("wait.runqueue", 150, 20) (* worker: yield -> resume *);
      ("wait.blocked_poll", 130, 70) (* blocker: block_until -> wakeup *);
    ]
    spans;
  List.iter
    (fun e ->
      Alcotest.(check string) "bucket" "sched" e.Tr.ev_bucket;
      Alcotest.(check int) "vmpl" 3 e.Tr.ev_vmpl)
    (Tr.events tr)

(* Armed wait_obs with the tracer disabled must emit nothing (the
   zero-cost-when-off contract the bench alloc-check also pins), and a
   clock that never advances must not produce zero-length spans. *)
let test_wait_spans_off_and_zero () =
  let tr_off = Tr.create ~capacity:64 () in
  let clock = ref 0 in
  let sched = Sched.create ~nvcpus:1 ~wait_obs:(fake_obs tr_off clock) () in
  Sched.spawn sched ~name:"t" (fun () -> Sched.yield ());
  while Sched.step_vcpu sched 0 do
    clock := !clock + 10
  done;
  Alcotest.(check int) "tracer off: no events" 0 (Tr.emitted tr_off);
  let tr_static = Tr.create ~capacity:64 () in
  Tr.set_enabled tr_static true;
  let frozen = ref 500 in
  let sched2 = Sched.create ~nvcpus:1 ~wait_obs:(fake_obs tr_static frozen) () in
  Sched.spawn sched2 ~name:"t" (fun () -> Sched.yield ());
  while Sched.step_vcpu sched2 0 do () done;
  Alcotest.(check int) "frozen clock: zero-length waits dropped" 0 (Tr.emitted tr_static)

let suite =
  [
    ("round robin interleaving", `Quick, test_round_robin);
    ("block_until", `Quick, test_block_until);
    ("block on satisfied predicate", `Quick, test_block_already_true);
    ("deadlock detection", `Quick, test_deadlock_detected);
    ("context switch hook", `Quick, test_context_switch_charging);
    ("blocked polls accrue cycles", `Quick, test_blocked_poll_charging);
    ("task exceptions propagate", `Quick, test_exception_propagates);
    ("concurrent echo server", `Quick, test_concurrent_echo_server);
    ("wait spans stamp suspensions", `Quick, test_wait_spans);
    ("wait spans off / zero-length", `Quick, test_wait_spans_off_and_zero);
  ]
