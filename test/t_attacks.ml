(* Security validation (§8): every attack in Tables 1-2 and the two
   §8.3 validation experiments must be stopped. *)

module A = Veil_attacks.Attacks

let check_blocked attack () =
  let outcome = A.run attack in
  if not (A.is_blocked outcome) then
    Alcotest.failf "%s — %s" (A.name attack) (A.outcome_to_string outcome)

let to_cases attacks = List.map (fun a -> (A.name a, `Quick, check_blocked a)) attacks

let test_counts () =
  Alcotest.(check bool) "Table 1 coverage" true (List.length (A.framework_attacks ()) >= 8);
  Alcotest.(check bool) "Table 2 coverage" true (List.length (A.enclave_attacks ()) >= 9);
  Alcotest.(check int) "§8.3 validation attacks + stale-TLB replay + pulse tamper" 4
    (List.length (A.validation_attacks ()))

let test_validation_halts_with_npf () =
  (* §8.3: the memory-integrity validation attacks end in continuous
     #NPF (a halted CVM), not a graceful refusal.  The telemetry-tamper
     attack is the exception by design: the hypervisor touches only
     exported bytes, so the defence is cryptographic detection. *)
  List.iter
    (fun a ->
      match A.run a with
      | A.Blocked_npf _ -> ()
      | A.Blocked_crypto _ when A.name a = "hypervisor-pulse-telemetry-tamper" -> ()
      | o -> Alcotest.failf "%s should halt with #NPF, got %s" (A.name a) (A.outcome_to_string o))
    (A.validation_attacks ())

let suite =
  [ ("attack inventory", `Quick, test_counts) ]
  @ to_cases (A.framework_attacks ())
  @ to_cases (A.enclave_attacks ())
  @ to_cases (A.validation_attacks ())
  @ [ ("§8.3 attacks halt with #NPF", `Quick, test_validation_halts_with_npf) ]
