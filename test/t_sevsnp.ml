(* SEV-SNP platform model tests: permissions, RMP semantics, memory,
   page tables, instruction semantics, attestation. *)

module T = Sevsnp.Types
module Perm = Sevsnp.Perm
module Rmp = Sevsnp.Rmp
module P = Sevsnp.Platform

let q = QCheck_alcotest.to_alcotest

(* --- Perm lattice --- *)

let perm_gen =
  QCheck.Gen.(
    map4
      (fun r w u s -> { Perm.read = r; write = w; user_exec = u; super_exec = s })
      bool bool bool bool)

let perm_arb = QCheck.make perm_gen

let perm_union_upper =
  QCheck.Test.make ~name:"perm union is an upper bound" ~count:200 (QCheck.pair perm_arb perm_arb)
    (fun (a, b) ->
      let u = Perm.union a b in
      Perm.subset a u && Perm.subset b u)

let perm_inter_lower =
  QCheck.Test.make ~name:"perm inter is a lower bound" ~count:200 (QCheck.pair perm_arb perm_arb)
    (fun (a, b) ->
      let i = Perm.inter a b in
      Perm.subset i a && Perm.subset i b)

let perm_subset_antisym =
  QCheck.Test.make ~name:"perm subset antisymmetric" ~count:200 (QCheck.pair perm_arb perm_arb)
    (fun (a, b) -> (not (Perm.subset a b && Perm.subset b a)) || Perm.equal a b)

let test_perm_allows () =
  Alcotest.(check bool) "rx allows supervisor exec" true (Perm.allows Perm.rx T.Execute T.Cpl0);
  Alcotest.(check bool) "rx allows user exec" true (Perm.allows Perm.rx T.Execute T.Cpl3);
  Alcotest.(check bool) "rw denies exec" false (Perm.allows Perm.rw T.Execute T.Cpl0);
  Alcotest.(check bool)
    "enclave text denies supervisor exec" false
    (Perm.allows Perm.r_user_exec T.Execute T.Cpl0);
  Alcotest.(check bool)
    "enclave text allows user exec" true
    (Perm.allows Perm.r_user_exec T.Execute T.Cpl3);
  Alcotest.(check bool) "none denies read" false (Perm.allows Perm.none T.Read T.Cpl0)

(* --- RMP --- *)

let test_rmp_lifecycle () =
  let rmp = Rmp.create ~npages:16 in
  Alcotest.(check bool) "fresh page invalid" true (Rmp.state rmp 3 = Rmp.Invalid);
  (match Rmp.check_guest_access rmp ~gpfn:3 ~vmpl:T.Vmpl0 ~cpl:T.Cpl0 ~access:T.Read with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "access to unvalidated page must fault");
  Rmp.validate rmp 3;
  Alcotest.(check bool) "validated is private" true (Rmp.state rmp 3 = Rmp.Private);
  (match Rmp.check_guest_access rmp ~gpfn:3 ~vmpl:T.Vmpl0 ~cpl:T.Cpl0 ~access:T.Write with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "vmpl0 must have full access after validate");
  (match Rmp.check_guest_access rmp ~gpfn:3 ~vmpl:T.Vmpl3 ~cpl:T.Cpl0 ~access:T.Read with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "vmpl3 has no default access");
  Rmp.unvalidate rmp 3;
  Alcotest.(check bool) "unvalidate -> shared" true (Rmp.state rmp 3 = Rmp.Shared)

let test_rmp_adjust_rules () =
  let rmp = Rmp.create ~npages:16 in
  Rmp.validate rmp 1;
  (* privileged caller grants a lower VMPL *)
  (match Rmp.adjust rmp ~caller:T.Vmpl0 ~gpfn:1 ~target:T.Vmpl3 ~perms:Perm.all ~vmsa:false with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (match Rmp.check_guest_access rmp ~gpfn:1 ~vmpl:T.Vmpl3 ~cpl:T.Cpl0 ~access:T.Write with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "granted access must pass");
  (* same or higher target refused *)
  (match Rmp.adjust rmp ~caller:T.Vmpl1 ~gpfn:1 ~target:T.Vmpl1 ~perms:Perm.all ~vmsa:false with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "cannot adjust own level");
  (match Rmp.adjust rmp ~caller:T.Vmpl3 ~gpfn:1 ~target:T.Vmpl1 ~perms:Perm.all ~vmsa:false with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "cannot adjust more privileged level");
  (* vmsa attribute requires vmpl0, any target *)
  (match Rmp.adjust rmp ~caller:T.Vmpl0 ~gpfn:1 ~target:T.Vmpl0 ~perms:Perm.none ~vmsa:true with
  | Ok () -> Alcotest.(check bool) "vmsa marked" true (Rmp.is_vmsa rmp 1)
  | Error e -> Alcotest.fail e);
  (match Rmp.adjust rmp ~caller:T.Vmpl1 ~gpfn:1 ~target:T.Vmpl2 ~perms:Perm.none ~vmsa:true with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "vmsa attribute from vmpl1 must fail")

let test_rmp_shared_semantics () =
  let rmp = Rmp.create ~npages:4 in
  Rmp.unvalidate rmp 0;
  (match Rmp.check_guest_access rmp ~gpfn:0 ~vmpl:T.Vmpl3 ~cpl:T.Cpl3 ~access:T.Write with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "shared pages writable by all");
  (match Rmp.check_guest_access rmp ~gpfn:0 ~vmpl:T.Vmpl0 ~cpl:T.Cpl0 ~access:T.Execute with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "never execute from shared pages");
  Alcotest.(check bool) "host can touch shared" true (Rmp.host_can_access rmp 0);
  Rmp.validate rmp 0;
  Alcotest.(check bool) "host blocked on private" false (Rmp.host_can_access rmp 0)

(* --- Phys_mem --- *)

let test_phys_mem_rw () =
  let mem = Sevsnp.Phys_mem.create ~npages:8 in
  let data = Bytes.of_string "hello across a page boundary" in
  Sevsnp.Phys_mem.write mem (T.page_size - 5) data;
  Alcotest.(check bytes) "cross-page roundtrip" data
    (Sevsnp.Phys_mem.read mem (T.page_size - 5) (Bytes.length data));
  Sevsnp.Phys_mem.write_u64 mem 128 0x1122334455667788 |> ignore;
  Alcotest.(check int) "u64 roundtrip" 0x1122334455667788 (Sevsnp.Phys_mem.read_u64 mem 128);
  Alcotest.(check int) "untouched reads zero" 0 (Sevsnp.Phys_mem.read_byte mem (3 * T.page_size));
  Alcotest.check_raises "oob write" (Invalid_argument "Phys_mem: access 0x8000+4 out of range")
    (fun () -> Sevsnp.Phys_mem.write mem (8 * T.page_size) (Bytes.create 4))

(* Regressions at the 256 KiB chunk seams of the arena: the u64
   accessors have a distinct straddle path, [read_into]/[write_sub]
   split their blits per chunk, and [check_range] must reject a
   near-[max_int] gpa whose [gpa + len] wraps negative. *)
let test_phys_mem_chunk_boundary () =
  let module PM = Sevsnp.Phys_mem in
  (* 3 chunks' worth of pages so accesses can straddle seams *)
  let mem = PM.create ~npages:192 in
  let seam = 64 * T.page_size in
  (* exact fit: last 8 bytes of chunk 0 (fast path's inclusive edge) *)
  PM.write_u64 mem (seam - 8) 0x0123456789abcdef;
  Alcotest.(check int) "u64 exact fit at chunk end" 0x0123456789abcdef
    (PM.read_u64 mem (seam - 8));
  (* straddle: 4 bytes in chunk 0, 4 in chunk 1 *)
  PM.write_u64 mem (seam - 4) 0x1a5a1234fedc9876;
  Alcotest.(check int) "u64 straddling chunk seam" 0x1a5a1234fedc9876
    (PM.read_u64 mem (seam - 4));
  (* byte view must agree with the straddled u64 on both sides *)
  Alcotest.(check int) "low byte before seam" 0x76 (PM.read_byte mem (seam - 4));
  Alcotest.(check int) "high byte after seam" 0x1a (PM.read_byte mem (seam + 3));
  (* straddled read where the upper chunk was never materialized *)
  let mem2 = PM.create ~npages:192 in
  PM.write_byte mem2 (seam - 1) 0xff;
  Alcotest.(check int) "straddle into unmaterialized chunk" 0xff00
    (PM.read_u64 mem2 (seam - 2) land 0xffff);
  Alcotest.(check int) "upper bytes read zero" 0 (PM.read_u64 mem2 (seam - 2) lsr 16);
  (* bulk copy across the seam: write_sub/read_into chunk splitting *)
  let pat = Bytes.init 1000 (fun i -> Char.chr ((i * 7) land 0xff)) in
  PM.write_sub mem (seam - 500) pat 0 1000;
  let back = Bytes.create 1000 in
  PM.read_into mem (seam - 500) back 0 1000;
  Alcotest.(check bytes) "bulk roundtrip across seam" pat back;
  (* a second seam in the same transfer *)
  let big = Bytes.make ((2 * 64 * T.page_size) + 64) 'x' in
  PM.write mem 32 big;
  Alcotest.(check bytes) "two-seam transfer" big (PM.read mem 32 (Bytes.length big));
  (* overflow-proof bound check: gpa + len wraps negative pre-fix *)
  List.iter
    (fun gpa ->
      Alcotest.check_raises "huge gpa rejected"
        (Invalid_argument (Printf.sprintf "Phys_mem: access 0x%x+8 out of range" gpa))
        (fun () -> ignore (PM.read_u64 mem gpa)))
    [ max_int - 4; max_int - 7; max_int ];
  Alcotest.check_raises "negative len rejected"
    (Invalid_argument "Phys_mem: access 0x0+-1 out of range")
    (fun () -> ignore (PM.read mem 0 (-1)))

let phys_mem_roundtrip =
  QCheck.Test.make ~name:"phys_mem write/read roundtrip" ~count:100
    QCheck.(pair (bytes_of_size QCheck.Gen.(1 -- 200)) (QCheck.make QCheck.Gen.(0 -- 20000)))
    (fun (data, gpa) ->
      let mem = Sevsnp.Phys_mem.create ~npages:8 in
      let gpa = gpa mod (Sevsnp.Phys_mem.bytes_size mem - Bytes.length data - 1) in
      Sevsnp.Phys_mem.write mem gpa data;
      Bytes.equal data (Sevsnp.Phys_mem.read mem gpa (Bytes.length data)))

(* --- Pagetable --- *)

module Pt = Sevsnp.Pagetable

let mk_io mem next =
  {
    Pt.read_u64 = Sevsnp.Phys_mem.read_u64 mem;
    write_u64 = Sevsnp.Phys_mem.write_u64 mem;
    alloc_frame =
      (fun () ->
        let f = !next in
        incr next;
        f);
    (* raw tables never consulted through a VCPU TLB *)
    invalidate = (fun () -> ());
  }

let test_pagetable_map_walk () =
  let mem = Sevsnp.Phys_mem.create ~npages:64 in
  let next = ref 1 in
  let io = mk_io mem next in
  let root = 0 in
  let va = 0x1234 * T.page_size in
  Pt.map io ~root va { Pt.pte_gpfn = 42; pte_flags = Pt.user_rw };
  (match Pt.walk ~read_u64:io.Pt.read_u64 ~root va with
  | Some pte ->
      Alcotest.(check int) "frame" 42 pte.Pt.pte_gpfn;
      Alcotest.(check bool) "writable" true pte.Pt.pte_flags.Pt.writable;
      Alcotest.(check bool) "nx" true pte.Pt.pte_flags.Pt.nx
  | None -> Alcotest.fail "mapping not found");
  Alcotest.(check bool) "unmapped va misses" true (Pt.walk ~read_u64:io.Pt.read_u64 ~root (va + T.page_size) = None);
  Alcotest.(check bool) "protect" true (Pt.protect io ~root va Pt.user_ro);
  (match Pt.walk ~read_u64:io.Pt.read_u64 ~root va with
  | Some pte -> Alcotest.(check bool) "now read-only" false pte.Pt.pte_flags.Pt.writable
  | None -> Alcotest.fail "lost mapping after protect");
  Alcotest.(check bool) "unmap" true (Pt.unmap io ~root va);
  Alcotest.(check bool) "gone" true (Pt.walk ~read_u64:io.Pt.read_u64 ~root va = None);
  Alcotest.(check bool) "double unmap false" false (Pt.unmap io ~root va)

let test_pagetable_encode_decode () =
  let pte = { Pt.pte_gpfn = 0x12345; pte_flags = { Pt.present = true; writable = false; user = true; nx = true } } in
  (match Pt.decode (Pt.encode pte) with
  | Some p -> Alcotest.(check bool) "roundtrip" true (p = pte)
  | None -> Alcotest.fail "decode failed");
  Alcotest.(check bool) "non-present decodes to None" true (Pt.decode 0 = None)

let pagetable_many =
  QCheck.Test.make ~name:"pagetable: many mappings all resolve" ~count:20
    (QCheck.make QCheck.Gen.(1 -- 200))
    (fun n ->
      let mem = Sevsnp.Phys_mem.create ~npages:512 in
      let next = ref 1 in
      let io = mk_io mem next in
      let root = 0 in
      for i = 0 to n - 1 do
        (* scatter across the VA space to hit different table paths *)
        let va = i * 7919 * T.page_size mod (Pt.max_va / 2) land lnot (T.page_size - 1) in
        Pt.map io ~root va { Pt.pte_gpfn = 1000 + i; pte_flags = Pt.user_rw }
      done;
      let ok = ref true in
      let count = ref 0 in
      Pt.iter_leaves ~read_u64:io.Pt.read_u64 ~root (fun _ _ -> incr count);
      for i = 0 to n - 1 do
        let va = i * 7919 * T.page_size mod (Pt.max_va / 2) land lnot (T.page_size - 1) in
        match Pt.walk ~read_u64:io.Pt.read_u64 ~root va with
        | Some pte -> if pte.Pt.pte_gpfn < 1000 then ok := false
        | None -> ok := false
      done;
      !ok && !count <= n)

let test_pagetable_table_frames () =
  let mem = Sevsnp.Phys_mem.create ~npages:64 in
  let next = ref 1 in
  let io = mk_io mem next in
  let root = 0 in
  Pt.map io ~root 0x1000 { Pt.pte_gpfn = 50; pte_flags = Pt.user_rw };
  let frames = Pt.table_frames ~read_u64:io.Pt.read_u64 ~root in
  Alcotest.(check int) "3-level chain = 3 table frames" 3 (List.length frames);
  Alcotest.(check bool) "root included" true (List.mem root frames);
  Alcotest.(check bool) "leaf data frame not included" false (List.mem 50 frames)

(* --- Platform access checks --- *)

let mk_platform () =
  let p = P.create ~npages:64 () in
  let hv = Hypervisor.Hv.create p in
  let vcpu = Hypervisor.Hv.launch_cvm hv ~entry_name:"t" ~boot_image:[ (0, Bytes.make 4096 'B') ] in
  (p, hv, vcpu)

let test_platform_checked_access () =
  let p, _hv, vcpu = mk_platform () in
  (* boot image frame is validated, vmpl0 has access *)
  P.write p vcpu 100 (Bytes.of_string "ok");
  Alcotest.(check bytes) "read back" (Bytes.of_string "ok") (P.read p vcpu 100 2);
  (* unvalidated frame faults and halts *)
  (try
     ignore (P.read p vcpu (10 * T.page_size) 4);
     Alcotest.fail "expected #NPF"
   with T.Npf info -> Alcotest.(check bool) "read fault" true (info.T.fault_access = T.Read));
  Alcotest.(check bool) "halted after NPF" true (P.is_halted p <> None);
  Alcotest.check_raises "post-halt access raises" (T.Cvm_halted (Option.get (P.is_halted p)))
    (fun () -> ignore (P.read p vcpu 100 2))

let test_platform_pvalidate_restriction () =
  let p, hv, vcpu = mk_platform () in
  (match P.pvalidate p vcpu ~gpfn:20 ~to_private:true () with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* create and enter a vmpl3 instance, then pvalidate must fail *)
  Sevsnp.Rmp.validate p.P.rmp 50;
  Sevsnp.Rmp.set_vmsa p.P.rmp 50 true;
  let vmsa3 = Sevsnp.Vmsa.create ~vcpu_id:0 ~vmpl:T.Vmpl3 ~backing_gpfn:50 in
  (match P.install_vmsa p vmsa3 with Ok () -> () | Error e -> Alcotest.fail e);
  ignore hv;
  P.vmenter p vcpu vmsa3;
  (match P.pvalidate p vcpu ~gpfn:21 ~to_private:true () with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "PVALIDATE must require VMPL-0")

let test_platform_ghcb () =
  let p, _hv, vcpu = mk_platform () in
  (* GHCB must be shared *)
  (match P.set_ghcb p vcpu (30 * T.page_size) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "GHCB on invalid page must fail");
  (match P.pvalidate p vcpu ~gpfn:30 ~to_private:false () with Ok () -> () | Error e -> Alcotest.fail e);
  (match P.set_ghcb p vcpu (30 * T.page_size) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "ghcb registered" true (P.ghcb_of_vcpu p vcpu <> None)

let test_platform_host_access () =
  let p, _hv, vcpu = mk_platform () in
  (match P.host_read p 0 16 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "host read of private memory must fail");
  (match P.pvalidate p vcpu ~gpfn:31 ~to_private:false () with Ok () -> () | Error e -> Alcotest.fail e);
  (match P.host_write p (31 * T.page_size) (Bytes.of_string "host") with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  match P.host_read p (31 * T.page_size) 4 with
  | Ok b -> Alcotest.(check bytes) "host rw on shared" (Bytes.of_string "host") b
  | Error e -> Alcotest.fail e

(* --- TLB coherence ---

   A translation warmed into a VCPU's software TLB must not outlive
   the page-table or RMP state that produced it: every invalidation
   rule (unmap, protect, RMPADJUST, PVALIDATE, domain switch) gets a
   warm-then-revoke-then-fault regression test. *)

let data_gpfn = 10
let tlb_root = 8
let tlb_va = 0x300 * T.page_size

(* Page tables live in platform memory and invalidate through the
   platform, exactly like the guest kernel's [pt_io]. *)
let mk_tlb_env () =
  let p, _hv, vcpu = mk_platform () in
  let next = ref 40 in
  let io =
    {
      Pt.read_u64 = Sevsnp.Phys_mem.read_u64 p.P.mem;
      write_u64 = Sevsnp.Phys_mem.write_u64 p.P.mem;
      alloc_frame =
        (fun () ->
          let f = !next in
          incr next;
          f);
      invalidate = (fun () -> P.tlb_shootdown p);
    }
  in
  Rmp.validate p.P.rmp data_gpfn;
  (p, vcpu, io)

(* Put a VMPL-1 instance on the same VCPU and enter it. *)
let enter_vmpl1 p vcpu =
  Rmp.validate p.P.rmp 50;
  Rmp.set_vmsa p.P.rmp 50 true;
  let vmsa1 = Sevsnp.Vmsa.create ~vcpu_id:0 ~vmpl:T.Vmpl1 ~backing_gpfn:50 in
  (match P.install_vmsa p vmsa1 with Ok () -> () | Error e -> Alcotest.fail e);
  P.vmenter p vcpu vmsa1

let test_tlb_stale_unmap () =
  let p, vcpu, io = mk_tlb_env () in
  Pt.map io ~root:tlb_root tlb_va { Pt.pte_gpfn = data_gpfn; pte_flags = Pt.user_rw };
  ignore (P.read_via_pt p vcpu ~root:tlb_root tlb_va 8);
  Alcotest.(check bool) "warm read hit nothing" true (P.is_halted p = None);
  Alcotest.(check bool) "unmap" true (Pt.unmap io ~root:tlb_root tlb_va);
  try
    ignore (P.read_via_pt p vcpu ~root:tlb_root tlb_va 8);
    Alcotest.fail "stale TLB: read succeeded after unmap"
  with P.Guest_page_fault { fault_va; _ } -> Alcotest.(check int) "faulting va" tlb_va fault_va

let test_tlb_stale_protect () =
  let p, vcpu, io = mk_tlb_env () in
  Pt.map io ~root:tlb_root tlb_va { Pt.pte_gpfn = data_gpfn; pte_flags = Pt.user_rw };
  P.write_via_pt p vcpu ~root:tlb_root tlb_va (Bytes.make 8 'w');
  Alcotest.(check bool) "protect to read-only" true (Pt.protect io ~root:tlb_root tlb_va Pt.user_ro);
  (try
     P.write_via_pt p vcpu ~root:tlb_root tlb_va (Bytes.make 8 'x');
     Alcotest.fail "stale TLB: write succeeded after protect-to-RO"
   with P.Guest_page_fault { fault_access; _ } -> Alcotest.(check bool) "write fault" true (fault_access = T.Write));
  (* reads still fine — and must see the first write, not the second *)
  Alcotest.(check bytes) "read survives" (Bytes.make 8 'w') (P.read_via_pt p vcpu ~root:tlb_root tlb_va 8)

let test_tlb_stale_rmpadjust () =
  let p, vcpu, io = mk_tlb_env () in
  Pt.map io ~root:tlb_root tlb_va { Pt.pte_gpfn = data_gpfn; pte_flags = Pt.user_rw };
  (* grant VMPL1, enter a VMPL1 instance, warm the translation there *)
  (match Rmp.adjust p.P.rmp ~caller:T.Vmpl0 ~gpfn:data_gpfn ~target:T.Vmpl1 ~perms:Perm.rw ~vmsa:false with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  enter_vmpl1 p vcpu;
  ignore (P.read_via_pt p vcpu ~root:tlb_root tlb_va 8);
  (* monitor revokes the grant: the cached RMP snapshot must die with it *)
  (match Rmp.adjust p.P.rmp ~caller:T.Vmpl0 ~gpfn:data_gpfn ~target:T.Vmpl1 ~perms:Perm.none ~vmsa:false with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  try
    ignore (P.read_via_pt p vcpu ~root:tlb_root tlb_va 8);
    Alcotest.fail "stale TLB: read succeeded after RMPADJUST revoked perms"
  with T.Npf info ->
    Alcotest.(check bool) "npf at vmpl1" true (T.equal_vmpl info.T.fault_vmpl T.Vmpl1)

let test_tlb_stale_pvalidate () =
  let p, vcpu, io = mk_tlb_env () in
  let xflags = { Pt.present = true; writable = true; user = false; nx = false } in
  Pt.map io ~root:tlb_root tlb_va { Pt.pte_gpfn = data_gpfn; pte_flags = xflags };
  (* warm with an instruction fetch: private page, VMPL0 may execute *)
  P.check_exec_via_pt p vcpu ~root:tlb_root tlb_va;
  (* guest gives the page back to the host *)
  (match P.pvalidate p vcpu ~gpfn:data_gpfn ~to_private:false () with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  try
    P.check_exec_via_pt p vcpu ~root:tlb_root tlb_va;
    Alcotest.fail "stale TLB: executed from a now-shared page"
  with T.Npf info -> Alcotest.(check bool) "exec fault" true (info.T.fault_access = T.Execute)

let test_tlb_stale_domain_switch () =
  let p, vcpu, io = mk_tlb_env () in
  Pt.map io ~root:tlb_root tlb_va { Pt.pte_gpfn = data_gpfn; pte_flags = Pt.user_rw };
  (* freshly validated pages are VMPL0-only; warm the TLB at VMPL0 *)
  ignore (P.read_via_pt p vcpu ~root:tlb_root tlb_va 8);
  (* the instance switch must flush — otherwise VMPL1 would ride the
     snapshot taken under VMPL0's permission nibble *)
  enter_vmpl1 p vcpu;
  try
    ignore (P.read_via_pt p vcpu ~root:tlb_root tlb_va 8);
    Alcotest.fail "stale TLB: VMPL1 read through a VMPL0-warmed entry"
  with T.Npf info ->
    Alcotest.(check bool) "npf at vmpl1" true (T.equal_vmpl info.T.fault_vmpl T.Vmpl1)

let test_attestation_report () =
  let p, _hv, vcpu = mk_platform () in
  let report = P.attestation_report p vcpu ~report_data:(Bytes.of_string "nonce") in
  Alcotest.(check bool) "vmpl0 reported" true (T.equal_vmpl report.Sevsnp.Attestation.requester_vmpl T.Vmpl0);
  let pk = Sevsnp.Attestation.platform_public_key p.P.attestation in
  Alcotest.(check bool) "signature verifies" true (Sevsnp.Attestation.verify ~public_key:pk report);
  let forged = { report with Sevsnp.Attestation.report_data = Bytes.of_string "evil" } in
  Alcotest.(check bool) "forged report fails" false (Sevsnp.Attestation.verify ~public_key:pk forged)

let test_cycles_anchors () =
  let module C = Sevsnp.Cycles in
  Alcotest.(check int) "domain switch = 7135 (paper §9.1)" 7135 C.domain_switch;
  Alcotest.(check int) "vmcall roundtrip = 1100" 1100 C.vmcall_roundtrip;
  Alcotest.(check int) "boot sweep 6400/page" 6400 ((2 * C.rmpadjust_insn) + C.rmpadjust_page_touch);
  let c = C.create_counter () in
  C.charge c C.Switch 10;
  C.charge c C.Copy 5;
  Alcotest.(check int) "total" 15 (C.total c);
  Alcotest.(check int) "bucket" 10 (C.read_bucket c C.Switch);
  C.reset c;
  Alcotest.(check int) "reset" 0 (C.total c)

let suite =
  [
    q perm_union_upper;
    q perm_inter_lower;
    q perm_subset_antisym;
    ("perm allows semantics", `Quick, test_perm_allows);
    ("rmp lifecycle", `Quick, test_rmp_lifecycle);
    ("rmp adjust rules", `Quick, test_rmp_adjust_rules);
    ("rmp shared semantics", `Quick, test_rmp_shared_semantics);
    ("phys_mem rw", `Quick, test_phys_mem_rw);
    ("phys_mem chunk boundaries", `Quick, test_phys_mem_chunk_boundary);
    q phys_mem_roundtrip;
    ("pagetable map/walk/protect/unmap", `Quick, test_pagetable_map_walk);
    ("pagetable pte encode/decode", `Quick, test_pagetable_encode_decode);
    q pagetable_many;
    ("pagetable table frames", `Quick, test_pagetable_table_frames);
    ("platform checked access + halt", `Quick, test_platform_checked_access);
    ("platform pvalidate vmpl0-only", `Quick, test_platform_pvalidate_restriction);
    ("platform ghcb registration", `Quick, test_platform_ghcb);
    ("platform host access policy", `Quick, test_platform_host_access);
    ("tlb stale after unmap", `Quick, test_tlb_stale_unmap);
    ("tlb stale after protect", `Quick, test_tlb_stale_protect);
    ("tlb stale after rmpadjust", `Quick, test_tlb_stale_rmpadjust);
    ("tlb stale after pvalidate", `Quick, test_tlb_stale_pvalidate);
    ("tlb flushed on domain switch", `Quick, test_tlb_stale_domain_switch);
    ("attestation report", `Quick, test_attestation_report);
    ("cycle model anchors", `Quick, test_cycles_anchors);
  ]
