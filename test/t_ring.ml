(* Veil-Ring tests (ISSUE 7): SPSC ring edge cases (wraparound,
   backpressure), monitor-side placement checks, batched service with
   (batch_seq, slot) replay suppression, chaos slot corruption, the
   kernel's watermark-driven deferral, and the 1-VCPU schedule
   identity of ringed vs unbatched runs. *)

module B = Veil_core.Boot
module M = Veil_core.Monitor
module R = Veil_core.Ring
module I = Veil_core.Idcb
module FP = Chaos.Fault_plan
module P = Sevsnp.Platform
module K = Guest_kernel.Kernel
module S = Guest_kernel.Sysno

let mval sys name = Obs.Metrics.value (Obs.Metrics.counter sys.B.platform.P.metrics name)

let audit_rec i =
  I.R_log_append
    { Guest_kernel.Audit.seq = i; cycles = 0; sys = S.Open; pid = 1; detail = "t_ring" }

(* --- the ring itself (no boot needed) --- *)

let test_wraparound () =
  let ring = R.create ~gpfn:100 ~vcpu_id:0 ~slots:4 in
  Alcotest.(check bool) "fresh ring empty" true (R.is_empty ring);
  (* three rounds of 3 submissions on a 4-slot ring: head crosses the
     slot boundary twice, logical offsets must keep mapping through
     the mask to the right slots *)
  for round = 0 to 2 do
    for i = 0 to 2 do
      Alcotest.(check bool) "submit accepted" true
        (R.submit ring (I.R_tpm_extend { pcr = (3 * round) + i; data = Bytes.create 1 }))
    done;
    Alcotest.(check int) "three pending" 3 (R.pending ring);
    for i = 0 to 2 do
      (match R.peek ring i with
      | I.R_tpm_extend { pcr; _ } ->
          Alcotest.(check int) "peek sees the submitted slot" ((3 * round) + i) pcr
      | _ -> Alcotest.fail "wrong request in slot");
      R.set_response ring i I.Resp_ok
    done;
    R.consume ring;
    Alcotest.(check bool) "consumed empty" true (R.is_empty ring)
  done

let test_backpressure () =
  let ring = R.create ~gpfn:100 ~vcpu_id:0 ~slots:4 in
  for i = 0 to 3 do
    Alcotest.(check bool) "fills" true (R.submit ring (I.R_tpm_extend { pcr = i; data = Bytes.create 1 }))
  done;
  Alcotest.(check bool) "full" true (R.is_full ring);
  Alcotest.(check bool) "submit refused on full ring" false
    (R.submit ring (I.R_tpm_extend { pcr = 9; data = Bytes.create 1 }));
  Alcotest.(check int) "refused submit left pending intact" 4 (R.pending ring);
  R.consume ring;
  Alcotest.(check bool) "drained ring accepts again" true
    (R.submit ring (I.R_tpm_extend { pcr = 5; data = Bytes.create 1 }))

let test_bad_slot_counts () =
  Alcotest.check_raises "slots must be a power of two" (Invalid_argument "Ring.create: slots must be a power of two in [2, 1024]")
    (fun () -> ignore (R.create ~gpfn:1 ~vcpu_id:0 ~slots:3))

(* --- monitor registration: IDCB placement rule (§5.2) --- *)

let test_placement_checked () =
  let sys = B.boot_veil ~npages:2048 ~seed:5 () in
  let protected_gpfn = sys.B.layout.Veil_core.Layout.mon_image.Veil_core.Layout.lo in
  (match M.register_ring sys.B.mon (R.create ~gpfn:protected_gpfn ~vcpu_id:0 ~slots:8) with
  | Ok () -> Alcotest.fail "ring on VeilMon memory must be refused"
  | Error _ -> ());
  let os_gpfn = K.alloc_frame sys.B.kernel in
  (match M.register_ring sys.B.mon (R.create ~gpfn:os_gpfn ~vcpu_id:0 ~slots:8) with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("ring on OS memory refused: " ^ e));
  (match M.register_ring sys.B.mon (R.create ~gpfn:os_gpfn ~vcpu_id:63 ~slots:8) with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("last provisioned vcpu id refused: " ^ e));
  match M.register_ring sys.B.mon (R.create ~gpfn:os_gpfn ~vcpu_id:64 ~slots:8) with
  | Ok () -> Alcotest.fail "out-of-range vcpu id must be refused"
  | Error _ -> ()

(* --- one Monitor+Switch entry per batch --- *)

let test_batch_amortizes_switches () =
  let sys = B.boot_veil ~npages:2048 ~seed:5 () in
  B.enable_rings sys ();
  let ring = Option.get (M.ring_of sys.B.mon ~vcpu_id:0) in
  let vcpu = sys.B.vcpu in
  for i = 1 to 8 do
    Alcotest.(check bool) "submit" true (M.ring_submit sys.B.mon vcpu ring (audit_rec i))
  done;
  let switches0 = (Hypervisor.Hv.stats sys.B.hv).Hypervisor.Hv.domain_switches in
  let served = M.os_call_batch sys.B.mon vcpu ring in
  Alcotest.(check int) "all slots served" 8 served;
  Alcotest.(check int) "one switch pair for the whole batch" 2
    ((Hypervisor.Hv.stats sys.B.hv).Hypervisor.Hv.domain_switches - switches0);
  Alcotest.(check bool) "flush counted" true (mval sys "monitor.ring_flushes" >= 1);
  Alcotest.(check bool) "slots counted" true (mval sys "monitor.ring_slots" >= 8);
  Alcotest.(check bool) "ring retired" true (R.is_empty ring);
  (* the ledger charges the batch, not any single slot *)
  let ws = M.wait_stats sys.B.mon in
  match List.find_opt (fun (tag, _, _, _) -> tag = "ring_flush") ws.M.ws_by_type with
  | Some (_, entries, busy, _) ->
      Alcotest.(check bool) "ring_flush ledger entry" true (entries >= 1 && busy > 0)
  | None -> Alcotest.fail "no ring_flush entries in the wait ledger"

(* --- (batch_seq, slot) replay suppression --- *)

let test_duplicated_batch_replayed_from_cache () =
  let sys = B.boot_veil ~npages:2048 ~seed:5 () in
  B.enable_rings sys ();
  let ring = Option.get (M.ring_of sys.B.mon ~vcpu_id:0) in
  let vcpu = sys.B.vcpu in
  for i = 1 to 3 do
    ignore (M.ring_submit sys.B.mon vcpu ring (audit_rec i))
  done;
  let count0 = Veil_core.Slog.count sys.B.slog in
  ignore (R.stamp_flush ring);
  M.domain_switch sys.B.mon vcpu ~target:Veil_core.Privdom.Sec;
  let n1 = M.serve_batch sys.B.mon vcpu ring in
  Alcotest.(check int) "batch served" 3 n1;
  for i = 0 to 2 do
    Alcotest.(check bool) "slot ok" true (R.response_at ring i = I.Resp_ok)
  done;
  let replays0 = mval sys "monitor.replays_suppressed" in
  (* A duplicated hv relay of the same batch re-enters the serving
     path with the same batch sequence: the monitor must answer from
     the cached per-slot responses without re-executing any slot. *)
  let n2 = M.serve_batch sys.B.mon vcpu ring in
  M.domain_switch sys.B.mon vcpu ~target:Veil_core.Privdom.Unt;
  Alcotest.(check int) "replay reports the same count" 3 n2;
  Alcotest.(check int) "every slot counted as a suppressed replay" (replays0 + 3)
    (mval sys "monitor.replays_suppressed");
  Alcotest.(check int) "log appends not re-executed" (count0 + 3)
    (Veil_core.Slog.count sys.B.slog);
  for i = 0 to 2 do
    Alcotest.(check bool) "cached response survives the dup" true
      (R.response_at ring i = I.Resp_ok)
  done

(* Same duplication, driven by the chaos hv.relay dup site: with
   Relay_dup armed the deterministic ringed run must still replay to
   the identical journal (suppression keeps the schedule stable). *)
let test_ringed_run_deterministic_under_relay_dup () =
  let measure () =
    let plan = FP.create ~seed:11 () in
    FP.set_site plan FP.Relay_dup ~prob:0.5 ();
    B.default_chaos := (fun () -> Some plan);
    Fun.protect
      ~finally:(fun () -> B.default_chaos := (fun () -> None))
      (fun () ->
        let r, _ =
          Workloads.Escale.measure ~rings:true ~nvcpus:2 ~seed:5
            ~spawn_work:(Workloads.Escale.syscall_work ~ops_total:128) ()
        in
        (r.Workloads.Escale.es_journal, r.Workloads.Escale.es_ops))
  in
  let j1, ops1 = measure () in
  let j2, ops2 = measure () in
  Alcotest.(check string) "same plan, same ringed schedule" j1 j2;
  Alcotest.(check int) "same ops" ops1 ops2

(* --- chaos: ring_slot_corrupt is degraded, never silent --- *)

let test_slot_corruption_rejected_not_poisoning () =
  let plan = FP.create ~seed:7 () in
  FP.set_site plan FP.Ring_slot_corrupt ~max_hits:1 ~prob:1.0 ();
  let sys = B.boot_veil ~npages:2048 ~seed:5 ~chaos:plan () in
  B.enable_rings sys ();
  let ring = Option.get (M.ring_of sys.B.mon ~vcpu_id:0) in
  let vcpu = sys.B.vcpu in
  for i = 1 to 3 do
    ignore (M.ring_submit sys.B.mon vcpu ring (audit_rec i))
  done;
  ignore (R.stamp_flush ring);
  M.domain_switch sys.B.mon vcpu ~target:Veil_core.Privdom.Sec;
  let served = M.serve_batch sys.B.mon vcpu ring in
  M.domain_switch sys.B.mon vcpu ~target:Veil_core.Privdom.Unt;
  Alcotest.(check int) "whole batch processed" 3 served;
  Alcotest.(check int) "one corruption fired" 1 (FP.hits plan FP.Ring_slot_corrupt);
  (match R.response_at ring 0 with
  | I.Resp_error _ -> ()
  | _ -> Alcotest.fail "corrupted slot must be rejected");
  for i = 1 to 2 do
    Alcotest.(check bool) "rest of the batch unharmed" true (R.response_at ring i = I.Resp_ok)
  done;
  Alcotest.(check int) "rejection journaled" 1 (mval sys "monitor.ring_slot_rejected")

(* --- mixed batch: any VMPL-0 slot pulls service to Dom_MON --- *)

let test_mixed_batch_serves_at_mon () =
  let sys = B.boot_veil ~npages:2048 ~seed:5 () in
  B.enable_rings sys ();
  let ring = Option.get (M.ring_of sys.B.mon ~vcpu_id:0) in
  let vcpu = sys.B.vcpu in
  let gpfn = K.alloc_frame sys.B.kernel in
  ignore (M.ring_submit sys.B.mon vcpu ring (audit_rec 1));
  ignore (M.ring_submit sys.B.mon vcpu ring (I.R_pvalidate { gpfn; to_private = true }));
  ignore (R.stamp_flush ring);
  (* a batch with an R_pvalidate slot must be served at Dom_MON (the
     more privileged domain also runs the Dom_SEC dispatch) *)
  M.domain_switch sys.B.mon vcpu ~target:Veil_core.Privdom.Mon;
  let served = M.serve_batch sys.B.mon vcpu ring in
  M.domain_switch sys.B.mon vcpu ~target:Veil_core.Privdom.Unt;
  Alcotest.(check int) "both slots served" 2 served;
  Alcotest.(check bool) "log append ok in the mixed batch" true
    (R.response_at ring 0 = I.Resp_ok);
  (match R.response_at ring 1 with
  | I.Resp_none -> Alcotest.fail "pvalidate slot left unserved"
  | _ -> ())

(* --- kernel deferral: syscall-tail watermark flush + barrier --- *)

let test_kernel_defers_and_flushes () =
  let sys = B.boot_veil ~npages:2048 ~seed:5 () in
  let kernel = sys.B.kernel in
  B.enable_rings ~slots:8 sys ();
  Alcotest.(check bool) "rings enabled" true (B.rings_enabled sys);
  Guest_kernel.Audit.set_rules (K.audit kernel) [ S.Open ];
  let count0 = Veil_core.Slog.count sys.B.slog in
  let proc = K.spawn kernel in
  for i = 1 to 5 do
    match
      K.invoke kernel proc S.Open
        [ Guest_kernel.Ktypes.Str (Printf.sprintf "/tmp/ring-%d" i);
          Guest_kernel.Ktypes.Int 0x42; Guest_kernel.Ktypes.Int 0o644 ]
    with
    | Guest_kernel.Ktypes.RInt fd -> ignore (K.invoke kernel proc S.Close [ Guest_kernel.Ktypes.Int fd ])
    | r -> Alcotest.fail (Format.asprintf "open: %a" Guest_kernel.Ktypes.pp_ret r)
  done;
  (* watermark = slots/2 = 4: the 4th deferred record triggered a
     syscall-tail flush, the 5th is still riding the ring *)
  Alcotest.(check bool) "watermark flushed a batch" true (mval sys "monitor.ring_flushes" >= 1);
  Alcotest.(check bool) "some records landed pre-barrier" true
    (Veil_core.Slog.count sys.B.slog >= count0 + 4);
  B.flush_rings sys;
  Alcotest.(check int) "barrier drains the tail" (count0 + 5) (Veil_core.Slog.count sys.B.slog);
  let ring = Option.get (M.ring_of sys.B.mon ~vcpu_id:0) in
  Alcotest.(check bool) "nothing pending after the barrier" true (R.is_empty ring)

(* --- 1-VCPU ringed run == unbatched schedule, byte for byte --- *)

let test_one_vcpu_schedule_identical () =
  let spawn_work = Workloads.Escale.syscall_work ~ops_total:256 in
  let plain, _ = Workloads.Escale.measure ~nvcpus:1 ~seed:5 ~spawn_work () in
  let ringed, _ = Workloads.Escale.measure ~rings:true ~nvcpus:1 ~seed:5 ~spawn_work () in
  Alcotest.(check string) "identical 1-VCPU schedule journal"
    plain.Workloads.Escale.es_journal ringed.Workloads.Escale.es_journal;
  Alcotest.(check int) "identical op count" plain.Workloads.Escale.es_ops
    ringed.Workloads.Escale.es_ops;
  (* batching must help even a single VCPU: fewer Monitor+Switch
     cycles for the same schedule *)
  Alcotest.(check bool) "ringed monitor share strictly lower" true
    (ringed.Workloads.Escale.es_mon < plain.Workloads.Escale.es_mon)

let suite =
  [
    Alcotest.test_case "ring: wraparound across the slot boundary" `Quick test_wraparound;
    Alcotest.test_case "ring: full-ring backpressure" `Quick test_backpressure;
    Alcotest.test_case "ring: slot count validation" `Quick test_bad_slot_counts;
    Alcotest.test_case "monitor: ring placement checked like an IDCB" `Quick
      test_placement_checked;
    Alcotest.test_case "batch: one switch pair, ledger charges the batch" `Quick
      test_batch_amortizes_switches;
    Alcotest.test_case "batch: duplicated batch answered from cache" `Quick
      test_duplicated_batch_replayed_from_cache;
    Alcotest.test_case "batch: ringed schedule deterministic under relay dup" `Quick
      test_ringed_run_deterministic_under_relay_dup;
    Alcotest.test_case "chaos: corrupt slot rejected without poisoning the batch" `Quick
      test_slot_corruption_rejected_not_poisoning;
    Alcotest.test_case "batch: mixed batch serves at Dom_MON" `Quick
      test_mixed_batch_serves_at_mon;
    Alcotest.test_case "kernel: watermark deferral and flush barrier" `Quick
      test_kernel_defers_and_flushes;
    Alcotest.test_case "1-VCPU ringed run matches the unbatched schedule" `Quick
      test_one_vcpu_schedule_identical;
  ]
