(* veilctl — drive the simulated Veil CVM from the command line:
   inspect a boot, run the attack suites, the LTP battery, or a
   workload under any measurement mode. *)

open Cmdliner

let npages_arg =
  let doc = "Guest memory in 4 KB frames (>= 1024)." in
  Arg.(value & opt int Veil_core.Boot.default_npages & info [ "m"; "npages" ] ~docv:"FRAMES" ~doc)

let seed_arg =
  let doc = "Deterministic simulation seed." in
  Arg.(value & opt int 11 & info [ "s"; "seed" ] ~docv:"SEED" ~doc)

(* --- boot --- *)

let boot_cmd =
  let run npages seed =
    let sys = Veil_core.Boot.boot_veil ~npages ~seed () in
    Printf.printf "Veil CVM booted: %d frames, kernel at %s\n" npages
      (Veil_core.Privdom.to_string
         (Veil_core.Privdom.of_vmpl (Sevsnp.Vcpu.vmpl sys.Veil_core.Boot.vcpu)));
    Printf.printf "boot cost: %d cycles (%.1f ms guest time)\n" sys.Veil_core.Boot.boot_cycles
      (1000.0 *. Sevsnp.Cycles.seconds_of_cycles sys.Veil_core.Boot.boot_cycles);
    Printf.printf "launch measurement: %s\n"
      (Veil_crypto.Sha256.hex_of_digest
         (Option.get
            (Sevsnp.Attestation.launch_measurement
               sys.Veil_core.Boot.platform.Sevsnp.Platform.attestation)));
    print_endline "memory layout (frames):";
    Format.printf "%a@." Veil_core.Layout.pp sys.Veil_core.Boot.layout;
    (match Veil_core.Veil.connect_user sys with
    | Ok _ -> print_endline "remote attestation handshake: OK"
    | Error e -> Printf.printf "remote attestation handshake FAILED: %s\n" e)
  in
  Cmd.v
    (Cmd.info "boot" ~doc:"Boot a Veil CVM and print its layout and measurement.")
    Term.(const run $ npages_arg $ seed_arg)

(* --- attacks --- *)

let attacks_cmd =
  let name_arg =
    let doc = "Run only the named attack (default: all)." in
    Arg.(value & opt (some string) None & info [ "n"; "name" ] ~docv:"NAME" ~doc)
  in
  let run name =
    let attacks =
      match name with
      | None -> Veil_attacks.Attacks.all ()
      | Some n ->
          List.filter (fun a -> Veil_attacks.Attacks.name a = n) (Veil_attacks.Attacks.all ())
    in
    if attacks = [] then begin
      print_endline "no such attack; available:";
      List.iter
        (fun a -> Printf.printf "  %s\n" (Veil_attacks.Attacks.name a))
        (Veil_attacks.Attacks.all ());
      exit 1
    end;
    let blocked = ref 0 in
    List.iter
      (fun a ->
        let o = Veil_attacks.Attacks.run a in
        if Veil_attacks.Attacks.is_blocked o then incr blocked;
        Printf.printf "%-36s %s\n" (Veil_attacks.Attacks.name a)
          (Veil_attacks.Attacks.outcome_to_string o))
      attacks;
    Printf.printf "defended: %d/%d\n" !blocked (List.length attacks);
    if !blocked <> List.length attacks then exit 1
  in
  Cmd.v
    (Cmd.info "attacks" ~doc:"Run the §8 attack suite (Tables 1-2 and the §8.3 validation).")
    Term.(const run $ name_arg)

(* --- ltp --- *)

let ltp_cmd =
  let run npages seed =
    let sys = Veil_core.Boot.boot_veil ~npages ~seed () in
    let results = Enclave_sdk.Ltp.run_all sys in
    List.iter
      (fun r ->
        Printf.printf "%-14s %d/%d%s\n"
          (Guest_kernel.Sysno.to_string r.Enclave_sdk.Ltp.lsys)
          r.Enclave_sdk.Ltp.passed r.Enclave_sdk.Ltp.total
          (if r.Enclave_sdk.Ltp.killed then "  (unsupported: enclave killed)" else ""))
      results;
    let s = Enclave_sdk.Ltp.summarize results in
    Printf.printf "calls passing everything: %d/%d; cases: %d/%d\n"
      s.Enclave_sdk.Ltp.calls_all_passed s.Enclave_sdk.Ltp.calls_total
      s.Enclave_sdk.Ltp.cases_passed s.Enclave_sdk.Ltp.cases_total
  in
  Cmd.v
    (Cmd.info "ltp" ~doc:"Run the LTP-style syscall robustness battery inside enclaves (§7).")
    Term.(const run $ npages_arg $ seed_arg)

(* --- run a workload --- *)

let run_cmd =
  let workload_arg =
    let doc =
      "Workload name (gzip, sqlite, unqlite, mbedtls, lighttpd, nginx, memcached, openssl, 7zip, \
       spec-cpu)."
    in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"WORKLOAD" ~doc)
  in
  let mode_arg =
    let modes =
      [ ("native", Workloads.Driver.Native); ("veil", Workloads.Driver.Veil_background);
        ("enclave", Workloads.Driver.Enclave); ("kaudit", Workloads.Driver.Kaudit);
        ("veils-log", Workloads.Driver.Veils_log) ]
    in
    let doc = "Measurement mode: native, veil, enclave, kaudit or veils-log." in
    Arg.(value & opt (enum modes) Workloads.Driver.Native & info [ "mode" ] ~docv:"MODE" ~doc)
  in
  let scale_arg =
    let doc = "Problem-size multiplier." in
    Arg.(value & opt int 1 & info [ "scale" ] ~docv:"N" ~doc)
  in
  let run name mode scale npages seed =
    match Workloads.Registry.find name with
    | None ->
        Printf.printf "unknown workload %S; known: %s\n" name
          (String.concat ", "
             (List.map (fun w -> w.Workloads.Workload.name) (Workloads.Registry.all ())));
        exit 1
    | Some w ->
        let s = Workloads.Driver.run ~scale ~seed ~npages mode w in
        Printf.printf "%s [%s]: %d cycles (%.2f ms guest time)\n" name
          (Workloads.Driver.mode_to_string mode) s.Workloads.Driver.cycles
          (1000.0 *. s.Workloads.Driver.seconds);
        Printf.printf "  syscalls=%d vm-exits=%d domain-switches=%d audit-records=%d\n"
          s.Workloads.Driver.syscalls s.Workloads.Driver.vm_exits s.Workloads.Driver.domain_switches
          s.Workloads.Driver.audit_records;
        Printf.printf "  cycles: compute=%d kernel=%d switch=%d copy=%d monitor=%d crypto=%d io=%d\n"
          s.Workloads.Driver.compute_cycles s.Workloads.Driver.kernel_cycles
          s.Workloads.Driver.switch_cycles s.Workloads.Driver.copy_cycles
          s.Workloads.Driver.monitor_cycles s.Workloads.Driver.crypto_cycles
          s.Workloads.Driver.io_cycles;
        (match s.Workloads.Driver.enclave with
        | Some st ->
            Printf.printf
              "  enclave: ocalls=%d exits=%d redirect-bytes=%d redirect-cycles=%d exit-cycles=%d\n"
              st.Enclave_sdk.Runtime.ocalls st.Enclave_sdk.Runtime.enclave_exits
              st.Enclave_sdk.Runtime.redirect_bytes st.Enclave_sdk.Runtime.redirect_cycles
              st.Enclave_sdk.Runtime.exit_cycles
        | None -> ())
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run an evaluation workload in a chosen measurement mode.")
    Term.(const run $ workload_arg $ mode_arg $ scale_arg $ npages_arg $ seed_arg)

(* --- status: boot, exercise every service, dump counters --- *)

let status_cmd =
  let run npages seed =
    let sys = Veil_core.Boot.boot_veil ~npages ~seed () in
    let kernel = sys.Veil_core.Boot.kernel in
    (* a little of everything *)
    Guest_kernel.Audit.set_rules (Guest_kernel.Kernel.audit kernel)
      Guest_kernel.Sysno.audit_default_ruleset;
    let proc = Guest_kernel.Kernel.spawn kernel in
    for i = 0 to 9 do
      ignore
        (Guest_kernel.Kernel.invoke kernel proc Guest_kernel.Sysno.Open
           [ Guest_kernel.Ktypes.Str (Printf.sprintf "/tmp/s%d" i); Guest_kernel.Ktypes.Int 0x42;
             Guest_kernel.Ktypes.Int 0o644 ])
    done;
    let img =
      Guest_kernel.Kmodule.build (Guest_kernel.Kernel.rng kernel) ~name:"status-mod" ~text_size:4096
        ~data_size:256 ~symbols:[ "ksym_0" ]
    in
    Guest_kernel.Kernel.vendor_sign_module kernel img;
    ignore (Guest_kernel.Kernel.load_module kernel img);
    let eproc = Guest_kernel.Kernel.spawn kernel in
    (match Enclave_sdk.Runtime.create sys ~binary:(Bytes.make 4096 's') eproc with
    | Ok rt ->
        Enclave_sdk.Runtime.run rt (fun rt ->
            ignore (Enclave_sdk.Runtime.ocall rt Guest_kernel.Sysno.Getpid []))
    | Error e -> print_endline ("enclave: " ^ e));
    ignore
      (Veil_core.Monitor.os_call sys.Veil_core.Boot.mon sys.Veil_core.Boot.vcpu
         (Veil_core.Idcb.R_tpm_extend { pcr = 0; data = Bytes.of_string "status" }));
    (* report *)
    let m = Veil_core.Monitor.stats sys.Veil_core.Boot.mon in
    Printf.printf "VeilMon   : os-calls=%d pvalidate-delegations=%d vcpu-boots=%d sanitizer-rejects=%d\n"
      m.Veil_core.Monitor.os_calls m.Veil_core.Monitor.delegated_pvalidates
      m.Veil_core.Monitor.delegated_vcpu_boots m.Veil_core.Monitor.sanitizer_rejections;
    let k = Veil_core.Kci.stats sys.Veil_core.Boot.kci in
    Printf.printf "VeilS-KCI : active=%b loaded=%d unloaded=%d rejected=%d\n"
      (Veil_core.Kci.active sys.Veil_core.Boot.kci)
      k.Veil_core.Kci.modules_loaded k.Veil_core.Kci.modules_unloaded k.Veil_core.Kci.rejected;
    let s = Veil_core.Slog.stats sys.Veil_core.Boot.slog in
    Printf.printf "VeilS-LOG : appended=%d dropped=%d used=%d/%d bytes\n" s.Veil_core.Slog.appended
      s.Veil_core.Slog.dropped_full
      (Veil_core.Slog.used_bytes sys.Veil_core.Boot.slog)
      (Veil_core.Slog.capacity_bytes sys.Veil_core.Boot.slog);
    let e = Veil_core.Encsvc.stats sys.Veil_core.Boot.enc in
    Printf.printf "VeilS-ENC : created=%d destroyed=%d rejected=%d entries=%d exits=%d paging=%d/%d\n"
      e.Veil_core.Encsvc.created e.Veil_core.Encsvc.destroyed e.Veil_core.Encsvc.rejected
      e.Veil_core.Encsvc.entries e.Veil_core.Encsvc.exits e.Veil_core.Encsvc.evictions
      e.Veil_core.Encsvc.restores;
    Printf.printf "VeilS-TPM : extends=%d pcr0=%s\n"
      (Veil_core.Vtpm.extends_count sys.Veil_core.Boot.vtpm)
      (Veil_crypto.Sha256.hex_of_digest (Veil_core.Vtpm.pcr_value sys.Veil_core.Boot.vtpm 0));
    let h = Hypervisor.Hv.stats sys.Veil_core.Boot.hv in
    Printf.printf "Hypervisor: domain-switches=%d io=%d interrupts=%d page-state-changes=%d\n"
      h.Hypervisor.Hv.domain_switches h.Hypervisor.Hv.io_requests h.Hypervisor.Hv.interrupts_injected
      h.Hypervisor.Hv.page_state_changes;
    Printf.printf "Guest     : syscalls=%d vm-exits=%d guest-time=%.1f ms\n"
      (Guest_kernel.Kernel.syscalls_invoked kernel)
      sys.Veil_core.Boot.vcpu.Sevsnp.Vcpu.exits
      (1000.0 *. Sevsnp.Cycles.seconds_of_cycles (Sevsnp.Vcpu.rdtsc sys.Veil_core.Boot.vcpu))
  in
  Cmd.v
    (Cmd.info "status" ~doc:"Boot, exercise all four protected services, print every counter.")
    Term.(const run $ npages_arg $ seed_arg)

(* --- trace / metrics: Veil-Trace observability --- *)

(* One deterministic exercise of the whole stack (audited syscalls,
   module load, enclave round trip, vTPM extend).  Both the [trace] and
   [metrics] commands run exactly this after resetting the registry, so
   their counts agree event-for-event. *)
let quickstart_scenario sys =
  let kernel = sys.Veil_core.Boot.kernel in
  Guest_kernel.Audit.set_rules (Guest_kernel.Kernel.audit kernel)
    Guest_kernel.Sysno.audit_default_ruleset;
  let proc = Guest_kernel.Kernel.spawn kernel in
  for i = 0 to 9 do
    ignore
      (Guest_kernel.Kernel.invoke kernel proc Guest_kernel.Sysno.Open
         [ Guest_kernel.Ktypes.Str (Printf.sprintf "/tmp/s%d" i); Guest_kernel.Ktypes.Int 0x42;
           Guest_kernel.Ktypes.Int 0o644 ])
  done;
  let img =
    Guest_kernel.Kmodule.build (Guest_kernel.Kernel.rng kernel) ~name:"trace-mod" ~text_size:4096
      ~data_size:256 ~symbols:[ "ksym_0" ]
  in
  Guest_kernel.Kernel.vendor_sign_module kernel img;
  ignore (Guest_kernel.Kernel.load_module kernel img);
  let eproc = Guest_kernel.Kernel.spawn kernel in
  (match Enclave_sdk.Runtime.create sys ~binary:(Bytes.make 4096 't') eproc with
  | Ok rt ->
      Enclave_sdk.Runtime.run rt (fun rt ->
          ignore (Enclave_sdk.Runtime.ocall rt Guest_kernel.Sysno.Getpid []))
  | Error e -> print_endline ("enclave: " ^ e));
  ignore
    (Veil_core.Monitor.os_call sys.Veil_core.Boot.mon sys.Veil_core.Boot.vcpu
       (Veil_core.Idcb.R_tpm_extend { pcr = 0; data = Bytes.of_string "trace" }))

let arm_observability (platform : Sevsnp.Platform.t) =
  Obs.Metrics.reset platform.Sevsnp.Platform.metrics;
  Obs.Trace.clear platform.Sevsnp.Platform.tracer;
  Obs.Trace.set_enabled platform.Sevsnp.Platform.tracer true;
  Obs.Profiler.reset platform.Sevsnp.Platform.profiler;
  Obs.Profiler.set_enabled platform.Sevsnp.Platform.profiler true

let counter_value m name =
  match Obs.Metrics.find m name with Some (Obs.Metrics.Counter c) -> Obs.Metrics.value c | _ -> 0

let trace_summary (platform : Sevsnp.Platform.t) =
  let tr = platform.Sevsnp.Platform.tracer in
  let m = platform.Sevsnp.Platform.metrics in
  Printf.printf "events: emitted=%d stored=%d (capacity %d)\n" (Obs.Trace.emitted tr)
    (Obs.Trace.stored tr) (Obs.Trace.capacity tr);
  List.iter
    (fun (kind, metric) ->
      Printf.printf "  %-14s trace=%-6d registry(%s)=%d\n" (Obs.Trace.kind_name kind)
        (Obs.Trace.count_kind tr kind) metric (counter_value m metric))
    [
      (Obs.Trace.Domain_switch, "hv.domain_switches");
      (Obs.Trace.Vmgexit, "platform.vmgexit");
      (Obs.Trace.Vmenter, "platform.vmenter");
      (Obs.Trace.Syscall, "kernel.syscalls");
      (Obs.Trace.Npf, "platform.npf");
      (Obs.Trace.Audit_emit, "slog.appended");
    ]

let out_arg =
  let doc = "Write the Chrome trace-event JSON here (open in chrome://tracing or Perfetto)." in
  Arg.(value & opt string "trace.json" & info [ "o"; "output" ] ~docv:"FILE" ~doc)

let folded_arg =
  let doc = "Also write the profiler's folded-stack flamegraph text here (flamegraph.pl input)." in
  Arg.(value & opt (some string) None & info [ "folded" ] ~docv:"FILE" ~doc)

let workload_pos_arg =
  let doc =
    "What to run: \"quickstart\" (boot + one pass over every protected service) or an \
     evaluation workload name (gzip, sqlite, ...)."
  in
  Arg.(value & pos 0 string "quickstart" & info [] ~docv:"WORKLOAD" ~doc)

let mode_opt_arg =
  let modes =
    [ ("native", Workloads.Driver.Native); ("veil", Workloads.Driver.Veil_background);
      ("enclave", Workloads.Driver.Enclave); ("kaudit", Workloads.Driver.Kaudit);
      ("veils-log", Workloads.Driver.Veils_log) ]
  in
  let doc = "Measurement mode for workload runs." in
  Arg.(value & opt (enum modes) Workloads.Driver.Veil_background & info [ "mode" ] ~docv:"MODE" ~doc)

(* Boot, arm the tracer+profiler, run the chosen scenario, return the
   platform with both disarmed — shared by [trace] and [profile]. *)
let run_instrumented workload mode npages seed =
  let platform =
    match workload with
    | "quickstart" ->
        let sys = Veil_core.Boot.boot_veil ~npages ~seed () in
        let platform = sys.Veil_core.Boot.platform in
        arm_observability platform;
        quickstart_scenario sys;
        platform
    | name -> (
        match Workloads.Registry.find name with
        | None ->
            Printf.printf "unknown workload %S; known: quickstart, %s\n" name
              (String.concat ", "
                 (List.map (fun w -> w.Workloads.Workload.name) (Workloads.Registry.all ())));
            exit 1
        | Some w ->
            let captured = ref None in
            let on_boot p =
              captured := Some p;
              arm_observability p
            in
            ignore (Workloads.Driver.run ~seed ~npages ~on_boot mode w);
            Option.get !captured)
  in
  Obs.Trace.set_enabled platform.Sevsnp.Platform.tracer false;
  Obs.Profiler.set_enabled platform.Sevsnp.Platform.profiler false;
  platform

let write_file_or_die path contents =
  match open_out path with
  | oc ->
      output_string oc contents;
      close_out oc
  | exception Sys_error msg ->
      Printf.eprintf "cannot write %s: %s\n" path msg;
      exit 1

let write_folded platform path =
  let prof = platform.Sevsnp.Platform.profiler in
  let paths = Obs.Profiler.paths prof in
  write_file_or_die path (Obs.Folded.render paths);
  Printf.printf "wrote %s (%d stacks, %d self-cycles attributed)\n" path (List.length paths)
    (Obs.Profiler.total_self prof)

let trace_cmd =
  let run workload mode out folded npages seed =
    let platform = run_instrumented workload mode npages seed in
    let tr = platform.Sevsnp.Platform.tracer in
    write_file_or_die out (Obs.Chrome_trace.to_json tr);
    Printf.printf "wrote %s (timestamps/durations in guest cycles @ %d Hz)\n" out
      Sevsnp.Cycles.freq_hz;
    Option.iter (write_folded platform) folded;
    trace_summary platform;
    if not (Obs.Trace.well_nested tr) then begin
      print_endline "warning: begin/end spans are not well nested";
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Record a cycle-timestamped event trace of a run and export it as Chrome trace-event \
          JSON (labeled per-VMPL process tracks; --folded adds flamegraph text).")
    Term.(const run $ workload_pos_arg $ mode_opt_arg $ out_arg $ folded_arg $ npages_arg $ seed_arg)

(* --- profile: Veil-Prof cycle attribution --- *)

let profile_cmd =
  let prof_out_arg =
    let doc = "Write the attribution ledger here (\"-\" = stdout)." in
    Arg.(value & opt string "-" & info [ "o"; "output" ] ~docv:"FILE" ~doc)
  in
  let run workload mode out folded npages seed =
    let platform = run_instrumented workload mode npages seed in
    let prof = platform.Sevsnp.Platform.profiler in
    let buf = Buffer.create 1024 in
    Buffer.add_string buf
      "Veil-Prof attribution ledger (self cycles by VMPL and bucket)\n";
    Buffer.add_string buf
      (Printf.sprintf "  %-4s %-16s %14s %10s\n" "vmpl" "bucket" "self-cycles" "hits");
    List.iter
      (fun ((vmpl, bucket), (self, hits)) ->
        Buffer.add_string buf (Printf.sprintf "  %-4d %-16s %14d %10d\n" vmpl bucket self hits))
      (Obs.Profiler.ledger prof);
    Buffer.add_string buf
      (Printf.sprintf "  total attributed: %d cycles across %d stacks\n"
         (Obs.Profiler.total_self prof)
         (List.length (Obs.Profiler.paths prof)));
    if out = "-" then print_string (Buffer.contents buf)
    else begin
      write_file_or_die out (Buffer.contents buf);
      Printf.printf "wrote %s\n" out
    end;
    Option.iter (write_folded platform) folded
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Run a scenario under the Veil-Prof cycle-attribution profiler and print the \
          (VMPL, bucket) ledger; --folded FILE emits flamegraph folded-stack text.")
    Term.(const run $ workload_pos_arg $ mode_opt_arg $ prof_out_arg $ folded_arg $ npages_arg
          $ seed_arg)

let metrics_cmd =
  let json_arg =
    let doc = "Emit the registry as JSON instead of the flat text dump." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let run json npages seed =
    let sys = Veil_core.Boot.boot_veil ~npages ~seed () in
    let platform = sys.Veil_core.Boot.platform in
    (* Same reset point and scenario as [trace quickstart], so the two
       commands report identical numbers. *)
    arm_observability platform;
    Obs.Trace.set_enabled platform.Sevsnp.Platform.tracer false;
    quickstart_scenario sys;
    Sevsnp.Platform.refresh_obs_gauges platform;
    let m = platform.Sevsnp.Platform.metrics in
    if json then print_string (Obs.Metrics.to_json m) else print_string (Obs.Metrics.dump m)
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Run the quickstart scenario and dump the unified metrics registry (counters, gauges, \
          histogram percentiles).")
    Term.(const run $ json_arg $ npages_arg $ seed_arg)

(* --- migrate: demonstrate enclave migration between two CVMs --- *)

let migrate_cmd =
  let run npages seed =
    let src = Veil_core.Boot.boot_veil ~npages ~seed () in
    let dst = Veil_core.Boot.boot_veil ~npages ~seed:(seed + 1) () in
    let proc = Guest_kernel.Kernel.spawn src.Veil_core.Boot.kernel in
    let rt =
      match Enclave_sdk.Runtime.create src ~binary:(Bytes.make 5000 'm') proc with
      | Ok rt -> rt
      | Error e -> failwith e
    in
    Enclave_sdk.Runtime.run rt (fun rt ->
        Enclave_sdk.Runtime.write_data rt ~va:(Enclave_sdk.Runtime.heap_base rt)
          (Bytes.of_string "migrate me"));
    Printf.printf "source enclave measurement: %s\n"
      (Veil_crypto.Sha256.hex_of_digest (Enclave_sdk.Runtime.measurement rt));
    match
      Veil_core.Migration.export src (Enclave_sdk.Runtime.enclave rt)
        ~dest_public:(Veil_core.Monitor.dh_public dst.Veil_core.Boot.mon)
    with
    | Error e -> failwith e
    | Ok sealed -> (
        let wire = Veil_core.Migration.sealed_to_bytes sealed in
        Printf.printf "sealed state: %d bytes (encrypted + authenticated for the destination)\n"
          (Bytes.length wire);
        let owner = Guest_kernel.Kernel.spawn dst.Veil_core.Boot.kernel in
        match
          Veil_core.Migration.import dst ~owner
            ~source_public:(Veil_core.Monitor.dh_public src.Veil_core.Boot.mon)
            (Option.get (Veil_core.Migration.sealed_of_bytes wire))
        with
        | Error e -> failwith e
        | Ok enclave ->
            Printf.printf "imported measurement:       %s\n"
              (Veil_crypto.Sha256.hex_of_digest (Veil_core.Encsvc.measurement enclave));
            print_endline "migration complete: same identity, state intact, source scrubbed.")
  in
  Cmd.v
    (Cmd.info "migrate" ~doc:"Migrate an enclave between two Veil CVMs (sealed transport).")
    Term.(const run $ npages_arg $ seed_arg)

(* --- sql: run statements against the mini engine on a fresh guest --- *)

let sql_cmd =
  let stmts_arg =
    let doc = "SQL statements to execute in order." in
    Arg.(non_empty & pos_all string [] & info [] ~docv:"STATEMENT" ~doc)
  in
  let run stmts npages seed =
    let n = Veil_core.Boot.boot_native ~npages ~seed () in
    let kernel = n.Veil_core.Boot.n_kernel in
    let proc = Guest_kernel.Kernel.spawn kernel in
    let env =
      {
        Workloads.Env.sys = (fun s a -> Guest_kernel.Kernel.invoke kernel proc s a);
        compute = (fun c -> Sevsnp.Vcpu.charge n.Veil_core.Boot.n_vcpu Sevsnp.Cycles.Compute c);
        env_rng = Veil_crypto.Rng.create seed;
        env_rings = false;
      }
    in
    let db = Workloads.Sqldb.open_db env ~dir:"/srv/sql" in
    List.iter
      (fun stmt ->
        match Workloads.Sqldb.exec db stmt with
        | Ok Workloads.Sqldb.Done -> Printf.printf "ok> %s\n" stmt
        | Ok (Workloads.Sqldb.Rows rows) ->
            Printf.printf "ok> %s\n" stmt;
            List.iter (fun row -> Printf.printf "    | %s\n" (String.concat " | " row)) rows;
            Printf.printf "    (%d row%s)\n" (List.length rows)
              (if List.length rows = 1 then "" else "s")
        | Error e -> Printf.printf "error> %s\n    %s\n" stmt e)
      stmts;
    Workloads.Sqldb.close db
  in
  Cmd.v
    (Cmd.info "sql"
       ~doc:"Execute statements on the B-tree-backed mini SQL engine inside a fresh guest.")
    Term.(const run $ stmts_arg $ npages_arg $ seed_arg)

(* --- scope: Veil-Scope cross-VCPU critical-path / wait-state report --- *)

let scope_cmd =
  let vcpus_arg =
    let doc = "VCPU count for the SMP run (1-8)." in
    Arg.(value & opt int 4 & info [ "vcpus" ] ~docv:"N" ~doc)
  in
  let requests_arg =
    let doc = "Operation count (http requests or syscall ops)." in
    Arg.(value & opt int 64 & info [ "n"; "requests" ] ~docv:"N" ~doc)
  in
  let workload_arg =
    let doc = "Workload: http (listener + handlers + clients) or syscall." in
    Arg.(value & opt (enum [ ("http", `Http); ("syscall", `Syscall) ]) `Http
         & info [ "w"; "workload" ] ~docv:"KIND" ~doc)
  in
  let top_arg =
    let doc = "Render the N longest requests' critical paths in full." in
    Arg.(value & opt int 3 & info [ "top" ] ~docv:"N" ~doc)
  in
  let scope_out_arg =
    let doc = "Write the report here (\"-\" = stdout)." in
    Arg.(value & opt string "-" & info [ "o"; "output" ] ~docv:"FILE" ~doc)
  in
  let run kind nvcpus requests top out seed =
    if nvcpus < 1 || nvcpus > 8 then begin
      Printf.eprintf "scope: --vcpus must be in 1..8 (got %d)\n" nvcpus;
      exit 2
    end;
    let module Es = Workloads.Escale in
    let name, spawn_work =
      match kind with
      | `Http -> ("http-server", Es.http_work ~requests)
      | `Syscall -> ("syscall-bench", Es.syscall_work ~ops_total:requests)
    in
    let (r : Es.result), sys = Es.measure ~trace:true ~nvcpus ~seed ~spawn_work () in
    let platform = sys.Veil_core.Boot.platform in
    let tr = platform.Sevsnp.Platform.tracer in
    Obs.Trace.set_enabled tr false;
    Sevsnp.Platform.refresh_obs_gauges platform;
    let reqs = Obs.Critpath.requests (Obs.Trace.events tr) in
    let summary = Obs.Critpath.summarize reqs in
    let buf = Buffer.create 4096 in
    let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
    p "Veil-Scope — cross-VCPU critical paths and wait states\n";
    p "workload: %s, %d VCPUs, %d ops, guest seed %d, interleaver seeded(%d)\n" name nvcpus
      r.Es.es_ops seed Es.inter_seed;
    p "trace: %d events stored (capacity %d)" (Obs.Trace.stored tr) (Obs.Trace.capacity tr);
    if Obs.Trace.dropped tr > 0 then
      p "; WARNING: %d events dropped to ring wraparound — earliest requests are partial"
        (Obs.Trace.dropped tr);
    p "\n\n%s" (Obs.Critpath.render_summary summary);
    (* the N longest requests, in full *)
    let by_extent =
      List.stable_sort
        (fun a b -> compare (Obs.Critpath.extent b) (Obs.Critpath.extent a))
        reqs
    in
    let rec take n = function x :: rest when n > 0 -> x :: take (n - 1) rest | _ -> [] in
    List.iter (fun rq -> p "\n%s" (Obs.Critpath.render rq)) (take top by_extent);
    (* serialized-monitor ledger: the single-server-queue view *)
    let w = r.Es.es_wait in
    p "\nserialized monitor (VeilMon entry ledger, measurement window only):\n";
    p "  %-20s %8s %14s %14s\n" "call type" "entries" "busy cyc" "queued cyc";
    List.iter
      (fun (tag, entries, busy, queued) ->
        p "  %-20s %8d %14d %14d\n" tag entries busy queued)
      w.Veil_core.Monitor.ws_by_type;
    p "  %-20s %8d %14d %14d\n" "total" w.Veil_core.Monitor.ws_entries
      w.Veil_core.Monitor.ws_busy_cycles w.Veil_core.Monitor.ws_queued_cycles;
    let ser = Es.serialized_pct r in
    let ceiling = Es.amdahl_ceiling ~serial_frac:(ser /. 100.0) ~nvcpus in
    p "measured serialized share: %.1f%% of %d busy cycles held the monitor\n" ser r.Es.es_busy;
    p "implied hardware Amdahl ceiling @%d VCPUs: %.2fx\n" nvcpus ceiling;
    if out = "-" then print_string (Buffer.contents buf)
    else begin
      write_file_or_die out (Buffer.contents buf);
      Printf.printf "wrote %s\n" out
    end
  in
  Cmd.v
    (Cmd.info "scope"
       ~doc:
         "Run an SMP workload with tracing armed and print the Veil-Scope report: per-request \
          critical paths (work vs wait per VMPL and wait reason, reconstructed from causal ids) \
          plus the serialized-monitor entry ledger and the hardware scaling ceiling it implies.")
    Term.(const run $ workload_arg $ vcpus_arg $ requests_arg $ top_arg $ scope_out_arg $ seed_arg)

(* --- report: regenerate the paper tables from profiler attribution
   and diff them against EXPERIMENTS.md --- *)

(* Cells like "6,210", "42,384", "7135" → int (digits only). *)
let int_of_cell s =
  let b = Buffer.create 8 in
  String.iter (fun c -> if c >= '0' && c <= '9' then Buffer.add_char b c) s;
  if Buffer.length b = 0 then invalid_arg (Printf.sprintf "no digits in cell %S" s)
  else int_of_string (Buffer.contents b)

(* Cells like "0.72%", "~0.3%", "1.5k", "6.8×" → float (digits + dot). *)
let float_of_cell s =
  let b = Buffer.create 8 in
  String.iter (fun c -> if (c >= '0' && c <= '9') || c = '.' then Buffer.add_char b c) s;
  if Buffer.length b = 0 then invalid_arg (Printf.sprintf "no number in cell %S" s)
  else float_of_string (Buffer.contents b)

let starts_with pre s =
  String.length s >= String.length pre && String.sub s 0 (String.length pre) = pre

(* Lines of the "## <name>..." section, up to the next "## ". *)
let md_section md name =
  let rec skip = function
    | [] -> []
    | l :: rest -> if starts_with ("## " ^ name) l then take rest [] else skip rest
  and take lines acc =
    match lines with
    | [] -> List.rev acc
    | l :: rest -> if starts_with "## " l then List.rev acc else take rest (l :: acc)
  in
  skip (String.split_on_char '\n' md)

let row_cells line =
  String.split_on_char '|' line |> List.map String.trim |> List.filter (fun c -> c <> "")

(* Table rows are keyed by the first word of their first cell,
   lowercased with '-' stripped ("read (10 KB)" -> "read",
   "7-Zip" -> "7zip"). *)
let row_key cell =
  let first = match String.split_on_char ' ' cell with w :: _ -> w | [] -> "" in
  String.lowercase_ascii (String.concat "" (String.split_on_char '-' first))

let find_row section key =
  List.find_map
    (fun l ->
      match row_cells l with
      | first :: _ when starts_with "|" (String.trim l) && row_key first = key ->
          Some (row_cells l)
      | _ -> None)
    section

let report_cmd =
  let check_arg =
    let doc = "Exit non-zero if any regenerated value drifts from EXPERIMENTS.md." in
    Arg.(value & flag & info [ "check" ] ~doc)
  in
  let experiments_arg =
    let doc = "Path to the EXPERIMENTS.md to diff against." in
    Arg.(value & opt string "EXPERIMENTS.md" & info [ "experiments" ] ~docv:"FILE" ~doc)
  in
  let run check exp_path =
    let md =
      match open_in exp_path with
      | ic ->
          let n = in_channel_length ic in
          let s = really_input_string ic n in
          close_in ic;
          s
      | exception Sys_error msg ->
          Printf.eprintf "cannot read %s: %s\n" exp_path msg;
          exit 1
    in
    let drifts = ref 0 in
    let verdict ok =
      if ok then "ok"
      else begin
        incr drifts;
        "DRIFT"
      end
    in
    let check_int label measured expected =
      Printf.printf "  %-28s measured %10d   expected %10d   %s\n" label measured expected
        (verdict (measured = expected))
    in
    let check_float label measured expected ~tol =
      Printf.printf "  %-28s measured %10.2f   expected %10.2f   %s\n" label measured expected
        (verdict (Float.abs (measured -. expected) <= tol))
    in
    let cell cells i label =
      match List.nth_opt cells i with
      | Some c -> c
      | None -> failwith (Printf.sprintf "EXPERIMENTS.md: missing cell %d in %s row" i label)
    in
    let need section key =
      match find_row section key with
      | Some cells -> cells
      | None -> failwith (Printf.sprintf "EXPERIMENTS.md: no table row for %S" key)
    in

    (* E2 — domain-switch legs, regenerated from Veil-Prof attribution.
       Expected values come from the calibration-anchors row
       "7135 = 550+2450+200+935+550+2450" (same leg order). *)
    print_endline "E2  domain-switch breakdown (profiler attribution vs anchors)";
    let anchors = md_section md "Cycle-model" in
    let anchor_cells = need anchors "domain" in
    let total_exp, legs_exp =
      match String.split_on_char '=' (cell anchor_cells 1 "domain switch") with
      | [ tot; sum ] ->
          (int_of_cell tot, List.map int_of_cell (String.split_on_char '+' sum))
      | _ -> failwith "EXPERIMENTS.md: anchors row is not \"total = a+b+...\""
    in
    let sys = Veil_core.Boot.boot_veil ~npages:2048 ~seed:3 () in
    let platform = sys.Veil_core.Boot.platform in
    let prof = platform.Sevsnp.Platform.profiler in
    Obs.Profiler.reset prof;
    Obs.Profiler.set_enabled prof true;
    let vcpu = sys.Veil_core.Boot.vcpu in
    let switches = 2000 in
    for _ = 1 to switches / 2 do
      Veil_core.Monitor.domain_switch sys.Veil_core.Boot.mon vcpu ~target:Veil_core.Privdom.Mon;
      Veil_core.Monitor.domain_switch sys.Veil_core.Boot.mon vcpu ~target:Veil_core.Privdom.Unt
    done;
    Obs.Profiler.set_enabled prof false;
    let legs =
      [ "vmgexit"; "vmsa_save"; "ghcb_protocol"; "hv_relay"; "vmenter"; "vmsa_restore" ]
    in
    if List.length legs_exp <> List.length legs then
      failwith "EXPERIMENTS.md: anchors row leg count changed";
    let measured_total = ref 0 in
    List.iter2
      (fun leg exp ->
        let m = Obs.Profiler.bucket_self prof leg / switches in
        measured_total := !measured_total + m;
        check_int (Printf.sprintf "switch leg %s" leg) m exp)
      legs legs_exp;
    check_int "switch total" !measured_total total_exp;

    (* E4 — per-syscall redirection table, re-run from the shared
       Syscall_bench definitions (same driver parameters as bench e4). *)
    print_endline "E4  enclave syscall redirection (Table 3)";
    let e4 = md_section md "E4" in
    let iterations = 400 in
    List.iter
      (fun sb ->
        let name = sb.Workloads.Syscall_bench.sb_name in
        let cells = need e4 name in
        let w = Workloads.Syscall_bench.workload_of ~iterations sb in
        let native = Workloads.Driver.run ~npages:4096 Workloads.Driver.Native w in
        let enc = Workloads.Driver.run ~npages:4096 Workloads.Driver.Enclave w in
        let per_native = native.Workloads.Driver.cycles / iterations in
        let per_enc = enc.Workloads.Driver.cycles / iterations in
        check_int (name ^ " native cyc") per_native (int_of_cell (cell cells 1 name));
        check_int (name ^ " enclave cyc") per_enc (int_of_cell (cell cells 2 name));
        check_float (name ^ " slowdown") ~tol:0.05
          (float_of_int per_enc /. float_of_int per_native)
          (float_of_cell (cell cells 3 name)))
      Workloads.Syscall_bench.all;

    (* E6 — audit overhead table (same runs as bench e6 at scale 1). *)
    print_endline "E6  protected system auditing (Table 5)";
    let e6 = md_section md "E6" in
    List.iter
      (fun w ->
        let name = w.Workloads.Workload.name in
        let cells = need e6 name in
        let base = Workloads.Driver.run ~scale:1 Workloads.Driver.Veil_background w in
        let ka = Workloads.Driver.run ~scale:1 Workloads.Driver.Kaudit w in
        let vl = Workloads.Driver.run ~scale:1 Workloads.Driver.Veils_log w in
        check_float (name ^ " kaudit %") ~tol:0.005
          (Workloads.Driver.overhead_pct ~baseline:base ka)
          (float_of_cell (cell cells 1 name));
        check_float (name ^ " veils-log %") ~tol:0.005
          (Workloads.Driver.overhead_pct ~baseline:base vl)
          (float_of_cell (cell cells 3 name));
        check_float (name ^ " logs/s (k)") ~tol:0.05
          (Workloads.Driver.rate_per_second vl vl.Workloads.Driver.audit_records /. 1000.0)
          (float_of_cell (cell cells 5 name)))
      (Workloads.Registry.audit_programs ());

    (* E-scale — serialized-monitor share, re-measured by the Veil-Scope
       entry ledger and diffed against the table's serialized% column;
       the ceiling the measurement implies must also reproduce the
       hw-amdahl column (within 10%), i.e. ground truth agrees with
       what the 1-VCPU bucket share inferred. *)
    print_endline "E-scale  serialized-monitor share (Veil-Scope entry ledger)";
    let escale_sec = md_section md "E-scale" in
    let split_at_http lines =
      let rec go acc = function
        | [] -> (List.rev acc, [])
        | l :: rest when starts_with "http-server" l -> (List.rev acc, rest)
        | l :: rest -> go (l :: acc) rest
      in
      go [] lines
    in
    let sys_rows, http_rows = split_at_http escale_sec in
    let module Es = Workloads.Escale in
    let counts =
      (* the full 1/2/4/8 sweep doubles report runtime; 1 and 4 pin the
         no-contention base and the contended point (override with
         VEIL_ESCALE_VCPUS for the full sweep) *)
      match Sys.getenv_opt "VEIL_ESCALE_VCPUS" with
      | Some _ -> Es.vcpu_counts ()
      | None -> [ 1; 4 ]
    in
    List.iter
      (fun (bench, rows, spawn_work) ->
        List.iter
          (fun nv ->
            let cells = need rows (string_of_int nv) in
            let (r : Es.result), _ = Es.measure ~nvcpus:nv ~seed:97 ~spawn_work () in
            let ser = Es.serialized_pct r in
            check_float
              (Printf.sprintf "%s @%d serialized%%" bench nv)
              ser
              (float_of_cell (cell cells 4 (bench ^ " serialized%")))
              ~tol:0.05;
            let hw = float_of_cell (cell cells 3 (bench ^ " hw-amdahl")) in
            check_float
              (Printf.sprintf "%s @%d measured ceiling" bench nv)
              (Es.amdahl_ceiling ~serial_frac:(ser /. 100.0) ~nvcpus:nv)
              hw
              ~tol:((0.1 *. hw) +. 0.005))
          counts)
      [ ("syscall-bench", sys_rows, fun s m -> Es.syscall_work ~ops_total:4096 s m);
        ("http-server", http_rows, fun s m -> Es.http_work ~requests:256 s m) ];

    (* E-scale-rings — the same sweep under Veil-Ring batched
       submission (bench escale --rings).  The serialized% column must
       reproduce AND stay below the unringed E-scale share at every
       row: batching is the whole point, so a ringed share at or above
       the unringed one is flagged as drift. *)
    print_endline "E-scale-rings  serialized share under batched submission (Veil-Ring)";
    let rings_sec = md_section md "E-scale-rings" in
    if rings_sec = [] then failwith "EXPERIMENTS.md: no \"## E-scale-rings\" section";
    let ringed_sys_rows, ringed_http_rows = split_at_http rings_sec in
    List.iter
      (fun (bench, rows, plain_rows, spawn_work) ->
        List.iter
          (fun nv ->
            let cells = need rows (string_of_int nv) in
            let (r : Es.result), _ =
              Es.measure ~rings:true ~nvcpus:nv ~seed:97 ~spawn_work ()
            in
            let ser = Es.serialized_pct r in
            check_float
              (Printf.sprintf "%s @%d ringed ser%%" bench nv)
              ser
              (float_of_cell (cell cells 4 (bench ^ " ringed serialized%")))
              ~tol:0.05;
            let plain_ser =
              float_of_cell (cell (need plain_rows (string_of_int nv)) 4 (bench ^ " serialized%"))
            in
            Printf.printf "  %-28s measured %10.2f   unringed %10.2f   %s\n"
              (Printf.sprintf "%s @%d ringed<plain" bench nv)
              ser plain_ser
              (verdict (ser < plain_ser)))
          counts)
      [ ("syscall-bench", ringed_sys_rows, sys_rows, fun s m -> Es.syscall_work ~ops_total:4096 s m);
        ("http-server", ringed_http_rows, http_rows, fun s m -> Es.http_work ~requests:256 s m) ];

    if !drifts = 0 then Printf.printf "all regenerated values match %s\n" exp_path
    else Printf.printf "%d value(s) drifted from %s\n" !drifts exp_path;
    if check && !drifts > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Regenerate the paper's E2/E4/E6 tables (domain-switch legs from Veil-Prof \
          attribution, syscall-redirection and audit-overhead runs) and diff them against \
          EXPERIMENTS.md; --check fails on any drift.")
    Term.(const run $ check_arg $ experiments_arg)

(* --- chaos (ISSUE 4): deterministic hypervisor fault injection --- *)

let chaos_cmd =
  let trials_arg =
    let doc = "Rounds of (all workloads + attack sweep) per run." in
    Arg.(value & opt int 3 & info [ "k"; "trials" ] ~docv:"K" ~doc)
  in
  let sites_arg =
    let doc =
      "Comma-separated injection sites to arm (default: all 14).  Site names: relay_drop, \
       relay_dup, relay_reorder, relay_refuse, vmgexit_delay, vmgexit_refuse, spurious_exit, \
       rmpadjust_fail, pvalidate_fail, spurious_npf, ghcb_corrupt, shared_bitflip, \
       ring_slot_corrupt, pulse_export_tamper."
    in
    Arg.(value & opt (some string) None & info [ "sites" ] ~docv:"SITES" ~doc)
  in
  let workloads_arg =
    let doc = "Comma-separated workloads to run (boot,syscall,enclave,slog; default: all)." in
    Arg.(value & opt (some string) None & info [ "w"; "workloads" ] ~docv:"WORKLOADS" ~doc)
  in
  let json_arg =
    let doc = "Print the machine-readable report (effective seed, per-site hit counts)." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let vcpus_arg =
    let doc =
      "Run the syscall workload on N VCPUs (1-8) under the deterministic SMP interleaver, so AP \
       bring-up crosses the fault-injected monitor protocols too.  1 (the default) keeps the \
       pre-SMP schedule byte-for-byte."
    in
    Arg.(value & opt int 1 & info [ "vcpus" ] ~docv:"N" ~doc)
  in
  let parse_csv ~what ~of_name s =
    List.map
      (fun n ->
        match of_name (String.trim n) with
        | Some v -> v
        | None ->
            Printf.eprintf "unknown %s: %s\n" what n;
            exit 2)
      (String.split_on_char ',' s)
  in
  let run seed trials sites workloads json vcpus =
    if vcpus < 1 || vcpus > 8 then begin
      Printf.eprintf "chaos: --vcpus must be in 1..8 (got %d)\n" vcpus;
      exit 2
    end;
    let sites =
      Option.map
        (parse_csv ~what:"injection site" ~of_name:Chaos.Fault_plan.site_of_name)
        sites
    in
    let workloads =
      match workloads with
      | None -> Chaos_driver.all_workloads
      | Some s -> parse_csv ~what:"workload" ~of_name:Chaos_driver.workload_of_name s
    in
    let r = Chaos_driver.run ?sites ~trials ~workloads ~vcpus ~seed () in
    if json then print_endline (Chaos_driver.report_json r)
    else begin
      Printf.printf "veil-chaos: seed %d, %d trial(s) x %d workload(s) + %d attacks\n" seed
        trials (List.length workloads) r.Chaos_driver.rp_attacks_run;
      List.iter
        (fun t ->
          Printf.printf "  %-8s seed=%-10d steps=%-6d hits=%-4d %s\n"
            (Chaos_driver.workload_name t.Chaos_driver.tr_workload)
            t.Chaos_driver.tr_seed t.Chaos_driver.tr_steps
            (Chaos.Fault_plan.total_hits t.Chaos_driver.tr_plan)
            (Chaos_driver.outcome_to_string t.Chaos_driver.tr_outcome))
        r.Chaos_driver.rp_trials;
      Printf.printf "  site hits:";
      List.iter (fun (n, h) -> if h > 0 then Printf.printf " %s=%d" n h) r.Chaos_driver.rp_site_hits;
      print_newline ();
      List.iter
        (fun (n, o) -> Printf.printf "  BREACHED under chaos: %s (%s)\n" n o)
        r.Chaos_driver.rp_breached;
      Printf.printf "  replay identity: %s\n" (if r.Chaos_driver.rp_replay_ok then "OK" else "FAILED");
      Printf.printf "%s\n" (if r.Chaos_driver.rp_ok then "chaos: all invariants held" else "chaos: INVARIANT VIOLATION")
    end;
    if not r.Chaos_driver.rp_ok then begin
      Printf.eprintf
        "chaos: invariant violation — replay with: veilctl chaos --seed %d --trials %d --vcpus %d\n"
        seed trials vcpus;
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Run boot/syscall/enclave/slog workloads and the full attack suite under \
          seed-deterministic hypervisor fault injection, asserting no breach, no silent \
          corruption and no hang.  A failing plan is reproduced exactly from the printed seed.")
    Term.(const run $ seed_arg $ trials_arg $ sites_arg $ workloads_arg $ json_arg $ vcpus_arg)

(* --- pulse (ISSUE 8): continuous telemetry timeline + attested export --- *)

let pulse_cmd =
  let vcpus_arg =
    let doc = "VCPU count for the SMP run (1-8)." in
    Arg.(value & opt int 4 & info [ "vcpus" ] ~docv:"N" ~doc)
  in
  let requests_arg =
    let doc = "Operation count (http requests or syscall ops)." in
    Arg.(value & opt int 256 & info [ "n"; "requests" ] ~docv:"N" ~doc)
  in
  let workload_arg =
    let doc = "Workload: http (listener + handlers + clients) or syscall." in
    Arg.(value & opt (enum [ ("http", `Http); ("syscall", `Syscall) ]) `Http
         & info [ "w"; "workload" ] ~docv:"KIND" ~doc)
  in
  let intervals_arg =
    let doc =
      "Target interval count: a calibration run learns the workload's wall clock, then the \
       sampling epoch is set to wall/N so the timeline lands near N intervals."
    in
    Arg.(value & opt int 24 & info [ "intervals" ] ~docv:"N" ~doc)
  in
  let json_arg =
    let doc = "Print the machine-readable per-interval timeseries instead of the timeline." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let pulse_out_arg =
    let doc = "Write the report here (\"-\" = stdout)." in
    Arg.(value & opt string "-" & info [ "o"; "output" ] ~docv:"FILE" ~doc)
  in
  let chrome_arg =
    let doc =
      "Also record a trace and write Chrome trace-event JSON with Veil-Pulse counter tracks \
       (syscall rate, windowed p99, vmgexit rate) to this file."
    in
    Arg.(value & opt (some string) None & info [ "chrome" ] ~docv:"FILE" ~doc)
  in
  let run kind nvcpus requests target json out chrome seed =
    if nvcpus < 1 || nvcpus > 8 then begin
      Printf.eprintf "pulse: --vcpus must be in 1..8 (got %d)\n" nvcpus;
      exit 2
    end;
    if target < 2 then begin
      Printf.eprintf "pulse: --intervals must be >= 2 (got %d)\n" target;
      exit 2
    end;
    let module Es = Workloads.Escale in
    let name, spawn_work =
      match kind with
      | `Http -> ("http-server", Es.http_work ~requests)
      | `Syscall -> ("syscall-bench", Es.syscall_work ~ops_total:requests)
    in
    (* Calibration run, pulse off: learn the wall clock so the epoch
       yields about [target] intervals whatever the workload size. *)
    let (r0 : Es.result), _ = Es.measure ~nvcpus ~seed ~spawn_work () in
    let interval = max 1_000 (r0.Es.es_wall / target) in
    let trace = chrome <> None in
    let (r : Es.result), sys = Es.measure ~trace ~pulse:interval ~nvcpus ~seed ~spawn_work () in
    let platform = sys.Veil_core.Boot.platform in
    let pu = platform.Sevsnp.Platform.pulse in
    if trace then Obs.Trace.set_enabled platform.Sevsnp.Platform.tracer false;
    (* Attested export: what a hypervisor would ship to a verifier,
       checked against the trusted in-ring digests and chain. *)
    let exported = Sevsnp.Platform.export_pulse platform in
    let verify = Obs.Pulse.verify_export pu exported in
    let anchors = List.length (Veil_core.Boot.pulse_anchor_lines sys) in
    if json then begin
      let doc =
        Printf.sprintf
          "{\"workload\":\"%s\",\"vcpus\":%d,\"ops\":%d,\"seed\":%d,\"verify\":%s,\
           \"anchors\":%d,\"pulse\":%s}\n"
          name nvcpus r.Es.es_ops seed
          (match verify with
          | Ok n -> Printf.sprintf "{\"ok\":true,\"intervals\":%d}" n
          | Error (i, reason) ->
              Printf.sprintf "{\"ok\":false,\"interval\":%d,\"reason\":\"%s\"}" i
                (Obs.Metrics.json_escape reason))
          anchors (Es.pulse_json sys)
      in
      if out = "-" then print_string doc
      else begin
        write_file_or_die out doc;
        Printf.printf "wrote %s\n" out
      end
    end
    else begin
      let buf = Buffer.create 4096 in
      let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
      p "Veil-Pulse — continuous telemetry with attested export\n";
      p "workload: %s, %d VCPUs, %d ops, guest seed %d, interleaver seeded(%d)\n" name nvcpus
        r.Es.es_ops seed Es.inter_seed;
      p "epoch: %d cycles (calibrated for ~%d intervals over a %d-Mcyc wall)\n" interval target
        (r0.Es.es_wall / 1_000_000);
      p "captured %d intervals (%d retained, %d overwritten), %d anchors in VeilS-LOG\n"
        (Obs.Pulse.captured pu) (Obs.Pulse.retained pu) (Obs.Pulse.overwritten pu) anchors;
      (match verify with
      | Ok n -> p "attested export: OK — %d interval digests and the chain head verified\n" n
      | Error (i, reason) -> p "attested export: TAMPERED — interval %d: %s\n" i reason);
      p "\n  %-4s %9s %9s %8s %8s %8s  %s\n" "iv" "t1 Mcyc" "syscalls" "p50" "p99" "p999"
        "syscalls/interval";
      let first = Obs.Pulse.first_retained pu in
      let last = Obs.Pulse.captured pu - 1 in
      let series =
        List.init (last - first + 1) (fun k ->
            let i = first + k in
            let t1 = match Obs.Pulse.bounds pu i with Some (_, t1) -> t1 | None -> 0 in
            match Obs.Pulse.hist_window pu ~metric:"kernel.syscall_cycles" ~window:1 ~upto:i with
            | Some (b, n, _) ->
                ( i, t1, n,
                  Obs.Pulse.wpercentile ~buckets:b 50.0,
                  Obs.Pulse.wpercentile ~buckets:b 99.0,
                  Obs.Pulse.wpercentile ~buckets:b 99.9 )
            | None -> (i, t1, 0, 0, 0, 0))
      in
      let peak = List.fold_left (fun m (_, _, n, _, _, _) -> max m n) 1 series in
      List.iter
        (fun (i, t1, n, p50, p99, p999) ->
          p "  %-4d %9.2f %9d %8d %8d %8d %s|%s\n" i
            (float_of_int t1 /. 1e6)
            n p50 p99 p999
            (if p99 > Es.slo_good_below then "!" else " ")
            (String.make (n * 28 / peak) '#'))
        series;
      p "\nSLO burn (trailing %d-interval windows, budget = (1-slo) x total):\n" Es.slo_window;
      List.iter
        (fun (br : Obs.Pulse.burn_report) ->
          p "  %s: %.0f%% of %s <= %d cyc — window total %d, bad %d, budget %.1f, burn %.2fx%s, \
             %d crossing(s)\n"
            br.Obs.Pulse.br_name
            (100.0 *. br.Obs.Pulse.br_slo)
            br.Obs.Pulse.br_metric br.Obs.Pulse.br_good_below br.Obs.Pulse.br_total
            br.Obs.Pulse.br_bad br.Obs.Pulse.br_budget br.Obs.Pulse.br_burn
            (if br.Obs.Pulse.br_crossed then " OVER BUDGET" else "")
            br.Obs.Pulse.br_crossings)
        (Obs.Pulse.burn_reports pu);
      if out = "-" then print_string (Buffer.contents buf)
      else begin
        write_file_or_die out (Buffer.contents buf);
        Printf.printf "wrote %s\n" out
      end
    end;
    Option.iter
      (fun path ->
        write_file_or_die path
          (Obs.Chrome_trace.to_json ~pulse:pu platform.Sevsnp.Platform.tracer);
        Printf.printf "wrote %s (span tracks + pulse counter tracks)\n" path)
      chrome;
    match verify with Ok _ -> () | Error _ -> exit 1
  in
  Cmd.v
    (Cmd.info "pulse"
       ~doc:
         "Run an SMP workload with the Veil-Pulse sampler armed and print the per-interval \
          telemetry timeline (windowed p50/p99/p999, syscall rate) plus the SLO error-budget \
          burn report, verifying the attested export chain; --json emits the timeseries, \
          --chrome adds Perfetto counter tracks.")
    Term.(const run $ workload_arg $ vcpus_arg $ requests_arg $ intervals_arg $ json_arg
          $ pulse_out_arg $ chrome_arg $ seed_arg)

(* --- bench: trajectory regression gate against a recorded baseline --- *)

(* Targeted extraction from the bench JSON document (no JSON library
   in the dependency set): bracket-depth scan for the "veil_escale"
   array, then per-entry field grabs. *)
let json_escale_entries doc =
  let key = "\"veil_escale\"" in
  let skip_ws i =
    let j = ref i in
    while !j < String.length doc && (doc.[!j] = ' ' || doc.[!j] = '\n' || doc.[!j] = '\t') do
      incr j
    done;
    !j
  in
  let rec find i =
    if i + String.length key > String.length doc then None
    else if String.sub doc i (String.length key) = key then begin
      let j = skip_ws (i + String.length key) in
      if j < String.length doc && doc.[j] = ':' then
        let k = skip_ws (j + 1) in
        if k < String.length doc && doc.[k] = '[' then Some (k + 1) else find (i + 1)
      else find (i + 1)
    end
    else find (i + 1)
  in
  match find 0 with
  | None -> []
  | Some start ->
      let entries = ref [] and depth = ref 0 and entry_start = ref (-1) in
      let in_str = ref false and esc = ref false in
      let i = ref start and stop = ref false in
      while (not !stop) && !i < String.length doc do
        let c = doc.[!i] in
        if !esc then esc := false
        else if !in_str then begin
          if c = '\\' then esc := true else if c = '"' then in_str := false
        end
        else begin
          match c with
          | '"' -> in_str := true
          | '{' ->
              if !depth = 0 then entry_start := !i;
              incr depth
          | '}' ->
              decr depth;
              if !depth = 0 then
                entries := String.sub doc !entry_start (!i - !entry_start + 1) :: !entries
          | ']' when !depth = 0 -> stop := true
          | _ -> ()
        end;
        incr i
      done;
      List.rev !entries

let json_field entry key =
  let pat = "\"" ^ key ^ "\"" in
  let skip_ws i =
    let j = ref i in
    while !j < String.length entry && (entry.[!j] = ' ' || entry.[!j] = '\n' || entry.[!j] = '\t') do
      incr j
    done;
    !j
  in
  let rec find i =
    if i + String.length pat > String.length entry then None
    else if String.sub entry i (String.length pat) = pat then begin
      let j = skip_ws (i + String.length pat) in
      if j < String.length entry && entry.[j] = ':' then Some (skip_ws (j + 1)) else find (i + 1)
    end
    else find (i + 1)
  in
  Option.map
    (fun start ->
      let stop = ref start in
      let depth = ref 0 and in_str = ref false and esc = ref false and fin = ref false in
      while (not !fin) && !stop < String.length entry do
        let c = entry.[!stop] in
        if !esc then esc := false
        else if !in_str then begin
          if c = '\\' then esc := true else if c = '"' then in_str := false
        end
        else begin
          match c with
          | '"' -> in_str := true
          | '{' | '[' -> incr depth
          | '}' | ']' -> if !depth = 0 then fin := true else decr depth
          | ',' when !depth = 0 -> fin := true
          | _ -> ()
        end;
        if not !fin then incr stop
      done;
      String.trim (String.sub entry start (!stop - start)))
    (find 0)

let bench_cmd =
  let baseline_arg =
    let doc = "Baseline bench JSON (a committed BENCH_prN.json) to gate against." in
    Arg.(required & opt (some string) None & info [ "baseline" ] ~docv:"FILE" ~doc)
  in
  let tol_arg =
    let doc = "Allowed relative regression before the gate fails (0.05 = 5%)." in
    Arg.(value & opt float 0.05 & info [ "tolerance" ] ~docv:"FRAC" ~doc)
  in
  let vcpus_filter_arg =
    let doc = "Only gate these VCPU counts (comma-separated; default: all in the baseline)." in
    Arg.(value & opt (some string) None & info [ "vcpus" ] ~docv:"LIST" ~doc)
  in
  let run baseline tol vcpus_filter seed =
    let doc =
      match open_in baseline with
      | ic ->
          let n = in_channel_length ic in
          let s = really_input_string ic n in
          close_in ic;
          s
      | exception Sys_error msg ->
          Printf.eprintf "cannot read %s: %s\n" baseline msg;
          exit 1
    in
    let wanted =
      Option.map
        (fun s -> List.filter_map int_of_string_opt (String.split_on_char ',' s))
        vcpus_filter
    in
    let entries = json_escale_entries doc in
    if entries = [] then begin
      Printf.eprintf "bench: no \"veil_escale\" entries in %s\n" baseline;
      exit 1
    end;
    let module Es = Workloads.Escale in
    Printf.printf "veilctl bench — trajectory gate against %s (tolerance %.0f%%)\n" baseline
      (100.0 *. tol);
    Printf.printf "  %-14s %3s %5s %12s %12s %8s %8s  %s\n" "bench" "nv" "rings" "base ops/s"
      "now ops/s" "base ser" "now ser" "verdict";
    let regressions = ref 0 in
    List.iter
      (fun entry ->
        let need key =
          match json_field entry key with
          | Some v -> v
          | None ->
              Printf.eprintf "bench: entry in %s lacks %S: %s\n" baseline key entry;
              exit 1
        in
        let bench = Scanf.sscanf (need "bench") "%S" (fun s -> s) in
        let nv = int_of_string (need "vcpus") in
        let ops = int_of_string (need "ops") in
        let base_tp = float_of_string (need "ops_per_s") in
        let base_ser = float_of_string (need "serialized_pct") in
        let rings = need "rings" = "true" in
        if (match wanted with Some l -> List.mem nv l | None -> true) then begin
          let spawn_work =
            match bench with
            | "syscall-bench" -> Es.syscall_work ~ops_total:ops
            | "http-server" -> Es.http_work ~requests:ops
            | other ->
                Printf.eprintf "bench: unknown baseline bench %S\n" other;
                exit 1
          in
          let (r : Es.result), _ = Es.measure ~rings ~nvcpus:nv ~seed ~spawn_work () in
          let tp = Es.throughput r in
          let ser = Es.serialized_pct r in
          (* Throughput gates one-sided (faster is fine); the
             serialized share gates with an absolute 0.5pp slack on
             top, since 1%-scale shares jitter in the last digit. *)
          let tp_ok = tp >= base_tp *. (1.0 -. tol) in
          let ser_ok = ser <= (base_ser *. (1.0 +. tol)) +. 0.5 in
          if not (tp_ok && ser_ok) then incr regressions;
          Printf.printf "  %-14s %3d %5s %12.1f %12.1f %7.1f%% %7.1f%%  %s\n" bench nv
            (if rings then "on" else "off")
            base_tp tp base_ser ser
            (if tp_ok && ser_ok then "ok"
             else if tp_ok then "REGRESSION (serialized share)"
             else "REGRESSION (throughput)")
        end)
      entries;
    if !regressions > 0 then begin
      Printf.printf "%d baseline row(s) regressed beyond %.0f%%\n" !regressions (100.0 *. tol);
      exit 1
    end
    else print_endline "trajectory gate: no regression against baseline"
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:
         "Re-run the E-scale benches recorded in a committed BENCH_prN.json baseline and fail \
          (exit 1) if throughput drops or the serialized-monitor share grows beyond the \
          tolerance — the cross-PR trajectory regression gate.")
    Term.(const run $ baseline_arg $ tol_arg $ vcpus_filter_arg $ seed_arg)

(* --- explore (ISSUE 9): exhaustive interleaving search --- *)

let explore_cmd =
  let module E = Explore in
  let scenario_arg =
    let doc =
      "Comma-separated scenarios to explore (default: the four standard ones).  Names: \
       ap-race, rmp-shootdown, oscall-replay, ring-race; the test-only weakened-replay \
       scenario must be named explicitly."
    in
    Arg.(value & opt (some string) None & info [ "scenario" ] ~docv:"NAMES" ~doc)
  in
  let budget_arg =
    let doc = "Max branch executions per scenario; alternatives beyond it are reported as the open frontier." in
    Arg.(value & opt int E.default_config.E.cf_budget & info [ "budget" ] ~docv:"N" ~doc)
  in
  let max_steps_arg =
    let doc = "Interleaver steps per branch before the schedule watchdog trips." in
    Arg.(value & opt int E.default_config.E.cf_max_steps & info [ "max-steps" ] ~docv:"N" ~doc)
  in
  let json_arg =
    let doc = "Print the machine-readable report (branch counts, pruning ratio, frontier coverage)." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let replay_arg =
    let doc =
      "Replay the veil-explore artifact line(s) in $(docv) byte-for-byte instead of exploring; \
       fails unless every journal reproduces its recorded outcome class."
    in
    Arg.(value & opt (some file) None & info [ "replay" ] ~docv:"JOURNAL" ~doc)
  in
  let out_arg =
    let doc = "Write one veil-explore artifact line per minimized counterexample to $(docv)." in
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)
  in
  let expect_arg =
    let doc =
      "Invert the exit status: succeed only if a violation IS found (used by tests/CI to \
       demonstrate detect -> minimize -> replay on the weakened scenario)."
    in
    Arg.(value & flag & info [ "expect-violation" ] ~doc)
  in
  let run seed scenarios budget max_steps json replay out expect =
    let config =
      { E.default_config with E.cf_budget = budget; cf_max_steps = max_steps; cf_seed = seed }
    in
    match replay with
    | Some path ->
        let ic = open_in path in
        let failures = ref 0 and lines = ref 0 in
        (try
           while true do
             let line = input_line ic in
             if String.trim line <> "" then begin
               incr lines;
               match E.parse_artifact line with
               | Error e ->
                   incr failures;
                   Printf.printf "replay: BAD ARTIFACT: %s (%s)\n" (String.trim line) e
               | Ok af -> (
                   match E.replay ~config af with
                   | Ok msg -> Printf.printf "replay: %s\n" msg
                   | Error e ->
                       incr failures;
                       Printf.printf "replay: FAILED: %s\n" e)
             end
           done
         with End_of_file -> close_in ic);
        if !lines = 0 then begin
          Printf.eprintf "explore: no artifact lines in %s\n" path;
          exit 2
        end;
        if !failures > 0 then exit 1
    | None ->
        let scenarios =
          match scenarios with
          | None -> E.all_scenarios
          | Some s ->
              List.map
                (fun n ->
                  let n = String.trim n in
                  match E.find_scenario n with
                  | Some sc -> sc
                  | None ->
                      Printf.eprintf "unknown scenario: %s\n" n;
                      exit 2)
                (String.split_on_char ',' s)
        in
        let reports = List.map (fun sc -> E.explore ~config sc) scenarios in
        let violations =
          List.filter_map (fun r -> Option.map (fun cx -> (r, cx)) r.E.rr_violation) reports
        in
        if json then print_endline (E.report_json reports)
        else begin
          Printf.printf "veil-explore: %d scenario(s), budget %d branches, %d interleaver steps\n"
            (List.length reports) budget max_steps;
          List.iter
            (fun r ->
              Printf.printf
                "  %-16s vcpus=%d branches=%-4d points=%-4d pruned=%-4d deferred=%-4d \
                 depth=%-3d prune=%.0f%% coverage=%.0f%% %s\n"
                r.E.rr_scenario r.E.rr_nvcpus r.E.rr_runs r.E.rr_branch_points r.E.rr_pruned
                r.E.rr_deferred r.E.rr_max_depth
                (100.0 *. E.pruning_ratio r)
                (100.0 *. E.frontier_coverage r)
                (if E.exhausted r then "exhausted" else "budget-bounded");
              match r.E.rr_violation with
              | None -> ()
              | Some cx ->
                  Printf.printf
                    "    VIOLATION %s after %d branch(es): journal %S (%d -> %d steps, %d \
                     shrink runs)\n"
                    cx.E.cx_detail cx.E.cx_found_after cx.E.cx_journal cx.E.cx_orig_len
                    (String.length cx.E.cx_journal)
                    cx.E.cx_shrink_runs)
            reports
        end;
        (match out with
        | Some path when violations <> [] ->
            let oc = open_out path in
            List.iter
              (fun (_, cx) -> output_string oc (E.artifact_of_counterexample cx ^ "\n"))
              violations;
            close_out oc;
            Printf.eprintf "explore: wrote %d artifact line(s) to %s\n" (List.length violations)
              path
        | _ -> ());
        if expect then begin
          if violations = [] then begin
            Printf.eprintf "explore: expected a violation, found none\n";
            exit 1
          end
        end
        else if violations <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:
         "Enumerate the schedule tree of bounded SMP scenarios over the monitor protocols \
          (DFS with sleep-set pruning and a branch budget), re-checking the chaos invariants \
          plus slog-chain/IDCB/Dom_MON/ring-cache invariants on every branch; violations are \
          shrunk to a minimal schedule journal replayable byte-for-byte with --replay.")
    Term.(const run $ seed_arg $ scenario_arg $ budget_arg $ max_steps_arg $ json_arg
          $ replay_arg $ out_arg $ expect_arg)

(* --- fleet --- *)

let fleet_cmd =
  let guests_arg =
    let doc = "Number of guest platform instances." in
    Arg.(value & opt int 4 & info [ "g"; "guests" ] ~docv:"N" ~doc)
  in
  let vcpus_arg =
    let doc = "Service lanes (VCPUs) per guest (1-8)." in
    Arg.(value & opt int 4 & info [ "vcpus" ] ~docv:"N" ~doc)
  in
  let requests_arg =
    let doc = "Total arrivals across the fleet." in
    Arg.(value & opt int 400 & info [ "n"; "requests" ] ~docv:"N" ~doc)
  in
  let workload_arg =
    let doc = "Workload served by every guest: http, memcached or sqldb." in
    Arg.(value
         & opt (enum [ ("http", Fleet.Http); ("memcached", Fleet.Memcached); ("sqldb", Fleet.Sqldb) ])
             Fleet.Http
         & info [ "w"; "workload" ] ~docv:"KIND" ~doc)
  in
  let arrivals_arg =
    let doc = "Arrival process: poisson or mmpp (2-state bursty)." in
    Arg.(value & opt (enum [ ("poisson", `Poisson); ("mmpp", `Mmpp) ]) `Poisson
         & info [ "arrivals" ] ~docv:"PROC" ~doc)
  in
  let rate_arg =
    let doc = "Offered load in requests/second (0 = calibrate to --util of fleet capacity)." in
    Arg.(value & opt float 0.0 & info [ "rate" ] ~docv:"RPS" ~doc)
  in
  let util_arg =
    let doc = "Target utilization when --rate is 0." in
    Arg.(value & opt float 0.6 & info [ "util" ] ~docv:"U" ~doc)
  in
  let closed_arg =
    let doc = "Closed-loop clients (coordinated-omission baseline) instead of open-loop." in
    Arg.(value & flag & info [ "closed" ] ~doc)
  in
  let lb_arg =
    let doc = "Load balancer policy: rr (deterministic round-robin) or least-loaded." in
    Arg.(value & opt (enum [ ("rr", Fleet.Round_robin); ("least", Fleet.Least_loaded) ])
             Fleet.Round_robin
         & info [ "lb" ] ~docv:"POLICY" ~doc)
  in
  let rings_arg =
    let doc = "Submit monitor calls through Veil-Ring batched rings." in
    Arg.(value & flag & info [ "rings" ] ~doc)
  in
  let chaos_arg =
    let doc = "Arm a per-guest recoverable fault plan derived from the guest seed." in
    Arg.(value & flag & info [ "chaos" ] ~doc)
  in
  let pulse_arg =
    let doc = "Arm Veil-Pulse sampling at this cycle interval." in
    Arg.(value & opt (some int) None & info [ "pulse" ] ~docv:"CYCLES" ~doc)
  in
  let hostile_arg =
    let doc =
      "Run this guest's kernel compromised: it fires cross-tenant probes alongside its \
       traffic (all must be blocked; co-tenants must not move)."
    in
    Arg.(value & opt (some int) None & info [ "hostile" ] ~docv:"GUEST" ~doc)
  in
  let replay_arg =
    let doc = "Run the fleet twice and fail unless the reports are byte-identical." in
    Arg.(value & flag & info [ "replay-check" ] ~doc)
  in
  let json_arg =
    let doc = "Emit the report as JSON." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let fleet_out_arg =
    let doc = "Write the report here (\"-\" = stdout)." in
    Arg.(value & opt string "-" & info [ "o"; "output" ] ~docv:"FILE" ~doc)
  in
  let run guests vcpus requests workload arrivals rate util closed lb rings chaos pulse hostile
      replay json out seed =
    if vcpus < 1 || vcpus > 8 then begin
      Printf.eprintf "fleet: --vcpus must be in 1..8 (got %d)\n" vcpus;
      exit 2
    end;
    if guests < 1 then begin
      Printf.eprintf "fleet: --guests must be >= 1\n";
      exit 2
    end;
    (match hostile with
    | Some h when h < 0 || h >= guests ->
        Printf.eprintf "fleet: --hostile %d is not a guest index (0..%d)\n" h (guests - 1);
        exit 2
    | _ -> ());
    let base =
      { Fleet.default with guests; vcpus; seed; requests; workload; lb; rings; chaos; pulse;
        hostile; mode = (if closed then Fleet.Closed_loop else Fleet.Open_loop) }
    in
    let rate =
      if rate > 0.0 then rate
      else
        let svc = Fleet.calibrate base in
        Fleet.rate_for base ~utilization:util ~mean_service_cycles:svc
    in
    let process =
      match arrivals with
      | `Poisson -> Fleet.Arrival.Poisson { rate }
      | `Mmpp ->
          (* bursty but same mean rate: half-rate troughs (2 ms dwell)
             with 2.25x bursts (0.8 ms dwell) *)
          Fleet.Arrival.Mmpp
            { low = rate /. 2.0; high = rate *. 2.25; dwell_low = 0.002; dwell_high = 0.0008 }
    in
    let cfg = { base with process } in
    let r = Fleet.run cfg in
    if replay then begin
      let r2 = Fleet.run cfg in
      if Fleet.report_json r <> Fleet.report_json r2 then begin
        Printf.eprintf "fleet: REPLAY MISMATCH — identical config produced different reports\n";
        exit 1
      end
    end;
    let buf = Buffer.create 2048 in
    let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
    if json then Buffer.add_string buf (Fleet.report_json r)
    else begin
      p "Veil-Fleet — %d guest(s) x %d VCPU(s), %s, %s loop, seed %d\n" guests vcpus
        (Fleet.workload_name workload)
        (if closed then "closed" else "open")
        seed;
      p "offered %.0f rps, achieved %.0f rps, wall %.3f s\n" r.Fleet.r_offered
        r.Fleet.r_throughput
        (Sevsnp.Cycles.seconds_of_cycles r.Fleet.r_wall_cycles);
      p "fleet sojourn (merged histogram): p50 %d  p99 %d  p999 %d  mean %.0f cycles\n"
        r.Fleet.r_p50 r.Fleet.r_p99 r.Fleet.r_p999 r.Fleet.r_mean;
      p "merged-registry digest: %s\n" r.Fleet.r_merged_digest;
      if replay then p "replay check: PASS (byte-identical report on re-run)\n";
      p "\n  %-5s %8s %10s %10s %10s %10s %7s %6s %8s\n" "guest" "reqs" "p50" "p99" "p999"
        "mean-svc" "queue%" "slog" "blocked";
      Array.iter
        (fun g ->
          let w = g.Fleet.gr_wait in
          let qpct =
            if w.Veil_core.Monitor.ws_busy_cycles = 0 then 0.0
            else
              100.0
              *. float_of_int w.Veil_core.Monitor.ws_queued_cycles
              /. float_of_int w.Veil_core.Monitor.ws_busy_cycles
          in
          p "  %-5s %8d %10d %10d %10d %10.0f %6.1f%% %6s %8s\n"
            (Printf.sprintf "%d%s" g.Fleet.gr_id (if g.Fleet.gr_hostile then "!" else ""))
            g.Fleet.gr_requests g.Fleet.gr_p50 g.Fleet.gr_p99 g.Fleet.gr_p999 g.Fleet.gr_mean_svc
            qpct
            (if g.Fleet.gr_slog_ok then "ok" else "BROKEN")
            (if g.Fleet.gr_hostile then string_of_int g.Fleet.gr_blocked else "-"))
        r.Fleet.r_guests;
      match hostile with
      | None -> ()
      | Some h ->
          let atk = r.Fleet.r_guests.(h) in
          p "\nhostile guest %d: %d/%d probes blocked (%s)\n" h atk.Fleet.gr_blocked
            (atk.Fleet.gr_requests + 1)
            (if atk.Fleet.gr_blocked = atk.Fleet.gr_requests + 1 then "all sanitized/faulted"
             else "SOME PROBES LANDED")
    end;
    if out = "-" then print_string (Buffer.contents buf)
    else begin
      write_file_or_die out (Buffer.contents buf);
      Printf.printf "wrote %s\n" out
    end
  in
  Cmd.v
    (Cmd.info "fleet"
       ~doc:
         "Boot N isolated Veil guests behind a simulated load balancer and drive them with \
          open-loop traffic (Poisson or bursty MMPP arrivals, heavy-tailed request sizes); \
          report per-guest and fleet-aggregate throughput and sojourn percentiles from merged \
          histograms, with optional rings, pulse, per-guest chaos plans, a compromised-guest \
          oracle and a replay-identity check.")
    Term.(const run $ guests_arg $ vcpus_arg $ requests_arg $ workload_arg $ arrivals_arg
          $ rate_arg $ util_arg $ closed_arg $ lb_arg $ rings_arg $ chaos_arg $ pulse_arg
          $ hostile_arg $ replay_arg $ json_arg $ fleet_out_arg $ seed_arg)

let main =
  let doc = "drive the Veil protected-services framework on the simulated SEV-SNP platform" in
  Cmd.group
    (Cmd.info "veilctl" ~version:Veil_core.Veil.version ~doc)
    [ boot_cmd; attacks_cmd; ltp_cmd; run_cmd; status_cmd; trace_cmd; profile_cmd; scope_cmd;
      report_cmd; metrics_cmd; migrate_cmd; sql_cmd; chaos_cmd; pulse_cmd; bench_cmd;
      explore_cmd; fleet_cmd ]

let () = exit (Cmd.eval main)
