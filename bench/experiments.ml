(* Experiment implementations: one per table/figure of the paper's §9
   (see DESIGN.md's experiment index).  Each prints paper-reported
   values next to the values measured on the simulated platform. *)

module C = Sevsnp.Cycles
module T = Sevsnp.Types
module P = Sevsnp.Platform
module K = Guest_kernel.Ktypes
module S = Guest_kernel.Sysno
module Kern = Guest_kernel.Kernel
module W = Workloads
module D = Workloads.Driver

let line () = print_endline (String.make 78 '-')

let header title paper =
  line ();
  Printf.printf "%s\n" title;
  Printf.printf "paper: %s\n" paper;
  line ()

let seconds c = C.seconds_of_cycles c

(* --- machine-readable results (--json) ---

   When enabled, every Driver.run result an experiment produces is
   recorded and [emit_json] prints one JSON document (after the human
   tables) with the full per-bucket cycle breakdown of each run. *)

let json_mode = ref false

(* Guest RNG seed for every Driver.run; overridable with --seed so a
   failing table can be reproduced (and chaos runs can diversify the
   guest side).  97 is the driver's historical default. *)
let seed = ref 97

(* Veil-Ring opt-in (--rings): escale runs with batched submission
   rings; everything else is untouched so E2's single-call legs stay
   byte-identical. *)
let rings = ref false

(* Veil-Pulse opt-in (--pulse): escale runs with the epoch sampler
   armed (fixed interval below) and per-interval series in the JSON;
   pulse-off runs touch no sampler state, so their schedules stay
   byte-identical. *)
let pulse = ref false
let pulse_interval = 400_000

let recorded : (string * D.stats) list ref = ref []

let record ~experiment (s : D.stats) =
  if !json_mode then recorded := (experiment, s) :: !recorded;
  s

let stats_json (experiment, (s : D.stats)) =
  Printf.sprintf
    "{\"experiment\":\"%s\",\"workload\":\"%s\",\"mode\":\"%s\",\"cycles\":%d,\"seconds\":%.6f,\
     \"compute_cycles\":%d,\"kernel_cycles\":%d,\"switch_cycles\":%d,\"copy_cycles\":%d,\
     \"monitor_cycles\":%d,\"crypto_cycles\":%d,\"io_cycles\":%d,\"syscalls\":%d,\"vm_exits\":%d,\
     \"domain_switches\":%d,\"audit_records\":%d,\"log_appends\":%d}"
    (Obs.Metrics.json_escape experiment)
    (Obs.Metrics.json_escape s.D.workload)
    (D.mode_to_string s.D.mode) s.D.cycles s.D.seconds s.D.compute_cycles s.D.kernel_cycles
    s.D.switch_cycles s.D.copy_cycles s.D.monitor_cycles s.D.crypto_cycles s.D.io_cycles
    s.D.syscalls s.D.vm_exits s.D.domain_switches s.D.audit_records s.D.log_appends

(* Micro-benchmark results (bench/micro.ml) ride along in the same
   JSON document as ns-per-run estimates. *)
let micro_recorded : (string * float) list ref = ref []

let record_micro ~name ~ns_per_run =
  if !json_mode then micro_recorded := (name, ns_per_run) :: !micro_recorded

let micro_json (name, ns) =
  Printf.sprintf "{\"name\":\"%s\",\"ns_per_run\":%.1f}" (Obs.Metrics.json_escape name) ns

(* E-scale results ride along too: one record per (bench, vcpu count). *)
let escale_recorded : (string * int * int * float * float * bool * string) list ref = ref []

(* The per-interval pulse timeseries JSON is built by
   [Workloads.Escale.pulse_json] ("" / omitted key when the run was
   pulse-less, so pulse-off JSON stays byte-compatible with earlier
   PRs). *)
let record_escale ~bench ~nvcpus ~ops ~ops_per_s ~serialized_pct ~pulse_series =
  if !json_mode then
    escale_recorded :=
      (bench, nvcpus, ops, ops_per_s, serialized_pct, !rings, pulse_series) :: !escale_recorded

let escale_json (bench, nvcpus, ops, ops_per_s, serialized_pct, ringed, pulse_series) =
  Printf.sprintf
    "{\"bench\":\"%s\",\"vcpus\":%d,\"ops\":%d,\"ops_per_s\":%.1f,\"serialized_pct\":%.1f,\
     \"rings\":%b%s}"
    (Obs.Metrics.json_escape bench) nvcpus ops ops_per_s serialized_pct ringed
    (if pulse_series = "" then "" else ",\"pulse\":" ^ pulse_series)

(* E-fleet runs record their full fleet reports here (see [efleet]
   below); declared alongside the other accumulators so [emit_json]
   stays the single JSON emitter. *)
let efleet_recorded : string list ref = ref []

let emit_json () =
  if !json_mode then
    Printf.printf
      "\n{\"seed\":%d,\"veil_bench\":[%s],\"veil_micro\":[%s],\"veil_escale\":[%s],\
       \"veil_efleet\":[%s]}\n"
      !seed
      (String.concat "," (List.rev_map stats_json !recorded))
      (String.concat "," (List.rev_map micro_json !micro_recorded))
      (String.concat "," (List.rev_map escale_json !escale_recorded))
      (String.concat "," (List.rev !efleet_recorded))

(* --- E1: initialization time (§9.1) --- *)

let e1 ?(npages = 131072) () =
  header "E1  CVM boot / Veil initialization time (§9.1)"
    "+~2 s over native CVM boot (13%); >70% of the increase is the RMPADJUST sweep";
  Printf.printf "guest memory: %d MB (%d frames); paper used 2 GB\n" (npages / 256) npages;
  let native = Veil_core.Boot.boot_native ~npages ~seed:77 () in
  let veil = Veil_core.Boot.boot_veil ~npages ~seed:77 () in
  let n = native.Veil_core.Boot.n_boot_cycles and v = veil.Veil_core.Boot.boot_cycles in
  let delta = v - n in
  (* scale the per-page work up to the paper's 2 GB guest *)
  let scale = 524288.0 /. float_of_int npages in
  let delta_2gb = float_of_int delta *. scale in
  (* analytic cost of the RMPADJUST sweep from the layout (2 adjusts
     per OS frame, 1 per service frame, one cold touch each) *)
  let l = veil.Veil_core.Boot.layout in
  let sz r = Veil_core.Layout.region_size r in
  let os_frames =
    sz l.Veil_core.Layout.kernel_text + sz l.Veil_core.Layout.kernel_data
    + sz l.Veil_core.Layout.kernel_free + sz l.Veil_core.Layout.idcb_region
  in
  let svc_frames = sz l.Veil_core.Layout.svc_region + sz l.Veil_core.Layout.log_region in
  let sweep =
    (os_frames * ((2 * C.rmpadjust_insn) + C.rmpadjust_page_touch))
    + (svc_frames * (C.rmpadjust_insn + C.rmpadjust_page_touch))
  in
  let sweep_fraction = float_of_int sweep /. float_of_int delta in
  Printf.printf "native CVM boot (guest work measured) : %10d cycles (%.3f s)\n" n (seconds n);
  Printf.printf "Veil CVM boot                         : %10d cycles (%.3f s)\n" v (seconds v);
  Printf.printf "Veil initialization delta             : %10d cycles (%.3f s)\n" delta (seconds delta);
  Printf.printf "delta scaled to a 2 GB guest          : %.2f s   (paper: ~2 s)\n"
    (delta_2gb /. float_of_int C.freq_hz);
  Printf.printf "share spent in VeilMon's sweep        : %.0f%%    (paper: >70%%)\n"
    (100.0 *. sweep_fraction);
  Printf.printf "increase over full native boot (~%.1f s): %.1f%%  (paper: 13%%)\n"
    (float_of_int C.native_cvm_boot /. float_of_int C.freq_hz)
    (100.0 *. delta_2gb /. float_of_int C.native_cvm_boot)

(* --- E2: domain switch cost (§9.1) --- *)

let e2 () =
  header "E2  Hypervisor-relayed domain switch cost (§9.1)"
    "7135 cycles per switch; plain VMCALL round trip 1100 cycles";
  let sys = Veil_core.Boot.boot_veil ~npages:2048 ~seed:3 () in
  let vcpu = sys.Veil_core.Boot.vcpu in
  let iterations = 10_000 in
  let before = C.read_bucket vcpu.Sevsnp.Vcpu.counter C.Switch in
  for _ = 1 to iterations / 2 do
    Veil_core.Monitor.domain_switch sys.Veil_core.Boot.mon vcpu ~target:Veil_core.Privdom.Mon;
    Veil_core.Monitor.domain_switch sys.Veil_core.Boot.mon vcpu ~target:Veil_core.Privdom.Unt
  done;
  let total = C.read_bucket vcpu.Sevsnp.Vcpu.counter C.Switch - before in
  Printf.printf "%d switches between the OS and VeilMon\n" iterations;
  Printf.printf "average domain switch : %5d cycles  (paper: 7135)\n" (total / iterations);
  Printf.printf "plain VMCALL roundtrip: %5d cycles  (paper: ~1100)\n" C.vmcall_roundtrip;
  Printf.printf "breakdown: exit %d + VMSA save %d + GHCB %d + host %d + enter %d + restore %d\n"
    C.automatic_exit C.vmsa_save C.ghcb_msr_protocol C.hv_switch_logic C.automatic_exit C.vmsa_restore

(* --- E3: background system impact (§9.1) --- *)

let e3 ?(scale = 1) () =
  header "E3  Background impact under normal execution (§9.1)"
    "SPEC CPU, memcached, NGINX: <2% difference between native CVM and Veil CVM";
  Printf.printf "%-12s %14s %14s %10s\n" "program" "native cycles" "veil cycles" "overhead";
  List.iter
    (fun w ->
      let native = record ~experiment:"e3" (D.run ~scale ~seed:!seed D.Native w) in
      let veil = record ~experiment:"e3" (D.run ~scale ~seed:!seed D.Veil_background w) in
      Printf.printf "%-12s %14d %14d %9.2f%%   (paper: <2%%)\n" w.W.Workload.name native.D.cycles
        veil.D.cycles (D.overhead_pct ~baseline:native veil))
    (W.Registry.background_programs ())

(* --- E4: enclave system call costs (Fig. 4 / Table 3) --- *)

let e4 ?(iterations = 400) () =
  header "E4  Enclave system call redirection cost (Fig. 4, Table 3)"
    "popular syscalls are 3.3x - 7.1x slower from an enclave";
  Printf.printf "%-8s %12s %12s %9s %14s\n" "syscall" "native cyc" "enclave cyc" "slowdown" "paper-range";
  List.iter
    (fun sb ->
      let w = W.Syscall_bench.workload_of ~iterations sb in
      let native = D.run ~npages:4096 ~seed:!seed D.Native w in
      let enc = D.run ~npages:4096 ~seed:!seed D.Enclave w in
      (* subtract enclave creation by measuring per-iteration deltas on
         large iteration counts; creation is amortized *)
      let per_native = native.D.cycles / iterations in
      let per_enc = enc.D.cycles / iterations in
      Printf.printf "%-8s %12d %12d %8.1fx   (3.3x - 7.1x)\n" sb.W.Syscall_bench.sb_name
        per_native per_enc
        (float_of_int per_enc /. float_of_int per_native))
    W.Syscall_bench.all

(* --- E5: shielded real-world programs (Fig. 5 / Table 4) --- *)

let e5 ?(scale = 1) () =
  header "E5  Shielding real-world programs with VeilS-ENC (Fig. 5, Table 4)"
    "overheads 4.9% - 63.9%; exit rates 0.08k/35.5k/9.3k/4.8k/22.4k per second";
  let paper = [ ("gzip", 4.9, 0.08); ("unqlite", 30.0, 35.5); ("mbedtls", 10.0, 9.3);
                ("lighttpd", 42.0, 4.8); ("sqlite", 63.9, 22.4) ] in
  Printf.printf "%-10s %9s %9s | %9s %9s | %8s %8s\n" "program" "ovh meas" "ovh paper" "exit/s ms"
    "exit/s pp" "redirect" "exit";
  List.iter
    (fun w ->
      let native = record ~experiment:"e5" (D.run ~scale ~seed:!seed D.Native w) in
      let enc = record ~experiment:"e5" (D.run ~scale ~seed:!seed D.Enclave w) in
      let st = Option.get enc.D.enclave in
      let exits =
        st.Enclave_sdk.Runtime.enclave_exits + st.Enclave_sdk.Runtime.interrupts_while_inside
      in
      let p_ovh, p_rate =
        match List.assoc_opt w.W.Workload.name (List.map (fun (n, a, b) -> (n, (a, b))) paper) with
        | Some (a, b) -> (a, b)
        | None -> (0.0, 0.0)
      in
      let extra = enc.D.cycles - native.D.cycles in
      let redirect_share =
        if extra <= 0 then 0.0
        else 100.0 *. float_of_int st.Enclave_sdk.Runtime.redirect_cycles /. float_of_int extra
      in
      let exit_share =
        if extra <= 0 then 0.0
        else 100.0 *. float_of_int st.Enclave_sdk.Runtime.exit_cycles /. float_of_int extra
      in
      Printf.printf "%-10s %8.1f%% %8.1f%% | %8.1fk %8.1fk | %7.0f%% %7.0f%%\n" w.W.Workload.name
        (D.overhead_pct ~baseline:native enc)
        p_ovh
        (D.rate_per_second enc exits /. 1000.0)
        p_rate redirect_share exit_share)
    (W.Registry.enclave_programs ());
  print_endline "(redirect/exit: share of the enclave overhead, cf. Fig. 5's stacked bars)"

(* --- E6: protected system auditing (Fig. 6 / Table 5) --- *)

let e6 ?(scale = 1) () =
  header "E6  System audit log protection with VeilS-LOG (Fig. 6, Table 5)"
    "Kaudit 0.3%-8.7% vs VeilS-LOG 1.4%-18.7%; log rates 1.5k/1.8k/61k/2.3k/38k per second";
  let paper =
    [ ("openssl", (0.3, 1.4, 1.5)); ("7zip", (0.4, 1.6, 1.8)); ("memcached", (8.7, 18.7, 61.0));
      ("sqlite", (0.9, 3.0, 2.3)); ("nginx", (5.5, 12.0, 38.0)) ]
  in
  Printf.printf "%-10s | %8s %8s | %8s %8s | %9s %9s\n" "program" "kaudit" "paper" "veils" "paper"
    "logs/s" "paper";
  List.iter
    (fun w ->
      let base = record ~experiment:"e6" (D.run ~scale ~seed:!seed D.Veil_background w) in
      let ka = record ~experiment:"e6" (D.run ~scale ~seed:!seed D.Kaudit w) in
      let vl = record ~experiment:"e6" (D.run ~scale ~seed:!seed D.Veils_log w) in
      let pk, pv, pr = try List.assoc w.W.Workload.name paper with Not_found -> (0., 0., 0.) in
      Printf.printf "%-10s | %7.2f%% %7.2f%% | %7.2f%% %7.2f%% | %8.1fk %8.1fk\n" w.W.Workload.name
        (D.overhead_pct ~baseline:base ka)
        pk
        (D.overhead_pct ~baseline:base vl)
        pv
        (D.rate_per_second vl vl.D.audit_records /. 1000.0)
        pr)
    (W.Registry.audit_programs ())

(* --- E7: secure module load/unload (CS1, §9.2) --- *)

let e7 ?(reps = 100) () =
  header "E7  Secure kernel module load/unload with VeilS-KCI (CS1, §9.2)"
    "+~55k cycles per load and unload: +5.7% load time, +4.2% unload time";
  (* 4728-byte module binary, 24 KB installed (2 text + 4 data pages) *)
  let measure sys_kernel =
    let load_total = ref 0 and unload_total = ref 0 in
    let vcpu = Kern.vcpu sys_kernel in
    for i = 0 to reps - 1 do
      let img =
        Guest_kernel.Kmodule.build (Kern.rng sys_kernel)
          ~name:(Printf.sprintf "bench%d" i)
          ~text_size:4728 ~data_size:14000 ~symbols:[ "ksym_0"; "ksym_1" ]
      in
      Kern.vendor_sign_module sys_kernel img;
      let t0 = Sevsnp.Vcpu.rdtsc vcpu in
      (match Kern.load_module sys_kernel img with Ok _ -> () | Error e -> failwith e);
      let t1 = Sevsnp.Vcpu.rdtsc vcpu in
      (match Kern.unload_module sys_kernel img.Guest_kernel.Kmodule.name with
      | Ok () -> ()
      | Error e -> failwith e);
      let t2 = Sevsnp.Vcpu.rdtsc vcpu in
      load_total := !load_total + (t1 - t0);
      unload_total := !unload_total + (t2 - t1)
    done;
    (!load_total / reps, !unload_total / reps)
  in
  let native = Veil_core.Boot.boot_native ~npages:4096 ~seed:7 () in
  let nl, nu = measure native.Veil_core.Boot.n_kernel in
  let veil = Veil_core.Boot.boot_veil ~npages:4096 ~seed:7 () in
  let vl, vu = measure veil.Veil_core.Boot.kernel in
  Printf.printf "module: 4728-byte binary, 24 KB installed, %d repetitions\n" reps;
  Printf.printf "load  : native %7d  veils-kci %7d  delta %6d cycles  +%.1f%%  (paper: +55k, +5.7%%)\n"
    nl vl (vl - nl)
    (100.0 *. float_of_int (vl - nl) /. float_of_int nl);
  Printf.printf "unload: native %7d  veils-kci %7d  delta %6d cycles  +%.1f%%  (paper: +55k, +4.2%%)\n"
    nu vu (vu - nu)
    (100.0 *. float_of_int (vu - nu) /. float_of_int nu)

(* --- E8/E9/E10: security validation (Tables 1-2, §8.3) --- *)

let run_attack_table title paper attacks =
  header title paper;
  let blocked = ref 0 in
  List.iter
    (fun a ->
      let o = Veil_attacks.Attacks.run a in
      if Veil_attacks.Attacks.is_blocked o then incr blocked;
      Printf.printf "  %-36s %s\n" (Veil_attacks.Attacks.name a)
        (Veil_attacks.Attacks.outcome_to_string o))
    attacks;
  Printf.printf "defended: %d/%d\n" !blocked (List.length attacks)

let e8 () =
  run_attack_table "E8  Attacks against the Veil framework (Table 1)"
    "all framework attacks defended" (Veil_attacks.Attacks.framework_attacks ())

let e9 () =
  run_attack_table "E9  Attacks against enclaves (Table 2)" "all enclave attacks defended"
    (Veil_attacks.Attacks.enclave_attacks ())

let e10 () =
  run_attack_table "E10 Experimental validation (§8.3)"
    "both attacks end in a CVM halt with continuous #NPF" (Veil_attacks.Attacks.validation_attacks ())

(* --- E11: LTP-style syscall robustness (§7) --- *)

let e11 () =
  header "E11 LTP-style system call robustness of the enclave SDK (§7)"
    "85/96 supported calls pass all robustness cases; unsupported calls kill the enclave";
  let sys = Veil_core.Boot.boot_veil ~npages:4096 ~seed:13 () in
  let results = Enclave_sdk.Ltp.run_all sys in
  let summary = Enclave_sdk.Ltp.summarize results in
  List.iter
    (fun r ->
      if r.Enclave_sdk.Ltp.passed < r.Enclave_sdk.Ltp.total then
        Printf.printf "  %-14s %d/%d%s\n"
          (S.to_string r.Enclave_sdk.Ltp.lsys)
          r.Enclave_sdk.Ltp.passed r.Enclave_sdk.Ltp.total
          (if r.Enclave_sdk.Ltp.killed then "  (enclave killed: unsupported)" else ""))
    results;
  Printf.printf "calls passing their whole battery: %d/%d   (paper: 85/96)\n"
    summary.Enclave_sdk.Ltp.calls_all_passed summary.Enclave_sdk.Ltp.calls_total;
  Printf.printf "individual cases passed          : %d/%d\n" summary.Enclave_sdk.Ltp.cases_passed
    summary.Enclave_sdk.Ltp.cases_total

(* --- Ablations (DESIGN.md §5) --- *)

let ablate ?(scale = 1) () =
  header "A   Ablations: monitor design trade-offs (§9.1 analysis, §10 future work)"
    "Cds x Nds trade-off; exitless/batched syscalls as future work";
  (* A1: what the E5 overheads become under different switch costs *)
  print_endline "A1. Enclave overhead sensitivity to the domain-switch cost (recomputed from";
  print_endline "    measured runs; 7135 = Veil, ~3600 = hypervisor-internal monitor, 1100 =";
  print_endline "    plain VMCALL, 150 = Nested-Kernel-style ring switch):";
  Printf.printf "    %-10s %9s %9s %9s %9s\n" "program" "7135cyc" "3600cyc" "1100cyc" "150cyc";
  List.iter
    (fun w ->
      let native = record ~experiment:"ablate" (D.run ~scale ~seed:!seed D.Native w) in
      let enc = record ~experiment:"ablate" (D.run ~scale ~seed:!seed D.Enclave w) in
      let st = Option.get enc.D.enclave in
      let switches = st.Enclave_sdk.Runtime.enclave_exits + st.Enclave_sdk.Runtime.enclave_entries in
      let recompute per_switch =
        let extra =
          enc.D.cycles - native.D.cycles - (switches * 7135) + (switches * per_switch)
        in
        100.0 *. float_of_int extra /. float_of_int native.D.cycles
      in
      Printf.printf "    %-10s %8.1f%% %8.1f%% %8.1f%% %8.1f%%\n" w.W.Workload.name (recompute 7135)
        (recompute 3600) (recompute 1100) (recompute 150))
    [ W.Dbs.sqlite (); W.Dbs.unqlite () ];
  (* A2: syscall batching (§10) — measured with the SDK's real
     ocall_batch implementation *)
  print_endline "";
  print_endline "A2. Syscall batching (§10 future work), measured with Runtime.ocall_batch:";
  print_endline "    1024 small writes issued from an enclave in batches of k:";
  let sys = Veil_core.Boot.boot_veil ~npages:4096 ~seed:3 () in
  let proc = Kern.spawn sys.Veil_core.Boot.kernel in
  let rt =
    match Enclave_sdk.Runtime.create sys ~binary:(Bytes.make 4096 'B') proc with
    | Ok rt -> rt
    | Error e -> failwith e
  in
  let fd =
    Enclave_sdk.Runtime.run rt (fun rt ->
        match Enclave_sdk.Runtime.ocall rt S.Open [ K.Str "/tmp/batch.log"; K.Int 0x42; K.Int 0o644 ] with
        | K.RInt fd -> fd
        | _ -> failwith "open")
  in
  let payload = Bytes.make 64 'x' in
  let n = 1024 in
  List.iter
    (fun k ->
      let vcpu = sys.Veil_core.Boot.vcpu in
      let t0 = Sevsnp.Vcpu.rdtsc vcpu in
      Enclave_sdk.Runtime.run rt (fun rt ->
          for _ = 1 to n / k do
            if k = 1 then ignore (Enclave_sdk.Runtime.ocall rt S.Write [ K.Int fd; K.Buf payload ])
            else
              ignore
                (Enclave_sdk.Runtime.ocall_batch rt
                   (List.init k (fun _ -> (S.Write, [ K.Int fd; K.Buf payload ]))))
          done);
      let per_call = (Sevsnp.Vcpu.rdtsc vcpu - t0) / n in
      Printf.printf "    k=%-3d %6d cycles/call\n" k per_call)
    [ 1; 2; 4; 8; 16 ];
  (* A4: exitless syscalls + LibOS buffering (§10), measured *)
  print_endline "";
  print_endline "A4. Exitless syscalls (worker VCPU drains a shared ring) and LibOS buffered";
  print_endline "    stdio vs plain redirection — per-call cost of 512 small writes:";
  let sys4 = Veil_core.Boot.boot_veil ~npages:4096 ~seed:5 () in
  (match (Kern.hooks sys4.Veil_core.Boot.kernel).Guest_kernel.Hooks.h_vcpu_boot ~vcpu_id:1 with
  | Ok () -> ()
  | Error e -> failwith e);
  let worker = List.nth (P.vcpus sys4.Veil_core.Boot.platform) 1 in
  let rt4 =
    match
      Enclave_sdk.Runtime.create sys4 ~binary:(Bytes.make 4096 'E')
        (Kern.spawn sys4.Veil_core.Boot.kernel)
    with
    | Ok rt -> rt
    | Error e -> failwith e
  in
  let n4 = 512 in
  let payload4 = Bytes.make 64 'y' in
  let measure name f =
    let vcpu = sys4.Veil_core.Boot.vcpu in
    let t0 = Sevsnp.Vcpu.rdtsc vcpu in
    Enclave_sdk.Runtime.run rt4 f;
    Printf.printf "    %-22s %6d cycles/call (enclave VCPU)\n" name ((Sevsnp.Vcpu.rdtsc vcpu - t0) / n4)
  in
  measure "plain redirection" (fun rt ->
      let fd =
        match Enclave_sdk.Runtime.ocall rt S.Open [ K.Str "/tmp/a4a"; K.Int 0x42; K.Int 0o644 ] with
        | K.RInt fd -> fd
        | _ -> failwith "open"
      in
      for _ = 1 to n4 do
        ignore (Enclave_sdk.Runtime.ocall rt S.Write [ K.Int fd; K.Buf payload4 ])
      done);
  measure "exitless ring" (fun rt ->
      let ring = Result.get_ok (Enclave_sdk.Exitless.create rt ~slots:32) in
      let fd =
        match Enclave_sdk.Exitless.await ring ~worker
                (Result.get_ok (Enclave_sdk.Exitless.submit ring S.Open [ K.Str "/tmp/a4b"; K.Int 0x42; K.Int 0o644 ]))
        with
        | K.RInt fd -> fd
        | _ -> failwith "open"
      in
      for _ = 1 to n4 / 32 do
        let tickets =
          List.init 32 (fun _ ->
              Result.get_ok (Enclave_sdk.Exitless.submit ring S.Write [ K.Int fd; K.Buf payload4 ]))
        in
        ignore (Enclave_sdk.Exitless.drain_on ring worker);
        List.iter (fun t -> ignore (Enclave_sdk.Exitless.poll ring t)) tickets
      done);
  measure "libos buffered stdio" (fun rt ->
      let libos = Enclave_sdk.Libos.create rt in
      let f = Result.get_ok (Enclave_sdk.Libos.fopen libos "/tmp/a4c" ~mode:`Write) in
      for _ = 1 to n4 do
        ignore (Result.get_ok (Enclave_sdk.Libos.fwrite libos f payload4))
      done;
      Result.get_ok (Enclave_sdk.Libos.fclose libos f));
  print_endline "";
  (* A3: log storage sizing (§6.3) *)
  print_endline "";
  print_endline "A3. VeilS-LOG reserved storage sizing (§6.3: size for the retrieval interval):";
  List.iter
    (fun frames ->
      let sys = Veil_core.Boot.boot_veil ~npages:2048 ~log_frames:frames ~seed:3 () in
      let kernel = sys.Veil_core.Boot.kernel in
      Guest_kernel.Audit.set_rules (Kern.audit kernel) [ S.Open ];
      let proc = Kern.spawn kernel in
      for i = 0 to 299 do
        ignore (Kern.invoke kernel proc S.Open [ K.Str (Printf.sprintf "/tmp/l%d" i); K.Int 0x42; K.Int 0o644 ])
      done;
      let stats = Veil_core.Slog.stats sys.Veil_core.Boot.slog in
      Printf.printf "    %2d frame(s) (%5d B): stored %3d, refused %3d of 300 events\n" frames
        (frames * 4096) stats.Veil_core.Slog.appended stats.Veil_core.Slog.dropped_full)
    [ 1; 2; 4; 16 ]

(* --- E-scale: SMP throughput scaling (Veil-SMP, §5) ---

   The measurement harness lives in {!Workloads.Escale} so veilctl's
   scope/report commands regenerate exactly the numbers these tables
   print; bench only drives it and formats the output. *)

module Es = Workloads.Escale

let escale () =
  header "E-scale  SMP throughput scaling with Veil-SMP (§5 AP bring-up)"
    "monitor-relayed AP boot; deterministic interleaving; VeilMon serializes log/IDCB work";
  let counts = Es.vcpu_counts () in
  Printf.printf "interleaver: seeded(%d); guest seed %d; VCPU counts: %s; rings: %s; pulse: %s\n"
    Es.inter_seed !seed
    (String.concat "," (List.map string_of_int counts))
    (if !rings then "on (Veil-Ring batched submission)" else "off")
    (if !pulse then Printf.sprintf "on (interval %d cycles)" pulse_interval else "off");
  let run_table name ~spawn_work ~ops =
    Printf.printf "\n%s (%d ops total, strong scaling):\n" name ops;
    Printf.printf "  %5s %14s %9s %9s %11s %12s %10s %7s\n" "vcpus" "throughput" "speedup"
      "hw-amdahl" "serialized%" "wall Mcyc" "mon-share" "steals";
    let base = ref None in
    let serial_frac = ref 0.0 in
    List.iter
      (fun nv ->
        let pulse_arg = if !pulse then Some pulse_interval else None in
        let (r : Es.result), sys =
          Es.measure ~rings:!rings ?pulse:pulse_arg ~nvcpus:nv ~seed:!seed ~spawn_work ()
        in
        let tp = Es.throughput r in
        let ser = Es.serialized_pct r in
        record_escale ~bench:name ~nvcpus:nv ~ops:r.Es.es_ops ~ops_per_s:tp
          ~serialized_pct:ser
          ~pulse_series:(if !pulse then Workloads.Escale.pulse_json sys else "");
        if !pulse then begin
          let pu = sys.Veil_core.Boot.platform.P.pulse in
          Printf.printf "  pulse @%d VCPUs: %d intervals captured (%d retained), %d anchors\n" nv
            (Obs.Pulse.captured pu) (Obs.Pulse.retained pu) (Obs.Pulse.anchors_emitted pu);
          List.iter
            (fun (br : Obs.Pulse.burn_report) ->
              Printf.printf
                "    SLO %s: %d/%d bad (budget %.1f), burn %.2fx%s, %d crossing(s)\n"
                br.Obs.Pulse.br_name br.Obs.Pulse.br_bad br.Obs.Pulse.br_total
                br.Obs.Pulse.br_budget br.Obs.Pulse.br_burn
                (if br.Obs.Pulse.br_crossed then " (over budget)" else "")
                br.Obs.Pulse.br_crossings)
            (Obs.Pulse.burn_reports pu)
        end;
        let tp0 = match !base with None -> base := Some tp; tp | Some t -> t in
        if nv = 1 then serial_frac := float_of_int r.Es.es_mon /. float_of_int r.Es.es_busy;
        (* The simulator charges VeilMon work to the calling VCPU, so
           the measured speedup is the no-contention optimum; hw-amdahl
           is what one serialized VeilMon instance (a single VMPL0
           monitor, one RMP lock) would allow on hardware, taking the
           Monitor+Switch share of the 1-VCPU run as the serial
           fraction.  serialized% is the same slice measured directly
           by the monitor's entry ledger (Veil-Scope) instead of
           inferred from the 1-VCPU bucket share. *)
        let s = !serial_frac in
        let ceiling = Es.amdahl_ceiling ~serial_frac:s ~nvcpus:nv in
        Printf.printf "  %5d %11.1f k/s %8.2fx %8.2fx %10.1f%% %12.2f %9.1f%% %7d\n" nv
          (tp /. 1000.0) (tp /. tp0) ceiling ser
          (float_of_int r.Es.es_wall /. 1e6)
          (100.0 *. float_of_int r.Es.es_mon /. float_of_int r.Es.es_busy)
          r.Es.es_steals;
        if nv = List.fold_left max 1 counts then begin
          Printf.printf
            "  Veil-Prof @%d VCPUs: VeilMon os_call self=%d cycles over %d calls; every\n" nv
            r.Es.es_prof_mon_self r.Es.es_prof_mon_hits;
          Printf.printf
            "  call funnels through the single VeilMon instance (7135-cycle relayed\n";
          Printf.printf
            "  switch each way), so hardware speedup is capped at %.2fx by that slice.\n"
            ceiling;
          (match Sys.getenv_opt "VEIL_ESCALE_JOURNAL" with
          | Some path ->
              let oc = open_out (Printf.sprintf "%s.%s" path
                                   (String.map (function ' ' -> '-' | c -> c) name)) in
              output_string oc r.Es.es_journal;
              output_char oc '\n';
              close_out oc
          | None -> ());
          (* reproducibility: the schedule and the numbers must replay *)
          let (r2 : Es.result), _ =
            Es.measure ~rings:!rings ?pulse:pulse_arg ~nvcpus:nv ~seed:!seed ~spawn_work ()
          in
          if r2.Es.es_journal <> r.Es.es_journal || Es.throughput r2 <> tp then
            failwith "E-scale: same seed produced a different schedule or throughput";
          Printf.printf "  replay @%d VCPUs: identical schedule (%d steps) and throughput — OK\n"
            nv (String.length r.Es.es_journal)
        end)
      counts
  in
  run_table "syscall-bench" ~spawn_work:(Es.syscall_work ~ops_total:4096) ~ops:4096;
  run_table "http-server" ~spawn_work:(Es.http_work ~requests:256) ~ops:256

(* --- E-fleet: multi-guest host under open-loop traffic (ISSUE 10) --- *)

let record_efleet ~label ~util (r : Fleet.report) =
  if !json_mode then
    efleet_recorded :=
      Printf.sprintf "{\"label\":\"%s\",\"guests\":%d,\"util\":%.2f,\"report\":%s}"
        (Obs.Metrics.json_escape label)
        (Array.length r.Fleet.r_guests)
        util (Fleet.report_json r)
      :: !efleet_recorded

let efleet ?(scale = 1) () =
  header "E-fleet  Multi-guest host: open-loop traffic against isolated Veil guests"
    "fleet-provisioned CVMs; per-tenant isolation and tails must hold under shared-host load";
  let base guests vcpus requests =
    {
      Fleet.default with
      guests;
      vcpus;
      seed = !seed;
      requests = requests * scale;
      rings = !rings;
      pulse = (if !pulse then Some pulse_interval else None);
    }
  in
  Printf.printf "workload: http; seed %d; rings: %s; pulse: %s; requests scale x%d\n" !seed
    (if !rings then "on" else "off")
    (if !pulse then "on" else "off")
    scale;
  (* per-cell calibration (closed-loop probe fleet), then an open-loop
     drive at 60% of measured capacity *)
  let grid = [ (1, 4); (2, 4); (4, 4) ] in
  Printf.printf
    "\nopen loop at 60%% of calibrated capacity (merged-histogram sojourn, cycles):\n";
  Printf.printf "  %6s %6s %10s %10s %10s %10s %10s %8s\n" "guests" "vcpus" "offered" "achieved"
    "p50" "p99" "p999" "queue%";
  List.iter
    (fun (g, v) ->
      let cfg = base g v (g * v * 24) in
      let svc = Fleet.calibrate cfg in
      let rate = Fleet.rate_for cfg ~utilization:0.6 ~mean_service_cycles:svc in
      let r = Fleet.run { cfg with process = Fleet.Arrival.Poisson { rate } } in
      record_efleet ~label:"open-0.6" ~util:0.6 r;
      let queued, busy =
        Array.fold_left
          (fun (q, b) gr ->
            ( q + gr.Fleet.gr_wait.Veil_core.Monitor.ws_queued_cycles,
              b + gr.Fleet.gr_wait.Veil_core.Monitor.ws_busy_cycles ))
          (0, 0) r.Fleet.r_guests
      in
      Printf.printf "  %6d %6d %10.0f %10.0f %10d %10d %10d %7.1f%%\n" g v r.Fleet.r_offered
        r.Fleet.r_throughput r.Fleet.r_p50 r.Fleet.r_p99 r.Fleet.r_p999
        (if busy = 0 then 0.0 else 100.0 *. float_of_int queued /. float_of_int busy))
    grid;
  (* coordinated omission: the same overloaded box measured both ways *)
  let co_cfg = base 4 4 384 in
  let closed = Fleet.run { co_cfg with mode = Fleet.Closed_loop } in
  record_efleet ~label:"closed" ~util:0.0 closed;
  let over_rate = Fleet.rate_for co_cfg ~utilization:1.5 ~mean_service_cycles:closed.Fleet.r_mean in
  let open_over =
    Fleet.run { co_cfg with process = Fleet.Arrival.Poisson { rate = over_rate } }
  in
  record_efleet ~label:"open-1.5" ~util:1.5 open_over;
  Printf.printf "\ncoordinated omission (4 guests x 4 VCPUs, 1.5x overload):\n";
  Printf.printf "  closed loop (what a waiting client reports): p99 %10d cycles, %8.0f rps\n"
    closed.Fleet.r_p99 closed.Fleet.r_throughput;
  Printf.printf "  open loop   (what arrivals actually suffer): p99 %10d cycles, %8.0f rps\n"
    open_over.Fleet.r_p99 open_over.Fleet.r_throughput;
  Printf.printf "  omitted tail: open-loop p99 is %.1fx the closed-loop p99\n"
    (float_of_int open_over.Fleet.r_p99 /. float_of_int (max 1 closed.Fleet.r_p99));
  (* bursty arrivals at the same mean rate *)
  let rate06 = Fleet.rate_for co_cfg ~utilization:0.6 ~mean_service_cycles:closed.Fleet.r_mean in
  let poisson =
    Fleet.run { co_cfg with process = Fleet.Arrival.Poisson { rate = rate06 } }
  in
  let mmpp =
    Fleet.run
      {
        co_cfg with
        (* same mean as rate06: (0.5r*2ms + 2.25r*0.8ms)/2.8ms = r.
           Dwells must be short against the run length or the process
           never leaves its opening low state and "bursty" quietly
           means "underloaded". *)
        process =
          Fleet.Arrival.Mmpp
            { low = rate06 /. 2.0; high = rate06 *. 2.25; dwell_low = 0.002; dwell_high = 0.0008 };
      }
  in
  record_efleet ~label:"mmpp-0.6" ~util:0.6 mmpp;
  Printf.printf "\nburstiness at the same mean offered load (%.0f rps):\n" rate06;
  Printf.printf "  poisson: p99 %10d  p999 %10d\n" poisson.Fleet.r_p99 poisson.Fleet.r_p999;
  Printf.printf "  mmpp   : p99 %10d  p999 %10d  (bursts queue; the mean hides them)\n"
    mmpp.Fleet.r_p99 mmpp.Fleet.r_p999;
  (* per-guest seeds + replay identity on the headline cell *)
  let headline = { co_cfg with process = Fleet.Arrival.Poisson { rate = rate06 } } in
  let r1 = Fleet.run headline and r2 = Fleet.run headline in
  if Fleet.report_json r1 <> Fleet.report_json r2 then
    failwith "E-fleet: same config produced a different report";
  Printf.printf "\nreplay: per-guest seeds [%s] reproduce the report byte-for-byte — OK\n"
    (String.concat ";"
       (Array.to_list
          (Array.map (fun g -> string_of_int g.Fleet.gr_seed) r1.Fleet.r_guests)));
  Printf.printf "merged-registry digest: %s\n" r1.Fleet.r_merged_digest;
  (* fleet-scope attack oracle (E8/E9 extended): a compromised guest
     kernel must neither reach VeilMon nor move a co-tenant *)
  let oracle = Veil_attacks.Attacks.fleet_attacks () in
  Printf.printf "\nfleet-scope attack oracle:\n";
  List.iter
    (fun atk ->
      let o = Veil_attacks.Attacks.run atk in
      Printf.printf "  %-40s %s\n" (Veil_attacks.Attacks.name atk)
        (Veil_attacks.Attacks.outcome_to_string o);
      if not (Veil_attacks.Attacks.is_blocked o) then
        failwith ("E-fleet: attack not contained: " ^ Veil_attacks.Attacks.name atk))
    oracle
