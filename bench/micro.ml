(* Bechamel wall-clock micro-benchmarks of the simulator's hot
   primitives — one Test.make per table/figure-critical operation, all
   registered in one executable per the project layout. *)

open Bechamel
open Toolkit

let sha_buf = Bytes.make 4096 'x'

let test_sha256 =
  Test.make ~name:"crypto/sha256-4k"
    (Staged.stage (fun () -> ignore (Veil_crypto.Sha256.digest_bytes sha_buf)))

let chacha_key = Bytes.make 32 'k'
let chacha_nonce = Bytes.make 12 'n'

let test_chacha =
  Test.make ~name:"crypto/chacha20-4k"
    (Staged.stage (fun () ->
         ignore (Veil_crypto.Chacha20.encrypt ~key:chacha_key ~nonce:chacha_nonce sha_buf)))

let bignum_group = lazy (Veil_crypto.Group.default ())

let test_powmod =
  Test.make ~name:"crypto/powmod-96bit"
    (Staged.stage (fun () ->
         let g = Lazy.force bignum_group in
         ignore
           (Veil_crypto.Bignum.powmod ~base:g.Veil_crypto.Group.g ~exp:g.Veil_crypto.Group.q
              ~modulus:g.Veil_crypto.Group.p)))

(* E2's subject: a full OS->VeilMon->OS round trip on a live system *)
let switch_sys = lazy (Veil_core.Boot.boot_veil ~npages:2048 ~seed:19 ())

let test_domain_switch =
  Test.make ~name:"veil/domain-switch-roundtrip"
    (Staged.stage (fun () ->
         let sys = Lazy.force switch_sys in
         Veil_core.Monitor.domain_switch sys.Veil_core.Boot.mon sys.Veil_core.Boot.vcpu
           ~target:Veil_core.Privdom.Mon;
         Veil_core.Monitor.domain_switch sys.Veil_core.Boot.mon sys.Veil_core.Boot.vcpu
           ~target:Veil_core.Privdom.Unt))

let test_os_call =
  Test.make ~name:"veil/os-call-pvalidate"
    (Staged.stage (fun () ->
         let sys = Lazy.force switch_sys in
         ignore
           (Veil_core.Monitor.os_call sys.Veil_core.Boot.mon sys.Veil_core.Boot.vcpu
              (Veil_core.Idcb.R_pvalidate { gpfn = 1200; to_private = true }))))

let test_rmpadjust =
  Test.make ~name:"sevsnp/rmpadjust"
    (Staged.stage (fun () ->
         let sys = Lazy.force switch_sys in
         Veil_core.Monitor.domain_switch sys.Veil_core.Boot.mon sys.Veil_core.Boot.vcpu
           ~target:Veil_core.Privdom.Mon;
         ignore
           (Sevsnp.Platform.rmpadjust sys.Veil_core.Boot.platform sys.Veil_core.Boot.vcpu ~gpfn:1300
              ~target:Sevsnp.Types.Vmpl3 ~perms:Sevsnp.Perm.all ~vmsa:false ());
         Veil_core.Monitor.domain_switch sys.Veil_core.Boot.mon sys.Veil_core.Boot.vcpu
           ~target:Veil_core.Privdom.Unt))

(* Guest-memory fast path: the checked-physical and translated paths
   every workload byte funnels through. *)
let mem_gpa = lazy (
  let sys = Lazy.force switch_sys in
  let l = sys.Veil_core.Boot.layout in
  Sevsnp.Types.gpa_of_gpfn l.Veil_core.Layout.kernel_free.Veil_core.Layout.lo)

let mem_va = 0x4000_0000

let mem_proc = lazy (
  let sys = Lazy.force switch_sys in
  let kernel = sys.Veil_core.Boot.kernel in
  let proc = Guest_kernel.Kernel.init_process kernel in
  Guest_kernel.Kernel.map_user_pages kernel proc ~va:mem_va ~npages:2
    ~prot:Guest_kernel.Ktypes.prot_rw;
  proc)

let mem_buf = Bytes.create 4096

let test_checked_read_4k =
  Test.make ~name:"mem/checked-read-4k"
    (Staged.stage (fun () ->
         let sys = Lazy.force switch_sys in
         Sevsnp.Platform.read_into sys.Veil_core.Boot.platform sys.Veil_core.Boot.vcpu
           (Lazy.force mem_gpa) mem_buf 0 4096))

let test_via_pt_read_4k =
  Test.make ~name:"mem/via-pt-read-4k"
    (Staged.stage (fun () ->
         let sys = Lazy.force switch_sys in
         let proc = Lazy.force mem_proc in
         Sevsnp.Platform.read_into_via_pt sys.Veil_core.Boot.platform sys.Veil_core.Boot.vcpu
           ~root:proc.Guest_kernel.Process.pt_root mem_va mem_buf 0 4096))

(* One u64 through the TLB: translation cache hit + RMP snapshot check
   + direct load — the per-word cost every via-pt access amortizes. *)
let test_tlb_hit_u64 =
  Test.make ~name:"mem/tlb-hit-u64"
    (Staged.stage (fun () ->
         let sys = Lazy.force switch_sys in
         let proc = Lazy.force mem_proc in
         ignore
           (Sevsnp.Platform.read_u64_via_pt sys.Veil_core.Boot.platform sys.Veil_core.Boot.vcpu
              ~root:proc.Guest_kernel.Process.pt_root mem_va)))

(* Exitless syscalls (§10, FlexSC-style): enclave submits into the
   shared-arena ring, a worker VCPU drains — no synchronous exit on
   the enclave VCPU.  One lazy system with a hotplugged worker, shared
   by the wall-clock test and the submit-path alloc-check. *)
let exitless_rig =
  lazy
    (let sys = Veil_core.Boot.boot_veil ~npages:2048 ~seed:23 () in
     (match
        (Guest_kernel.Kernel.hooks sys.Veil_core.Boot.kernel).Guest_kernel.Hooks.h_vcpu_boot
          ~vcpu_id:1
      with
     | Ok () -> ()
     | Error e -> failwith ("micro exitless: " ^ e));
     let worker = List.nth (Sevsnp.Platform.vcpus sys.Veil_core.Boot.platform) 1 in
     let rt =
       match
         Enclave_sdk.Runtime.create sys ~binary:(Bytes.make 4096 'E')
           (Guest_kernel.Kernel.spawn sys.Veil_core.Boot.kernel)
       with
       | Ok rt -> rt
       | Error e -> failwith ("micro exitless: " ^ e)
     in
     let ring = Result.get_ok (Enclave_sdk.Exitless.create rt ~slots:32) in
     (sys, worker, rt, ring))

let test_exitless =
  Test.make ~name:"exitless/submit-drain"
    (Staged.stage (fun () ->
         let _, worker, _, ring = Lazy.force exitless_rig in
         let tickets =
           List.init 32 (fun _ ->
               Result.get_ok (Enclave_sdk.Exitless.submit ring Guest_kernel.Sysno.Getpid []))
         in
         ignore (Enclave_sdk.Exitless.drain_on ring worker);
         List.iter (fun t -> ignore (Enclave_sdk.Exitless.poll ring t)) tickets))

let lzss_input = lazy (Workloads.Textgen.text (Veil_crypto.Rng.create 5) 4096)

let test_deflate =
  Test.make ~name:"workloads/deflate-4k"
    (Staged.stage (fun () -> ignore (Workloads.Deflate.compress (Lazy.force lzss_input))))

let mcache_inst = lazy (
  let m = Workloads.Mcache.create () in
  for i = 0 to 63 do
    Workloads.Mcache.set m ~key:(string_of_int i) ~value:(Bytes.make 100 'v') ()
  done;
  m)

let test_mcache =
  Test.make ~name:"workloads/mcache-get-set"
    (Staged.stage (fun () ->
         let m = Lazy.force mcache_inst in
         Workloads.Mcache.set m ~key:"7" ~value:(Bytes.make 100 'w') ();
         ignore (Workloads.Mcache.get m "7")))

let test_lzss =
  Test.make ~name:"workloads/lzss-4k"
    (Staged.stage (fun () -> ignore (Workloads.Lzss.compress (Lazy.force lzss_input))))

let test_huffman =
  Test.make ~name:"workloads/huffman-4k"
    (Staged.stage (fun () -> ignore (Workloads.Huffman.encode (Lazy.force lzss_input))))

let all_tests =
  Test.make_grouped ~name:"veil-micro"
    [ test_sha256; test_chacha; test_powmod; test_domain_switch; test_os_call; test_rmpadjust;
      test_checked_read_4k; test_via_pt_read_4k; test_tlb_hit_u64; test_exitless;
      test_lzss; test_huffman; test_deflate; test_mcache ]

(* Veil-Trace contract: while tracing is disabled, the instrumented
   stack must not allocate anything new on the platform's read/write
   hot path.  Measured with Gc.minor_words around checked u64
   accesses, disabled vs enabled. *)
let alloc_check () =
  let sys = Lazy.force switch_sys in
  let platform = sys.Veil_core.Boot.platform in
  let vcpu = sys.Veil_core.Boot.vcpu in
  let l = sys.Veil_core.Boot.layout in
  let gpa =
    Sevsnp.Types.gpa_of_gpfn l.Veil_core.Layout.kernel_free.Veil_core.Layout.lo
  in
  let n = 100_000 in
  let words_per_op f =
    f ();
    (* warm-up: first call pays one-time page-touch costs *)
    let before = Gc.minor_words () in
    for _ = 1 to n do
      f ()
    done;
    (Gc.minor_words () -. before) /. float_of_int n
  in
  let wr () = Sevsnp.Platform.write_u64 platform vcpu gpa 0x42 in
  let rd () = ignore (Sevsnp.Platform.read_u64 platform vcpu gpa) in
  (* check_exec runs the full RMP/VMPL check; since the flat-RMP and
     chunked-arena rewrite the u64 accessors are allocation-free too,
     so the contract for every path is an exact 0.0 — tracing off AND
     on (the enabled-but-quiet tracer must not cost the hot path). *)
  let ex () = Sevsnp.Platform.check_exec platform vcpu gpa in
  let proc = Lazy.force mem_proc in
  let tl () =
    ignore
      (Sevsnp.Platform.read_u64_via_pt platform vcpu ~root:proc.Guest_kernel.Process.pt_root
         mem_va)
  in
  (* Veil-Prof contract: with the profiler disabled, the instrumented
     syscall path (kernel.invoke push/pop + causal-id sites) must cost
     one predicted branch and zero allocation.  sched_yield is the
     no-op syscall: everything measured is instrumentation overhead. *)
  let kernel = sys.Veil_core.Boot.kernel in
  let sy () =
    ignore (Guest_kernel.Kernel.invoke kernel proc Guest_kernel.Sysno.Sched_yield [])
  in
  (* Veil-Chaos contract: a disarmed platform pays one [match] on the
     world-exit path and nothing else; an armed plan whose sites are
     all probability-0 must allocate exactly as much as disarmed
     (zero-probability fire consumes no PRNG draw and allocates
     nothing).  Measured on the chaos-checked path — the full
     OS→VeilMon→OS domain-switch round trip. *)
  let mon = sys.Veil_core.Boot.mon in
  let ds () =
    Veil_core.Monitor.domain_switch mon vcpu ~target:Veil_core.Privdom.Mon;
    Veil_core.Monitor.domain_switch mon vcpu ~target:Veil_core.Privdom.Unt
  in
  (* Veil-Scope contract: arming the scheduler's [wait_obs] while the
     tracer is disabled must add zero allocation to the yield/park
     path — each hook is one [Trace.enabled] test.  Effect-based
     suspension itself allocates (continuation capture), so the
     contract is armed = unarmed, like the chaos comparison. *)
  let sched_words wait_obs =
    let s = Guest_kernel.Sched.create ?wait_obs ~nvcpus:1 () in
    let iters = 20_000 in
    Guest_kernel.Sched.spawn ~vcpu:0 s ~name:"spin" (fun () ->
        for _ = 1 to iters do
          Guest_kernel.Sched.yield ()
        done);
    ignore (Guest_kernel.Sched.step_vcpu s 0);
    let before = Gc.minor_words () in
    let steps = ref 0 in
    while Guest_kernel.Sched.step_vcpu s 0 do
      incr steps
    done;
    (Gc.minor_words () -. before) /. float_of_int !steps
  in
  let quiet_tr = Obs.Trace.create ~capacity:64 () in
  let sc_plain = sched_words None in
  let sc_armed =
    sched_words
      (Some
         {
           Guest_kernel.Sched.wo_tracer = quiet_tr;
           wo_now = (fun () -> 0);
           wo_vcpu = (fun () -> 0);
           wo_vmpl = 3;
         })
  in
  let tr = platform.Sevsnp.Platform.tracer in
  let prof = platform.Sevsnp.Platform.profiler in
  let was_on = Obs.Trace.enabled tr in
  let prof_was_on = Obs.Profiler.enabled prof in
  Obs.Trace.set_enabled tr false;
  Obs.Profiler.set_enabled prof false;
  let w_off = words_per_op wr and r_off = words_per_op rd and x_off = words_per_op ex in
  let t_off = words_per_op tl in
  let s_off = words_per_op sy in
  (* Exitless contract: a prepared submission into the shared-arena
     ring is pure stores + integer math — the enclave-side submit path
     allocates nothing (§10's other future-work path, next to rings). *)
  let _, _, _, ex_ring = Lazy.force exitless_rig in
  let ex_prep = Result.get_ok (Enclave_sdk.Exitless.prepare Guest_kernel.Sysno.Getpid []) in
  let ex_sub () =
    Enclave_sdk.Exitless.cancel ex_ring (Enclave_sdk.Exitless.submit_prepared ex_ring ex_prep)
  in
  let e_sub = words_per_op ex_sub in
  Sevsnp.Platform.disarm_chaos platform;
  let d_disarmed = words_per_op ds in
  Sevsnp.Platform.arm_chaos platform (Chaos.Fault_plan.create ~seed:1 ());
  let d_armed = words_per_op ds in
  Sevsnp.Platform.disarm_chaos platform;
  (* Veil-Pulse contract: an armed sampler whose epoch never elapses
     pays only integer compares on the world-exit path — the same
     words/op as disarmed (where the tick is one flag test).  The
     domain-switch round trip runs through vmgexit, i.e. through the
     tick site. *)
  let pu = platform.Sevsnp.Platform.pulse in
  let p_disarmed = words_per_op ds in
  Obs.Pulse.arm pu ~interval:max_int ~now:(Sevsnp.Vcpu.rdtsc vcpu);
  let p_armed = words_per_op ds in
  Obs.Pulse.disarm pu;
  Obs.Trace.set_enabled tr true;
  let w_on = words_per_op wr and r_on = words_per_op rd and x_on = words_per_op ex in
  let t_on = words_per_op tl in
  Obs.Trace.set_enabled tr was_on;
  Obs.Profiler.set_enabled prof prof_was_on;
  print_endline (String.make 78 '-');
  print_endline "Veil-Trace allocation check (minor words per checked platform access)";
  print_endline (String.make 78 '-');
  Printf.printf "  check_exec     : tracing off %.4f w/op, on %.4f w/op\n" x_off x_on;
  Printf.printf "  write_u64      : tracing off %.4f w/op, on %.4f w/op\n" w_off w_on;
  Printf.printf "  read_u64       : tracing off %.4f w/op, on %.4f w/op\n" r_off r_on;
  Printf.printf "  tlb-hit u64 read: tracing off %.4f w/op, on %.4f w/op\n" t_off t_on;
  Printf.printf "  sched_yield syscall (profiler off): %.4f w/op\n" s_off;
  Printf.printf "  exitless prepared submit: %.4f w/op\n" e_sub;
  Printf.printf "  domain-switch roundtrip: chaos disarmed %.4f w/op, armed zero-prob %.4f w/op\n"
    d_disarmed d_armed;
  Printf.printf "  domain-switch roundtrip: pulse disarmed %.4f w/op, armed no-capture %.4f w/op\n"
    p_disarmed p_armed;
  Printf.printf "  sched yield step: wait_obs unarmed %.4f w/op, armed tracer-off %.4f w/op\n"
    sc_plain sc_armed;
  if
    x_off = 0.0 && x_on = 0.0 && w_off = 0.0 && w_on = 0.0 && r_off = 0.0 && r_on = 0.0
    && t_off = 0.0 && t_on = 0.0 && s_off = 0.0 && e_sub = 0.0 && d_armed = d_disarmed
    && sc_armed = sc_plain && p_armed = p_disarmed
  then
    print_endline
      "  PASS: checked physical access, the TLB-hit translated path, the\n\
      \        profiler-disabled syscall path and the exitless submit path\n\
      \        allocate nothing; an armed zero-probability chaos plan costs\n\
      \        the same as disarmed, an armed wait_obs with the tracer\n\
      \        off costs the yield path nothing, and an armed pulse\n\
      \        sampler between captures costs what disarmed costs"
  else begin
    print_endline "  FAIL: an instrumented hot path allocates";
    exit 1
  end

let run () =
  print_endline (String.make 78 '-');
  print_endline "Bechamel micro-benchmarks (host wall-clock of simulator primitives)";
  print_endline (String.make 78 '-');
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:(Some 1000) () in
  let raw = Benchmark.all cfg instances all_tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] ->
          Printf.printf "  %-34s %12.0f ns/run\n" name est;
          Experiments.record_micro ~name ~ns_per_run:est
      | _ -> Printf.printf "  %-34s (no estimate)\n" name)
    results;
  alloc_check ()
