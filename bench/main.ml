(* Benchmark harness: regenerates every table and figure of the
   paper's evaluation (§9), plus the ablations DESIGN.md calls out and
   Bechamel micro-benchmarks of the simulator.  Run with an experiment
   id (e1..e11, ablate, micro) or no argument for everything. *)

let usage () =
  print_endline
    "usage: bench/main.exe [e1|e2|e3|e4|e5|e6|e7|e8|e9|e10|e11|escale|efleet|ablate|micro|all] [--json] [--seed N]";
  print_endline "       (no argument = all; scale via VEIL_BENCH_SCALE, default 1;";
  print_endline "        --json additionally prints every recorded run as one JSON document;";
  print_endline "        --seed sets the guest RNG seed for every run, default 97;";
  print_endline "        escale: VEIL_ESCALE_VCPUS=1,2,4,8 picks the VCPU counts,";
  print_endline "        VEIL_ESCALE_JOURNAL=path dumps the interleaver schedule journals,";
  print_endline "        --rings runs escale with Veil-Ring batched submission rings,";
  print_endline "        --pulse arms Veil-Pulse telemetry sampling during escale)"

let scale =
  match Sys.getenv_opt "VEIL_BENCH_SCALE" with Some s -> int_of_string s | None -> 1

let args =
  let rec strip = function
    | "--seed" :: v :: rest ->
        (match int_of_string_opt v with
        | Some s -> Experiments.seed := s
        | None ->
            prerr_endline ("bench: --seed expects an integer, got " ^ v);
            exit 2);
        strip rest
    | "--seed" :: [] ->
        prerr_endline "bench: --seed expects an integer";
        exit 2
    | "--json" :: rest -> strip rest
    | "--rings" :: rest ->
        Experiments.rings := true;
        strip rest
    | "--pulse" :: rest ->
        Experiments.pulse := true;
        strip rest
    | a :: rest -> a :: strip rest
    | [] -> []
  in
  strip (List.tl (Array.to_list Sys.argv))

let () = Experiments.json_mode := Array.exists (( = ) "--json") Sys.argv

let all () =
  Experiments.e1 ();
  Experiments.e2 ();
  Experiments.e3 ~scale ();
  Experiments.e4 ();
  Experiments.e5 ~scale ();
  Experiments.e6 ~scale ();
  Experiments.e7 ();
  Experiments.e8 ();
  Experiments.e9 ();
  Experiments.e10 ();
  Experiments.e11 ();
  Experiments.escale ();
  Experiments.efleet ~scale ();
  Experiments.ablate ~scale ();
  Micro.run ()

let () =
  (match match args with a :: _ -> a | [] -> "all" with
  | "e1" -> Experiments.e1 ()
  | "e2" -> Experiments.e2 ()
  | "e3" -> Experiments.e3 ~scale ()
  | "e4" -> Experiments.e4 ()
  | "e5" -> Experiments.e5 ~scale ()
  | "e6" -> Experiments.e6 ~scale ()
  | "e7" -> Experiments.e7 ()
  | "e8" -> Experiments.e8 ()
  | "e9" -> Experiments.e9 ()
  | "e10" -> Experiments.e10 ()
  | "e11" -> Experiments.e11 ()
  | "escale" -> Experiments.escale ()
  | "efleet" -> Experiments.efleet ~scale ()
  | "ablate" -> Experiments.ablate ~scale ()
  | "micro" -> Micro.run ()
  | "all" -> all ()
  | _ -> usage ());
  Experiments.emit_json ()
