(* Tiered security (§10): one CVM, three protection tiers, plus the
   §10 extensions implemented in this repo — a batched-syscall enclave
   pipeline split across two mutually-trusting enclaves that share
   memory, an enclave thread on a hotplugged VCPU, and a VeilS-TPM
   quote proving the machine's measured state to a remote auditor.

   Run with: dune exec examples/tiered_security.exe *)

module V = Veil_core
module Rt = Enclave_sdk.Runtime
module K = Guest_kernel.Ktypes
module S = Guest_kernel.Sysno
module Kern = Guest_kernel.Kernel

let step fmt = Printf.printf ("\n== " ^^ fmt ^^ "\n%!")

let () =
  step "tier 0: ordinary programs run at native CVM speed (no enclave)";
  let sys = V.Veil.boot () in
  let kernel = sys.V.Boot.kernel in
  let proc = Kern.spawn kernel in
  (match Kern.invoke kernel proc S.Open [ K.Str "/tmp/public.txt"; K.Int 0x42; K.Int 0o644 ] with
  | K.RInt fd ->
      ignore (Kern.invoke kernel proc S.Write [ K.Int fd; K.Buf (Bytes.of_string "public data") ]);
      print_endline "   plain process wrote /tmp/public.txt with zero Veil overhead"
  | _ -> failwith "open");

  step "tier 1: the measured platform state is quotable via VeilS-TPM";
  List.iter
    (fun ev ->
      ignore (V.Monitor.os_call sys.V.Boot.mon sys.V.Boot.vcpu
                (V.Idcb.R_tpm_extend { pcr = 0; data = Bytes.of_string ev })))
    [ "bootloader"; "kernel-5.16-snp"; "veil-services" ];
  (match V.Monitor.os_call sys.V.Boot.mon sys.V.Boot.vcpu
           (V.Idcb.R_tpm_quote { nonce = Bytes.of_string "auditor-7" }) with
  | V.Idcb.Resp_quote qb ->
      let q = Option.get (V.Vtpm.quote_of_bytes qb) in
      Printf.printf "   quote verifies: %b (PCR0 = %s...)\n"
        (V.Vtpm.verify_quote ~public:(V.Vtpm.quote_public_key sys.V.Boot.vtpm) q)
        (String.sub (Veil_crypto.Sha256.hex_of_digest q.V.Vtpm.q_pcrs.(0)) 0 16)
  | _ -> failwith "quote");

  step "tier 2: a two-enclave pipeline over shared memory (no SFI needed)";
  let stage1 =
    match Rt.create sys ~binary:(Bytes.make 4096 'A') (Kern.spawn kernel) with
    | Ok rt -> rt
    | Error e -> failwith e
  in
  let stage2 =
    match Rt.create sys ~binary:(Bytes.make 4096 'B') (Kern.spawn kernel) with
    | Ok rt -> rt
    | Error e -> failwith e
  in
  let buf_va = Rt.heap_base stage1 in
  Rt.run stage1 (fun rt ->
      Rt.write_data rt ~va:buf_va (Bytes.of_string "card=4111-....-1111     ");
      match
        V.Encsvc.share_region sys.V.Boot.enc sys.V.Boot.vcpu ~owner:(Rt.enclave stage1)
          ~peer:(Rt.enclave stage2) ~va:buf_va ~npages:1
      with
      | Ok () -> ()
      | Error e -> failwith e);
  Rt.run stage2 (fun rt ->
      (* stage 2 tokenizes the PAN in place, reading through its own
         protected tables *)
      let data = Rt.read_data rt ~va:buf_va ~len:24 in
      let token = Veil_crypto.Sha256.hex_of_digest (Veil_crypto.Sha256.digest_bytes data) in
      Rt.write_data rt ~va:buf_va (Bytes.of_string ("tok=" ^ String.sub token 0 16 ^ "    ")));
  Rt.run stage1 (fun rt ->
      Printf.printf "   stage 1 reads back: %s\n" (Bytes.to_string (Rt.read_data rt ~va:buf_va ~len:24)));

  step "tier 2+: the tokenizer flushes its audit trail with batched syscalls";
  Rt.run stage2 (fun rt ->
      let fd =
        match Rt.ocall rt S.Open [ K.Str "/tmp/tokens.log"; K.Int (0x40 lor 1 lor 0x400); K.Int 0o600 ] with
        | K.RInt fd -> fd
        | _ -> failwith "open"
      in
      let st = Rt.stats rt in
      let exits0 = st.Rt.enclave_exits in
      ignore
        (Rt.ocall_batch rt
           (List.init 12 (fun i ->
                (S.Write, [ K.Int fd; K.Buf (Bytes.of_string (Printf.sprintf "token-%d\n" i)) ]))));
      Printf.printf "   12 writes, %d enclave exit(s) (batching, §10)\n" (st.Rt.enclave_exits - exits0));

  step "tier 2++: a second enclave thread runs on a hotplugged VCPU";
  (match (Kern.hooks kernel).Guest_kernel.Hooks.h_vcpu_boot ~vcpu_id:1 with
  | Ok () -> ()
  | Error e -> failwith e);
  let vcpu1 = List.nth (Sevsnp.Platform.vcpus sys.V.Boot.platform) 1 in
  Rt.run_on stage2 vcpu1 (fun rt ->
      Printf.printf "   thread on vcpu1 at %s sees the shared buffer: %s\n"
        (V.Privdom.to_string (V.Privdom.of_vmpl (Sevsnp.Vcpu.vmpl vcpu1)))
        (Bytes.to_string (Rt.read_data rt ~va:buf_va ~len:20)));

  print_endline "\ntiered_security complete: one CVM, protection exactly where it is needed."
