(* Quickstart: boot a Veil CVM, attest it from a remote user, run a
   sensitive computation inside a VeilS-ENC enclave, and watch the
   compromised OS fail to peek.

   Run with: dune exec examples/quickstart.exe *)

module Boot = Veil_core.Boot
module Rt = Enclave_sdk.Runtime
module Libc = Enclave_sdk.Libc

let step fmt = Printf.printf ("\n== " ^^ fmt ^^ "\n%!")

let () =
  step "1. The cloud provider launches the measured Veil boot image";
  let sys = Boot.boot_veil () in
  Printf.printf "   boot took %.1f ms of guest time; kernel runs at %s\n"
    (1000.0 *. Sevsnp.Cycles.seconds_of_cycles sys.Boot.boot_cycles)
    (Veil_core.Privdom.to_string (Veil_core.Privdom.of_vmpl (Sevsnp.Vcpu.vmpl sys.Boot.vcpu)));

  step "2. A remote user attests the CVM and opens a secure channel to VeilMon";
  let platform_pk = Sevsnp.Attestation.platform_public_key sys.Boot.platform.Sevsnp.Platform.attestation in
  let expected =
    Sevsnp.Attestation.launch_measurement sys.Boot.platform.Sevsnp.Platform.attestation
  in
  let user =
    Veil_core.Channel.create (Veil_crypto.Rng.create 1) ~platform_public:platform_pk
      ~expected_launch:expected
  in
  (match Veil_core.Channel.connect user sys.Boot.mon sys.Boot.vcpu with
  | Ok () -> print_endline "   attestation passed: VMPL-0 report, expected launch measurement"
  | Error e -> failwith (Veil_core.Channel.error_to_string e));

  step "3. The user's program is installed in an enclave (ioctl to /dev/veil)";
  let proc = Guest_kernel.Kernel.spawn sys.Boot.kernel in
  let binary = Bytes.of_string (String.init 8000 (fun i -> Char.chr (33 + (i mod 90)))) in
  let rt = match Rt.create sys ~binary proc with Ok rt -> rt | Error e -> failwith e in
  let expected_meas =
    Veil_core.Encsvc.measure_expected ~binary ~npages_heap:16 ~npages_stack:4
      ~base_va:Guest_kernel.Process.enclave_base
  in
  Printf.printf "   enclave measurement matches the user's local computation: %b\n"
    (Bytes.equal (Rt.measurement rt) expected_meas);

  step "4. The enclave computes over a secret and uses redirected system calls";
  Rt.run rt (fun rt ->
      let secret = "the launch codes are 0000" in
      let heap = Rt.heap_base rt in
      Rt.write_data rt ~va:heap (Bytes.of_string secret);
      (* hash it inside the enclave and publish only the digest *)
      Rt.compute rt (Sevsnp.Cycles.hash_cost (String.length secret));
      let digest = Veil_crypto.Sha256.digest_string secret in
      match Libc.open_ rt "/tmp/digest.txt" ~flags:(Libc.o_creat lor Libc.o_wronly) ~mode:0o644 with
      | Ok fd ->
          ignore (Libc.write rt fd (Bytes.of_string (Veil_crypto.Sha256.hex_of_digest digest)));
          ignore (Libc.close rt fd);
          Libc.printf rt "enclave: published digest, secret never left\n"
      | Error e -> failwith (Guest_kernel.Ktypes.errno_to_string e));
  let st = Rt.stats rt in
  Printf.printf "   ocalls=%d enclave exits=%d redirected bytes=%d\n" st.Rt.ocalls st.Rt.enclave_exits
    st.Rt.redirect_bytes;

  step "5. The (now compromised) OS tries to read the enclave's secret";
  let frame =
    Option.get (Veil_core.Encsvc.resident_frame (Rt.enclave rt) (Rt.heap_base rt))
  in
  (try
     ignore
       (Sevsnp.Platform.read sys.Boot.platform sys.Boot.vcpu (Sevsnp.Types.gpa_of_gpfn frame) 32);
     print_endline "   !!! the OS read the secret (this must never print)"
   with Sevsnp.Types.Npf info ->
     Printf.printf "   blocked by the hardware: %s\n" (Format.asprintf "%a" Sevsnp.Types.pp_npf info));
  print_endline "\nquickstart complete: the CVM halted on the intrusion, the secret stayed sealed."
