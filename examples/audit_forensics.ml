(* Forensics with VeilS-LOG: an attacker compromises the kernel and
   scrubs the in-kernel audit trail — but the execute-ahead protected
   copy in Dom_SEC still tells the story, retrieved over VeilMon's
   authenticated channel (§6.3).

   Run with: dune exec examples/audit_forensics.exe *)

module Boot = Veil_core.Boot
module K = Guest_kernel.Ktypes
module S = Guest_kernel.Sysno
module Kern = Guest_kernel.Kernel

let step fmt = Printf.printf ("\n== " ^^ fmt ^^ "\n%!")

let contains line needle =
  let n = String.length needle in
  let rec go i = i + n <= String.length line && (String.sub line i n = needle || go (i + 1)) in
  go 0

let () =
  step "boot; enable the forensic audit ruleset (§9.2's CS3 rules)";
  let sys = Boot.boot_veil () in
  let kernel = sys.Boot.kernel in
  Guest_kernel.Audit.set_rules (Kern.audit kernel) Guest_kernel.Sysno.audit_default_ruleset;

  step "normal activity, then the attack unfolds";
  let proc = Kern.spawn kernel in
  let sysc s a = ignore (Kern.invoke kernel proc s a) in
  sysc S.Open [ K.Str "/etc/passwd"; K.Int 0x42; K.Int 0o644 ];
  sysc S.Connect
    [ K.Int (match Kern.invoke kernel proc S.Socket [ K.Int 2; K.Int 1; K.Int 0 ] with
             | K.RInt fd -> fd | _ -> -1);
      K.Int 4444 ] (* fails: nothing listens — the C2 callback attempt *);
  sysc S.Setuid [ K.Int 0 ];
  sysc S.Execve [ K.Str "/tmp/rootkit-dropper" ];
  Printf.printf "   %d events captured ahead of execution\n"
    (Veil_core.Slog.count sys.Boot.slog);

  step "the attacker (now root in a compromised kernel) scrubs kaudit";
  let audit = Kern.audit kernel in
  List.iter
    (fun r ->
      ignore
        (Guest_kernel.Audit.tamper audit ~seq:r.Guest_kernel.Audit.seq
           ~detail:"uid=1000 a0=\"/bin/ls\" (nothing to see here)"))
    (Guest_kernel.Audit.records audit);
  print_endline "   every in-kernel record rewritten";
  (* ...and tries to hit the protected store directly *)
  (try
     Sevsnp.Platform.write sys.Boot.platform sys.Boot.vcpu
       (Sevsnp.Types.gpa_of_gpfn sys.Boot.layout.Veil_core.Layout.log_region.Veil_core.Layout.lo)
       (Bytes.make 64 '\000');
     print_endline "   !!! protected log overwritten (must never print)"
   with Sevsnp.Types.Npf _ ->
     print_endline "   direct overwrite of the Dom_SEC log region -> #NPF, CVM halts");

  step "the investigator retrieves the protected log on a healthy replica";
  (* boot the same image again: the halted CVM is gone, but in practice
     the log region would be retrieved before/at the crash; we replay
     the same activity to show the channel path end-to-end *)
  let sys = Boot.boot_veil () in
  let kernel = sys.Boot.kernel in
  Guest_kernel.Audit.set_rules (Kern.audit kernel) Guest_kernel.Sysno.audit_default_ruleset;
  let proc = Kern.spawn kernel in
  let sysc s a = ignore (Kern.invoke kernel proc s a) in
  sysc S.Open [ K.Str "/etc/passwd"; K.Int 0x42; K.Int 0o644 ];
  sysc S.Setuid [ K.Int 0 ];
  sysc S.Execve [ K.Str "/tmp/rootkit-dropper" ];
  let pk = Sevsnp.Attestation.platform_public_key sys.Boot.platform.Sevsnp.Platform.attestation in
  let user =
    Veil_core.Channel.create (Veil_crypto.Rng.create 9) ~platform_public:pk
      ~expected_launch:(Sevsnp.Attestation.launch_measurement sys.Boot.platform.Sevsnp.Platform.attestation)
  in
  (match Veil_core.Channel.connect user sys.Boot.mon sys.Boot.vcpu with
  | Ok () -> ()
  | Error e -> failwith (Veil_core.Channel.error_to_string e));
  (match Veil_core.Channel.fetch_logs user sys.Boot.slog sys.Boot.vcpu with
  | Ok lines ->
      Printf.printf "   %d hash-chain-verified lines retrieved; the attack trail:\n" (List.length lines);
      List.iter
        (fun l -> if contains l "execve" || contains l "setuid" then Printf.printf "     %s\n" l)
        lines
  | Error e -> failwith (Veil_core.Channel.error_to_string e));
  print_endline "\naudit_forensics complete: tampering was useless against the protected log."
