(* The E4 per-syscall redirection benches (Fig. 4 / Table 3), shared
   between `bench e4` and `veilctl report` so both regenerate the same
   table from identical workloads. *)

type t = { sb_name : string; sb_paper : float; sb_run : Env.t -> unit }

let all : t list =
  let b name paper run = { sb_name = name; sb_paper = paper; sb_run = run } in
  [
    b "open" 5.8 (fun env ->
        let fd = Env.open_ env "/tmp/bench.txt" ~flags:Env.o_rdwr ~mode:0o644 in
        Env.close env fd);
    b "read" 4.2 (fun env ->
        let fd = Env.open_ env "/srv/bench-10k.dat" ~flags:Env.o_rdonly ~mode:0 in
        ignore (Env.read env fd 10240);
        Env.close env fd);
    b "write" 4.3 (fun env ->
        let fd = Env.open_ env "/tmp/bench-out.dat" ~flags:(Env.o_creat lor Env.o_wronly) ~mode:0o644 in
        ignore (Env.write env fd (Bytes.create 10240));
        Env.close env fd);
    b "mmap" 4.6 (fun env -> ignore (Env.mmap_anon env ~len:10240));
    b "munmap" 7.1 (fun env ->
        let va = Env.mmap_anon env ~len:10240 in
        Env.munmap env ~va ~len:10240);
    b "socket" 5.2 (fun env ->
        let fd = Env.socket env in
        Env.close env fd);
    b "printf" 3.3 (fun env -> Env.console env "Hello World!\n");
  ]

let workload_of ?(iterations = 400) sb =
  Workload.make ~name:sb.sb_name
    ~setup:(fun ctx ->
      let fd =
        Env.open_ ctx.Workload.client "/srv/bench-10k.dat"
          ~flags:(Env.o_creat lor Env.o_wronly) ~mode:0o644
      in
      ignore (Env.write ctx.Workload.client fd (Bytes.create 10240));
      Env.close ctx.Workload.client fd;
      let fd2 =
        Env.open_ ctx.Workload.client "/tmp/bench.txt" ~flags:(Env.o_creat lor Env.o_wronly)
          ~mode:0o644
      in
      Env.close ctx.Workload.client fd2)
    (fun ctx ->
      for _ = 1 to iterations do
        sb.sb_run ctx.Workload.env
      done)
