module C = Sevsnp.Cycles
module K = Guest_kernel.Kernel

type mode = Native | Veil_background | Enclave | Kaudit | Veils_log

let mode_to_string = function
  | Native -> "native"
  | Veil_background -> "veil"
  | Enclave -> "enclave"
  | Kaudit -> "kaudit"
  | Veils_log -> "veils-log"

type stats = {
  mode : mode;
  workload : string;
  vcpus : int;
  cycles : int;
  seconds : float;
  compute_cycles : int;
  kernel_cycles : int;
  switch_cycles : int;
  copy_cycles : int;
  monitor_cycles : int;
  crypto_cycles : int;
  io_cycles : int;
  syscalls : int;
  vm_exits : int;
  domain_switches : int;
  audit_records : int;
  log_appends : int;
  enclave : Enclave_sdk.Runtime.stats option;
}

let tick_period = C.freq_hz / 250

(* A native environment on [kernel]/[proc], with timer interrupts
   injected at 250 Hz of guest time. *)
let native_env ?(rings = false) kernel proc hv vcpu rng =
  let last_tick = ref (Sevsnp.Vcpu.rdtsc vcpu) in
  let tick () =
    let now = Sevsnp.Vcpu.rdtsc vcpu in
    if now - !last_tick >= tick_period then begin
      last_tick := now;
      Hypervisor.Hv.inject_interrupt hv vcpu
    end
  in
  {
    Env.sys =
      (fun s a ->
        let r = K.invoke kernel proc s a in
        tick ();
        r);
    compute =
      (fun n ->
        Sevsnp.Vcpu.charge vcpu C.Compute n;
        tick ());
    env_rng = rng;
    env_rings = rings;
  }

type guest = {
  g_kernel : K.t;
  g_hv : Hypervisor.Hv.t;
  g_vcpu : Sevsnp.Vcpu.t;
  g_veil : Veil_core.Boot.veil_system option;
}

let boot_guest ~npages ~seed mode =
  match mode with
  | Native ->
      let n = Veil_core.Boot.boot_native ~npages ~seed () in
      {
        g_kernel = n.Veil_core.Boot.n_kernel;
        g_hv = n.Veil_core.Boot.n_hv;
        g_vcpu = n.Veil_core.Boot.n_vcpu;
        g_veil = None;
      }
  | Veil_background | Enclave | Kaudit | Veils_log ->
      let v = Veil_core.Boot.boot_veil ~npages ~seed () in
      {
        g_kernel = v.Veil_core.Boot.kernel;
        g_hv = v.Veil_core.Boot.hv;
        g_vcpu = v.Veil_core.Boot.vcpu;
        g_veil = Some v;
      }

let snapshot vcpu = Array.map (fun b -> C.read_bucket vcpu.Sevsnp.Vcpu.counter b)
    [| C.Compute; C.Switch; C.Copy; C.Kernel; C.Monitor; C.Crypto; C.Io; C.Other |]

let run ?(scale = 1) ?(seed = 97) ?(npages = Veil_core.Boot.default_npages) ?(rings = false)
    ?on_boot mode (w : Workload.t) =
  let guest = boot_guest ~npages ~seed mode in
  (* Veil-Ring opt-in: only meaningful under a monitor; native mode has
     no VeilMon to batch calls into. *)
  let rings = rings && guest.g_veil <> None in
  (match guest.g_veil with
  | Some v when rings -> Veil_core.Boot.enable_rings v ()
  | _ -> ());
  (match on_boot with
  | Some f -> f (Hypervisor.Hv.platform guest.g_hv)
  | None -> ());
  let kernel = guest.g_kernel and hv = guest.g_hv and vcpu = guest.g_vcpu in
  let rng = Veil_crypto.Rng.create (seed * 7919) in
  let client_proc = K.spawn kernel in
  let client_env = native_env ~rings kernel client_proc hv vcpu (Veil_crypto.Rng.split rng) in
  (* Audit configuration (Fig. 6 modes). *)
  (match mode with
  | Kaudit | Veils_log ->
      Guest_kernel.Audit.set_rules (K.audit kernel) Guest_kernel.Sysno.audit_default_ruleset;
      K.set_audit_protection kernel (mode = Veils_log)
  | Native | Veil_background | Enclave -> ());
  let setup_ctx =
    { Workload.env = client_env; client = client_env; rng = Veil_crypto.Rng.split rng; scale }
  in
  w.Workload.setup setup_ctx;
  (* Build the measured environment. *)
  let run_body () =
    match mode with
    | Enclave ->
        let veil = Option.get guest.g_veil in
        let proc = K.spawn kernel in
        let binary = Veil_crypto.Rng.bytes rng 16384 in
        let rt =
          match Enclave_sdk.Runtime.create veil ~heap_pages:24 ~stack_pages:4 ~binary proc with
          | Ok rt -> rt
          | Error e -> failwith ("driver: " ^ e)
        in
        let env =
          {
            Env.sys = (fun s a -> Enclave_sdk.Runtime.ocall rt s a);
            compute = (fun n -> Enclave_sdk.Runtime.compute rt n);
            env_rng = Veil_crypto.Rng.split rng;
            env_rings = rings;
          }
        in
        let ctx = { Workload.env; client = client_env; rng = Veil_crypto.Rng.split rng; scale } in
        Enclave_sdk.Runtime.run rt (fun _ -> w.Workload.body ctx);
        Some (Enclave_sdk.Runtime.stats rt)
    | Native | Veil_background | Kaudit | Veils_log ->
        let proc = K.spawn kernel in
        let env = native_env ~rings kernel proc hv vcpu (Veil_crypto.Rng.split rng) in
        let ctx = { Workload.env; client = client_env; rng = Veil_crypto.Rng.split rng; scale } in
        w.Workload.body ctx;
        None
  in
  let before = snapshot vcpu in
  let exits0 = vcpu.Sevsnp.Vcpu.exits in
  let syscalls0 = K.syscalls_invoked kernel in
  let switches0 = (Hypervisor.Hv.stats hv).Hypervisor.Hv.domain_switches in
  let audit0 = Guest_kernel.Audit.count (K.audit kernel) in
  let log0 =
    match guest.g_veil with
    | Some v -> (Veil_core.Slog.stats v.Veil_core.Boot.slog).Veil_core.Slog.appended
    | None -> 0
  in
  let enclave_stats = run_body () in
  (* Window barrier: deferred ring traffic is part of the measured run
     and must land before the counters and log totals are read. *)
  (match guest.g_veil with
  | Some v when rings -> Veil_core.Boot.flush_rings v
  | _ -> ());
  let after = snapshot vcpu in
  let d i = after.(i) - before.(i) in
  let cycles = Array.fold_left ( + ) 0 (Array.init 8 d) in
  {
    mode;
    workload = w.Workload.name;
    vcpus = w.Workload.vcpus;
    cycles;
    seconds = C.seconds_of_cycles cycles;
    compute_cycles = d 0;
    switch_cycles = d 1;
    copy_cycles = d 2;
    kernel_cycles = d 3;
    monitor_cycles = d 4;
    crypto_cycles = d 5;
    io_cycles = d 6;
    syscalls = K.syscalls_invoked kernel - syscalls0;
    vm_exits = vcpu.Sevsnp.Vcpu.exits - exits0;
    domain_switches = (Hypervisor.Hv.stats hv).Hypervisor.Hv.domain_switches - switches0;
    audit_records = Guest_kernel.Audit.count (K.audit kernel) - audit0;
    log_appends =
      (match guest.g_veil with
      | Some v -> (Veil_core.Slog.stats v.Veil_core.Boot.slog).Veil_core.Slog.appended - log0
      | None -> 0);
    enclave = enclave_stats;
  }

let overhead_pct ~baseline s =
  100.0 *. (float_of_int s.cycles -. float_of_int baseline.cycles) /. float_of_int baseline.cycles

let rate_per_second s events =
  if s.seconds <= 0.0 then 0.0 else float_of_int (events * s.vcpus) /. s.seconds
