(** Benchmark driver: run a workload in one of the paper's measurement
    configurations on a freshly booted guest and collect the cycle
    accounting needed to regenerate §9's tables and figures. *)

type mode =
  | Native  (** native CVM, kernel at VMPL-0 (the baseline) *)
  | Veil_background  (** Veil CVM, no protected service in use (§9.1) *)
  | Enclave  (** program shielded by VeilS-ENC (Fig. 4/5) *)
  | Kaudit  (** in-memory kaudit rules active, no protection (Fig. 6) *)
  | Veils_log  (** kaudit + VeilS-LOG execute-ahead capture (Fig. 6) *)

val mode_to_string : mode -> string

type stats = {
  mode : mode;
  workload : string;
  vcpus : int;
  cycles : int;
  seconds : float;  (** guest time at 2.4 GHz *)
  compute_cycles : int;
  kernel_cycles : int;
  switch_cycles : int;
  copy_cycles : int;
  monitor_cycles : int;
  crypto_cycles : int;
  io_cycles : int;
  syscalls : int;
  vm_exits : int;
  domain_switches : int;
  audit_records : int;
  log_appends : int;  (** VeilS-LOG appends *)
  enclave : Enclave_sdk.Runtime.stats option;
}

val run :
  ?scale:int ->
  ?seed:int ->
  ?npages:int ->
  ?rings:bool ->
  ?on_boot:(Sevsnp.Platform.t -> unit) ->
  mode ->
  Workload.t ->
  stats
(** Boot a fresh guest, run setup natively, then the workload body in
    the requested configuration, measuring only the body.  [rings]
    (default false) opts the run into Veil-Ring batched submission
    rings (ignored in [Native] mode, which has no monitor); deferred
    traffic is flushed before the final counters are read, and the
    workload's {!Env.t} carries [env_rings = true].  [on_boot] runs
    right after boot, before any workload setup — e.g. to enable the
    platform tracer or grab its metrics registry. *)

val overhead_pct : baseline:stats -> stats -> float
(** Percentage slowdown versus the baseline run. *)

val rate_per_second : stats -> int -> float
(** [rate_per_second s events] scaled to the workload's VCPU count
    (the paper reports whole-machine event rates). *)
