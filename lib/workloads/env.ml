module K = Guest_kernel.Ktypes
module S = Guest_kernel.Sysno

type t = {
  sys : S.t -> K.arg list -> K.ret;
  compute : int -> unit;
  env_rng : Veil_crypto.Rng.t;
  env_rings : bool;
}

exception Sys_error of K.errno * string

let fail e ctx = raise (Sys_error (e, ctx))

let o_rdonly = 0
let o_wronly = 1
let o_rdwr = 2
let o_creat = 0x40
let o_trunc = 0x200
let o_append = 0x400

let int_ret ctx = function
  | K.RInt n -> n
  | K.RErr e -> fail e ctx
  | _ -> fail K.EINVAL ctx

let buf_ret ctx = function
  | K.RBuf b -> b
  | K.RErr e -> fail e ctx
  | _ -> fail K.EINVAL ctx

let unit_ret ctx r = ignore (int_ret ctx r)

let open_ t path ~flags ~mode = int_ret ("open " ^ path) (t.sys S.Open [ K.Str path; K.Int flags; K.Int mode ])

let close t fd = unit_ret "close" (t.sys S.Close [ K.Int fd ])

let read t fd len = buf_ret "read" (t.sys S.Read [ K.Int fd; K.Int len ])

let write t fd data = int_ret "write" (t.sys S.Write [ K.Int fd; K.Buf data ])

let pread t fd ~len ~pos = buf_ret "pread" (t.sys S.Pread64 [ K.Int fd; K.Int len; K.Int pos ])

let pwrite t fd data ~pos = int_ret "pwrite" (t.sys S.Pwrite64 [ K.Int fd; K.Buf data; K.Int pos ])

let lseek_end t fd = int_ret "lseek" (t.sys S.Lseek [ K.Int fd; K.Int 0; K.Int 2 ])

let fsync t fd = unit_ret "fsync" (t.sys S.Fsync [ K.Int fd ])

let unlink t path = unit_ret ("unlink " ^ path) (t.sys S.Unlink [ K.Str path ])

let rename t a b = unit_ret "rename" (t.sys S.Rename [ K.Str a; K.Str b ])

let mkdir t path = unit_ret ("mkdir " ^ path) (t.sys S.Mkdir [ K.Str path; K.Int 0o755 ])

let stat_size t path =
  match t.sys S.Stat [ K.Str path ] with
  | K.RStat s -> s.K.st_size
  | K.RErr e -> fail e ("stat " ^ path)
  | _ -> fail K.EINVAL "stat"

let file_exists t path = match t.sys S.Access [ K.Str path ] with K.RInt 0 -> true | _ -> false

let truncate t path len = unit_ret "truncate" (t.sys S.Truncate [ K.Str path; K.Int len ])

let socket t = int_ret "socket" (t.sys S.Socket [ K.Int 2; K.Int 1; K.Int 0 ])

let bind t fd ~port = unit_ret "bind" (t.sys S.Bind [ K.Int fd; K.Int port ])

let listen t fd ~backlog = unit_ret "listen" (t.sys S.Listen [ K.Int fd; K.Int backlog ])

let accept t fd =
  match t.sys S.Accept [ K.Int fd ] with
  | K.RInt n -> Some n
  | K.RErr K.EAGAIN -> None
  | K.RErr e -> fail e "accept"
  | _ -> fail K.EINVAL "accept"

let connect t fd ~port = unit_ret "connect" (t.sys S.Connect [ K.Int fd; K.Int port ])

let send t fd data = int_ret "send" (t.sys S.Sendto [ K.Int fd; K.Buf data ])

let recv t fd len =
  match t.sys S.Recvfrom [ K.Int fd; K.Int len ] with
  | K.RBuf b -> Some b
  | K.RErr K.EAGAIN -> None
  | K.RErr e -> fail e "recv"
  | _ -> fail K.EINVAL "recv"

let mmap_anon t ~len =
  int_ret "mmap" (t.sys S.Mmap [ K.Int 0; K.Int len; K.Int 3; K.Int 0x22; K.Int (-1); K.Int 0 ])

let munmap t ~va ~len = unit_ret "munmap" (t.sys S.Munmap [ K.Int va; K.Int len ])

let getrandom t len = buf_ret "getrandom" (t.sys S.Getrandom [ K.Int len ])

let getpid t = int_ret "getpid" (t.sys S.Getpid [])

let console t s =
  let fd = open_ t "/dev/console" ~flags:o_wronly ~mode:0o644 in
  ignore (write t fd (Bytes.of_string s));
  close t fd
