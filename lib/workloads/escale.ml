(* E-scale measurement harness (see the .mli).  Extracted from bench
   so veilctl's scope/report commands regenerate exactly the numbers
   the bench tables print. *)

module C = Sevsnp.Cycles
module K = Guest_kernel.Ktypes
module S = Guest_kernel.Sysno
module Kern = Guest_kernel.Kernel
module Smp = Veil_core.Smp
module Sch = Guest_kernel.Sched
module V = Sevsnp.Vcpu
module P = Sevsnp.Platform

type result = {
  es_ops : int;
  es_wall : int;
  es_busy : int;
  es_mon : int;
  es_prof_mon_self : int;
  es_prof_mon_hits : int;
  es_steals : int;
  es_journal : string;
  es_wait : Veil_core.Monitor.wait_stats;
}

let inter_seed = 1911

let vcpu_counts () =
  (* the monitor's IDCB region provisions at most 8 VCPUs *)
  let wanted =
    match Sys.getenv_opt "VEIL_ESCALE_VCPUS" with
    | Some s -> List.filter_map int_of_string_opt (String.split_on_char ',' s)
    | None -> [ 1; 2; 4; 8 ]
  in
  match List.filter (fun n -> n >= 1 && n <= 8) wanted with
  | [] -> [ 1 ]
  | l -> List.sort_uniq compare l

let throughput r = float_of_int r.es_ops /. C.seconds_of_cycles r.es_wall

let serialized_pct r =
  if r.es_busy = 0 then 0.0
  else 100.0 *. float_of_int r.es_wait.Veil_core.Monitor.ws_busy_cycles /. float_of_int r.es_busy

let amdahl_ceiling ~serial_frac ~nvcpus =
  if serial_frac > 0.0 then 1.0 /. (serial_frac +. ((1.0 -. serial_frac) /. float_of_int nvcpus))
  else float_of_int nvcpus

(* Default SLO for pulse-armed runs: 95% of syscalls at or under
   2^14 - 1 cycles per trailing 8-interval window.  Plain getpid and
   unaudited I/O land well under this; the audited Sendto reply path
   (log append through VeilMon) lands above it, so the http workload
   burns real error budget and the report is non-trivial. *)
let slo_good_below = (1 lsl 14) - 1
let slo_target = 0.95
let slo_window = 8

let measure ?(trace = false) ?(rings = false) ?pulse ~nvcpus ~seed ~spawn_work () =
  let sys = Veil_core.Boot.boot_veil ~npages:4096 ~seed () in
  let prof = sys.Veil_core.Boot.platform.P.profiler in
  Obs.Profiler.set_enabled prof true;
  let smp =
    Smp.bring_up ~policy:(Hypervisor.Hv.Interleave.Seeded inter_seed) sys ~nvcpus ()
  in
  (* Veil-Ring opt-in: enabled after AP bring-up so every VCPU gets a
     ring, before the window so the batching is what gets measured. *)
  if rings then Veil_core.Boot.enable_rings sys ();
  (* Measurement window starts here: boot and AP bring-up traffic must
     not pollute the serialized-monitor ledger. *)
  Veil_core.Monitor.reset_wait_ledger sys.Veil_core.Boot.mon;
  (* Veil-Pulse opt-in: armed at window start so interval 0 opens on
     the first measured exit; the pulse-off path touches nothing. *)
  (match pulse with
  | Some interval ->
      let pu = sys.Veil_core.Boot.platform.P.pulse in
      Obs.Pulse.objective pu ~name:"syscall-latency" ~metric:"kernel.syscall_cycles"
        ~good_below:slo_good_below ~slo:slo_target ~window:slo_window;
      Obs.Pulse.arm pu ~interval ~now:(V.rdtsc (Smp.vcpu smp 0))
  | None -> ());
  if trace then begin
    Obs.Trace.clear sys.Veil_core.Boot.platform.P.tracer;
    Obs.Trace.set_enabled sys.Veil_core.Boot.platform.P.tracer true
  end;
  let counter i = (Smp.vcpu smp i).V.counter in
  let before = Array.init nvcpus (fun i -> C.total (counter i)) in
  let mon_before =
    Array.init nvcpus (fun i ->
        C.read_bucket (counter i) C.Monitor + C.read_bucket (counter i) C.Switch)
  in
  let ops = spawn_work sys smp in
  Smp.run smp;
  (* Window barrier: leftover ring slots are part of the measured
     work — drain them before reading the counters. *)
  if rings then Veil_core.Boot.flush_rings sys;
  let deltas = Array.init nvcpus (fun i -> C.total (counter i) - before.(i)) in
  let mon =
    Array.init nvcpus (fun i ->
        C.read_bucket (counter i) C.Monitor + C.read_bucket (counter i) C.Switch
        - mon_before.(i))
    |> Array.fold_left ( + ) 0
  in
  let wait = Veil_core.Monitor.wait_stats sys.Veil_core.Boot.mon in
  let prof_mon_self =
    Obs.Profiler.bucket_self prof "os_call" + Obs.Profiler.bucket_self prof "os_call_batch"
  in
  let prof_mon_hits =
    Obs.Profiler.bucket_hits prof "os_call" + Obs.Profiler.bucket_hits prof "os_call_batch"
  in
  (* Pulse epilogue, after every window counter and ledger is read:
     close the tail interval, stop sampling, then append every anchor
     to VeilS-LOG.  In-window sampling cost (Cycles.pulse_sample per
     capture) is part of the measurement; anchoring models the
     retrieval-time export and stays outside it. *)
  (match pulse with
  | Some _ ->
      let pu = sys.Veil_core.Boot.platform.P.pulse in
      let now =
        Array.init nvcpus (fun i -> V.rdtsc (Smp.vcpu smp i)) |> Array.fold_left max 0
      in
      Obs.Pulse.flush pu ~now;
      Obs.Pulse.disarm pu;
      ignore (Veil_core.Boot.anchor_pulse sys)
  | None -> ());
  ( {
      es_ops = ops;
      es_wall = Array.fold_left max 0 deltas;
      es_busy = Array.fold_left ( + ) 0 deltas;
      es_mon = mon;
      es_prof_mon_self = prof_mon_self;
      es_prof_mon_hits = prof_mon_hits;
      es_steals = Smp.steals smp;
      es_journal = Smp.journal smp;
      es_wait = wait;
    },
    sys )

(* Veil-Pulse per-interval timeseries of one measured run, as a JSON
   object — shared by the bench JSON document and [veilctl pulse
   --json] so the two never drift. *)
let pulse_json sys =
  let pu = sys.Veil_core.Boot.platform.P.pulse in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "{\"interval\":%d,\"captured\":%d,\"overwritten\":%d,\"intervals\":["
       (Obs.Pulse.interval_cycles pu) (Obs.Pulse.captured pu) (Obs.Pulse.overwritten pu));
  let first = Obs.Pulse.first_retained pu in
  for i = first to Obs.Pulse.captured pu - 1 do
    if i > first then Buffer.add_char buf ',';
    let t0, t1 = match Obs.Pulse.bounds pu i with Some b -> b | None -> (0, 0) in
    let n, p50, p99, p999 =
      match Obs.Pulse.hist_window pu ~metric:"kernel.syscall_cycles" ~window:1 ~upto:i with
      | Some (b, n, _) ->
          ( n,
            Obs.Pulse.wpercentile ~buckets:b 50.0,
            Obs.Pulse.wpercentile ~buckets:b 99.0,
            Obs.Pulse.wpercentile ~buckets:b 99.9 )
      | None -> (0, 0, 0, 0)
    in
    let exits =
      match Obs.Pulse.counter_delta pu ~metric:"platform.vmgexit" i with Some v -> v | None -> 0
    in
    Buffer.add_string buf
      (Printf.sprintf
         "{\"i\":%d,\"t0\":%d,\"t1\":%d,\"syscalls\":%d,\"p50\":%d,\"p99\":%d,\"p999\":%d,\
          \"vmgexits\":%d}"
         i t0 t1 n p50 p99 p999 exits)
  done;
  Buffer.add_string buf "],\"slo\":[";
  List.iteri
    (fun k (br : Obs.Pulse.burn_report) ->
      if k > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":\"%s\",\"metric\":\"%s\",\"good_below\":%d,\"slo\":%g,\"window\":%d,\
            \"total\":%d,\"bad\":%d,\"budget\":%g,\"burn\":%g,\"crossed\":%b,\"crossings\":%d}"
           (Obs.Metrics.json_escape br.Obs.Pulse.br_name)
           (Obs.Metrics.json_escape br.Obs.Pulse.br_metric)
           br.Obs.Pulse.br_good_below br.Obs.Pulse.br_slo br.Obs.Pulse.br_window
           br.Obs.Pulse.br_total br.Obs.Pulse.br_bad br.Obs.Pulse.br_budget br.Obs.Pulse.br_burn
           br.Obs.Pulse.br_crossed br.Obs.Pulse.br_crossings))
    (Obs.Pulse.burn_reports pu);
  Buffer.add_string buf "]}";
  Buffer.contents buf

let syscall_work ~ops_total sys smp =
  let kernel = sys.Veil_core.Boot.kernel in
  Guest_kernel.Audit.set_rules (Kern.audit kernel) [ S.Open ];
  let nv = Smp.nvcpus smp in
  let per = ops_total / nv in
  for w = 0 to nv - 1 do
    Smp.spawn ~vcpu:w smp ~name:(Printf.sprintf "sysbench-%d" w) (fun () ->
        let proc = Kern.spawn kernel in
        for i = 1 to per do
          (match Kern.invoke kernel proc S.Getpid [] with
          | K.RInt _ -> ()
          | r -> failwith (Format.asprintf "escale getpid: %a" K.pp_ret r));
          (if i mod 32 = 0 then
             match
               Kern.invoke kernel proc S.Open
                 [ K.Str (Printf.sprintf "/tmp/es-%d" w); K.Int 0x42; K.Int 0o644 ]
             with
             | K.RInt fd -> ignore (Kern.invoke kernel proc S.Close [ K.Int fd ])
             | r -> failwith (Format.asprintf "escale open: %a" K.pp_ret r));
          Sch.yield ()
        done)
  done;
  per * nv

let http_work ~requests sys smp =
  let kernel = sys.Veil_core.Boot.kernel in
  Guest_kernel.Audit.set_rules (Kern.audit kernel) [ S.Sendto ];
  let nv = Smp.nvcpus smp in
  (* One connection per VCPU once past 4, else the fixed 4 streams cap
     parallelism and 8 VCPUs can never beat 4 (strong scaling needs at
     least one stream per VCPU); counts <= 4 keep the historical 4
     streams so their schedules stay byte-identical. *)
  let nclients = max 4 nv in
  let per_client = requests / nclients in
  let port = 9300 in
  let body = Bytes.make 1024 'H' in
  Smp.spawn ~vcpu:0 smp ~name:"httpd" (fun () ->
      let proc = Kern.spawn kernel in
      let sys_ s a = Kern.invoke_blocking kernel proc s a in
      let srv =
        match sys_ S.Socket [ K.Int 2; K.Int 1; K.Int 0 ] with
        | K.RInt f -> f
        | _ -> failwith "escale http: socket"
      in
      ignore (sys_ S.Bind [ K.Int srv; K.Int port ]);
      ignore (sys_ S.Listen [ K.Int srv; K.Int 16 ]);
      for c = 0 to nclients - 1 do
        let conn =
          match sys_ S.Accept [ K.Int srv ] with
          | K.RInt f -> f
          | _ -> failwith "escale http: accept"
        in
        (* handler rides the connection's VCPU, not the listener's;
           the fd belongs to the listener's process, so the handler
           keeps issuing syscalls as that process *)
        Smp.spawn ~vcpu:(c mod nv) smp ~name:(Printf.sprintf "handler-%d" c) (fun () ->
            for _ = 1 to per_client do
              match sys_ S.Recvfrom [ K.Int conn; K.Int 256 ] with
              | K.RBuf b when Bytes.length b > 0 ->
                  (* request parsing + file lookup + response build *)
                  V.charge (Kern.vcpu kernel) C.Compute 30_000;
                  ignore (sys_ S.Sendto [ K.Int conn; K.Buf body ])
              | _ -> failwith "escale http: server recv"
            done)
      done);
  let served = ref 0 in
  for c = 0 to nclients - 1 do
    Smp.spawn ~vcpu:(c mod nv) smp ~name:(Printf.sprintf "client-%d" c) (fun () ->
        let proc = Kern.spawn kernel in
        let sys_ s a = Kern.invoke_blocking kernel proc s a in
        let fd =
          match sys_ S.Socket [ K.Int 2; K.Int 1; K.Int 0 ] with
          | K.RInt f -> f
          | _ -> failwith "escale http: client socket"
        in
        (* under SMP interleaving a client can run before the listener
           is up: retry the refused connect on the next slice *)
        let rec connect () =
          match sys_ S.Connect [ K.Int fd; K.Int port ] with
          | K.RInt _ -> ()
          | K.RErr K.ECONNREFUSED ->
              Sch.yield ();
              connect ()
          | r -> failwith (Format.asprintf "escale http: connect: %a" K.pp_ret r)
        in
        connect ();
        for r = 1 to per_client do
          (* client-side request build + TLS-ish work *)
          V.charge (Kern.vcpu kernel) C.Compute 90_000;
          ignore (sys_ S.Sendto [ K.Int fd; K.Buf (Bytes.of_string (Printf.sprintf "GET /%d" r)) ]);
          match sys_ S.Recvfrom [ K.Int fd; K.Int 2048 ] with
          | K.RBuf b when Bytes.length b = Bytes.length body -> incr served
          | _ -> failwith "escale http: bad reply"
        done)
  done;
  ignore served;
  nclients * per_client
