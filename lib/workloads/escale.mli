(** E-scale — strong-scaling SMP measurement harness (Veil-SMP, §5),
    shared by [bench escale], [veilctl scope], and [veilctl report]'s
    drift checks so all three regenerate the same numbers.

    Boots a Veil guest, brings up APs through the monitor's
    [R_vcpu_boot] protocol, runs a workload under the deterministic
    seeded interleaver, and accounts per-VCPU cycles — including the
    serialized-monitor wait ledger ({!Veil_core.Monitor.wait_stats}),
    which measures the slice the hw-amdahl column used to infer. *)

type result = {
  es_ops : int;
  es_wall : int;  (** max per-VCPU cycle delta: the simulated wall clock *)
  es_busy : int;  (** sum of per-VCPU deltas *)
  es_mon : int;  (** Monitor + Switch bucket cycles: work funneled through VeilMon *)
  es_prof_mon_self : int;  (** Veil-Prof: os_call frame self cycles *)
  es_prof_mon_hits : int;
  es_steals : int;
  es_journal : string;
  es_wait : Veil_core.Monitor.wait_stats;
      (** serialized-monitor entry ledger over the measurement window
          (boot and AP bring-up traffic excluded) *)
}

val inter_seed : int
(** Deterministic interleaver seed for every E-scale run (1911); the
    guest RNG follows the caller's seed, so the two axes of
    reproduction stay independent. *)

val vcpu_counts : unit -> int list
(** [1; 2; 4; 8], overridable via [VEIL_ESCALE_VCPUS] (clamped to the
    monitor's 8-VCPU IDCB provisioning). *)

val throughput : result -> float
(** ops per simulated second. *)

val serialized_pct : result -> float
(** Measured percent of total busy cycles that held the serialized
    monitor ([es_wait.ws_busy_cycles / es_busy]) — ground truth for the
    E-scale [serialized%] column. *)

val amdahl_ceiling : serial_frac:float -> nvcpus:int -> float
(** [1 / (s + (1-s)/N)]. *)

val slo_good_below : int
(** Default pulse-run SLO latency target: 95% of syscalls at or under
    [2^14 - 1] cycles per trailing {!slo_window}-interval window —
    audited appends through VeilMon land above this, so audit-heavy
    workloads burn visible error budget. *)

val slo_target : float
val slo_window : int

val measure :
  ?trace:bool ->
  ?rings:bool ->
  ?pulse:int ->
  nvcpus:int ->
  seed:int ->
  spawn_work:(Veil_core.Boot.veil_system -> Veil_core.Smp.t -> int) ->
  unit ->
  result * Veil_core.Boot.veil_system
(** Boot, bring up [nvcpus], reset the monitor wait ledger, spawn the
    workload (returns its op count), interleave to completion, account.
    [trace] (default false) additionally arms the platform tracer for
    the run — [veilctl scope] reads the ring afterwards.  [rings]
    (default false) enables Veil-Ring batched submission rings after
    AP bring-up, with a {!Veil_core.Boot.flush_rings} barrier before
    the counters are read.  [pulse] (default off) arms the Veil-Pulse
    sampler with the given interval (cycles) at window start, declares
    the default syscall-latency objective ({!slo_good_below}), and at
    window end closes the tail interval and anchors every captured
    interval into VeilS-LOG — read the series off
    [sys.platform.pulse]. *)

val pulse_json : Veil_core.Boot.veil_system -> string
(** Veil-Pulse per-interval timeseries of a measured run as one JSON
    object: [interval]/[captured]/[overwritten], an [intervals] array
    ([i], [t0], [t1], [syscalls], windowed [p50]/[p99]/[p999] of
    [kernel.syscall_cycles], [vmgexits]) and an [slo] array of burn
    reports.  Shared by the bench JSON document and
    [veilctl pulse --json]. *)

val syscall_work : ops_total:int -> Veil_core.Boot.veil_system -> Veil_core.Smp.t -> int
(** syscall-bench: a worker per VCPU splits [ops_total] getpid calls;
    every 32nd op is an audited open/close whose log append is an IDCB
    call into VeilMon — the serialized slice of the workload. *)

val http_work : requests:int -> Veil_core.Boot.veil_system -> Veil_core.Smp.t -> int
(** HTTP-server: one listener pinned to the boot VCPU accepts one
    connection per VCPU (minimum 4, so counts up to 4 keep their
    historical schedules) and spawns a handler per connection;
    handlers and clients are distributed over the VCPUs.  The response
    path is audited (Sendto), so every reply drags a log append
    through VeilMon. *)
