(** Execution environment abstraction for workload programs.

    A workload is written once against this interface and then run
    natively (direct syscalls), inside a VeilS-ENC enclave (redirected
    through the SDK), or under auditing — the same program text, three
    of the paper's measurement configurations. *)

type t = {
  sys : Guest_kernel.Sysno.t -> Guest_kernel.Ktypes.arg list -> Guest_kernel.Ktypes.ret;
  compute : int -> unit;  (** charge computation cycles *)
  env_rng : Veil_crypto.Rng.t;
  env_rings : bool;
      (** Veil-Ring opt-in: when true, fire-and-forget monitor traffic
          issued under this environment rides per-VCPU submission rings
          and may be observed late — readers of audit/log state must go
          through a {!Veil_core.Boot.flush_rings} barrier first. *)
}

exception Sys_error of Guest_kernel.Ktypes.errno * string

val fail : Guest_kernel.Ktypes.errno -> string -> 'a

(* Typed wrappers; all raise [Sys_error] on kernel errors. *)

val open_ : t -> string -> flags:int -> mode:int -> int
val close : t -> int -> unit
val read : t -> int -> int -> bytes
val write : t -> int -> bytes -> int
val pread : t -> int -> len:int -> pos:int -> bytes
val pwrite : t -> int -> bytes -> pos:int -> int
val lseek_end : t -> int -> int
val fsync : t -> int -> unit
val unlink : t -> string -> unit
val rename : t -> string -> string -> unit
val mkdir : t -> string -> unit
val stat_size : t -> string -> int
val file_exists : t -> string -> bool
val truncate : t -> string -> int -> unit

val socket : t -> int
val bind : t -> int -> port:int -> unit
val listen : t -> int -> backlog:int -> unit
val accept : t -> int -> int option
(** [None] when no pending connection (EAGAIN). *)

val connect : t -> int -> port:int -> unit
val send : t -> int -> bytes -> int
val recv : t -> int -> int -> bytes option
(** [None] on EAGAIN. *)

val mmap_anon : t -> len:int -> int
val munmap : t -> va:int -> len:int -> unit
val getrandom : t -> int -> bytes
val getpid : t -> int
val console : t -> string -> unit
(** Write a line to /dev/console (opens lazily per call — cheap in the
    simulated tty). *)

val o_rdonly : int
val o_wronly : int
val o_rdwr : int
val o_creat : int
val o_trunc : int
val o_append : int
