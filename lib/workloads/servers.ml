let prepare_docroot (ctx : Workload.ctx) ~file_kb ~nfiles =
  let client = ctx.Workload.client in
  if not (Env.file_exists client "/srv/www") then Env.mkdir client "/srv/www";
  for i = 0 to nfiles - 1 do
    let path = Printf.sprintf "/srv/www/file%d.html" i in
    let fd = Env.open_ client path ~flags:(Env.o_creat lor Env.o_wronly lor Env.o_trunc) ~mode:0o644 in
    ignore (Env.write client fd (Textgen.text ctx.Workload.rng (file_kb * 1024)));
    Env.close client fd
  done

let http_server_workload ~name ~vcpus ~port ~keepalive ~requests ~file_kb =
  Workload.make ~name ~vcpus
    ~setup:(fun ctx -> prepare_docroot ctx ~file_kb ~nfiles:16)
    (fun ctx ->
      let env = ctx.Workload.env and client = ctx.Workload.client in
      let server = Http.server_start env ~port ~docroot:"/srv/www" in
      if keepalive then Http.set_per_request_compute server 470_000;
      let n = requests * ctx.Workload.scale in
      let serve () = ignore (Http.serve_pending env server) in
      if keepalive then begin
        (* two workers' worth of persistent connections *)
        let per_conn = 64 in
        let remaining = ref n in
        while !remaining > 0 do
          let conn = Http.client_connect client ~port in
          (* server must accept the connection *)
          let accepted = ref None in
          (match Env.accept env (Http.listen_fd server) with
          | Some c -> accepted := Some c
          | None -> failwith "nginx: no pending connection");
          let server_conn = Option.get !accepted in
          let k = min per_conn !remaining in
          for i = 0 to k - 1 do
            let path = Printf.sprintf "/file%d.html" (i mod 16) in
            match
              Http.client_get_keepalive client ~conn_fd:conn ~server
                ~serve:(fun () -> ignore (Http.serve_on_connection env server ~conn_fd:server_conn))
                ~path
            with
            | Some body when Bytes.length body = file_kb * 1024 -> ()
            | Some _ -> failwith "nginx: short body"
            | None -> failwith "nginx: no response"
          done;
          Env.close client conn;
          Env.close env server_conn;
          remaining := !remaining - k
        done
      end
      else
        for i = 0 to n - 1 do
          let path = Printf.sprintf "/file%d.html" (i mod 16) in
          match Http.client_get client ~serve ~port ~path with
          | Some body when Bytes.length body = file_kb * 1024 -> ()
          | Some _ -> failwith (name ^ ": short body")
          | None -> failwith (name ^ ": no response")
        done)

let lighttpd ?(requests = 150) ?(file_kb = 10) () =
  http_server_workload ~name:"lighttpd" ~vcpus:1 ~port:8080 ~keepalive:false ~requests ~file_kb

let nginx ?(requests = 200) ?(file_kb = 10) () =
  http_server_workload ~name:"nginx" ~vcpus:2 ~port:8081 ~keepalive:true ~requests ~file_kb

(* --- memcached: text protocol over a persistent connection --- *)

let memcached ?(ops = 600) ?(value_bytes = 1024) () =
  Workload.make ~name:"memcached" ~vcpus:4 (fun ctx ->
      let env = ctx.Workload.env and client = ctx.Workload.client in
      let port = 11211 in
      let listen_fd = Env.socket env in
      Env.bind env listen_fd ~port;
      Env.listen env listen_fd ~backlog:32;
      let store = Mcache.create ~memory_limit:(1 lsl 20) () in
      let conn = Http.client_connect client ~port in
      let server_conn =
        match Env.accept env listen_fd with
        | Some c -> c
        | None -> failwith "memcached: no pending connection"
      in
      (* server: handle every queued command *)
      let serve () =
        let rec loop () =
          match Env.recv env server_conn 4096 with
          | None -> ()
          | Some req when Bytes.length req = 0 -> ()
          | Some req ->
              let lines = String.split_on_char '\n' (Bytes.to_string req) in
              List.iter
                (fun line ->
                  let line = String.trim line in
                  if line <> "" then begin
                    env.Env.compute 610_000 (* command parse, hash, LRU, slab bookkeeping *);
                    match String.split_on_char ' ' line with
                    | [ "get"; key ] -> (
                        match Mcache.get store key with
                        | Some v ->
                            (* writev: one submission for the whole reply *)
                            let reply =
                              Bytes.concat Bytes.empty
                                [
                                  Bytes.of_string (Printf.sprintf "VALUE %s 0 %d\r\n" key (Bytes.length v));
                                  v;
                                  Bytes.of_string "\r\nEND\r\n";
                                ]
                            in
                            ignore (Env.send env server_conn reply)
                        | None -> ignore (Env.send env server_conn (Bytes.of_string "END\r\n")))
                    | [ "set"; key; len ] ->
                        let n = int_of_string len in
                        env.Env.compute (400 + n);
                        Mcache.set store ~key ~value:(Veil_crypto.Rng.bytes env.Env.env_rng n) ();
                        ignore (Env.send env server_conn (Bytes.of_string "STORED\r\n"))
                    | [ "delete"; key ] ->
                        ignore (Mcache.delete store key);
                        ignore (Env.send env server_conn (Bytes.of_string "DELETED\r\n"))
                    | _ -> ignore (Env.send env server_conn (Bytes.of_string "ERROR\r\n"))
                  end)
                lines;
              loop ()
        in
        loop ()
      in
      let n = ops * ctx.Workload.scale in
      (* warm the store *)
      for i = 0 to 63 do
        ignore (Env.send client conn (Bytes.of_string (Printf.sprintf "set key%d %d\n" i value_bytes)));
        serve ();
        ignore (Env.recv client conn 256)
      done;
      (* 90:10 GET:SET *)
      for _ = 1 to n do
        let key = Printf.sprintf "key%d" (Veil_crypto.Rng.int ctx.Workload.rng 64) in
        if Veil_crypto.Rng.int ctx.Workload.rng 10 = 0 then begin
          ignore (Env.send client conn (Bytes.of_string (Printf.sprintf "set %s %d\n" key value_bytes)));
          serve ();
          ignore (Env.recv client conn 256)
        end
        else begin
          ignore (Env.send client conn (Bytes.of_string (Printf.sprintf "get %s\n" key)));
          serve ();
          ignore (Env.recv client conn 65536)
        end
      done;
      Env.close client conn;
      Env.close env server_conn;
      Env.close env listen_fd)

(* --- scheduler-driven concurrent HTTP serving --- *)

let lighttpd_concurrent ?(requests = 60) ?(clients = 3) ?(file_kb = 10) () =
  Workload.make ~name:"lighttpd-mt"
    ~setup:(fun ctx -> prepare_docroot ctx ~file_kb ~nfiles:8)
    (fun ctx ->
      let env = ctx.Workload.env in
      let sched =
        Guest_kernel.Sched.create
          ~on_context_switch:(fun () -> env.Env.compute 900)
            (* every failed readiness re-poll of a blocked coroutine
               costs cycles too — idle waiting is not free *)
          ~on_blocked_poll:(fun () -> env.Env.compute 120)
          ()
      in
      let total = requests * ctx.Workload.scale in
      let per_client = total / clients in
      let served = ref 0 in
      let port = 8090 in
      (* The measured server runs in [env]; load generators run in the
         client environment — all as coroutines over one guest. *)
      Guest_kernel.Sched.spawn sched ~name:"lighttpd" (fun () ->
          let server = Http.server_start env ~port ~docroot:"/srv/www" in
          Http.set_per_request_compute server 650_000;
          while !served < clients * per_client do
            match Env.accept env (Http.listen_fd server) with
            | Some conn ->
                if Http.serve_on_connection env server ~conn_fd:conn then incr served;
                Env.close env conn
            | None -> Guest_kernel.Sched.yield ()
          done);
      for c = 1 to clients do
        Guest_kernel.Sched.spawn sched
          ~name:(Printf.sprintf "ab-%d" c)
          (fun () ->
            let client = ctx.Workload.client in
            for i = 1 to per_client do
              let path = Printf.sprintf "/file%d.html" ((c + i) mod 8) in
              let fd = Http.client_connect client ~port in
              ignore
                (Env.send client fd (Bytes.of_string (Printf.sprintf "GET %s HTTP/1.0\r\n\r\n" path)));
              (* block until the server answered *)
              let got = ref None in
              while !got = None do
                match Env.recv client fd 65536 with
                | Some b when Bytes.length b > 0 -> got := Some b
                | _ -> Guest_kernel.Sched.yield ()
              done;
              Env.close client fd
            done)
      done;
      Guest_kernel.Sched.run sched;
      if !served < clients * per_client then failwith "lighttpd-mt: requests lost")
