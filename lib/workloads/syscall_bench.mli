(** The E4 per-syscall redirection benches (Fig. 4 / Table 3): one
    entry per popular syscall, shared between [bench e4] and
    [veilctl report] so both regenerate the table from the exact same
    workloads (deterministic given the same driver parameters). *)

type t = {
  sb_name : string;  (** table row name ("open", "read", ...) *)
  sb_paper : float;  (** paper-reported enclave/native slowdown *)
  sb_run : Env.t -> unit;  (** one iteration of the measured operation *)
}

val all : t list

val workload_of : ?iterations:int -> t -> Workload.t
(** Wrap one bench as a driver workload: setup creates the backing
    files, the body runs [iterations] (default 400) operations. *)
