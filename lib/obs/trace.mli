(** Veil-Trace — cycle-timestamped event tracing for the simulated
    SEV-SNP stack.

    A fixed-capacity ring buffer of typed events, each stamped with the
    owning VCPU's cycle counter and an attribution-bucket name.  The
    tracer is off by default; while disabled, {!emit} returns after a
    single flag test and allocates nothing, so instrumented hot paths
    (guarded with [if Trace.enabled tr then ...]) cost one branch.

    Events carry a Chrome-trace-style phase: instants, paired
    begin/end spans ({!span_begin}/{!span_end}), or complete spans with
    an explicit duration ({!complete}).  The buffer keeps the *newest*
    [capacity] events: once full, each new event overwrites the oldest.

    This module is deliberately free of simulator dependencies — cycle
    values, VCPU ids and VMPL indices arrive as plain ints, and bucket
    attribution as the bucket's name — so every layer (sevsnp,
    hypervisor, kernel, core, workloads) can emit into the same
    stream. *)

type wait_reason =
  | Runqueue  (** runnable but not stepped: sat on a runqueue behind other tasks *)
  | Monitor_serial
      (** queueing delay at the serialized VeilMon slice: a second
          VCPU's os_call arrived while one was being served *)
  | Shootdown_ack  (** TLB-shootdown initiator spinning for remote IPI acks *)
  | Blocked_poll  (** suspended on a [block_until] predicate that polled false *)
  | Relay  (** host-side relay leg of a domain switch (untrusted hypervisor) *)
  | Ring_flush
      (** queueing delay charged to a batched ring flush: the single
          serialized monitor entry that serves every slot of a
          submission ring in one Monitor+Switch leg (Veil-Ring) *)

type kind =
  | Vmgexit  (** world exit; [arg] 0 = VMGEXIT, 1 = automatic exit *)
  | Vmenter  (** re-entry on a VMSA; [vmpl] is the entered instance's *)
  | Domain_switch  (** full relayed switch; complete span, [arg] = target VMPL *)
  | Rmpadjust  (** [arg] = target gpfn *)
  | Pvalidate  (** [arg] = target gpfn *)
  | Npf  (** nested page fault; [arg] = faulting gpfn *)
  | Syscall  (** complete span; [arg] = syscall number *)
  | Enclave_enter
  | Enclave_exit
  | Audit_emit  (** protected audit append; [arg] = record bytes *)
  | Io  (** host I/O request; [arg] = bytes *)
  | Span of string  (** named software span (begin/end paired) *)
  | Wait of wait_reason
      (** wait edge: cycles a request spent *waiting* rather than
          working (complete span; [dur] = the wait) — the raw material
          for {!Critpath} wait-vs-work decomposition *)

type phase = Instant | Begin | End | Complete

type event = {
  ev_kind : kind;
  ev_phase : phase;
  ev_vcpu : int;
  ev_vmpl : int;  (** VMPL index 0-3 of the emitting instance; -1 unknown *)
  ev_ts : int;  (** VCPU cycle counter at emission (span start for Complete) *)
  ev_dur : int;  (** cycles covered; 0 unless [ev_phase = Complete] *)
  ev_bucket : string;  (** attribution bucket name; [""] = none *)
  ev_arg : int;  (** kind-specific detail (gpfn, sysno, bytes, ...) *)
  ev_id : int;  (** causal trace id linking events of one logical request
                    across world switches ({!Profiler.mint}); 0 = none *)
}

type t

val create : ?capacity:int -> unit -> t
(** Fresh tracer, disabled, with room for [capacity] (default 65536,
    clamped to >= 16) events. *)

val set_enabled : t -> bool -> unit
val enabled : t -> bool

val clear : t -> unit
(** Drop all buffered events (the enabled flag is unchanged). *)

val capacity : t -> int

val emitted : t -> int
(** Events emitted since creation/[clear], including overwritten ones. *)

val stored : t -> int
(** Events currently held: [min (emitted t) (capacity t)]. *)

val dropped : t -> int
(** Events silently overwritten by ring wraparound since
    creation/[clear]: [max 0 (emitted t - capacity t)].  Nonzero means
    {!events} is a truncated window — exporters should say so. *)

val emit :
  t -> ?phase:phase -> ?dur:int -> ?bucket:string -> ?arg:int -> ?id:int ->
  vcpu:int -> vmpl:int -> ts:int -> kind -> unit
(** Record one event.  No-op while disabled.  Hot paths should guard
    the call with {!enabled} so that even the optional-argument boxing
    is skipped. *)

val complete :
  t -> ?bucket:string -> ?arg:int -> ?id:int ->
  vcpu:int -> vmpl:int -> ts:int -> dur:int -> kind -> unit
(** A span known only at its end: [ts] is the start, [dur] its extent. *)

val span_begin :
  t -> ?bucket:string -> ?id:int -> vcpu:int -> vmpl:int -> ts:int -> string -> unit
val span_end : t -> vcpu:int -> vmpl:int -> ts:int -> string -> unit
(** Open/close a named software span.  Pairs nest per-VCPU (LIFO). *)

val events : t -> event list
(** Buffered events in emission order, oldest first.  Emission order is
    timestamp order except for [Complete] spans, which are recorded at
    their end but stamped with their start time (the Chrome exporter
    re-sorts). *)

val count_kind : t -> kind -> int
(** Buffered events of [kind] (spans count Begin and Complete, not End,
    so a begin/end pair counts once). *)

val well_nested : t -> bool
(** Check begin/end discipline per VCPU: every [End] must close the
    most recent unmatched [Begin] of the same name on that VCPU.  An
    [End] whose [Begin] was evicted by ring wraparound is tolerated;
    still-open spans are too. *)

val kind_name : kind -> string
(** Stable lower-case name ("vmgexit", "domain_switch", ...; a [Span]
    reports its own name, a [Wait] reports ["wait.<reason>"]). *)

val wait_reason_name : wait_reason -> string
(** Stable lower-case name ("runqueue", "monitor_serial", ...). *)
