(** Unified metrics registry: named counters, gauges, and log₂-bucketed
    histograms.

    A registry is an instance-scoped name → metric table; every
    simulated machine owns exactly one (hanging off its
    [Sevsnp.Platform.t]), so two CVMs booted side by side (migration,
    the E1 native/Veil comparison) never mix numbers.  Metric handles
    are interned: asking twice for the same name returns the same
    storage, so components grab their handles once at creation and
    update them with plain unboxed int stores — safe on hot paths.

    Histograms bucket observations by log₂: bucket 0 holds value 0,
    bucket [i >= 1] holds values in [[2^(i-1), 2^i - 1]].  Percentile
    readout returns the *upper bound* of the bucket containing the
    requested rank, clamped to the observed maximum — a conservative
    (at-most) latency estimate; see DESIGN.md §9b. *)

type counter
type gauge
type histogram

type metric = Counter of counter | Gauge of gauge | Histogram of histogram

type t

val create : unit -> t

val counter : t -> string -> counter
(** Get-or-create.  Raises [Invalid_argument] if [name] is already
    registered as a different metric kind. *)

val gauge : t -> string -> gauge
val histogram : t -> string -> histogram

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

val set : gauge -> int -> unit
val gauge_value : gauge -> int

val observe : histogram -> int -> unit
(** Record one observation (negative values clamp to 0). *)

val hist_count : histogram -> int
val hist_sum : histogram -> int
val hist_min : histogram -> int
(** 0 when empty. *)

val hist_max : histogram -> int

val mean : histogram -> float
(** Exact arithmetic mean ([sum / count]); 0.0 when empty. *)

val percentile : histogram -> float -> int
(** [percentile h p] for [p] in (0, 100): the *upper* bound of the
    log₂ bucket holding the observation of rank
    [ceil(p/100 * count)], clamped to the observed max — a
    conservative latency estimate (the rank-th sample is at most this
    value).  The pre-SMP lower-bound answer under-reported by up to
    2x; see DESIGN.md §9b.  [p >= 100] returns the true observed max
    ({!hist_max}).  0 when empty. *)

val find : t -> string -> metric option

val set_refresh : t -> (unit -> unit) -> unit
(** Install a registry-wide refresh hook for lazily-maintained gauges
    (e.g. [trace.dropped], which only the platform can true up).  The
    hook runs before every {!dump}, {!to_json}, and {!snapshot_take},
    so no direct registry read ever sees a stale gauge.  Must not
    allocate: it runs on the sampler hot path. *)

val refresh : t -> unit
(** Run the installed refresh hook (no-op by default). *)

(** {2 Snapshots}

    A snapshot is a preallocated flattened int-array image of every
    registered metric, addressed by registration order (indices are
    dense, append-only, and survive {!reset}).  Taking one performs no
    interning and — once sized — no allocation, so the Veil-Pulse
    sampler can capture intervals on the world-exit path.  Slot layout
    per metric: counter → 1 slot, gauge → 1 slot, histogram →
    {!nbuckets} bucket-count slots then n / sum / min / max
    ({!hist_slots} total). *)

val nbuckets : int
(** Number of log₂ buckets per histogram (63). *)

val bucket_hi : int -> int
(** Upper bound of bucket [i]: 0 for bucket 0, else [2^i - 1]. *)

val hist_slots : int
(** Snapshot slots per histogram: [nbuckets + 4]. *)

type skind = K_counter | K_gauge | K_histogram

type snapshot

val snapshot_create : t -> snapshot
(** Allocate a snapshot sized for the current registry. *)

val snapshot_take : t -> snapshot -> unit
(** Run the refresh hook, then copy every metric's current values into
    the snapshot.  Allocation-free unless the registry grew since the
    snapshot was last sized (then the buffers regrow once). *)

val snap_metrics : snapshot -> int
(** Number of metrics covered. *)

val snap_slots : snapshot -> int
(** Total int slots used. *)

val snap_name : snapshot -> int -> string
val snap_kind : snapshot -> int -> skind
val snap_offset : snapshot -> int -> int
val snap_data : snapshot -> int array
(** The raw slot array (do not resize; indices per {!snap_offset}). *)

val diff : prev:snapshot -> cur:snapshot -> into:int array -> unit
(** Per-interval deltas of [cur] against [prev], written into the
    caller-owned [into] (length >= [snap_slots cur]).  Counter and
    histogram bucket/count/sum slots delta with counter-reset
    semantics ([cur < prev] → delta = [cur], Prometheus-style); gauge
    and histogram min/max slots carry the current value.  Metrics
    registered after [prev] was taken delta against zero. *)

val merge_into : into:t -> t -> unit
(** Accumulate every metric of the source registry into [into],
    get-or-creating by name: counters and gauges add, histogram
    buckets / count / sum add bucket-wise, min/max widen.  This is the
    cross-instance (Veil-Fleet) aggregation path and is deliberately
    *not* {!diff}: sources are absolute per-instance totals, so no
    Prometheus counter-reset semantics are applied — merging guests
    with different reset epochs is exact.  Raises [Invalid_argument]
    if a name is registered in [into] as a different metric kind. *)

val merge : t list -> t
(** A fresh registry holding the {!merge_into} sum of the given
    registries — fleet-aggregate percentiles read straight off it. *)

val names : t -> string list
(** All registered names, sorted. *)

val reset : t -> unit
(** Zero every registered metric (registrations persist). *)

val dump : t -> string
(** Flat text, one metric per line, sorted by name. *)

val to_json : t -> string
(** One JSON object: [{"counters":{..},"gauges":{..},"histograms":{..}}]
    with mean/p50/p95/p99/p999 readouts inlined per histogram. *)

val json_escape : string -> string
(** Escape a string for embedding in a JSON string literal (shared with
    the trace exporter). *)
