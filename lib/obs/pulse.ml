(* Veil-Pulse: continuous time-series telemetry with attested export.

   A cycle-epoch sampler driven by the simulated clock: [tick] is
   called from the platform's world-exit paths (right next to the
   chaos watchdog), and whenever at least [interval] cycles have
   elapsed since the current epoch opened, the sampler captures a
   delta-encoded snapshot of the whole metrics registry into a bounded
   interval ring.  Epochs are therefore *at least* [interval] cycles
   long and close on world-exit boundaries — the sampler never runs
   between exits, so a captured interval always covers whole guest
   execution legs.

   Tamper evidence: each captured interval is serialized to a
   canonical line, hashed, and folded into a running SHA-256 chain
   (the same [H(prev || line)] shape as VeilS-LOG); an anchor line
   carrying the interval digest and chain head is queued for
   appending to the VeilS-LOG region through the ordinary (ringable)
   [R_log_append] path.  [verify_export] recomputes digests and the
   chain over exported pulse data and pinpoints the exact interval a
   hypervisor dropped, reordered, or edited. *)

let zero32 = Bytes.make 32 '\000'

let extend_chain prev line =
  let ctx = Veil_crypto.Sha256.init () in
  Veil_crypto.Sha256.update ctx prev;
  Veil_crypto.Sha256.update_string ctx line;
  Veil_crypto.Sha256.finalize ctx

type interval = {
  mutable iv_index : int;  (** global interval number, 0-based *)
  mutable iv_t0 : int;  (** cycle at epoch open *)
  mutable iv_t1 : int;  (** cycle at capture *)
  mutable iv_data : int array;  (** delta slots, layout per Metrics snapshot *)
  mutable iv_slots : int;
  mutable iv_digest : bytes;
}

type objective = {
  o_name : string;
  o_metric : string;
  o_good_below : int;
  o_slo_ppm : int;  (** SLO target in parts-per-million good events *)
  o_window : int;  (** burn window, in intervals *)
  o_kind : Trace.kind;  (** preallocated crossing-event kind *)
  mutable o_midx : int;  (** snapshot metric index; -1 until resolved *)
  mutable o_total : int;
  mutable o_bad : int;
  mutable o_burn : float;
  mutable o_crossed : bool;
  mutable o_crossings : int;
}

type t = {
  metrics : Metrics.t;
  mutable tracer : Trace.t option;
  mutable armed : bool;
  mutable interval : int;
  mutable epoch_start : int;
  mutable now : int;  (** max cycle seen across VCPUs *)
  ring : interval array;
  ring_cap : int;
  mutable captured : int;  (** intervals captured since arm *)
  mutable prev : Metrics.snapshot;
  mutable cur : Metrics.snapshot;
  mutable chain : bytes;
  mutable pending : string list;  (** anchor lines, oldest last *)
  mutable npending : int;
  mutable anchors : int;  (** anchor lines handed out via [pop_anchor] *)
  mutable objectives : objective list;  (** registration order reversed *)
}

let create ?(ring_cap = 64) ~metrics () =
  let ring_cap = max 4 ring_cap in
  let ring =
    Array.init ring_cap (fun _ ->
        { iv_index = -1; iv_t0 = 0; iv_t1 = 0; iv_data = [||]; iv_slots = 0; iv_digest = zero32 })
  in
  {
    metrics;
    tracer = None;
    armed = false;
    interval = max_int;
    epoch_start = 0;
    now = 0;
    ring;
    ring_cap;
    captured = 0;
    prev = Metrics.snapshot_create metrics;
    cur = Metrics.snapshot_create metrics;
    chain = zero32;
    pending = [];
    npending = 0;
    anchors = 0;
    objectives = [];
  }

let set_tracer t tr = t.tracer <- tr
let armed t = t.armed
let interval_cycles t = t.interval
let ring_capacity t = t.ring_cap

let reset_series t =
  t.captured <- 0;
  t.chain <- zero32;
  t.pending <- [];
  t.npending <- 0;
  t.anchors <- 0;
  Array.iter (fun iv -> iv.iv_index <- -1) t.ring;
  List.iter
    (fun o ->
      o.o_total <- 0;
      o.o_bad <- 0;
      o.o_burn <- 0.0;
      o.o_crossed <- false;
      o.o_crossings <- 0)
    t.objectives

let arm t ~interval ~now =
  if interval <= 0 then invalid_arg "Pulse.arm: interval must be positive";
  reset_series t;
  t.interval <- interval;
  t.epoch_start <- now;
  t.now <- now;
  (* Baseline: the first interval deltas against the state at arm
     time, not against machine boot. *)
  Metrics.snapshot_take t.metrics t.prev;
  t.armed <- true

let disarm t = t.armed <- false

(* -------------------------------------------------------------- *)
(* Capture                                                        *)

let sparse_render buf data slots =
  let first = ref true in
  for j = 0 to slots - 1 do
    if data.(j) <> 0 then begin
      if not !first then Buffer.add_char buf ',';
      first := false;
      Buffer.add_string buf (string_of_int j);
      Buffer.add_char buf ':';
      Buffer.add_string buf (string_of_int data.(j))
    end
  done

let interval_line iv =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "i=%d t0=%d t1=%d s=%d d=" iv.iv_index iv.iv_t0 iv.iv_t1 iv.iv_slots);
  sparse_render buf iv.iv_data iv.iv_slots;
  Buffer.contents buf

let resolve_objective t o =
  if o.o_midx < 0 then begin
    let n = Metrics.snap_metrics t.cur in
    let i = ref 0 in
    while o.o_midx < 0 && !i < n do
      if String.equal (Metrics.snap_name t.cur !i) o.o_metric then o.o_midx <- !i;
      incr i
    done
  end

let retained t = min t.captured t.ring_cap
let first_retained t = t.captured - retained t

let slot_of t i =
  if i < first_retained t || i >= t.captured then None
  else
    let iv = t.ring.(i mod t.ring_cap) in
    if iv.iv_index = i then Some iv else None

(* Count good/bad events of objective [o] over its trailing window,
   straight off the ring's bucket deltas — no allocation. *)
let eval_objective t o =
  resolve_objective t o;
  if o.o_midx >= 0 && Metrics.snap_kind t.cur o.o_midx = Metrics.K_histogram then begin
    let off = Metrics.snap_offset t.cur o.o_midx in
    let lo = max (first_retained t) (t.captured - o.o_window) in
    let total = ref 0 and good = ref 0 in
    for i = lo to t.captured - 1 do
      match slot_of t i with
      | None -> ()
      | Some iv ->
          if off + Metrics.nbuckets <= iv.iv_slots then
            for b = 0 to Metrics.nbuckets - 1 do
              let c = iv.iv_data.(off + b) in
              if c > 0 then begin
                total := !total + c;
                (* A bucket is good only when its whole span is at or
                   below the target — partial buckets count bad
                   (conservative, matches the registry's upper-bound
                   percentile convention). *)
                if Metrics.bucket_hi b <= o.o_good_below then good := !good + c
              end
            done
    done;
    let bad = !total - !good in
    o.o_total <- !total;
    o.o_bad <- bad;
    let bad_ppm_budget = (1_000_000 - o.o_slo_ppm) * !total in
    o.o_burn <-
      (if bad_ppm_budget = 0 then if bad > 0 then infinity else 0.0
       else float_of_int (bad * 1_000_000) /. float_of_int bad_ppm_budget);
    (* Strictly over budget: burning exactly at 1.0 (bad == budget) is
       on-target, not a crossing.  Integer comparison keeps the edge
       exact. *)
    let over = bad * 1_000_000 > bad_ppm_budget in
    if over && not o.o_crossed then begin
      o.o_crossings <- o.o_crossings + 1;
      match t.tracer with
      | Some tr when Trace.enabled tr ->
          Trace.emit tr ~phase:Trace.Instant ~bucket:"pulse" ~arg:(t.captured - 1) ~vcpu:0
            ~vmpl:(-1) ~ts:t.now o.o_kind
      | _ -> ()
    end;
    o.o_crossed <- over
  end

let capture t =
  Metrics.snapshot_take t.metrics t.cur;
  let iv = t.ring.(t.captured mod t.ring_cap) in
  let slots = Metrics.snap_slots t.cur in
  if Array.length iv.iv_data < slots then iv.iv_data <- Array.make slots 0;
  Metrics.diff ~prev:t.prev ~cur:t.cur ~into:iv.iv_data;
  iv.iv_index <- t.captured;
  iv.iv_t0 <- t.epoch_start;
  iv.iv_t1 <- t.now;
  iv.iv_slots <- slots;
  let line = interval_line iv in
  iv.iv_digest <- Veil_crypto.Sha256.digest_string line;
  t.chain <- extend_chain t.chain line;
  let anchor =
    Printf.sprintf "pulse i=%d t1=%d digest=%s chain=%s" iv.iv_index iv.iv_t1
      (Veil_crypto.Sha256.hex_of_digest iv.iv_digest)
      (Veil_crypto.Sha256.hex_of_digest t.chain)
  in
  t.pending <- anchor :: t.pending;
  t.npending <- t.npending + 1;
  (* Swap snapshots: the capture we just took becomes the next
     interval's baseline.  Pointer swap — no copying. *)
  let p = t.prev in
  t.prev <- t.cur;
  t.cur <- p;
  t.captured <- t.captured + 1;
  t.epoch_start <- t.now;
  List.iter (eval_objective t) t.objectives

let tick t ~now =
  if t.armed then begin
    if now > t.now then t.now <- now;
    if t.now - t.epoch_start >= t.interval then begin
      capture t;
      true
    end
    else false
  end
  else false

let flush t ~now =
  if t.armed then begin
    if now > t.now then t.now <- now;
    if t.now > t.epoch_start then capture t
  end

(* -------------------------------------------------------------- *)
(* Readout                                                        *)

let captured t = t.captured
let overwritten t = t.captured - retained t
let chain_digest t = Bytes.copy t.chain

let bounds t i = match slot_of t i with Some iv -> Some (iv.iv_t0, iv.iv_t1) | None -> None

let metric_index t name =
  let n = Metrics.snap_metrics t.prev in
  let found = ref (-1) in
  for i = 0 to n - 1 do
    if !found < 0 && String.equal (Metrics.snap_name t.prev i) name then found := i
  done;
  !found

let counter_delta t ~metric i =
  let m = metric_index t metric in
  if m < 0 then None
  else
    match slot_of t i with
    | Some iv when Metrics.snap_offset t.prev m < iv.iv_slots ->
        Some iv.iv_data.(Metrics.snap_offset t.prev m)
    | _ -> None

let gauge_at = counter_delta (* gauge slots carry the value at capture *)

let hist_window t ~metric ~window ~upto =
  let m = metric_index t metric in
  if m < 0 || Metrics.snap_kind t.prev m <> Metrics.K_histogram then None
  else begin
    let off = Metrics.snap_offset t.prev m in
    let buckets = Array.make Metrics.nbuckets 0 in
    let n = ref 0 and sum = ref 0 in
    let lo = max (first_retained t) (upto - window + 1) in
    let any = ref false in
    for i = lo to min upto (t.captured - 1) do
      match slot_of t i with
      | Some iv when off + Metrics.hist_slots <= iv.iv_slots ->
          any := true;
          for b = 0 to Metrics.nbuckets - 1 do
            buckets.(b) <- buckets.(b) + iv.iv_data.(off + b)
          done;
          n := !n + iv.iv_data.(off + Metrics.nbuckets);
          sum := !sum + iv.iv_data.(off + Metrics.nbuckets + 1)
      | _ -> ()
    done;
    if !any then Some (buckets, !n, !sum) else None
  end

let wpercentile ~buckets p =
  let n = Array.fold_left ( + ) 0 buckets in
  if n = 0 then 0
  else begin
    let hi = ref 0 in
    for b = 0 to Array.length buckets - 1 do
      if buckets.(b) > 0 then hi := b
    done;
    if p >= 100.0 then Metrics.bucket_hi !hi
    else begin
      let rank = max 1 (int_of_float (ceil (p /. 100.0 *. float_of_int n))) in
      let rank = min rank n in
      let cum = ref 0 and result = ref 0 and found = ref false in
      for b = 0 to Array.length buckets - 1 do
        if not !found then begin
          cum := !cum + buckets.(b);
          if !cum >= rank then begin
            found := true;
            result := min (Metrics.bucket_hi !hi) (Metrics.bucket_hi b)
          end
        end
      done;
      !result
    end
  end

(* -------------------------------------------------------------- *)
(* SLOs                                                           *)

let objective t ~name ~metric ~good_below ~slo ~window =
  if slo <= 0.0 || slo >= 1.0 then invalid_arg "Pulse.objective: slo must be in (0, 1)";
  if window <= 0 then invalid_arg "Pulse.objective: window must be positive";
  let o =
    {
      o_name = name;
      o_metric = metric;
      o_good_below = good_below;
      o_slo_ppm = int_of_float ((slo *. 1_000_000.0) +. 0.5);
      o_window = window;
      o_kind = Trace.Span ("slo." ^ name);
      o_midx = -1;
      o_total = 0;
      o_bad = 0;
      o_burn = 0.0;
      o_crossed = false;
      o_crossings = 0;
    }
  in
  t.objectives <- o :: t.objectives

type burn_report = {
  br_name : string;
  br_metric : string;
  br_good_below : int;
  br_slo : float;
  br_window : int;
  br_total : int;
  br_bad : int;
  br_budget : float;
  br_burn : float;
  br_crossed : bool;
  br_crossings : int;
}

let burn_reports t =
  List.rev_map
    (fun o ->
      {
        br_name = o.o_name;
        br_metric = o.o_metric;
        br_good_below = o.o_good_below;
        br_slo = float_of_int o.o_slo_ppm /. 1_000_000.0;
        br_window = o.o_window;
        br_total = o.o_total;
        br_bad = o.o_bad;
        br_budget = float_of_int ((1_000_000 - o.o_slo_ppm) * o.o_total) /. 1_000_000.0;
        br_burn = o.o_burn;
        br_crossed = o.o_crossed;
        br_crossings = o.o_crossings;
      })
    t.objectives

(* -------------------------------------------------------------- *)
(* Anchors                                                        *)

let pending_anchors t = t.npending

let pop_anchor t =
  match List.rev t.pending with
  | [] -> None
  | oldest :: rest ->
      t.pending <- List.rev rest;
      t.npending <- t.npending - 1;
      t.anchors <- t.anchors + 1;
      Some oldest

let anchors_emitted t = t.anchors

(* -------------------------------------------------------------- *)
(* Attested export + verification                                 *)

let export t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "veil-pulse v1 first=%d count=%d chain=%s" (first_retained t) (retained t)
       (Veil_crypto.Sha256.hex_of_digest t.chain));
  for i = first_retained t to t.captured - 1 do
    match slot_of t i with
    | Some iv ->
        Buffer.add_char buf '\n';
        Buffer.add_string buf (interval_line iv)
    | None -> ()
  done;
  Buffer.contents buf

let parse_index line =
  (* "i=<n> ..." → n, or -1 on malformed *)
  if String.length line > 2 && line.[0] = 'i' && line.[1] = '=' then
    let stop = try String.index line ' ' with Not_found -> String.length line in
    try int_of_string (String.sub line 2 (stop - 2)) with _ -> -1
  else -1

let verify_export t exported =
  match String.split_on_char '\n' exported with
  | [] -> Error (first_retained t, "empty export")
  | _header :: lines ->
      let expected = ref (first_retained t) in
      let err = ref None in
      List.iter
        (fun line ->
          if !err = None then begin
            let idx = parse_index line in
            if idx < 0 then err := Some (!expected, "malformed interval line")
            else if idx < !expected then err := Some (idx, "reordered or replayed interval")
            else if idx > !expected then err := Some (!expected, "dropped interval")
            else begin
              (match slot_of t idx with
              | None -> err := Some (idx, "interval not retained")
              | Some iv ->
                  let d = Veil_crypto.Sha256.digest_string line in
                  if not (Bytes.equal d iv.iv_digest) then err := Some (idx, "edited interval"));
              expected := !expected + 1
            end
          end)
        lines;
      if !err = None && !expected < t.captured then err := Some (!expected, "dropped interval");
      (* Recompute the chain over the verified window and check it
         matches the trusted head when the whole series is retained
         (no ring wraparound). *)
      if !err = None && first_retained t = 0 then begin
        let chain = ref zero32 in
        List.iter (fun line -> chain := extend_chain !chain line) lines;
        if not (Bytes.equal !chain t.chain) then err := Some (0, "chain head mismatch")
      end;
      (match !err with None -> Ok (retained t) | Some e -> Error e)
