(* Per-request causal graphs over the Trace ring (see the .mli).

   The ring stores three shapes of evidence: Complete spans (stamped
   with their start, recorded at their end), Begin/End pairs (os_call),
   and Wait spans (always Complete).  A request's critical path is the
   innermost-wins flattening of all its spans: slice the request's
   extent at every span boundary and label each slice with the deepest
   span covering it — "deepest" meaning latest start, then earliest
   end, then wait edges over work (a wait is emitted *inside* the work
   span that incurred it and must win its slice, or waiting would be
   double-booked as work). *)

type seg = {
  sg_name : string;
  sg_vmpl : int;
  sg_vcpu : int;
  sg_ts : int;
  sg_dur : int;
  sg_wait : Trace.wait_reason option;
}

type request = {
  rq_id : int;
  rq_start : int;
  rq_finish : int;
  rq_segs : seg list;
  rq_wait : ((int * Trace.wait_reason) * int) list;
  rq_work : (int * int) list;
}

(* --- begin/end pairing (same per-VCPU LIFO discipline the exporter
   and Trace.well_nested use) --- *)

let pair_spans events =
  let stacks : (int, Trace.event list) Hashtbl.t = Hashtbl.create 8 in
  let out = ref [] in
  List.iter
    (fun (ev : Trace.event) ->
      match ev.Trace.ev_phase with
      | Trace.Complete -> out := ev :: !out
      | Trace.Begin ->
          let st = Option.value ~default:[] (Hashtbl.find_opt stacks ev.Trace.ev_vcpu) in
          Hashtbl.replace stacks ev.Trace.ev_vcpu (ev :: st)
      | Trace.End -> (
          match Hashtbl.find_opt stacks ev.Trace.ev_vcpu with
          | Some (b :: rest) ->
              Hashtbl.replace stacks ev.Trace.ev_vcpu rest;
              out :=
                { b with Trace.ev_phase = Trace.Complete;
                  ev_dur = max 0 (ev.Trace.ev_ts - b.Trace.ev_ts) }
                :: !out
          | Some [] | None -> () (* Begin evicted by wraparound *))
      | Trace.Instant -> ())
    events;
  List.rev !out

(* --- innermost-wins flattening --- *)

let is_wait (ev : Trace.event) =
  match ev.Trace.ev_kind with Trace.Wait r -> Some r | _ -> None

(* Deeper = started later; ties: ends earlier; ties: wait beats work. *)
let deeper (a : Trace.event) (b : Trace.event) =
  if a.Trace.ev_ts <> b.Trace.ev_ts then a.Trace.ev_ts > b.Trace.ev_ts
  else
    let ea = a.Trace.ev_ts + a.Trace.ev_dur and eb = b.Trace.ev_ts + b.Trace.ev_dur in
    if ea <> eb then ea < eb
    else is_wait a <> None && is_wait b = None

let flatten spans =
  let spans = List.filter (fun (ev : Trace.event) -> ev.Trace.ev_dur > 0) spans in
  match spans with
  | [] -> []
  | _ ->
      let edges =
        List.concat_map
          (fun (ev : Trace.event) -> [ ev.Trace.ev_ts; ev.Trace.ev_ts + ev.Trace.ev_dur ])
          spans
      in
      let points = List.sort_uniq compare edges in
      let slices = ref [] in
      let rec walk = function
        | a :: (b :: _ as rest) ->
            let covering =
              List.filter
                (fun (ev : Trace.event) ->
                  ev.Trace.ev_ts <= a && ev.Trace.ev_ts + ev.Trace.ev_dur >= b)
                spans
            in
            (match covering with
            | [] ->
                slices :=
                  { sg_name = "gap"; sg_vmpl = -1; sg_vcpu = -1; sg_ts = a; sg_dur = b - a;
                    sg_wait = None }
                  :: !slices
            | first :: more ->
                let innermost =
                  List.fold_left (fun acc ev -> if deeper ev acc then ev else acc) first more
                in
                slices :=
                  { sg_name = Trace.kind_name innermost.Trace.ev_kind;
                    sg_vmpl = innermost.Trace.ev_vmpl; sg_vcpu = innermost.Trace.ev_vcpu;
                    sg_ts = a; sg_dur = b - a; sg_wait = is_wait innermost }
                  :: !slices);
            walk rest
        | _ -> ()
      in
      walk points;
      (* Merge adjacent slices labelled by the same span. *)
      let merged =
        List.fold_left
          (fun acc s ->
            match acc with
            | prev :: rest
              when prev.sg_name = s.sg_name && prev.sg_vmpl = s.sg_vmpl
                   && prev.sg_vcpu = s.sg_vcpu && prev.sg_wait = s.sg_wait
                   && prev.sg_ts + prev.sg_dur = s.sg_ts ->
                { prev with sg_dur = prev.sg_dur + s.sg_dur } :: rest
            | _ -> s :: acc)
          [] (List.rev !slices)
      in
      List.rev merged

let sorted_assoc_fold kvs =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (k, v) -> Hashtbl.replace tbl k (v + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
    kvs;
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let of_spans id spans =
  let segs = flatten spans in
  match segs with
  | [] -> None
  | first :: _ ->
      let last = List.nth segs (List.length segs - 1) in
      let wait =
        List.filter_map
          (fun s -> Option.map (fun r -> ((s.sg_vmpl, r), s.sg_dur)) s.sg_wait)
          segs
      in
      let work =
        List.filter_map (fun s -> if s.sg_wait = None then Some (s.sg_vmpl, s.sg_dur) else None) segs
      in
      Some
        { rq_id = id; rq_start = first.sg_ts; rq_finish = last.sg_ts + last.sg_dur;
          rq_segs = segs; rq_wait = sorted_assoc_fold wait; rq_work = sorted_assoc_fold work }

let requests events =
  let complete = pair_spans events in
  let by_id : (int, Trace.event list) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (ev : Trace.event) ->
      if ev.Trace.ev_id <> 0 then
        by_id |> fun tbl ->
        Hashtbl.replace tbl ev.Trace.ev_id
          (ev :: Option.value ~default:[] (Hashtbl.find_opt tbl ev.Trace.ev_id)))
    complete;
  Hashtbl.fold (fun id spans acc -> (id, List.rev spans) :: acc) by_id []
  |> List.filter_map (fun (id, spans) -> of_spans id spans)
  |> List.sort (fun a b -> compare (a.rq_start, a.rq_id) (b.rq_start, b.rq_id))

let total_work rq = List.fold_left (fun acc (_, c) -> acc + c) 0 rq.rq_work
let total_wait rq = List.fold_left (fun acc (_, c) -> acc + c) 0 rq.rq_wait
let extent rq = rq.rq_finish - rq.rq_start

type summary = {
  sm_requests : int;
  sm_cycles : int;
  sm_work : (int * int) list;
  sm_wait : ((int * Trace.wait_reason) * int) list;
}

let summarize rqs =
  {
    sm_requests = List.length rqs;
    sm_cycles = List.fold_left (fun acc rq -> acc + extent rq) 0 rqs;
    sm_work = sorted_assoc_fold (List.concat_map (fun rq -> rq.rq_work) rqs);
    sm_wait = sorted_assoc_fold (List.concat_map (fun rq -> rq.rq_wait) rqs);
  }

let wait_by_reason sm = sorted_assoc_fold (List.map (fun ((_, r), c) -> (r, c)) sm.sm_wait)

(* --- rendering --- *)

let vmpl_label v = if v < 0 then "?" else string_of_int v

let render rq =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "request %d: %d cycles (work %d, wait %d) ts [%d..%d]\n" rq.rq_id (extent rq)
       (total_work rq) (total_wait rq) rq.rq_start rq.rq_finish);
  List.iter
    (fun ((vmpl, r), c) ->
      Buffer.add_string buf
        (Printf.sprintf "  wait  vmpl%-2s %-14s %10d\n" (vmpl_label vmpl)
           (Trace.wait_reason_name r) c))
    rq.rq_wait;
  List.iter
    (fun (vmpl, c) ->
      Buffer.add_string buf (Printf.sprintf "  work  vmpl%-2s %-14s %10d\n" (vmpl_label vmpl) "" c))
    rq.rq_work;
  Buffer.add_string buf "  critical path:\n";
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf "    %12d %+10d  vmpl%-2s vcpu%-2d %s%s\n" s.sg_ts s.sg_dur
           (vmpl_label s.sg_vmpl) s.sg_vcpu s.sg_name
           (match s.sg_wait with Some _ -> "  [wait]" | None -> "")))
    rq.rq_segs;
  Buffer.contents buf

let render_summary sm =
  let buf = Buffer.create 512 in
  let work = List.fold_left (fun acc (_, c) -> acc + c) 0 sm.sm_work in
  let wait = List.fold_left (fun acc (_, c) -> acc + c) 0 sm.sm_wait in
  Buffer.add_string buf
    (Printf.sprintf "%d requests, %d cycles on critical paths (work %d, wait %d)\n" sm.sm_requests
       sm.sm_cycles work wait);
  let pct c = if sm.sm_cycles = 0 then 0.0 else 100.0 *. float_of_int c /. float_of_int sm.sm_cycles in
  List.iter
    (fun ((vmpl, r), c) ->
      Buffer.add_string buf
        (Printf.sprintf "  wait  vmpl%-2s %-14s %10d  (%.1f%%)\n" (vmpl_label vmpl)
           (Trace.wait_reason_name r) c (pct c)))
    sm.sm_wait;
  List.iter
    (fun (vmpl, c) ->
      Buffer.add_string buf
        (Printf.sprintf "  work  vmpl%-2s %-14s %10d  (%.1f%%)\n" (vmpl_label vmpl) "" c (pct c)))
    sm.sm_work;
  Buffer.contents buf
