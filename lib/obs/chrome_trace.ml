(* Chrome trace_event JSON exporter: pid = vmpl, tid = vcpu, so each
   privilege level (VeilOS, VeilMon, enclaves, ...) is a trace
   "process" whose VCPUs are its "threads" — Perfetto then groups
   tracks by privilege domain, which is how the paper reads. *)

let phase_letter = function
  | Trace.Instant -> "i"
  | Trace.Begin -> "B"
  | Trace.End -> "E"
  | Trace.Complete -> "X"

let buf_ts buf ~freq_hz key cycles =
  Buffer.add_string buf key;
  match freq_hz with
  | None -> Buffer.add_string buf (string_of_int cycles)
  | Some hz ->
      (* Chrome wants microseconds. *)
      Buffer.add_string buf
        (Printf.sprintf "%.3f" (float_of_int cycles *. 1e6 /. float_of_int hz))

let to_json ?freq_hz ?pulse t =
  (* Complete spans are recorded at their end but stamped with their
     start, so the emission order is not timestamp order; viewers want
     (and the tests assert) sorted output. *)
  let evs =
    List.stable_sort (fun a b -> compare a.Trace.ev_ts b.Trace.ev_ts) (Trace.events t)
  in
  let buf = Buffer.create 4096 in
  let first = ref true in
  let sep () =
    if !first then first := false else Buffer.add_char buf ',';
    Buffer.add_string buf "\n  "
  in
  Buffer.add_string buf "{\"traceEvents\":[";
  (* Ring wraparound is not silent: say how many events this export is
     missing, as a global instant pinned at the window's start. *)
  if Trace.dropped t > 0 then begin
    sep ();
    let ts0 = match evs with ev :: _ -> ev.Trace.ev_ts | [] -> 0 in
    Buffer.add_string buf
      "{\"name\":\"trace_truncated\",\"cat\":\"veil\",\"ph\":\"i\",\"s\":\"g\"";
    buf_ts buf ~freq_hz ",\"ts\":" ts0;
    Buffer.add_string buf
      (Printf.sprintf ",\"pid\":0,\"tid\":0,\"args\":{\"dropped\":%d}}" (Trace.dropped t))
  end;
  (* Metadata: name every VMPL process and VCPU thread we will use. *)
  let seen_pids = Hashtbl.create 8 and seen_tids = Hashtbl.create 8 in
  List.iter
    (fun ev ->
      let pid = ev.Trace.ev_vmpl and tid = ev.Trace.ev_vcpu in
      if not (Hashtbl.mem seen_pids pid) then begin
        Hashtbl.replace seen_pids pid ();
        sep ();
        Buffer.add_string buf
          (Printf.sprintf
             "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"args\":{\"name\":\"vmpl%d\"}}"
             pid pid)
      end;
      if not (Hashtbl.mem seen_tids (pid, tid)) then begin
        Hashtbl.replace seen_tids (pid, tid) ();
        sep ();
        Buffer.add_string buf
          (Printf.sprintf
             "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"args\":{\"name\":\"vcpu%d\"}}"
             pid tid tid)
      end)
    evs;
  List.iter
    (fun ev ->
      sep ();
      Buffer.add_string buf "{\"name\":\"";
      Buffer.add_string buf (Metrics.json_escape (Trace.kind_name ev.Trace.ev_kind));
      Buffer.add_string buf "\",\"cat\":\"veil\",\"ph\":\"";
      Buffer.add_string buf (phase_letter ev.Trace.ev_phase);
      Buffer.add_char buf '"';
      if ev.Trace.ev_phase = Trace.Instant then Buffer.add_string buf ",\"s\":\"t\"";
      buf_ts buf ~freq_hz ",\"ts\":" ev.Trace.ev_ts;
      if ev.Trace.ev_phase = Trace.Complete then buf_ts buf ~freq_hz ",\"dur\":" ev.Trace.ev_dur;
      Buffer.add_string buf
        (Printf.sprintf ",\"pid\":%d,\"tid\":%d" ev.Trace.ev_vmpl ev.Trace.ev_vcpu);
      Buffer.add_string buf ",\"args\":{";
      if ev.Trace.ev_bucket <> "" then begin
        Buffer.add_string buf "\"bucket\":\"";
        Buffer.add_string buf (Metrics.json_escape ev.Trace.ev_bucket);
        Buffer.add_string buf "\","
      end;
      if ev.Trace.ev_id <> 0 then
        Buffer.add_string buf (Printf.sprintf "\"id\":%d," ev.Trace.ev_id);
      Buffer.add_string buf (Printf.sprintf "\"arg\":%d,\"cycles\":%d}}" ev.Trace.ev_arg ev.Trace.ev_ts))
    evs;
  (* Flow events: one s -> t* -> f chain per causal id that hops
     between (vmpl, vcpu) lanes, so Perfetto draws the request's
     journey across privilege levels as arrows. *)
  let by_id : (int, Trace.event list) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun ev ->
      if ev.Trace.ev_id <> 0 && ev.Trace.ev_phase <> Trace.End then
        Hashtbl.replace by_id ev.Trace.ev_id
          (ev :: Option.value ~default:[] (Hashtbl.find_opt by_id ev.Trace.ev_id)))
    evs;
  let flow_ids =
    List.sort compare (Hashtbl.fold (fun id _ acc -> id :: acc) by_id [])
  in
  let flow_point ph (ev : Trace.event) =
    sep ();
    Buffer.add_string buf (Printf.sprintf "{\"name\":\"req\",\"cat\":\"veil.flow\",\"ph\":\"%s\"" ph);
    if ph = "f" then Buffer.add_string buf ",\"bp\":\"e\"";
    Buffer.add_string buf (Printf.sprintf ",\"id\":%d" ev.Trace.ev_id);
    buf_ts buf ~freq_hz ",\"ts\":" ev.Trace.ev_ts;
    Buffer.add_string buf (Printf.sprintf ",\"pid\":%d,\"tid\":%d}" ev.Trace.ev_vmpl ev.Trace.ev_vcpu)
  in
  List.iter
    (fun id ->
      let points = List.rev (Hashtbl.find by_id id) in
      let lanes =
        List.sort_uniq compare
          (List.map (fun ev -> (ev.Trace.ev_vmpl, ev.Trace.ev_vcpu)) points)
      in
      match points with
      | first :: (_ :: _ as rest) when List.length lanes > 1 ->
          flow_point "s" first;
          let rec steps prev = function
            | [ last ] -> flow_point "f" last
            | ev :: rest ->
                if (ev.Trace.ev_vmpl, ev.Trace.ev_vcpu) <> prev then flow_point "t" ev;
                steps (ev.Trace.ev_vmpl, ev.Trace.ev_vcpu) rest
            | [] -> ()
          in
          steps (first.Trace.ev_vmpl, first.Trace.ev_vcpu) rest
      | _ -> ())
    flow_ids;
  (* Veil-Pulse counter tracks (ph "C"): one sample per retained
     interval, stamped at the interval's close, so Perfetto draws
     metric lanes (syscall rate, windowed p99, exit rate) under the
     span tracks.  Counters are per-pid; they ride on vmpl0. *)
  (match pulse with
  | Some pu when Pulse.retained pu > 0 ->
      let track name t1 v =
        sep ();
        Buffer.add_string buf
          (Printf.sprintf "{\"name\":\"%s\",\"cat\":\"veil.pulse\",\"ph\":\"C\"" name);
        buf_ts buf ~freq_hz ",\"ts\":" t1;
        Buffer.add_string buf (Printf.sprintf ",\"pid\":0,\"args\":{\"value\":%d}}" v)
      in
      for i = Pulse.first_retained pu to Pulse.captured pu - 1 do
        match Pulse.bounds pu i with
        | None -> ()
        | Some (_, t1) ->
            let n, p99 =
              match Pulse.hist_window pu ~metric:"kernel.syscall_cycles" ~window:1 ~upto:i with
              | Some (b, n, _) -> (n, Pulse.wpercentile ~buckets:b 99.0)
              | None -> (0, 0)
            in
            let exits =
              match Pulse.counter_delta pu ~metric:"platform.vmgexit" i with
              | Some v -> v
              | None -> 0
            in
            track "pulse.syscalls" t1 n;
            track "pulse.p99_cycles" t1 p99;
            track "pulse.vmgexits" t1 exits
      done
  | _ -> ());
  Buffer.add_string buf "\n],\"displayTimeUnit\":\"ns\"}\n";
  Buffer.contents buf
