(* Chrome trace_event JSON exporter: pid = vmpl, tid = vcpu, so each
   privilege level (VeilOS, VeilMon, enclaves, ...) is a trace
   "process" whose VCPUs are its "threads" — Perfetto then groups
   tracks by privilege domain, which is how the paper reads. *)

let phase_letter = function
  | Trace.Instant -> "i"
  | Trace.Begin -> "B"
  | Trace.End -> "E"
  | Trace.Complete -> "X"

let buf_ts buf ~freq_hz key cycles =
  Buffer.add_string buf key;
  match freq_hz with
  | None -> Buffer.add_string buf (string_of_int cycles)
  | Some hz ->
      (* Chrome wants microseconds. *)
      Buffer.add_string buf
        (Printf.sprintf "%.3f" (float_of_int cycles *. 1e6 /. float_of_int hz))

let to_json ?freq_hz t =
  (* Complete spans are recorded at their end but stamped with their
     start, so the emission order is not timestamp order; viewers want
     (and the tests assert) sorted output. *)
  let evs =
    List.stable_sort (fun a b -> compare a.Trace.ev_ts b.Trace.ev_ts) (Trace.events t)
  in
  let buf = Buffer.create 4096 in
  let first = ref true in
  let sep () =
    if !first then first := false else Buffer.add_char buf ',';
    Buffer.add_string buf "\n  "
  in
  Buffer.add_string buf "{\"traceEvents\":[";
  (* Metadata: name every VMPL process and VCPU thread we will use. *)
  let seen_pids = Hashtbl.create 8 and seen_tids = Hashtbl.create 8 in
  List.iter
    (fun ev ->
      let pid = ev.Trace.ev_vmpl and tid = ev.Trace.ev_vcpu in
      if not (Hashtbl.mem seen_pids pid) then begin
        Hashtbl.replace seen_pids pid ();
        sep ();
        Buffer.add_string buf
          (Printf.sprintf
             "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"args\":{\"name\":\"vmpl%d\"}}"
             pid pid)
      end;
      if not (Hashtbl.mem seen_tids (pid, tid)) then begin
        Hashtbl.replace seen_tids (pid, tid) ();
        sep ();
        Buffer.add_string buf
          (Printf.sprintf
             "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"args\":{\"name\":\"vcpu%d\"}}"
             pid tid tid)
      end)
    evs;
  List.iter
    (fun ev ->
      sep ();
      Buffer.add_string buf "{\"name\":\"";
      Buffer.add_string buf (Metrics.json_escape (Trace.kind_name ev.Trace.ev_kind));
      Buffer.add_string buf "\",\"cat\":\"veil\",\"ph\":\"";
      Buffer.add_string buf (phase_letter ev.Trace.ev_phase);
      Buffer.add_char buf '"';
      if ev.Trace.ev_phase = Trace.Instant then Buffer.add_string buf ",\"s\":\"t\"";
      buf_ts buf ~freq_hz ",\"ts\":" ev.Trace.ev_ts;
      if ev.Trace.ev_phase = Trace.Complete then buf_ts buf ~freq_hz ",\"dur\":" ev.Trace.ev_dur;
      Buffer.add_string buf
        (Printf.sprintf ",\"pid\":%d,\"tid\":%d" ev.Trace.ev_vmpl ev.Trace.ev_vcpu);
      Buffer.add_string buf ",\"args\":{";
      if ev.Trace.ev_bucket <> "" then begin
        Buffer.add_string buf "\"bucket\":\"";
        Buffer.add_string buf (Metrics.json_escape ev.Trace.ev_bucket);
        Buffer.add_string buf "\","
      end;
      if ev.Trace.ev_id <> 0 then
        Buffer.add_string buf (Printf.sprintf "\"id\":%d," ev.Trace.ev_id);
      Buffer.add_string buf (Printf.sprintf "\"arg\":%d,\"cycles\":%d}}" ev.Trace.ev_arg ev.Trace.ev_ts))
    evs;
  Buffer.add_string buf "\n],\"displayTimeUnit\":\"ns\"}\n";
  Buffer.contents buf
