type wait_reason = Runqueue | Monitor_serial | Shootdown_ack | Blocked_poll | Relay | Ring_flush

type kind =
  | Vmgexit
  | Vmenter
  | Domain_switch
  | Rmpadjust
  | Pvalidate
  | Npf
  | Syscall
  | Enclave_enter
  | Enclave_exit
  | Audit_emit
  | Io
  | Span of string
  | Wait of wait_reason

type phase = Instant | Begin | End | Complete

type event = {
  ev_kind : kind;
  ev_phase : phase;
  ev_vcpu : int;
  ev_vmpl : int;
  ev_ts : int;
  ev_dur : int;
  ev_bucket : string;
  ev_arg : int;
  ev_id : int;
}

let dummy =
  { ev_kind = Vmgexit; ev_phase = Instant; ev_vcpu = -1; ev_vmpl = -1; ev_ts = 0; ev_dur = 0;
    ev_bucket = ""; ev_arg = 0; ev_id = 0 }

type t = {
  mutable on : bool;
  cap : int;
  buf : event array;
  mutable total : int;  (** emitted since clear; write cursor = total mod cap *)
}

let create ?(capacity = 65536) () =
  let cap = max 16 capacity in
  { on = false; cap; buf = Array.make cap dummy; total = 0 }

let set_enabled t b = t.on <- b
let enabled t = t.on

let clear t =
  Array.fill t.buf 0 t.cap dummy;
  t.total <- 0

let capacity t = t.cap
let emitted t = t.total
let stored t = min t.total t.cap
let dropped t = max 0 (t.total - t.cap)

let push t ev =
  t.buf.(t.total mod t.cap) <- ev;
  t.total <- t.total + 1

let emit t ?(phase = Instant) ?(dur = 0) ?(bucket = "") ?(arg = 0) ?(id = 0) ~vcpu ~vmpl ~ts kind =
  if t.on then
    push t
      { ev_kind = kind; ev_phase = phase; ev_vcpu = vcpu; ev_vmpl = vmpl; ev_ts = ts; ev_dur = dur;
        ev_bucket = bucket; ev_arg = arg; ev_id = id }

let complete t ?(bucket = "") ?(arg = 0) ?(id = 0) ~vcpu ~vmpl ~ts ~dur kind =
  if t.on then
    push t
      { ev_kind = kind; ev_phase = Complete; ev_vcpu = vcpu; ev_vmpl = vmpl; ev_ts = ts;
        ev_dur = dur; ev_bucket = bucket; ev_arg = arg; ev_id = id }

let span_begin t ?(bucket = "") ?(id = 0) ~vcpu ~vmpl ~ts name =
  if t.on then
    push t
      { ev_kind = Span name; ev_phase = Begin; ev_vcpu = vcpu; ev_vmpl = vmpl; ev_ts = ts;
        ev_dur = 0; ev_bucket = bucket; ev_arg = 0; ev_id = id }

let span_end t ~vcpu ~vmpl ~ts name =
  if t.on then
    push t
      { ev_kind = Span name; ev_phase = End; ev_vcpu = vcpu; ev_vmpl = vmpl; ev_ts = ts; ev_dur = 0;
        ev_bucket = ""; ev_arg = 0; ev_id = 0 }

let events t =
  let n = stored t in
  let first = t.total - n in
  List.init n (fun i -> t.buf.((first + i) mod t.cap))

let count_kind t kind =
  List.fold_left
    (fun acc ev -> if ev.ev_kind = kind && ev.ev_phase <> End then acc + 1 else acc)
    0 (events t)

let well_nested t =
  (* One open-span stack per VCPU.  An End closing an empty stack is
     tolerated (its Begin may have been evicted by wraparound). *)
  let stacks : (int, string list) Hashtbl.t = Hashtbl.create 8 in
  let ok = ref true in
  List.iter
    (fun ev ->
      match (ev.ev_kind, ev.ev_phase) with
      | Span name, Begin ->
          let st = Option.value ~default:[] (Hashtbl.find_opt stacks ev.ev_vcpu) in
          Hashtbl.replace stacks ev.ev_vcpu (name :: st)
      | Span name, End -> (
          match Hashtbl.find_opt stacks ev.ev_vcpu with
          | Some (top :: rest) ->
              if top <> name then ok := false else Hashtbl.replace stacks ev.ev_vcpu rest
          | Some [] | None -> ())
      | _ -> ())
    (events t);
  !ok

let wait_reason_name = function
  | Runqueue -> "runqueue"
  | Monitor_serial -> "monitor_serial"
  | Shootdown_ack -> "shootdown_ack"
  | Blocked_poll -> "blocked_poll"
  | Relay -> "relay"
  | Ring_flush -> "ring_flush"

let kind_name = function
  | Vmgexit -> "vmgexit"
  | Vmenter -> "vmenter"
  | Domain_switch -> "domain_switch"
  | Rmpadjust -> "rmpadjust"
  | Pvalidate -> "pvalidate"
  | Npf -> "npf"
  | Syscall -> "syscall"
  | Enclave_enter -> "enclave_enter"
  | Enclave_exit -> "enclave_exit"
  | Audit_emit -> "audit_emit"
  | Io -> "io"
  | Span s -> s
  | Wait Runqueue -> "wait.runqueue"
  | Wait Monitor_serial -> "wait.monitor_serial"
  | Wait Shootdown_ack -> "wait.shootdown_ack"
  | Wait Blocked_poll -> "wait.blocked_poll"
  | Wait Relay -> "wait.relay"
  | Wait Ring_flush -> "wait.ring_flush"
