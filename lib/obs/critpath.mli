(** Veil-Scope — per-request critical paths and wait-vs-work
    decomposition, reconstructed from the {!Trace} ring.

    Every traced layer tags its events with the causal id minted at the
    request's origin ({!Profiler.mint}); grouping the ring by [ev_id]
    therefore recovers one causal graph per logical request, spanning
    VMPLs and — after a steal or a relay — VCPUs.  Spans describe
    *work*; {!Trace.Wait} spans are explicit *wait edges*: cycles the
    request spent parked (runqueue, the serialized monitor entry,
    shootdown acks, blocked polls, the host relay leg) rather than
    executing.

    The critical path of a request is its innermost-wins flattening:
    the timeline of its extent, each slice labelled by the deepest
    enclosing span (wait edges, which nest inside the work span that
    incurred them, win their slice).  Summing slices by (VMPL, reason)
    yields the wait-vs-work decomposition that tells a batching ring
    (ROADMAP item 1) exactly which cycles it can reclaim. *)

type seg = {
  sg_name : string;  (** kind name of the innermost covering span *)
  sg_vmpl : int;
  sg_vcpu : int;
  sg_ts : int;  (** slice start (cycles) *)
  sg_dur : int;  (** slice extent (cycles, > 0) *)
  sg_wait : Trace.wait_reason option;  (** [Some r] if the slice is a wait edge *)
}

type request = {
  rq_id : int;  (** causal id ({!Trace.event.ev_id}) *)
  rq_start : int;
  rq_finish : int;
  rq_segs : seg list;  (** the critical path: time-ordered, gap-free slices *)
  rq_wait : ((int * Trace.wait_reason) * int) list;
      (** (vmpl, reason) -> waiting cycles, sorted *)
  rq_work : (int * int) list;  (** vmpl -> working cycles, sorted; -1 = untraced gap *)
}

val requests : Trace.event list -> request list
(** Reconstruct one {!request} per nonzero causal id found in the
    events (begin/end pairs are matched per VCPU first, exactly like
    the Chrome exporter renders them).  Sorted by start time.  Events
    whose begin was evicted by ring wraparound contribute nothing. *)

val total_work : request -> int

val total_wait : request -> int

val extent : request -> int
(** [rq_finish - rq_start]. *)

type summary = {
  sm_requests : int;
  sm_cycles : int;  (** summed request extents *)
  sm_work : (int * int) list;  (** vmpl -> cycles *)
  sm_wait : ((int * Trace.wait_reason) * int) list;  (** (vmpl, reason) -> cycles *)
}

val summarize : request list -> summary

val wait_by_reason : summary -> (Trace.wait_reason * int) list
(** {!summary.sm_wait} folded over VMPLs. *)

val render : request -> string
(** Human-readable critical-path report for one request (the
    [veilctl scope] per-request block). *)

val render_summary : summary -> string
