(* Folded-stack flamegraph text: one "path weight" line per distinct
   ancestry, the format flamegraph.pl / speedscope / inferno ingest.
   Paths are ";"-separated, rooted at a process name ("veil"), then the
   VMPL segment, then the frame ancestry. *)

let render ?(root = "veil") paths =
  let b = Buffer.create 1024 in
  List.iter
    (fun ((path : string), weight) ->
      Buffer.add_string b root;
      Buffer.add_char b ';';
      Buffer.add_string b path;
      Buffer.add_char b ' ';
      Buffer.add_string b (string_of_int weight);
      Buffer.add_char b '\n')
    paths;
  Buffer.contents b

let parse text =
  String.split_on_char '\n' text
  |> List.filter_map (fun line ->
         let line = String.trim line in
         if line = "" then None
         else
           match String.rindex_opt line ' ' with
           | None -> None
           | Some i -> (
               let path = String.sub line 0 i in
               match int_of_string_opt (String.sub line (i + 1) (String.length line - i - 1)) with
               | None -> None
               | Some w -> Some (path, w)))

(* Sum weights per (vmpl, leaf-bucket) — the folded-side view of the
   profiler ledger.  Expects paths of the form root;vmplN;...;leaf. *)
let leaf_totals lines =
  let tbl : (int * string, int) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun (path, w) ->
      match String.split_on_char ';' path with
      | _root :: vm :: rest when String.length vm > 4 && String.sub vm 0 4 = "vmpl" -> (
          match int_of_string_opt (String.sub vm 4 (String.length vm - 4)) with
          | None -> ()
          | Some vmpl ->
              let leaf = match List.rev rest with l :: _ -> l | [] -> vm in
              let key = (vmpl, leaf) in
              Hashtbl.replace tbl key (w + Option.value ~default:0 (Hashtbl.find_opt tbl key)))
      | _ -> ())
    lines;
  Hashtbl.fold (fun key w acc -> (key, w) :: acc) tbl [] |> List.sort compare
