(** Chrome [trace_event] exporter.

    Serializes a {!Trace.t} into the JSON Array/Object format that
    [chrome://tracing] and Perfetto load: one trace "process" per VCPU
    and one "thread" per VMPL within it, so domain switches read as
    control bouncing between the Dom_UNT / Dom_SEC / Dom_MON / Dom_ENC
    rows of a VCPU.

    Phases map directly: [Instant -> "i"], [Begin -> "B"],
    [End -> "E"], [Complete -> "X"] (with [dur]).  The attribution
    bucket and the kind-specific [arg] ride along in ["args"]. *)

val to_json : ?freq_hz:int -> Trace.t -> string
(** Export all buffered events.  Timestamps are emitted in
    microseconds when [freq_hz] is given (Chrome's native unit,
    computed as [cycles * 1e6 / freq_hz]); without it, raw cycle
    values are used — still valid, just unlabeled units. *)
