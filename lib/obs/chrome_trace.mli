(** Chrome [trace_event] exporter.

    Serializes a {!Trace.t} into the JSON Array/Object format that
    [chrome://tracing] and Perfetto load: one trace "process" per VMPL
    (privilege domain) and one "thread" per VCPU within it, each named
    by [process_name]/[thread_name] metadata records, so domain
    switches read as control bouncing between the vmpl0..vmpl3 process
    groups.

    Phases map directly: [Instant -> "i"], [Begin -> "B"],
    [End -> "E"], [Complete -> "X"] (with [dur]).  The attribution
    bucket, the kind-specific [arg], and the causal trace id (when
    nonzero) ride along in ["args"]. *)

val to_json : ?freq_hz:int -> ?pulse:Pulse.t -> Trace.t -> string
(** Export all buffered events.  Timestamps are emitted in
    microseconds when [freq_hz] is given (Chrome's native unit,
    computed as [cycles * 1e6 / freq_hz]); without it, raw cycle
    values are used — still valid, just unlabeled units.

    With [pulse], one Chrome counter track sample (ph ["C"]) per
    retained Veil-Pulse interval is appended for the core series —
    per-interval syscall count, windowed p99 of
    [kernel.syscall_cycles], and [platform.vmgexit] delta — so
    Perfetto renders metric lanes alongside the span tracks. *)
