(* Veil-Prof — cycle-attribution profiler over the simulated clock.

   Each VCPU owns a preallocated stack of open frames.  Pushing a frame
   records the cycle counter at entry; popping computes the frame's
   *total* (cycles between push and pop on that VCPU's clock) and its
   *self* time (total minus cycles already attributed to child frames
   and leaves), then credits self into two aggregate tables: a ledger
   keyed by (VMPL, bucket name) and a folded-path table keyed by the
   full ancestry string ("vmpl0;os_call;domain_switch;vmgexit").

   Every mutating entry point is a no-op behind a single [t.on] test and
   allocates nothing while disabled, mirroring the Veil-Trace contract:
   instrumented hot paths guard calls with [if Profiler.enabled p] so
   the disabled cost is one branch.  While enabled, push/pop/leaf reuse
   the preallocated frame records and only the aggregate tables allocate
   (once per distinct key plus the folded-path strings). *)

type frame = {
  mutable f_name : string;
  mutable f_vmpl : int;
  mutable f_start : int;
  mutable f_child : int;  (* cycles already credited to children *)
}

type vstack = {
  frames : frame array;
  mutable depth : int;
  mutable overflow : int;  (* pushes refused at max depth, still pop-paired *)
  mutable cur_id : int;  (* causal trace id riding this VCPU; 0 = none *)
}

type cell = { mutable self : int; mutable hits : int }

type t = {
  mutable on : bool;
  max_depth : int;
  mutable stacks : vstack option array;  (* index = VCPU id, grown on demand *)
  ledger : (int * string, cell) Hashtbl.t;  (* (vmpl, bucket) -> self cycles *)
  path_tbl : (string, cell) Hashtbl.t;  (* folded ancestry -> self cycles *)
  mutable next_id : int;
}

let create ?(max_depth = 64) () =
  { on = false;
    max_depth = max 4 max_depth;
    stacks = Array.make 4 None;
    ledger = Hashtbl.create 64;
    path_tbl = Hashtbl.create 256;
    next_id = 0 }

let set_enabled t b = t.on <- b
let enabled t = t.on

let reset t =
  Hashtbl.reset t.ledger;
  Hashtbl.reset t.path_tbl;
  t.next_id <- 0;
  Array.iter
    (function
      | None -> ()
      | Some s ->
          s.depth <- 0;
          s.overflow <- 0;
          s.cur_id <- 0)
    t.stacks

let fresh_frame _ = { f_name = ""; f_vmpl = 0; f_start = 0; f_child = 0 }

let stack t vcpu =
  let vcpu = if vcpu < 0 then 0 else vcpu in
  if vcpu >= Array.length t.stacks then begin
    let grown = Array.make (max (vcpu + 1) (2 * Array.length t.stacks)) None in
    Array.blit t.stacks 0 grown 0 (Array.length t.stacks);
    t.stacks <- grown
  end;
  match t.stacks.(vcpu) with
  | Some s -> s
  | None ->
      let s =
        { frames = Array.init t.max_depth fresh_frame; depth = 0; overflow = 0; cur_id = 0 }
      in
      t.stacks.(vcpu) <- Some s;
      s

let cell_of tbl key =
  match Hashtbl.find_opt tbl key with
  | Some c -> c
  | None ->
      let c = { self = 0; hits = 0 } in
      Hashtbl.replace tbl key c;
      c

(* Credit [self] cycles to bucket [name] emitted at [vmpl], under the
   ancestry currently open on [s] (frames 0..depth-1).  The folded path
   roots at the *recorded frame's own* VMPL — not the root frame's — so
   summing folded leaves per (VMPL, bucket) reproduces the ledger
   exactly even when a request migrates across privilege levels. *)
let record t s ~vmpl ~name ~self =
  let self = if self < 0 then 0 else self in
  let lc = cell_of t.ledger (vmpl, name) in
  lc.self <- lc.self + self;
  lc.hits <- lc.hits + 1;
  let b = Buffer.create 64 in
  Buffer.add_string b "vmpl";
  Buffer.add_string b (string_of_int vmpl);
  for i = 0 to s.depth - 1 do
    Buffer.add_char b ';';
    Buffer.add_string b s.frames.(i).f_name
  done;
  Buffer.add_char b ';';
  Buffer.add_string b name;
  let pc = cell_of t.path_tbl (Buffer.contents b) in
  pc.self <- pc.self + self;
  pc.hits <- pc.hits + 1

let push t ~vcpu ~vmpl ~ts name =
  if t.on then begin
    let s = stack t vcpu in
    if s.depth >= t.max_depth then s.overflow <- s.overflow + 1
    else begin
      let f = s.frames.(s.depth) in
      f.f_name <- name;
      f.f_vmpl <- vmpl;
      f.f_start <- ts;
      f.f_child <- 0;
      s.depth <- s.depth + 1
    end
  end

let pop t ~vcpu ~ts =
  if t.on then begin
    let s = stack t vcpu in
    if s.overflow > 0 then s.overflow <- s.overflow - 1
    else if s.depth > 0 then begin
      (* A pop on an empty stack is tolerated: the matching push may
         predate [set_enabled true] or a [reset]. *)
      s.depth <- s.depth - 1;
      let f = s.frames.(s.depth) in
      let total = ts - f.f_start in
      let total = if total < 0 then 0 else total in
      record t s ~vmpl:f.f_vmpl ~name:f.f_name ~self:(total - f.f_child);
      if s.depth > 0 then begin
        let parent = s.frames.(s.depth - 1) in
        parent.f_child <- parent.f_child + total
      end
    end
  end

let leaf t ~vcpu ~vmpl ~dur name =
  if t.on then begin
    let dur = if dur < 0 then 0 else dur in
    let s = stack t vcpu in
    record t s ~vmpl ~name ~self:dur;
    if s.depth > 0 then begin
      let parent = s.frames.(s.depth - 1) in
      parent.f_child <- parent.f_child + dur
    end
  end

let mint t =
  t.next_id <- t.next_id + 1;
  t.next_id

let set_id t ~vcpu id = if t.on then (stack t vcpu).cur_id <- id

let id t ~vcpu =
  if (not t.on) || vcpu < 0 || vcpu >= Array.length t.stacks then 0
  else match t.stacks.(vcpu) with Some s -> s.cur_id | None -> 0

let open_frames t ~vcpu =
  if vcpu < 0 || vcpu >= Array.length t.stacks then 0
  else match t.stacks.(vcpu) with Some s -> s.depth | None -> 0

let ledger t =
  Hashtbl.fold (fun key c acc -> (key, (c.self, c.hits)) :: acc) t.ledger []
  |> List.sort compare

let paths t =
  Hashtbl.fold (fun path c acc -> ((path, c.self) : string * int) :: acc) t.path_tbl []
  |> List.sort compare

let bucket_self t name =
  Hashtbl.fold (fun (_, n) c acc -> if n = name then acc + c.self else acc) t.ledger 0

let bucket_hits t name =
  Hashtbl.fold (fun (_, n) c acc -> if n = name then acc + c.hits else acc) t.ledger 0

let total_self t = Hashtbl.fold (fun _ c acc -> acc + c.self) t.ledger 0
