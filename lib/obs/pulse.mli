(** Veil-Pulse: continuous time-series telemetry with attested export.

    A cycle-epoch sampler for the metrics registry.  {!tick} runs on
    the platform's world-exit paths (next to the chaos watchdog);
    whenever at least [interval] cycles have elapsed since the current
    epoch opened, the whole registry is captured as a *delta-encoded*
    snapshot into a bounded interval ring: per-interval counter
    deltas, gauge values at capture, and interval-scoped histogram
    buckets from which *windowed* percentiles (p50/p99/p999 of the
    traffic inside the window, not since boot) are computed at
    readout.  Epochs are at least [interval] cycles long and close on
    world-exit boundaries.

    Disarmed, {!tick} is a single flag test; armed with no interval
    elapsing it performs only integer compares — the micro bench pins
    both at zero allocation.

    Tamper evidence: each captured interval is serialized to a
    canonical line, hashed, and folded into a running SHA-256 chain
    ([H(prev || line)], the VeilS-LOG shape).  An anchor line carrying
    the interval digest and chain head is queued for the VeilS-LOG
    region via the ordinary (ringable) [R_log_append] path — see
    [Boot.anchor_pulse].  {!verify_export} recomputes digests and the
    chain over exported data and pinpoints the exact interval a
    hypervisor dropped, reordered, or edited.

    A declarative SLO layer ({!objective}) counts good-vs-bad events
    per burn window straight off the ring's bucket deltas and emits a
    threshold-crossing instant event into the trace ring when the
    error-budget burn rate goes strictly over 1.0. *)

type t

val create : ?ring_cap:int -> metrics:Metrics.t -> unit -> t
(** Fresh sampler, disarmed, retaining the last [ring_cap] (default
    64, clamped to >= 4) intervals. *)

val set_tracer : t -> Trace.t option -> unit
(** Where SLO threshold-crossing instants go (bucket ["pulse"]). *)

val arm : t -> interval:int -> now:int -> unit
(** Start sampling with epochs of [interval] cycles, opening the first
    epoch at cycle [now].  Resets the series (ring, chain, pending
    anchors, objective accounting) and takes the baseline snapshot the
    first interval deltas against. *)

val disarm : t -> unit
val armed : t -> bool
val interval_cycles : t -> int
val ring_capacity : t -> int

val tick : t -> now:int -> bool
(** The world-exit hook.  Disarmed: one flag test.  Armed: advance the
    machine clock (max of per-VCPU cycle counters) and capture an
    interval if the epoch has elapsed.  Allocation-free unless a
    capture fires.  Returns whether a capture fired, so the platform
    can charge the modeled sampling cost to the ticking VCPU. *)

val flush : t -> now:int -> unit
(** Force-close the current partial epoch (if any cycles elapsed) so
    the tail of a run is recorded.  Call at end-of-measurement. *)

(** {2 Readout} *)

val captured : t -> int
(** Intervals captured since {!arm}. *)

val retained : t -> int
(** Intervals still in the ring: [min (captured t) ring_cap]. *)

val overwritten : t -> int
(** Intervals lost to ring wraparound. *)

val first_retained : t -> int
(** Global index of the oldest retained interval. *)

val bounds : t -> int -> (int * int) option
(** [(t0, t1)] cycle bounds of retained interval [i] (global index). *)

val counter_delta : t -> metric:string -> int -> int option
(** Counter delta of [metric] inside retained interval [i]. *)

val gauge_at : t -> metric:string -> int -> int option
(** Gauge value of [metric] at the capture closing interval [i]. *)

val hist_window : t -> metric:string -> window:int -> upto:int -> (int array * int * int) option
(** Merge the interval-scoped buckets of histogram [metric] over the
    [window] retained intervals ending at global index [upto]:
    [(buckets, count, sum)].  None when the metric is unknown, not a
    histogram, or no interval in range is retained. *)

val wpercentile : buckets:int array -> float -> int
(** Percentile over windowed (interval-scoped) buckets: the upper
    bound of the bucket holding the rank-th windowed observation,
    clamped to the highest non-empty bucket's bound.  [p >= 100]
    returns that highest bound.  0 when the window is empty. *)

(** {2 SLOs} *)

val objective : t -> name:string -> metric:string -> good_below:int -> slo:float -> window:int -> unit
(** Declare an objective: over every trailing [window] intervals, at
    least fraction [slo] (in (0,1), e.g. 0.999) of [metric]'s
    observations must fall in buckets wholly at or below [good_below]
    cycles (partial buckets count bad — conservative).  The error
    budget is [(1 - slo) * total]; burn rate is [bad / budget].  A
    crossing fires (trace instant [slo.<name>], bucket ["pulse"]) when
    burn goes *strictly* over 1.0 — exactly on budget is on-target.
    Evaluated at every capture; accounting is integer-exact in
    parts-per-million so the on-target edge cannot be lost to float
    rounding. *)

type burn_report = {
  br_name : string;
  br_metric : string;
  br_good_below : int;
  br_slo : float;
  br_window : int;
  br_total : int;  (** events in the current window *)
  br_bad : int;  (** events over target *)
  br_budget : float;  (** allowed bad events *)
  br_burn : float;  (** bad / budget; 0 when both are 0 *)
  br_crossed : bool;  (** currently burning over 1.0 *)
  br_crossings : int;  (** edge-triggered crossing count *)
}

val burn_reports : t -> burn_report list
(** One report per declared objective, registration order. *)

(** {2 Attested export} *)

val chain_digest : t -> bytes
(** Running SHA-256 chain head over every captured interval line. *)

val pending_anchors : t -> int

val pop_anchor : t -> string option
(** Oldest not-yet-anchored interval's anchor line
    (["pulse i=<n> t1=<cycle> digest=<hex> chain=<hex>"]) — Boot
    drains these into VeilS-LOG through [R_log_append]. *)

val anchors_emitted : t -> int
(** Anchor lines handed out so far. *)

val export : t -> string
(** Serialized retained intervals (header + one canonical line each) —
    the telemetry a hypervisor would ship to a remote verifier, and
    the input {!verify_export} checks. *)

val verify_export : t -> string -> (int, int * string) result
(** Recompute every exported interval's digest (and, when the whole
    series is retained, the full chain) against the trusted per-
    interval digests.  [Ok n] on a clean export of [n] intervals;
    [Error (i, reason)] pinpoints the first dropped / reordered /
    edited interval. *)
