type counter = { mutable c : int }
type gauge = { mutable g : int }

(* Bucket 0 holds value 0; bucket i >= 1 holds [2^(i-1), 2^i - 1].  62
   buckets cover the whole non-negative OCaml int range. *)
let nbuckets = 63

type histogram = {
  buckets : int array;
  mutable n : int;
  mutable sum : int;
  mutable mn : int;
  mutable mx : int;
}

type metric = Counter of counter | Gauge of gauge | Histogram of histogram

type t = {
  tbl : (string, metric) Hashtbl.t;
  (* Registration order, dense and append-only: snapshots address
     metrics by index, so indices must stay stable across [reset]. *)
  mutable order : (string * metric) array;
  mutable nordered : int;
  mutable refresh : unit -> unit;
}

let no_refresh () = ()

let create () =
  { tbl = Hashtbl.create 64; order = Array.make 16 ("", Counter { c = 0 }); nordered = 0;
    refresh = no_refresh }

let set_refresh t f = t.refresh <- f
let refresh t = t.refresh ()

let kind_label = function Counter _ -> "counter" | Gauge _ -> "gauge" | Histogram _ -> "histogram"

let order_push t name m =
  if t.nordered = Array.length t.order then begin
    let bigger = Array.make (2 * t.nordered) ("", m) in
    Array.blit t.order 0 bigger 0 t.nordered;
    t.order <- bigger
  end;
  t.order.(t.nordered) <- (name, m);
  t.nordered <- t.nordered + 1

let intern t name make match_ =
  match Hashtbl.find_opt t.tbl name with
  | Some m -> (
      match match_ m with
      | Some h -> h
      | None ->
          invalid_arg
            (Printf.sprintf "Metrics: %S is already registered as a %s" name (kind_label m)))
  | None ->
      let m = make () in
      Hashtbl.replace t.tbl name m;
      order_push t name m;
      (match match_ m with Some h -> h | None -> assert false)

let counter t name =
  intern t name (fun () -> Counter { c = 0 }) (function Counter c -> Some c | _ -> None)

let gauge t name =
  intern t name (fun () -> Gauge { g = 0 }) (function Gauge g -> Some g | _ -> None)

let histogram t name =
  intern t name
    (fun () -> Histogram { buckets = Array.make nbuckets 0; n = 0; sum = 0; mn = 0; mx = 0 })
    (function Histogram h -> Some h | _ -> None)

let incr c = c.c <- c.c + 1
let add c n = c.c <- c.c + n
let value c = c.c

let set g v = g.g <- v
let gauge_value g = g.g

let bucket_of v =
  if v <= 0 then 0
  else begin
    (* index = floor(log2 v) + 1 *)
    let i = ref 0 and v = ref v in
    while !v > 0 do
      v := !v lsr 1;
      i := !i + 1
    done;
    min !i (nbuckets - 1)
  end

(* Bucket [i] spans [2^(i-1), 2^i - 1]; bucket 0 holds only 0. *)
let bucket_hi i = if i = 0 then 0 else (1 lsl i) - 1

let observe h v =
  let v = max 0 v in
  let b = bucket_of v in
  h.buckets.(b) <- h.buckets.(b) + 1;
  if h.n = 0 then begin
    h.mn <- v;
    h.mx <- v
  end
  else begin
    if v < h.mn then h.mn <- v;
    if v > h.mx then h.mx <- v
  end;
  h.n <- h.n + 1;
  h.sum <- h.sum + v

let hist_count h = h.n
let hist_sum h = h.sum
let hist_min h = h.mn
let hist_max h = h.mx

let mean h = if h.n = 0 then 0.0 else float_of_int h.sum /. float_of_int h.n

let percentile h p =
  if h.n = 0 then 0
  else if p >= 100.0 then h.mx (* the true observed max, not a bucket lower bound *)
  else begin
    let rank = max 1 (int_of_float (ceil (p /. 100.0 *. float_of_int h.n))) in
    let rank = min rank h.n in
    let cum = ref 0 and result = ref 0 and found = ref false in
    for i = 0 to nbuckets - 1 do
      if not !found then begin
        cum := !cum + h.buckets.(i);
        if !cum >= rank then begin
          found := true;
          (* Conservative (upper-bound) estimate: the rank-th sample is
             *at most* the bucket's upper edge, clamped to the observed
             max.  The lower bound under-reported by up to 2x — e.g. a
             histogram of identical 1000-cycle samples answered p50 =
             512 (see DESIGN.md §9b). *)
          result := min h.mx (bucket_hi i)
        end
      end
    done;
    !result
  end

let find t name = Hashtbl.find_opt t.tbl name

let names t =
  List.sort compare (Hashtbl.fold (fun name _ acc -> name :: acc) t.tbl [])

let reset t =
  Hashtbl.iter
    (fun _ -> function
      | Counter c -> c.c <- 0
      | Gauge g -> g.g <- 0
      | Histogram h ->
          Array.fill h.buckets 0 nbuckets 0;
          h.n <- 0;
          h.sum <- 0;
          h.mn <- 0;
          h.mx <- 0)
    t.tbl

(* ------------------------------------------------------------------ *)
(* Snapshots: a flattened int-array image of every registered metric,
   preallocated so the sampler's hot path performs only int stores and
   [Array.blit] — no interning, no boxing.  Slot layout per metric:
   counter → 1 slot, gauge → 1 slot, histogram → [nbuckets] bucket
   slots followed by n / sum / mn / mx ([hist_slots] total). *)

let hist_slots = nbuckets + 4

type skind = K_counter | K_gauge | K_histogram

type snapshot = {
  mutable sn : int;  (** metrics covered *)
  mutable skinds : skind array;
  mutable snames : string array;
  mutable soffs : int array;  (** slot offset per metric index *)
  mutable sdata : int array;
  mutable slen : int;  (** total slots used *)
}

let slots_of = function Counter _ | Gauge _ -> 1 | Histogram _ -> hist_slots
let skind_of = function Counter _ -> K_counter | Gauge _ -> K_gauge | Histogram _ -> K_histogram

let snap_layout t s =
  (* (Re)size the snapshot to the current registry.  Allocates only
     when the registry grew since the last layout. *)
  if s.sn <> t.nordered then begin
    let total = ref 0 in
    for i = 0 to t.nordered - 1 do
      total := !total + slots_of (snd t.order.(i))
    done;
    let kinds = Array.make (max 1 t.nordered) K_counter in
    let names = Array.make (max 1 t.nordered) "" in
    let offs = Array.make (max 1 t.nordered) 0 in
    let data = Array.make (max 1 !total) 0 in
    let off = ref 0 in
    for i = 0 to t.nordered - 1 do
      let name, m = t.order.(i) in
      kinds.(i) <- skind_of m;
      names.(i) <- name;
      offs.(i) <- !off;
      off := !off + slots_of m
    done;
    s.sn <- t.nordered;
    s.skinds <- kinds;
    s.snames <- names;
    s.soffs <- offs;
    s.sdata <- data;
    s.slen <- !total
  end

let snapshot_create t =
  let s =
    { sn = -1; skinds = [||]; snames = [||]; soffs = [||]; sdata = [||]; slen = 0 }
  in
  snap_layout t s;
  s

let snapshot_take t s =
  t.refresh ();
  snap_layout t s;
  let data = s.sdata in
  for i = 0 to s.sn - 1 do
    let off = s.soffs.(i) in
    match snd t.order.(i) with
    | Counter c -> data.(off) <- c.c
    | Gauge g -> data.(off) <- g.g
    | Histogram h ->
        Array.blit h.buckets 0 data off nbuckets;
        data.(off + nbuckets) <- h.n;
        data.(off + nbuckets + 1) <- h.sum;
        data.(off + nbuckets + 2) <- h.mn;
        data.(off + nbuckets + 3) <- h.mx
  done

let snap_metrics s = s.sn
let snap_slots s = s.slen
let snap_name s i = s.snames.(i)
let snap_kind s i = s.skinds.(i)
let snap_offset s i = s.soffs.(i)
let snap_data s = s.sdata

let diff ~prev ~cur ~into =
  (* Per-interval deltas of [cur] against [prev], written into the
     caller-owned [into] (length >= [cur.slen]).  Counter and
     histogram bucket/n/sum slots delta with counter-reset semantics
     (cur < prev → delta = cur, Prometheus-style); gauge and histogram
     mn/mx slots carry the current value. *)
  if Array.length into < cur.slen then invalid_arg "Metrics.diff: into too small";
  let pdata = prev.sdata and cdata = cur.sdata in
  for i = 0 to cur.sn - 1 do
    let off = cur.soffs.(i) in
    let prev_at j = if i < prev.sn && j < prev.slen then pdata.(j) else 0 in
    let mono j =
      let c = cdata.(j) and p = prev_at j in
      into.(j) <- (if c < p then c else c - p)
    in
    match cur.skinds.(i) with
    | K_counter -> mono off
    | K_gauge -> into.(off) <- cdata.(off)
    | K_histogram ->
        for j = off to off + nbuckets + 1 do
          mono j
        done;
        into.(off + nbuckets + 2) <- cdata.(off + nbuckets + 2);
        into.(off + nbuckets + 3) <- cdata.(off + nbuckets + 3)
  done

(* Cross-instance aggregation (Veil-Fleet).  Every guest owns its own
   registry, so fleet-level percentiles need the guests' histograms
   summed bucket-by-bucket.  This is *not* [diff]: the sources are
   absolute per-instance totals, not successive samples of one stream,
   so Prometheus counter-reset semantics (cur < prev → delta = cur)
   must never be applied here — two guests with different reset epochs
   would silently drop one guest's traffic.  Values add; min/max
   widen. *)
let merge_into ~into src =
  for i = 0 to src.nordered - 1 do
    let name, m = src.order.(i) in
    match m with
    | Counter c -> add (counter into name) c.c
    | Gauge g ->
        let dst = gauge into name in
        set dst (gauge_value dst + g.g)
    | Histogram h ->
        let dst = histogram into name in
        if h.n > 0 then begin
          for b = 0 to nbuckets - 1 do
            dst.buckets.(b) <- dst.buckets.(b) + h.buckets.(b)
          done;
          if dst.n = 0 then begin
            dst.mn <- h.mn;
            dst.mx <- h.mx
          end
          else begin
            if h.mn < dst.mn then dst.mn <- h.mn;
            if h.mx > dst.mx then dst.mx <- h.mx
          end;
          dst.n <- dst.n + h.n;
          dst.sum <- dst.sum + h.sum
        end
  done

let merge srcs =
  let into = create () in
  List.iter (fun src -> merge_into ~into src) srcs;
  into

let dump t =
  refresh t;
  let buf = Buffer.create 256 in
  List.iter
    (fun name ->
      match Hashtbl.find t.tbl name with
      | Counter c -> Buffer.add_string buf (Printf.sprintf "%-40s %d\n" name c.c)
      | Gauge g -> Buffer.add_string buf (Printf.sprintf "%-40s %d (gauge)\n" name g.g)
      | Histogram h ->
          Buffer.add_string buf
            (Printf.sprintf "%-40s count=%d sum=%d min=%d max=%d mean=%.1f p50=%d p95=%d p99=%d\n"
               name h.n h.sum h.mn h.mx (mean h) (percentile h 50.0) (percentile h 95.0)
               (percentile h 99.0)))
    (names t);
  Buffer.contents buf

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json t =
  refresh t;
  let pick f = List.filter_map (fun n -> f n (Hashtbl.find t.tbl n)) (names t) in
  let obj fields = "{" ^ String.concat "," fields ^ "}" in
  let counters =
    pick (fun n -> function
      | Counter c -> Some (Printf.sprintf "\"%s\":%d" (json_escape n) c.c)
      | _ -> None)
  in
  let gauges =
    pick (fun n -> function
      | Gauge g -> Some (Printf.sprintf "\"%s\":%d" (json_escape n) g.g)
      | _ -> None)
  in
  let histograms =
    pick (fun n -> function
      | Histogram h ->
          Some
            (Printf.sprintf
               "\"%s\":{\"count\":%d,\"sum\":%d,\"min\":%d,\"max\":%d,\"mean\":%g,\"p50\":%d,\"p95\":%d,\"p99\":%d,\"p999\":%d}"
               (json_escape n) h.n h.sum h.mn h.mx (mean h) (percentile h 50.0) (percentile h 95.0)
               (percentile h 99.0) (percentile h 99.9))
      | _ -> None)
  in
  obj
    [
      "\"counters\":" ^ obj counters;
      "\"gauges\":" ^ obj gauges;
      "\"histograms\":" ^ obj histograms;
    ]
