(** Folded-stack flamegraph text, the format consumed by flamegraph.pl,
    speedscope, and inferno: one ["path weight"] line per distinct
    ancestry, path segments joined with [";"]. *)

val render : ?root:string -> (string * int) list -> string
(** Render {!Profiler.paths} output, prefixing each path with
    [root] (default ["veil"]):
    ["veil;vmpl0;domain_switch;vmgexit 550000\n..."]. *)

val parse : string -> (string * int) list
(** Inverse of {!render} (paths keep their root segment); blank and
    malformed lines are skipped. *)

val leaf_totals : (string * int) list -> ((int * string) * int) list
(** Sum parsed weights per (VMPL, leaf bucket) — comparable against
    {!Profiler.ledger} self totals. *)
