(** Veil-Prof — per-VCPU hierarchical cycle-attribution profiler.

    Frames are opened ({!push}) and closed ({!pop}) around simulator
    operations, timed on the simulated cycle clock.  Closing a frame
    computes its *total* cycles (pop ts − push ts) and *self* cycles
    (total minus cycles attributed to nested frames and {!leaf}
    charges), and credits self into

    - a machine-wide ledger keyed by [(vmpl, bucket)], and
    - a folded-path table keyed by the ancestry string
      (["vmpl0;os_call;domain_switch;vmgexit"]), renderable as
      flamegraph folded-stack text via {!Folded.render}.

    Leaves ({!leaf}) attribute a known duration under the current stack
    without opening a frame — used for fixed-cost hardware legs
    (VMGEXIT, VMSA save/restore, GHCB protocol, PVALIDATE, ...).

    The profiler also carries one *causal trace id* per VCPU
    ({!mint}/{!set_id}/{!id}).  Ids are minted at request origins
    (syscall entry, enclave ecall, IDCB request) and, because the slot
    is per-VCPU rather than per-privilege-level, survive VMGEXIT →
    hypervisor relay → VMENTER world switches: every layer a request
    crosses tags its events with the same id.

    Disabled (the default), every mutating entry point returns after a
    single flag test and allocates nothing — the same contract as
    {!Trace}, enforced by the bench alloc-check. *)

type t

val create : ?max_depth:int -> unit -> t
(** Fresh disabled profiler; per-VCPU stacks hold up to [max_depth]
    (default 64, clamped to >= 4) open frames — deeper pushes are
    counted and dropped, and their pops matched. *)

val set_enabled : t -> bool -> unit
val enabled : t -> bool

val reset : t -> unit
(** Drop all attribution, open frames, and causal ids (the enabled flag
    is unchanged); the id generator restarts at 1. *)

val push : t -> vcpu:int -> vmpl:int -> ts:int -> string -> unit
(** Open a frame named after its attribution bucket.  No-op while
    disabled; guard hot paths with {!enabled}. *)

val pop : t -> vcpu:int -> ts:int -> unit
(** Close the most recent open frame on [vcpu] and credit its self
    cycles.  A pop with no open frame is tolerated (the push may
    predate enabling). *)

val leaf : t -> vcpu:int -> vmpl:int -> dur:int -> string -> unit
(** Attribute [dur] self cycles to a leaf bucket under the current
    stack, without opening a frame.  The enclosing frame's self time is
    reduced accordingly. *)

val mint : t -> int
(** Fresh nonzero causal id (monotonic from 1). *)

val set_id : t -> vcpu:int -> int -> unit
(** Set the causal id riding [vcpu]; 0 clears it.  No-op while
    disabled. *)

val id : t -> vcpu:int -> int
(** Causal id riding [vcpu]; 0 while disabled or unset.  Never
    allocates. *)

val open_frames : t -> vcpu:int -> int
(** Frames currently open on [vcpu] (unclosed work-in-progress is not
    yet in the ledger). *)

val ledger : t -> ((int * string) * (int * int)) list
(** [((vmpl, bucket), (self_cycles, hits))], sorted. *)

val paths : t -> (string * int) list
(** [(folded_path, self_cycles)], sorted; paths root at the recorded
    frame's own VMPL segment so per-(VMPL, bucket) folded totals equal
    the {!ledger}. *)

val bucket_self : t -> string -> int
(** Total self cycles for [bucket] across all VMPLs. *)

val bucket_hits : t -> string -> int

val total_self : t -> int
(** Sum of self cycles over the whole ledger. *)
