(** Veil-Chaos fault plans (ISSUE 4).

    A fault plan is a deterministic, seed-driven schedule of
    hypervisor-side misbehaviours: every injection site in the
    simulator asks the plan [fire plan site] at the moment it *could*
    misbehave, and the plan answers from a seeded PRNG and per-site
    probability/count schedules.  There is no wall-clock anywhere —
    replaying the same seed against the same workload reproduces the
    identical injection journal, which is what lets a failing chaos
    trial be debugged from nothing but the seed printed on failure.

    The module is dependency-free so the lowest layers (sevsnp,
    hypervisor) can hold a plan without cycles.  Hot-path discipline:
    when a site's probability is zero, [fire] returns [false] without
    consuming PRNG state or allocating, so an armed all-zero plan is
    indistinguishable (cycle- and allocation-wise) from no plan. *)

type site =
  | Relay_drop      (** hypervisor silently drops an interrupt relay *)
  | Relay_dup       (** delivers the same interrupt twice *)
  | Relay_reorder   (** holds an interrupt back, delivers it after the next one *)
  | Relay_refuse    (** refuses to relay (one-shot [set_refuse_interrupt_relay]) *)
  | Vmgexit_delay   (** services the exit only after extra scheduling delay *)
  | Vmgexit_refuse  (** declines to service a GHCB request (out-of-protocol response) *)
  | Spurious_exit   (** charges the guest a VM-exit it never asked for *)
  | Rmpadjust_fail  (** RMPADJUST returns transient FAIL_INUSE *)
  | Pvalidate_fail  (** PVALIDATE returns transient FAIL_INUSE *)
  | Spurious_npf    (** a resumable nested-page-fault exit (re-executed) *)
  | Ghcb_corrupt    (** scribbles hypervisor-writable GHCB fields after service *)
  | Shared_bitflip  (** flips one bit in a Shared page (never a private one) *)
  | Ring_slot_corrupt
      (** scribbles a submitted Veil-Ring slot between submit and
          drain (the ring lives in OS memory — TOCTOU); the monitor
          must reject the slot without poisoning the rest of the batch *)
  | Pulse_export_tamper
      (** corrupts or drops one exported Veil-Pulse telemetry interval
          before the verifier sees it; chain verification must flag
          the exact interval — tampering is detected, never silently
          accepted as clean numbers *)

type t

val all_sites : site list
val nsites : int
val site_name : site -> string
val site_of_name : string -> site option

val create : ?max_steps:int -> ?journal_cap:int -> seed:int -> unit -> t
(** A fresh plan with every site probability 0 (fires nothing).
    [max_steps] (default 1e9) bounds {!step} — the watchdog budget. *)

val seed : t -> int

val set_site : t -> site -> ?max_hits:int -> ?skip:int -> prob:float -> unit -> unit
(** Arm [site]: each [fire] draws true with probability [prob]
    (clamped to [0,1]).  [max_hits] caps total injections at the site
    (default unlimited); [skip] ignores the first [skip] eligible
    draws (lets a plan target "the Nth rmpadjust", not just rates). *)

val fire : t -> site -> bool
(** Ask the plan whether to inject at [site] now.  Counts the hit and
    journals [(step, site)] when true.  Zero-probability sites return
    [false] with no PRNG draw and no allocation. *)

val site_enabled : t -> site -> bool
(** Whether [site] has a non-zero probability.  Lets injection points
    skip allocating setup work (e.g. a GHCB lookup) that only matters
    if the site can ever fire — keeps an armed all-zero plan exactly
    as cheap as a disarmed platform. *)

val draw : t -> int -> int
(** Uniform draw in [\[0, n)] for injection parameters (delay
    magnitude, which bit to flip, ...).  Deterministic given the call
    sequence. *)

val step : t -> bool
(** Advance the watchdog step counter (called once per VM-exit).
    Returns [false] once the budget [max_steps] is exhausted — the
    platform halts the CVM rather than let a protocol hang. *)

val steps : t -> int
val hits : t -> site -> int
val total_hits : t -> int
val draws : t -> site -> int

val journal : t -> (int * site) list
(** Injections in order: [(watchdog step when fired, site)].  Bounded
    by [journal_cap] (default 65536, oldest kept). *)

val journal_equal : t -> t -> bool
(** Replay-identity check: same journal, same per-site hit counts. *)

val summary_json : t -> string
(** [{"seed":..,"steps":..,"site_hits":{..},"total_hits":..}] *)
