(* Deterministic seed-driven fault plan.  Everything here is immediate
   ints — the PRNG is a 63-bit xorshift over a mutable int field, and
   zero-probability sites short-circuit before touching it — so an
   armed plan whose sites are all disarmed costs the hot paths exactly
   one load + compare and zero allocation. *)

type site =
  | Relay_drop
  | Relay_dup
  | Relay_reorder
  | Relay_refuse
  | Vmgexit_delay
  | Vmgexit_refuse
  | Spurious_exit
  | Rmpadjust_fail
  | Pvalidate_fail
  | Spurious_npf
  | Ghcb_corrupt
  | Shared_bitflip
  | Ring_slot_corrupt
  | Pulse_export_tamper

let all_sites =
  [ Relay_drop; Relay_dup; Relay_reorder; Relay_refuse; Vmgexit_delay; Vmgexit_refuse;
    Spurious_exit; Rmpadjust_fail; Pvalidate_fail; Spurious_npf; Ghcb_corrupt; Shared_bitflip;
    Ring_slot_corrupt; Pulse_export_tamper ]

let nsites = 14

let site_index = function
  | Relay_drop -> 0
  | Relay_dup -> 1
  | Relay_reorder -> 2
  | Relay_refuse -> 3
  | Vmgexit_delay -> 4
  | Vmgexit_refuse -> 5
  | Spurious_exit -> 6
  | Rmpadjust_fail -> 7
  | Pvalidate_fail -> 8
  | Spurious_npf -> 9
  | Ghcb_corrupt -> 10
  | Shared_bitflip -> 11
  | Ring_slot_corrupt -> 12
  | Pulse_export_tamper -> 13

let site_of_index = function
  | 0 -> Relay_drop
  | 1 -> Relay_dup
  | 2 -> Relay_reorder
  | 3 -> Relay_refuse
  | 4 -> Vmgexit_delay
  | 5 -> Vmgexit_refuse
  | 6 -> Spurious_exit
  | 7 -> Rmpadjust_fail
  | 8 -> Pvalidate_fail
  | 9 -> Spurious_npf
  | 10 -> Ghcb_corrupt
  | 11 -> Shared_bitflip
  | 12 -> Ring_slot_corrupt
  | 13 -> Pulse_export_tamper
  | i -> invalid_arg (Printf.sprintf "Fault_plan.site_of_index %d" i)

let site_name = function
  | Relay_drop -> "relay_drop"
  | Relay_dup -> "relay_dup"
  | Relay_reorder -> "relay_reorder"
  | Relay_refuse -> "relay_refuse"
  | Vmgexit_delay -> "vmgexit_delay"
  | Vmgexit_refuse -> "vmgexit_refuse"
  | Spurious_exit -> "spurious_exit"
  | Rmpadjust_fail -> "rmpadjust_fail"
  | Pvalidate_fail -> "pvalidate_fail"
  | Spurious_npf -> "spurious_npf"
  | Ghcb_corrupt -> "ghcb_corrupt"
  | Shared_bitflip -> "shared_bitflip"
  | Ring_slot_corrupt -> "ring_slot_corrupt"
  | Pulse_export_tamper -> "pulse_export_tamper"

let site_of_name n = List.find_opt (fun s -> site_name s = n) all_sites

(* Probabilities are stored as integer thresholds in [0, prob_one] so
   a fire check is "draw 16 bits, compare" with no float traffic. *)
let prob_one = 65536

type t = {
  seed : int;
  mutable state : int;  (* xorshift state, never 0 *)
  prob : int array;     (* per-site threshold, 0 = disarmed *)
  max_hits : int array; (* -1 = unlimited *)
  skip : int array;     (* eligible draws to ignore before the first hit *)
  hits : int array;
  draws_a : int array;
  mutable nsteps : int;
  max_steps : int;
  journal_cap : int;
  mutable journal_len : int;
  mutable journal_rev : (int * int) list;  (* (step, site_index), newest first *)
}

let create ?(max_steps = 1_000_000_000) ?(journal_cap = 65536) ~seed () =
  let mixed = (seed * 0x9E3779B1) lxor (seed lsr 16) lxor 0x6A09E667 in
  {
    seed;
    (* [lor 1] is load-bearing, not belt-and-braces: xorshift fixes 0,
       and seeds solving [mixed land max_int = 0] exist (e.g.
       0x396b1b8a8b9b10bc) — without it the armed plan would silently
       never fire.  Covered by the adversarial-seed regression in
       t_chaos.ml; do not "simplify" away. *)
    state = (mixed land max_int) lor 1;
    prob = Array.make nsites 0;
    max_hits = Array.make nsites (-1);
    skip = Array.make nsites 0;
    hits = Array.make nsites 0;
    draws_a = Array.make nsites 0;
    nsteps = 0;
    max_steps;
    journal_cap;
    journal_len = 0;
    journal_rev = [];
  }

let seed t = t.seed

let set_site t site ?(max_hits = -1) ?(skip = 0) ~prob () =
  let i = site_index site in
  let p = if prob <= 0.0 then 0 else if prob >= 1.0 then prob_one else
      int_of_float (prob *. float_of_int prob_one) in
  (* a tiny nonzero prob must stay armed *)
  t.prob.(i) <- (if prob > 0.0 && p = 0 then 1 else p);
  t.max_hits.(i) <- max_hits;
  t.skip.(i) <- skip

(* 63-bit xorshift; immediate-int arithmetic only *)
let next t =
  let x = t.state in
  let x = x lxor ((x lsl 13) land max_int) in
  let x = x lxor (x lsr 7) in
  let x = x lxor ((x lsl 17) land max_int) in
  t.state <- x;
  x

let draw t n = if n <= 0 then 0 else next t mod n

let site_enabled t site = Array.unsafe_get t.prob (site_index site) <> 0

let fire t site =
  let i = site_index site in
  let p = Array.unsafe_get t.prob i in
  if p = 0 then false
  else begin
    let d = t.draws_a.(i) + 1 in
    t.draws_a.(i) <- d;
    if d <= t.skip.(i) then false
    else if t.max_hits.(i) >= 0 && t.hits.(i) >= t.max_hits.(i) then false
    else if next t land 0xFFFF < p then begin
      t.hits.(i) <- t.hits.(i) + 1;
      if t.journal_len < t.journal_cap then begin
        t.journal_rev <- (t.nsteps, i) :: t.journal_rev;
        t.journal_len <- t.journal_len + 1
      end;
      true
    end
    else false
  end

let step t =
  t.nsteps <- t.nsteps + 1;
  t.nsteps <= t.max_steps

let steps t = t.nsteps
let hits t site = t.hits.(site_index site)
let draws t site = t.draws_a.(site_index site)
let total_hits t = Array.fold_left ( + ) 0 t.hits

let journal t =
  List.rev_map (fun (step, i) -> (step, site_of_index i)) t.journal_rev

let journal_equal a b =
  a.journal_rev = b.journal_rev && a.hits = b.hits

let summary_json t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "{\"seed\":%d,\"steps\":%d,\"total_hits\":%d,\"site_hits\":{" t.seed
       t.nsteps (total_hits t));
  List.iteri
    (fun k s ->
      if k > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "\"%s\":%d" (site_name s) (hits t s)))
    all_sites;
  Buffer.add_string buf "}}";
  Buffer.contents buf
