(** Veil-Chaos trial driver (ISSUE 4).

    Runs the paper's workloads — boot, the E4 syscall bench, a shielded
    enclave, VeilS-LOG, and attested Veil-Pulse telemetry export — on
    freshly booted guests with a seeded
    {!Chaos.Fault_plan} armed on the platform, and classifies each
    trial against the two robustness invariants:

    + every Table 1/2 security outcome stays [Blocked_*] under any
      fault plan (no [Breached]);
    + guest-visible results are either correct or an explicit
      degraded/refused error — never silent corruption, and never a
      hang (the plan's step budget acts as the watchdog).

    Everything is derived from one integer seed, so a failing trial is
    reproduced exactly by re-running with the seed the driver printed. *)

type workload_kind = Wl_boot | Wl_syscall | Wl_enclave | Wl_slog | Wl_pulse

val all_workloads : workload_kind list
val workload_name : workload_kind -> string
val workload_of_name : string -> workload_kind option

(** How a trial ended.  [Passed], [Degraded] and [Halted] satisfy
    invariant (2) — the guest saw a correct result, an explicit
    degraded/refused error, or an explicit halt.  The rest are
    violations: [Watchdog] is a detected hang, [Corrupt] a silently
    wrong guest-visible result, [Crashed] an unclassified exception
    escaping the simulator. *)
type outcome = Chaos_outcome.t =
  | Passed
  | Degraded of string
  | Halted of string
  | Watchdog of string
  | Corrupt of string
  | Crashed of string

val outcome_ok : outcome -> bool
val outcome_to_string : outcome -> string

type trial = {
  tr_workload : workload_kind;
  tr_seed : int;  (** the effective fault-plan seed — replay with this *)
  tr_outcome : outcome;
  tr_steps : int;  (** world exits consumed by the trial *)
  tr_hits : (string * int) list;  (** site name -> injections fired *)
  tr_plan : Chaos.Fault_plan.t;  (** the spent plan (journal inside) *)
}

val derive_seed : seed:int -> trial:int -> which:int -> int
(** The deterministic seed mixer: plan seed for [which] (workload
    index, or 99 for the attack sweep) of trial [trial] under
    top-level [seed]. *)

val make_plan : ?sites:Chaos.Fault_plan.site list -> seed:int -> unit -> Chaos.Fault_plan.t
(** A trial plan: the selected sites (default: all 12) armed at the
    driver's default per-site probabilities, watchdog budget set. *)

val run_workload :
  ?sites:Chaos.Fault_plan.site list -> ?vcpus:int -> seed:int -> workload_kind -> trial
(** One workload under one fault plan seeded with exactly [seed].
    [vcpus] (default 1) runs the syscall workload as per-VCPU workers
    under the deterministic SMP interleaver — AP bring-up then crosses
    the fault-injected monitor protocols too.  [vcpus = 1] keeps the
    pre-SMP schedule byte-for-byte. *)

val attacks_under_chaos :
  ?sites:Chaos.Fault_plan.site list -> seed:int -> unit -> (string * string) list * int
(** Run every Table 1/2/§8.3 attack with a chaos plan armed on each
    attack's freshly booted guest.  Returns the breached attacks as
    [(name, outcome)] (must be empty) and the number of attacks run. *)

type report = {
  rp_seed : int;
  rp_trials : trial list;
  rp_attacks_run : int;
  rp_breached : (string * string) list;
  rp_site_hits : (string * int) list;  (** aggregated over all plans *)
  rp_replay_ok : bool;  (** re-running trial 0 reproduced its journal *)
  rp_ok : bool;
}

val run :
  ?sites:Chaos.Fault_plan.site list ->
  ?trials:int ->
  ?workloads:workload_kind list ->
  ?check_replay:bool ->
  ?vcpus:int ->
  seed:int ->
  unit ->
  report
(** The [veilctl chaos] engine: [trials] (default 3) rounds of every
    selected workload plus the attack sweep, one derived plan each,
    followed (when [check_replay], the default) by a replay-identity
    check of the first trial.  [vcpus] is forwarded to
    {!run_workload}. *)

val report_json : report -> string
(** One JSON object with the effective seed, per-trial outcomes,
    aggregated per-site hit counts, breached-attack list and the
    replay verdict — what CI uploads as the failing-plan artifact. *)
