module FP = Chaos.Fault_plan
module T = Sevsnp.Types
module K = Guest_kernel.Kernel
module Kt = Guest_kernel.Ktypes
module S = Guest_kernel.Sysno
module B = Veil_core.Boot
module A = Veil_attacks.Attacks
module Rt = Enclave_sdk.Runtime
module Smp = Veil_core.Smp

type workload_kind = Wl_boot | Wl_syscall | Wl_enclave | Wl_slog | Wl_pulse

let all_workloads = [ Wl_boot; Wl_syscall; Wl_enclave; Wl_slog; Wl_pulse ]

let workload_name = function
  | Wl_boot -> "boot"
  | Wl_syscall -> "syscall"
  | Wl_enclave -> "enclave"
  | Wl_slog -> "slog"
  | Wl_pulse -> "pulse"

let workload_of_name = function
  | "boot" -> Some Wl_boot
  | "syscall" -> Some Wl_syscall
  | "enclave" -> Some Wl_enclave
  | "slog" -> Some Wl_slog
  | "pulse" -> Some Wl_pulse
  | _ -> None

(* The classifier lives in the shared {!Chaos_outcome} module (used by
   Veil-Explore too); the driver re-exports the type with its historic
   name so callers and the JSON report are unchanged. *)
type outcome = Chaos_outcome.t =
  | Passed
  | Degraded of string
  | Halted of string
  | Watchdog of string
  | Corrupt of string
  | Crashed of string

let outcome_ok = Chaos_outcome.ok
let outcome_to_string = Chaos_outcome.to_string

type trial = {
  tr_workload : workload_kind;
  tr_seed : int;
  tr_outcome : outcome;
  tr_steps : int;
  tr_hits : (string * int) list;
  tr_plan : FP.t;
}

(* One integer drives everything: a trial's plan seed is a fixed mix of
   the top-level seed, the trial round and the workload slot, so any
   failing plan is reproduced from the numbers the driver prints. *)
let derive_seed ~seed ~trial ~which =
  (((seed * 1_000_003) + (trial * 8191) + (which * 127)) land 0x3FFF_FFFF) lor 1

(* Per-site default probabilities.  Sites consulted once per world exit
   fire rarely (the guest takes thousands of exits per trial); sites
   consulted only on interrupt relays fire often (there are few).  All
   are far below the point where the guest's 6-attempt retry budgets
   could plausibly exhaust (p^7 per operation). *)
let default_prob = function
  | FP.Relay_drop | FP.Relay_dup | FP.Relay_reorder | FP.Relay_refuse -> 0.05
  | FP.Vmgexit_delay | FP.Vmgexit_refuse | FP.Spurious_exit -> 0.01
  | FP.Rmpadjust_fail | FP.Pvalidate_fail -> 0.02
  | FP.Spurious_npf | FP.Ghcb_corrupt -> 0.01
  | FP.Shared_bitflip -> 0.005
  | FP.Ring_slot_corrupt -> 0.02
  | FP.Pulse_export_tamper -> 0.25

(* Watchdog budget: a trial (boot sweep + workload, or the whole attack
   sweep) takes well under 100k world exits; a protocol livelock would
   spin past this in no time. *)
let trial_max_steps = 2_000_000

let make_plan ?(sites = FP.all_sites) ~seed () =
  let plan = FP.create ~max_steps:trial_max_steps ~seed () in
  List.iter (fun s -> FP.set_site plan s ~prob:(default_prob s) ()) sites;
  plan

(* Arm the plan on every guest booted inside [f] (workload drivers and
   attacks boot their own guests through [Boot.boot_veil]). *)
let with_plan plan f =
  let saved = !B.default_chaos in
  B.default_chaos := (fun () -> Some plan);
  Fun.protect ~finally:(fun () -> B.default_chaos := saved) f

exception Fail = Chaos_outcome.Fail

let corrupt = Chaos_outcome.corrupt
let classify = Chaos_outcome.classify

(* Guest boot parameters are FIXED per workload (same image, same
   layout every trial): all trial-to-trial variation comes from the
   fault plan, which is what makes seed replay byte-identical. *)
let trial_npages = 2048

(* --- boot: the §5.1 modified boot flow, then one sanity syscall --- *)

let run_boot () =
  let sys = B.boot_veil ~npages:trial_npages ~seed:31 () in
  let kernel = sys.B.kernel in
  let proc = K.spawn kernel in
  match K.invoke kernel proc S.Getpid [] with
  | Kt.RInt pid when pid > 0 -> Passed
  | Kt.RErr e -> Degraded ("getpid refused: " ^ Kt.errno_to_string e)
  | _ -> Corrupt "getpid returned a non-pid value"

(* --- syscall bench: file round-trips + interrupt relays --- *)

let run_syscall ~seed ~vcpus () =
  let sys = B.boot_veil ~npages:trial_npages ~seed:31 () in
  let kernel = sys.B.kernel and hv = sys.B.hv and vcpu = sys.B.vcpu in
  let payload = Veil_crypto.Rng.bytes (Veil_crypto.Rng.create (seed lxor 0xF11E)) 512 in
  let degraded = ref None in
  let note e = if !degraded = None then degraded := Some e in
  let round_trip proc path =
    match K.invoke kernel proc S.Open [ Kt.Str path; Kt.Int 0x42; Kt.Int 0o644 ] with
    | Kt.RInt fd -> (
        (match K.invoke kernel proc S.Write [ Kt.Int fd; Kt.Buf payload ] with
        | Kt.RInt n when n = Bytes.length payload -> ()
        | Kt.RInt n -> corrupt "short write (%d of %d) with no error" n (Bytes.length payload)
        | Kt.RErr e -> note ("write refused: " ^ Kt.errno_to_string e)
        | _ -> corrupt "write returned a non-count value");
        ignore (K.invoke kernel proc S.Close [ Kt.Int fd ]);
        match K.invoke kernel proc S.Open [ Kt.Str path; Kt.Int 0; Kt.Int 0 ] with
        | Kt.RInt fd -> (
            (match K.invoke kernel proc S.Read [ Kt.Int fd; Kt.Int (Bytes.length payload) ] with
            | Kt.RBuf got ->
                if not (Bytes.equal got payload) then
                  corrupt "file %s read back different bytes than written" path
            | Kt.RErr e -> note ("read refused: " ^ Kt.errno_to_string e)
            | _ -> corrupt "read returned a non-buffer value");
            ignore (K.invoke kernel proc S.Close [ Kt.Int fd ]))
        | Kt.RErr e -> note ("reopen refused: " ^ Kt.errno_to_string e)
        | _ -> corrupt "open returned a non-fd value")
    | Kt.RErr e -> note ("open refused: " ^ Kt.errno_to_string e)
    | _ -> corrupt "open returned a non-fd value"
  in
  (* With --vcpus > 1, the same file round-trips run as per-VCPU
     workers under the deterministic interleaver: AP bring-up itself
     crosses the fault-injected monitor protocols, and every worker's
     syscalls now interleave with the others' mid-protocol. *)
  let relay () =
    (* Exercise the relay sites: the timer tick the OS would get.
       Drops/dups/reorders are legal hypervisor behaviour — the
       invariant is only that delivery never corrupts guest state. *)
    Hypervisor.Hv.inject_interrupt hv vcpu;
    (* And a tick landing while the monitor runs: the one case where
       the hypervisor must relay across domains, so relay_refuse is
       actually consulted (refusal at Vmpl0 is survivable — the
       monitor owns the handler frame). *)
    Veil_core.Monitor.domain_switch sys.B.mon vcpu ~target:Veil_core.Privdom.Mon;
    Hypervisor.Hv.inject_interrupt hv vcpu;
    Veil_core.Monitor.domain_switch sys.B.mon vcpu ~target:Veil_core.Privdom.Unt
  in
  if vcpus > 1 then begin
    let smp =
      try Smp.bring_up ~policy:(Hypervisor.Hv.Interleave.Seeded seed) sys ~nvcpus:vcpus ()
      with Failure e -> raise (Fail (Degraded e))
    in
    for w = 0 to vcpus - 1 do
      Smp.spawn ~vcpu:w smp
        ~name:(Printf.sprintf "chaos-sys-%d" w)
        (fun () ->
          let proc = K.spawn kernel in
          for i = 0 to (19 / vcpus) + 1 do
            round_trip proc (Printf.sprintf "/tmp/chaos%d-%d" w i);
            Guest_kernel.Sched.yield ()
          done)
    done;
    Smp.run smp;
    for _ = 0 to 19 do
      relay ()
    done
  end
  else begin
    (* single-VCPU: the pre-SMP schedule, byte-for-byte *)
    let proc = K.spawn kernel in
    for i = 0 to 19 do
      round_trip proc (Printf.sprintf "/tmp/chaos%d" i);
      relay ()
    done
  end;
  match !degraded with None -> Passed | Some e -> Degraded e

(* --- enclave: create, attest, heap round-trip, ocall, destroy --- *)

let run_enclave ~seed () =
  let sys = B.boot_veil ~npages:trial_npages ~seed:31 () in
  let proc = K.spawn sys.B.kernel in
  let binary = Veil_crypto.Rng.bytes (Veil_crypto.Rng.create (seed lxor 0xE9C)) 8192 in
  match Rt.create sys ~binary proc with
  | Error e -> Degraded ("enclave create refused: " ^ e)
  | Ok rt ->
      let expected =
        Veil_core.Encsvc.measure_expected ~binary ~npages_heap:16 ~npages_stack:4
          ~base_va:Guest_kernel.Process.enclave_base
      in
      if not (Bytes.equal (Rt.measurement rt) expected) then
        Corrupt "enclave launch measurement diverged from the remote computation"
      else begin
        let inner =
          Rt.run rt (fun rt ->
              match Rt.malloc rt 256 with
              | None -> Degraded "enclave malloc refused"
              | Some va ->
                  let data = Bytes.init 256 (fun i -> Char.chr ((i * 7 + seed) land 0xFF)) in
                  Rt.write_data rt ~va data;
                  Rt.compute rt 50_000;
                  let got = Rt.read_data rt ~va ~len:256 in
                  if not (Bytes.equal got data) then
                    Corrupt "enclave heap read back different bytes than written"
                  else begin
                    match Rt.ocall rt S.Getpid [] with
                    | Kt.RInt _ -> Passed
                    | Kt.RErr e -> Degraded ("ocall refused: " ^ Kt.errno_to_string e)
                    | _ -> Corrupt "getpid ocall returned a non-pid value"
                  end)
        in
        match inner with
        | Passed -> (
            match Rt.destroy rt with
            | Ok () -> Passed
            | Error e -> Degraded ("enclave destroy: " ^ e))
        | o -> o
      end

(* --- slog: execute-ahead capture, chain verify, degraded recovery --- *)

let run_slog () =
  let sys = B.boot_veil ~npages:trial_npages ~log_frames:1 ~seed:23 () in
  let kernel = sys.B.kernel in
  Guest_kernel.Audit.set_rules (K.audit kernel) [ S.Open ];
  let proc = K.spawn kernel in
  for i = 0 to 59 do
    ignore
      (K.invoke kernel proc S.Open
         [ Kt.Str (Printf.sprintf "/tmp/l%d" i); Kt.Int 0x42; Kt.Int 0o644 ])
  done;
  let slog = sys.B.slog in
  let verify () =
    Veil_core.Slog.verify_chain ~lines:(Veil_core.Slog.read_all slog)
      ~digest:(Veil_core.Slog.chain_digest slog)
  in
  if not (verify ()) then Corrupt "audit hash chain does not verify"
  else if Veil_core.Slog.degraded slog then begin
    (* The region filled: retrieval + clear must recover the buffered
       records into a fresh, verifying chain. *)
    Veil_core.Slog.clear slog;
    if Veil_core.Slog.pending_count slog <> 0 then
      Corrupt "degraded-mode retry buffer did not drain on clear"
    else if not (verify ()) then Corrupt "recovered records break the hash chain"
    else Degraded "log region filled; records buffered and recovered"
  end
  else Passed

(* --- pulse: attested telemetry under an export-tampering hypervisor --- *)

let run_pulse ~plan () =
  let sys = B.boot_veil ~npages:trial_npages ~seed:29 () in
  let platform = sys.B.platform in
  let kernel = sys.B.kernel in
  let vcpu = sys.B.vcpu in
  let pu = platform.Sevsnp.Platform.pulse in
  Guest_kernel.Audit.set_rules (K.audit kernel) [ S.Open ];
  Obs.Pulse.arm pu ~interval:200_000 ~now:(Sevsnp.Vcpu.rdtsc vcpu);
  let proc = K.spawn kernel in
  for i = 0 to 99 do
    ignore
      (K.invoke kernel proc S.Open
         [ Kt.Str (Printf.sprintf "/tmp/p%d" i); Kt.Int 0x42; Kt.Int 0o644 ])
  done;
  Obs.Pulse.flush pu ~now:(Sevsnp.Vcpu.rdtsc vcpu);
  Obs.Pulse.disarm pu;
  ignore (B.anchor_pulse sys);
  if Obs.Pulse.captured pu < 2 then Corrupt "pulse: sampler captured fewer than 2 intervals"
  else begin
    (* The export leg is the tamper surface: the hypervisor ships the
       series to a remote verifier, and the armed plan may drop or
       edit an interval line in transit. *)
    let before = FP.hits plan FP.Pulse_export_tamper in
    let export = Sevsnp.Platform.export_pulse platform in
    let tampered = FP.hits plan FP.Pulse_export_tamper > before in
    match (Obs.Pulse.verify_export pu export, tampered) with
    | Ok n, false ->
        if n <> Obs.Pulse.retained pu then
          Corrupt (Printf.sprintf "pulse: clean export verified only %d of %d intervals" n
               (Obs.Pulse.retained pu))
        else Passed
    | Ok _, true -> Corrupt "pulse: tampered telemetry accepted by the verifier"
    | Error (i, reason), true ->
        Degraded (Printf.sprintf "pulse: telemetry tampering detected at interval %d (%s)" i reason)
    | Error (i, reason), false ->
        Corrupt (Printf.sprintf "pulse: clean export rejected at interval %d (%s)" i reason)
  end

let run_workload ?sites ?(vcpus = 1) ~seed kind =
  let plan = make_plan ?sites ~seed () in
  let body =
    match kind with
    | Wl_boot -> run_boot
    | Wl_syscall -> run_syscall ~seed ~vcpus
    | Wl_enclave -> run_enclave ~seed
    | Wl_slog -> run_slog
    | Wl_pulse -> run_pulse ~plan
  in
  let outcome = with_plan plan (fun () -> classify body) in
  {
    tr_workload = kind;
    tr_seed = seed;
    tr_outcome = outcome;
    tr_steps = FP.steps plan;
    tr_hits = List.map (fun s -> (FP.site_name s, FP.hits plan s)) FP.all_sites;
    tr_plan = plan;
  }

(* --- invariant (1): every attack stays blocked under any plan --- *)

let attacks_under_chaos ?sites ~seed () =
  let plan = make_plan ?sites ~seed () in
  with_plan plan (fun () ->
      let atks = A.all () in
      let breached =
        List.filter_map
          (fun a ->
            let o =
              (* A chaos-induced halt/#NPF during an attack is an
                 explicit stop, not a breach. *)
              try A.run a with
              | T.Cvm_halted r -> A.Blocked_error ("CVM halted: " ^ r)
              | T.Npf info -> A.Blocked_npf info
            in
            if A.is_blocked o then None else Some (A.name a, A.outcome_to_string o))
          atks
      in
      (breached, List.length atks))

type report = {
  rp_seed : int;
  rp_trials : trial list;
  rp_attacks_run : int;
  rp_breached : (string * string) list;
  rp_site_hits : (string * int) list;
  rp_replay_ok : bool;
  rp_ok : bool;
}

let run ?sites ?(trials = 3) ?(workloads = all_workloads) ?(check_replay = true) ?(vcpus = 1)
    ~seed () =
  let all_trials = ref [] and breached = ref [] and attacks_run = ref 0 in
  for k = 0 to trials - 1 do
    List.iteri
      (fun widx w ->
        let s = derive_seed ~seed ~trial:k ~which:widx in
        all_trials := run_workload ?sites ~vcpus ~seed:s w :: !all_trials)
      workloads;
    let b, n = attacks_under_chaos ?sites ~seed:(derive_seed ~seed ~trial:k ~which:99) () in
    breached := b @ !breached;
    attacks_run := !attacks_run + n
  done;
  let trials_done = List.rev !all_trials in
  let replay_ok =
    (not check_replay)
    ||
    match trials_done with
    | [] -> true
    | t0 :: _ ->
        let again = run_workload ?sites ~vcpus ~seed:t0.tr_seed t0.tr_workload in
        FP.journal_equal t0.tr_plan again.tr_plan
  in
  let site_hits =
    List.map
      (fun s ->
        ( FP.site_name s,
          List.fold_left (fun acc t -> acc + FP.hits t.tr_plan s) 0 trials_done ))
      FP.all_sites
  in
  {
    rp_seed = seed;
    rp_trials = trials_done;
    rp_attacks_run = !attacks_run;
    rp_breached = !breached;
    rp_site_hits = site_hits;
    rp_replay_ok = replay_ok;
    rp_ok =
      List.for_all (fun t -> outcome_ok t.tr_outcome) trials_done
      && !breached = [] && replay_ok;
  }

let report_json r =
  let b = Buffer.create 1024 in
  let esc = Obs.Metrics.json_escape in
  Buffer.add_string b (Printf.sprintf "{\"seed\":%d,\"ok\":%b,\"replay_ok\":%b," r.rp_seed r.rp_ok r.rp_replay_ok);
  Buffer.add_string b (Printf.sprintf "\"attacks_run\":%d,\"breached\":[" r.rp_attacks_run);
  List.iteri
    (fun i (n, o) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "{\"attack\":\"%s\",\"outcome\":\"%s\"}" (esc n) (esc o)))
    r.rp_breached;
  Buffer.add_string b "],\"site_hits\":{";
  List.iteri
    (fun i (n, h) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "\"%s\":%d" (esc n) h))
    r.rp_site_hits;
  Buffer.add_string b "},\"trials\":[";
  List.iteri
    (fun i t ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "{\"workload\":\"%s\",\"seed\":%d,\"outcome\":\"%s\",\"steps\":%d,\"hits\":%d}"
           (workload_name t.tr_workload) t.tr_seed
           (esc (outcome_to_string t.tr_outcome))
           t.tr_steps (FP.total_hits t.tr_plan)))
    r.rp_trials;
  Buffer.add_string b "]}";
  Buffer.contents b
