(** Shared Passed/Degraded/Halted vs Watchdog/Corrupt/Crashed trial
    classifier — the "attacks blocked; correct, degraded, or halted —
    never silent corruption" contract, used by both the Veil-Chaos
    trial driver ([veilctl chaos]) and the Veil-Explore schedule-tree
    search ([veilctl explore]). *)

type t =
  | Passed
  | Degraded of string
  | Halted of string
  | Watchdog of string  (** detected hang (step-budget watchdog) *)
  | Corrupt of string  (** silently wrong guest-visible result *)
  | Crashed of string  (** unclassified exception escaped the simulator *)

val ok : t -> bool
(** [Passed], [Degraded] and [Halted] satisfy the invariant; the rest
    are violations. *)

val to_string : t -> string
(** Display form, including the detail message — byte-identical to the
    strings the pre-extraction chaos driver printed. *)

val class_name : t -> string
(** Stable lower-case class name without the detail
    ("passed" ... "crashed") — the token a replay artifact records. *)

val same_class : t -> t -> bool
(** Same constructor, details ignored — replay confirmation. *)

val watchdog_prefix : string
(** ["chaos watchdog"]: the prefix of [Cvm_halted] reasons raised by
    step-budget watchdogs (platform world-exit budget, Smp interleaver
    budget). *)

val is_watchdog : string -> bool

exception Fail of t
(** Raised by checks inside a classified run; {!classify} returns the
    carried outcome verbatim. *)

val fail : t -> 'a
val corrupt : ('a, unit, string, 'b) format4 -> 'a
(** [corrupt fmt ...] raises [Fail (Corrupt msg)]. *)

val classify : (unit -> t) -> t
(** Run a trial body and map escaping exceptions onto outcomes:
    [Fail] carries its own; watchdog-prefixed [Cvm_halted] is
    [Watchdog], other halts and #NPFs are [Halted]; a killed enclave
    is [Degraded]; [Stack_overflow] is a [Watchdog] (unbounded retry
    loop); anything else is [Crashed]. *)
