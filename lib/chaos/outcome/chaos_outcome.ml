(* The shared Veil-Chaos trial classifier (ISSUE 9, extracted from
   chaos_driver.ml so `veilctl chaos` and `veilctl explore` enforce the
   same contract): a run of guest code either Passed, degraded with an
   explicit error, or halted explicitly — anything else (a detected
   hang, a silently wrong guest-visible result, an unclassified
   exception) violates the "attacks blocked; correct, degraded, or
   halted — never silent corruption" invariant. *)

module T = Sevsnp.Types
module Rt = Enclave_sdk.Runtime

type t =
  | Passed
  | Degraded of string
  | Halted of string
  | Watchdog of string
  | Corrupt of string
  | Crashed of string

let ok = function Passed | Degraded _ | Halted _ -> true | _ -> false

let to_string = function
  | Passed -> "passed"
  | Degraded e -> "degraded: " ^ e
  | Halted e -> "halted: " ^ e
  | Watchdog e -> "watchdog: " ^ e
  | Corrupt e -> "CORRUPT: " ^ e
  | Crashed e -> "CRASHED: " ^ e

(* Stable lower-case class name, without the detail message — what a
   replay artifact records and a confirming re-execution must match. *)
let class_name = function
  | Passed -> "passed"
  | Degraded _ -> "degraded"
  | Halted _ -> "halted"
  | Watchdog _ -> "watchdog"
  | Corrupt _ -> "corrupt"
  | Crashed _ -> "crashed"

let same_class a b = String.equal (class_name a) (class_name b)

let watchdog_prefix = "chaos watchdog"

let is_watchdog r =
  String.length r >= String.length watchdog_prefix
  && String.sub r 0 (String.length watchdog_prefix) = watchdog_prefix

exception Fail of t

let fail o = raise (Fail o)
let corrupt fmt = Printf.ksprintf (fun m -> raise (Fail (Corrupt m))) fmt

let classify f =
  try f () with
  | Fail o -> o
  | T.Cvm_halted r when is_watchdog r -> Watchdog r
  | T.Cvm_halted r -> Halted r
  | T.Npf info -> Halted (Fmt.str "#NPF: %a" T.pp_npf info)
  | Rt.Enclave_killed e -> Degraded ("enclave killed: " ^ e)
  | Stack_overflow -> Watchdog "stack overflow (unbounded retry loop)"
  | e -> Crashed (Printexc.to_string e)
