type flags = { present : bool; writable : bool; user : bool; nx : bool }

let flags_none = { present = false; writable = false; user = false; nx = false }
let kernel_rw = { present = true; writable = true; user = false; nx = true }
let kernel_rx = { present = true; writable = false; user = false; nx = false }
let user_rw = { present = true; writable = true; user = true; nx = true }
let user_rx = { present = true; writable = false; user = true; nx = false }
let user_ro = { present = true; writable = false; user = true; nx = true }

type pte = { pte_gpfn : Types.gpfn; pte_flags : flags }

(* bit 0 present, bit 1 writable, bit 2 user, bit 58 NX (bit 63 on real
   hardware — kept below OCaml's 63-bit int sign bit), frame in bits 12.. *)
let bit_present = 1
let bit_write = 2
let bit_user = 4
let bit_nx = 1 lsl 58

let encode { pte_gpfn; pte_flags = f } =
  (if f.present then bit_present else 0)
  lor (if f.writable then bit_write else 0)
  lor (if f.user then bit_user else 0)
  lor (if f.nx then bit_nx else 0)
  lor (pte_gpfn lsl Types.page_shift)

let decode v =
  if v land bit_present = 0 then None
  else
    Some
      {
        pte_gpfn = (v lsr Types.page_shift) land 0x3FFFFFFFF;
        pte_flags =
          {
            present = true;
            writable = v land bit_write <> 0;
            user = v land bit_user <> 0;
            nx = v land bit_nx <> 0;
          };
      }

type io = {
  read_u64 : Types.gpa -> int;
  write_u64 : Types.gpa -> int -> unit;
  alloc_frame : unit -> Types.gpfn;
  invalidate : unit -> unit;
}

let levels = 3
let entries_per_level = 512
let va_bits = 9 * levels + Types.page_shift
let max_va = (1 lsl va_bits) - 1

let index ~level va =
  if va < 0 || va > max_va then invalid_arg (Printf.sprintf "Pagetable: va 0x%x out of range" va);
  (va lsr (Types.page_shift + (9 * level))) land (entries_per_level - 1)

let entry_gpa table_gpfn idx = Types.gpa_of_gpfn table_gpfn + (8 * idx)

(* Descend to the leaf table, allocating intermediate tables when
   [create] and they are absent.  Returns the leaf table's frame. *)
let rec descend io ~create table level va =
  if level = 0 then Some table
  else begin
    let gpa = entry_gpa table (index ~level va) in
    match decode (io.read_u64 gpa) with
    | Some { pte_gpfn; _ } -> descend io ~create pte_gpfn (level - 1) va
    | None ->
        if not create then None
        else begin
          let frame = io.alloc_frame () in
          io.write_u64 gpa
            (encode { pte_gpfn = frame; pte_flags = { present = true; writable = true; user = true; nx = false } });
          descend io ~create frame (level - 1) va
        end
  end

let map io ~root va pte =
  match descend io ~create:true root (levels - 1) va with
  | Some leaf ->
      io.write_u64 (entry_gpa leaf (index ~level:0 va)) (encode pte);
      io.invalidate ()
  | None -> assert false

let unmap io ~root va =
  match descend io ~create:false root (levels - 1) va with
  | None -> false
  | Some leaf ->
      let gpa = entry_gpa leaf (index ~level:0 va) in
      if decode (io.read_u64 gpa) = None then false
      else begin
        io.write_u64 gpa 0;
        io.invalidate ();
        true
      end

let protect io ~root va flags =
  match descend io ~create:false root (levels - 1) va with
  | None -> false
  | Some leaf -> (
      let gpa = entry_gpa leaf (index ~level:0 va) in
      match decode (io.read_u64 gpa) with
      | None -> false
      | Some { pte_gpfn; _ } ->
          io.write_u64 gpa (encode { pte_gpfn; pte_flags = flags });
          io.invalidate ();
          true)

let walk ~read_u64 ~root va =
  let rec go table level =
    let gpa = entry_gpa table (index ~level va) in
    match decode (read_u64 gpa) with
    | None -> None
    | Some pte -> if level = 0 then Some pte else go pte.pte_gpfn (level - 1)
  in
  go root (levels - 1)

let iter_leaves ~read_u64 ~root f =
  let rec go table level va_base =
    for i = 0 to entries_per_level - 1 do
      match decode (read_u64 (entry_gpa table i)) with
      | None -> ()
      | Some pte ->
          let va = va_base lor (i lsl (Types.page_shift + (9 * level))) in
          if level = 0 then f va pte else go pte.pte_gpfn (level - 1) va
    done
  in
  go root (levels - 1) 0

let table_frames ~read_u64 ~root =
  let acc = ref [ root ] in
  let rec go table level =
    if level > 0 then
      for i = 0 to entries_per_level - 1 do
        match decode (read_u64 (entry_gpa table i)) with
        | None -> ()
        | Some pte ->
            acc := pte.pte_gpfn :: !acc;
            go pte.pte_gpfn (level - 1)
      done
  in
  go root (levels - 1);
  List.rev !acc
