type page_state = Invalid | Private | Shared

type entry = { mutable state : page_state; mutable vmsa : bool; mutable touched : bool; perms : Perm.t array }

type t = { npages : int; entries : (int, entry) Hashtbl.t }

let create ~npages =
  if npages <= 0 then invalid_arg "Rmp.create";
  { npages; entries = Hashtbl.create 1024 }

let npages t = t.npages

let fresh_entry () = { state = Invalid; vmsa = false; touched = false; perms = [| Perm.all; Perm.none; Perm.none; Perm.none |] }

let entry t gpfn =
  if gpfn < 0 || gpfn >= t.npages then invalid_arg (Printf.sprintf "Rmp.entry: frame %d out of range" gpfn);
  (* [find] over [find_opt]: the hit path is allocation-free, and every
     checked guest access lands here. *)
  match Hashtbl.find t.entries gpfn with
  | e -> e
  | exception Not_found ->
      let e = fresh_entry () in
      Hashtbl.replace t.entries gpfn e;
      e

let state t gpfn = (entry t gpfn).state
let perms_of t gpfn vmpl = (entry t gpfn).perms.(Types.vmpl_index vmpl)
let is_vmsa t gpfn = (entry t gpfn).vmsa

let validate t gpfn =
  let e = entry t gpfn in
  e.state <- Private;
  e.vmsa <- false;
  e.perms.(0) <- Perm.all;
  e.perms.(1) <- Perm.none;
  e.perms.(2) <- Perm.none;
  e.perms.(3) <- Perm.none

let unvalidate t gpfn =
  let e = entry t gpfn in
  e.state <- Shared;
  e.vmsa <- false

let adjust t ~caller ~gpfn ~target ~perms ~vmsa =
  if gpfn < 0 || gpfn >= t.npages then Error "rmpadjust: frame out of range"
  else if vmsa && not (Types.equal_vmpl caller Types.Vmpl0) then
    (* VMSA creation is a VMPL-0 capability — the architectural root of
       Veil's VCPU-boot delegation (§5.3). *)
    Error "rmpadjust: FAIL_PERMISSION (VMSA attribute requires VMPL-0)"
  else if (not vmsa) && not (Types.vmpl_strictly_higher caller target) then
    Error
      (Format.asprintf "rmpadjust: %a may not adjust permissions for %a" Types.pp_vmpl caller Types.pp_vmpl
         target)
  else begin
    let e = entry t gpfn in
    match e.state with
    | Private ->
        if Types.vmpl_strictly_higher caller target then e.perms.(Types.vmpl_index target) <- perms;
        e.vmsa <- vmsa;
        Ok ()
    | Invalid -> Error "rmpadjust: page not validated"
    | Shared -> Error "rmpadjust: page is shared with the host"
  end

let npf gpfn vmpl access reason =
  Error
    { Types.fault_gpa = Types.gpa_of_gpfn gpfn; fault_vmpl = vmpl; fault_access = access; fault_reason = reason }

let check_guest_access t ~gpfn ~vmpl ~cpl ~access =
  if gpfn < 0 || gpfn >= t.npages then npf gpfn vmpl access "frame out of range"
  else begin
    let e = entry t gpfn in
    match e.state with
    | Invalid -> npf gpfn vmpl access "page not validated"
    | Shared -> (
        (* Shared pages are plain-text mailboxes: no execution. *)
        match access with
        | Types.Execute -> npf gpfn vmpl access "execute from shared page"
        | Types.Read | Types.Write -> Ok ())
    | Private ->
        if e.vmsa && access = Types.Write && vmpl <> Types.Vmpl0 then
          npf gpfn vmpl access "write to in-use VMSA page"
        else if Perm.allows e.perms.(Types.vmpl_index vmpl) access cpl then Ok ()
        else npf gpfn vmpl access (Format.asprintf "VMPL permission violation (%a)" Perm.pp e.perms.(Types.vmpl_index vmpl))
  end

let host_can_access t gpfn = gpfn >= 0 && gpfn < t.npages && state t gpfn = Shared

let iter_entries t f = Hashtbl.iter f t.entries
