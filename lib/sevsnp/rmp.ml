type page_state = Invalid | Private | Shared

(* Dense layout: one metadata byte per frame in [meta]
   (bits 0-1 page state: 0 Invalid / 1 Private / 2 Shared,
    bit 2 VMSA attribute, bit 3 touched-by-RMPADJUST) and one int per
   frame in [perms] packing four {!Perm.to_bits} nibbles, VMPL-0 in the
   low nibble.  [check_guest_access] is therefore two array loads and a
   few bit tests — no hashing, no allocation on the Ok path.

   [gen] is the machine-wide TLB generation: every architectural event
   that can invalidate a cached translation's permission snapshot
   (PVALIDATE, RMPADJUST, page-table edits via {!Platform}) bumps it,
   and software TLBs stamp their entries with it. *)

let st_mask = 3
let st_private = 1
let st_shared = 2
let bit_vmsa = 4
let bit_touched = 8

(* fresh frame: Invalid, VMPL-0 full permissions, others none *)
let default_perms = 0xF

type entry = { state : page_state; vmsa : bool; touched : bool; perms : Perm.t array }

type t = { npages : int; meta : Bytes.t; perms : int array; gen : int ref }

let create ~npages =
  if npages <= 0 then invalid_arg "Rmp.create";
  { npages; meta = Bytes.make npages '\000'; perms = Array.make npages default_perms; gen = ref 0 }

let npages t = t.npages

let generation t = t.gen

let bump t = incr t.gen

let check_gpfn t gpfn op =
  if gpfn < 0 || gpfn >= t.npages then
    invalid_arg (Printf.sprintf "Rmp.%s: frame %d out of range" op gpfn)

let meta t gpfn = Char.code (Bytes.unsafe_get t.meta gpfn)
let set_meta t gpfn m = Bytes.unsafe_set t.meta gpfn (Char.unsafe_chr m)

let state_of_code m = if m = 0 then Invalid else if m = st_private then Private else Shared

let state t gpfn =
  check_gpfn t gpfn "state";
  state_of_code (meta t gpfn land st_mask)

let perm_bits t gpfn vmpl_idx = (Array.unsafe_get t.perms gpfn lsr (4 * vmpl_idx)) land 0xF

let perms_of t gpfn vmpl =
  check_gpfn t gpfn "perms_of";
  Perm.of_bits (perm_bits t gpfn (Types.vmpl_index vmpl))

let is_vmsa t gpfn =
  check_gpfn t gpfn "is_vmsa";
  meta t gpfn land bit_vmsa <> 0

let set_vmsa t gpfn v =
  check_gpfn t gpfn "set_vmsa";
  let m = meta t gpfn in
  set_meta t gpfn (if v then m lor bit_vmsa else m land lnot bit_vmsa);
  bump t

let touch t gpfn =
  check_gpfn t gpfn "touch";
  let m = meta t gpfn in
  if m land bit_touched = 0 then begin
    set_meta t gpfn (m lor bit_touched);
    true
  end
  else false

let validate t gpfn =
  check_gpfn t gpfn "validate";
  (* Private, VMSA cleared, touched preserved, VMPL-0 gets everything *)
  set_meta t gpfn ((meta t gpfn land bit_touched) lor st_private);
  t.perms.(gpfn) <- default_perms;
  bump t

let unvalidate t gpfn =
  check_gpfn t gpfn "unvalidate";
  set_meta t gpfn ((meta t gpfn land bit_touched) lor st_shared);
  bump t

let adjust t ~caller ~gpfn ~target ~perms ~vmsa =
  if gpfn < 0 || gpfn >= t.npages then Error "rmpadjust: frame out of range"
  else if vmsa && not (Types.equal_vmpl caller Types.Vmpl0) then
    (* VMSA creation is a VMPL-0 capability — the architectural root of
       Veil's VCPU-boot delegation (§5.3). *)
    Error "rmpadjust: FAIL_PERMISSION (VMSA attribute requires VMPL-0)"
  else if (not vmsa) && not (Types.vmpl_strictly_higher caller target) then
    Error
      (Format.asprintf "rmpadjust: %a may not adjust permissions for %a" Types.pp_vmpl caller Types.pp_vmpl
         target)
  else begin
    let m = meta t gpfn in
    match m land st_mask with
    | s when s = st_private ->
        if Types.vmpl_strictly_higher caller target then begin
          let shift = 4 * Types.vmpl_index target in
          t.perms.(gpfn) <- (t.perms.(gpfn) land lnot (0xF lsl shift)) lor (Perm.to_bits perms lsl shift)
        end;
        set_meta t gpfn (if vmsa then m lor bit_vmsa else m land lnot bit_vmsa);
        bump t;
        Ok ()
    | 0 -> Error "rmpadjust: page not validated"
    | _ -> Error "rmpadjust: page is shared with the host"
  end

let npf gpfn vmpl access reason =
  Error
    { Types.fault_gpa = Types.gpa_of_gpfn gpfn; fault_vmpl = vmpl; fault_access = access; fault_reason = reason }

let check_guest_access t ~gpfn ~vmpl ~cpl ~access =
  if gpfn < 0 || gpfn >= t.npages then npf gpfn vmpl access "frame out of range"
  else begin
    let m = meta t gpfn in
    match m land st_mask with
    | 0 -> npf gpfn vmpl access "page not validated"
    | s when s = st_shared -> (
        (* Shared pages are plain-text mailboxes: no execution. *)
        match access with
        | Types.Execute -> npf gpfn vmpl access "execute from shared page"
        | Types.Read | Types.Write -> Ok ())
    | _ ->
        if m land bit_vmsa <> 0 && access = Types.Write && vmpl <> Types.Vmpl0 then
          npf gpfn vmpl access "write to in-use VMSA page"
        else begin
          let bits = perm_bits t gpfn (Types.vmpl_index vmpl) in
          if Perm.bits_allow bits access cpl then Ok ()
          else
            npf gpfn vmpl access
              (Format.asprintf "VMPL permission violation (%a)" Perm.pp (Perm.of_bits bits))
        end
  end

(* TLB permission snapshot: the per-VMPL nibble plus shared/VMSA bits,
   consumed by {!Tlb.rmp_allows}.  Only meaningful for frames that
   passed a check (state is Private or Shared). *)
let tlb_snapshot t gpfn ~vmpl =
  let m = meta t gpfn in
  perm_bits t gpfn (Types.vmpl_index vmpl)
  lor (if m land st_mask = st_shared then 16 else 0)
  lor (if m land bit_vmsa <> 0 then 32 else 0)

let host_can_access t gpfn = gpfn >= 0 && gpfn < t.npages && meta t gpfn land st_mask = st_shared

(* Shared-mailbox placement check (IDCBs, Veil-Ring rings): the frame
   must be plain validated guest memory the given VMPL can read *and*
   write — not a VMSA, not host-shared. *)
let guest_can_rw t gpfn ~vmpl =
  gpfn >= 0 && gpfn < t.npages
  &&
  let m = meta t gpfn in
  m land st_mask = st_private
  && m land bit_vmsa = 0
  &&
  let bits = perm_bits t gpfn (Types.vmpl_index vmpl) in
  Perm.bits_allow bits Types.Read Types.Cpl0 && Perm.bits_allow bits Types.Write Types.Cpl0

let iter_entries t f =
  for gpfn = 0 to t.npages - 1 do
    let m = meta t gpfn in
    let p = t.perms.(gpfn) in
    if m <> 0 || p <> default_perms then
      f gpfn
        {
          state = state_of_code (m land st_mask);
          vmsa = m land bit_vmsa <> 0;
          touched = m land bit_touched <> 0;
          perms =
            [|
              Perm.of_bits (p land 0xF);
              Perm.of_bits ((p lsr 4) land 0xF);
              Perm.of_bits ((p lsr 8) land 0xF);
              Perm.of_bits ((p lsr 12) land 0xF);
            |];
        }
  done
