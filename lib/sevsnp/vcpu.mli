(** A virtual CPU.

    The physical execution resource.  At any instant it runs at most
    one VMSA (one VCPU *instance* in the paper's terminology); Veil
    replicates instances across domains and the hypervisor re-enters
    the VCPU with a different instance's VMSA to switch domains. *)

type t = {
  id : int;
  mutable current : Vmsa.t option;  (** the instance currently on the CPU *)
  counter : Cycles.counter;
  tlb : Tlb.t;  (** this CPU's translation cache, flushed on instance switches *)
  mutable exits : int;  (** total world exits taken *)
  mutable pending_interrupts : int;  (** queued external interrupts *)
  mutable last_exit_ts : int;
      (** cycle count when the last world exit began (before its switch
          charges) — lets the hypervisor emit whole domain-switch spans *)
}

val create : id:int -> tlb_gen:int ref -> t
(** [tlb_gen] is the machine-wide TLB generation this CPU's TLB stamps
    against ({!Rmp.generation}); {!Platform} supplies it. *)

val vmpl : t -> Types.vmpl
(** VMPL of the running instance.  Raises [Failure] if none. *)

val cpl : t -> Types.cpl
val current_vmsa : t -> Vmsa.t

val rdtsc : t -> int
(** Cycle count observed by guest software (the counter total). *)

val charge : t -> Cycles.bucket -> int -> unit
