(** The SEV-SNP machine: memory + RMP + VCPUs + instruction semantics.

    This is the hardware boundary of the simulation.  Guest software
    (kernel, VeilMon, services, enclaves) may only touch memory through
    the checked accessors here, which enforce RMP/VMPL permissions and
    halt the CVM on violation — exactly the paper's failure model
    ("the CVM halts with continuous #NPF").  The hypervisor side uses
    the [host_*] accessors, which the hardware limits to [Shared]
    pages. *)

type t = {
  mem : Phys_mem.t;
  rmp : Rmp.t;
  mutable vcpus_rev : Vcpu.t list;  (** newest first; use {!vcpus} / {!vcpu_by_id} *)
  mutable nvcpus : int;
  ghcbs : (Types.gpfn, Ghcb.t) Hashtbl.t;
  attestation : Attestation.t;
  rng : Veil_crypto.Rng.t;
  mutable halted : string option;
  mutable exit_handler : (Vcpu.t -> unit) option;  (** installed by the hypervisor *)
  mutable npf_count : int;  (** #NPFs taken (validation experiments) *)
  vmsa_table : (Types.gpfn, Vmsa.t) Hashtbl.t;  (** hardware's view of VMSA frames *)
  metrics : Obs.Metrics.t;
      (** this machine's metrics registry; every layer running on the
          platform (hypervisor, kernel, monitor, slog, ...) folds its
          counters in here, scoped per machine so side-by-side CVMs
          (migration, native-vs-Veil comparisons) never mix numbers *)
  tracer : Obs.Trace.t;  (** this machine's event tracer (off by default) *)
  profiler : Obs.Profiler.t;
      (** this machine's cycle-attribution profiler (off by default);
          the platform charges the hardware legs — VMGEXIT, VMSA
          save/restore, GHCB protocol, RMPADJUST, PVALIDATE — as
          profiler leaves, and upper layers (hypervisor, kernel,
          monitor, SDK) open the surrounding frames *)
  pulse : Obs.Pulse.t;
      (** Veil-Pulse epoch sampler, disarmed by default; [tick]ed on
          every world exit right after the chaos watchdog, so armed it
          captures delta-encoded registry snapshots on exit boundaries
          and disarmed it costs one flag test *)
  mutable chaos : Chaos.Fault_plan.t option;
      (** armed Veil-Chaos fault plan, [None] in normal operation; the
          platform's instruction/exit paths and the hypervisor consult
          it at each injection site (§ DESIGN.md "Fault model") *)
  c_npf : Obs.Metrics.counter;  (** handle for "platform.npf" *)
  c_rmpadjust : Obs.Metrics.counter;
  c_pvalidate : Obs.Metrics.counter;
  c_vmgexit : Obs.Metrics.counter;  (** world exits, VMGEXIT and automatic *)
  c_vmenter : Obs.Metrics.counter;
  c_tlb_hit : Obs.Metrics.counter;  (** "tlb.hit": translations served from a VCPU TLB *)
  c_tlb_miss : Obs.Metrics.counter;  (** "tlb.miss": full walk + RMP check taken *)
  c_tlb_flush : Obs.Metrics.counter;
      (** "tlb.flush": invalidation events — page-table shootdowns,
          RMP-mutating instructions, VCPU instance switches *)
  c_ipi : Obs.Metrics.counter;
      (** "platform.ipi": shootdown/reschedule IPIs delivered to remote
          VCPUs (Veil-SMP) *)
  g_trace_dropped : Obs.Metrics.gauge;
      (** "trace.dropped": events lost to trace-ring wraparound, synced
          by {!refresh_obs_gauges} *)
}

exception Guest_page_fault of { fault_va : Types.va; fault_access : Types.access }
(** Guest-level #PF from a page-table miss / flag violation; delivered
    to the OS (or, for enclaves, the demand-paging path). *)

val create : ?seed:int -> npages:int -> unit -> t

val halt : t -> string -> 'a
(** Record the halt and raise {!Types.Cvm_halted}. *)

val check_running : t -> unit

val is_halted : t -> string option

(* Veil-Chaos fault injection *)

val arm_chaos : t -> Chaos.Fault_plan.t -> unit
(** Arm a fault plan on this machine.  While no plan is armed every
    injection site costs its hot path exactly one [None] check. *)

val disarm_chaos : t -> unit

val chaos_mark : t -> Vcpu.t option -> string -> unit
(** Record one injection: bumps the lazily-interned ["chaos." ^ name]
    counter and emits an instant trace event (bucket ["chaos"]) so
    chaos runs render in Perfetto.  Used by every layer that injects
    (platform, hypervisor). *)

val chaos_flip_shared : t -> Chaos.Fault_plan.t -> unit
(** Flip one uniformly-drawn bit in one uniformly-drawn [Shared]
    frame.  Private frames are never candidates (SNP integrity
    protection); a machine with no shared frames is a no-op. *)

(* Launch *)

val launch_load : t -> entry_name:string -> (Types.gpa * bytes) list -> unit
(** Hypervisor launch sequence: validate the covered frames, install
    contents, measure them (with their load addresses) into the launch
    digest, and record it for attestation. *)

val add_boot_vcpu : t -> Vcpu.t
(** The single VCPU the hypervisor creates at launch; its first
    instance must be installed with {!vmenter}. *)

val add_vcpu : t -> Vcpu.t
(** Hot-plug: allocate the next VCPU id (not yet running). *)

val vcpus : t -> Vcpu.t list
(** All VCPUs in creation (id) order. *)

val vcpu_count : t -> int

val vcpu_by_id : t -> int -> Vcpu.t option

val tlb_shootdown : t -> unit
(** Bump the machine-wide TLB generation, invalidating every VCPU's
    cached translations.  {!Pagetable.io}[.invalidate] should point
    here for any table the MMU (and hence the TLB) can consult.  This
    is the *correctness* half of a shootdown; it charges nothing. *)

val tlb_shootdown_distributed : t -> initiator:Vcpu.t -> unit
(** The *cost* half of a distributed TLB shootdown (Veil-SMP): charge
    the initiating VCPU [Cycles.tlb_local_flush] plus
    [Ipi.initiator_cost] per remote VCPU, charge each remote VCPU
    [Cycles.ipi_handler], and flush every VCPU's TLB epoch.  With one
    VCPU this is exactly the pre-SMP flat 500-cycle charge.  Callers
    must already have bumped the generation via the page-table edit
    ({!tlb_shootdown}). *)

val refresh_obs_gauges : t -> unit
(** Sync on-demand observability gauges — currently ["trace.dropped"]
    (events lost to ring wraparound since the last clear).  [create]
    installs this as the registry's refresh hook, so [Metrics.to_json],
    [Metrics.dump], and every Veil-Pulse snapshot already run it;
    explicit calls remain for exporters outside the registry. *)

val export_pulse : t -> string
(** Serialize the retained Veil-Pulse intervals *through the
    hypervisor*: the [Pulse_export_tamper] chaos site may corrupt or
    drop one interval line in flight (marked via {!chaos_mark}).
    Feed the result to [Obs.Pulse.verify_export] — on a tampered
    export it pinpoints the damaged interval. *)

(* Checked guest memory access *)

val read : t -> Vcpu.t -> Types.gpa -> int -> bytes
val write : t -> Vcpu.t -> Types.gpa -> bytes -> unit

val read_into : t -> Vcpu.t -> Types.gpa -> bytes -> int -> int -> unit
(** [read_into t vcpu gpa buf pos len]: {!read} into a caller buffer —
    nothing allocated on the permitted path. *)

val write_sub : t -> Vcpu.t -> Types.gpa -> bytes -> int -> int -> unit
(** [write_sub t vcpu gpa data pos len]: checked write of a slice of
    [data] without the [Bytes.sub] copy. *)

val read_u64 : t -> Vcpu.t -> Types.gpa -> int
val write_u64 : t -> Vcpu.t -> Types.gpa -> int -> unit
val check_exec : t -> Vcpu.t -> Types.gpa -> unit

val read_via_pt : t -> Vcpu.t -> root:Types.gpfn -> Types.va -> int -> bytes
(** Translate through the given page-table root with the VCPU's
    current CPL (user pages only at CPL-3), then RMP-check.  Raises
    {!Guest_page_fault} on translation failure. *)

val write_via_pt : t -> Vcpu.t -> root:Types.gpfn -> Types.va -> bytes -> unit

val read_into_via_pt : t -> Vcpu.t -> root:Types.gpfn -> Types.va -> bytes -> int -> int -> unit
(** {!read_via_pt} into a caller buffer. *)

val write_sub_via_pt : t -> Vcpu.t -> root:Types.gpfn -> Types.va -> bytes -> int -> int -> unit
(** {!write_via_pt} of a slice of the given buffer. *)

val read_u64_via_pt : t -> Vcpu.t -> root:Types.gpfn -> Types.va -> int
(** Translated u64 load.  On a TLB hit this is allocation-free: probe,
    cached permission evaluation, direct arena load. *)

val write_u64_via_pt : t -> Vcpu.t -> root:Types.gpfn -> Types.va -> int -> unit

val check_exec_via_pt : t -> Vcpu.t -> root:Types.gpfn -> Types.va -> unit
(** Instruction-fetch check through the translation path (faults like
    {!read_via_pt} but with [Execute] semantics — shared pages and NX
    mappings reject it). *)

val translate : t -> root:Types.gpfn -> Types.va -> Pagetable.pte option
(** Raw MMU walk (no VMPL checks — hardware walker). *)

val raw_pt_read : t -> Types.gpa -> int
(** Raw u64 read for walkers; no checks. *)

(* Instructions *)

val rmpadjust :
  t ->
  Vcpu.t ->
  ?bucket:Cycles.bucket ->
  gpfn:Types.gpfn ->
  target:Types.vmpl ->
  perms:Perm.t ->
  vmsa:bool ->
  unit ->
  (unit, string) result
(** RMPADJUST.  Charges instruction + page-touch cycles.  Attempting to
    adjust a frame the caller cannot itself read raises #NPF and halts
    (the paper's Dom_UNT attack outcome); an insufficient-privilege
    target VMPL returns [Error] (architectural FAIL_PERMISSION). *)

val pvalidate : t -> Vcpu.t -> ?bucket:Cycles.bucket -> gpfn:Types.gpfn -> to_private:bool -> unit -> (unit, string) result
(** PVALIDATE; VMPL-0 only (lower VMPLs get FAIL_PERMISSION — the
    architectural restriction behind Veil's delegation, §5.3). *)

val set_ghcb : t -> Vcpu.t -> Types.gpa -> (unit, string) result
(** Write the GHCB MSR for the *current instance*.  The page must be
    [Shared]. *)

val register_ghcb : t -> Types.gpa -> (Ghcb.t, string) result
(** Materialize the GHCB mailbox for an already-[Shared] frame without
    touching any VMSA's GHCB MSR (used when VMPL-0 provisions a GHCB
    for another domain). *)

val ghcb_of_vcpu : t -> Vcpu.t -> Ghcb.t option
val ghcb_at : t -> Types.gpfn -> Ghcb.t option

val vmgexit : t -> Vcpu.t -> unit
(** Non-automatic exit: charges the save-side switch cost and invokes
    the hypervisor's exit handler. *)

val automatic_exit : t -> Vcpu.t -> unit
(** Interrupt-style exit (no GHCB): cheaper save side, same handler. *)

val vmenter : t -> Vcpu.t -> Vmsa.t -> unit
(** Hypervisor resumes the VCPU with [vmsa] as the running instance. *)

val install_vmsa : t -> Vmsa.t -> (unit, string) result
(** Materialize a VMSA in a frame that RMPADJUST has marked as such.
    Fails when the VMSA attribute is missing — which is why only
    software able to RMPADJUST the target VMPL can create instances. *)

val vmsa_at : t -> Types.gpfn -> Vmsa.t option
(** Hardware lookup used by the hypervisor at VMRUN; [None] when the
    frame is not a valid VMSA (the spawn-VCPU attack of Table 1). *)

val raise_npf : t -> Types.npf_info -> 'a
(** Record the fault, halt the CVM and raise {!Types.Npf}. *)

(* Host-side (hypervisor / external) memory access *)

val host_read : t -> Types.gpa -> int -> (bytes, string) result
val host_write : t -> Types.gpa -> bytes -> (unit, string) result

(* Attestation *)

val attestation_report : t -> Vcpu.t -> report_data:bytes -> Attestation.report
(** Signed report carrying the requester's current VMPL (§5.1). *)
