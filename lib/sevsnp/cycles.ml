type bucket = Compute | Switch | Copy | Kernel | Monitor | Crypto | Io | Other

let bucket_index = function
  | Compute -> 0
  | Switch -> 1
  | Copy -> 2
  | Kernel -> 3
  | Monitor -> 4
  | Crypto -> 5
  | Io -> 6
  | Other -> 7

let buckets = [| Compute; Switch; Copy; Kernel; Monitor; Crypto; Io; Other |]

let bucket_name = function
  | Compute -> "compute"
  | Switch -> "switch"
  | Copy -> "copy"
  | Kernel -> "kernel"
  | Monitor -> "monitor"
  | Crypto -> "crypto"
  | Io -> "io"
  | Other -> "other"

type counter = { mutable total : int; by : int array }

let create_counter () = { total = 0; by = Array.make 8 0 }

let charge c b n =
  assert (n >= 0);
  c.total <- c.total + n;
  c.by.(bucket_index b) <- c.by.(bucket_index b) + n

let total c = c.total
let read_bucket c b = c.by.(bucket_index b)

let reset c =
  c.total <- 0;
  Array.fill c.by 0 8 0

let snapshot c = Array.to_list (Array.map (fun b -> (b, read_bucket c b)) buckets)

let freq_hz = 2_400_000_000

let seconds_of_cycles n = float_of_int n /. float_of_int freq_hz

(* Calibration anchors (§9.1): VMCALL round trip = 1100; full SNP
   domain switch = 7135, dominated by VMSA save/restore. *)
let vmcall_roundtrip = 1100
let automatic_exit = 550
let vmsa_save = 2450
let vmsa_restore = 2450
let ghcb_msr_protocol = 200
let hv_switch_logic = 935

let domain_switch =
  (* exit: base + state save + GHCB; host logic; enter: base + restore *)
  automatic_exit + vmsa_save + ghcb_msr_protocol + hv_switch_logic + automatic_exit + vmsa_restore

(* RMPADJUST: instruction plus a one-time touch of the target frame
   (subsequent adjusts of the same frame hit the cache).  Veil's boot
   sweep issues two adjusts per frame (Dom_UNT grant + Dom_SEC read
   grant): 2*1200 + 4000 = 6400 cycles/page; a 2 GB guest has 524288
   pages, so the sweep costs ~3.36e9 cycles = 1.40 s @ 2.4 GHz — ~70%
   of the measured ~2 s initialization increase (§9.1). *)
let rmpadjust_insn = 1200
let rmpadjust_page_touch = 4000
let pvalidate = 800
let npf_exit = 2200
let interrupt_delivery = 1500

(* TLB shootdown: the initiating VCPU always pays the local INVLPG
   sweep; each *remote* VCPU costs the initiator one IPI (ICR write +
   delivery) plus the spin waiting for that VCPU's acknowledgement,
   and costs the remote VCPU the flush-handler ISR.  On one VCPU the
   distributed protocol degenerates to exactly [tlb_local_flush] —
   the flat constant the kernel charged before Veil-SMP. *)
let tlb_local_flush = 500
let ipi_send = 800
let ipi_ack = 700
let ipi_handler = 1200

let syscall_base = 1800

let copy_cost n = 3 * n
(* CVM kernel copies run through SWIOTLB bounce buffers and C-bit
   aware mappings: ~3 cycles/byte. *)

let deep_copy_cost n = 12 * n
(* Spec-driven deep copy across the enclave boundary (allocation,
   pointer chasing, bounds checks): ~12 cycles/byte — what Fig. 5's
   lighttpd redirect share implies. *)

let kaudit_format = 11_000

(* One Veil-Pulse epoch capture: a monitor-resident scan of the whole
   metrics registry into a preallocated snapshot plus the amortized
   digest/chain fold — no domain switch, no copies out of VMPL0. *)
let pulse_sample = 600
(* Building one kaudit SYSCALL record (field formatting, context
   capture); calibrated against Fig. 6's Kaudit bars. *)
let hash_cost n = 12 * n
let cipher_cost n = 4 * n
let io_cost n = 9000 + (n / 2) (* virtio request + DMA-ish per-byte *)

let native_cvm_boot = 37_000_000_000
