type t = { read : bool; write : bool; user_exec : bool; super_exec : bool }

let none = { read = false; write = false; user_exec = false; super_exec = false }
let all = { read = true; write = true; user_exec = true; super_exec = true }
let ro = { none with read = true }
let rw = { none with read = true; write = true }
let rx = { none with read = true; user_exec = true; super_exec = true }
let r_user_exec = { none with read = true; user_exec = true }

let allows t access cpl =
  match (access : Types.access) with
  | Types.Read -> t.read
  | Types.Write -> t.write
  | Types.Execute -> ( match (cpl : Types.cpl) with Types.Cpl0 -> t.super_exec | Types.Cpl3 -> t.user_exec)

(* Packed form: the RMP stores permissions as one nibble per VMPL so
   the access check is a couple of bit tests. *)
let bit_read = 1
let bit_write = 2
let bit_user_exec = 4
let bit_super_exec = 8

let to_bits t =
  (if t.read then bit_read else 0)
  lor (if t.write then bit_write else 0)
  lor (if t.user_exec then bit_user_exec else 0)
  lor (if t.super_exec then bit_super_exec else 0)

let of_bits b =
  {
    read = b land bit_read <> 0;
    write = b land bit_write <> 0;
    user_exec = b land bit_user_exec <> 0;
    super_exec = b land bit_super_exec <> 0;
  }

let bits_allow bits access cpl =
  let bit =
    match (access : Types.access) with
    | Types.Read -> bit_read
    | Types.Write -> bit_write
    | Types.Execute -> ( match (cpl : Types.cpl) with Types.Cpl0 -> bit_super_exec | Types.Cpl3 -> bit_user_exec)
  in
  bits land bit <> 0

let subset a b =
  (not a.read || b.read)
  && (not a.write || b.write)
  && (not a.user_exec || b.user_exec)
  && (not a.super_exec || b.super_exec)

let union a b =
  {
    read = a.read || b.read;
    write = a.write || b.write;
    user_exec = a.user_exec || b.user_exec;
    super_exec = a.super_exec || b.super_exec;
  }

let inter a b =
  {
    read = a.read && b.read;
    write = a.write && b.write;
    user_exec = a.user_exec && b.user_exec;
    super_exec = a.super_exec && b.super_exec;
  }

let equal (a : t) b = a = b

let pp fmt t =
  let c b ch = if b then ch else '-' in
  Format.fprintf fmt "%c%c%c%c" (c t.read 'r') (c t.write 'w') (c t.user_exec 'u') (c t.super_exec 's')
