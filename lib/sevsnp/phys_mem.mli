(** Guest-physical memory.

    Sparse: the address space is carved into 256 KiB chunks
    materialized on first write, so that a 2 GB guest costs little
    until pages are used while keeping accesses a flat array load plus
    a blit.  This module performs no permission checking — that is
    {!Rmp} / {!Platform} territory; it is the raw encrypted DRAM of
    the CVM. *)

type t

val create : npages:int -> t

val npages : t -> int
val bytes_size : t -> int

val valid_gpa : t -> Types.gpa -> bool

val read : t -> Types.gpa -> int -> bytes
(** [read t gpa len] copies [len] bytes.  Raises [Invalid_argument] on
    out-of-range access. *)

val write : t -> Types.gpa -> bytes -> unit

val read_into : t -> Types.gpa -> bytes -> int -> int -> unit
(** [read_into t gpa buf pos len] copies into a caller-provided buffer
    — the allocation-free form of {!read}. *)

val write_sub : t -> Types.gpa -> bytes -> int -> int -> unit
(** [write_sub t gpa data pos len] writes a slice of [data] without
    the [Bytes.sub] copy. *)

val read_byte : t -> Types.gpa -> int
val write_byte : t -> Types.gpa -> int -> unit

val flip_bit : t -> Types.gpa -> int -> unit
(** [flip_bit t gpa bit] XORs one bit ([bit land 7]) of the addressed
    byte — Veil-Chaos's shared-page disturbance primitive.  Callers
    must only aim it at [Shared] frames. *)

val read_u64 : t -> Types.gpa -> int
(** Little-endian 8-byte load truncated to OCaml's 63-bit int (the
    simulator never uses the top bit).  Allocation-free. *)

val write_u64 : t -> Types.gpa -> int -> unit

val zero_page : t -> Types.gpfn -> unit

val page_is_materialized : t -> Types.gpfn -> bool
(** True when the frame has been written to (used by tests and by the
    boot-cost model to distinguish touched pages). *)
