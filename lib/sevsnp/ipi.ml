(* Inter-processor interrupts for the multi-VCPU guest.

   The simulator has no asynchronous cross-VCPU execution — VCPUs are
   stepped one at a time by a deterministic interleaver — so an IPI is
   modelled as a synchronous remote procedure with a cycle-true cost
   split: the sender pays [Cycles.ipi_send] (ICR write + delivery) and
   [Cycles.ipi_ack] (spinning until the target acknowledges); the
   target pays [Cycles.ipi_handler] for running the ISR.  Delivery is
   immediate and in program order, which keeps every schedule (and
   therefore every chaos journal) seed-deterministic. *)

type kind =
  | Tlb_flush  (** remote TLB shootdown: the handler flushes the target's TLB epoch *)
  | Reschedule  (** kick a remote VCPU so its scheduler re-picks a task *)

let kind_name = function Tlb_flush -> "tlb_flush" | Reschedule -> "reschedule"

(* Cost charged to the initiator for one remote target (send + spin
   for the ack). *)
let initiator_cost = Cycles.ipi_send + Cycles.ipi_ack

(* [send ~initiator ~target kind] delivers one IPI synchronously.
   Charges both sides in the Kernel bucket (shootdowns and resched
   kicks are OS work on either end) and, for [Tlb_flush], bumps the
   target's private TLB epoch so any warm translation goes stale. *)
let send ~initiator ~target kind =
  assert (initiator.Vcpu.id <> target.Vcpu.id);
  Vcpu.charge initiator Cycles.Kernel initiator_cost;
  Vcpu.charge target Cycles.Kernel Cycles.ipi_handler;
  match kind with
  | Tlb_flush -> Tlb.flush target.Vcpu.tlb
  | Reschedule -> ()
