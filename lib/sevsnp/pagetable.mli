(** Hardware page-table format and walker.

    Three levels of 512 8-byte entries (a 39-bit virtual address
    space), stored in guest-physical pages exactly as the MMU would
    read them.  Software builds and edits tables through an [io]
    record so the caller chooses *checked* access (an OS editing its
    own tables through {!Platform}, subject to VMPL permissions — the
    §8.3 validation attack path) or *raw* access (the hardware walker,
    or VeilMon operating on frames it owns). *)

type flags = { present : bool; writable : bool; user : bool; nx : bool }

val flags_none : flags
val kernel_rw : flags
val kernel_rx : flags
val user_rw : flags
val user_rx : flags
val user_ro : flags

type pte = { pte_gpfn : Types.gpfn; pte_flags : flags }

val encode : pte -> int
val decode : int -> pte option
(** [None] when the present bit is clear. *)

type io = {
  read_u64 : Types.gpa -> int;
  write_u64 : Types.gpa -> int -> unit;
  alloc_frame : unit -> Types.gpfn;  (** zeroed frame for a new table *)
  invalidate : unit -> unit;
      (** TLB shootdown: called after any leaf edit ({!map}, a
          successful {!unmap} / {!protect}) so cached translations of
          the edited mapping die.  Wire to {!Platform.tlb_shootdown}
          (or a no-op for tables never consulted through a TLB). *)
}

val levels : int
val va_bits : int
val max_va : Types.va

val index : level:int -> Types.va -> int
(** Table index of [va] at [level] (2 = root, 0 = leaf). *)

val map : io -> root:Types.gpfn -> Types.va -> pte -> unit
(** Install a leaf mapping, allocating intermediate tables as needed.
    Intermediate entries are created writable+user; leaf flags come
    from [pte]. *)

val unmap : io -> root:Types.gpfn -> Types.va -> bool
(** Clear the leaf entry; false when nothing was mapped. *)

val protect : io -> root:Types.gpfn -> Types.va -> flags -> bool
(** Rewrite the leaf flags, keeping the frame; false if unmapped. *)

val walk : read_u64:(Types.gpa -> int) -> root:Types.gpfn -> Types.va -> pte option
(** The MMU's translation: raw reads, no VMPL checks. *)

val iter_leaves : read_u64:(Types.gpa -> int) -> root:Types.gpfn -> (Types.va -> pte -> unit) -> unit
(** Visit every present leaf mapping in VA order. *)

val table_frames : read_u64:(Types.gpa -> int) -> root:Types.gpfn -> Types.gpfn list
(** All frames used by the table structure itself (root included),
    which VeilS-ENC must protect when cloning enclave tables. *)
