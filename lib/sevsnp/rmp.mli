(** Reverse Map (RMP) table.

    One entry per guest-physical frame, tracking the SEV-SNP page
    state, the VMSA attribute and the per-VMPL access permissions that
    [RMPADJUST] manipulates.  The RMP is hardware state: guest software
    only reaches it through {!Platform.rmpadjust} /
    {!Platform.pvalidate}, the hypervisor through the [hv_*]
    operations (standing in for RMPUPDATE).

    Storage is dense — a metadata byte per frame plus packed
    per-VMPL permission nibbles — so {!check_guest_access} is array
    loads and bit tests with no allocation on the permitted path. *)

type page_state =
  | Invalid  (** not validated; any guest access faults *)
  | Private  (** validated, encrypted guest memory *)
  | Shared  (** unencrypted, host-visible (GHCBs, bounce buffers) *)

type entry = {
  state : page_state;
  vmsa : bool;
  touched : bool;  (** frame contents already pulled into cache by a prior RMPADJUST *)
  perms : Perm.t array;  (** indexed by VMPL *)
}
(** Immutable snapshot of one frame's RMP state (see {!iter_entries}).
    Mutation goes through {!validate} / {!adjust} / {!set_vmsa} so the
    TLB generation can never be bypassed. *)

type t

val create : npages:int -> t

val npages : t -> int

val generation : t -> int ref
(** The machine-wide TLB generation counter.  Every mutation in this
    module bumps it; {!Platform} bumps it for page-table edits
    (shootdowns).  Software TLBs ({!Tlb}) stamp entries with it, so
    incrementing invalidates every cached translation. *)

val state : t -> Types.gpfn -> page_state
val perms_of : t -> Types.gpfn -> Types.vmpl -> Perm.t
val is_vmsa : t -> Types.gpfn -> bool

val set_vmsa : t -> Types.gpfn -> bool -> unit
(** Hypervisor-side (RMPUPDATE-style) VMSA-attribute flip used at
    launch; guest software goes through {!adjust}. *)

val touch : t -> Types.gpfn -> bool
(** Record the RMPADJUST page-touch; true when the frame was cold
    (first touch, which costs extra cycles architecturally). *)

val validate : t -> Types.gpfn -> unit
(** PVALIDATE effect: [Invalid] or [Shared] frame becomes [Private]
    with full VMPL-0 permissions and no lower-VMPL permissions. *)

val unvalidate : t -> Types.gpfn -> unit
(** Transition to [Shared] (guest gave the page back to the host). *)

val adjust :
  t -> caller:Types.vmpl -> gpfn:Types.gpfn -> target:Types.vmpl -> perms:Perm.t -> vmsa:bool -> (unit, string) result
(** RMPADJUST semantics: the caller must be strictly more privileged
    than [target]; the frame must be [Private].  On success sets
    [target]'s permissions and the VMSA attribute. *)

val check_guest_access :
  t -> gpfn:Types.gpfn -> vmpl:Types.vmpl -> cpl:Types.cpl -> access:Types.access -> (unit, Types.npf_info) result
(** The hardware page-access check (table walk already done).  VMSA
    frames are never writable from guest software except by VMPL-0
    (initialization). *)

val tlb_snapshot : t -> Types.gpfn -> vmpl:Types.vmpl -> int
(** Packed permission snapshot a TLB entry caches alongside the
    translation: bits 0-3 the [vmpl] permission nibble, bit 4 shared,
    bit 5 VMSA.  Evaluated on hits by {!Tlb.rmp_allows}; stays
    coherent because every RMP mutation bumps {!generation}. *)

val host_can_access : t -> Types.gpfn -> bool
(** The host may only touch [Shared] frames. *)

val guest_can_rw : t -> Types.gpfn -> vmpl:Types.vmpl -> bool
(** Shared-mailbox placement check (IDCBs, Veil-Ring submission
    rings): true when the frame is validated [Private] guest memory
    (not a VMSA, not host-shared) that [vmpl] can both read and
    write — the §5.2 "less privileged party's memory" rule. *)

val iter_entries : t -> (Types.gpfn -> entry -> unit) -> unit
(** Iterate (in frame order) over frames whose RMP state differs from
    the reset state, presenting each as an immutable {!entry}
    snapshot. *)
