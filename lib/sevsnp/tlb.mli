(** Per-VCPU software TLB.

    Direct-mapped translation cache in front of the software page walk
    + RMP check, mirroring how SEV-SNP hardware caches both the
    translation and the RMP check result and requires explicit
    invalidation on PVALIDATE / RMPADJUST / PTE edits / VMPL switches.

    Validity is by generation stamping: an entry is live only while
    [stamp = !gen + epoch], where [gen] is the machine-wide TLB
    generation ({!Rmp.generation}, bumped by every RMP mutation and
    every page-table shootdown) and [epoch] is this VCPU's private
    flush counter (bumped by {!flush} on instance switches).  Both
    counters only grow, so any bump strictly increases the sum and
    invalidates every cached entry at once — there is no per-entry
    sweep on the invalidation path. *)

type entry = {
  mutable e_vapage : int;  (** VA page number; -1 when never filled *)
  mutable e_root : int;  (** page-table root gpfn the entry belongs to *)
  mutable e_stamp : int;  (** generation+epoch at fill time *)
  mutable e_gpfn : int;  (** translated frame *)
  mutable e_flags : int;  (** packed leaf flags: writable=1, user=2, nx=4 *)
  mutable e_rmp : int;  (** {!Rmp.tlb_snapshot} permission snapshot *)
}

type t

val create : gen:int ref -> t
(** [gen] is the shared machine-wide generation ref
    ({!Rmp.generation} of the platform's RMP). *)

val flush : t -> unit
(** Invalidate everything this VCPU cached (VMPL/instance switch). *)

val probe : t -> vapage:int -> root:int -> entry
(** The slot [vapage] maps to; check {!is_hit} before trusting it.
    Returns the slot itself (not an option) so the hit path allocates
    nothing. *)

val is_hit : t -> entry -> vapage:int -> root:int -> bool

val fill : t -> entry -> vapage:int -> root:int -> gpfn:int -> flags:int -> rmp:int -> unit

val pack_flags : Pagetable.flags -> int
(** Leaf flags in [e_flags] form. *)

val pt_allows : int -> Types.access -> Types.cpl -> bool
(** Evaluate packed leaf flags for an access at a CPL — the cached
    equivalent of the page-walk flag check. *)

val rmp_allows : int -> Types.access -> Types.cpl -> Types.vmpl -> bool
(** Evaluate a cached {!Rmp.tlb_snapshot} under the caller's current
    CPL/VMPL: shared pages never execute, in-use VMSA frames reject
    non-VMPL-0 writes, otherwise the permission nibble decides. *)
