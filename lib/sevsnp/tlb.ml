(* Per-VCPU software TLB: a direct-mapped array of translations keyed
   by (VA page, page-table root), each carrying the leaf flags and the
   RMP permission snapshot ({!Rmp.tlb_snapshot}) so a hit needs no
   table walk and no RMP lookup.

   Coherence is by stamping: an entry is valid only while
   [e_stamp = !gen + epoch].  [gen] is the machine-wide generation
   (bumped by every RMP mutation and page-table shootdown); [epoch] is
   this VCPU's private counter (bumped on instance/VMPL switches — the
   paper's VMPL-switch TLB flush).  Both only grow, so the sum
   strictly increases on any bump and every cached entry goes stale at
   once.  Permission *evaluation* happens at probe time against the
   caller's current CPL/VMPL, so ring transitions need no flush. *)

let slot_bits = 9
let slot_count = 1 lsl slot_bits

type entry = {
  mutable e_vapage : int;  (* VA page number; -1 = never filled *)
  mutable e_root : int;
  mutable e_stamp : int;
  mutable e_gpfn : int;
  mutable e_flags : int;  (* bit 0 writable, bit 1 user, bit 2 nx *)
  mutable e_rmp : int;  (* Rmp.tlb_snapshot bits *)
}

type t = { slots : entry array; gen : int ref; mutable epoch : int }

let create ~gen =
  {
    slots =
      Array.init slot_count (fun _ ->
          { e_vapage = -1; e_root = 0; e_stamp = 0; e_gpfn = 0; e_flags = 0; e_rmp = 0 });
    gen;
    epoch = 0;
  }

let flush t = t.epoch <- t.epoch + 1

let index ~vapage ~root = (vapage lxor (root * 0x9E3779B1)) land (slot_count - 1)

let probe t ~vapage ~root = Array.unsafe_get t.slots (index ~vapage ~root)

let is_hit t e ~vapage ~root =
  e.e_vapage = vapage && e.e_root = root && e.e_stamp = !(t.gen) + t.epoch

let fill t e ~vapage ~root ~gpfn ~flags ~rmp =
  e.e_vapage <- vapage;
  e.e_root <- root;
  e.e_gpfn <- gpfn;
  e.e_flags <- flags;
  e.e_rmp <- rmp;
  e.e_stamp <- !(t.gen) + t.epoch

(* flag packing for [e_flags] *)
let f_writable = 1
let f_user = 2
let f_nx = 4

let pack_flags (f : Pagetable.flags) =
  (if f.Pagetable.writable then f_writable else 0)
  lor (if f.Pagetable.user then f_user else 0)
  lor (if f.Pagetable.nx then f_nx else 0)

let pt_allows flags access cpl =
  (not (cpl = Types.Cpl3 && flags land f_user = 0))
  &&
  match (access : Types.access) with
  | Types.Write -> flags land f_writable <> 0
  | Types.Read -> true
  | Types.Execute -> flags land f_nx = 0

let rmp_allows bits access cpl vmpl =
  if bits land 16 <> 0 then (match (access : Types.access) with Types.Execute -> false | _ -> true)
  else if
    bits land 32 <> 0
    && (match (access : Types.access) with Types.Write -> true | _ -> false)
    && vmpl <> Types.Vmpl0
  then false
  else Perm.bits_allow (bits land 0xF) access cpl
