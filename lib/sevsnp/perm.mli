(** RMP per-VMPL access permissions.

    SEV-SNP tracks, for every guest page and every VMPL, whether the
    page may be read, written, executed in user mode, or executed in
    supervisor mode (APM vol. 2 §15.36.7). *)

type t = { read : bool; write : bool; user_exec : bool; super_exec : bool }

val none : t
val all : t
val ro : t
(** Read-only: read permitted, nothing else. *)

val rw : t
(** Read + write, no execute. *)

val rx : t
(** Read + both execute kinds, no write — kernel-text W^X shape. *)

val r_user_exec : t
(** Read + user execute only — enclave-text shape. *)

val allows : t -> Types.access -> Types.cpl -> bool
(** [allows t access cpl]: does [t] permit [access]?  [Execute] is
    checked against [user_exec] or [super_exec] depending on [cpl]. *)

val to_bits : t -> int
(** Pack into a 4-bit vector (read=1, write=2, user_exec=4,
    super_exec=8) — the RMP's dense per-VMPL storage format. *)

val of_bits : int -> t

val bits_allow : int -> Types.access -> Types.cpl -> bool
(** {!allows} on the packed form; allocation-free, used by the
    checked-access hot path. *)

val subset : t -> t -> bool
(** [subset a b]: every right in [a] is also in [b]. *)

val union : t -> t -> t
val inter : t -> t -> t

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
