type t = {
  mem : Phys_mem.t;
  rmp : Rmp.t;
  mutable vcpus_rev : Vcpu.t list;
  mutable nvcpus : int;
  ghcbs : (Types.gpfn, Ghcb.t) Hashtbl.t;
  attestation : Attestation.t;
  rng : Veil_crypto.Rng.t;
  mutable halted : string option;
  mutable exit_handler : (Vcpu.t -> unit) option;
  mutable npf_count : int;
  vmsa_table : (Types.gpfn, Vmsa.t) Hashtbl.t;
  metrics : Obs.Metrics.t;
  tracer : Obs.Trace.t;
  profiler : Obs.Profiler.t;
  pulse : Obs.Pulse.t;
  mutable chaos : Chaos.Fault_plan.t option;
  c_npf : Obs.Metrics.counter;
  c_rmpadjust : Obs.Metrics.counter;
  c_pvalidate : Obs.Metrics.counter;
  c_vmgexit : Obs.Metrics.counter;
  c_vmenter : Obs.Metrics.counter;
  c_tlb_hit : Obs.Metrics.counter;
  c_tlb_miss : Obs.Metrics.counter;
  c_tlb_flush : Obs.Metrics.counter;
  c_ipi : Obs.Metrics.counter;
  g_trace_dropped : Obs.Metrics.gauge;
}

exception Guest_page_fault of { fault_va : Types.va; fault_access : Types.access }

let create ?(seed = 7) ~npages () =
  let rng = Veil_crypto.Rng.create seed in
  let metrics = Obs.Metrics.create () in
  let t =
    {
    mem = Phys_mem.create ~npages;
    rmp = Rmp.create ~npages;
    vcpus_rev = [];
    nvcpus = 0;
    ghcbs = Hashtbl.create 8;
    attestation = Attestation.create (Veil_crypto.Rng.split rng);
    rng;
    halted = None;
    exit_handler = None;
    npf_count = 0;
    vmsa_table = Hashtbl.create 16;
    metrics;
    tracer = Obs.Trace.create ();
    profiler = Obs.Profiler.create ();
    pulse = Obs.Pulse.create ~metrics ();
    chaos = None;
    c_npf = Obs.Metrics.counter metrics "platform.npf";
    c_rmpadjust = Obs.Metrics.counter metrics "platform.rmpadjust";
    c_pvalidate = Obs.Metrics.counter metrics "platform.pvalidate";
    c_vmgexit = Obs.Metrics.counter metrics "platform.vmgexit";
    c_vmenter = Obs.Metrics.counter metrics "platform.vmenter";
    c_tlb_hit = Obs.Metrics.counter metrics "tlb.hit";
    c_tlb_miss = Obs.Metrics.counter metrics "tlb.miss";
    c_tlb_flush = Obs.Metrics.counter metrics "tlb.flush";
    c_ipi = Obs.Metrics.counter metrics "platform.ipi";
    g_trace_dropped = Obs.Metrics.gauge metrics "trace.dropped";
    }
  in
  (* Lazily-maintained gauges are trued up by the registry-wide
     refresh hook, so every dump / to_json / pulse snapshot sees
     current values — no caller-side refresh discipline needed. *)
  Obs.Metrics.set_refresh metrics (fun () ->
      Obs.Metrics.set t.g_trace_dropped (Obs.Trace.dropped t.tracer));
  Obs.Pulse.set_tracer t.pulse (Some t.tracer);
  t

(* Ring wraparound is invisible to the tracer's hot path; surface it as
   a gauge on demand (kept for existing callers — the registry refresh
   hook installed by [create] now runs this on every registry read). *)
let refresh_obs_gauges t = Obs.Metrics.refresh t.metrics

(* Machine-wide TLB shootdown: invalidate every VCPU's cached
   translations (page-table edit, RMP mutation outside the Rmp module's
   own bumps). *)
let tlb_shootdown t =
  incr (Rmp.generation t.rmp);
  Obs.Metrics.incr t.c_tlb_flush

let halt t reason =
  if t.halted = None then t.halted <- Some reason;
  raise (Types.Cvm_halted reason)

(* --- Veil-Chaos fault injection --- *)

let arm_chaos t plan = t.chaos <- Some plan
let disarm_chaos t = t.chaos <- None

(* Mark an injection: a lazily-interned chaos.* counter (the registry
   only grows chaos entries on machines that actually saw faults) plus
   an instant trace event so chaos runs render in Perfetto. *)
let chaos_mark t vcpu name =
  Obs.Metrics.incr (Obs.Metrics.counter t.metrics ("chaos." ^ name));
  if Obs.Trace.enabled t.tracer then begin
    let vc, ts, vmpl =
      match vcpu with
      | Some v -> (v.Vcpu.id, Vcpu.rdtsc v, Types.vmpl_index (Vcpu.vmpl v))
      | None -> (-1, 0, -1)
    in
    Obs.Trace.emit t.tracer ~phase:Obs.Trace.Instant ~bucket:"chaos" ~vcpu:vc ~vmpl ~ts
      (Obs.Trace.Span ("chaos." ^ name))
  end

(* Flip one bit in a uniformly-drawn Shared frame — the DRAM/host
   disturbance of the fault model.  Private (encrypted, integrity-
   protected) frames are structurally out of reach: only frames the
   RMP maps as [Shared] are candidates.  O(npages) scans are fine
   here; injections are rare events. *)
let chaos_flip_shared t plan =
  let n = Rmp.npages t.rmp in
  let nshared = ref 0 in
  for g = 0 to n - 1 do
    if Rmp.state t.rmp g = Rmp.Shared then incr nshared
  done;
  if !nshared > 0 then begin
    let k = Chaos.Fault_plan.draw plan !nshared in
    let target = ref (-1) in
    let seen = ref 0 in
    (try
       for g = 0 to n - 1 do
         if Rmp.state t.rmp g = Rmp.Shared then begin
           if !seen = k then begin
             target := g;
             raise Exit
           end;
           incr seen
         end
       done
     with Exit -> ());
    if !target >= 0 then begin
      assert (Rmp.state t.rmp !target = Rmp.Shared);
      let gpa = Types.gpa_of_gpfn !target + Chaos.Fault_plan.draw plan Types.page_size in
      Phys_mem.flip_bit t.mem gpa (Chaos.Fault_plan.draw plan 8);
      chaos_mark t None "shared_bitflip"
    end
  end

let check_running t = match t.halted with None -> () | Some r -> raise (Types.Cvm_halted r)

let is_halted t = t.halted

let raise_npf_at t vcpu info =
  t.npf_count <- t.npf_count + 1;
  Obs.Metrics.incr t.c_npf;
  if Obs.Trace.enabled t.tracer then begin
    let vc, ts = match vcpu with Some v -> (v.Vcpu.id, Vcpu.rdtsc v) | None -> (-1, 0) in
    Obs.Trace.emit t.tracer ~vcpu:vc
      ~vmpl:(Types.vmpl_index info.Types.fault_vmpl)
      ~ts ~arg:(Types.gpfn_of_gpa info.Types.fault_gpa) Obs.Trace.Npf
  end;
  (if Obs.Profiler.enabled t.profiler then
     match vcpu with
     | Some v ->
         (* #NPF halts the CVM; a zero-cycle leaf marks where under the
            current attribution stack the fault landed. *)
         Obs.Profiler.leaf t.profiler ~vcpu:v.Vcpu.id
           ~vmpl:(Types.vmpl_index info.Types.fault_vmpl) ~dur:0 "npf"
     | None -> ());
  t.halted <- Some (Format.asprintf "%a" Types.pp_npf info);
  raise (Types.Npf info)

let raise_npf t info = raise_npf_at t None info

(* --- launch --- *)

let launch_load t ~entry_name segments =
  let m = Veil_crypto.Measurement.create ~domain:"cvm-launch" in
  Veil_crypto.Measurement.add_string m ~label:"entry" entry_name;
  List.iter
    (fun (gpa, data) ->
      let first = Types.gpfn_of_gpa gpa and last = Types.gpfn_of_gpa (gpa + Bytes.length data - 1) in
      for gpfn = first to last do
        Rmp.validate t.rmp gpfn
      done;
      Phys_mem.write t.mem gpa data;
      Veil_crypto.Measurement.add_int m ~label:"gpa" gpa;
      Veil_crypto.Measurement.add_bytes m ~label:"segment" data)
    segments;
  Attestation.record_launch t.attestation ~measurement:(Veil_crypto.Measurement.digest m)

let add_vcpu t =
  let v = Vcpu.create ~id:t.nvcpus ~tlb_gen:(Rmp.generation t.rmp) in
  t.vcpus_rev <- v :: t.vcpus_rev;
  t.nvcpus <- t.nvcpus + 1;
  v

let add_boot_vcpu t =
  assert (t.vcpus_rev = []);
  add_vcpu t

let vcpu_count t = t.nvcpus

let vcpus t = List.rev t.vcpus_rev

let vcpu_by_id t id = List.find_opt (fun v -> v.Vcpu.id = id) t.vcpus_rev

(* Distributed TLB shootdown (Veil-SMP): the cycle-true replacement
   for the old flat 500-cycle constant.  The initiator pays its local
   flush ([Cycles.tlb_local_flush]) plus one IPI send + ack-wait per
   *remote* VCPU; each remote pays the flush-handler ISR and has its
   TLB epoch flushed.  With a single VCPU this charges exactly the old
   500 cycles and touches nothing else, which is what keeps the
   calibrated E2/E3/E4 single-VCPU numbers byte-identical.

   Note the RMP generation is NOT bumped here: the page-table edit
   that motivated the shootdown already bumped it through
   [tlb_shootdown] (the [Pagetable] io callback), and the generation
   is machine-wide — what remains per-VCPU is the cost and the epoch
   flush this function models. *)
let tlb_shootdown_distributed t ~initiator =
  Vcpu.charge initiator Cycles.Kernel Cycles.tlb_local_flush;
  Tlb.flush initiator.Vcpu.tlb;
  List.iter
    (fun v ->
      if v.Vcpu.id <> initiator.Vcpu.id then begin
        Obs.Metrics.incr t.c_ipi;
        Ipi.send ~initiator ~target:v Ipi.Tlb_flush;
        (* The ack leg of the send the initiator just paid for is
           waiting, not work: the spin until this remote acknowledged
           ([Cycles.ipi_ack], the tail of the interval Ipi.send
           charged). *)
        if Obs.Trace.enabled t.tracer then
          Obs.Trace.complete t.tracer ~bucket:"kernel"
            ~id:(Obs.Profiler.id t.profiler ~vcpu:initiator.Vcpu.id)
            ~vcpu:initiator.Vcpu.id ~vmpl:(Types.vmpl_index (Vcpu.vmpl initiator))
            ~ts:(Vcpu.rdtsc initiator - Cycles.ipi_ack) ~dur:Cycles.ipi_ack
            (Obs.Trace.Wait Obs.Trace.Shootdown_ack)
      end)
    (List.rev t.vcpus_rev)

(* --- checked guest access --- *)

let check_page t vcpu gpfn access =
  match
    Rmp.check_guest_access t.rmp ~gpfn ~vmpl:(Vcpu.vmpl vcpu) ~cpl:(Vcpu.cpl vcpu) ~access
  with
  | Ok () -> ()
  | Error info -> raise_npf_at t (Some vcpu) info

let check_range t vcpu gpa len access =
  if len > 0 then begin
    let first = Types.gpfn_of_gpa gpa and last = Types.gpfn_of_gpa (gpa + len - 1) in
    for gpfn = first to last do
      check_page t vcpu gpfn access
    done
  end

let read t vcpu gpa len =
  check_running t;
  check_range t vcpu gpa len Types.Read;
  Phys_mem.read t.mem gpa len

let read_into t vcpu gpa buf pos len =
  check_running t;
  check_range t vcpu gpa len Types.Read;
  Phys_mem.read_into t.mem gpa buf pos len

let write t vcpu gpa data =
  check_running t;
  check_range t vcpu gpa (Bytes.length data) Types.Write;
  Phys_mem.write t.mem gpa data

let write_sub t vcpu gpa data pos len =
  check_running t;
  check_range t vcpu gpa len Types.Write;
  Phys_mem.write_sub t.mem gpa data pos len

let read_u64 t vcpu gpa =
  check_running t;
  check_range t vcpu gpa 8 Types.Read;
  Phys_mem.read_u64 t.mem gpa

let write_u64 t vcpu gpa v =
  check_running t;
  check_range t vcpu gpa 8 Types.Write;
  Phys_mem.write_u64 t.mem gpa v

let check_exec t vcpu gpa =
  check_running t;
  check_page t vcpu (Types.gpfn_of_gpa gpa) Types.Execute

let raw_pt_read t gpa = Phys_mem.read_u64 t.mem gpa

let translate t ~root va = Pagetable.walk ~read_u64:(raw_pt_read t) ~root va

let pt_access_ok (vcpu : Vcpu.t) (pte : Pagetable.pte) access =
  let f = pte.Pagetable.pte_flags in
  let user = Vcpu.cpl vcpu = Types.Cpl3 in
  (not (user && not f.Pagetable.user))
  && (match access with Types.Write -> f.Pagetable.writable | Types.Read -> true | Types.Execute -> not f.Pagetable.nx)

(* Slow translation path: full table walk, flag check, RMP check —
   then install the result (translation + permission snapshot) in the
   VCPU's TLB.  Faults here are the authoritative ones; the TLB can
   only *allow* faster, never differently, because any state change
   that could flip a decision bumps the generation. *)
let translate_slow t vcpu ~root a access =
  Obs.Metrics.incr t.c_tlb_miss;
  let off = Types.page_offset a in
  match translate t ~root (a - off) with
  | None -> raise (Guest_page_fault { fault_va = a; fault_access = access })
  | Some pte ->
      if not (pt_access_ok vcpu pte access) then raise (Guest_page_fault { fault_va = a; fault_access = access });
      let gpfn = pte.Pagetable.pte_gpfn in
      check_page t vcpu gpfn access;
      let tlb = vcpu.Vcpu.tlb in
      let vapage = (a - off) lsr Types.page_shift in
      Tlb.fill tlb (Tlb.probe tlb ~vapage ~root) ~vapage ~root ~gpfn
        ~flags:(Tlb.pack_flags pte.Pagetable.pte_flags)
        ~rmp:(Rmp.tlb_snapshot t.rmp gpfn ~vmpl:(Vcpu.vmpl vcpu));
      gpfn

(* Translate one address with the TLB in front.  A hit evaluates the
   cached flags and RMP snapshot under the caller's *current* CPL/VMPL
   and access; anything the cached state does not cleanly permit falls
   back to the slow path, which re-derives the authoritative fault. *)
let tlb_translate t vcpu ~root a access =
  let vapage = a lsr Types.page_shift in
  let tlb = vcpu.Vcpu.tlb in
  let e = Tlb.probe tlb ~vapage ~root in
  if
    Tlb.is_hit tlb e ~vapage ~root
    && Tlb.pt_allows e.Tlb.e_flags access (Vcpu.cpl vcpu)
    && Tlb.rmp_allows e.Tlb.e_rmp access (Vcpu.cpl vcpu) (Vcpu.vmpl vcpu)
  then begin
    Obs.Metrics.incr t.c_tlb_hit;
    e.Tlb.e_gpfn
  end
  else translate_slow t vcpu ~root a access

let via_pt t vcpu ~root va len access k =
  check_running t;
  let pos = ref 0 in
  while !pos < len do
    let a = va + !pos in
    let off = Types.page_offset a in
    let n = min (len - !pos) (Types.page_size - off) in
    let gpfn = tlb_translate t vcpu ~root a access in
    k ~gpa:(Types.gpa_of_gpfn gpfn + off) ~pos:!pos ~len:n;
    pos := !pos + n
  done

let read_via_pt t vcpu ~root va len =
  let out = Bytes.create len in
  via_pt t vcpu ~root va len Types.Read (fun ~gpa ~pos ~len ->
      Phys_mem.read_into t.mem gpa out pos len);
  out

let read_into_via_pt t vcpu ~root va buf pos len =
  via_pt t vcpu ~root va len Types.Read (fun ~gpa ~pos:p ~len ->
      Phys_mem.read_into t.mem gpa buf (pos + p) len)

let write_via_pt t vcpu ~root va data =
  via_pt t vcpu ~root va (Bytes.length data) Types.Write (fun ~gpa ~pos ~len ->
      Phys_mem.write_sub t.mem gpa data pos len)

let write_sub_via_pt t vcpu ~root va data pos len =
  via_pt t vcpu ~root va len Types.Write (fun ~gpa ~pos:p ~len ->
      Phys_mem.write_sub t.mem gpa data (pos + p) len)

let read_u64_via_pt t vcpu ~root va =
  check_running t;
  if Types.page_offset va <= Types.page_size - 8 then begin
    let gpfn = tlb_translate t vcpu ~root va Types.Read in
    Phys_mem.read_u64 t.mem (Types.gpa_of_gpfn gpfn + Types.page_offset va)
  end
  else begin
    (* page-straddling load: translate both pages byte by byte *)
    let v = ref 0 in
    for i = 7 downto 0 do
      let a = va + i in
      let gpfn = tlb_translate t vcpu ~root a Types.Read in
      v := (!v lsl 8) lor Phys_mem.read_byte t.mem (Types.gpa_of_gpfn gpfn + Types.page_offset a)
    done;
    !v land max_int
  end

let write_u64_via_pt t vcpu ~root va v =
  check_running t;
  if Types.page_offset va <= Types.page_size - 8 then begin
    let gpfn = tlb_translate t vcpu ~root va Types.Write in
    Phys_mem.write_u64 t.mem (Types.gpa_of_gpfn gpfn + Types.page_offset va) v
  end
  else
    for i = 0 to 7 do
      let a = va + i in
      let gpfn = tlb_translate t vcpu ~root a Types.Write in
      Phys_mem.write_byte t.mem (Types.gpa_of_gpfn gpfn + Types.page_offset a) ((v lsr (8 * i)) land 0xff)
    done

let check_exec_via_pt t vcpu ~root va =
  check_running t;
  ignore (tlb_translate t vcpu ~root va Types.Execute)

(* --- instructions --- *)

let rmpadjust t vcpu ?(bucket = Cycles.Other) ~gpfn ~target ~perms ~vmsa () =
  check_running t;
  let touch =
    if gpfn >= 0 && gpfn < Rmp.npages t.rmp && Rmp.touch t.rmp gpfn then Cycles.rmpadjust_page_touch
    else 0
  in
  Vcpu.charge vcpu bucket (Cycles.rmpadjust_insn + touch);
  Obs.Metrics.incr t.c_rmpadjust;
  if Obs.Trace.enabled t.tracer then
    Obs.Trace.emit t.tracer ~vcpu:vcpu.Vcpu.id ~vmpl:(Types.vmpl_index (Vcpu.vmpl vcpu))
      ~ts:(Vcpu.rdtsc vcpu) ~bucket:(Cycles.bucket_name bucket) ~arg:gpfn
      ~id:(Obs.Profiler.id t.profiler ~vcpu:vcpu.Vcpu.id) Obs.Trace.Rmpadjust;
  if Obs.Profiler.enabled t.profiler then
    Obs.Profiler.leaf t.profiler ~vcpu:vcpu.Vcpu.id ~vmpl:(Types.vmpl_index (Vcpu.vmpl vcpu))
      ~dur:(Cycles.rmpadjust_insn + touch) "rmpadjust";
  (* The page touch: a caller that cannot read the frame faults. *)
  let caller = Vcpu.vmpl vcpu in
  (match Rmp.check_guest_access t.rmp ~gpfn ~vmpl:caller ~cpl:Types.Cpl0 ~access:Types.Read with
  | Ok () -> ()
  | Error info -> raise_npf_at t (Some vcpu) info);
  (match t.chaos with
  | Some plan when Chaos.Fault_plan.fire plan Chaos.Fault_plan.Spurious_npf ->
      (* a *resumable* #NPF: the host swapped the backing frame out and
         in again, so the guest pays an exit and hardware re-executes
         the instruction — extra cycles, then the op completes *)
      Vcpu.charge vcpu Cycles.Switch Cycles.npf_exit;
      chaos_mark t (Some vcpu) "spurious_npf"
  | _ -> ());
  match t.chaos with
  | Some plan when Chaos.Fault_plan.fire plan Chaos.Fault_plan.Rmpadjust_fail ->
      chaos_mark t (Some vcpu) "rmpadjust_fail";
      Error "RMPADJUST: FAIL_INUSE (transient)"
  | _ ->
      let r = Rmp.adjust t.rmp ~caller ~gpfn ~target ~perms ~vmsa in
      (* Rmp.adjust bumped the generation; account the flush. *)
      if r = Ok () then Obs.Metrics.incr t.c_tlb_flush;
      r

let pvalidate t vcpu ?(bucket = Cycles.Other) ~gpfn ~to_private () =
  check_running t;
  Vcpu.charge vcpu bucket Cycles.pvalidate;
  Obs.Metrics.incr t.c_pvalidate;
  if Obs.Trace.enabled t.tracer then
    Obs.Trace.emit t.tracer ~vcpu:vcpu.Vcpu.id ~vmpl:(Types.vmpl_index (Vcpu.vmpl vcpu))
      ~ts:(Vcpu.rdtsc vcpu) ~bucket:(Cycles.bucket_name bucket) ~arg:gpfn
      ~id:(Obs.Profiler.id t.profiler ~vcpu:vcpu.Vcpu.id) Obs.Trace.Pvalidate;
  if Obs.Profiler.enabled t.profiler then
    Obs.Profiler.leaf t.profiler ~vcpu:vcpu.Vcpu.id ~vmpl:(Types.vmpl_index (Vcpu.vmpl vcpu))
      ~dur:Cycles.pvalidate "pvalidate";
  match t.chaos with
  | Some plan when Chaos.Fault_plan.fire plan Chaos.Fault_plan.Pvalidate_fail ->
      chaos_mark t (Some vcpu) "pvalidate_fail";
      Error "PVALIDATE: FAIL_INUSE (transient)"
  | _ ->
  if Vcpu.vmpl vcpu <> Types.Vmpl0 then Error "pvalidate: FAIL_PERMISSION (not VMPL-0)"
  else if gpfn < 0 || gpfn >= Rmp.npages t.rmp then Error "pvalidate: frame out of range"
  else begin
    if to_private then Rmp.validate t.rmp gpfn else Rmp.unvalidate t.rmp gpfn;
    (* state change bumped the generation; account the flush *)
    Obs.Metrics.incr t.c_tlb_flush;
    Ok ()
  end

let set_ghcb t vcpu gpa =
  check_running t;
  let gpfn = Types.gpfn_of_gpa gpa in
  if gpfn < 0 || gpfn >= Rmp.npages t.rmp then Error "ghcb: frame out of range"
  else if Rmp.state t.rmp gpfn <> Rmp.Shared then Error "ghcb: page is not shared"
  else begin
    (Vcpu.current_vmsa vcpu).Vmsa.ghcb_gpa <- gpa;
    if not (Hashtbl.mem t.ghcbs gpfn) then Hashtbl.replace t.ghcbs gpfn (Ghcb.create ());
    Ok ()
  end

let register_ghcb t gpa =
  let gpfn = Types.gpfn_of_gpa gpa in
  if gpfn < 0 || gpfn >= Rmp.npages t.rmp then Error "ghcb: frame out of range"
  else if Rmp.state t.rmp gpfn <> Rmp.Shared then Error "ghcb: page is not shared"
  else begin
    match Hashtbl.find_opt t.ghcbs gpfn with
    | Some g -> Ok g
    | None ->
        let g = Ghcb.create () in
        Hashtbl.replace t.ghcbs gpfn g;
        Ok g
  end

let ghcb_at t gpfn = Hashtbl.find_opt t.ghcbs gpfn

let ghcb_of_vcpu t vcpu =
  let gpa = (Vcpu.current_vmsa vcpu).Vmsa.ghcb_gpa in
  if gpa = 0 then None else ghcb_at t (Types.gpfn_of_gpa gpa)

let dispatch_exit t vcpu =
  match t.exit_handler with
  | Some h -> h vcpu
  | None -> halt t "VM exit with no hypervisor attached"

(* Chaos watchdog: every world exit spends one unit of the plan's step
   budget.  A retry protocol that stops converging (livelock) exhausts
   it and the CVM halts with an explicit reason instead of hanging —
   invariant (2) of the chaos driver. *)
let chaos_step t =
  match t.chaos with
  | None -> ()
  | Some plan ->
      if not (Chaos.Fault_plan.step plan) then
        halt t "chaos watchdog: step budget exceeded"

let vmgexit t vcpu =
  check_running t;
  chaos_step t;
  vcpu.Vcpu.last_exit_ts <- Vcpu.rdtsc vcpu;
  (* Veil-Pulse epoch sampler: rides the same world-exit boundary as
     the chaos watchdog.  Disarmed this is one flag test; a fired
     capture bills its monitor-resident registry scan to the ticking
     VCPU. *)
  if Obs.Pulse.tick t.pulse ~now:vcpu.Vcpu.last_exit_ts then
    Vcpu.charge vcpu Cycles.Monitor Cycles.pulse_sample;
  Obs.Metrics.incr t.c_vmgexit;
  if Obs.Trace.enabled t.tracer then
    Obs.Trace.emit t.tracer ~vcpu:vcpu.Vcpu.id ~vmpl:(Types.vmpl_index (Vcpu.vmpl vcpu))
      ~ts:vcpu.Vcpu.last_exit_ts ~bucket:"switch" ~arg:0
      ~id:(Obs.Profiler.id t.profiler ~vcpu:vcpu.Vcpu.id) Obs.Trace.Vmgexit;
  Vcpu.charge vcpu Cycles.Switch (Cycles.automatic_exit + Cycles.vmsa_save + Cycles.ghcb_msr_protocol);
  (* The combined exit charge, attributed leg by leg (paper §9.1). *)
  if Obs.Profiler.enabled t.profiler then begin
    let vmpl = Types.vmpl_index (Vcpu.vmpl vcpu) in
    Obs.Profiler.leaf t.profiler ~vcpu:vcpu.Vcpu.id ~vmpl ~dur:Cycles.automatic_exit "vmgexit";
    Obs.Profiler.leaf t.profiler ~vcpu:vcpu.Vcpu.id ~vmpl ~dur:Cycles.vmsa_save "vmsa_save";
    Obs.Profiler.leaf t.profiler ~vcpu:vcpu.Vcpu.id ~vmpl ~dur:Cycles.ghcb_msr_protocol
      "ghcb_protocol"
  end;
  vcpu.Vcpu.exits <- vcpu.Vcpu.exits + 1;
  dispatch_exit t vcpu

let automatic_exit t vcpu =
  check_running t;
  chaos_step t;
  vcpu.Vcpu.last_exit_ts <- Vcpu.rdtsc vcpu;
  if Obs.Pulse.tick t.pulse ~now:vcpu.Vcpu.last_exit_ts then
    Vcpu.charge vcpu Cycles.Monitor Cycles.pulse_sample;
  Obs.Metrics.incr t.c_vmgexit;
  if Obs.Trace.enabled t.tracer then
    Obs.Trace.emit t.tracer ~vcpu:vcpu.Vcpu.id ~vmpl:(Types.vmpl_index (Vcpu.vmpl vcpu))
      ~ts:vcpu.Vcpu.last_exit_ts ~bucket:"switch" ~arg:1
      ~id:(Obs.Profiler.id t.profiler ~vcpu:vcpu.Vcpu.id) Obs.Trace.Vmgexit;
  Vcpu.charge vcpu Cycles.Switch (Cycles.automatic_exit + Cycles.vmsa_save);
  (* Same exit leg as VMGEXIT, minus the GHCB MSR protocol. *)
  if Obs.Profiler.enabled t.profiler then begin
    let vmpl = Types.vmpl_index (Vcpu.vmpl vcpu) in
    Obs.Profiler.leaf t.profiler ~vcpu:vcpu.Vcpu.id ~vmpl ~dur:Cycles.automatic_exit "vmgexit";
    Obs.Profiler.leaf t.profiler ~vcpu:vcpu.Vcpu.id ~vmpl ~dur:Cycles.vmsa_save "vmsa_save"
  end;
  vcpu.Vcpu.exits <- vcpu.Vcpu.exits + 1;
  dispatch_exit t vcpu

let vmenter t vcpu vmsa =
  check_running t;
  Vcpu.charge vcpu Cycles.Switch (Cycles.automatic_exit + Cycles.vmsa_restore);
  if Obs.Profiler.enabled t.profiler then begin
    (* Entry legs, attributed to the instance being entered. *)
    let vmpl = Types.vmpl_index vmsa.Vmsa.vmpl in
    Obs.Profiler.leaf t.profiler ~vcpu:vcpu.Vcpu.id ~vmpl ~dur:Cycles.automatic_exit "vmenter";
    Obs.Profiler.leaf t.profiler ~vcpu:vcpu.Vcpu.id ~vmpl ~dur:Cycles.vmsa_restore "vmsa_restore"
  end;
  (* Instance switch (the VMPL/domain switch of the paper) flushes this
     CPU's TLB; re-entering the same instance (same ASID) keeps it. *)
  (match vcpu.Vcpu.current with
  | Some prev when prev == vmsa -> ()
  | _ ->
      Tlb.flush vcpu.Vcpu.tlb;
      Obs.Metrics.incr t.c_tlb_flush);
  vcpu.Vcpu.current <- Some vmsa;
  Obs.Metrics.incr t.c_vmenter;
  if Obs.Trace.enabled t.tracer then
    Obs.Trace.emit t.tracer ~vcpu:vcpu.Vcpu.id ~vmpl:(Types.vmpl_index vmsa.Vmsa.vmpl)
      ~ts:(Vcpu.rdtsc vcpu) ~bucket:"switch"
      ~id:(Obs.Profiler.id t.profiler ~vcpu:vcpu.Vcpu.id) Obs.Trace.Vmenter

let install_vmsa t (vmsa : Vmsa.t) =
  (* Hardware accepts a frame as a VMSA only once RMPADJUST marked it. *)
  if not (Rmp.is_vmsa t.rmp vmsa.Vmsa.backing_gpfn) then
    Error "install_vmsa: frame lacks the RMP VMSA attribute"
  else begin
    Hashtbl.replace t.vmsa_table vmsa.Vmsa.backing_gpfn vmsa;
    Ok ()
  end

let vmsa_at t gpfn =
  if Rmp.is_vmsa t.rmp gpfn then Hashtbl.find_opt t.vmsa_table gpfn else None

(* --- host-side access --- *)

let host_page_check t gpa len =
  if len < 0 || gpa < 0 || gpa + len > Phys_mem.bytes_size t.mem then Error "host access out of range"
  else begin
    let first = Types.gpfn_of_gpa gpa and last = Types.gpfn_of_gpa (gpa + max 0 (len - 1)) in
    let rec go gpfn =
      if gpfn > last then Ok ()
      else if Rmp.host_can_access t.rmp gpfn then go (gpfn + 1)
      else Error (Printf.sprintf "SNP: host access to private guest frame %d blocked" gpfn)
    in
    go first
  end

let host_read t gpa len =
  match host_page_check t gpa len with
  | Ok () -> Ok (Phys_mem.read t.mem gpa len)
  | Error _ as e -> e

let host_write t gpa data =
  match host_page_check t gpa (Bytes.length data) with
  | Ok () ->
      Phys_mem.write t.mem gpa data;
      Ok ()
  | Error _ as e -> e

let attestation_report t vcpu ~report_data =
  check_running t;
  Vcpu.charge vcpu Cycles.Crypto (Cycles.hash_cost 4096);
  Attestation.report t.attestation ~requester_vmpl:(Vcpu.vmpl vcpu) ~report_data

(* --- Veil-Pulse attested export --- *)

(* Telemetry leaves the CVM through the hypervisor, which the threat
   model lets corrupt or suppress anything in flight.  [export_pulse]
   is that hostile channel: the [Pulse_export_tamper] chaos site may
   edit one exported interval line or drop it entirely before the
   verifier sees the data.  [Pulse.verify_export] must flag the exact
   interval — detected tampering, never silently accepted numbers. *)
let export_pulse t =
  let exported = Obs.Pulse.export t.pulse in
  match t.chaos with
  | Some plan when Chaos.Fault_plan.fire plan Chaos.Fault_plan.Pulse_export_tamper -> (
      chaos_mark t None "pulse_export_tamper";
      match String.split_on_char '\n' exported with
      | header :: lines when lines <> [] ->
          let victim = Chaos.Fault_plan.draw plan (List.length lines) in
          let drop = Chaos.Fault_plan.draw plan 2 = 0 in
          let lines' =
            List.concat (List.mapi
              (fun i line ->
                if i <> victim then [ line ]
                else if drop then []
                else
                  (* Edit: perturb one digit of the payload so the
                     line still parses but its digest diverges. *)
                  [ (let b = Bytes.of_string line in
                     let k = Bytes.length b - 1 in
                     Bytes.set b k (if Bytes.get b k = '0' then '1' else '0');
                     Bytes.to_string b) ])
              lines)
          in
          String.concat "\n" (header :: lines')
      | _ -> exported)
  | _ -> exported
