(* Chunked arena: guest-physical space is carved into 64-page (256 KiB)
   chunks materialized on first write, preserving the old sparse
   lazy-zero-fill semantics while making the common access a single
   array load + blit instead of a Hashtbl probe per page.  A per-page
   touched byte keeps [page_is_materialized]'s write-tracking
   semantics. *)

let chunk_page_bits = 6
let chunk_pages = 1 lsl chunk_page_bits
let chunk_shift = Types.page_shift + chunk_page_bits
let chunk_bytes = 1 lsl chunk_shift

type t = { npages : int; nbytes : int; chunks : bytes array; touched : Bytes.t }

let create ~npages =
  if npages <= 0 then invalid_arg "Phys_mem.create";
  let nchunks = (npages + chunk_pages - 1) / chunk_pages in
  {
    npages;
    nbytes = npages * Types.page_size;
    chunks = Array.make nchunks Bytes.empty;
    touched = Bytes.make npages '\000';
  }

let npages t = t.npages
let bytes_size t = t.nbytes

let valid_gpa t gpa = gpa >= 0 && gpa < t.nbytes

let check_range t gpa len =
  (* [gpa > t.nbytes - len], not [gpa + len > t.nbytes]: the sum can
     overflow for a huge attacker-supplied gpa and slip past the check
     straight into an [unsafe_get]. *)
  if len < 0 || gpa < 0 || gpa > t.nbytes - len then
    invalid_arg (Printf.sprintf "Phys_mem: access 0x%x+%d out of range" gpa len)

(* materialize the chunk holding [gpa] *)
let chunk_rw t gpa =
  let ci = gpa lsr chunk_shift in
  let c = Array.unsafe_get t.chunks ci in
  if Bytes.length c <> 0 then c
  else begin
    let c = Bytes.make chunk_bytes '\000' in
    Array.unsafe_set t.chunks ci c;
    c
  end

let mark_written t gpa len =
  if len > 0 then begin
    let first = Types.gpfn_of_gpa gpa and last = Types.gpfn_of_gpa (gpa + len - 1) in
    if first = last then Bytes.set t.touched first '\001'
    else Bytes.fill t.touched first (last - first + 1) '\001'
  end

let read_into t gpa buf pos len =
  check_range t gpa len;
  if pos < 0 || len < 0 || pos + len > Bytes.length buf then invalid_arg "Phys_mem.read_into";
  let p = ref 0 in
  while !p < len do
    let a = gpa + !p in
    let off = a land (chunk_bytes - 1) in
    let n = min (len - !p) (chunk_bytes - off) in
    let c = Array.unsafe_get t.chunks (a lsr chunk_shift) in
    if Bytes.length c = 0 then Bytes.fill buf (pos + !p) n '\000'
    else Bytes.blit c off buf (pos + !p) n;
    p := !p + n
  done

let read t gpa len =
  check_range t gpa len;
  let out = Bytes.create len in
  read_into t gpa out 0 len;
  out

let write_sub t gpa data pos len =
  check_range t gpa len;
  if pos < 0 || len < 0 || pos + len > Bytes.length data then invalid_arg "Phys_mem.write_sub";
  mark_written t gpa len;
  let p = ref 0 in
  while !p < len do
    let a = gpa + !p in
    let off = a land (chunk_bytes - 1) in
    let n = min (len - !p) (chunk_bytes - off) in
    Bytes.blit data (pos + !p) (chunk_rw t a) off n;
    p := !p + n
  done

let write t gpa data = write_sub t gpa data 0 (Bytes.length data)

let read_byte t gpa =
  check_range t gpa 1;
  let c = Array.unsafe_get t.chunks (gpa lsr chunk_shift) in
  if Bytes.length c = 0 then 0 else Char.code (Bytes.unsafe_get c (gpa land (chunk_bytes - 1)))

let write_byte t gpa v =
  check_range t gpa 1;
  Bytes.set t.touched (Types.gpfn_of_gpa gpa) '\001';
  Bytes.unsafe_set (chunk_rw t gpa) (gpa land (chunk_bytes - 1)) (Char.chr (v land 0xff))

(* Fault-injection support (Veil-Chaos): DRAM disturbance in a single
   bit.  The caller (Platform) is responsible for restricting this to
   Shared frames — private-page integrity is SNP's hardware guarantee
   and is never subject to injection. *)
let flip_bit t gpa bit = write_byte t gpa (read_byte t gpa lxor (1 lsl (bit land 7)))

(* The u64 accessors compose bytes by hand rather than via
   [Bytes.get_int64_le]: an 8-load spill is still a handful of ns and,
   unlike an intermediate [Int64], allocates nothing — the TLB-hit
   read path's zero-allocation contract depends on it. *)
let read_u64 t gpa =
  check_range t gpa 8;
  let off = gpa land (chunk_bytes - 1) in
  if off <= chunk_bytes - 8 then begin
    let c = Array.unsafe_get t.chunks (gpa lsr chunk_shift) in
    if Bytes.length c = 0 then 0
    else
      (Char.code (Bytes.unsafe_get c off)
       lor (Char.code (Bytes.unsafe_get c (off + 1)) lsl 8)
       lor (Char.code (Bytes.unsafe_get c (off + 2)) lsl 16)
       lor (Char.code (Bytes.unsafe_get c (off + 3)) lsl 24)
       lor (Char.code (Bytes.unsafe_get c (off + 4)) lsl 32)
       lor (Char.code (Bytes.unsafe_get c (off + 5)) lsl 40)
       lor (Char.code (Bytes.unsafe_get c (off + 6)) lsl 48)
       lor (Char.code (Bytes.unsafe_get c (off + 7)) lsl 56))
      land max_int
  end
  else begin
    (* straddles a chunk boundary *)
    let v = ref 0 in
    for i = 7 downto 0 do
      v := (!v lsl 8) lor read_byte t (gpa + i)
    done;
    !v land max_int
  end

let write_u64 t gpa v =
  check_range t gpa 8;
  mark_written t gpa 8;
  let off = gpa land (chunk_bytes - 1) in
  if off <= chunk_bytes - 8 then begin
    let c = chunk_rw t gpa in
    Bytes.unsafe_set c off (Char.unsafe_chr (v land 0xff));
    Bytes.unsafe_set c (off + 1) (Char.unsafe_chr ((v lsr 8) land 0xff));
    Bytes.unsafe_set c (off + 2) (Char.unsafe_chr ((v lsr 16) land 0xff));
    Bytes.unsafe_set c (off + 3) (Char.unsafe_chr ((v lsr 24) land 0xff));
    Bytes.unsafe_set c (off + 4) (Char.unsafe_chr ((v lsr 32) land 0xff));
    Bytes.unsafe_set c (off + 5) (Char.unsafe_chr ((v lsr 40) land 0xff));
    Bytes.unsafe_set c (off + 6) (Char.unsafe_chr ((v lsr 48) land 0xff));
    Bytes.unsafe_set c (off + 7) (Char.unsafe_chr ((v lsr 56) land 0xff))
  end
  else
    for i = 0 to 7 do
      write_byte t (gpa + i) ((v lsr (8 * i)) land 0xff)
    done

let zero_page t gpfn =
  if gpfn < 0 || gpfn >= t.npages then invalid_arg "Phys_mem.zero_page";
  let gpa = Types.gpa_of_gpfn gpfn in
  let c = Array.unsafe_get t.chunks (gpa lsr chunk_shift) in
  if Bytes.length c <> 0 then Bytes.fill c (gpa land (chunk_bytes - 1)) Types.page_size '\000'

let page_is_materialized t gpfn =
  gpfn >= 0 && gpfn < t.npages && Bytes.get t.touched gpfn <> '\000'
