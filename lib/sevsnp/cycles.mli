(** Cycle-cost model and per-VCPU accounting.

    All simulator time is expressed in CPU cycles of the paper's
    evaluation machine (AMD EPYC 7313P, 2.4 GHz guest-visible clock).
    Constants are calibrated against the measurements the paper anchors
    (§9.1): a plain VMCALL round trip costs ~1100 cycles, a
    hypervisor-relayed SNP domain switch ~7135 cycles, and RMPADJUST
    over every guest page dominates the ~2 s Veil boot-time increase.
    See EXPERIMENTS.md for the calibration table. *)

(** Attribution bucket for a charge, used to decompose overheads
    (e.g. Fig. 5 separates syscall-redirect copies from enclave
    exits). *)
type bucket =
  | Compute  (** guest user/kernel computation *)
  | Switch  (** world switches: VMGEXIT/VMENTER, VMSA save/restore *)
  | Copy  (** cross-domain argument/result copies *)
  | Kernel  (** in-kernel syscall work *)
  | Monitor  (** VeilMon / protected-service processing *)
  | Crypto  (** hashing, encryption, signatures *)
  | Io  (** simulated device I/O *)
  | Other

val bucket_name : bucket -> string
(** Stable lower-case name ("compute", "switch", ...), used for trace
    attribution and metric labels. *)

type counter

val create_counter : unit -> counter
val charge : counter -> bucket -> int -> unit
val total : counter -> int
val read_bucket : counter -> bucket -> int
val reset : counter -> unit
val snapshot : counter -> (bucket * int) list

val freq_hz : int
(** Guest clock: 2.4 GHz. *)

val seconds_of_cycles : int -> float

(* Architectural event costs *)

val vmcall_roundtrip : int
(** Non-SNP VM exit + resume (the paper's 1100-cycle baseline). *)

val automatic_exit : int
(** One direction of a legacy world switch. *)

val vmsa_save : int
(** Encrypt + store full VCPU state to the VMSA on VMGEXIT. *)

val vmsa_restore : int
(** Load + decrypt VCPU state from a VMSA on VMENTER. *)

val ghcb_msr_protocol : int
(** Writing the GHCB MSR and the request block. *)

val hv_switch_logic : int
(** Host-side handling of a domain-switch hypercall. *)

val domain_switch : int
(** Full hypervisor-relayed domain switch; calibrated to 7135. *)

val rmpadjust_insn : int
(** RMPADJUST instruction proper. *)

val rmpadjust_page_touch : int
(** Memory access to the target page that RMPADJUST incurs (the §9.1
    boot-time analysis attributes >70% of boot cost to this). *)

val pvalidate : int
val npf_exit : int
val interrupt_delivery : int

val tlb_local_flush : int
(** Local INVLPG sweep the initiator of a TLB shootdown always pays
    (the pre-SMP flat shootdown constant: 500 cycles). *)

val ipi_send : int
(** ICR write + interrupt delivery for one shootdown IPI, charged to
    the initiating VCPU per remote target. *)

val ipi_ack : int
(** Spin-wait for one remote VCPU's shootdown acknowledgement, charged
    to the initiating VCPU per remote target. *)

val ipi_handler : int
(** Flush-handler ISR on the remote VCPU receiving a shootdown IPI,
    charged to that VCPU. *)

(* Software event costs *)

val syscall_base : int
(** Kernel entry/exit + dispatch for one system call. *)

val copy_cost : int -> int
(** [copy_cost n] cycles for an in-kernel copy of [n] bytes (bounce
    -buffered CVM I/O path). *)

val deep_copy_cost : int -> int
(** Spec-driven deep copy of [n] bytes across the enclave boundary. *)

val kaudit_format : int
(** Cost of formatting one kaudit record. *)

val pulse_sample : int
(** One Veil-Pulse epoch capture: registry scan into a preallocated
    snapshot + digest/chain fold, monitor-resident (no switch). *)

val hash_cost : int -> int
(** SHA-256 software cost over [n] bytes. *)

val cipher_cost : int -> int
(** ChaCha20 software cost over [n] bytes. *)

val io_cost : int -> int
(** Device I/O (virtio) cost for [n] bytes. *)

val native_cvm_boot : int
(** Whole native CVM boot (the paper's ~15 s baseline against which the
    +2 s Veil initialization is a 13% increase). *)
