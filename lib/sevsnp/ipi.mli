(** Inter-processor interrupts (Veil-SMP).

    IPIs are synchronous in the simulator: the interleaver steps one
    VCPU at a time, so a shootdown "round trip" completes inside the
    sender's step.  What the model preserves is the *cost* split — the
    initiator pays send + ack-wait per remote target, the target pays
    the handler — and the architectural effect (a [Tlb_flush] IPI
    invalidates the target's software TLB epoch). *)

type kind =
  | Tlb_flush  (** remote TLB shootdown; flushes the target's TLB *)
  | Reschedule  (** kick a remote VCPU's scheduler *)

val kind_name : kind -> string

val initiator_cost : int
(** [Cycles.ipi_send + Cycles.ipi_ack]: what one remote target costs
    the initiating VCPU. *)

val send : initiator:Vcpu.t -> target:Vcpu.t -> kind -> unit
(** Deliver one IPI.  Charges [initiator_cost] to the initiator and
    [Cycles.ipi_handler] to the target (both in the Kernel bucket);
    [Tlb_flush] additionally flushes the target's TLB.  Raises
    [Assert_failure] if initiator and target are the same VCPU. *)
