type t = {
  id : int;
  mutable current : Vmsa.t option;
  counter : Cycles.counter;
  tlb : Tlb.t;
  mutable exits : int;
  mutable pending_interrupts : int;
  mutable last_exit_ts : int;
}

let create ~id ~tlb_gen =
  { id; current = None; counter = Cycles.create_counter (); tlb = Tlb.create ~gen:tlb_gen;
    exits = 0; pending_interrupts = 0; last_exit_ts = 0 }

let current_vmsa t =
  match t.current with
  | Some v -> v
  | None -> failwith (Printf.sprintf "vcpu %d has no running instance" t.id)

let vmpl t = (current_vmsa t).Vmsa.vmpl
let cpl t = (current_vmsa t).Vmsa.cpl

let rdtsc t = Cycles.total t.counter

let charge t bucket n = Cycles.charge t.counter bucket n
